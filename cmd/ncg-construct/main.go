// Command ncg-construct builds the paper's lower-bound graphs (§3.1
// torus, Lemma 3.1 cycle, Lemma 3.2 high-girth graphs), verifies the
// claimed equilibrium and distance properties, and optionally emits DOT.
//
// Usage:
//
//	ncg-construct -fig 1|2                 # the Figure 1 / Figure 2 torus
//	ncg-construct -d 2 -l 2 -delta 3,4     # a custom torus
//	ncg-construct -audit                   # run the lower-bound audits
//	ncg-construct -dot                     # also print Graphviz DOT
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/construction"
	"repro/internal/experiments"
	"repro/internal/render"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "build the Figure 1 or Figure 2 torus")
		d      = flag.Int("d", 2, "dimensions")
		l      = flag.Int("l", 2, "stretch ℓ")
		deltas = flag.String("delta", "3,4", "comma-separated dimension lengths δ")
		k      = flag.Int("k", 4, "view radius for the report")
		audit  = flag.Bool("audit", false, "run the LKE lower-bound audits")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT of the torus")
		ascii  = flag.Bool("ascii", false, "draw the torus as ASCII art (d=2 only), with the (k*,k*) view overlay")
		seed   = flag.Int64("seed", 1, "RNG seed for the audits")
	)
	flag.Parse()

	if *audit {
		p := experiments.Params{Scale: experiments.ScaleCI, Seed: *seed}
		experiments.LowerBoundAudit(p).Render(os.Stdout)
		fmt.Println()
		experiments.SumLowerBoundAudit(p).Render(os.Stdout)
		return
	}

	var params construction.TorusParams
	switch *fig {
	case 1:
		params = construction.TorusParams{D: 2, L: 2, Delta: []int{15, 5}}
	case 2:
		params = construction.TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	case 0:
		var dl []int
		for _, part := range strings.Split(*deltas, ",") {
			x, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -delta %q: %v", *deltas, err)
			}
			dl = append(dl, x)
		}
		params = construction.TorusParams{D: *d, L: *l, Delta: dl}
	default:
		log.Fatalf("unknown figure %d (use 1 or 2)", *fig)
	}

	tor, err := construction.BuildTorus(params)
	if err != nil {
		log.Fatal(err)
	}
	g := tor.State.Graph()
	fmt.Printf("torus: d=%d ℓ=%d δ=%v\n", params.D, params.L, params.Delta)
	fmt.Printf("  vertices: %d (intersection: %d)\n", g.N(), params.IntersectionCount())
	fmt.Printf("  edges: %d, diameter: %d (Corollary 3.4 bound: %d)\n",
		g.M(), g.Diameter(), tor.DiameterLowerBound())
	if err := tor.State.Validate(); err != nil {
		log.Fatalf("ownership validation failed: %v", err)
	}
	fmt.Printf("  ownership: valid; intersection vertices own no edges\n")

	if *ascii {
		kStar := params.L * (params.Delta[0] - 1)
		center := tor.VertexAt([]int{kStar, kStar})
		var out string
		if center >= 0 && params.D == 2 {
			out, err = render.TorusASCIIWithView(tor, center, *k)
		} else {
			out, err = render.TorusASCII(tor)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	}

	if *dot {
		out, err := experiments.TorusDOT(params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	}
}
