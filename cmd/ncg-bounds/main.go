// Command ncg-bounds prints the paper's theoretical PoA maps: Figure 3's
// MAXNCG region partition with evaluated lower/upper bounds, and Figure
// 4's SUMNCG lower-bound regions, over a sampled (α, k) grid at a given n.
//
// Usage:
//
//	ncg-bounds -game max|sum|both [-n 100000] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	var (
		game = flag.String("game", "both", "which map to print: max | sum | both")
		n    = flag.Int("n", 100000, "network size the bounds are evaluated at")
		csv  = flag.Bool("csv", false, "emit CSV instead of ASCII tables")
	)
	flag.Parse()

	emit := func(t *table.Table) {
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	switch *game {
	case "max":
		emit(experiments.Figure3(*n))
	case "sum":
		emit(experiments.Figure4(*n))
	case "both":
		emit(experiments.Figure3(*n))
		emit(experiments.Figure4(*n))
	default:
		log.Fatalf("unknown game %q", *game)
	}
}
