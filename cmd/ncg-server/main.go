// Command ncg-server runs the sweepd daemon: a resumable
// sweep-orchestration service with a durable job store, a disk-backed
// cross-job result cache, and an HTTP JSON API.
//
// Usage:
//
//	ncg-server -addr :8080 -data ./sweepd-data [-workers 0] [-cache 65536] [-cache-dir DIR]
//	           [-job-ttl 24h] [-gc-interval 1m] [-max-jobs 4096] [-rate 0]
//	           [-peers URL,URL,...] [-peer-lease 64] [-peer-ttl 45s] [-peer-rate 0]
//	           [-advertise URL] [-probe-interval 5s] [-peer-backoff-max 2m]
//	           [-schedule] [-adopt-after 30s] [-tombstone-after 30m]
//	           [-replicas 2] [-replica-rate 0] [-pprof]
//
// Clustering: every daemon serves POST /peer/leases, computing contiguous
// cell ranges for remote leaders on its own worker pool (lease work draws
// from the same -workers gate as local jobs). A daemon started with
// -peers additionally shards its own sweeps across those peers in
// -peer-lease-sized ranges; a peer that goes silent for -peer-ttl has its
// lease reclaimed and recomputed locally. Deterministic per-cell seeding
// keeps results byte-identical with 0, 1, or N peers and across peer
// loss. -peer-rate rate-limits the /peer/* class separately from
// interactive traffic.
//
// Membership is live: -peers is only the seed list. A background loop
// probes every known peer's GET /healthz each -probe-interval, demotes
// failing peers (alive → suspect → down) so jobs lease to alive peers
// only, and backs off down peers exponentially (capped at
// -peer-backoff-max, with jitter) so a flapping machine stops eating
// lease attempts until a probe readmits it. A daemon booted with
// -advertise announces its own URL to its seeds via POST /peer/hello and
// pulls their member tables from GET /peer/members (one-hop gossip), so
// it joins a running cluster — and starts receiving leases — without any
// restart of the existing daemons. A member down for -tombstone-after is
// decommissioned: removed from the table under a gossiped tombstone so
// hearsay cannot resurrect the URL (a fresh hello can; 0 disables).
//
// Scheduling (-schedule, on by default when clustered): the daemons form
// one logical service. POST /sweeps to any member places the job on the
// least-loaded alive member (queue depth, then busy workers, then
// running jobs; ties stay local) by forwarding the spec over POST
// /peer/jobs. Each leader heartbeats a per-job lease — spec, owner,
// generation, progress — into the gossiped member state; when a leader
// dies, the least-loaded survivor adopts its jobs after -adopt-after,
// recovers what it can of the checkpoint from surviving members, and
// resumes as the generation+1 leader. Deterministic per-cell seeding
// makes the adopted run's output byte-identical to an uninterrupted
// one, and the generation guard makes a revived ex-leader cede instead
// of split-braining.
//
// Replication: when a job completes, its leader pushes the immutable
// artifacts (spec, lifecycle record, checkpoint, trajectory sidecar) to
// the -replicas least-loaded alive members over POST /peer/replicas/{id}
// (kernel-hash verified on receipt; generation-guarded against zombie
// ex-leaders; 0 disables pushing). Replicas land under <data>/replicas
// and make finished results survive the leader's disk: any member
// holding one serves GET /sweeps/{id}, /results, /summary, and
// /trajectories for the job directly, a member holding none answers one
// 307 hop toward a holder, and adoption seeds from a local replica
// instead of refetching the checkpoint over HTTP. Replicas expire on
// the same -job-ttl clock as jobs. -replica-rate rate-limits the push
// endpoint as its own class (whole checkpoints per request — it must
// not drain the /peer/* bucket gossip depends on).
//
// The daemon bounds its own growth: done/failed jobs are garbage-
// collected -job-ttl after they finish (directory, cache spill files,
// and summary state all reclaimed; 0 disables GC), at most -max-jobs
// jobs are retained (submissions beyond the cap get 429), and -rate
// caps requests/second per endpoint class (read vs mutate; 429 +
// Retry-After beyond it, 0 = unlimited). Canceled jobs keep their
// checkpoints — they are resumable — and are never GC'd; purge them
// explicitly with DELETE /sweeps/{id}?purge=1.
//
// Jobs are content-addressed by their spec, checkpointed to
// <data>/<id>/results.jsonl one result-line at a time, and resumed
// automatically on restart — a daemon killed mid-sweep picks up where the
// checkpoint ends and produces byte-identical results. The result cache
// spills to content-addressed files under <data>/cache (override with
// -cache-dir; "none" keeps it memory-only), so restarts keep their hit
// rate too.
//
// The workload is pluggable per spec: "dialect" selects the move rule
// (best-response, the default; swap; large-neighborhood) and "graph"
// the starting-network family (tree, gnp with "p", grid-delete with
// "p", pa-tree, random-regular with "q"), resolved through the
// registries in internal/sweepd. Every dialect shards, replicates, and
// caches identically — the serving layers carry no dialect-specific
// code — and legacy specs without the new fields keep their exact job
// IDs and kernel hashes. See the README's Dialects section.
//
// API:
//
//	POST   /sweeps              submit {"n":40,"alphas":[1,2],"ks":[2,1000],"seeds":5}
//	GET    /sweeps              list jobs
//	GET    /sweeps/{id}         job status
//	GET    /sweeps/{id}/results stream results as NDJSON; ?follow=1 tails a
//	                            running job to completion (terminal status
//	                            arrives as the X-Sweep-Status trailer)
//	GET    /sweeps/{id}/summary per-(α,k) mean ± 95% CI roll-ups, server-side
//	GET    /sweeps/{id}/trajectories
//	                            per-round trajectory sidecar as NDJSON (only
//	                            for specs with "trajectories": true)
//	DELETE /sweeps/{id}         cancel (checkpoint kept; 409 if already terminal)
//	DELETE /sweeps/{id}?purge=1 evict a terminal job entirely (store dir,
//	                            spill files, summary state)
//	POST   /peer/leases         compute a cell range for a peer daemon
//	                            (the follower half of -peers sharding)
//	POST   /peer/hello          a booting daemon announces its -advertise URL
//	GET    /peer/members        this daemon's member table (url + state),
//	                            plus job leases and tombstones
//	POST   /peer/jobs           run a forwarded sweep locally (the receiving
//	                            half of -schedule placement)
//	POST   /peer/jobs/claim     an adopter announces a job's new lease
//	POST   /peer/replicas/{id}  receive a finished job's verified replica
//	GET    /healthz             liveness + cache + cluster + replica stats
//	GET    /metrics             Prometheus text-format counters
//	GET    /debug/pprof/        net/http/pprof profiles (only with -pprof;
//	                            exempt from -rate like /healthz)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/sweepd"
	"repro/internal/sweepd/cluster"
	"repro/internal/sweepd/sched"
	"repro/internal/sweepd/shard"
	"repro/internal/sweepd/store"
)

// splitPeers parses the -peers flag: empty segments and trailing slashes
// are dropped and duplicates collapse, so "http://a:1,,http://a:1/"
// yields one peer, not two lease streams against the same daemon.
func splitPeers(s string) []string {
	return sweepd.NormalizePeerURLs(strings.Split(s, ","))
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		data       = flag.String("data", "sweepd-data", "job store directory")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		cacheSz    = flag.Int("cache", 65536, "result cache entries in memory (0 disables caching entirely)")
		cacheDir   = flag.String("cache-dir", "", `result-cache spill directory ("" = <data>/cache, "none" = memory-only)`)
		jobTTL     = flag.Duration("job-ttl", 24*time.Hour, "GC done/failed jobs this long after they finish (0 disables GC)")
		gcInterval = flag.Duration("gc-interval", time.Minute, "how often the GC pass runs")
		maxJobs    = flag.Int("max-jobs", 4096, "retained-job cap; submissions beyond it get 429 (0 = unlimited)")
		rate       = flag.Float64("rate", 0, "per-endpoint-class request limit in req/s; beyond it 429 + Retry-After (0 = unlimited)")
		peers      = flag.String("peers", "", "comma-separated seed peer base URLs to shard sweeps across (e.g. http://10.0.0.2:8080)")
		peerLease  = flag.Int("peer-lease", 64, "cells per peer lease (smaller = finer balancing, larger = less HTTP overhead)")
		peerTTL    = flag.Duration("peer-ttl", 45*time.Second, "reclaim a lease whose stream goes silent for this long")
		peerRate   = flag.Float64("peer-rate", 0, "request limit for the /peer/* endpoint class in req/s (0 = unlimited)")
		advertise  = flag.String("advertise", "", "this daemon's own base URL, announced to seed peers so it joins their clusters live (e.g. http://10.0.0.3:8080)")
		probeIvl   = flag.Duration("probe-interval", 5*time.Second, "peer health-probe cadence")
		backoffMax = flag.Duration("peer-backoff-max", 2*time.Minute, "cap on the probe backoff for down peers")
		schedule   = flag.Bool("schedule", true, "place submitted sweeps on the least-loaded alive member and adopt jobs whose leader dies")
		adoptAfter = flag.Duration("adopt-after", 30*time.Second, "adopt a job whose leader's lease has gone stale for this long")
		tombAfter  = flag.Duration("tombstone-after", 30*time.Minute, "decommission a member down this long: drop it under a gossiped tombstone (0 disables)")
		replicas   = flag.Int("replicas", 2, "push each finished job's artifacts to this many least-loaded alive members (0 disables pushing; receiving stays on)")
		replRate   = flag.Float64("replica-rate", 0, "request limit for POST /peer/replicas/{id} in req/s (0 = unlimited)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default; exempt from -rate like /healthz)")
	)
	flag.Parse()

	jobStore, err := sweepd.OpenStore(*data)
	if err != nil {
		log.Fatal(err)
	}
	var cache *sweepd.Cache
	if *cacheDir == "none" {
		cache = sweepd.NewCache(*cacheSz)
	} else {
		dir := *cacheDir
		if dir == "" {
			dir = filepath.Join(*data, "cache")
		}
		if cache, err = sweepd.NewDiskCache(*cacheSz, dir); err != nil {
			log.Fatal(err)
		}
	}
	mgr := sweepd.NewManager(jobStore, cache, *workers)
	mgr.SetMaxJobs(*maxJobs)
	// Replica storage is always on (receiving costs nothing until a peer
	// pushes); -replicas only governs how many copies this daemon pushes
	// of its OWN finished jobs.
	replicaSet, err := store.OpenReplicaSet(filepath.Join(*data, "replicas"))
	if err != nil {
		log.Fatal(err)
	}
	mgr.SetReplicas(replicaSet)
	cfg := sweepd.Config{ReadRate: *rate, MutateRate: *rate, PeerRate: *peerRate, ReplicaRate: *replRate}
	// Every daemon runs a membership registry, even a bare one: it must
	// accept POST /peer/hello so late-booting daemons can join a cluster
	// this daemon anchors. Seeds (-peers) start alive; the probe loop
	// demotes dead ones, backs off flapping ones, and learns newcomers
	// from hellos and one-hop gossip.
	seeds := splitPeers(*peers)
	// Fail fast on malformed URLs: a typo'd -advertise would be 400-
	// rejected by every seed forever (the daemon would silently never
	// join), and a typo'd seed would be probed at the backoff cap for
	// the life of the process.
	if *advertise != "" && !sweepd.ValidPeerURL(sweepd.NormalizePeerURL(*advertise)) {
		log.Fatalf("-advertise %q is not an absolute http(s) base URL (e.g. http://10.0.0.3:8080)", *advertise)
	}
	for _, s := range seeds {
		if !sweepd.ValidPeerURL(s) {
			log.Fatalf("-peers entry %q is not an absolute http(s) base URL", s)
		}
	}
	registry := cluster.New(cluster.Options{
		Self:           *advertise,
		Seeds:          seeds,
		ProbeInterval:  *probeIvl,
		BackoffMax:     *backoffMax,
		TombstoneAfter: *tombAfter,
		SelfLoad:       mgr.Load,
		Logf:           log.Printf,
	})
	pool := shard.NewFromSource(registry, shard.Options{LeaseCells: *peerLease, LeaseTTL: *peerTTL})
	mgr.SetExecutorProvider(pool)
	cfg.PeerStats = pool.Stats
	cfg.Cluster = registry
	var replicator *sweepd.Replicator
	if *replicas > 0 {
		replicator = sweepd.NewReplicator(sweepd.ReplicatorOptions{
			Store:   jobStore,
			Fanout:  *replicas,
			Self:    registry.Self,
			Targets: registry.AliveLoads,
			Holders: registry.ReplicaHolders,
			Generation: func(id string) uint64 {
				// The manifest carries our lease generation so a zombie
				// ex-leader's late push cannot clobber the adopter's copy.
				for _, l := range registry.Leases() {
					if l.JobID == id {
						return l.Generation
					}
				}
				return 1
			},
			Logf: log.Printf,
		})
		mgr.OnFinish(replicator.JobFinished)
		cfg.ReplicaStats = replicator.Stats
	}
	var scheduler *sched.Scheduler
	if *schedule {
		scheduler, err = sched.New(sched.Options{
			Cluster:    registry,
			Manager:    mgr,
			AdoptAfter: *adoptAfter,
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Sched = scheduler
		cfg.SchedStats = scheduler.Stats
	}
	if len(seeds) > 0 || *advertise != "" {
		log.Printf("cluster membership: advertise=%q, %d seed peer(s): %s",
			*advertise, len(seeds), strings.Join(seeds, ", "))
	}
	var handler http.Handler = sweepd.NewHandlerConfig(mgr, cfg)
	if *pprofOn {
		// An outer mux routes the profiling endpoints before the sweepd
		// handler, so they get their own rate-limit exemption (like
		// /healthz: a profile grab during an incident must not compete
		// with — or be 429'd by — API traffic). Off by default: pprof
		// exposes heap contents and must be opted into per deployment.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Print("pprof enabled at /debug/pprof/")
	}
	if err := mgr.Resume(); err != nil {
		log.Fatalf("resuming jobs: %v", err)
	}
	mgr.StartGC(*jobTTL, *gcInterval)

	srv := &http.Server{Addr: *addr, Handler: handler}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Printf("ncg-server listening on %s (store %s)", *addr, *data)
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	// Announce only after the listener is accepting: a seed that learns
	// this daemon from the hello may lease to it immediately, and a
	// connection-refused there would demote the brand-new joiner before
	// it ever served a cell.
	registry.Start()
	if scheduler != nil {
		scheduler.Start()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down: canceling sweeps, flushing checkpoints")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck
	if scheduler != nil {
		scheduler.Close()
	}
	registry.Close()
	mgr.Close()
	if replicator != nil {
		replicator.Close()
	}
}
