// Command ncg-server runs the sweepd daemon: a resumable
// sweep-orchestration service with a durable job store, a cross-job
// result cache, and an HTTP JSON API.
//
// Usage:
//
//	ncg-server -addr :8080 -data ./sweepd-data [-workers 0] [-cache 65536]
//
// Jobs are content-addressed by their spec, checkpointed to
// <data>/<id>/results.jsonl one result-line at a time, and resumed
// automatically on restart — a daemon killed mid-sweep picks up where the
// checkpoint ends and produces byte-identical results.
//
// API:
//
//	POST   /sweeps              submit {"n":40,"alphas":[1,2],"ks":[2,1000],"seeds":5}
//	GET    /sweeps              list jobs
//	GET    /sweeps/{id}         job status
//	GET    /sweeps/{id}/results stream results as NDJSON
//	DELETE /sweeps/{id}         cancel (checkpoint kept)
//	GET    /healthz             liveness + cache stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sweepd"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		data    = flag.String("data", "sweepd-data", "job store directory")
		workers = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		cacheSz = flag.Int("cache", 65536, "result cache entries (0 disables)")
	)
	flag.Parse()

	store, err := sweepd.OpenStore(*data)
	if err != nil {
		log.Fatal(err)
	}
	mgr := sweepd.NewManager(store, sweepd.NewCache(*cacheSz), *workers)
	if err := mgr.Resume(); err != nil {
		log.Fatalf("resuming jobs: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: sweepd.NewHandler(mgr)}
	go func() {
		log.Printf("ncg-server listening on %s (store %s)", *addr, *data)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down: canceling sweeps, flushing checkpoints")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck
	mgr.Close()
}
