package main

import "testing"

// TestSplitPeers pins the -peers flag parsing: empty segments vanish,
// whitespace and trailing slashes are trimmed, and duplicate spellings
// of one peer collapse to a single entry — two lease goroutines against
// the same daemon would double-issue its work.
func TestSplitPeers(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{"empty flag", "", nil},
		{"single", "http://a:1", []string{"http://a:1"}},
		{"empty segments dropped", ",,http://a:1,,", []string{"http://a:1"}},
		{"trailing slash trimmed", "http://a:1/,http://b:2//", []string{"http://a:1", "http://b:2"}},
		{"whitespace trimmed", " http://a:1 , http://b:2", []string{"http://a:1", "http://b:2"}},
		{"duplicates collapse", "http://a:1,http://a:1", []string{"http://a:1"}},
		{"dup spellings collapse", "http://a:1,http://a:1/, http://a:1 ", []string{"http://a:1"}},
		{"order preserved", "http://b:2,http://a:1,http://b:2/", []string{"http://b:2", "http://a:1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := splitPeers(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("splitPeers(%q) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("splitPeers(%q) = %v, want %v", tc.in, got, tc.want)
				}
			}
		})
	}
}
