// Command ncg-sim runs a single best-response dynamics and prints the
// trajectory: per-round network features and the final equilibrium
// summary. It is the interactive counterpart of the paper's §5.1 loop.
//
// Usage:
//
//	ncg-sim -n 100 -alpha 2 -k 5 -graph tree -seed 1 [-variant max|sum]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/ncgio"
	"repro/internal/table"
)

func main() {
	var (
		n       = flag.Int("n", 100, "number of players")
		alpha   = flag.Float64("alpha", 2, "edge price α")
		k       = flag.Int("k", 5, "view radius (use a large value for full knowledge)")
		graphF  = flag.String("graph", "tree", "starting graph: tree | gnp | path | cycle | star")
		p       = flag.Float64("p", 0.1, "edge probability for -graph gnp")
		seed    = flag.Int64("seed", 1, "RNG seed")
		variant = flag.String("variant", "max", "game variant: max | sum")
		rounds  = flag.Int("rounds", 200, "round budget")
		save    = flag.String("save", "", "write the final state as JSON to this file")
		analyze = flag.Bool("analyze", false, "print the structural equilibrium report")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var s *game.State
	switch *graphF {
	case "tree":
		s = game.FromGraphRandomOwners(gen.RandomTree(*n, rng), rng)
	case "gnp":
		g, err := gen.GNPConnected(*n, *p, rng, 1000)
		if err != nil {
			log.Fatal(err)
		}
		s = game.FromGraphRandomOwners(g, rng)
	case "path":
		s = game.FromGraphRandomOwners(gen.Path(*n), rng)
	case "cycle":
		s = game.FromGraphRandomOwners(gen.Cycle(*n), rng)
	case "star":
		s = game.FromGraphRandomOwners(gen.Star(*n), rng)
	default:
		log.Fatalf("unknown graph class %q; valid: tree gnp path cycle star", *graphF)
	}

	v := game.Max
	if *variant == "sum" {
		v = game.Sum
	} else if *variant != "max" {
		log.Fatalf("unknown variant %q; valid: max sum", *variant)
	}

	cfg := dynamics.DefaultConfig(v, *alpha, *k)
	cfg.MaxRounds = *rounds
	cfg.CollectPerRound = true

	fmt.Printf("%s dynamics: n=%d α=%g k=%d graph=%s seed=%d\n\n",
		v, *n, *alpha, *k, *graphF, *seed)
	res := dynamics.Run(s, cfg)

	t := table.New("Trajectory", "round", "moves", "diameter", "social cost", "quality", "max degree", "max bought")
	for _, r := range res.PerRound {
		t.AddRowf(r.Round, r.Moves, r.Diameter, r.SocialCost, r.Quality, r.MaxDegree, r.MaxBought)
	}
	t.Render(os.Stdout)

	fmt.Printf("\noutcome: %s after %d rounds, %d total moves\n",
		res.Status, res.Rounds, res.TotalMoves)
	fs := res.FinalStats
	fmt.Printf("final: diameter=%d social=%.1f quality=%.3f unfairness=%.3f min/avg view=%d/%.1f\n",
		fs.Diameter, fs.SocialCost, fs.Quality, fs.Unfairness, fs.MinViewSize, fs.AvgViewSize)

	if *analyze {
		rep := analysis.Analyze(res.Final, cfg)
		fmt.Printf("\n%s", rep.Summary())
		fmt.Printf("degree histogram: %s\n", analysis.FormatHistogram(analysis.DegreeHistogram(res.Final)))
		fmt.Printf("bought histogram: %s\n", analysis.FormatHistogram(analysis.BoughtHistogram(res.Final)))
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := ncgio.EncodeState(f, res.Final); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved final state to %s\n", *save)
	}
}
