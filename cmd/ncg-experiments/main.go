// Command ncg-experiments regenerates the paper's tables and figures
// (Table I–II, Figures 5–10, the §5.4 cycle census, and the lower-bound
// audits) as ASCII tables or CSV.
//
// Usage:
//
//	ncg-experiments -run all|tableI|tableII|fig5|fig6|fig7|fig8|fig9|fig10|census|audit
//	               [-scale ci|paper] [-seed 1] [-csv]
//
// -scale paper reproduces the full §5.1 grids (15 α × 12 k × 20 seeds) —
// expect a long run; -scale ci runs the representative sub-grid used by
// the test suite and benchmarks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id (all, tableI, tableII, fig5..fig10, census, audit)")
		scale  = flag.String("scale", "ci", "grid scale: ci | paper")
		seed   = flag.Int64("seed", 1, "base RNG seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of ASCII tables")
		seeds  = flag.Int("seeds", 0, "override: random starts per cell (0 = scale default)")
		dynN   = flag.Int("dyn-n", 0, "override: tree size for the dynamics sweeps (0 = scale default)")
		alphas = flag.String("alphas", "", "override: comma-separated α grid")
		ks     = flag.String("ks", "", "override: comma-separated k grid")
	)
	flag.Parse()

	p := experiments.Params{Scale: experiments.ScaleCI, Seed: *seed}
	switch *scale {
	case "ci":
	case "paper":
		p.Scale = experiments.ScalePaper
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	p.SeedsOverride = *seeds
	p.DynTreeSize = *dynN
	if *alphas != "" {
		for _, part := range strings.Split(*alphas, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad -alphas: %v", err)
			}
			p.AlphaGrid = append(p.AlphaGrid, x)
		}
	}
	if *ks != "" {
		for _, part := range strings.Split(*ks, ",") {
			x, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -ks: %v", err)
			}
			p.KGrid = append(p.KGrid, x)
		}
	}

	emit := func(t *table.Table) {
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	want := func(id string) bool { return *run == "all" || *run == id }
	ran := false

	if want("tableI") {
		emit(experiments.TableI(p))
		ran = true
	}
	if want("tableII") {
		emit(experiments.TableII(p))
		ran = true
	}
	if want("fig1") {
		t, err := experiments.Figure1(p)
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
		ran = true
	}
	if want("fig2") {
		t, err := experiments.Figure2(p)
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
		ran = true
	}
	if want("fig3") {
		emit(experiments.Figure3(100000))
		ran = true
	}
	if want("fig4") {
		emit(experiments.Figure4(100000))
		ran = true
	}
	if want("fig5") {
		emit(experiments.Figure5(p))
		ran = true
	}
	if want("fig6") {
		emit(experiments.Figure6(p))
		ran = true
	}
	if want("fig7") {
		emit(experiments.Figure7(p))
		ran = true
	}
	if want("fig8") {
		emit(experiments.Figure8(p))
		ran = true
	}
	if want("fig9") {
		emit(experiments.Figure9(p))
		ran = true
	}
	if want("fig10") {
		left, right := experiments.Figure10(p)
		emit(left)
		emit(right)
		ran = true
	}
	if want("census") {
		emit(experiments.CycleCensus(p))
		ran = true
	}
	if want("audit") {
		emit(experiments.LowerBoundAudit(p))
		emit(experiments.SumLowerBoundAudit(p))
		ran = true
	}
	if want("theory") {
		t1, ok1 := experiments.Corollary314Check(p)
		emit(t1)
		t2, ok2 := experiments.Theorem44Check(p)
		emit(t2)
		fmt.Printf("Corollary 3.14 holds: %v; Theorem 4.4 holds: %v\n", ok1, ok2)
		ran = true
	}
	if !ran {
		log.Fatalf("unknown experiment %q; valid: all tableI tableII fig1..fig10 census audit theory", *run)
	}
}
