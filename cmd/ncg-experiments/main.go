// Command ncg-experiments regenerates the paper's tables and figures
// (Table I–II, Figures 5–10, the §5.4 cycle census, and the lower-bound
// audits) as ASCII tables or CSV, plus a dialect-comparison table that
// runs the same grid under every registered move rule (best-response,
// swap, large-neighborhood) on two graph families.
//
// Usage:
//
//	ncg-experiments -run all|tableI|tableII|fig1..fig10|census|dialects|audit|theory
//	               [-scale ci|paper] [-seed 1] [-csv] [-checkpoint DIR]
//
// -scale paper reproduces the full §5.1 grids (15 α × 12 k × 20 seeds) —
// expect a long run; -scale ci runs the representative sub-grid used by
// the test suite and benchmarks. With -checkpoint DIR every sweep streams
// its results to a resumable JSONL checkpoint: re-running after an
// interruption skips all completed cells and produces identical output.
// Unknown -run or -scale values exit non-zero with the list of valid ids.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment id (all, tableI, tableII, fig1..fig10, census, dialects, audit, theory)")
		scale      = flag.String("scale", "ci", "grid scale: ci | paper")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of ASCII tables")
		seeds      = flag.Int("seeds", 0, "override: random starts per cell (0 = scale default)")
		dynN       = flag.Int("dyn-n", 0, "override: tree size for the dynamics sweeps (0 = scale default)")
		alphas     = flag.String("alphas", "", "override: comma-separated α grid")
		ks         = flag.String("ks", "", "override: comma-separated k grid")
		checkpoint = flag.String("checkpoint", "", "directory for resumable sweep checkpoints (empty = in-memory only)")
	)
	flag.Parse()

	p := experiments.Params{Scale: experiments.ScaleCI, Seed: *seed}
	switch *scale {
	case "ci":
	case "paper":
		p.Scale = experiments.ScalePaper
	default:
		log.Fatalf("unknown scale %q; valid: ci paper", *scale)
	}
	p.SeedsOverride = *seeds
	p.DynTreeSize = *dynN
	p.CheckpointDir = *checkpoint
	if *alphas != "" {
		for _, part := range strings.Split(*alphas, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad -alphas: %v", err)
			}
			p.AlphaGrid = append(p.AlphaGrid, x)
		}
	}
	if *ks != "" {
		for _, part := range strings.Split(*ks, ",") {
			x, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -ks: %v", err)
			}
			p.KGrid = append(p.KGrid, x)
		}
	}

	emit := func(t *table.Table) {
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	// One dispatch table drives validation, the error text, and
	// execution, so a new experiment cannot be wired up but unlisted (or
	// listed but unwired).
	drivers := []struct {
		id  string
		run func()
	}{
		{"tableI", func() { emit(experiments.TableI(p)) }},
		{"tableII", func() { emit(experiments.TableII(p)) }},
		{"fig1", func() {
			t, err := experiments.Figure1(p)
			if err != nil {
				log.Fatal(err)
			}
			emit(t)
		}},
		{"fig2", func() {
			t, err := experiments.Figure2(p)
			if err != nil {
				log.Fatal(err)
			}
			emit(t)
		}},
		{"fig3", func() { emit(experiments.Figure3(100000)) }},
		{"fig4", func() { emit(experiments.Figure4(100000)) }},
		{"fig5", func() { emit(experiments.Figure5(p)) }},
		{"fig6", func() { emit(experiments.Figure6(p)) }},
		{"fig7", func() { emit(experiments.Figure7(p)) }},
		{"fig8", func() { emit(experiments.Figure8(p)) }},
		{"fig9", func() { emit(experiments.Figure9(p)) }},
		{"fig10", func() {
			left, right := experiments.Figure10(p)
			emit(left)
			emit(right)
		}},
		{"census", func() { emit(experiments.CycleCensus(p)) }},
		{"dialects", func() { emit(experiments.DialectComparison(p)) }},
		{"audit", func() {
			emit(experiments.LowerBoundAudit(p))
			emit(experiments.SumLowerBoundAudit(p))
		}},
		{"theory", func() {
			t1, ok1 := experiments.Corollary314Check(p)
			emit(t1)
			t2, ok2 := experiments.Theorem44Check(p)
			emit(t2)
			fmt.Printf("Corollary 3.14 holds: %v; Theorem 4.4 holds: %v\n", ok1, ok2)
		}},
	}

	valid := []string{"all"}
	for _, d := range drivers {
		valid = append(valid, d.id)
	}
	if !slices.Contains(valid, *run) {
		log.Fatalf("unknown experiment %q; valid: %s", *run, strings.Join(valid, " "))
	}
	for _, d := range drivers {
		if *run == "all" || *run == d.id {
			d.run()
		}
	}
}
