package ncg

import (
	"math/rand"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomState(20, rng)
	cfg := DefaultConfig(MaxNCG, 2, 3)
	res := Run(s, cfg)
	if res.Status != Converged {
		t.Fatalf("status=%v", res.Status)
	}
	if !IsLKE(res.Final, cfg) {
		t.Fatal("converged state is not an LKE")
	}
	if res.FinalStats.Quality < 1 {
		t.Fatalf("quality=%v below 1", res.FinalStats.Quality)
	}
}

func TestFacadeGraphConstructors(t *testing.T) {
	if Star(5).M() != 4 || Complete(4).M() != 6 || Path(3).M() != 2 {
		t.Fatal("deterministic families broken")
	}
	if CycleG(5).Diameter() != 2 {
		t.Fatal("cycle diameter")
	}
	if Grid(2, 3).N() != 6 || Torus(3, 3).N() != 9 {
		t.Fatal("grid/torus sizes")
	}
}

func TestFacadeBestResponse(t *testing.T) {
	s := FromGraphLowOwners(Path(6))
	r := MaxBestResponse(s, 0, 10, 0.5)
	if !r.Improving {
		t.Fatal("path endpoint should improve at α=0.5")
	}
	if d := SumDelta(s, 0, 10, 0.5, r.Strategy); d >= 0 {
		// The MAX-optimal move also helps the SUM objective here.
		t.Fatalf("SumDelta=%v", d)
	}
}

func TestFacadeBounds(t *testing.T) {
	if MaxPoALowerBound(10000, 2, 100) <= 1 {
		t.Fatal("Lemma 3.1 bound missing")
	}
	if !FullKnowledgeSum(100, 4) {
		t.Fatal("Theorem 4.4 predicate")
	}
	if MaxPoAUpperBound(10000, 5, 2) <= 0 {
		t.Fatal("upper bound non-positive")
	}
	_ = SumPoALowerBound(1000, 2, 64)
	_ = FullKnowledgeMax(1000, 500, 2)
}

func TestFacadeSweep(t *testing.T) {
	cells := SweepGrid([]float64{1}, []int{2}, 2)
	res := Sweep(cells, DefaultConfig(MaxNCG, 0, 0), func(c Cell, rng *rand.Rand) *State {
		return RandomState(10, rng)
	}, 5)
	if len(res) != 2 {
		t.Fatalf("results=%d", len(res))
	}
}
