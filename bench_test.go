// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), so `go test -bench=.` regenerates every experimental
// artifact at CI scale. The drivers are the same code paths cmd/
// ncg-experiments runs at -scale paper; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package ncg

import (
	"testing"

	"repro/internal/experiments"
)

// benchParams keeps every benchmark on the same deterministic sub-grid.
func benchParams() experiments.Params {
	return experiments.Params{
		Scale:         experiments.ScaleCI,
		Seed:          1,
		AlphaGrid:     []float64{0.5, 1, 2, 5},
		KGrid:         []int{2, 3, 5, 1000},
		SeedsOverride: 3,
		TreeSizeGrid:  []int{20, 50},
		DynTreeSize:   40,
	}
}

// BenchmarkTableI regenerates Table I (random tree statistics).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.TableI(benchParams()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableII regenerates Table II (Erdős–Rényi statistics).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.TableII(benchParams()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure1 builds and audits the Figure 1 torus (d=2, δ=(15,5), ℓ=2).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 builds and audits the Figure 2 torus (d=2, δ=(3,4), ℓ=2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 evaluates the MAXNCG PoA region map (Figure 3).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure3(100000); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure4 evaluates the SUMNCG PoA region map (Figure 4).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure4(100000); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (view sizes at equilibrium vs α, k).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure5(benchParams()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (equilibrium quality vs n at α ∈ {1,10}).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure6(benchParams()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (quality vs k at α=2, trees + ER).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure7(benchParams()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8 (max degree / bought edges vs α).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure8(benchParams()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9 (unfairness ratio vs α).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure9(benchParams()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10 (rounds to convergence).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		left, right := experiments.Figure10(benchParams())
		if len(left.Rows) == 0 || len(right.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkCycleCensus regenerates the §5.4 convergence census.
func BenchmarkCycleCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.CycleCensus(benchParams()); len(tab.Rows) != 3 {
			b.Fatal("bad census")
		}
	}
}

// BenchmarkLowerBoundAudit re-verifies the lower-bound constructions
// (Lemmas 3.1–3.2, Theorem 3.12) with the exact LKE audit.
func BenchmarkLowerBoundAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.LowerBoundAudit(benchParams()); len(tab.Rows) < 4 {
			b.Fatal("audit incomplete")
		}
	}
}

// BenchmarkSumLowerBoundAudit re-verifies the SUMNCG Lemma 4.1 torus.
func BenchmarkSumLowerBoundAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.SumLowerBoundAudit(benchParams()); len(tab.Rows) == 0 {
			b.Fatal("audit incomplete")
		}
	}
}

// BenchmarkCorollary314 runs the empirical LKE≡NE check (Corollary 3.14).
func BenchmarkCorollary314(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, holds := experiments.Corollary314Check(benchParams()); !holds {
			b.Fatal("Corollary 3.14 violated")
		}
	}
}

// BenchmarkTheorem44 runs the SUMNCG full-knowledge threshold check.
// The exact (exhaustive) SUMNCG responder limits this to a small grid.
func BenchmarkTheorem44(b *testing.B) {
	p := benchParams()
	p.AlphaGrid = []float64{0.5, 2}
	p.KGrid = []int{2, 6}
	p.SeedsOverride = 2
	for i := 0; i < b.N; i++ {
		if _, holds := experiments.Theorem44Check(p); !holds {
			b.Fatal("Theorem 4.4 violated")
		}
	}
}
