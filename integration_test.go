package ncg

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/classic"
	"repro/internal/construction"
	"repro/internal/dynamics"
	"repro/internal/enum"
	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/ncgio"
	"repro/internal/swap"
)

// TestPipelineSaveReauditLoad runs dynamics, serializes the equilibrium,
// reloads it, and re-audits — the full persistence round trip a user
// would run across sessions.
func TestPipelineSaveReauditLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	s := RandomState(25, rng)
	cfg := DefaultConfig(MaxNCG, 2, 3)
	res := Run(s, cfg)
	if res.Status != Converged {
		t.Fatalf("status=%v", res.Status)
	}
	var buf bytes.Buffer
	if err := SaveState(&buf, res.Final); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != res.Final.Fingerprint() {
		t.Fatal("round trip changed the equilibrium")
	}
	if !IsLKE(loaded, cfg) {
		t.Fatal("reloaded equilibrium fails the audit")
	}
}

// TestAllGeneratorFamiliesReachEquilibrium runs the dynamics once on
// every starting family the library ships.
func TestAllGeneratorFamiliesReachEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	pa := gen.PreferentialAttachmentTree(20, rng)
	reg, ok := gen.RandomRegular(20, 3, rng, 100)
	if !ok {
		t.Fatal("no regular graph")
	}
	er, err := gen.GNPConnected(20, 0.2, rng, 200)
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]*game.State{
		"uniform tree": game.FromGraphRandomOwners(gen.RandomTree(20, rng), rng),
		"pa tree":      game.FromGraphRandomOwners(pa, rng),
		"3-regular":    game.FromGraphRandomOwners(reg, rng),
		"er":           game.FromGraphRandomOwners(er, rng),
		"caterpillar":  game.FromGraphRandomOwners(gen.Caterpillar(5, 3), rng),
		"hypercube":    game.FromGraphRandomOwners(gen.Hypercube(4), rng),
		"bipartite":    game.FromGraphRandomOwners(gen.CompleteBipartite(4, 5), rng),
	}
	for name, s := range families {
		cfg := dynamics.DefaultConfig(game.Max, 2, 3)
		res := dynamics.Run(s, cfg)
		if res.Status == dynamics.RoundLimit {
			t.Errorf("%s: hit the round limit", name)
			continue
		}
		if err := res.Final.Validate(); err != nil {
			t.Errorf("%s: corrupted state: %v", name, err)
		}
		if res.Status == dynamics.Converged && !dynamics.IsLKE(res.Final, cfg) {
			t.Errorf("%s: converged but not an LKE", name)
		}
	}
}

// TestLKEvsNEContainmentEndToEnd cross-checks three independent
// implementations: the enumeration (ground truth on tiny games), the
// locality responder, and the classical responder.
func TestLKEvsNEContainmentEndToEnd(t *testing.T) {
	res, err := enum.Enumerate(3, game.Max, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.NE {
		s := p.Apply()
		if !classic.IsNE(s, game.Max, 1.5) {
			t.Fatalf("enum NE %v rejected by classic.IsNE", p)
		}
		cfg := dynamics.DefaultConfig(game.Max, 1.5, 1)
		if !dynamics.IsLKE(s, cfg) {
			t.Fatalf("enum NE %v rejected as LKE at k=1", p)
		}
	}
	for _, p := range res.LKE {
		s := p.Apply()
		cfg := dynamics.DefaultConfig(game.Max, 1.5, 1)
		if !dynamics.IsLKE(s, cfg) {
			t.Fatalf("enum LKE %v rejected by the dynamics audit", p)
		}
	}
}

// TestTorusFullStack exercises construction → analysis → swap stability
// → dynamics escape under full knowledge, in one flow.
func TestTorusFullStack(t *testing.T) {
	tor, err := construction.BuildTorus(construction.TorusParams{D: 2, L: 2, Delta: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := dynamics.DefaultConfig(game.Max, 2, 4)
	rep := analysis.Analyze(tor.State, cfg)
	if !rep.IsEquilibrium() {
		t.Fatalf("torus analysis: %d deviators", rep.Deviators)
	}
	if !swap.IsSwapStable(tor.State, 4, swap.MaxEcc) {
		t.Fatal("torus not swap-stable")
	}
	// Under full knowledge the torus is NOT stable and the dynamics must
	// escape to something strictly better.
	before := game.SocialCost(tor.State, game.Max, 2)
	full := dynamics.DefaultConfig(game.Max, 2, 1000)
	res := dynamics.Run(tor.State, full)
	after := game.SocialCost(res.Final, game.Max, 2)
	if after >= before {
		t.Fatalf("full knowledge did not improve the torus: %v -> %v", before, after)
	}
}

// TestQualityNeverBelowOne sweeps a mixed grid and asserts the PoA-ratio
// invariant across all equilibria and families.
func TestQualityNeverBelowOne(t *testing.T) {
	cells := dynamics.Grid([]float64{0.5, 2, 8}, []int{2, 4, 1000}, 2)
	factory := func(c dynamics.Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(18, rng), rng)
	}
	for _, r := range dynamics.Sweep(cells, dynamics.DefaultConfig(game.Max, 0, 0), factory, 7) {
		if r.Result.FinalStats.Quality < 1-1e-9 {
			t.Fatalf("cell %+v: quality %v < 1", r.Cell, r.Result.FinalStats.Quality)
		}
	}
}

// TestRunRecordPipeline serializes sweep outcomes as JSONL and decodes
// them back.
func TestRunRecordPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	var buf bytes.Buffer
	for seed := 0; seed < 3; seed++ {
		s := RandomState(15, rng)
		cfg := DefaultConfig(MaxNCG, 2, 3)
		res := Run(s, cfg)
		raw, err := ncgio.MarshalState(res.Final)
		if err != nil {
			t.Fatal(err)
		}
		rec := ncgio.RunRecord{
			Variant: "MAXNCG", Alpha: 2, K: 3, Seed: int64(seed),
			Status: res.Status.String(), Rounds: res.Rounds,
			TotalMoves: res.TotalMoves, Diameter: res.FinalStats.Diameter,
			SocialCost: res.FinalStats.SocialCost, Quality: res.FinalStats.Quality,
			State: raw,
		}
		if err := ncgio.EncodeRunRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ncgio.DecodeRunRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records=%d", len(recs))
	}
	for _, rec := range recs {
		s, err := ncgio.DecodeState(bytes.NewReader(rec.State))
		if err != nil {
			t.Fatal(err)
		}
		if s.N() != 15 {
			t.Fatalf("embedded state n=%d", s.N())
		}
	}
}
