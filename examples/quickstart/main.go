// Quickstart: build a random starting network, run locality-constrained
// best-response dynamics for MAXNCG, and inspect the equilibrium.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	ncg "repro"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// 50 players start on a uniform random tree; each edge is owned by a
	// fair-coin endpoint (§5.2 of the paper).
	s := ncg.RandomState(50, rng)
	fmt.Printf("start: %d players, diameter %d, social cost %.1f\n",
		s.N(), s.Graph().Diameter(), ncg.SocialCost(s, ncg.MaxNCG, 2))

	// Every player sees only her 3-neighborhood and pays α=2 per edge.
	cfg := ncg.DefaultConfig(ncg.MaxNCG, 2, 3)
	res := ncg.Run(s, cfg)

	fmt.Printf("dynamics: %s after %d rounds (%d strategy changes)\n",
		res.Status, res.Rounds, res.TotalMoves)
	fmt.Printf("equilibrium: diameter %d, social cost %.1f, quality %.3f (1.0 = social optimum)\n",
		res.FinalStats.Diameter, res.FinalStats.SocialCost, res.FinalStats.Quality)

	// The result is a Local Knowledge Equilibrium: no player can improve
	// in the worst case over networks consistent with her k-ball view.
	fmt.Printf("LKE audit: %v\n", ncg.IsLKE(res.Final, cfg))

	// Compare with the full-knowledge game (k large): classical Nash
	// dynamics on the same starting network.
	s2 := ncg.RandomState(50, rand.New(rand.NewSource(1)))
	full := ncg.Run(s2, ncg.DefaultConfig(ncg.MaxNCG, 2, 1000))
	fmt.Printf("full knowledge: quality %.3f vs local quality %.3f\n",
		full.FinalStats.Quality, res.FinalStats.Quality)
}
