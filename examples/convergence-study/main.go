// Convergence study: the §5.4 experiment in miniature. Sweeps best-
// response dynamics over an (α, k) grid from random-tree and Erdős–Rényi
// starting networks, in parallel, and reports convergence speed and
// equilibrium quality — the phenomena behind Figures 6, 7 and 10.
//
// Run with: go run ./examples/convergence-study
package main

import (
	"fmt"
	"math/rand"

	ncg "repro"
)

func main() {
	alphas := []float64{0.5, 1, 2, 5}
	ks := []int{2, 3, 5, 1000}
	const seeds = 5
	const n = 40

	cells := ncg.SweepGrid(alphas, ks, seeds)
	fmt.Printf("running %d dynamics on random trees (n=%d) in parallel...\n\n", len(cells), n)

	results := ncg.Sweep(cells, ncg.DefaultConfig(ncg.MaxNCG, 0, 0),
		func(c ncg.Cell, rng *rand.Rand) *ncg.State {
			return ncg.RandomState(n, rng)
		}, 7)

	type key struct {
		a float64
		k int
	}
	rounds := map[key][]float64{}
	quality := map[key][]float64{}
	converged := map[key]int{}
	for _, r := range results {
		kk := key{r.Cell.Alpha, r.Cell.K}
		rounds[kk] = append(rounds[kk], float64(r.Result.Rounds))
		quality[kk] = append(quality[kk], r.Result.FinalStats.Quality)
		if r.Result.Status == ncg.Converged {
			converged[kk]++
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}

	fmt.Printf("%8s %6s | %10s %10s %12s\n", "alpha", "k", "conv/total", "avg rounds", "avg quality")
	for _, a := range alphas {
		for _, k := range ks {
			kk := key{a, k}
			fmt.Printf("%8.2f %6d | %6d/%-3d %10.2f %12.3f\n",
				a, k, converged[kk], seeds, mean(rounds[kk]), mean(quality[kk]))
		}
	}
	fmt.Println("\nObservations matching the paper (§5.4):")
	fmt.Println(" - convergence is fast (a handful of rounds) and cycles are rare;")
	fmt.Println(" - larger k improves equilibrium quality (toward the NE regime);")
	fmt.Println(" - small k with large α leaves long-diameter, low-quality equilibria.")
}
