// SUMNCG frontier demo: Proposition 2.2's conservative behavior. In the
// SUM variant a player must not push any frontier vertex (at distance
// exactly k in her view) beyond distance k — an adversarial tail of
// unseen vertices could hang off it. This example shows a move that looks
// improving inside the view but is rejected by the worst-case rule, and
// contrasts MAXNCG where the same player happily rewires.
//
// Run with: go run ./examples/sumncg-frontier
package main

import (
	"fmt"

	ncg "repro"
)

func main() {
	// A path 0-1-2-3-4-5-6; every edge owned by its left endpoint.
	// Player 3 sits in the middle with k=2: she sees {1,2,3,4,5} and the
	// frontier is {1,5}.
	s := ncg.FromGraphLowOwners(ncg.Path(7))
	const u, k, alpha = 3, 2, 0.4

	v := ncg.ExtractView(s.Graph(), u, k)
	fmt.Printf("player %d, k=%d: sees %d vertices, frontier size %d\n",
		u, k, v.Size(), len(v.Frontier()))

	// Candidate: drop the bought edge (3,4) and buy (3,5) instead. Inside
	// the view this shortens the sum of distances... but it moves frontier
	// vertex 1? No — it risks vertex 4: d(3,4) becomes 2 — fine. What the
	// worst case rejects is dropping (3,4) without compensation:
	drop := []int{} // buy nothing: severs the whole right side she owns
	delta := ncg.SumDelta(s, u, k, alpha, drop)
	fmt.Printf("Δ(drop (3,4)) = %v → rejected (unbounded worst case: hidden\n", delta)
	fmt.Println("  vertices could hang behind the frontier vertex 5)")

	// A frontier-safe move: swap (3,4) for (3,5). 4 stays within k via 5.
	swap := []int{5}
	delta = ncg.SumDelta(s, u, k, alpha, swap)
	fmt.Printf("Δ(swap (3,4)→(3,5)) = %+.2f → %s\n", delta,
		verdict(delta < 0))

	// MAXNCG has no such guard (Prop. 2.1: the worst case IS the view):
	r := ncg.MaxBestResponse(s, u, k, alpha)
	fmt.Printf("\nMAXNCG best response for player %d: buy %v (cost %.2f vs current %.2f)\n",
		u, r.Strategy, r.Cost, r.CurrentCost)

	// Run full SUMNCG dynamics: equilibria still form, just more
	// conservatively.
	cfg := ncg.DefaultConfig(ncg.SumNCG, alpha, k)
	res := ncg.Run(s, cfg)
	fmt.Printf("\nSUMNCG dynamics: %s after %d rounds; final diameter %d\n",
		res.Status, res.Rounds, res.FinalStats.Diameter)
}

func verdict(improving bool) string {
	if improving {
		return "improving, allowed"
	}
	return "not improving"
}
