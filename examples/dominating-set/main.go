// Dominating set via best response: the §2 NP-hardness reduction run
// forwards. Computing a best response in the (local-knowledge) network
// creation game is NP-hard because a player joining a network G and
// optimizing her links ends up buying edges towards a minimum dominating
// set of G. This example uses the game's exact best-response engine as a
// dominating-set solver and cross-checks γ on known families.
//
// Run with: go run ./examples/dominating-set
package main

import (
	"fmt"
	"log"
	"math/rand"

	ncg "repro"
)

func main() {
	fmt.Println("γ(G) recovered from the joining player's best response (§2 reduction):")
	fmt.Printf("%-22s %8s %10s %10s\n", "graph", "n", "γ via game", "expected")

	cases := []struct {
		name     string
		g        *ncg.Graph
		expected int
	}{
		{"star S9", ncg.Star(10), 1},
		{"path P9", ncg.Path(9), 3},
		{"cycle C12", ncg.CycleG(12), 4},
		{"complete K7", ncg.Complete(7), 1},
		{"grid 3x4", ncg.Grid(3, 4), 4},
	}
	for _, c := range cases {
		gamma, err := ncg.DominationNumber(c.g, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8d %10d %10d\n", c.name, c.g.N(), gamma, c.expected)
	}

	// Random trees: the game-based γ always matches an independent check
	// (the solution dominates, and no smaller one exists by exactness).
	rng := rand.New(rand.NewSource(1))
	fmt.Println("\nrandom trees (n=25):")
	for i := 0; i < 3; i++ {
		tree := ncg.RandomTree(25, rng)
		gamma, err := ncg.DominationNumber(tree, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tree %d: γ = %d (diameter %d)\n", i+1, gamma, tree.Diameter())
	}
	fmt.Println("\nThe reduction is why the paper solves best responses with an exact")
	fmt.Println("dominating-set solver (§5.3) — and why the local game stays NP-hard")
	fmt.Println("for every k >= 1 (the joining player sees everything at distance 1).")
}
