// Torus lower bound: build the §3.1 d-dimensional stretched torus (the
// paper's Theorem 3.12 construction, drawn in Figures 1–2), verify it is
// a Local Knowledge Equilibrium with the exact best responder, and show
// how its Price-of-Anarchy ratio grows with the long dimension while the
// social optimum stays a star.
//
// Run with: go run ./examples/torus-lowerbound
package main

import (
	"fmt"
	"log"

	ncg "repro"
	"repro/internal/bounds"
	"repro/internal/construction"
	"repro/internal/dynamics"
	"repro/internal/game"
)

func main() {
	const (
		k     = 4
		alpha = 2.0
	)
	fmt.Printf("Theorem 3.12 torus family at α=%g, k=%d (ℓ=2, d=2, δ1=3):\n\n", alpha, k)
	fmt.Printf("%8s %8s %10s %12s %14s\n", "δ2", "n", "diameter", "PoA ratio", "LKE verified")

	for _, delta2 := range []int{4, 6, 10, 14} {
		params := construction.TorusParams{D: 2, L: 2, Delta: []int{3, delta2}}
		tor, err := construction.BuildTorus(params)
		if err != nil {
			log.Fatal(err)
		}
		cfg := dynamics.DefaultConfig(game.Max, alpha, k)
		stable := dynamics.IsLKE(tor.State, cfg)
		ratio := game.Quality(tor.State, game.Max, alpha)
		fmt.Printf("%8d %8d %10d %12.3f %14v\n",
			delta2, tor.State.N(), tor.State.Graph().Diameter(), ratio, stable)
	}

	fmt.Println("\nThe ratio grows linearly in n — the diameter term dominates —")
	fmt.Println("matching the Ω(n / (α·2^Θ(log² k/α))) lower bound of Theorem 3.12.")
	n := 500
	fmt.Printf("theory at n=%d: lower bound %.1f\n", n, bounds.MaxLowerBound(n, k, alpha))

	// Contrast: the same players under FULL knowledge are NOT stable —
	// a player can see across the torus and shortcut it.
	params := construction.TorusParams{D: 2, L: 2, Delta: []int{3, 10}}
	tor, err := construction.BuildTorus(params)
	if err != nil {
		log.Fatal(err)
	}
	fullCfg := ncg.DefaultConfig(ncg.MaxNCG, alpha, 1000)
	fmt.Printf("\nsame torus with full knowledge: LKE? %v (locality is what makes it stable)\n",
		ncg.IsLKE(tor.State, fullCfg))
}
