// Package analysis computes structural reports on game states: degree and
// bought-edge distributions, per-player cost breakdowns, equilibrium
// certificates (per-player improvement potential), and the gap between a
// state's social cost and the theoretical bounds. The cmd tools use it to
// explain *why* an equilibrium is good or bad, beyond the single quality
// number the figures plot.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bounds"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/view"
)

// PlayerReport is one player's situation in a state.
type PlayerReport struct {
	Player     int
	Bought     int
	Degree     int
	ViewSize   int
	Cost       float64
	BestCost   float64 // cost of the player's best response on her view
	Improvable bool
}

// Report is a full structural snapshot of a state under (variant, α, k).
type Report struct {
	N          int
	Edges      int
	Diameter   int
	SocialCost float64
	Optimum    float64
	Quality    float64
	Unfairness float64
	// Deviators counts players with strictly improving responses
	// (0 ⇔ the state is an LKE for the configured responder).
	Deviators int
	Players   []PlayerReport
	// TheoryLower / TheoryUpper evaluate the PoA bound formulas at the
	// state's parameters (MAXNCG only; zero for SUMNCG upper).
	TheoryLower float64
	TheoryUpper float64
}

// Analyze builds the report. It runs one responder call per player, so
// cost is comparable to a single dynamics round.
func Analyze(s *game.State, cfg dynamics.Config) Report {
	costs := game.AllPlayerCosts(s, cfg.Variant, cfg.Alpha)
	g := s.Graph()
	r := Report{
		N:          s.N(),
		Edges:      g.M(),
		Diameter:   g.Diameter(),
		SocialCost: game.SocialCost(s, cfg.Variant, cfg.Alpha),
		Optimum:    game.OptimumSocialCost(s.N(), cfg.Variant, cfg.Alpha),
		Quality:    game.Quality(s, cfg.Variant, cfg.Alpha),
		Unfairness: game.Unfairness(s, cfg.Variant, cfg.Alpha),
	}
	if cfg.Variant == game.Max {
		r.TheoryLower = bounds.MaxLowerBound(s.N(), cfg.K, cfg.Alpha)
		r.TheoryUpper = bounds.MaxUpperBound(s.N(), cfg.K, cfg.Alpha)
	} else {
		r.TheoryLower = bounds.SumLowerBound(s.N(), cfg.K, cfg.Alpha)
	}
	responder := cfg.ResolveResponder()
	for u := 0; u < s.N(); u++ {
		resp := responder(s, u, cfg.K, cfg.Alpha)
		pr := PlayerReport{
			Player:     u,
			Bought:     s.BoughtCount(u),
			Degree:     g.Degree(u),
			ViewSize:   view.BallSize(g, u, cfg.K),
			Cost:       costs[u],
			BestCost:   resp.Cost,
			Improvable: resp.Improving,
		}
		if pr.Improvable {
			r.Deviators++
		}
		r.Players = append(r.Players, pr)
	}
	return r
}

// IsEquilibrium reports whether the analyzed state had no deviators.
func (r Report) IsEquilibrium() bool { return r.Deviators == 0 }

// DegreeHistogram returns degree → count for the state's network.
func DegreeHistogram(s *game.State) map[int]int {
	h := make(map[int]int)
	g := s.Graph()
	for v := 0; v < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// BoughtHistogram returns |σ_u| → count.
func BoughtHistogram(s *game.State) map[int]int {
	h := make(map[int]int)
	for u := 0; u < s.N(); u++ {
		h[s.BoughtCount(u)]++
	}
	return h
}

// FormatHistogram renders a histogram map as "k:v" pairs sorted by key.
func FormatHistogram(h map[int]int) string {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d:%d", k, h[k])
	}
	return strings.Join(parts, " ")
}

// Summary renders the headline numbers as one human-readable block.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "players=%d edges=%d diameter=%d\n", r.N, r.Edges, r.Diameter)
	fmt.Fprintf(&b, "social=%.1f optimum=%.1f quality=%.3f unfairness=%.3f\n",
		r.SocialCost, r.Optimum, r.Quality, r.Unfairness)
	fmt.Fprintf(&b, "deviators=%d (equilibrium=%v)\n", r.Deviators, r.IsEquilibrium())
	fmt.Fprintf(&b, "theory: PoA lower=%.2f upper=%.2f\n", r.TheoryLower, r.TheoryUpper)
	return b.String()
}
