package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/gen"
)

func TestAnalyzeStarEquilibrium(t *testing.T) {
	s := game.NewState(8)
	for v := 1; v < 8; v++ {
		s.Buy(v, 0)
	}
	cfg := dynamics.DefaultConfig(game.Max, 3, 4)
	r := Analyze(s, cfg)
	if !r.IsEquilibrium() {
		t.Fatalf("star not an equilibrium: %d deviators", r.Deviators)
	}
	if r.N != 8 || r.Edges != 7 || r.Diameter != 2 {
		t.Fatalf("shape: %+v", r)
	}
	if len(r.Players) != 8 {
		t.Fatalf("player reports: %d", len(r.Players))
	}
	center := r.Players[0]
	if center.Bought != 0 || center.Degree != 7 || center.Cost != 1 {
		t.Fatalf("center report: %+v", center)
	}
}

func TestAnalyzeDetectsDeviators(t *testing.T) {
	s := game.FromGraphLowOwners(gen.Path(12))
	cfg := dynamics.DefaultConfig(game.Max, 0.5, 1000)
	r := Analyze(s, cfg)
	if r.IsEquilibrium() {
		t.Fatal("cheap-α path should have deviators")
	}
	found := false
	for _, p := range r.Players {
		if p.Improvable && p.BestCost >= p.Cost {
			t.Fatalf("improvable player %d has BestCost %v >= Cost %v", p.Player, p.BestCost, p.Cost)
		}
		found = found || p.Improvable
	}
	if !found {
		t.Fatal("deviator count positive but no player flagged")
	}
}

func TestAnalyzeAfterDynamicsIsEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := game.FromGraphRandomOwners(gen.RandomTree(15, rng), rng)
	cfg := dynamics.DefaultConfig(game.Max, 2, 3)
	res := dynamics.Run(s, cfg)
	if res.Status != dynamics.Converged {
		t.Skip("no convergence")
	}
	if !Analyze(res.Final, cfg).IsEquilibrium() {
		t.Fatal("converged state analyzed as non-equilibrium")
	}
}

func TestHistograms(t *testing.T) {
	s := game.NewState(5)
	s.Buy(1, 0)
	s.Buy(2, 0)
	s.Buy(3, 0)
	s.Buy(4, 0)
	deg := DegreeHistogram(s)
	if deg[4] != 1 || deg[1] != 4 {
		t.Fatalf("degree histogram: %v", deg)
	}
	bought := BoughtHistogram(s)
	if bought[0] != 1 || bought[1] != 4 {
		t.Fatalf("bought histogram: %v", bought)
	}
	if got := FormatHistogram(deg); got != "1:4 4:1" {
		t.Fatalf("format: %q", got)
	}
}

func TestSummary(t *testing.T) {
	s := game.NewState(4)
	s.Buy(1, 0)
	s.Buy(2, 0)
	s.Buy(3, 0)
	cfg := dynamics.DefaultConfig(game.Max, 2, 3)
	out := Analyze(s, cfg).Summary()
	for _, want := range []string{"players=4", "quality=", "equilibrium=true", "theory"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeSumVariant(t *testing.T) {
	s := game.NewState(6)
	for v := 1; v < 6; v++ {
		s.Buy(v, 0)
	}
	cfg := dynamics.DefaultConfig(game.Sum, 1.5, 2)
	r := Analyze(s, cfg)
	if !r.IsEquilibrium() {
		t.Fatalf("SUM star not equilibrium: %d deviators", r.Deviators)
	}
	if r.TheoryUpper != 0 {
		t.Fatal("SUM report should have no upper bound")
	}
}
