package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bounds"
	"repro/internal/construction"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/table"
	"repro/internal/view"
)

// torusReport summarizes a built §3.1 torus: the quantities Figures 1–2
// illustrate (vertex classes, degrees, view of the marked vertex) plus the
// distance invariants of Lemma 3.3 / Corollary 3.4.
func torusReport(title string, p construction.TorusParams, k int) (*table.Table, error) {
	tor, err := construction.BuildTorus(p)
	if err != nil {
		return nil, err
	}
	g := tor.State.Graph()
	inter := 0
	for _, is := range tor.Intersection {
		if is {
			inter++
		}
	}
	// The marked vertex (k*, …, k*) with k* = ℓ(δ₁−1), as in the figures.
	kStar := p.L * (p.Delta[0] - 1)
	coords := make([]int, p.D)
	for i := range coords {
		coords[i] = kStar
	}
	marked := tor.VertexAt(coords)
	t := table.New(title, "quantity", "value")
	t.AddRowf("dimensions d", p.D)
	t.AddRowf("stretch ℓ", p.L)
	t.AddRowf("δ", fmt.Sprint(p.Delta))
	t.AddRowf("vertices n", g.N())
	t.AddRowf("intersection vertices N", inter)
	t.AddRowf("edges", g.M())
	t.AddRowf("diameter", g.Diameter())
	t.AddRowf("Corollary 3.4 lower bound ℓ·δ_d", tor.DiameterLowerBound())
	if marked >= 0 {
		v := view.Extract(g, marked, k)
		t.AddRowf(fmt.Sprintf("view size of (k*,…,k*) at k=%d", k), v.Size())
		t.AddRowf("frontier size", len(v.Frontier()))
	}
	return t, nil
}

// Figure1 reproduces Figure 1's construction: d = 2, δ = (15, 5), ℓ = 2,
// with the view of the intersection vertex (k*, k*) at k = 4.
func Figure1(Params) (*table.Table, error) {
	return torusReport("Figure 1 — torus d=2, δ=(15,5), ℓ=2",
		construction.TorusParams{D: 2, L: 2, Delta: []int{15, 5}}, 4)
}

// Figure2 reproduces Figure 2's construction: d = 2, δ = (3, 4), ℓ = 2.
func Figure2(Params) (*table.Table, error) {
	return torusReport("Figure 2 — torus d=2, δ=(3,4), ℓ=2",
		construction.TorusParams{D: 2, L: 2, Delta: []int{3, 4}}, 4)
}

// TorusDOT renders a torus as Graphviz DOT (intersection vertices boxed),
// for visual comparison against Figures 1–2.
func TorusDOT(p construction.TorusParams) (string, error) {
	tor, err := construction.BuildTorus(p)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("graph torus {\n")
	for v, coords := range tor.Coords {
		shape := "point"
		if tor.Intersection[v] {
			shape = "box"
		}
		fmt.Fprintf(&b, "  v%d [shape=%s,label=\"%v\"];\n", v, shape, coords)
	}
	for _, e := range tor.State.Graph().Edges() {
		fmt.Fprintf(&b, "  v%d -- v%d;\n", e.U, e.V)
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// LowerBoundAudit verifies that the paper's lower-bound configurations are
// LKE-stable under the exact MAXNCG responder and reports their social
// cost ratio against the optimum — the experimental counterpart of
// Lemma 3.1, Lemma 3.2, and Theorem 3.12.
func LowerBoundAudit(p Params) *table.Table {
	t := table.New("Lower-bound audit — constructions vs exact LKE check",
		"construction", "n", "alpha", "k", "is LKE", "PoA ratio", "theory lower bound")
	rng := rand.New(rand.NewSource(p.Seed + 42))

	audit := func(name string, s *game.State, alpha float64, k int) {
		cfg := dynamics.DefaultConfig(game.Max, alpha, k)
		stable := dynamics.IsLKE(s, cfg)
		ratio := game.Quality(s, game.Max, alpha)
		t.AddRowf(name, s.N(), alpha, k, stable, ratio,
			bounds.MaxLowerBound(s.N(), k, alpha))
	}

	// Lemma 3.1: cycle, α >= k−1.
	if s, err := construction.CycleState(30); err == nil {
		audit("Lemma 3.1 cycle", s, 3, 3)
	}
	// Lemma 3.2 at k=2 via the exact projective-plane incidence graph.
	if s, err := construction.ProjectivePlaneState(3, rng); err == nil {
		audit("Lemma 3.2 PG(2,3)", s, 1.5, 2)
	}
	// Lemma 3.2 at k=3 via the randomized high-girth generator (girth 8).
	if s, err := construction.HighGirthState(60, 3, 3, rng); err == nil {
		audit("Lemma 3.2 girth-8", s, 1.5, 3)
	}
	// Theorem 3.12 torus at α=2, k=4 (Figure 2's graph).
	if tor, err := construction.BuildTorus(construction.TorusParams{D: 2, L: 2, Delta: []int{3, 4}}); err == nil {
		audit("Theorem 3.12 torus", tor.State, 2, 4)
	}
	// A longer torus (larger δ₂) — diameter, and hence the ratio, grows.
	if tor, err := construction.BuildTorus(construction.TorusParams{D: 2, L: 2, Delta: []int{3, 10}}); err == nil {
		audit("Theorem 3.12 torus (long)", tor.State, 2, 4)
	}
	return t
}

// SumLowerBoundAudit verifies Lemma 4.1's SUMNCG equilibrium claim on the
// d=2, ℓ=2 torus: for α >= 4k³ the construction is stable under the exact
// (exhaustive) SUMNCG responder — feasible because each view is small.
func SumLowerBoundAudit(p Params) *table.Table {
	t := table.New("SUMNCG lower-bound audit (Lemma 4.1 / Theorem 4.2)",
		"construction", "n", "alpha", "k", "stable (local audit)", "PoA ratio", "theory lower bound")
	k := 2
	alpha := float64(4 * k * k * k) // α = 4k³
	tor, err := construction.BuildTorus(construction.TorusParams{
		D: 2, L: 2, Delta: []int{k/2 + 1, 6},
	})
	if err != nil {
		t.AddRowf("Lemma 4.1 torus", 0, alpha, k, false, 0.0, 0.0)
		return t
	}
	cfg := dynamics.DefaultConfig(game.Sum, alpha, k)
	stable := dynamics.IsLKE(tor.State, cfg)
	t.AddRowf("Lemma 4.1 torus", tor.State.N(), alpha, k, stable,
		game.Quality(tor.State, game.Sum, alpha),
		bounds.SumLowerBound(tor.State.N(), k, alpha))
	return t
}
