// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5): Table I–II input statistics, Figures 5–10
// dynamics studies, Figures 1–2 construction renders, Figures 3–4 bound
// region maps, plus the §5.4 cycle census and the lower-bound audits.
// Every driver returns rendered tables so cmd/ tools and the benchmark
// harness share one code path.
package experiments

import (
	"repro/internal/dynamics"
	"repro/internal/game"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleCI is a representative sub-grid sized for tests and benches.
	ScaleCI Scale = iota
	// ScalePaper reproduces the paper's full grids (§5.1): 15 α values ×
	// 12 k values × 20 seeds. Long-running; used by cmd/ncg-experiments
	// with -scale paper.
	ScalePaper
)

// Params carries the experiment configuration.
type Params struct {
	Scale Scale
	// Seed is the base seed for all derived per-cell RNGs.
	Seed int64

	// Optional overrides (nil/zero = use the scale's defaults). Tests and
	// ad-hoc cmd invocations use these to shrink or reshape the grids.
	AlphaGrid     []float64
	KGrid         []int
	SeedsOverride int
	TreeSizeGrid  []int
	DynTreeSize   int

	// CheckpointDir, when set, makes every dynamics sweep stream its
	// results to a JSONL checkpoint in that directory and resume from it
	// on the next invocation — so a paper-scale figure run killed halfway
	// picks up where it stopped instead of starting over (and figures
	// sharing a sweep reuse each other's files). Results are identical
	// with or without checkpointing.
	CheckpointDir string
}

// DefaultParams returns CI-scale parameters with a fixed seed.
func DefaultParams() Params { return Params{Scale: ScaleCI, Seed: 1} }

// Alphas returns the α grid (§5.1 lists the paper's 15 values).
func (p Params) Alphas() []float64 {
	if p.AlphaGrid != nil {
		return p.AlphaGrid
	}
	if p.Scale == ScalePaper {
		return []float64{0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1, 1.5, 2, 3, 5, 7, 10}
	}
	return []float64{0.1, 0.5, 1, 2, 5, 10}
}

// Ks returns the k grid (k = 1000 ≡ the classical full-knowledge game).
func (p Params) Ks() []int {
	if p.KGrid != nil {
		return p.KGrid
	}
	if p.Scale == ScalePaper {
		return []int{2, 3, 4, 5, 6, 7, 10, 15, 20, 25, 30, 1000}
	}
	return []int{2, 3, 4, 6, 1000}
}

// Seeds returns the number of random starting networks per cell (20 in
// the paper).
func (p Params) Seeds() int {
	if p.SeedsOverride > 0 {
		return p.SeedsOverride
	}
	if p.Scale == ScalePaper {
		return 20
	}
	return 5
}

// TreeSizes returns the random-tree vertex counts (Table I).
func (p Params) TreeSizes() []int {
	if p.TreeSizeGrid != nil {
		return p.TreeSizeGrid
	}
	if p.Scale == ScalePaper {
		return []int{20, 30, 50, 70, 100, 200}
	}
	return []int{20, 30, 50}
}

// ERConfigs returns the Erdős–Rényi (n, p) pairs of Table II.
func (p Params) ERConfigs() [][2]float64 {
	if p.Scale == ScalePaper {
		return [][2]float64{
			{100, 0.060}, {100, 0.100}, {100, 0.200},
			{200, 0.035}, {200, 0.050}, {200, 0.100},
		}
	}
	return [][2]float64{{60, 0.10}, {60, 0.16}}
}

// DynamicsTreeSize returns the tree size used by the α/k sweeps
// (n = 100 in the paper's Figures 5, 8–10).
func (p Params) DynamicsTreeSize() int {
	if p.DynTreeSize > 0 {
		return p.DynTreeSize
	}
	if p.Scale == ScalePaper {
		return 100
	}
	return 40
}

// DynamicsERConfig returns the ER configuration used by Figures 8–9
// (n=100, p=0.1 in the paper).
func (p Params) DynamicsERConfig() (int, float64) {
	if p.Scale == ScalePaper {
		return 100, 0.1
	}
	return 50, 0.14
}

// treeFactory and erFactory are the shared starting-state factories
// (dynamics.TreeFactory / dynamics.ERFactory) — one definition serves
// both the figure drivers and the sweep daemon, so their checkpointed
// results stay interchangeable.
var (
	treeFactory = dynamics.TreeFactory
	erFactory   = dynamics.ERFactory
)

// baseConfig returns the dynamics configuration used by every figure.
func baseConfig(variant game.Variant) dynamics.Config {
	cfg := dynamics.DefaultConfig(variant, 0, 0) // α, k filled per cell
	cfg.MaxRounds = 100
	cfg.CycleCheckAfter = 25
	return cfg
}
