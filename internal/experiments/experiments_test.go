package experiments

import (
	"strings"
	"testing"

	"repro/internal/construction"
)

func tiny() Params { return Params{Scale: ScaleCI, Seed: 7} }

func TestTableI(t *testing.T) {
	p := tiny()
	tab := TableI(p)
	if len(tab.Rows) != len(p.TreeSizes()) {
		t.Fatalf("rows=%d, want %d", len(tab.Rows), len(p.TreeSizes()))
	}
	out := tab.String()
	if !strings.Contains(out, "±") {
		t.Fatal("no confidence intervals rendered")
	}
}

func TestTableII(t *testing.T) {
	p := tiny()
	tab := TableII(p)
	if len(tab.Rows) != len(p.ERConfigs()) {
		t.Fatalf("rows=%d, want %d", len(tab.Rows), len(p.ERConfigs()))
	}
}

func TestFigure1And2(t *testing.T) {
	f1, err := Figure1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1.String(), "450") {
		t.Fatalf("Figure 1 should report n=450:\n%s", f1)
	}
	f2, err := Figure2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2.String(), "72") {
		t.Fatalf("Figure 2 should report n=72:\n%s", f2)
	}
}

func TestTorusDOT(t *testing.T) {
	dot, err := TorusDOT(construction.TorusParams{D: 2, L: 2, Delta: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dot, "graph torus {") || !strings.Contains(dot, "--") {
		t.Fatalf("bad DOT output:\n%.200s", dot)
	}
}

func TestFigure3And4(t *testing.T) {
	f3 := Figure3(100000)
	if len(f3.Rows) != len(regionGridAlphas)*len(regionGridKs) {
		t.Fatalf("figure 3 rows=%d", len(f3.Rows))
	}
	if !strings.Contains(f3.String(), "NE≡LKE") {
		t.Fatal("figure 3 lacks the full-knowledge region")
	}
	f4 := Figure4(100000)
	if !strings.Contains(f4.String(), "Ω(n/k)") {
		t.Fatal("figure 4 lacks the strong lower-bound region")
	}
}

func TestLowerBoundAudit(t *testing.T) {
	tab := LowerBoundAudit(tiny())
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Fatalf("a lower-bound construction failed its LKE audit:\n%s", out)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("audit covered only %d constructions:\n%s", len(tab.Rows), out)
	}
}

func TestSumLowerBoundAudit(t *testing.T) {
	tab := SumLowerBoundAudit(tiny())
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Fatalf("SUM lower-bound construction failed its audit:\n%s", out)
	}
}

func TestScalesDiffer(t *testing.T) {
	ci, paper := Params{Scale: ScaleCI}, Params{Scale: ScalePaper}
	if len(paper.Alphas()) != 15 || len(paper.Ks()) != 12 || paper.Seeds() != 20 {
		t.Fatal("paper scale does not match §5.1")
	}
	if len(ci.Alphas()) >= len(paper.Alphas()) {
		t.Fatal("CI α grid should be smaller")
	}
	if ci.DynamicsTreeSize() >= paper.DynamicsTreeSize() {
		t.Fatal("CI tree size should be smaller")
	}
}
