package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/stats"
	"repro/internal/table"
)

// aggKey groups sweep cells by parameter pair.
type aggKey struct {
	Alpha float64
	K     int
}

// aggregate groups per-cell metric values by (α, k).
func aggregate(results []dynamics.CellResult, metric func(dynamics.CellResult) float64) map[aggKey][]float64 {
	out := make(map[aggKey][]float64)
	for _, r := range results {
		k := aggKey{Alpha: r.Cell.Alpha, K: r.Cell.K}
		out[k] = append(out[k], metric(r))
	}
	return out
}

// sweepTrees runs the standard tree sweep at the α×k grid of p.
func sweepTrees(p Params, variant game.Variant) []dynamics.CellResult {
	cells := dynamics.Grid(p.Alphas(), p.Ks(), p.Seeds())
	label := fmt.Sprintf("trees-%s-n%d", variant, p.DynamicsTreeSize())
	return runSweep(p, label, cells, baseConfig(variant), treeFactory(p.DynamicsTreeSize()), p.Seed)
}

// Figure5 reproduces Figure 5: minimum and average number of vertices in
// the players' views on stable networks, as a function of α for each k
// (random trees, n = DynamicsTreeSize()).
func Figure5(p Params) *table.Table {
	results := sweepTrees(p, game.Max)
	minAgg := aggregate(results, func(r dynamics.CellResult) float64 {
		return float64(r.Result.FinalStats.MinViewSize)
	})
	avgAgg := aggregate(results, func(r dynamics.CellResult) float64 {
		return r.Result.FinalStats.AvgViewSize
	})
	t := table.New("Figure 5 — view sizes at equilibrium (random trees)",
		"alpha", "k", "min view size", "avg view size")
	for _, a := range p.Alphas() {
		for _, k := range p.Ks() {
			key := aggKey{Alpha: a, K: k}
			t.AddRowf(a, k, stats.Summarize(minAgg[key]), stats.Summarize(avgAgg[key]))
		}
	}
	return t
}

// Figure6 reproduces Figure 6: quality of the stable networks (social
// cost / social optimum) as a function of n, for α = 1 (left panel) and
// α = 10 (right panel), on random trees.
func Figure6(p Params) *table.Table {
	sizes := p.TreeSizes()
	t := table.New("Figure 6 — equilibrium quality vs n (random trees; α ∈ {1,10})",
		"alpha", "n", "k", "quality")
	for _, alpha := range []float64{1, 10} {
		for _, n := range sizes {
			cells := dynamics.Grid([]float64{alpha}, p.Ks(), p.Seeds())
			results := runSweep(p, fmt.Sprintf("fig6-trees-n%d-a%g", n, alpha), cells, baseConfig(game.Max), treeFactory(n), p.Seed+int64(n))
			agg := aggregate(results, func(r dynamics.CellResult) float64 {
				return r.Result.FinalStats.Quality
			})
			for _, k := range p.Ks() {
				t.AddRowf(alpha, n, k, stats.Summarize(agg[aggKey{Alpha: alpha, K: k}]))
			}
		}
	}
	return t
}

// Figure7 reproduces Figure 7: quality of the stable networks as a
// function of k at α = 2, on random trees (per n) and on Erdős–Rényi
// graphs, against the theoretical trend f(k) = k/2^{log² k} (bold red
// line in the paper).
func Figure7(p Params) *table.Table {
	const alpha = 2
	t := table.New("Figure 7 — equilibrium quality vs k (α = 2)",
		"class", "n", "k", "quality", "f(k) benchmark")
	ks := p.Ks()
	for _, n := range p.TreeSizes() {
		cells := dynamics.Grid([]float64{alpha}, ks, p.Seeds())
		results := runSweep(p, fmt.Sprintf("fig7-trees-n%d", n), cells, baseConfig(game.Max), treeFactory(n), p.Seed+int64(7*n))
		agg := aggregate(results, func(r dynamics.CellResult) float64 {
			return r.Result.FinalStats.Quality
		})
		for _, k := range ks {
			t.AddRowf("tree", n, k,
				stats.Summarize(agg[aggKey{Alpha: alpha, K: k}]),
				bounds.Figure7Benchmark(k))
		}
	}
	// The paper's right panel: ER(100, 0.2) — scaled at CI size.
	nER, pER := p.DynamicsERConfig()
	if p.Scale == ScalePaper {
		nER, pER = 100, 0.2
	}
	cells := dynamics.Grid([]float64{alpha}, ks, p.Seeds())
	results := runSweep(p, fmt.Sprintf("fig7-er-n%d-p%g", nER, pER), cells, baseConfig(game.Max), erFactory(nER, pER), p.Seed+777)
	agg := aggregate(results, func(r dynamics.CellResult) float64 {
		return r.Result.FinalStats.Quality
	})
	for _, k := range ks {
		t.AddRowf(fmt.Sprintf("ER(p=%.2f)", pER), nER, k,
			stats.Summarize(agg[aggKey{Alpha: alpha, K: k}]),
			bounds.Figure7Benchmark(k))
	}
	return t
}

// Figure8 reproduces Figure 8: maximum degree and maximum number of
// bought edges of stable networks as a function of α, for each k, on
// Erdős–Rényi graphs.
func Figure8(p Params) *table.Table {
	n, prob := p.DynamicsERConfig()
	cells := dynamics.Grid(p.Alphas(), p.Ks(), p.Seeds())
	results := runSweep(p, fmt.Sprintf("fig8-er-n%d-p%g", n, prob), cells, baseConfig(game.Max), erFactory(n, prob), p.Seed+8)
	degAgg := aggregate(results, func(r dynamics.CellResult) float64 {
		return float64(r.Result.FinalStats.MaxDegree)
	})
	boughtAgg := aggregate(results, func(r dynamics.CellResult) float64 {
		return float64(r.Result.FinalStats.MaxBought)
	})
	t := table.New(fmt.Sprintf("Figure 8 — max degree / max bought edges (ER n=%d p=%.2f)", n, prob),
		"alpha", "k", "max degree", "max bought edges")
	for _, a := range p.Alphas() {
		for _, k := range p.Ks() {
			key := aggKey{Alpha: a, K: k}
			t.AddRowf(a, k, stats.Summarize(degAgg[key]), stats.Summarize(boughtAgg[key]))
		}
	}
	return t
}

// Figure9 reproduces Figure 9: the unfairness ratio (highest / lowest
// player cost) of stable networks as a function of α for each k, on
// Erdős–Rényi graphs. The paper's headline: smaller k yields fairer
// equilibria.
func Figure9(p Params) *table.Table {
	n, prob := p.DynamicsERConfig()
	cells := dynamics.Grid(p.Alphas(), p.Ks(), p.Seeds())
	results := runSweep(p, fmt.Sprintf("fig9-er-n%d-p%g", n, prob), cells, baseConfig(game.Max), erFactory(n, prob), p.Seed+9)
	agg := aggregate(results, func(r dynamics.CellResult) float64 {
		return r.Result.FinalStats.Unfairness
	})
	t := table.New(fmt.Sprintf("Figure 9 — unfairness ratio (ER n=%d p=%.2f)", n, prob),
		"alpha", "k", "unfairness")
	for _, a := range p.Alphas() {
		for _, k := range p.Ks() {
			t.AddRowf(a, k, stats.Summarize(agg[aggKey{Alpha: a, K: k}]))
		}
	}
	return t
}

// Figure10 reproduces Figure 10: rounds to convergence as a function of α
// (left panel, fixed n) and as a function of n at α = 2 (right panel), on
// random trees.
func Figure10(p Params) (*table.Table, *table.Table) {
	left := table.New(fmt.Sprintf("Figure 10 (left) — rounds vs α (trees n=%d)", p.DynamicsTreeSize()),
		"alpha", "k", "rounds", "converged fraction")
	results := sweepTrees(p, game.Max)
	roundsAgg := aggregate(results, func(r dynamics.CellResult) float64 {
		return float64(r.Result.Rounds)
	})
	convAgg := aggregate(results, func(r dynamics.CellResult) float64 {
		if r.Result.Status == dynamics.Converged {
			return 1
		}
		return 0
	})
	for _, a := range p.Alphas() {
		for _, k := range p.Ks() {
			key := aggKey{Alpha: a, K: k}
			left.AddRowf(a, k, stats.Summarize(roundsAgg[key]), stats.Mean(convAgg[key]))
		}
	}

	right := table.New("Figure 10 (right) — rounds vs n (trees, α = 2)",
		"n", "k", "rounds")
	for _, n := range p.TreeSizes() {
		cells := dynamics.Grid([]float64{2}, p.Ks(), p.Seeds())
		res := runSweep(p, fmt.Sprintf("fig10-trees-n%d", n), cells, baseConfig(game.Max), treeFactory(n), p.Seed+int64(10*n))
		agg := aggregate(res, func(r dynamics.CellResult) float64 {
			return float64(r.Result.Rounds)
		})
		for _, k := range p.Ks() {
			right.AddRowf(n, k, stats.Summarize(agg[aggKey{Alpha: 2, K: k}]))
		}
	}
	return left, right
}

// CycleCensus reproduces the §5.4 convergence claim ("we simulated about
// 36 000 best-response dynamics, and only encountered best-response cycles
// in 5 of them"): it counts run outcomes over the sweep grid.
func CycleCensus(p Params) *table.Table {
	results := sweepTrees(p, game.Max)
	var converged, cycled, limited int
	for _, r := range results {
		switch r.Result.Status {
		case dynamics.Converged:
			converged++
		case dynamics.Cycled:
			cycled++
		default:
			limited++
		}
	}
	t := table.New("Cycle census (§5.4) — dynamics outcomes over the sweep grid",
		"outcome", "count", "fraction")
	total := len(results)
	frac := func(c int) float64 {
		if total == 0 {
			return 0
		}
		return float64(c) / float64(total)
	}
	t.AddRowf("converged", converged, frac(converged))
	t.AddRowf("cycled", cycled, frac(cycled))
	t.AddRowf("round-limit", limited, frac(limited))
	return t
}
