package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
)

// runSweep is the single sweep entry point for every figure and table
// driver: a plain in-memory dynamics.Sweep normally, or a resumable
// checkpointed sweep when Params.CheckpointDir is set. label names the
// sweep for humans; the checkpoint filename also carries a hash of the
// label, the grid, the seed, and the dynamics budget, so a changed
// configuration gets a fresh file instead of resuming a stale one.
func runSweep(p Params, label string, cells []dynamics.Cell, cfg dynamics.Config, factory dynamics.Factory, seed int64) []dynamics.CellResult {
	if p.CheckpointDir == "" {
		return dynamics.Sweep(cells, cfg, factory, seed)
	}
	res, err := checkpointedSweep(checkpointPath(p.CheckpointDir, label, cells, cfg, seed), cells, cfg, factory, seed)
	if err != nil {
		// Checkpointing is an optimization; never let an I/O problem take
		// down a figure run.
		fmt.Fprintf(os.Stderr, "experiments: checkpoint %s unavailable (%v); running in memory\n", label, err)
		return dynamics.Sweep(cells, cfg, factory, seed)
	}
	return res
}

// checkpointPath derives the sweep's checkpoint file. Everything that
// determines the results is folded into the name, so distinct sweeps
// never share a file and identical sweeps (e.g. the tree sweep shared by
// Figure 5, Figure 10 and the cycle census) always do.
func checkpointPath(dir, label string, cells []dynamics.Cell, cfg dynamics.Config, seed int64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%d", label, seed, cfg.Variant, cfg.MaxRounds, cfg.CycleCheckAfter, len(cells))
	for _, c := range cells {
		fmt.Fprintf(h, "|%g,%d,%d", c.Alpha, c.K, c.Seed)
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.jsonl", label, h.Sum64()))
}

// checkpointedSweep resumes from path (repairing a torn tail), sweeps the
// remaining cells, and appends each new result as one canonical JSONL
// line in cell order. A write error mid-sweep (disk full, file yanked)
// stops further checkpointing but never the sweep itself — the computed
// results are worth far more than the checkpoint, which is only an
// optimization for the next run.
func checkpointedSweep(path string, cells []dynamics.Cell, cfg dynamics.Config, factory dynamics.Factory, seed int64) ([]dynamics.CellResult, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	prior, err := ncgio.ReadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	done := make(map[dynamics.Cell]dynamics.Result, len(prior))
	for _, r := range prior {
		done[r.Cell] = r.Result
	}
	w, err := ncgio.NewCheckpointWriter(path)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	writeBroken := false
	return dynamics.SweepContext(context.Background(), cells, cfg, factory, seed, dynamics.SweepOptions{
		Have: func(c dynamics.Cell) (dynamics.Result, bool) {
			r, ok := done[c]
			return r, ok
		},
		OnResult: func(_ int, r dynamics.CellResult, reused bool) error {
			if reused || writeBroken {
				return nil
			}
			if err := w.Append(r); err != nil {
				writeBroken = true
				fmt.Fprintf(os.Stderr, "experiments: checkpoint %s write failed (%v); continuing without checkpointing\n", path, err)
			}
			return nil
		},
	})
}
