package experiments

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/gen"
)

func TestRunSweepCheckpointResumesWithoutRecomputation(t *testing.T) {
	dir := t.TempDir()
	p := DefaultParams()
	p.CheckpointDir = dir
	cells := dynamics.Grid([]float64{0.5, 2}, []int{2, 1000}, 2)
	cfg := baseConfig(game.Max)

	first := runSweep(p, "test", cells, cfg, treeFactory(12), 3)
	if len(first) != len(cells) {
		t.Fatalf("first sweep: %d results, want %d", len(first), len(cells))
	}
	files, err := filepath.Glob(filepath.Join(dir, "test-*.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files = %v, %v", files, err)
	}

	// Second invocation must come entirely from the checkpoint: a factory
	// that fails the test proves no cell is recomputed.
	tripwire := func(_ dynamics.Cell, _ *rand.Rand) *game.State {
		t.Error("cell recomputed despite complete checkpoint")
		return game.NewState(2)
	}
	second := runSweep(p, "test", cells, cfg, tripwire, 3)
	if len(second) != len(first) {
		t.Fatalf("resumed sweep: %d results, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i].Cell != second[i].Cell ||
			first[i].Result.FinalStats != second[i].Result.FinalStats ||
			first[i].Result.Final.Fingerprint() != second[i].Result.Final.Fingerprint() {
			t.Fatalf("cell %d differs after checkpoint resume", i)
		}
	}
}

func TestRunSweepCheckpointMatchesInMemory(t *testing.T) {
	cells := dynamics.Grid([]float64{1}, []int{2, 1000}, 3)
	cfg := baseConfig(game.Max)
	factory := func(_ dynamics.Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(10, rng), rng)
	}
	plain := runSweep(DefaultParams(), "mem", cells, cfg, factory, 5)

	p := DefaultParams()
	p.CheckpointDir = t.TempDir()
	ckpt := runSweep(p, "mem", cells, cfg, factory, 5)
	for i := range plain {
		if plain[i].Result.Final.Fingerprint() != ckpt[i].Result.Final.Fingerprint() {
			t.Fatalf("cell %d: checkpointed sweep diverges from in-memory sweep", i)
		}
	}
}

func TestRunSweepBadCheckpointDirFallsBack(t *testing.T) {
	// A file where the directory should be makes checkpointing impossible;
	// the sweep must still produce results.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.CheckpointDir = filepath.Join(blocked, "sub")
	cells := dynamics.Grid([]float64{1}, []int{2}, 1)
	factory := func(_ dynamics.Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(8, rng), rng)
	}
	res := runSweep(p, "fallback", cells, baseConfig(game.Max), factory, 1)
	if len(res) != 1 || res[0].Result.Final == nil {
		t.Fatal("fallback sweep produced no results")
	}
}
