package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/table"
	"repro/internal/view"
)

// fullViewFraction returns the fraction of players that see the whole
// network at radius k.
func fullViewFraction(s *game.State, k int) float64 {
	if s.N() == 0 {
		return 1
	}
	full := 0
	g := s.Graph()
	for u := 0; u < s.N(); u++ {
		if view.Extract(g, u, k).SeesAll(s.N()) {
			full++
		}
	}
	return float64(full) / float64(s.N())
}

// Corollary314Check empirically probes Corollary 3.14: when the view
// radius is large enough, every player of every reached equilibrium sees
// the entire network (so LKE ≡ NE). The hard assertion uses the
// constant-free sufficient criterion k >= n (a radius-n ball always
// covers a connected graph); the classifier's asymptotic prediction
// (whose hidden constant c the paper leaves unspecified, so it can
// misfire at experiment-scale n) is reported as an informational column.
func Corollary314Check(p Params) (*table.Table, bool) {
	n := p.DynamicsTreeSize()
	results := sweepTrees(p, game.Max)
	agg := aggregate(results, func(r dynamics.CellResult) float64 {
		return fullViewFraction(r.Result.Final, r.Cell.K)
	})
	t := table.New("Corollary 3.14 check — full views in equilibrium (MAXNCG)",
		"alpha", "k", "classifier predicts NE≡LKE", "measured full-view fraction")
	holds := true
	for _, a := range p.Alphas() {
		for _, k := range p.Ks() {
			vals := agg[aggKey{Alpha: a, K: k}]
			mean := 0.0
			for _, v := range vals {
				mean += v
			}
			if len(vals) > 0 {
				mean /= float64(len(vals))
			}
			if k >= n && mean < 1 {
				holds = false
			}
			t.AddRowf(a, k, bounds.FullKnowledgeMax(n, k, a), mean)
		}
	}
	return t, holds
}

// Theorem44Check empirically validates Theorem 4.4 for SUMNCG: when
// k > 1 + 2√α, every equilibrium player sees the whole network. SUMNCG
// dynamics use the exact responder on small instances.
func Theorem44Check(p Params) (*table.Table, bool) {
	n := 14 // small enough for the exact SUMNCG responder
	cells := dynamics.Grid(p.Alphas(), p.Ks(), p.Seeds())
	cfg := baseConfig(game.Sum)
	results := runSweep(p, fmt.Sprintf("thm44-trees-n%d", n), cells, cfg, treeFactory(n), p.Seed+44)
	agg := aggregate(results, func(r dynamics.CellResult) float64 {
		return fullViewFraction(r.Result.Final, r.Cell.K)
	})
	t := table.New("Theorem 4.4 check — full views in SUMNCG equilibria (k > 1+2√α)",
		"alpha", "k", "theorem applies", "measured full-view fraction")
	holds := true
	for _, a := range p.Alphas() {
		for _, k := range p.Ks() {
			vals := agg[aggKey{Alpha: a, K: k}]
			mean := 0.0
			for _, v := range vals {
				mean += v
			}
			if len(vals) > 0 {
				mean /= float64(len(vals))
			}
			applies := bounds.FullKnowledgeSum(k, a)
			if applies && mean < 1 {
				holds = false
			}
			t.AddRowf(a, k, applies, mean)
		}
	}
	return t, holds
}
