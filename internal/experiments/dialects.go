package experiments

import (
	"fmt"
	"log"

	"repro/internal/dynamics"
	"repro/internal/stats"
	"repro/internal/sweepd"
	"repro/internal/table"
)

// DialectComparison runs one α×k grid under every registered game
// dialect on two graph families, side by side — the same registry-driven
// Config/Factory path the sweep daemon uses, so the table's rows are
// reproducible as daemon jobs with the printed spec fields. Swap
// dynamics keep the network's edge count invariant and large-
// neighborhood descent explores compound deviations, so the three move
// rules reach visibly different equilibria from identical starts.
func DialectComparison(p Params) *table.Table {
	n := p.DynamicsTreeSize()
	configs := []struct {
		dialect string
		graph   string
		prob    float64
	}{
		{"best-response", "tree", 0},
		{"swap", "tree", 0},
		{"large-neighborhood", "tree", 0},
		{"best-response", "grid-delete", 0.25},
		{"swap", "grid-delete", 0.25},
		{"large-neighborhood", "grid-delete", 0.25},
	}
	t := table.New(fmt.Sprintf("Dialect comparison — move rules across graph families (n = %d)", n),
		"dialect", "graph", "converged", "rounds", "moves", "diameter")
	for _, c := range configs {
		sp := sweepd.Spec{
			Dialect: c.dialect, Graph: c.graph, N: n, P: c.prob,
			Alphas: p.Alphas(), Ks: p.Ks(), Seeds: p.Seeds(),
			BaseSeed: p.Seed,
		}
		sp.Normalize()
		if err := sp.Validate(); err != nil {
			log.Fatalf("experiments: dialect comparison spec: %v", err)
		}
		label := fmt.Sprintf("dialects-%s-%s-n%d", c.dialect, c.graph, n)
		results := runSweep(p, label, sp.Cells(), sp.Config(), sp.Factory(), sp.BaseSeed)
		var rounds, moves, diameter []float64
		converged := 0
		for _, r := range results {
			if r.Result.Status == dynamics.Converged {
				converged++
			}
			rounds = append(rounds, float64(r.Result.Rounds))
			moves = append(moves, float64(r.Result.TotalMoves))
			diameter = append(diameter, float64(r.Result.FinalStats.Diameter))
		}
		t.AddRowf(c.dialect, c.graph,
			fmt.Sprintf("%.0f%%", 100*float64(converged)/float64(len(results))),
			stats.Summarize(rounds), stats.Summarize(moves), stats.Summarize(diameter))
	}
	return t
}
