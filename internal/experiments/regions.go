package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/table"
)

// regionGridAlphas and regionGridKs sample the (α, k) plane for the
// Figure 3/4 region maps.
var regionGridAlphas = []float64{0.5, 1, 2, 5, 10, 50, 200, 1e3, 1e4, 1e6}
var regionGridKs = []int{1, 2, 3, 5, 8, 16, 32, 128, 1024, 1 << 16}

// Figure3 reproduces Figure 3 as a table: for each sampled (α, k) pair at
// a given n, the region of the MAXNCG PoA map plus the evaluated lower
// and upper bound formulas (constants set to 1).
func Figure3(n int) *table.Table {
	t := table.New(fmt.Sprintf("Figure 3 — MAXNCG PoA regions (n = %d)", n),
		"alpha", "k", "region", "lower bound", "upper bound")
	for _, a := range regionGridAlphas {
		for _, k := range regionGridKs {
			t.AddRowf(a, k, bounds.ClassifyMax(n, k, a).String(),
				bounds.MaxLowerBound(n, k, a), bounds.MaxUpperBound(n, k, a))
		}
	}
	return t
}

// Figure4 reproduces Figure 4 as a table: the SUMNCG region map and lower
// bounds.
func Figure4(n int) *table.Table {
	t := table.New(fmt.Sprintf("Figure 4 — SUMNCG PoA regions (n = %d)", n),
		"alpha", "k", "region", "lower bound")
	for _, a := range regionGridAlphas {
		for _, k := range regionGridKs {
			t.AddRowf(a, k, bounds.ClassifySum(n, k, a).String(),
				bounds.SumLowerBound(n, k, a))
		}
	}
	return t
}
