package experiments

import "testing"

func TestCorollary314Check(t *testing.T) {
	p := micro()
	tab, holds := Corollary314Check(p)
	if !holds {
		t.Fatalf("Corollary 3.14 violated empirically:\n%s", tab)
	}
	if len(tab.Rows) != len(p.Alphas())*len(p.Ks()) {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
}

func TestTheorem44Check(t *testing.T) {
	p := micro()
	tab, holds := Theorem44Check(p)
	if !holds {
		t.Fatalf("Theorem 4.4 violated empirically:\n%s", tab)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
}
