package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/table"
)

// TableI reproduces Table I: statistics of the random trees used as
// starting networks — diameter, maximum degree, and maximum number of
// bought edges (under fair-coin ownership), averaged over Seeds() trees
// per size with 95% confidence intervals.
func TableI(p Params) *table.Table {
	t := table.New("Table I — random tree statistics",
		"n", "Diameter", "Max. degree", "Max. Bought Edges")
	rng := rand.New(rand.NewSource(p.Seed))
	for _, n := range p.TreeSizes() {
		var diam, deg, bought []float64
		for s := 0; s < p.Seeds(); s++ {
			g := gen.RandomTree(n, rng)
			st := game.FromGraphRandomOwners(g, rng)
			diam = append(diam, float64(g.Diameter()))
			deg = append(deg, float64(g.MaxDegree()))
			bought = append(bought, float64(st.MaxBought()))
		}
		t.AddRowf(n, stats.Summarize(diam), stats.Summarize(deg), stats.Summarize(bought))
	}
	return t
}

// TableII reproduces Table II: statistics of the Erdős–Rényi starting
// networks — edge count, diameter, maximum degree, and maximum bought
// edges, averaged over Seeds() connected samples per (n, p).
func TableII(p Params) *table.Table {
	t := table.New("Table II — Erdős–Rényi random graph statistics",
		"n", "p", "Edges", "Diameter", "Max. degree", "Max. Bought Edges")
	rng := rand.New(rand.NewSource(p.Seed + 1))
	for _, cfg := range p.ERConfigs() {
		n, prob := int(cfg[0]), cfg[1]
		var edges, diam, deg, bought []float64
		for s := 0; s < p.Seeds(); s++ {
			g, err := gen.GNPConnected(n, prob, rng, 2000)
			if err != nil {
				continue
			}
			st := game.FromGraphRandomOwners(g, rng)
			edges = append(edges, float64(g.M()))
			diam = append(diam, float64(g.Diameter()))
			deg = append(deg, float64(g.MaxDegree()))
			bought = append(bought, float64(st.MaxBought()))
		}
		t.AddRowf(n, fmt.Sprintf("%.3f", prob),
			stats.Summarize(edges), stats.Summarize(diam),
			stats.Summarize(deg), stats.Summarize(bought))
	}
	return t
}
