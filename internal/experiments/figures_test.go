package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// micro returns a very small grid so figure sweeps stay fast in CI.
func micro() Params {
	return Params{
		Scale:         ScaleCI,
		Seed:          3,
		AlphaGrid:     []float64{0.5, 2},
		KGrid:         []int{2, 1000},
		SeedsOverride: 3,
		TreeSizeGrid:  []int{12, 20},
		DynTreeSize:   16,
	}
}

func TestFigure5(t *testing.T) {
	p := micro()
	tab := Figure5(p)
	if len(tab.Rows) != len(p.Alphas())*len(p.Ks()) {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	out := tab.String()
	if !strings.Contains(out, "min view size") {
		t.Fatalf("missing column:\n%s", out)
	}
	// With k=1000 everyone sees everything: min view size = n.
	// (checked numerically below by scanning rows)
	foundFull := false
	for _, row := range tab.Rows {
		if row[1] == "1000" && strings.HasPrefix(row[2], "16.00") {
			foundFull = true
		}
	}
	if !foundFull {
		t.Fatalf("k=1000 should give full views of size 16:\n%s", out)
	}
}

func TestFigure6(t *testing.T) {
	p := micro()
	tab := Figure6(p)
	want := 2 * len(p.TreeSizes()) * len(p.Ks())
	if len(tab.Rows) != want {
		t.Fatalf("rows=%d, want %d", len(tab.Rows), want)
	}
	// Quality is >= 1 for every cell (social cost can't beat the optimum).
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[3], "0.") {
			t.Fatalf("quality below 1 in row %v", row)
		}
	}
}

func TestFigure7(t *testing.T) {
	p := micro()
	tab := Figure7(p)
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	hasTree, hasER := false, false
	for _, row := range tab.Rows {
		if row[0] == "tree" {
			hasTree = true
		}
		if strings.HasPrefix(row[0], "ER(") {
			hasER = true
		}
	}
	if !hasTree || !hasER {
		t.Fatalf("missing graph classes: tree=%v er=%v", hasTree, hasER)
	}
}

func TestFigure8And9(t *testing.T) {
	p := micro()
	f8 := Figure8(p)
	if len(f8.Rows) != len(p.Alphas())*len(p.Ks()) {
		t.Fatalf("figure 8 rows=%d", len(f8.Rows))
	}
	f9 := Figure9(p)
	for _, row := range f9.Rows {
		// Unfairness is a ratio >= 1.
		if strings.HasPrefix(row[2], "0.") {
			t.Fatalf("unfairness below 1: %v", row)
		}
	}
}

func TestFigure10(t *testing.T) {
	p := micro()
	left, right := Figure10(p)
	if len(left.Rows) != len(p.Alphas())*len(p.Ks()) {
		t.Fatalf("left rows=%d", len(left.Rows))
	}
	if len(right.Rows) != len(p.TreeSizes())*len(p.Ks()) {
		t.Fatalf("right rows=%d", len(right.Rows))
	}
}

func TestFigure5ViewGrowsWithK(t *testing.T) {
	// The paper's Figure 5 headline: the view "rapidly grows as k becomes
	// larger". Check monotonicity of the average view size in k at fixed
	// α on the micro grid.
	p := micro()
	p.KGrid = []int{2, 4, 1000}
	tab := Figure5(p)
	// Rows are (α-major, k-minor); compare successive k means per α.
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		var means [3]float64
		for j := 0; j < 3; j++ {
			if _, err := fmt.Sscanf(tab.Rows[i+j][3], "%f", &means[j]); err != nil {
				t.Fatalf("unparsable mean %q", tab.Rows[i+j][3])
			}
		}
		if means[0] > means[1]+1e-9 || means[1] > means[2]+1e-9 {
			t.Fatalf("avg view not monotone in k: %v (rows %v..)", means, tab.Rows[i])
		}
	}
}

func TestCycleCensus(t *testing.T) {
	p := micro()
	tab := CycleCensus(p)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d, want 3", len(tab.Rows))
	}
	// Convergence should dominate (§5.4: cycles are very rare).
	if !strings.HasPrefix(tab.Rows[0][0], "converged") {
		t.Fatalf("first row should be converged: %v", tab.Rows[0])
	}
}
