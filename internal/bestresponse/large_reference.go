package bestresponse

import (
	"sort"

	"repro/internal/game"
	"repro/internal/view"
)

// refLargeNeighborhoodResponse is the executable specification of the
// large-neighborhood responders in large.go: the same best-improvement
// descent over the shift/exchange move set, with every candidate scored
// by a fresh clone-and-BFS evaluation (refSumDelta / refMaxEvaluate)
// instead of the workspace's incremental relax/undo. Candidate order and
// tie-breaks mirror greedyScan exactly — additions in local-id order,
// then removals by index, then swaps — so the two implementations must
// return byte-identical responses, which the differential tests pin.
func refLargeNeighborhoodResponse(s *game.State, u, k int, alpha float64, variant game.Variant) Response {
	current := s.Strategy(u)
	v := view.Extract(s.Graph(), u, k)
	score := func(strategy []int) float64 {
		if variant == game.Sum {
			return refSumDelta(s, u, k, alpha, strategy)
		}
		return refMaxEvaluate(s, u, k, alpha, strategy)
	}
	var cur float64
	if variant == game.Sum {
		cur = 0 // deltas are relative to the current strategy
	} else {
		cur = currentViewCost(s, v, game.Max, alpha, u)
	}

	working := append([]int(nil), current...)
	best := cur
	steps := 0
	for ; steps < maxDescentSteps; steps++ {
		stepScore := best
		var stepStrategy []int
		improving := false
		try := func(candidate []int) {
			sorted := append([]int(nil), candidate...)
			sort.Ints(sorted)
			d := score(sorted)
			if d < stepScore-epsilon {
				stepScore = d
				stepStrategy = sorted
				improving = true
			}
		}
		inWorking := make(map[int]bool, len(working))
		for _, w := range working {
			inWorking[w] = true
		}
		// Additions, in the view's local-id order like greedyScan (the
		// workspace assigns locals in the same BFS order as view.Extract,
		// which the greedy differential tests already rely on).
		for _, orig := range v.Orig {
			if orig == u || inWorking[orig] || s.Buys(orig, u) {
				continue
			}
			try(append(append([]int{}, working...), orig))
		}
		// Removals.
		for i := range working {
			cand := make([]int, 0, len(working)-1)
			cand = append(cand, working[:i]...)
			cand = append(cand, working[i+1:]...)
			try(cand)
		}
		// Swaps.
		for i := range working {
			base := make([]int, 0, len(working))
			base = append(base, working[:i]...)
			base = append(base, working[i+1:]...)
			for _, orig := range v.Orig {
				if orig == u || inWorking[orig] || s.Buys(orig, u) {
					continue
				}
				try(append(append([]int{}, base...), orig))
			}
		}
		if !improving {
			break
		}
		working = stepStrategy
		best = stepScore
	}
	return Response{
		Strategy:    working,
		Cost:        best,
		CurrentCost: cur,
		Improving:   steps > 0,
	}
}
