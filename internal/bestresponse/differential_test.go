package bestresponse

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The tests in this file pin the pooled Evaluator against the retained
// reference implementations (reference.go) on randomized instances: the
// fast path must return byte-identical strategies and Improving flags,
// and costs equal up to float-summation noise. Run under -race in CI.

// costTol absorbs the difference between the reference's float fold and
// the Evaluator's integer aggregation — at most a few ulps for any
// realistic α, never enough to flip an epsilon=1e-9 comparison.
const costTol = 1e-6

func costsEqual(a, b float64) bool {
	if a == b {
		return true
	}
	if a >= game.InfiniteCost || b >= game.InfiniteCost {
		return a >= game.InfiniteCost && b >= game.InfiniteCost
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= costTol*scale
}

func sameStrategy(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkResponse(t *testing.T, tag string, got, want Response) {
	t.Helper()
	if !sameStrategy(got.Strategy, want.Strategy) {
		t.Fatalf("%s: strategy %v, reference %v", tag, got.Strategy, want.Strategy)
	}
	if got.Improving != want.Improving {
		t.Fatalf("%s: improving %v, reference %v", tag, got.Improving, want.Improving)
	}
	if !costsEqual(got.Cost, want.Cost) {
		t.Fatalf("%s: cost %v, reference %v", tag, got.Cost, want.Cost)
	}
	if !costsEqual(got.CurrentCost, want.CurrentCost) {
		t.Fatalf("%s: current cost %v, reference %v", tag, got.CurrentCost, want.CurrentCost)
	}
}

// diffGraphs builds a batch of small test graphs across every generator
// family, deterministic per seed.
func diffGraphs(rng *rand.Rand) []*graph.Graph {
	gs := []*graph.Graph{
		gen.Path(7),
		gen.Cycle(9),
		gen.Star(8),
		gen.Complete(6),
		gen.Grid(3, 4),
		gen.Torus(3, 4),
		gen.Hypercube(3),
		gen.CompleteBipartite(3, 4),
		gen.Caterpillar(4, 2),
		gen.RandomTree(12, rng),
		gen.RandomTree(20, rng),
		gen.PreferentialAttachmentTree(15, rng),
		gen.GNP(12, 0.25, rng),
		gen.GNP(10, 0.5, rng),
	}
	if rr, ok := gen.RandomRegular(10, 3, rng, 50); ok {
		gs = append(gs, rr)
	}
	return gs
}

func TestEvaluatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	alphas := []float64{0.5, 1, 2.7}
	ks := []int{1, 2, 3, 1000}
	for gi, g := range diffGraphs(rng) {
		s := game.FromGraphRandomOwners(g, rng)
		for _, k := range ks {
			for _, alpha := range alphas {
				for trial := 0; trial < 3; trial++ {
					u := rng.Intn(s.N())
					tag := func(fn string) string {
						return fmt.Sprintf("%s[g=%d u=%d k=%d a=%g]", fn, gi, u, k, alpha)
					}

					// Arbitrary candidate strategies for the evaluation
					// entry points, including out-of-view targets.
					cands := [][]int{
						{},
						s.Strategy(u),
						{rng.Intn(s.N())},
						{rng.Intn(s.N()), rng.Intn(s.N())},
					}
					for _, cand := range cands {
						if got, want := SumDelta(s, u, k, alpha, cand), refSumDelta(s, u, k, alpha, cand); !costsEqual(got, want) {
							t.Fatalf("%s(%v): %v, reference %v", tag("SumDelta"), cand, got, want)
						}
						if got, want := MaxEvaluate(s, u, k, alpha, cand), refMaxEvaluate(s, u, k, alpha, cand); !costsEqual(got, want) {
							t.Fatalf("%s(%v): %v, reference %v", tag("MaxEvaluate"), cand, got, want)
						}
					}

					checkResponse(t, tag("SumGreedyResponse"),
						SumGreedyResponse(s, u, k, alpha), refSumGreedyResponse(s, u, k, alpha))
					checkResponse(t, tag("MaxGreedyResponse"),
						MaxGreedyResponse(s, u, k, alpha), refMaxGreedyResponse(s, u, k, alpha))
					checkResponse(t, tag("MaxBestResponse"),
						MaxBestResponse(s, u, k, alpha), refMaxBestResponse(s, u, k, alpha))

					got := SumBestResponseExhaustive(s, u, k, alpha, 12)
					want := refSumBestResponseExhaustive(s, u, k, alpha, 12)
					if got.Feasible != want.Feasible {
						t.Fatalf("%s: feasible %v, reference %v", tag("SumBestResponseExhaustive"), got.Feasible, want.Feasible)
					}
					if got.Feasible {
						checkResponse(t, tag("SumBestResponseExhaustive"), got.Response, want.Response)
					}
				}
			}
		}
	}
}

// TestEvaluatorMatchesReferenceUnderDynamics evolves states by applying
// the REFERENCE responses for several rounds, comparing both
// implementations at every intermediate state — exactly the sequence of
// states a sweep visits, so agreement here implies byte-identical sweep
// checkpoints.
func TestEvaluatorMatchesReferenceUnderDynamics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type cfg struct {
		k     int
		alpha float64
		max   bool
	}
	cfgs := []cfg{{2, 1.5, true}, {2, 1.5, false}, {3, 0.8, true}, {1, 2.0, false}}
	for _, c := range cfgs {
		g := gen.RandomTree(14, rng)
		s := game.FromGraphRandomOwners(g, rng)
		for round := 0; round < 4; round++ {
			for u := 0; u < s.N(); u++ {
				var got, want Response
				if c.max {
					got = MaxBestResponse(s, u, c.k, c.alpha)
					want = refMaxBestResponse(s, u, c.k, c.alpha)
				} else {
					got = SumGreedyResponse(s, u, c.k, c.alpha)
					want = refSumGreedyResponse(s, u, c.k, c.alpha)
				}
				tag := fmt.Sprintf("dynamics[round=%d u=%d k=%d a=%g max=%v]", round, u, c.k, c.alpha, c.max)
				checkResponse(t, tag, got, want)
				if want.Improving {
					s.SetStrategy(u, want.Strategy)
				}
			}
		}
	}
}
