package bestresponse

import (
	"repro/internal/game"
	"repro/internal/graph"
)

// Large-neighborhood responses à la Sokol et al.'s BAP heuristics
// (PAPERS.md): instead of committing to the single best shift (add/drop)
// or exchange (swap) move, the responder runs best-improvement descent
// over that move set INSIDE the view extracted once at decision time —
// a compound deviation of up to maxDescentSteps single moves, explored
// heuristically rather than enumerating the exponential strategy space.
// The descent is deterministic (the same earliest-candidate epsilon
// tie-break as the greedy scan, iterated), so it slots into the dynamics
// engine like any other responder, and it reads only the player's k-ball
// view plus the arcs bought towards her, so event-driven activation
// stays sound.
//
// The naive counterpart in large_reference.go is the executable spec:
// same candidate order, same tie-breaks, one fresh BFS per candidate.
// The differential tests pin the two byte-identical.

// maxDescentSteps caps the descent depth. Each step strictly improves
// the (bounded-below) cost by more than epsilon so termination needs no
// cap in principle; the cap keeps the worst case predictable and is part
// of the response's definition — both implementations share it.
const maxDescentSteps = 64

// SumLargeNeighborhoodResponse is the Evaluator form of the package-level
// SumLargeNeighborhoodResponse. Cost is the Δ of the final strategy
// relative to the current one (negative = gain), like SumGreedyResponse.
func (e *Evaluator) SumLargeNeighborhoodResponse(s *game.State, u, k int, alpha float64) Response {
	current := s.Strategy(u)
	if k == 0 && len(current) > 0 {
		// Radius zero puts the current targets outside the view; the
		// incremental scan assumes they are in it, so this corner runs on
		// the reference (same as SumGreedyResponse).
		return refLargeNeighborhoodResponse(s, u, k, alpha, game.Sum)
	}
	e.prepare(s, u, k)
	bought := s.BoughtCount(u)
	eval := func(candLen int) float64 {
		sum, ok := e.ws.InnerSum()
		if !ok {
			return game.InfiniteCost
		}
		return alpha*float64(candLen-bought) + float64(sum-e.ws.InnerBase())
	}
	working := current
	score := 0.0
	steps := 0
	for ; steps < maxDescentSteps; steps++ {
		e.markCandidates(s, u, working)
		newScore, best, improving := e.greedyScan(working, score, eval)
		e.clearFlags()
		if !improving {
			break
		}
		working = e.materialize(working, best)
		score = newScore
	}
	if steps == 0 {
		working = append([]int(nil), current...)
	}
	return Response{
		Strategy:    working,
		Cost:        score,
		CurrentCost: 0,
		Improving:   steps > 0,
	}
}

// MaxLargeNeighborhoodResponse is the Evaluator form of the package-level
// MaxLargeNeighborhoodResponse. Costs are absolute view costs, like
// MaxGreedyResponse.
func (e *Evaluator) MaxLargeNeighborhoodResponse(s *game.State, u, k int, alpha float64) Response {
	current := s.Strategy(u)
	if k == 0 && len(current) > 0 {
		// Same radius-zero corner as SumLargeNeighborhoodResponse.
		return refLargeNeighborhoodResponse(s, u, k, alpha, game.Max)
	}
	e.prepare(s, u, k)
	cur := alpha*float64(s.BoughtCount(u)) + float64(e.ws.ViewEcc())
	eval := func(candLen int) float64 {
		ecc := e.ws.EccAll()
		if ecc >= graph.Unreachable {
			return game.InfiniteCost
		}
		return alpha*float64(candLen) + float64(ecc)
	}
	working := current
	score := cur
	steps := 0
	for ; steps < maxDescentSteps; steps++ {
		e.markCandidates(s, u, working)
		newScore, best, improving := e.greedyScan(working, score, eval)
		e.clearFlags()
		if !improving {
			break
		}
		working = e.materialize(working, best)
		score = newScore
	}
	if steps == 0 {
		working = append([]int(nil), current...)
	}
	return Response{
		Strategy:    working,
		Cost:        score,
		CurrentCost: cur,
		Improving:   steps > 0,
	}
}

// SumLargeNeighborhoodResponse runs shift/exchange best-improvement
// descent for the SUM objective on a pooled Evaluator.
func SumLargeNeighborhoodResponse(s *game.State, u, k int, alpha float64) Response {
	e := evalPool.Get().(*Evaluator)
	r := e.SumLargeNeighborhoodResponse(s, u, k, alpha)
	evalPool.Put(e)
	return r
}

// MaxLargeNeighborhoodResponse runs shift/exchange best-improvement
// descent for the MAX objective on a pooled Evaluator.
func MaxLargeNeighborhoodResponse(s *game.State, u, k int, alpha float64) Response {
	e := evalPool.Get().(*Evaluator)
	r := e.MaxLargeNeighborhoodResponse(s, u, k, alpha)
	evalPool.Put(e)
	return r
}
