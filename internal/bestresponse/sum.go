package bestresponse

import (
	"sort"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/view"
)

// SumDelta evaluates the paper's worst-case cost difference Δ(σ_u, σ'_u)
// for SUMNCG (Prop. 2.2), relative to the current strategy:
//
//   - if the candidate strategy pushes any frontier vertex (distance
//     exactly k in H) beyond distance k in the modified view H', the
//     worst case is unbounded and the move can never improve → +Inf;
//   - otherwise Δ = α(|σ'|-|σ|) + Σ_{v: d_H(u,v)<k} (d_{H'}(u,v) - d_H(u,v)),
//     attained at G = H.
//
// A strategy is improving exactly when SumDelta < 0.
func SumDelta(s *game.State, u, k int, alpha float64, strategy []int) float64 {
	v := view.Extract(s.Graph(), u, k)
	hPrime := v.H.Clone()
	for _, w := range s.Strategy(u) {
		lw, ok := v.Local[w]
		if !ok {
			continue
		}
		if !s.Buys(w, u) {
			hPrime.RemoveEdge(v.Center, lw)
		}
	}
	for _, w := range strategy {
		lw, ok := v.Local[w]
		if !ok {
			return game.InfiniteCost // outside the local strategy space
		}
		hPrime.AddEdge(v.Center, lw)
	}
	newDist := make([]int, hPrime.N())
	hPrime.BFS(v.Center, newDist, nil)

	// Frontier guard: d_H(u,f) = k must imply d_{H'}(u,f) <= k.
	for i, d := range v.Dist {
		if d == v.K && newDist[i] > v.K {
			return game.InfiniteCost
		}
	}
	delta := alpha * float64(len(strategy)-s.BoughtCount(u))
	for i, d := range v.Dist {
		if d < v.K {
			if newDist[i] >= graph.Unreachable {
				return game.InfiniteCost
			}
			delta += float64(newDist[i] - d)
		}
	}
	return delta
}

// SumBestResponseExhaustive searches every subset of the view (excluding
// vertices that already bought an edge towards u, which are free) for the
// candidate minimizing Δ. Exponential in the view size; callers should
// gate on MaxCandidates (the number of potential targets), beyond which
// the zero-valued Response.Improving=false plus Fallback=true is returned.
type SumExhaustiveResult struct {
	Response
	// Feasible is false when the view exceeded maxCandidates and the
	// search was skipped.
	Feasible bool
}

// SumBestResponseExhaustive computes an exact SUMNCG best response over
// the view by subset enumeration, honoring the frontier guard. The
// candidate set excludes u and vertices that bought edges towards u (edges
// that exist for free). maxCandidates bounds the enumeration (2^c
// evaluations).
func SumBestResponseExhaustive(s *game.State, u, k int, alpha float64, maxCandidates int) SumExhaustiveResult {
	v := view.Extract(s.Graph(), u, k)
	var candidates []int
	for i, orig := range v.Orig {
		if i == v.Center || s.Buys(orig, u) {
			continue
		}
		candidates = append(candidates, orig)
	}
	if len(candidates) > maxCandidates {
		return SumExhaustiveResult{Feasible: false}
	}
	bestDelta := 0.0 // the current strategy has Δ = 0 by definition
	var bestStrategy []int = s.Strategy(u)
	improving := false
	for mask := 0; mask < 1<<len(candidates); mask++ {
		var cand []int
		for i, w := range candidates {
			if mask&(1<<i) != 0 {
				cand = append(cand, w)
			}
		}
		if cand == nil {
			cand = []int{}
		}
		d := SumDelta(s, u, k, alpha, cand)
		if d < bestDelta-epsilon {
			bestDelta = d
			bestStrategy = cand
			improving = true
		}
	}
	sort.Ints(bestStrategy)
	return SumExhaustiveResult{
		Response: Response{
			Strategy:    bestStrategy,
			Cost:        bestDelta, // Δ relative to current (negative = gain)
			CurrentCost: 0,
			Improving:   improving,
		},
		Feasible: true,
	}
}

// SumGreedyResponse looks for an improving move among single-edge
// additions, single-edge removals, and single swaps (remove one bought
// edge, add one new edge). It returns the best such move — a
// "better response" in the paper's terminology — or Improving=false when
// no local move helps. This keeps SUMNCG dynamics runnable at sizes where
// the exact responder is infeasible (the paper itself limited experiments
// to MAXNCG for exactly this reason; see §5 and DESIGN.md §3).
func SumGreedyResponse(s *game.State, u, k int, alpha float64) Response {
	current := s.Strategy(u)
	v := view.Extract(s.Graph(), u, k)

	bestDelta := 0.0
	bestStrategy := current
	improving := false
	try := func(candidate []int) {
		d := SumDelta(s, u, k, alpha, candidate)
		if d < bestDelta-epsilon {
			bestDelta = d
			bestStrategy = candidate
			improving = true
		}
	}

	inCurrent := make(map[int]bool, len(current))
	for _, w := range current {
		inCurrent[w] = true
	}
	// Additions.
	for _, orig := range v.Orig {
		if orig == u || inCurrent[orig] || s.Buys(orig, u) {
			continue
		}
		try(append(append([]int{}, current...), orig))
	}
	// Removals.
	for i := range current {
		cand := make([]int, 0, len(current)-1)
		cand = append(cand, current[:i]...)
		cand = append(cand, current[i+1:]...)
		try(cand)
	}
	// Swaps.
	for i := range current {
		base := make([]int, 0, len(current))
		base = append(base, current[:i]...)
		base = append(base, current[i+1:]...)
		for _, orig := range v.Orig {
			if orig == u || inCurrent[orig] || s.Buys(orig, u) {
				continue
			}
			try(append(append([]int{}, base...), orig))
		}
	}
	out := append([]int(nil), bestStrategy...)
	sort.Ints(out)
	return Response{
		Strategy:    out,
		Cost:        bestDelta,
		CurrentCost: 0,
		Improving:   improving,
	}
}
