package bestresponse

import (
	"repro/internal/game"
)

// SumDelta evaluates the paper's worst-case cost difference Δ(σ_u, σ'_u)
// for SUMNCG (Prop. 2.2), relative to the current strategy:
//
//   - if the candidate strategy pushes any frontier vertex (distance
//     exactly k in H) beyond distance k in the modified view H', the
//     worst case is unbounded and the move can never improve → +Inf;
//   - otherwise Δ = α(|σ'|-|σ|) + Σ_{v: d_H(u,v)<k} (d_{H'}(u,v) - d_H(u,v)),
//     attained at G = H.
//
// A strategy is improving exactly when SumDelta < 0.
func SumDelta(s *game.State, u, k int, alpha float64, strategy []int) float64 {
	e := evalPool.Get().(*Evaluator)
	d := e.SumDelta(s, u, k, alpha, strategy)
	evalPool.Put(e)
	return d
}

// SumExhaustiveResult is the outcome of the exhaustive SUMNCG responder.
type SumExhaustiveResult struct {
	Response
	// Feasible is false when the view exceeded maxCandidates and the
	// search was skipped.
	Feasible bool
}

// SumBestResponseExhaustive computes an exact SUMNCG best response over
// the view by subset enumeration, honoring the frontier guard. The
// candidate set excludes u and vertices that bought edges towards u (edges
// that exist for free). maxCandidates bounds the enumeration (2^c
// evaluations).
func SumBestResponseExhaustive(s *game.State, u, k int, alpha float64, maxCandidates int) SumExhaustiveResult {
	e := evalPool.Get().(*Evaluator)
	r := e.SumBestResponseExhaustive(s, u, k, alpha, maxCandidates)
	evalPool.Put(e)
	return r
}

// SumGreedyResponse looks for an improving move among single-edge
// additions, single-edge removals, and single swaps (remove one bought
// edge, add one new edge). It returns the best such move — a
// "better response" in the paper's terminology — or Improving=false when
// no local move helps. This keeps SUMNCG dynamics runnable at sizes where
// the exact responder is infeasible (the paper itself limited experiments
// to MAXNCG for exactly this reason; see §5 and DESIGN.md §3).
func SumGreedyResponse(s *game.State, u, k int, alpha float64) Response {
	e := evalPool.Get().(*Evaluator)
	r := e.SumGreedyResponse(s, u, k, alpha)
	evalPool.Put(e)
	return r
}
