package bestresponse

import (
	"repro/internal/game"
)

// MaxGreedyResponse looks for an improving MAXNCG move among single-edge
// additions, removals, and swaps — a "better response" in the paper's §2
// terminology (the divergence results of Kawald–Lenzner concern exactly
// better-response dynamics). It evaluates candidates with the same
// view-restricted worst-case rule as the exact responder (Prop. 2.1) and
// returns the best single-move improvement, or Improving=false.
func MaxGreedyResponse(s *game.State, u, k int, alpha float64) Response {
	e := evalPool.Get().(*Evaluator)
	r := e.MaxGreedyResponse(s, u, k, alpha)
	evalPool.Put(e)
	return r
}
