package bestresponse

import (
	"sort"

	"repro/internal/game"
	"repro/internal/view"
)

// MaxGreedyResponse looks for an improving MAXNCG move among single-edge
// additions, removals, and swaps — a "better response" in the paper's §2
// terminology (the divergence results of Kawald–Lenzner concern exactly
// better-response dynamics). It evaluates candidates with the same
// view-restricted worst-case rule as the exact responder (Prop. 2.1) and
// returns the best single-move improvement, or Improving=false.
func MaxGreedyResponse(s *game.State, u, k int, alpha float64) Response {
	current := s.Strategy(u)
	v := view.Extract(s.Graph(), u, k)
	cur := currentViewCost(s, v, game.Max, alpha, u)

	bestCost := cur
	bestStrategy := current
	improving := false
	try := func(candidate []int) {
		c := MaxEvaluate(s, u, k, alpha, candidate)
		if c < bestCost-epsilon {
			bestCost = c
			bestStrategy = candidate
			improving = true
		}
	}

	inCurrent := make(map[int]bool, len(current))
	for _, w := range current {
		inCurrent[w] = true
	}
	// Additions.
	for _, orig := range v.Orig {
		if orig == u || inCurrent[orig] || s.Buys(orig, u) {
			continue
		}
		try(append(append([]int{}, current...), orig))
	}
	// Removals.
	for i := range current {
		cand := make([]int, 0, len(current)-1)
		cand = append(cand, current[:i]...)
		cand = append(cand, current[i+1:]...)
		try(cand)
	}
	// Swaps.
	for i := range current {
		base := make([]int, 0, len(current))
		base = append(base, current[:i]...)
		base = append(base, current[i+1:]...)
		for _, orig := range v.Orig {
			if orig == u || inCurrent[orig] || s.Buys(orig, u) {
				continue
			}
			try(append(append([]int{}, base...), orig))
		}
	}
	out := append([]int(nil), bestStrategy...)
	sort.Ints(out)
	return Response{
		Strategy:    out,
		Cost:        bestCost,
		CurrentCost: cur,
		Improving:   improving,
	}
}
