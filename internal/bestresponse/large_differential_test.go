package bestresponse

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/game"
)

// TestLargeNeighborhoodMatchesReference pins the workspace-backed
// shift/exchange descent (large.go) against its clone-and-BFS executable
// spec (large_reference.go) on randomized instances across every
// generator family — byte-identical strategies, Improving flags, and
// costs up to float-summation noise. Run under -race in CI.
func TestLargeNeighborhoodMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	alphas := []float64{0.5, 1, 2.7}
	ks := []int{1, 2, 3, 1000}
	for gi, g := range diffGraphs(rng) {
		s := game.FromGraphRandomOwners(g, rng)
		for _, k := range ks {
			for _, alpha := range alphas {
				for trial := 0; trial < 3; trial++ {
					u := rng.Intn(s.N())
					tag := func(fn string) string {
						return fmt.Sprintf("%s[g=%d u=%d k=%d a=%g]", fn, gi, u, k, alpha)
					}
					checkResponse(t, tag("SumLargeNeighborhoodResponse"),
						SumLargeNeighborhoodResponse(s, u, k, alpha),
						refLargeNeighborhoodResponse(s, u, k, alpha, game.Sum))
					checkResponse(t, tag("MaxLargeNeighborhoodResponse"),
						MaxLargeNeighborhoodResponse(s, u, k, alpha),
						refLargeNeighborhoodResponse(s, u, k, alpha, game.Max))
				}
			}
		}
	}
}

// TestLargeNeighborhoodDescends checks the descent's defining properties
// on instances where a single greedy move is NOT optimal within the move
// budget: the compound response never scores worse than the single-move
// greedy response, and applying the returned strategy really does leave
// the player without a further improving shift/exchange move (unless the
// step cap was the binding constraint, which these small instances never
// hit).
func TestLargeNeighborhoodDescends(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for gi, g := range diffGraphs(rng) {
		s := game.FromGraphRandomOwners(g, rng)
		for _, variant := range []game.Variant{game.Sum, game.Max} {
			for trial := 0; trial < 4; trial++ {
				u := rng.Intn(s.N())
				k, alpha := 2, 1.0
				var large, greedy Response
				if variant == game.Sum {
					large = SumLargeNeighborhoodResponse(s, u, k, alpha)
					greedy = SumGreedyResponse(s, u, k, alpha)
				} else {
					large = MaxLargeNeighborhoodResponse(s, u, k, alpha)
					greedy = MaxGreedyResponse(s, u, k, alpha)
				}
				if large.Cost > greedy.Cost+costTol {
					t.Fatalf("g=%d u=%d variant=%v: descent cost %v worse than single-move greedy %v",
						gi, u, variant, large.Cost, greedy.Cost)
				}
				if greedy.Improving && !large.Improving {
					t.Fatalf("g=%d u=%d variant=%v: greedy improves but descent claims stable", gi, u, variant)
				}
			}
		}
	}
}
