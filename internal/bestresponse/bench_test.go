package bestresponse

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
)

func benchState(n int) *game.State {
	rng := rand.New(rand.NewSource(1))
	return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
}

// BenchmarkMaxBestResponseLocal measures the §5.3 reduction at a small
// view radius — the common case inside locality dynamics.
func BenchmarkMaxBestResponseLocal(b *testing.B) {
	s := benchState(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxBestResponse(s, i%s.N(), 3, 2)
	}
}

// BenchmarkMaxBestResponseFullKnowledge measures the k → ∞ case (the
// classical game), the regime the incumbent-capped solver was built for.
func BenchmarkMaxBestResponseFullKnowledge(b *testing.B) {
	s := benchState(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxBestResponse(s, i%s.N(), 1000, 2)
	}
}

// BenchmarkMaxGreedyResponse is the better-response ablation: single
// moves only, no dominating-set machinery.
func BenchmarkMaxGreedyResponse(b *testing.B) {
	s := benchState(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxGreedyResponse(s, i%s.N(), 3, 2)
	}
}

func BenchmarkSumDelta(b *testing.B) {
	s := benchState(100)
	strategy := []int{1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumDelta(s, 0, 3, 2, strategy)
	}
}

func BenchmarkSumGreedyResponse(b *testing.B) {
	s := benchState(60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumGreedyResponse(s, i%s.N(), 2, 2)
	}
}
