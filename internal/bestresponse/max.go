// Package bestresponse computes players' best responses under the
// locality model. For MAXNCG, Proposition 2.1 shows the worst-case
// realizable network coincides with the player's view, so the player can
// optimize directly on the view; the optimization itself reduces to a
// constrained MINIMUM DOMINATING SET on powers of the view (§5.3). For
// SUMNCG, Proposition 2.2 additionally forbids strategies that push
// frontier vertices beyond distance k.
//
// Two implementations coexist. The Evaluator (eval.go) is the hot path:
// it extracts the player's view once into a pooled view.Workspace and
// scores every candidate deviation by incremental, undoable distance
// relaxation — no clone, no full BFS per candidate. The original
// clone-and-BFS responders are retained in reference.go as the executable
// specification; the package-level functions run on a pooled Evaluator
// and return byte-identical responses (same sorted strategies, same
// epsilon tie-breaks), which differential_test.go enforces on randomized
// instances.
package bestresponse

import (
	"repro/internal/game"
)

// epsilon guards strict-improvement comparisons against float noise in
// α-weighted costs.
const epsilon = 1e-9

// Response is the outcome of a best-response computation.
type Response struct {
	// Strategy is the proposed σ'_u in global vertex ids (sorted).
	Strategy []int
	// Cost is the player's cost under Strategy, evaluated on her view
	// (building cost + usage within the view).
	Cost float64
	// CurrentCost is the player's cost under her current strategy,
	// evaluated the same way.
	CurrentCost float64
	// Improving reports whether Strategy is strictly better than the
	// current strategy (by more than epsilon).
	Improving bool
}

// MaxBestResponse computes an exact best response for player u in MAXNCG
// with view radius k and edge price alpha, following §5.3:
//
//  1. extract the view H = G[β(u,k)];
//  2. remove u; vertices that bought an edge towards u stay adjacent to u
//     in every strategy, so they are "forced" dominators;
//  3. for every target eccentricity h, a strategy achieving eccentricity
//     <= h is exactly a dominating set of the (h-1)-th power of H∖{u}
//     extending the forced set; minimize α·|extra| + h over h.
//
// The returned strategy never buys edges already bought towards u (they
// would be pure waste) and is exact: no strategy over the view has lower
// cost.
func MaxBestResponse(s *game.State, u, k int, alpha float64) Response {
	e := evalPool.Get().(*Evaluator)
	r := e.MaxBestResponse(s, u, k, alpha)
	evalPool.Put(e)
	return r
}

// MaxEvaluate computes the view-restricted MAXNCG cost of an arbitrary
// candidate strategy (global ids, all inside u's view): α·|σ'| plus the
// eccentricity of u in the modified view H'. Used by tests and by the LKE
// auditor to cross-check responder outputs against exhaustive search.
func MaxEvaluate(s *game.State, u, k int, alpha float64, strategy []int) float64 {
	e := evalPool.Get().(*Evaluator)
	c := e.MaxEvaluate(s, u, k, alpha, strategy)
	evalPool.Put(e)
	return c
}
