// Package bestresponse computes players' best responses under the
// locality model. For MAXNCG, Proposition 2.1 shows the worst-case
// realizable network coincides with the player's view, so the player can
// optimize directly on the view; the optimization itself reduces to a
// constrained MINIMUM DOMINATING SET on powers of the view (§5.3). For
// SUMNCG, Proposition 2.2 additionally forbids strategies that push
// frontier vertices beyond distance k.
package bestresponse

import (
	"math"
	"sort"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/mds"
	"repro/internal/view"
)

// epsilon guards strict-improvement comparisons against float noise in
// α-weighted costs.
const epsilon = 1e-9

// Response is the outcome of a best-response computation.
type Response struct {
	// Strategy is the proposed σ'_u in global vertex ids (sorted).
	Strategy []int
	// Cost is the player's cost under Strategy, evaluated on her view
	// (building cost + usage within the view).
	Cost float64
	// CurrentCost is the player's cost under her current strategy,
	// evaluated the same way.
	CurrentCost float64
	// Improving reports whether Strategy is strictly better than the
	// current strategy (by more than epsilon).
	Improving bool
}

// MaxBestResponse computes an exact best response for player u in MAXNCG
// with view radius k and edge price alpha, following §5.3:
//
//  1. extract the view H = G[β(u,k)];
//  2. remove u; vertices that bought an edge towards u stay adjacent to u
//     in every strategy, so they are "forced" dominators;
//  3. for every target eccentricity h, a strategy achieving eccentricity
//     <= h is exactly a dominating set of the (h-1)-th power of H∖{u}
//     extending the forced set; minimize α·|extra| + h over h.
//
// The returned strategy never buys edges already bought towards u (they
// would be pure waste) and is exact: no strategy over the view has lower
// cost.
func MaxBestResponse(s *game.State, u, k int, alpha float64) Response {
	v := view.Extract(s.Graph(), u, k)
	cur := currentViewCost(s, v, game.Max, alpha, u)

	// Build H∖{u} with a local id remap (local ids shift after dropping
	// the center).
	rest, restOrig := dropCenter(v)
	nRest := rest.N()
	if nRest == 0 {
		// Lone player: buying nothing is the unique (vacuous) strategy.
		return Response{Strategy: []int{}, Cost: 0, CurrentCost: cur, Improving: cur > epsilon}
	}

	// Forced dominators: view vertices that bought an edge towards u.
	var forced []int
	for i, orig := range restOrig {
		if s.Buys(orig, u) {
			forced = append(forced, i)
		}
	}

	// Candidate eccentricities h: d(u,v) = 1 + d_{H∖u}(S∪forced, v), so the
	// achievable eccentricity range is 1..(1+ecc of any vertex). 2k+1 is a
	// safe upper bound inside a radius-k view; cap by nRest as well.
	maxH := 2*k + 1
	if maxH > nRest {
		maxH = nRest
	}
	if maxH < 1 {
		maxH = 1
	}

	// The incumbent starts at the player's CURRENT cost: only strictly
	// cheaper strategies matter, so every dominating-set search below is
	// capped at the size that would actually beat it — never proving
	// optimality of solutions we would discard. Candidate eccentricities
	// are visited in DESCENDING order so the cap stays tight from the
	// first iteration (at h = maxH the empty extra set always works).
	bestCost := cur
	var bestSet []int
	improved := false
	for h := maxH; h >= 1; h-- {
		if float64(h) >= bestCost-epsilon {
			continue // cost >= h can no longer improve on the incumbent
		}
		limit := nRest + 1
		if alpha > 0 {
			useful := (bestCost - float64(h)) / alpha
			if c := int(math.Ceil(useful)); c < limit {
				limit = c
			}
		}
		p := rest.Power(h - 1)
		extra, ok := mds.MinDominatingExtraAtMost(p, forced, limit)
		if !ok {
			continue
		}
		cost := alpha*float64(len(extra)) + float64(h)
		if cost < bestCost-epsilon {
			bestCost = cost
			bestSet = extra
			improved = true
		}
	}

	if !improved {
		return Response{
			Strategy:    s.Strategy(u),
			Cost:        cur,
			CurrentCost: cur,
			Improving:   false,
		}
	}
	strategy := make([]int, 0, len(bestSet))
	for _, l := range bestSet {
		strategy = append(strategy, restOrig[l])
	}
	sort.Ints(strategy)
	return Response{
		Strategy:    strategy,
		Cost:        bestCost,
		CurrentCost: cur,
		Improving:   true,
	}
}

// currentViewCost evaluates u's current cost restricted to her view: the
// building term uses the full strategy (every bought edge costs α even if
// its endpoint is currently invisible — it was visible when bought and u
// knows she pays for it), while the usage term is measured on the view,
// consistent with Propositions 2.1/2.2.
func currentViewCost(s *game.State, v *view.View, variant game.Variant, alpha float64, u int) float64 {
	build := alpha * float64(s.BoughtCount(u))
	switch variant {
	case game.Max:
		ecc := 0
		for _, d := range v.Dist {
			if d > ecc {
				ecc = d
			}
		}
		if !connectedView(v) {
			return game.InfiniteCost
		}
		return build + float64(ecc)
	case game.Sum:
		sum := 0
		for _, d := range v.Dist {
			sum += d
		}
		if !connectedView(v) {
			return game.InfiniteCost
		}
		return build + float64(sum)
	default:
		panic("bestresponse: unknown variant")
	}
}

// connectedView reports whether every view vertex is reachable from the
// center (true by construction of Extract, kept as a guard).
func connectedView(v *view.View) bool {
	for _, d := range v.Dist {
		if d >= graph.Unreachable {
			return false
		}
	}
	return true
}

// dropCenter returns the view graph with the center removed, and the
// mapping from new local ids to global ids.
func dropCenter(v *view.View) (*graph.Graph, []int) {
	var keep []int
	for i := range v.Orig {
		if i != v.Center {
			keep = append(keep, i)
		}
	}
	sub, subOrig := v.H.Induced(keep)
	orig := make([]int, len(subOrig))
	for i, localID := range subOrig {
		orig[i] = v.Orig[localID]
	}
	return sub, orig
}

// MaxEvaluate computes the view-restricted MAXNCG cost of an arbitrary
// candidate strategy (global ids, all inside u's view): α·|σ'| plus the
// eccentricity of u in the modified view H'. Used by tests and by the LKE
// auditor to cross-check responder outputs against exhaustive search.
func MaxEvaluate(s *game.State, u, k int, alpha float64, strategy []int) float64 {
	v := view.Extract(s.Graph(), u, k)
	h := v.H.Clone()
	// Remove u's bought edges, keep edges bought by others towards u.
	for _, w := range s.Strategy(u) {
		lw, ok := v.Local[w]
		if !ok {
			continue
		}
		if !s.Buys(w, u) {
			h.RemoveEdge(v.Center, lw)
		}
	}
	for _, w := range strategy {
		lw, ok := v.Local[w]
		if !ok {
			return game.InfiniteCost // outside the strategy space
		}
		h.AddEdge(v.Center, lw)
	}
	dist := make([]int, h.N())
	h.BFS(v.Center, dist, nil)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	if ecc >= graph.Unreachable {
		return game.InfiniteCost
	}
	return alpha*float64(len(strategy)) + float64(ecc)
}
