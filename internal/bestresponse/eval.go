package bestresponse

import (
	"math"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/mds"
	"repro/internal/view"
)

// Evaluator owns the reusable buffers for computing many responses — the
// pooled view workspace, the candidate filters, and the MAXNCG
// all-pairs/bitset machinery. Responses are byte-identical to the
// package-level functions (which run on a pooled Evaluator themselves);
// holding one explicitly just keeps a sweep's allocations O(workers)
// instead of O(moves).
//
// An Evaluator is not safe for concurrent use: give each worker its own.
type Evaluator struct {
	ws view.Workspace

	// fixed lists the locals whose center edge exists under every
	// candidate strategy: view vertices that bought an edge towards the
	// player (removing it is not the player's move).
	fixed []int32
	// flags marks locals excluded from greedy candidate loops.
	flags []uint8
	// curLoc holds the locals of the current strategy targets.
	curLoc []int32
	// edges is the scratch center-edge list handed to ResetBase.
	edges []int32
	// cand holds the exhaustive search's candidate locals.
	cand []int32

	// MAXNCG machinery: all-pairs distances over the center-less view,
	// one flat bitset slab for the h-power closed neighborhoods, and the
	// forced-dominator list.
	restDist []int32
	row      []int32
	slab     []uint64
	nbs      [][]uint64
	forced   []int
}

const (
	flagCurrent uint8 = 1 << iota // local is a current strategy target
	flagBuysIn                    // local bought an edge towards the player
)

// NewEvaluator returns an empty Evaluator; buffers grow on first use.
func NewEvaluator() *Evaluator { return &Evaluator{} }

// evalPool backs the package-level convenience functions.
var evalPool = sync.Pool{New: func() any { return NewEvaluator() }}

// prepare extracts u's view into the workspace and classifies the
// center's incident edges.
func (e *Evaluator) prepare(s *game.State, u, k int) {
	e.ws.Extract(s.Graph(), u, k)
	e.fixed = e.fixed[:0]
	for _, l := range e.ws.CenterAdj {
		if s.Buys(int(e.ws.Orig[l]), u) {
			e.fixed = append(e.fixed, l)
		}
	}
}

// SumDelta is the Evaluator form of the package-level SumDelta.
func (e *Evaluator) SumDelta(s *game.State, u, k int, alpha float64, strategy []int) float64 {
	e.prepare(s, u, k)
	e.edges = append(e.edges[:0], e.fixed...)
	for _, w := range strategy {
		l := e.ws.LocalOf(w)
		if l < 0 {
			return game.InfiniteCost // outside the local strategy space
		}
		e.edges = append(e.edges, int32(l))
	}
	e.ws.ResetBase(e.edges)
	sum, ok := e.ws.InnerSum()
	if !ok {
		return game.InfiniteCost
	}
	return alpha*float64(len(strategy)-s.BoughtCount(u)) + float64(sum-e.ws.InnerBase())
}

// growFlags sizes and zero-fills assumptions for the per-local filter.
func (e *Evaluator) growFlags(b int) {
	if cap(e.flags) < b {
		e.flags = make([]uint8, b)
	}
	e.flags = e.flags[:b]
}

// markCandidates fills flags and curLoc for a greedy scan over the
// current strategy; the caller must clearFlags afterwards.
func (e *Evaluator) markCandidates(s *game.State, u int, current []int) {
	e.growFlags(e.ws.Size())
	for _, l := range e.fixed {
		e.flags[l] |= flagBuysIn
	}
	e.curLoc = e.curLoc[:0]
	for _, w := range current {
		// Strategy targets are at distance 1, hence always in the view.
		l := int32(e.ws.LocalOf(w))
		e.curLoc = append(e.curLoc, l)
		e.flags[l] |= flagCurrent
	}
}

func (e *Evaluator) clearFlags() {
	for _, l := range e.fixed {
		e.flags[l] = 0
	}
	for _, l := range e.curLoc {
		e.flags[l] = 0
	}
}

// baseWithout fills e.edges with fixed ∪ curLoc minus curLoc[i].
func (e *Evaluator) baseWithout(i int) {
	e.edges = append(e.edges[:0], e.fixed...)
	e.edges = append(e.edges, e.curLoc[:i]...)
	e.edges = append(e.edges, e.curLoc[i+1:]...)
}

// move identifies the best greedy move found so far.
type move struct {
	kind int // 0 none, 1 add, 2 remove, 3 swap
	i    int // index into current (remove/swap)
	l    int32
}

// materialize turns a greedy move into a fresh sorted global strategy.
func (e *Evaluator) materialize(current []int, m move) []int {
	switch m.kind {
	case 1: // add
		out := make([]int, 0, len(current)+1)
		out = append(out, current...)
		out = append(out, int(e.ws.Orig[m.l]))
		sort.Ints(out)
		return out
	case 2: // remove
		out := make([]int, 0, len(current)-1)
		out = append(out, current[:m.i]...)
		out = append(out, current[m.i+1:]...)
		return out // current is sorted, so the remainder is too
	case 3: // swap
		out := make([]int, 0, len(current))
		out = append(out, current[:m.i]...)
		out = append(out, current[m.i+1:]...)
		out = append(out, int(e.ws.Orig[m.l]))
		sort.Ints(out)
		return out
	default:
		return append([]int(nil), current...)
	}
}

// greedyScan runs the shared single-move loop (additions, removals,
// swaps — in exactly that candidate order) over the workspace, scoring
// each candidate with eval(candLen) on the workspace's maintained state.
// The strict epsilon tie-break keeps the earliest best candidate, like
// the reference implementations.
func (e *Evaluator) greedyScan(current []int, bestScore float64, eval func(candLen int) float64) (float64, move, bool) {
	b := e.ws.Size()
	best := move{}
	improving := false
	consider := func(score float64, m move) {
		if score < bestScore-epsilon {
			bestScore = score
			best = m
			improving = true
		}
	}
	// Additions.
	e.edges = append(e.edges[:0], e.fixed...)
	e.edges = append(e.edges, e.curLoc...)
	e.ws.ResetBase(e.edges)
	for l := 1; l < b; l++ {
		if e.flags[l] != 0 {
			continue
		}
		mark := e.ws.Mark()
		e.ws.AddEdgeRelax(int32(l))
		d := eval(len(current) + 1)
		e.ws.Undo(mark)
		consider(d, move{kind: 1, l: int32(l)})
	}
	// Removals.
	for i := range current {
		e.baseWithout(i)
		e.ws.ResetBase(e.edges)
		consider(eval(len(current)-1), move{kind: 2, i: i})
	}
	// Swaps.
	for i := range current {
		e.baseWithout(i)
		e.ws.ResetBase(e.edges)
		for l := 1; l < b; l++ {
			if e.flags[l] != 0 {
				continue
			}
			mark := e.ws.Mark()
			e.ws.AddEdgeRelax(int32(l))
			d := eval(len(current))
			e.ws.Undo(mark)
			consider(d, move{kind: 3, i: i, l: int32(l)})
		}
	}
	return bestScore, best, improving
}

// SumGreedyResponse is the Evaluator form of the package-level
// SumGreedyResponse.
func (e *Evaluator) SumGreedyResponse(s *game.State, u, k int, alpha float64) Response {
	current := s.Strategy(u)
	if k == 0 && len(current) > 0 {
		// Radius zero puts the current targets outside the view; the
		// incremental scan assumes they are in it (they sit at distance 1
		// for every k >= 1), so this corner runs on the reference.
		return refSumGreedyResponse(s, u, k, alpha)
	}
	e.prepare(s, u, k)
	e.markCandidates(s, u, current)
	bought := s.BoughtCount(u)
	eval := func(candLen int) float64 {
		sum, ok := e.ws.InnerSum()
		if !ok {
			return game.InfiniteCost
		}
		return alpha*float64(candLen-bought) + float64(sum-e.ws.InnerBase())
	}
	bestDelta, best, improving := e.greedyScan(current, 0.0, eval)
	e.clearFlags()
	return Response{
		Strategy:    e.materialize(current, best),
		Cost:        bestDelta,
		CurrentCost: 0,
		Improving:   improving,
	}
}

// SumBestResponseExhaustive is the Evaluator form of the package-level
// SumBestResponseExhaustive.
func (e *Evaluator) SumBestResponseExhaustive(s *game.State, u, k int, alpha float64, maxCandidates int) SumExhaustiveResult {
	e.prepare(s, u, k)
	b := e.ws.Size()
	e.cand = e.cand[:0]
	for l := 1; l < b; l++ {
		if s.Buys(int(e.ws.Orig[l]), u) {
			continue
		}
		e.cand = append(e.cand, int32(l))
	}
	if len(e.cand) > maxCandidates {
		return SumExhaustiveResult{Feasible: false}
	}
	bought := s.BoughtCount(u)
	e.ws.ResetBase(e.fixed)
	bestDelta := 0.0
	bestMask := -1
	improving := false
	for mask := 0; mask < 1<<len(e.cand); mask++ {
		e.edges = e.edges[:0]
		for i, l := range e.cand {
			if mask&(1<<i) != 0 {
				e.edges = append(e.edges, l)
			}
		}
		mark := e.ws.Mark()
		e.ws.AddEdgesRelax(e.edges)
		d := game.InfiniteCost
		if sum, ok := e.ws.InnerSum(); ok {
			d = alpha*float64(len(e.edges)-bought) + float64(sum-e.ws.InnerBase())
		}
		e.ws.Undo(mark)
		if d < bestDelta-epsilon {
			bestDelta = d
			bestMask = mask
			improving = true
		}
	}
	var bestStrategy []int
	if bestMask < 0 {
		bestStrategy = s.Strategy(u) // already sorted
	} else {
		bestStrategy = make([]int, 0, bits.OnesCount(uint(bestMask)))
		for i, l := range e.cand {
			if bestMask&(1<<i) != 0 {
				bestStrategy = append(bestStrategy, int(e.ws.Orig[l]))
			}
		}
		sort.Ints(bestStrategy)
	}
	return SumExhaustiveResult{
		Response: Response{
			Strategy:    bestStrategy,
			Cost:        bestDelta,
			CurrentCost: 0,
			Improving:   improving,
		},
		Feasible: true,
	}
}

// MaxBestResponse is the Evaluator form of the package-level
// MaxBestResponse.
func (e *Evaluator) MaxBestResponse(s *game.State, u, k int, alpha float64) Response {
	e.prepare(s, u, k)
	cur := alpha*float64(s.BoughtCount(u)) + float64(e.ws.ViewEcc())
	rB := e.ws.Size() - 1 // the center-less view H∖{u}; rest j = local j+1
	if rB == 0 {
		// Lone player: buying nothing is the unique (vacuous) strategy.
		return Response{Strategy: []int{}, Cost: 0, CurrentCost: cur, Improving: cur > epsilon}
	}

	// Forced dominators: view vertices that bought an edge towards u.
	e.forced = e.forced[:0]
	for j := 0; j < rB; j++ {
		if s.Buys(int(e.ws.Orig[j+1]), u) {
			e.forced = append(e.forced, j)
		}
	}

	// All-pairs distances over H∖{u}, computed once: the ball CSR already
	// excludes the center, so a plain BFS per vertex is exactly the
	// center-less metric the h-power dominating-set reduction needs.
	if cap(e.restDist) < rB*rB {
		e.restDist = make([]int32, rB*rB)
	}
	e.restDist = e.restDist[:rB*rB]
	if cap(e.row) < rB+1 {
		e.row = make([]int32, rB+1)
	}
	e.row = e.row[:rB+1]
	for j := 0; j < rB; j++ {
		e.ws.BallDistFrom(int32(j+1), e.row)
		copy(e.restDist[j*rB:(j+1)*rB], e.row[1:])
	}

	maxH := 2*k + 1
	if maxH > rB {
		maxH = rB
	}
	if maxH < 1 {
		maxH = 1
	}
	words := (rB + 63) / 64
	if cap(e.slab) < rB*words {
		e.slab = make([]uint64, rB*words)
	}
	e.slab = e.slab[:rB*words]
	if cap(e.nbs) < rB {
		e.nbs = make([][]uint64, rB)
	}
	e.nbs = e.nbs[:rB]
	for j := range e.nbs {
		e.nbs[j] = e.slab[j*words : (j+1)*words]
	}

	// Descending h with the incumbent cap, exactly like the reference:
	// identical neighborhoods feed an identical branch-and-bound.
	bestCost := cur
	var bestSet []int
	improved := false
	for h := maxH; h >= 1; h-- {
		if float64(h) >= bestCost-epsilon {
			continue // cost >= h can no longer improve on the incumbent
		}
		limit := rB + 1
		if alpha > 0 {
			useful := (bestCost - float64(h)) / alpha
			if c := int(math.Ceil(useful)); c < limit {
				limit = c
			}
		}
		// Closed neighborhoods of the (h-1)-th power: {i : d(j,i) <= h-1}.
		for i := range e.slab {
			e.slab[i] = 0
		}
		hh := int32(h - 1)
		for j := 0; j < rB; j++ {
			row := e.restDist[j*rB : (j+1)*rB]
			nb := e.nbs[j]
			for i, d := range row {
				if d <= hh {
					nb[i/64] |= 1 << (i % 64)
				}
			}
		}
		extra, ok := mds.MinDominatingExtraAtMostBitsets(rB, e.nbs, e.forced, limit)
		if !ok {
			continue
		}
		cost := alpha*float64(len(extra)) + float64(h)
		if cost < bestCost-epsilon {
			bestCost = cost
			bestSet = extra
			improved = true
		}
	}

	if !improved {
		return Response{
			Strategy:    s.Strategy(u),
			Cost:        cur,
			CurrentCost: cur,
			Improving:   false,
		}
	}
	strategy := make([]int, 0, len(bestSet))
	for _, j := range bestSet {
		strategy = append(strategy, int(e.ws.Orig[j+1]))
	}
	sort.Ints(strategy)
	return Response{
		Strategy:    strategy,
		Cost:        bestCost,
		CurrentCost: cur,
		Improving:   true,
	}
}

// MaxEvaluate is the Evaluator form of the package-level MaxEvaluate.
func (e *Evaluator) MaxEvaluate(s *game.State, u, k int, alpha float64, strategy []int) float64 {
	e.prepare(s, u, k)
	e.edges = append(e.edges[:0], e.fixed...)
	for _, w := range strategy {
		l := e.ws.LocalOf(w)
		if l < 0 {
			return game.InfiniteCost // outside the strategy space
		}
		e.edges = append(e.edges, int32(l))
	}
	e.ws.ResetBase(e.edges)
	ecc := e.ws.EccAll()
	if ecc >= graph.Unreachable {
		return game.InfiniteCost
	}
	return alpha*float64(len(strategy)) + float64(ecc)
}

// MaxGreedyResponse is the Evaluator form of the package-level
// MaxGreedyResponse.
func (e *Evaluator) MaxGreedyResponse(s *game.State, u, k int, alpha float64) Response {
	current := s.Strategy(u)
	if k == 0 && len(current) > 0 {
		// Same radius-zero corner as SumGreedyResponse.
		return refMaxGreedyResponse(s, u, k, alpha)
	}
	e.prepare(s, u, k)
	e.markCandidates(s, u, current)
	cur := alpha*float64(s.BoughtCount(u)) + float64(e.ws.ViewEcc())
	eval := func(candLen int) float64 {
		ecc := e.ws.EccAll()
		if ecc >= graph.Unreachable {
			return game.InfiniteCost
		}
		return alpha*float64(candLen) + float64(ecc)
	}
	bestCost, best, improving := e.greedyScan(current, cur, eval)
	e.clearFlags()
	return Response{
		Strategy:    e.materialize(current, best),
		Cost:        bestCost,
		CurrentCost: cur,
		Improving:   improving,
	}
}
