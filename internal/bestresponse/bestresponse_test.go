package bestresponse

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/view"
)

// maxExhaustive computes the exact MAXNCG best response by enumerating
// every subset of the view — the reference the MDS-based responder must
// match on small instances.
func maxExhaustive(s *game.State, u, k int, alpha float64) (float64, []int) {
	v := view.Extract(s.Graph(), u, k)
	var candidates []int
	for i, orig := range v.Orig {
		if i == v.Center || s.Buys(orig, u) {
			continue
		}
		candidates = append(candidates, orig)
	}
	best := game.InfiniteCost
	var bestSet []int
	for mask := 0; mask < 1<<len(candidates); mask++ {
		var cand []int
		for i, w := range candidates {
			if mask&(1<<i) != 0 {
				cand = append(cand, w)
			}
		}
		if cand == nil {
			cand = []int{}
		}
		c := MaxEvaluate(s, u, k, alpha, cand)
		if c < best-1e-12 {
			best = c
			bestSet = cand
		}
	}
	sort.Ints(bestSet)
	return best, bestSet
}

func TestMaxBestResponseStarLeaf(t *testing.T) {
	// Star with center 0; leaf 1 owns its edge. With full view and large α
	// the leaf keeps its single edge (dropping it disconnects her).
	s := game.NewState(6)
	for v := 1; v < 6; v++ {
		s.Buy(v, 0)
	}
	r := MaxBestResponse(s, 1, 10, 5)
	if r.Improving {
		t.Fatalf("star leaf found an 'improving' move: %+v", r)
	}
}

func TestMaxBestResponseCenterKeepsEmpty(t *testing.T) {
	s := game.NewState(5)
	for v := 1; v < 5; v++ {
		s.Buy(v, 0)
	}
	r := MaxBestResponse(s, 0, 3, 1)
	if r.Improving {
		t.Fatalf("star center should be at optimum, got %+v", r)
	}
	if r.CurrentCost != 1 {
		t.Fatalf("center current cost=%v, want 1", r.CurrentCost)
	}
}

func TestMaxBestResponsePathEndpointBuysCenter(t *testing.T) {
	// Path 0-1-2-3-4, all edges owned by the left endpoint. Player 0 with
	// full view and cheap α should buy towards the middle to cut her
	// eccentricity from 4.
	s := game.FromGraphLowOwners(gen.Path(5))
	r := MaxBestResponse(s, 0, 10, 0.5)
	if !r.Improving {
		t.Fatal("path endpoint with cheap edges should improve")
	}
	if r.Cost >= r.CurrentCost {
		t.Fatalf("cost=%v not below current=%v", r.Cost, r.CurrentCost)
	}
}

func TestMaxBestResponseCycleLemma31(t *testing.T) {
	// Lemma 3.1: cycle on n >= 2k+2 vertices, each player owns one edge,
	// is an LKE whenever α >= k-1. Check no player improves.
	n, k := 12, 3
	alpha := float64(k) // α = 3 > k-1 = 2
	s := game.NewState(n)
	for i := 0; i < n; i++ {
		s.Buy(i, (i+1)%n)
	}
	for u := 0; u < n; u++ {
		r := MaxBestResponse(s, u, k, alpha)
		if r.Improving {
			t.Fatalf("player %d improves on the Lemma 3.1 cycle: %+v", u, r)
		}
	}
}

func TestMaxBestResponseCycleSmallAlpha(t *testing.T) {
	// With α well below k-1 a cycle player benefits from a chord.
	n, k := 16, 5
	s := game.NewState(n)
	for i := 0; i < n; i++ {
		s.Buy(i, (i+1)%n)
	}
	improved := false
	for u := 0; u < n && !improved; u++ {
		improved = MaxBestResponse(s, u, k, 0.5).Improving
	}
	if !improved {
		t.Fatal("no cycle player improves at α=0.5, k=5")
	}
}

func TestMaxBestResponseMatchesExhaustive(t *testing.T) {
	f := func(seed int64, sz, kRaw, uRaw, aRaw uint8) bool {
		n := 4 + int(sz%8)
		k := 1 + int(kRaw%3)
		alpha := 0.25 + float64(aRaw%12)/4
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(n, rng)
		for i := 0; i < n/4; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		s := game.FromGraphRandomOwners(g, rng)
		u := int(uRaw) % n
		r := MaxBestResponse(s, u, k, alpha)
		wantCost, _ := maxExhaustive(s, u, k, alpha)
		return math.Abs(r.Cost-wantCost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxBestResponseNeverWorse(t *testing.T) {
	f := func(seed int64, sz, kRaw, uRaw uint8) bool {
		n := 4 + int(sz%15)
		k := 1 + int(kRaw%4)
		rng := rand.New(rand.NewSource(seed))
		s := game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
		u := int(uRaw) % n
		r := MaxBestResponse(s, u, k, 1.0)
		return r.Cost <= r.CurrentCost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxBestResponseAppliedCostDrops(t *testing.T) {
	// Applying an improving response must not raise the player's true
	// local cost (evaluated by MaxEvaluate on the pre-move view).
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(12)
		s := game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
		u := rng.Intn(n)
		k := 2 + rng.Intn(3)
		alpha := []float64{0.3, 1, 2, 5}[rng.Intn(4)]
		r := MaxBestResponse(s, u, k, alpha)
		if !r.Improving {
			continue
		}
		got := MaxEvaluate(s, u, k, alpha, r.Strategy)
		if math.Abs(got-r.Cost) > 1e-9 {
			t.Fatalf("trial %d: MaxEvaluate=%v but responder claimed %v", trial, got, r.Cost)
		}
	}
}

func TestMaxEvaluateRejectsOutsideView(t *testing.T) {
	s := game.FromGraphLowOwners(gen.Path(10))
	// Player 0 with k=2 cannot target vertex 9.
	if c := MaxEvaluate(s, 0, 2, 1, []int{9}); c < game.InfiniteCost {
		t.Fatalf("strategy outside view evaluated to finite cost %v", c)
	}
}

func TestSumDeltaCurrentStrategyIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := game.FromGraphRandomOwners(gen.RandomTree(12, rng), rng)
	for u := 0; u < s.N(); u++ {
		if d := SumDelta(s, u, 3, 1.5, s.Strategy(u)); math.Abs(d) > 1e-9 {
			t.Fatalf("Δ(σ,σ)=%v for player %d, want 0", d, u)
		}
	}
}

func TestSumDeltaFrontierGuard(t *testing.T) {
	// Path 0-1-2-3-4; player 2 owns (2,3) and k=2, so vertices 0 and 4 are
	// frontier. Dropping (2,3) pushes 4 out of reach → +Inf.
	s := game.NewState(5)
	s.Buy(0, 1)
	s.Buy(1, 2)
	s.Buy(2, 3)
	s.Buy(3, 4)
	if d := SumDelta(s, 2, 2, 0.1, []int{}); d < game.InfiniteCost {
		t.Fatalf("frontier-increasing move got finite Δ=%v", d)
	}
}

func TestSumDeltaImprovingAddition(t *testing.T) {
	// Path 0-1-2-3-4, player 0, k=4 (full view), tiny α: buying towards 2
	// strictly shortens sums and no frontier exists beyond the view.
	s := game.FromGraphLowOwners(gen.Path(5))
	d := SumDelta(s, 0, 4, 0.1, []int{1, 2})
	if d >= 0 {
		t.Fatalf("Δ=%v, want negative (improvement)", d)
	}
}

func TestSumBestResponseExhaustiveStarStable(t *testing.T) {
	// Star, α in (1,2): leaves cannot improve (classic SUMNCG folklore —
	// the star is an equilibrium for α >= 1).
	s := game.NewState(6)
	for v := 1; v < 6; v++ {
		s.Buy(v, 0)
	}
	for u := 0; u < 6; u++ {
		r := SumBestResponseExhaustive(s, u, 2, 1.5, 12)
		if !r.Feasible {
			t.Fatalf("player %d: exhaustive search infeasible", u)
		}
		if r.Improving {
			t.Fatalf("player %d improves on the star: %+v", u, r)
		}
	}
}

func TestSumBestResponseExhaustiveFindsImprovement(t *testing.T) {
	// Long path, cheap edges, full knowledge: player 0 should improve.
	s := game.FromGraphLowOwners(gen.Path(8))
	r := SumBestResponseExhaustive(s, 0, 7, 0.5, 10)
	if !r.Feasible || !r.Improving {
		t.Fatalf("expected improvement, got %+v", r)
	}
	if r.Cost >= 0 {
		t.Fatalf("best Δ=%v, want negative", r.Cost)
	}
}

func TestSumBestResponseExhaustiveInfeasible(t *testing.T) {
	s := game.FromGraphLowOwners(gen.Complete(30))
	r := SumBestResponseExhaustive(s, 0, 2, 1, 10)
	if r.Feasible {
		t.Fatal("30-candidate view should exceed maxCandidates=10")
	}
}

func TestSumGreedyNeverHurts(t *testing.T) {
	f := func(seed int64, sz, kRaw, uRaw uint8) bool {
		n := 4 + int(sz%15)
		k := 1 + int(kRaw%4)
		rng := rand.New(rand.NewSource(seed))
		s := game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
		u := int(uRaw) % n
		r := SumGreedyResponse(s, u, k, 1.0)
		if !r.Improving {
			return true
		}
		return SumDelta(s, u, k, 1.0, r.Strategy) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSumGreedyAgreesWithExhaustiveOnImprovability(t *testing.T) {
	// Greedy explores single moves; when exhaustive finds no improvement at
	// all, greedy must not either (its move set is a subset).
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(5)
		s := game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
		u := rng.Intn(n)
		k := 2
		ex := SumBestResponseExhaustive(s, u, k, 2, 12)
		if !ex.Feasible {
			continue
		}
		gr := SumGreedyResponse(s, u, k, 2)
		if gr.Improving && !ex.Improving {
			t.Fatalf("trial %d: greedy improves but exhaustive does not", trial)
		}
	}
}
