package bestresponse

import (
	"math"
	"sort"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/mds"
	"repro/internal/view"
)

// This file retains the original clone-and-BFS responder implementations,
// verbatim except for the ref prefix. They are the specification: the
// pooled Evaluator in eval.go must return byte-identical responses, and
// the differential tests in differential_test.go pin the two against each
// other on randomized instances. They also cover the one corner the fast
// path delegates back (radius-zero greedy moves, where current strategy
// targets fall outside the view).

// refSumDelta is the reference implementation of SumDelta.
func refSumDelta(s *game.State, u, k int, alpha float64, strategy []int) float64 {
	v := view.Extract(s.Graph(), u, k)
	hPrime := v.H.Clone()
	for _, w := range s.Strategy(u) {
		lw, ok := v.Local[w]
		if !ok {
			continue
		}
		if !s.Buys(w, u) {
			hPrime.RemoveEdge(v.Center, lw)
		}
	}
	for _, w := range strategy {
		lw, ok := v.Local[w]
		if !ok {
			return game.InfiniteCost // outside the local strategy space
		}
		hPrime.AddEdge(v.Center, lw)
	}
	newDist := make([]int, hPrime.N())
	hPrime.BFS(v.Center, newDist, nil)

	// Frontier guard: d_H(u,f) = k must imply d_{H'}(u,f) <= k.
	for i, d := range v.Dist {
		if d == v.K && newDist[i] > v.K {
			return game.InfiniteCost
		}
	}
	delta := alpha * float64(len(strategy)-s.BoughtCount(u))
	for i, d := range v.Dist {
		if d < v.K {
			if newDist[i] >= graph.Unreachable {
				return game.InfiniteCost
			}
			delta += float64(newDist[i] - d)
		}
	}
	return delta
}

// refSumBestResponseExhaustive is the reference implementation of
// SumBestResponseExhaustive.
func refSumBestResponseExhaustive(s *game.State, u, k int, alpha float64, maxCandidates int) SumExhaustiveResult {
	v := view.Extract(s.Graph(), u, k)
	var candidates []int
	for i, orig := range v.Orig {
		if i == v.Center || s.Buys(orig, u) {
			continue
		}
		candidates = append(candidates, orig)
	}
	if len(candidates) > maxCandidates {
		return SumExhaustiveResult{Feasible: false}
	}
	bestDelta := 0.0 // the current strategy has Δ = 0 by definition
	var bestStrategy []int = s.Strategy(u)
	improving := false
	for mask := 0; mask < 1<<len(candidates); mask++ {
		var cand []int
		for i, w := range candidates {
			if mask&(1<<i) != 0 {
				cand = append(cand, w)
			}
		}
		if cand == nil {
			cand = []int{}
		}
		d := refSumDelta(s, u, k, alpha, cand)
		if d < bestDelta-epsilon {
			bestDelta = d
			bestStrategy = cand
			improving = true
		}
	}
	sort.Ints(bestStrategy)
	return SumExhaustiveResult{
		Response: Response{
			Strategy:    bestStrategy,
			Cost:        bestDelta, // Δ relative to current (negative = gain)
			CurrentCost: 0,
			Improving:   improving,
		},
		Feasible: true,
	}
}

// refSumGreedyResponse is the reference implementation of
// SumGreedyResponse.
func refSumGreedyResponse(s *game.State, u, k int, alpha float64) Response {
	current := s.Strategy(u)
	v := view.Extract(s.Graph(), u, k)

	bestDelta := 0.0
	bestStrategy := current
	improving := false
	try := func(candidate []int) {
		d := refSumDelta(s, u, k, alpha, candidate)
		if d < bestDelta-epsilon {
			bestDelta = d
			bestStrategy = candidate
			improving = true
		}
	}

	inCurrent := make(map[int]bool, len(current))
	for _, w := range current {
		inCurrent[w] = true
	}
	// Additions.
	for _, orig := range v.Orig {
		if orig == u || inCurrent[orig] || s.Buys(orig, u) {
			continue
		}
		try(append(append([]int{}, current...), orig))
	}
	// Removals.
	for i := range current {
		cand := make([]int, 0, len(current)-1)
		cand = append(cand, current[:i]...)
		cand = append(cand, current[i+1:]...)
		try(cand)
	}
	// Swaps.
	for i := range current {
		base := make([]int, 0, len(current))
		base = append(base, current[:i]...)
		base = append(base, current[i+1:]...)
		for _, orig := range v.Orig {
			if orig == u || inCurrent[orig] || s.Buys(orig, u) {
				continue
			}
			try(append(append([]int{}, base...), orig))
		}
	}
	out := append([]int(nil), bestStrategy...)
	sort.Ints(out)
	return Response{
		Strategy:    out,
		Cost:        bestDelta,
		CurrentCost: 0,
		Improving:   improving,
	}
}

// refMaxBestResponse is the reference implementation of MaxBestResponse.
func refMaxBestResponse(s *game.State, u, k int, alpha float64) Response {
	v := view.Extract(s.Graph(), u, k)
	cur := currentViewCost(s, v, game.Max, alpha, u)

	// Build H∖{u} with a local id remap (local ids shift after dropping
	// the center).
	rest, restOrig := dropCenter(v)
	nRest := rest.N()
	if nRest == 0 {
		// Lone player: buying nothing is the unique (vacuous) strategy.
		return Response{Strategy: []int{}, Cost: 0, CurrentCost: cur, Improving: cur > epsilon}
	}

	// Forced dominators: view vertices that bought an edge towards u.
	var forced []int
	for i, orig := range restOrig {
		if s.Buys(orig, u) {
			forced = append(forced, i)
		}
	}

	// Candidate eccentricities h: d(u,v) = 1 + d_{H∖u}(S∪forced, v), so the
	// achievable eccentricity range is 1..(1+ecc of any vertex). 2k+1 is a
	// safe upper bound inside a radius-k view; cap by nRest as well.
	maxH := 2*k + 1
	if maxH > nRest {
		maxH = nRest
	}
	if maxH < 1 {
		maxH = 1
	}

	// The incumbent starts at the player's CURRENT cost: only strictly
	// cheaper strategies matter, so every dominating-set search below is
	// capped at the size that would actually beat it — never proving
	// optimality of solutions we would discard. Candidate eccentricities
	// are visited in DESCENDING order so the cap stays tight from the
	// first iteration (at h = maxH the empty extra set always works).
	bestCost := cur
	var bestSet []int
	improved := false
	for h := maxH; h >= 1; h-- {
		if float64(h) >= bestCost-epsilon {
			continue // cost >= h can no longer improve on the incumbent
		}
		limit := nRest + 1
		if alpha > 0 {
			useful := (bestCost - float64(h)) / alpha
			if c := int(math.Ceil(useful)); c < limit {
				limit = c
			}
		}
		p := rest.Power(h - 1)
		extra, ok := mds.MinDominatingExtraAtMost(p, forced, limit)
		if !ok {
			continue
		}
		cost := alpha*float64(len(extra)) + float64(h)
		if cost < bestCost-epsilon {
			bestCost = cost
			bestSet = extra
			improved = true
		}
	}

	if !improved {
		return Response{
			Strategy:    s.Strategy(u),
			Cost:        cur,
			CurrentCost: cur,
			Improving:   false,
		}
	}
	strategy := make([]int, 0, len(bestSet))
	for _, l := range bestSet {
		strategy = append(strategy, restOrig[l])
	}
	sort.Ints(strategy)
	return Response{
		Strategy:    strategy,
		Cost:        bestCost,
		CurrentCost: cur,
		Improving:   true,
	}
}

// currentViewCost evaluates u's current cost restricted to her view: the
// building term uses the full strategy (every bought edge costs α even if
// its endpoint is currently invisible — it was visible when bought and u
// knows she pays for it), while the usage term is measured on the view,
// consistent with Propositions 2.1/2.2.
func currentViewCost(s *game.State, v *view.View, variant game.Variant, alpha float64, u int) float64 {
	build := alpha * float64(s.BoughtCount(u))
	switch variant {
	case game.Max:
		ecc := 0
		for _, d := range v.Dist {
			if d > ecc {
				ecc = d
			}
		}
		if !connectedView(v) {
			return game.InfiniteCost
		}
		return build + float64(ecc)
	case game.Sum:
		sum := 0
		for _, d := range v.Dist {
			sum += d
		}
		if !connectedView(v) {
			return game.InfiniteCost
		}
		return build + float64(sum)
	default:
		panic("bestresponse: unknown variant")
	}
}

// connectedView reports whether every view vertex is reachable from the
// center (true by construction of Extract, kept as a guard).
func connectedView(v *view.View) bool {
	for _, d := range v.Dist {
		if d >= graph.Unreachable {
			return false
		}
	}
	return true
}

// dropCenter returns the view graph with the center removed, and the
// mapping from new local ids to global ids.
func dropCenter(v *view.View) (*graph.Graph, []int) {
	var keep []int
	for i := range v.Orig {
		if i != v.Center {
			keep = append(keep, i)
		}
	}
	sub, subOrig := v.H.Induced(keep)
	orig := make([]int, len(subOrig))
	for i, localID := range subOrig {
		orig[i] = v.Orig[localID]
	}
	return sub, orig
}

// refMaxEvaluate is the reference implementation of MaxEvaluate.
func refMaxEvaluate(s *game.State, u, k int, alpha float64, strategy []int) float64 {
	v := view.Extract(s.Graph(), u, k)
	h := v.H.Clone()
	// Remove u's bought edges, keep edges bought by others towards u.
	for _, w := range s.Strategy(u) {
		lw, ok := v.Local[w]
		if !ok {
			continue
		}
		if !s.Buys(w, u) {
			h.RemoveEdge(v.Center, lw)
		}
	}
	for _, w := range strategy {
		lw, ok := v.Local[w]
		if !ok {
			return game.InfiniteCost // outside the strategy space
		}
		h.AddEdge(v.Center, lw)
	}
	dist := make([]int, h.N())
	h.BFS(v.Center, dist, nil)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	if ecc >= graph.Unreachable {
		return game.InfiniteCost
	}
	return alpha*float64(len(strategy)) + float64(ecc)
}

// refMaxGreedyResponse is the reference implementation of
// MaxGreedyResponse.
func refMaxGreedyResponse(s *game.State, u, k int, alpha float64) Response {
	current := s.Strategy(u)
	v := view.Extract(s.Graph(), u, k)
	cur := currentViewCost(s, v, game.Max, alpha, u)

	bestCost := cur
	bestStrategy := current
	improving := false
	try := func(candidate []int) {
		c := refMaxEvaluate(s, u, k, alpha, candidate)
		if c < bestCost-epsilon {
			bestCost = c
			bestStrategy = candidate
			improving = true
		}
	}

	inCurrent := make(map[int]bool, len(current))
	for _, w := range current {
		inCurrent[w] = true
	}
	// Additions.
	for _, orig := range v.Orig {
		if orig == u || inCurrent[orig] || s.Buys(orig, u) {
			continue
		}
		try(append(append([]int{}, current...), orig))
	}
	// Removals.
	for i := range current {
		cand := make([]int, 0, len(current)-1)
		cand = append(cand, current[:i]...)
		cand = append(cand, current[i+1:]...)
		try(cand)
	}
	// Swaps.
	for i := range current {
		base := make([]int, 0, len(current))
		base = append(base, current[:i]...)
		base = append(base, current[i+1:]...)
		for _, orig := range v.Orig {
			if orig == u || inCurrent[orig] || s.Buys(orig, u) {
				continue
			}
			try(append(append([]int{}, base...), orig))
		}
	}
	out := append([]int(nil), bestStrategy...)
	sort.Ints(out)
	return Response{
		Strategy:    out,
		Cost:        bestCost,
		CurrentCost: cur,
		Improving:   improving,
	}
}
