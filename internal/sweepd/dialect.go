package sweepd

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dynamics"
	"repro/internal/game"
)

// This file is the dialect seam: every workload-specific decision between
// the JSON spec and the engine lives in one of two registries, keyed by
// the spec's `dialect` and `graph` fields. A dialect owns the move rule
// (the dynamics.Config, responders included); a graph family owns the
// starting-network generator (the dynamics.Factory) plus normalization
// and validation of its own parameters. Everything downstream — the
// result cache, shard leases, replication, summaries, trajectories — only
// ever consumes Spec through ID/KernelHash/Cells/Config/Factory, so a new
// workload is exactly one registry entry: the serving layers handle it
// unmodified.
//
// Hash discipline: a registry entry's normalize MUST zero every field
// that does not apply to it (and new Spec fields must be `omitempty` and
// zero-valued for all pre-existing specs), so specs that mean the same
// job keep byte-identical JSON — and therefore byte-identical ID() and
// KernelHash() — across refactors. TestSpecGoldenHashes pins this.

// DialectBestResponse is the default dialect's canonical name. It
// normalizes to the empty string so legacy specs (which had no dialect
// field) hash identically.
const DialectBestResponse = "best-response"

// dialect is one move rule: its extra validation and its engine
// configuration (α and k are filled per cell by the sweep runner).
type dialect struct {
	validate func(sp Spec) error
	config   func(sp Spec) dynamics.Config
}

// dialects maps Spec.Dialect (post-Normalize) to its implementation.
var dialects = map[string]dialect{
	// Best-response dynamics (§5.1): exact MAXNCG responder, exhaustive-
	// then-greedy SUMNCG responder. The legacy — and default — workload.
	"": {
		config: func(sp Spec) dynamics.Config {
			cfg := dynamics.DefaultConfig(sp.variant(), 0, 0)
			cfg.MaxRounds = sp.MaxRounds
			cfg.CycleCheckAfter = sp.CycleCheckAfter
			cfg.CollectPerRound = sp.Trajectories
			return cfg
		},
	},
	// Swap-only games (Alon et al. via internal/swap): re-point one owned
	// edge, no purchases or deletions. α is part of the grid for cache
	// addressing and statistics but does not influence moves (the edge
	// count is invariant).
	"swap": {
		config: func(sp Spec) dynamics.Config {
			v := sp.variant()
			return dynamics.Config{
				Variant:         v,
				Responder:       dynamics.SwapResponder(v),
				MaxRounds:       sp.MaxRounds,
				CycleCheckAfter: sp.CycleCheckAfter,
				CollectPerRound: sp.Trajectories,
			}
		},
	},
	// Large-neighborhood best response à la Sokol et al.: shift/exchange
	// best-improvement descent inside the view, a compound deviation
	// explored heuristically (bestresponse/large.go).
	"large-neighborhood": {
		config: func(sp Spec) dynamics.Config {
			v := sp.variant()
			return dynamics.Config{
				Variant:         v,
				NewResponder:    dynamics.NewLargeNeighborhoodResponder(v),
				MaxRounds:       sp.MaxRounds,
				CycleCheckAfter: sp.CycleCheckAfter,
				CollectPerRound: sp.Trajectories,
			}
		},
	},
}

// graphFamily is one starting-network family: parameter normalization
// (zero what does not apply — the hash discipline), parameter validation,
// and the state factory.
type graphFamily struct {
	normalize func(sp *Spec)
	validate  func(sp Spec) error
	factory   func(sp Spec) dynamics.Factory
}

// graphFamilies maps Spec.Graph (post-Normalize) to its implementation.
var graphFamilies = map[string]graphFamily{
	// Uniform random trees (Prüfer), the paper's standard setup.
	"tree": {
		normalize: func(sp *Spec) { sp.P = 0; sp.Q = 0 },
		factory:   func(sp Spec) dynamics.Factory { return dynamics.TreeFactory(sp.N) },
	},
	// Connected Erdős–Rényi G(n,p).
	"gnp": {
		normalize: func(sp *Spec) { sp.Q = 0 },
		validate: func(sp Spec) error {
			if sp.P <= 0 || sp.P >= 1 {
				return fmt.Errorf("sweepd: gnp needs 0 < p < 1, got %g", sp.P)
			}
			// Below the ln(n)/n connectivity threshold G(n,p) is almost
			// never connected, so the factory would quietly substitute trees
			// for essentially every cell (it only falls back on rare retry
			// exhaustion). Reject such specs instead of mislabeling results.
			if minP := math.Log(float64(sp.N)) / float64(sp.N); sp.P < minP {
				return fmt.Errorf("sweepd: gnp p=%g is below the connectivity threshold ln(n)/n ≈ %.4f for n=%d; graphs would rarely connect", sp.P, minP, sp.N)
			}
			return nil
		},
		factory: func(sp Spec) dynamics.Factory { return dynamics.ERFactory(sp.N, sp.P) },
	},
	// Near-square grids with each edge deleted with probability p,
	// resampled until connected (gen.RandomConnectedGrid, the
	// goblin-adventures family — SNIPPETS §1).
	"grid-delete": {
		normalize: func(sp *Spec) { sp.Q = 0 },
		validate: func(sp Spec) error {
			if sp.P < 0 || sp.P >= 1 {
				return fmt.Errorf("sweepd: grid-delete needs deletion probability 0 ≤ p < 1, got %g", sp.P)
			}
			// The grid's edge surplus over a spanning tree is about n, and
			// deletion removes about 2pn edges, so past p = 0.5 survivors
			// are almost never connected — the factory would quietly serve
			// undeleted grids. Same rationale as the gnp threshold.
			if sp.P >= 0.5 {
				return fmt.Errorf("sweepd: grid-delete p=%g would rarely leave a connected grid; need p < 0.5", sp.P)
			}
			return nil
		},
		factory: func(sp Spec) dynamics.Factory { return dynamics.GridDeleteFactory(sp.N, sp.P) },
	},
	// Preferential-attachment trees (Barabási–Albert, m = 1).
	"pa-tree": {
		normalize: func(sp *Spec) { sp.P = 0; sp.Q = 0 },
		factory:   func(sp Spec) dynamics.Factory { return dynamics.PATreeFactory(sp.N) },
	},
	// Random q-regular graphs (pairing model), resampled until connected.
	"random-regular": {
		normalize: func(sp *Spec) { sp.P = 0 },
		validate: func(sp Spec) error {
			if sp.Q < 3 || sp.Q >= sp.N {
				// q ≤ 2 is a disjoint union of paths/cycles with no
				// connectivity margin; q ≥ 3 is connected with high
				// probability, so the resampling loop terminates fast.
				return fmt.Errorf("sweepd: random-regular needs 3 ≤ q < n, got q=%d n=%d", sp.Q, sp.N)
			}
			if sp.N*sp.Q%2 != 0 {
				return fmt.Errorf("sweepd: random-regular needs n·q even, got n=%d q=%d", sp.N, sp.Q)
			}
			return nil
		},
		factory: func(sp Spec) dynamics.Factory { return dynamics.RandomRegularFactory(sp.N, sp.Q) },
	},
}

// variant maps the spec's variant string to the game enum; Validate has
// already rejected anything but "max"/"sum".
func (sp Spec) variant() game.Variant {
	if sp.Variant == "sum" {
		return game.Sum
	}
	return game.Max
}

// dialectNames lists the registry keys for error messages, with the
// default dialect under its canonical name.
func dialectNames() string {
	names := make([]string, 0, len(dialects))
	for name := range dialects {
		if name == "" {
			name = DialectBestResponse
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// graphNames lists the graph-family registry keys for error messages.
func graphNames() string {
	names := make([]string, 0, len(graphFamilies))
	for name := range graphFamilies {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}
