package sweepd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
	"repro/internal/sweepd/store"
)

// Error classes the HTTP layer maps to status codes: a store failure is
// the server's fault (500), a quota rejection is load shedding (429) —
// neither is a bad request.
var (
	// ErrStore marks durable-store failures (disk full, permissions).
	ErrStore = errors.New("sweepd: store failure")
	// ErrJobQuota marks admissions rejected by the -max-jobs cap.
	ErrJobQuota = errors.New("sweepd: job quota exceeded")
	// ErrJobRunning marks an eviction attempt on a non-terminal job.
	ErrJobRunning = errors.New("sweepd: job is running; cancel it before purging")
)

// JobStatus is the lifecycle state of a sweep job.
type JobStatus string

const (
	// StatusRunning: the worker pool is executing (or resuming) the grid.
	StatusRunning JobStatus = "running"
	// StatusDone: every cell is checkpointed; results are complete.
	StatusDone JobStatus = "done"
	// StatusCanceled: stopped by request or daemon shutdown. The
	// checkpoint keeps its clean prefix; resubmitting the same spec (or
	// restarting the daemon) resumes from it.
	StatusCanceled JobStatus = "canceled"
	// StatusFailed: an I/O error interrupted checkpointing.
	StatusFailed JobStatus = "failed"
)

// Job is a point-in-time snapshot of one sweep job.
type Job struct {
	ID        string    `json:"id"`
	Spec      Spec      `json:"spec"`
	Status    JobStatus `json:"status"`
	Total     int       `json:"total_cells"`
	Completed int       `json:"completed_cells"`
	CacheHits int       `json:"cache_hits"`
	// RemoteCells counts cells of this job whose results were computed by
	// peer daemons (always 0 without a sharding executor).
	RemoteCells int    `json:"remote_cells,omitempty"`
	Error       string `json:"error,omitempty"`
	// Created is when the job was first admitted; Finished is when it
	// last reached a terminal status (zero while running). Both persist
	// in the store's meta.json, so TTL GC survives restarts.
	Created  time.Time `json:"created,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Replica marks a snapshot served from this daemon's replica of a
	// finished job it never ran (read fan-out), not from the manager's
	// own job table.
	Replica bool `json:"replica,omitempty"`
}

type jobState struct {
	job    Job
	cancel context.CancelFunc
	// canceling is set (under Manager.mu) the moment Cancel is called;
	// the runner only observes the cancellation at its next check, so
	// this flag lets a concurrent resubmit know the job is on its way
	// down and must be restarted rather than returned as "running".
	canceling bool
	// done is closed when the runner goroutine has fully exited (runJob
	// returned and the checkpoint file is closed), gating safe restarts.
	done chan struct{}
	// evicting is set (under Manager.mu) while Evict deletes the job's
	// files; it blocks restarts so no runner starts inside a directory
	// that is being removed.
	evicting bool
	// hist accumulates the wall time of this job's locally computed cells
	// (under Manager.mu); nil for spec-load-failed placeholders.
	hist *latencyHist
}

// restartable reports whether the job is terminal (or about to be) and
// may be re-admitted. Caller holds Manager.mu.
func (js *jobState) restartable() bool {
	return (js.job.Status == StatusCanceled || js.job.Status == StatusFailed || js.canceling) &&
		!js.evicting
}

// Manager owns the sweep jobs: it admits specs, runs each job's grid on a
// context-aware worker pool, streams results into the store's checkpoint
// files, consults the shared result cache, and resumes unfinished jobs
// after a restart.
type Manager struct {
	store   JobStore
	cache   *Cache
	workers int
	// replicas, when set, is this daemon's local copies of other members'
	// finished jobs; nil outside clusters with replication enabled.
	replicas *store.ReplicaSet
	// gate is the daemon-wide worker-token bucket: every job's pool draws
	// from it, so total CPU-bound concurrency stays at `workers` no matter
	// how many jobs run (or resume) at once.
	gate chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// gcWG tracks the background GC goroutine separately from job
	// runners, so Manager.Wait (jobs drained) keeps its meaning.
	gcWG sync.WaitGroup

	started time.Time
	// now is the manager's clock; tests inject a fake to drive TTL GC
	// deterministically. Set before any job is admitted.
	now func() time.Time

	mu   sync.Mutex
	jobs map[string]*jobState
	// maxJobs caps retained jobs (every status counts); 0 = unlimited.
	maxJobs int
	// evictHooks run (outside mu) after each eviction; the HTTP layer
	// registers one to drop its per-job summary state.
	evictHooks []func(id string)
	// finishHooks run (outside mu) each time a job reaches a terminal
	// status; the replicator registers one to push finished checkpoints.
	finishHooks []func(job Job)
	// cellsAppended counts checkpoint lines written since this manager
	// started (computed or cache-served; resume-skipped cells excluded),
	// feeding the /metrics throughput gauges.
	cellsAppended uint64
	// jobsEvicted / spillBytesReclaimed count GC (and explicit purge)
	// work since the manager started.
	jobsEvicted         uint64
	spillBytesReclaimed uint64
	// remoteCells counts cells computed by peer daemons across all jobs
	// since this manager started.
	remoteCells uint64
	// execProvider, when set, supplies per-job compute backends (the
	// peer-sharding layer); nil means every job runs on the local pool.
	execProvider ExecutorProvider
}

// NewManager wires a manager over a store and a (possibly nil) cache.
// workers ≤ 0 means GOMAXPROCS; the bound applies across all jobs
// combined, not per job.
func NewManager(store JobStore, cache *Cache, workers int) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gate := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		gate <- struct{}{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		store:   store,
		cache:   cache,
		workers: workers,
		gate:    gate,
		ctx:     ctx,
		cancel:  cancel,
		started: time.Now(),
		now:     time.Now,
		jobs:    make(map[string]*jobState),
	}
}

// SetMaxJobs caps the number of retained jobs (0 = unlimited). Beyond
// the cap, Submit of a new spec fails with ErrJobQuota; resubmits of
// retained jobs and restart-time Resume are exempt. Call before serving
// traffic.
func (m *Manager) SetMaxJobs(n int) {
	m.mu.Lock()
	m.maxJobs = n
	m.mu.Unlock()
}

// SetExecutorProvider installs the per-job compute-backend factory (the
// peer-sharding layer from internal/sweepd/shard). Call before serving
// traffic. Determinism is unaffected: per-cell seeding makes results
// byte-identical no matter which backend computes each cell.
func (m *Manager) SetExecutorProvider(p ExecutorProvider) {
	m.mu.Lock()
	m.execProvider = p
	m.mu.Unlock()
}

// OnEvict registers fn to run after each job eviction (TTL GC or
// explicit purge), outside the manager lock. Used by the HTTP layer to
// release per-job serving state.
func (m *Manager) OnEvict(fn func(id string)) {
	m.mu.Lock()
	m.evictHooks = append(m.evictHooks, fn)
	m.mu.Unlock()
}

// OnFinish registers fn to run (outside the manager lock, with a
// snapshot of the job) each time a job reaches a terminal status —
// including terminal jobs re-registered by Resume, so replication
// deficits heal across restarts. Used by the replicator to push
// finished checkpoints to peers. Call before Resume.
func (m *Manager) OnFinish(fn func(job Job)) {
	m.mu.Lock()
	m.finishHooks = append(m.finishHooks, fn)
	m.mu.Unlock()
}

// SetReplicas installs this daemon's replica store (local copies of
// other members' finished jobs). Call before serving traffic; nil (the
// default) disables replica-served reads and replica-seeded adoption.
func (m *Manager) SetReplicas(rs *store.ReplicaSet) {
	m.mu.Lock()
	m.replicas = rs
	m.mu.Unlock()
}

// Replicas returns the daemon's replica store (nil when replication is
// disabled).
func (m *Manager) Replicas() *store.ReplicaSet {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicas
}

// ReplicaCheckpoint returns the raw checkpoint bytes of a locally held
// replica of the job, or nil when no replica (or no replica store)
// exists. The scheduler's adoption path prefers this over refetching
// the checkpoint tail from peers over HTTP — a dead leader's job seeds
// from the local copy.
func (m *Manager) ReplicaCheckpoint(id string) []byte {
	rs := m.Replicas()
	if rs == nil {
		return nil
	}
	man, err := rs.Manifest(id)
	if err != nil || man.JobID != id {
		return nil
	}
	data, err := os.ReadFile(rs.ResultsPath(id))
	if err != nil {
		return nil
	}
	return data
}

// fireFinishHooks runs the registered finish hooks (outside mu) with a
// snapshot of the job.
func (m *Manager) fireFinishHooks(job Job) {
	m.mu.Lock()
	hooks := slices.Clone(m.finishHooks)
	m.mu.Unlock()
	for _, fn := range hooks {
		fn(job)
	}
}

// Resume scans the store and restarts every job whose checkpoint is
// incomplete; complete jobs are registered as done. A job whose on-disk
// spec is unreadable or invalid is registered as failed rather than
// taking the daemon down — one bad job directory must never block the
// rest from resuming. Call once after NewManager, before serving traffic.
func (m *Manager) Resume() error {
	ids, err := m.store.Jobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		sp, err := m.store.LoadSpec(id)
		if err == nil {
			if verr := sp.Validate(); verr != nil {
				err = fmt.Errorf("invalid spec %s: %w", m.store.SpecPath(id), verr)
			}
		}
		if err != nil {
			// Register a terminal placeholder whose Error names the spec
			// bytes on disk and why they failed to parse — GET /sweeps/{id}
			// must never report a silent zero spec — and backdate its
			// timestamps so TTL GC reaps the husk like any failed job.
			created := time.Time{}
			if meta, merr := m.store.LoadMeta(id); merr == nil {
				created = meta.Created
			}
			if created.IsZero() {
				if fi, serr := os.Stat(m.store.SpecPath(id)); serr == nil {
					created = fi.ModTime()
				} else {
					created = m.now()
				}
			}
			done := make(chan struct{})
			close(done)
			m.mu.Lock()
			m.jobs[id] = &jobState{
				job: Job{
					ID:       id,
					Status:   StatusFailed,
					Error:    err.Error(),
					Created:  created,
					Finished: created,
				},
				cancel: func() {},
				done:   done,
			}
			m.mu.Unlock()
			continue
		}
		m.admit(sp, false)
	}
	return nil
}

// Submit admits a job for the normalized, validated spec. Identical specs
// collapse onto one job: resubmitting returns the existing job (possibly
// already done) with created=false. Errors carry their class: spec
// problems are plain validation errors, store I/O failures wrap
// ErrStore, and admissions beyond the -max-jobs cap wrap ErrJobQuota.
func (m *Manager) Submit(sp Spec) (Job, bool, error) {
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		return Job{}, false, err
	}
	_, createdOnDisk, err := m.store.CreateJob(sp)
	if err != nil {
		return Job{}, false, fmt.Errorf("%w: %w", ErrStore, err)
	}
	job, created, err := m.admit(sp, true)
	if err != nil && createdOnDisk {
		// The quota rejected a spec we just persisted; remove the dir so
		// the dead job does not resurrect on the next restart's Resume —
		// unless a concurrent identical Submit won a freed slot in the
		// meantime, in which case the dir now belongs to its running job.
		// (Holding mu serializes with admit's registration; the residual
		// CreateJob-vs-delete window only fails that one attempt, and
		// retrying is safe.)
		m.mu.Lock()
		if _, registered := m.jobs[sp.ID()]; !registered {
			m.store.DeleteJob(sp.ID()) //nolint:errcheck // best-effort rollback
		}
		m.mu.Unlock()
	}
	return job, created, err
}

// Adopt admits a job this daemon is claiming from a dead leader: the
// spec comes from the job's gossiped lease, and checkpoint (may be nil)
// is the dead leader's checkpoint tail as fetched from whichever member
// still had bytes — its maximal canonical prefix seeds the local
// checkpoint before the runner starts, so adoption resumes rather than
// recomputes wherever bytes survived. Adoption is quota-exempt: an
// orphaned job must land somewhere, and the adopter was chosen as the
// least-loaded member. Determinism makes the rest safe: whatever prefix
// is imported, the finished checkpoint is byte-identical to an
// uninterrupted run's.
func (m *Manager) Adopt(sp Spec, checkpoint []byte) (Job, bool, error) {
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		return Job{}, false, err
	}
	if _, _, err := m.store.CreateJob(sp); err != nil {
		return Job{}, false, fmt.Errorf("%w: %w", ErrStore, err)
	}
	if len(checkpoint) > 0 {
		// Seeding happens under mu: admit also registers under mu before
		// spawning a runner, so no runner can have the checkpoint open
		// while it is being replaced.
		m.mu.Lock()
		if _, registered := m.jobs[sp.ID()]; !registered {
			m.seedCheckpoint(sp, checkpoint)
		}
		m.mu.Unlock()
	}
	return m.admit(sp, false)
}

// seedCheckpoint writes the maximal canonical prefix of raw (a fetched
// checkpoint tail) as the job's local checkpoint. Each line must decode
// and match the spec's canonical cell at its index; the first torn,
// alien, or out-of-order line ends the import — the runner recomputes
// from there. An existing non-empty local checkpoint wins outright (it
// is already a trusted canonical prefix). Caller holds m.mu and has
// verified no runner is registered for the job. Best-effort: any
// failure just means adoption starts from less.
func (m *Manager) seedCheckpoint(sp Spec, raw []byte) {
	path := m.store.ResultsPath(sp.ID())
	if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
		return
	}
	keep, idx := 0, 0
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break
		}
		line := bytes.TrimSpace(raw[off : off+nl])
		off += nl + 1
		if len(line) == 0 {
			break
		}
		rec, err := ncgio.UnmarshalCellResult(line)
		if err != nil || idx >= sp.NumCells() || rec.Cell != sp.CellsRange(idx, idx+1)[0] {
			break
		}
		idx++
		keep = off
	}
	if keep == 0 {
		return
	}
	tmp := path + ".adopt"
	if err := os.WriteFile(tmp, raw[:keep], 0o644); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
	}
}

// Load snapshots this daemon's capacity for placement decisions and the
// /healthz load section — the same numbers ManagerStats reports, minus
// the O(n) walk over terminal jobs' statuses.
func (m *Manager) Load() LoadInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	running := 0
	for _, js := range m.jobs {
		if js.job.Status == StatusRunning {
			running++
		}
	}
	return LoadInfo{
		QueueDepth:  running,
		BusyWorkers: m.workers - len(m.gate),
		RunningJobs: running,
	}
}

// admit registers the job and starts its runner. A job that is running
// or done is returned as-is; a canceled or failed job is restarted from
// its checkpoint (after its previous runner has fully drained, so two
// runners never share a checkpoint file). enforceQuota applies the
// -max-jobs cap to brand-new registrations only: resubmits and
// restart-time Resume always land.
func (m *Manager) admit(sp Spec, enforceQuota bool) (Job, bool, error) {
	id := sp.ID()
	// Fast path: the common idempotent resubmit of a running or done job
	// returns its snapshot without touching the disk at all.
	m.mu.Lock()
	if js, ok := m.jobs[id]; ok && !js.restartable() {
		job := js.job
		m.mu.Unlock()
		return job, false, nil
	}
	m.mu.Unlock()

	// Slow path — a runner will (re)start. Load (or initialize) the
	// persistent lifecycle record before retaking the lock; a missing or
	// corrupt meta falls back to "created now".
	meta, merr := m.store.LoadMeta(id)
	writeMeta := false
	if merr != nil || meta.Created.IsZero() {
		meta = JobMeta{Created: m.now()}
		writeMeta = true
	}
	if !meta.Finished.IsZero() {
		// Restarting a terminal job clears its terminal stamp; when the
		// runner re-finishes (instantly, for an already-complete
		// checkpoint resumed at boot) a fresh one lands. The TTL clock
		// therefore restarts across daemon restarts — GC may delete
		// late, never early.
		meta.Finished = time.Time{}
		writeMeta = true
	}

	m.mu.Lock()
	if js, ok := m.jobs[id]; ok {
		if !js.restartable() {
			job := js.job
			m.mu.Unlock()
			return job, false, nil
		}
		m.mu.Unlock()
		<-js.done // old runner exits promptly once canceled
		m.mu.Lock()
		if cur := m.jobs[id]; cur != nil && cur != js {
			// Someone else restarted it while we waited.
			job := cur.job
			m.mu.Unlock()
			return job, false, nil
		}
		// cur == nil means the job was evicted while we waited; fall
		// through and re-admit it as new.
	} else if enforceQuota && m.maxJobs > 0 && len(m.jobs) >= m.maxJobs {
		n := len(m.jobs)
		m.mu.Unlock()
		return Job{}, false, fmt.Errorf("%w: %d jobs retained (max %d); purge jobs or wait for GC",
			ErrJobQuota, n, m.maxJobs)
	}
	ctx, cancel := context.WithCancel(m.ctx)
	js := &jobState{
		job: Job{
			ID:      id,
			Spec:    sp,
			Status:  StatusRunning,
			Total:   sp.NumCells(),
			Created: meta.Created,
		},
		cancel: cancel,
		done:   make(chan struct{}),
		hist:   &latencyHist{},
	}
	created := m.jobs[id] == nil
	m.jobs[id] = js
	job := js.job
	m.mu.Unlock()

	if writeMeta {
		m.store.WriteMeta(id, meta) //nolint:errcheck // best-effort; GC falls back to modtime
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer close(js.done)
		defer cancel()
		m.runJob(ctx, js)
	}()
	return job, created, nil
}

// finish flips the job to a terminal status, stamps Finished, and
// persists the lifecycle record so TTL GC survives restarts.
func (m *Manager) finish(js *jobState, status JobStatus, errMsg string) {
	m.mu.Lock()
	js.job.Status = status
	js.job.Error = errMsg
	js.job.Finished = m.now()
	meta := JobMeta{Created: js.job.Created, Finished: js.job.Finished}
	id := js.job.ID
	job := js.job
	m.mu.Unlock()
	m.store.WriteMeta(id, meta) //nolint:errcheck // best-effort; GC falls back to Created
	m.fireFinishHooks(job)
}

// executorFor composes the job's compute backend: the sharding provider's
// executor when one is installed (falling back to the local pool when it
// declines the job), wrapped in the in-flight dedup layer when the cache
// is enabled so concurrent sweeps sharing a kernel never compute the same
// cell twice.
func (m *Manager) executorFor(js *jobState, sp Spec, kernel string) dynamics.Executor {
	m.mu.Lock()
	provider := m.execProvider
	m.mu.Unlock()
	var exec dynamics.Executor
	if provider != nil {
		exec = provider.ExecutorFor(sp, func(cells int) {
			m.mu.Lock()
			js.job.RemoteCells += cells
			m.remoteCells += uint64(cells)
			m.mu.Unlock()
		})
	}
	if exec == nil {
		exec = dynamics.LocalExecutor{}
	}
	return m.wrapDedup(kernel, exec)
}

// wrapDedup layers in-flight (kernel, cell) coalescing over an executor
// when the cache is enabled (the flight registry lives in the cache).
func (m *Manager) wrapDedup(kernel string, exec dynamics.Executor) dynamics.Executor {
	if !m.cache.enabled() {
		return exec
	}
	return &dedupExecutor{cache: m.cache, kernel: kernel, inner: exec}
}

// runJob resumes the job from its checkpoint and sweeps the remaining
// cells, appending each result (in canonical cell order) as one JSONL
// line. Cells found in the cross-job cache are reused without
// recomputation but still checkpointed, so the results file of any
// completed job is always the full canonical grid.
func (m *Manager) runJob(ctx context.Context, js *jobState) {
	id, sp := js.job.ID, js.job.Spec
	fail := func(err error) { m.finish(js, StatusFailed, err.Error()) }

	kernel := sp.KernelHash()
	if sp.Trajectories {
		// Truncate checkpoint and sidecar to their longest common
		// cell-prefix before reading either: crash damage (surplus
		// sidecar record from a mid-append kill, or a tail one file
		// persisted and the other lost to power failure) is dropped and
		// recomputed deterministically, so the finished pair is always
		// byte-identical to an uninterrupted run's.
		if err := m.store.ReconcileTrajectories(id); err != nil {
			fail(err)
			return
		}
	}
	prior, err := m.store.LoadResults(id)
	if err != nil {
		fail(err)
		return
	}
	// Trajectory jobs bypass the shared result cache entirely: its codec
	// drops PerRound, so a cache-served cell would leave a silent hole in
	// the sidecar. Every trajectory cell is either resumed from this
	// job's own checkpoint (its sidecar record already written) or
	// computed fresh (in-flight dedup still applies — flights carry the
	// full in-memory Result, PerRound included).
	useCache := !sp.Trajectories

	// Keep only the light summaries of checkpointed cells: their final
	// states go into the cache as encoded lines and are then released,
	// so resuming a huge job does not pin every decoded state in memory.
	inCheckpoint := make(map[dynamics.Cell]bool, len(prior))
	priorByCell := make(map[dynamics.Cell]dynamics.Result, len(prior))
	for _, r := range prior {
		if useCache {
			if line, err := ncgio.MarshalCellResult(r); err == nil {
				m.cache.Put(kernel, r.Cell, line)
			}
		}
		inCheckpoint[r.Cell] = true
		res := r.Result
		res.Final = nil
		priorByCell[r.Cell] = res
	}
	prior = nil

	w, err := m.store.Appender(id)
	if err != nil {
		fail(err)
		return
	}
	defer w.Close()

	// Trajectory jobs stream per-round stats into a sidecar next to the
	// checkpoint (reconciled above); the main codec stays small.
	var tw *ncgio.CheckpointWriter
	if sp.Trajectories {
		tw, err = m.store.TrajectoryAppender(id)
		if err != nil {
			fail(err)
			return
		}
		defer tw.Close()
	}

	have := func(c dynamics.Cell) (dynamics.Result, bool) {
		if r, ok := priorByCell[c]; ok {
			return r, true
		}
		if useCache {
			if line, ok := m.cache.Get(kernel, c); ok {
				if r, err := ncgio.UnmarshalCellResult(line); err == nil {
					m.mu.Lock()
					js.job.CacheHits++
					m.mu.Unlock()
					return r.Result, true
				}
			}
		}
		return dynamics.Result{}, false
	}
	onResult := func(_ int, r dynamics.CellResult, reused bool) error {
		if inCheckpoint[r.Cell] {
			// Already on disk (and cached above); just count it. Its
			// trajectory line (if any) was appended before the interruption.
			m.mu.Lock()
			js.job.Completed++
			m.mu.Unlock()
			return nil
		}
		line, err := ncgio.MarshalCellResult(r)
		if err != nil {
			return err
		}
		if tw != nil && !reused && len(r.Result.PerRound) > 0 {
			// Sidecar line BEFORE checkpoint line: a process kill between
			// the two appends then leaves a surplus sidecar record rather
			// than a checkpointed cell with no trajectory; either way —
			// including a power loss persisting one file's tail but not
			// the other's — resume truncates both files to their common
			// prefix and recomputes the difference.
			tline, err := ncgio.MarshalTrajectory(r.Cell, r.Result.PerRound)
			if err != nil {
				return err
			}
			if err := tw.AppendLine(tline); err != nil {
				return err
			}
		}
		if err := w.AppendLine(line); err != nil {
			return err
		}
		if useCache {
			m.cache.Put(kernel, r.Cell, line)
		}
		m.mu.Lock()
		js.job.Completed++
		m.cellsAppended++
		m.mu.Unlock()
		return nil
	}
	observe := func(_ int, d time.Duration) {
		m.mu.Lock()
		js.hist.observe(d.Seconds())
		m.mu.Unlock()
	}

	_, err = dynamics.SweepContext(ctx, sp.Cells(), sp.Config(), sp.Factory(), sp.BaseSeed, dynamics.SweepOptions{
		Workers:        m.workers,
		Gate:           m.gate,
		Have:           have,
		OnResult:       onResult,
		DiscardResults: true,
		Executor:       m.executorFor(js, sp, kernel),
		Observe:        observe,
	})
	if err := w.Sync(); err != nil {
		fail(err)
		return
	}
	if tw != nil {
		// Same invariant as the checkpoint: a terminal status is only ever
		// observed after every sidecar byte is durable.
		if err := tw.Sync(); err != nil {
			fail(err)
			return
		}
	}
	switch {
	case err == nil:
		m.finish(js, StatusDone, "")
	case ctx.Err() != nil:
		m.finish(js, StatusCanceled, "")
	default:
		fail(err)
	}
}

// ServeLease computes the contiguous cell range [start, end) of the
// spec's canonical grid on the local worker pool, emitting one canonical
// ncgio CellResult line per cell in canonical order — the follower half
// of the peer-sharding protocol (POST /peer/leases). Lease work draws
// from the same worker gate as local jobs, so a daemon serving peers
// never exceeds its configured CPU-bound concurrency, and it shares the
// result cache both ways: cached cells are served without recomputation,
// computed cells warm the cache (and coalesce with any local job
// computing the same kernel). The spec must be normalized and validated
// by the caller.
//
// Trajectory specs change the framing, not the protocol: each cell is
// emitted as one ncgio lease record wrapping the canonical result line
// with its per-round stats (the checkpoint codec drops them, so bare
// lines could not carry the very data the spec asked for). Such leases
// bypass the result cache in both directions — its codec would strip
// PerRound and hand a later lease a record with a silent hole — but
// in-flight dedup still applies (flights carry the full in-memory
// Result).
func (m *Manager) ServeLease(ctx context.Context, sp Spec, start, end int, emit func(line []byte) error) error {
	if n := sp.NumCells(); start < 0 || end > n || start >= end {
		return fmt.Errorf("sweepd: lease range [%d, %d) outside grid of %d cells", start, end, n)
	}
	// Expand only the leased range: a follower serving thousands of
	// leases against a six-figure grid must not pay O(grid) per lease.
	sub := sp.CellsRange(start, end)
	kernel := sp.KernelHash()
	useCache := !sp.Trajectories
	have := func(c dynamics.Cell) (dynamics.Result, bool) {
		if useCache {
			if line, ok := m.cache.Get(kernel, c); ok {
				if r, err := ncgio.UnmarshalCellResult(line); err == nil {
					return r.Result, true
				}
			}
		}
		return dynamics.Result{}, false
	}
	onResult := func(_ int, r dynamics.CellResult, reused bool) error {
		line, err := ncgio.MarshalCellResult(r)
		if err != nil {
			return err
		}
		if sp.Trajectories {
			rec, err := ncgio.MarshalLeaseRecord(line, r.Result.PerRound)
			if err != nil {
				return err
			}
			return emit(rec)
		}
		if !reused {
			// Memory tier only: this kernel may belong to no local job,
			// and spill files without an owning job are never GC'd.
			m.cache.PutMemory(kernel, r.Cell, line)
		}
		return emit(line)
	}
	_, err := dynamics.SweepContext(ctx, sub, sp.Config(), sp.Factory(), sp.BaseSeed, dynamics.SweepOptions{
		Workers:        m.workers,
		Gate:           m.gate,
		Have:           have,
		OnResult:       onResult,
		DiscardResults: true,
		Executor:       m.wrapDedup(kernel, dynamics.LocalExecutor{}),
	})
	return err
}

// JobLatencies snapshots every job's per-cell wall-time histogram,
// sorted by job ID (jobs with no locally computed cells yet are
// skipped, so /metrics never emits all-zero series).
func (m *Manager) JobLatencies() []JobLatency {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobLatency, 0, len(m.jobs))
	for id, js := range m.jobs {
		if js.hist == nil || js.hist.n == 0 {
			continue
		}
		counts := make([]uint64, len(js.hist.counts))
		copy(counts, js.hist.counts)
		out = append(out, JobLatency{
			ID:      id,
			Buckets: latencyBuckets,
			Counts:  counts,
			Sum:     js.hist.sum,
			Count:   js.hist.n,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get snapshots one job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return js.job, true
}

// List snapshots all jobs, sorted by ID.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, js := range m.jobs {
		out = append(out, js.job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel stops a running job, keeping its checkpoint for later resume.
// It returns the job snapshot taken at the moment of the request and
// whether the job exists; callers distinguish a genuine cancellation
// (snapshot status "running") from a no-op on an already-terminal job by
// inspecting that status.
func (m *Manager) Cancel(id string) (Job, bool) {
	m.mu.Lock()
	js, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Job{}, false
	}
	job := js.job
	if js.job.Status == StatusRunning {
		js.canceling = true
	}
	m.mu.Unlock()
	js.cancel()
	return job, true
}

// Evict removes a terminal job entirely: its store directory (spec,
// meta, checkpoint), its kernel's cache spill files when no other
// retained job shares the kernel, and its registration — after which
// GET /sweeps/{id} is a 404 and resubmitting the spec recomputes from
// scratch. It reports ok=false for an unknown job and ErrJobRunning for
// a job that is still running (cancel first) or mid-purge (retry). A
// resubmit racing an eviction gets the stale terminal snapshot back —
// never a runner inside a directory being deleted.
func (m *Manager) Evict(id string) (Job, bool, error) {
	for {
		m.mu.Lock()
		js, ok := m.jobs[id]
		if !ok {
			m.mu.Unlock()
			return Job{}, false, nil
		}
		if js.job.Status == StatusRunning || js.evicting {
			job := js.job
			m.mu.Unlock()
			return job, true, ErrJobRunning
		}
		m.mu.Unlock()
		// Wait for the runner to fully drain (checkpoint file closed)
		// before deleting its files; for long-terminal jobs done is
		// already closed.
		<-js.done
		m.mu.Lock()
		if m.jobs[id] != js || js.job.Status == StatusRunning {
			// Restarted or replaced while we waited; re-evaluate the
			// fresh state rather than guessing at it.
			m.mu.Unlock()
			continue
		}
		// Mark mid-eviction before releasing the lock: restartable() is
		// now false, so a concurrent resubmit returns the stale snapshot
		// instead of restarting a runner inside a directory being
		// deleted.
		js.evicting = true
		job := js.job
		// Reap the kernel's spill tier only when no other retained job
		// uses it (spec N==0 marks a zero-spec placeholder, no kernel).
		kernel := ""
		if job.Spec.N != 0 {
			kernel = job.Spec.KernelHash()
			for _, other := range m.jobs {
				if other != js && other.job.Spec.N != 0 && other.job.Spec.KernelHash() == kernel {
					kernel = ""
					break
				}
			}
		}
		m.mu.Unlock()

		var reclaimed int64
		if kernel != "" {
			reclaimed = m.cache.RemoveKernel(kernel)
		}
		if err := m.store.DeleteJob(id); err != nil {
			// Deregistering only after the files are gone keeps a failed
			// purge retryable: the API must not report a sweep vanished
			// while its directory survives to resurrect at next restart.
			m.mu.Lock()
			js.evicting = false
			m.mu.Unlock()
			return job, true, err
		}

		m.mu.Lock()
		delete(m.jobs, id)
		m.jobsEvicted++
		m.spillBytesReclaimed += uint64(reclaimed)
		hooks := slices.Clone(m.evictHooks)
		m.mu.Unlock()
		for _, fn := range hooks {
			fn(id)
		}
		return job, true, nil
	}
}

// StartGC launches the background TTL collector: every interval it
// sweeps orphan job dirs and evicts done/failed jobs whose terminal
// timestamp is at least ttl old. Canceled jobs keep their checkpoints
// (they are resumable), and running jobs are never touched. ttl <= 0
// disables GC entirely. Close stops the loop.
func (m *Manager) StartGC(ttl, interval time.Duration) {
	if ttl <= 0 {
		return
	}
	if interval <= 0 {
		interval = time.Minute
	}
	m.gcWG.Add(1)
	go func() {
		defer m.gcWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-m.ctx.Done():
				return
			case <-ticker.C:
				m.gcOnce(ttl)
			}
		}
	}()
}

// gcOnce runs one GC pass: sweep half-created orphan dirs older than
// ttl, expire replicas stored at least ttl ago (their receiver-stamped
// clock, so expiry never depends on the dead leader's clock), then
// evict every done/failed job whose terminal timestamp (or, lacking
// one, its creation time) is at least ttl old.
func (m *Manager) gcOnce(ttl time.Duration) {
	cutoff := m.now().Add(-ttl)
	m.store.SweepOrphans(cutoff) //nolint:errcheck // best-effort
	if rs := m.Replicas(); rs != nil {
		rs.SweepExpired(cutoff) //nolint:errcheck // best-effort
	}
	m.mu.Lock()
	var victims []string
	for id, js := range m.jobs {
		if js.job.Status != StatusDone && js.job.Status != StatusFailed {
			continue
		}
		fin := js.job.Finished
		if fin.IsZero() {
			fin = js.job.Created
		}
		if fin.IsZero() || fin.After(cutoff) {
			continue
		}
		victims = append(victims, id)
	}
	m.mu.Unlock()
	for _, id := range victims {
		m.Evict(id) //nolint:errcheck // a job revived mid-pass just survives
	}
}

// CacheStats exposes the shared cache counters (zero value if no cache).
func (m *Manager) CacheStats() CacheStats { return m.cache.Stats() }

// ManagerStats snapshots daemon-wide throughput counters for /metrics.
type ManagerStats struct {
	// CellsAppended is the number of checkpoint lines written since the
	// manager started (computed or cache-served; cells skipped on resume
	// because they were already checkpointed are not counted).
	CellsAppended uint64
	Uptime        time.Duration
	// Jobs counts jobs per lifecycle status (every status has an entry,
	// possibly 0, so metric series never appear and disappear).
	Jobs map[JobStatus]int
	// JobsEvicted / SpillBytesReclaimed count TTL-GC and explicit-purge
	// work since the manager started.
	JobsEvicted         uint64
	SpillBytesReclaimed uint64
	// RemoteCells counts cells computed by peer daemons for this
	// manager's jobs since it started.
	RemoteCells uint64
	// QueueDepth is the number of running jobs contending for the shared
	// worker gate; BusyWorkers is how many of the pool's tokens are
	// checked out right now.
	QueueDepth  int
	BusyWorkers int
	// MaxJobs echoes the retention cap (0 = unlimited).
	MaxJobs int
}

// Stats snapshots the manager's throughput and lifecycle counters. The
// walk over jobs is O(n) time but allocation-free per job, so liveness
// probes stay cheap no matter how many jobs are retained.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs := map[JobStatus]int{StatusRunning: 0, StatusDone: 0, StatusCanceled: 0, StatusFailed: 0}
	for _, js := range m.jobs {
		jobs[js.job.Status]++
	}
	return ManagerStats{
		CellsAppended:       m.cellsAppended,
		Uptime:              time.Since(m.started),
		Jobs:                jobs,
		JobsEvicted:         m.jobsEvicted,
		SpillBytesReclaimed: m.spillBytesReclaimed,
		RemoteCells:         m.remoteCells,
		QueueDepth:          jobs[StatusRunning],
		BusyWorkers:         m.workers - len(m.gate),
		MaxJobs:             m.maxJobs,
	}
}

// Close cancels all jobs and waits for their runners (and the GC loop)
// to drain. Checkpoints stay on disk; a new manager over the same store
// resumes them.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
	m.gcWG.Wait()
}

// Wait blocks until every currently admitted job's runner has returned
// (test helper; production callers poll Get/List instead).
func (m *Manager) Wait() { m.wg.Wait() }

// ResultsPath exposes the job's checkpoint path for streaming reads.
func (m *Manager) ResultsPath(id string) string { return m.store.ResultsPath(id) }

// TrajectoryPath exposes the job's trajectory sidecar path for streaming
// reads (the file exists only for specs with Trajectories set).
func (m *Manager) TrajectoryPath(id string) string { return m.store.TrajectoryPath(id) }
