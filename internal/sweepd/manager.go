package sweepd

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
)

// JobStatus is the lifecycle state of a sweep job.
type JobStatus string

const (
	// StatusRunning: the worker pool is executing (or resuming) the grid.
	StatusRunning JobStatus = "running"
	// StatusDone: every cell is checkpointed; results are complete.
	StatusDone JobStatus = "done"
	// StatusCanceled: stopped by request or daemon shutdown. The
	// checkpoint keeps its clean prefix; resubmitting the same spec (or
	// restarting the daemon) resumes from it.
	StatusCanceled JobStatus = "canceled"
	// StatusFailed: an I/O error interrupted checkpointing.
	StatusFailed JobStatus = "failed"
)

// Job is a point-in-time snapshot of one sweep job.
type Job struct {
	ID        string    `json:"id"`
	Spec      Spec      `json:"spec"`
	Status    JobStatus `json:"status"`
	Total     int       `json:"total_cells"`
	Completed int       `json:"completed_cells"`
	CacheHits int       `json:"cache_hits"`
	Error     string    `json:"error,omitempty"`
}

type jobState struct {
	job    Job
	cancel context.CancelFunc
	// canceling is set (under Manager.mu) the moment Cancel is called;
	// the runner only observes the cancellation at its next check, so
	// this flag lets a concurrent resubmit know the job is on its way
	// down and must be restarted rather than returned as "running".
	canceling bool
	// done is closed when the runner goroutine has fully exited (runJob
	// returned and the checkpoint file is closed), gating safe restarts.
	done chan struct{}
}

// restartable reports whether the job is terminal (or about to be) and
// may be re-admitted. Caller holds Manager.mu.
func (js *jobState) restartable() bool {
	return js.job.Status == StatusCanceled || js.job.Status == StatusFailed || js.canceling
}

// Manager owns the sweep jobs: it admits specs, runs each job's grid on a
// context-aware worker pool, streams results into the store's checkpoint
// files, consults the shared result cache, and resumes unfinished jobs
// after a restart.
type Manager struct {
	store   *Store
	cache   *Cache
	workers int
	// gate is the daemon-wide worker-token bucket: every job's pool draws
	// from it, so total CPU-bound concurrency stays at `workers` no matter
	// how many jobs run (or resume) at once.
	gate chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	started time.Time

	mu   sync.Mutex
	jobs map[string]*jobState
	// cellsAppended counts checkpoint lines written since this manager
	// started (computed or cache-served; resume-skipped cells excluded),
	// feeding the /metrics throughput gauges.
	cellsAppended uint64
}

// NewManager wires a manager over a store and a (possibly nil) cache.
// workers ≤ 0 means GOMAXPROCS; the bound applies across all jobs
// combined, not per job.
func NewManager(store *Store, cache *Cache, workers int) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gate := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		gate <- struct{}{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		store:   store,
		cache:   cache,
		workers: workers,
		gate:    gate,
		ctx:     ctx,
		cancel:  cancel,
		started: time.Now(),
		jobs:    make(map[string]*jobState),
	}
}

// Resume scans the store and restarts every job whose checkpoint is
// incomplete; complete jobs are registered as done. A job whose on-disk
// spec is unreadable or invalid is registered as failed rather than
// taking the daemon down — one bad job directory must never block the
// rest from resuming. Call once after NewManager, before serving traffic.
func (m *Manager) Resume() error {
	ids, err := m.store.Jobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		sp, err := m.store.LoadSpec(id)
		if err == nil {
			err = sp.Validate()
		}
		if err != nil {
			m.mu.Lock()
			done := make(chan struct{})
			close(done)
			m.jobs[id] = &jobState{
				job:    Job{ID: id, Status: StatusFailed, Error: err.Error()},
				cancel: func() {},
				done:   done,
			}
			m.mu.Unlock()
			continue
		}
		m.admit(sp)
	}
	return nil
}

// Submit admits a job for the normalized, validated spec. Identical specs
// collapse onto one job: resubmitting returns the existing job (possibly
// already done) with created=false.
func (m *Manager) Submit(sp Spec) (Job, bool, error) {
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		return Job{}, false, err
	}
	if _, _, err := m.store.CreateJob(sp); err != nil {
		return Job{}, false, err
	}
	return m.admit(sp)
}

// admit registers the job and starts its runner. A job that is running
// or done is returned as-is; a canceled or failed job is restarted from
// its checkpoint (after its previous runner has fully drained, so two
// runners never share a checkpoint file).
func (m *Manager) admit(sp Spec) (Job, bool, error) {
	id := sp.ID()
	m.mu.Lock()
	if js, ok := m.jobs[id]; ok {
		if !js.restartable() {
			job := js.job
			m.mu.Unlock()
			return job, false, nil
		}
		m.mu.Unlock()
		<-js.done // old runner exits promptly once canceled
		m.mu.Lock()
		if cur := m.jobs[id]; cur != js {
			// Someone else restarted it while we waited.
			job := cur.job
			m.mu.Unlock()
			return job, false, nil
		}
	}
	ctx, cancel := context.WithCancel(m.ctx)
	js := &jobState{
		job: Job{
			ID:     id,
			Spec:   sp,
			Status: StatusRunning,
			Total:  len(sp.Cells()),
		},
		cancel: cancel,
		done:   make(chan struct{}),
	}
	created := m.jobs[id] == nil
	m.jobs[id] = js
	job := js.job
	m.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer close(js.done)
		defer cancel()
		m.runJob(ctx, js)
	}()
	return job, created, nil
}

// runJob resumes the job from its checkpoint and sweeps the remaining
// cells, appending each result (in canonical cell order) as one JSONL
// line. Cells found in the cross-job cache are reused without
// recomputation but still checkpointed, so the results file of any
// completed job is always the full canonical grid.
func (m *Manager) runJob(ctx context.Context, js *jobState) {
	id, sp := js.job.ID, js.job.Spec
	fail := func(err error) {
		m.mu.Lock()
		js.job.Status = StatusFailed
		js.job.Error = err.Error()
		m.mu.Unlock()
	}

	kernel := sp.KernelHash()
	prior, err := m.store.LoadResults(id)
	if err != nil {
		fail(err)
		return
	}
	// Keep only the light summaries of checkpointed cells: their final
	// states go into the cache as encoded lines and are then released,
	// so resuming a huge job does not pin every decoded state in memory.
	inCheckpoint := make(map[dynamics.Cell]bool, len(prior))
	priorByCell := make(map[dynamics.Cell]dynamics.Result, len(prior))
	for _, r := range prior {
		if line, err := ncgio.MarshalCellResult(r); err == nil {
			m.cache.Put(kernel, r.Cell, line)
		}
		inCheckpoint[r.Cell] = true
		res := r.Result
		res.Final = nil
		priorByCell[r.Cell] = res
	}
	prior = nil

	w, err := m.store.Appender(id)
	if err != nil {
		fail(err)
		return
	}
	defer w.Close()

	have := func(c dynamics.Cell) (dynamics.Result, bool) {
		if r, ok := priorByCell[c]; ok {
			return r, true
		}
		if line, ok := m.cache.Get(kernel, c); ok {
			if r, err := ncgio.UnmarshalCellResult(line); err == nil {
				m.mu.Lock()
				js.job.CacheHits++
				m.mu.Unlock()
				return r.Result, true
			}
		}
		return dynamics.Result{}, false
	}
	onResult := func(_ int, r dynamics.CellResult, _ bool) error {
		if inCheckpoint[r.Cell] {
			// Already on disk (and cached above); just count it.
			m.mu.Lock()
			js.job.Completed++
			m.mu.Unlock()
			return nil
		}
		line, err := ncgio.MarshalCellResult(r)
		if err != nil {
			return err
		}
		if err := w.AppendLine(line); err != nil {
			return err
		}
		m.cache.Put(kernel, r.Cell, line)
		m.mu.Lock()
		js.job.Completed++
		m.cellsAppended++
		m.mu.Unlock()
		return nil
	}

	_, err = dynamics.SweepContext(ctx, sp.Cells(), sp.Config(), sp.Factory(), sp.BaseSeed, dynamics.SweepOptions{
		Workers:        m.workers,
		Gate:           m.gate,
		Have:           have,
		OnResult:       onResult,
		DiscardResults: true,
	})
	if err := w.Sync(); err != nil {
		fail(err)
		return
	}
	switch {
	case err == nil:
		m.mu.Lock()
		js.job.Status = StatusDone
		m.mu.Unlock()
	case ctx.Err() != nil:
		m.mu.Lock()
		js.job.Status = StatusCanceled
		m.mu.Unlock()
	default:
		fail(err)
	}
}

// Get snapshots one job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return js.job, true
}

// List snapshots all jobs, sorted by ID.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, js := range m.jobs {
		out = append(out, js.job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel stops a running job, keeping its checkpoint for later resume.
// It returns the job snapshot taken at the moment of the request and
// whether the job exists; callers distinguish a genuine cancellation
// (snapshot status "running") from a no-op on an already-terminal job by
// inspecting that status.
func (m *Manager) Cancel(id string) (Job, bool) {
	m.mu.Lock()
	js, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Job{}, false
	}
	job := js.job
	if js.job.Status == StatusRunning {
		js.canceling = true
	}
	m.mu.Unlock()
	js.cancel()
	return job, true
}

// CacheStats exposes the shared cache counters (zero value if no cache).
func (m *Manager) CacheStats() CacheStats { return m.cache.Stats() }

// ManagerStats snapshots daemon-wide throughput counters for /metrics.
type ManagerStats struct {
	// CellsAppended is the number of checkpoint lines written since the
	// manager started (computed or cache-served; cells skipped on resume
	// because they were already checkpointed are not counted).
	CellsAppended uint64
	Uptime        time.Duration
	// Jobs counts jobs per lifecycle status (every status has an entry,
	// possibly 0, so metric series never appear and disappear).
	Jobs map[JobStatus]int
}

// Stats snapshots the manager's throughput counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs := map[JobStatus]int{StatusRunning: 0, StatusDone: 0, StatusCanceled: 0, StatusFailed: 0}
	for _, js := range m.jobs {
		jobs[js.job.Status]++
	}
	return ManagerStats{
		CellsAppended: m.cellsAppended,
		Uptime:        time.Since(m.started),
		Jobs:          jobs,
	}
}

// Close cancels all jobs and waits for their runners to drain. Checkpoints
// stay on disk; a new manager over the same store resumes them.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// Wait blocks until every currently admitted job's runner has returned
// (test helper; production callers poll Get/List instead).
func (m *Manager) Wait() { m.wg.Wait() }

// ResultsPath exposes the job's checkpoint path for streaming reads.
func (m *Manager) ResultsPath(id string) string { return m.store.ResultsPath(id) }
