package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
)

// Store is the durable side of sweepd: one directory per job holding the
// normalized spec (spec.json) and the streaming results checkpoint
// (results.jsonl, one canonical ncgio cell line per result, in canonical
// cell order). Everything a restarted daemon needs to resume lives here.
type Store struct {
	root string
}

var jobIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store directory.
func (st *Store) Root() string { return st.root }

func (st *Store) jobDir(id string) string   { return filepath.Join(st.root, id) }
func (st *Store) specPath(id string) string { return filepath.Join(st.jobDir(id), "spec.json") }

// ResultsPath returns the job's checkpoint file path.
func (st *Store) ResultsPath(id string) string {
	return filepath.Join(st.jobDir(id), "results.jsonl")
}

// CreateJob persists a normalized, validated spec under its content
// address. It reports created=false when the job already exists (same
// spec ⇒ same ID ⇒ same job), making submission idempotent. The spec is
// written atomically (temp file + rename) so a half-written spec can
// never be mistaken for a job.
func (st *Store) CreateJob(sp Spec) (id string, created bool, err error) {
	id = sp.ID()
	if _, err := os.Stat(st.specPath(id)); err == nil {
		return id, false, nil
	}
	if err := os.MkdirAll(st.jobDir(id), 0o755); err != nil {
		return "", false, fmt.Errorf("sweepd: %w", err)
	}
	data, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return "", false, fmt.Errorf("sweepd: %w", err)
	}
	tmp := st.specPath(id) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return "", false, fmt.Errorf("sweepd: %w", err)
	}
	if err := os.Rename(tmp, st.specPath(id)); err != nil {
		return "", false, fmt.Errorf("sweepd: %w", err)
	}
	return id, true, nil
}

// LoadSpec reads a job's spec back.
func (st *Store) LoadSpec(id string) (Spec, error) {
	data, err := os.ReadFile(st.specPath(id))
	if err != nil {
		return Spec{}, fmt.Errorf("sweepd: %w", err)
	}
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return Spec{}, fmt.Errorf("sweepd: job %s: %w", id, err)
	}
	sp.Normalize()
	return sp, nil
}

// Jobs lists the IDs of all persisted jobs, sorted.
func (st *Store) Jobs() ([]string, error) {
	entries, err := os.ReadDir(st.root)
	if err != nil {
		return nil, fmt.Errorf("sweepd: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() || !jobIDPattern.MatchString(e.Name()) {
			continue
		}
		if _, err := os.Stat(st.specPath(e.Name())); err != nil {
			continue // half-created job: no committed spec
		}
		ids = append(ids, e.Name())
	}
	sort.Strings(ids)
	return ids, nil
}

// LoadResults reads a job's checkpoint, repairing a torn tail if the
// previous process died mid-append.
func (st *Store) LoadResults(id string) ([]dynamics.CellResult, error) {
	return ncgio.ReadCheckpoint(st.ResultsPath(id))
}

// Appender opens the job's checkpoint for streaming appends.
func (st *Store) Appender(id string) (*ncgio.CheckpointWriter, error) {
	return ncgio.NewCheckpointWriter(st.ResultsPath(id))
}
