package sweepd

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
	"repro/internal/sweepd/store"
)

// JobStore is the durable-plane seam: everything the manager (and
// through it the HTTP, GC, shard, and sched layers) needs from a job
// store. *Store — the filesystem backend in internal/sweepd/store,
// wrapped with spec typing — is the default implementation; any backend
// must pass the storetest conformance suite.
type JobStore interface {
	// Root returns the store's base directory (or an equivalent
	// identifier for non-filesystem backends).
	Root() string
	// CreateJob persists a normalized, validated spec under its content
	// address, idempotently (created=false when the job already exists).
	CreateJob(sp Spec) (id string, created bool, err error)
	// LoadSpec reads a job's spec back, normalized.
	LoadSpec(id string) (Spec, error)
	// SpecPath names where the job's spec bytes live, for diagnostics.
	SpecPath(id string) string
	// WriteMeta / LoadMeta persist the job's lifecycle record; a missing
	// or corrupt record is an error and callers fall back to timestamps.
	WriteMeta(id string, meta JobMeta) error
	LoadMeta(id string) (JobMeta, error)
	// DeleteJob removes a job entirely — spec, meta, and checkpoint.
	DeleteJob(id string) error
	// SweepOrphans removes half-created job artifacts older than cutoff.
	SweepOrphans(cutoff time.Time) (removed int, err error)
	// Jobs lists the IDs of all persisted jobs, sorted.
	Jobs() ([]string, error)
	// ResultsPath / TrajectoryPath locate the job's checkpoint and
	// per-round sidecar files for streaming reads.
	ResultsPath(id string) string
	TrajectoryPath(id string) string
	// LoadResults reads a job's checkpoint, repairing a torn tail.
	LoadResults(id string) ([]dynamics.CellResult, error)
	// Appender / TrajectoryAppender open the checkpoint and sidecar for
	// streaming appends.
	Appender(id string) (*ncgio.CheckpointWriter, error)
	TrajectoryAppender(id string) (*ncgio.CheckpointWriter, error)
	// ReconcileTrajectories truncates checkpoint and sidecar to their
	// longest common cell-prefix before a trajectory job resumes.
	ReconcileTrajectories(id string) error
}

// JobMeta is the job lifecycle record (created / finished timestamps),
// shared with the store backend.
type JobMeta = store.Meta

// Store is the default JobStore: the filesystem backend from
// internal/sweepd/store with spec marshaling layered on top. One
// directory per job holds the normalized spec (spec.json) and the
// streaming results checkpoint (results.jsonl, one canonical ncgio cell
// line per result, in canonical cell order). Everything a restarted
// daemon needs to resume lives here.
type Store struct {
	fs *store.FS
}

// OpenStore opens (creating if needed) a store rooted at dir. Orphan
// job dirs left behind by a crash mid-CreateJob are swept on open.
func OpenStore(dir string) (*Store, error) {
	fs, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("sweepd: %w", err)
	}
	return &Store{fs: fs}, nil
}

// Root returns the store directory.
func (st *Store) Root() string { return st.fs.Root() }

// SpecPath returns the job's on-disk spec path (error messages point
// clients and operators at the exact bytes that failed to parse).
func (st *Store) SpecPath(id string) string { return st.fs.SpecPath(id) }

// ResultsPath returns the job's checkpoint file path.
func (st *Store) ResultsPath(id string) string { return st.fs.ResultsPath(id) }

// TrajectoryPath returns the job's per-round trajectory sidecar path
// (only written for specs with Trajectories set).
func (st *Store) TrajectoryPath(id string) string { return st.fs.TrajectoryPath(id) }

// TrajectoryAppender opens the job's trajectory sidecar for streaming
// appends, repairing any torn tail first.
func (st *Store) TrajectoryAppender(id string) (*ncgio.CheckpointWriter, error) {
	return st.fs.TrajectoryAppender(id)
}

// ReconcileTrajectories truncates a trajectory job's checkpoint AND
// sidecar back to their longest common cell-prefix before a resume; see
// the store package for the full crash-damage contract.
func (st *Store) ReconcileTrajectories(id string) error {
	return st.fs.ReconcileTrajectories(id)
}

// CreateJob persists a normalized, validated spec under its content
// address. It reports created=false when the job already exists (same
// spec ⇒ same ID ⇒ same job), making submission idempotent. The spec is
// written atomically (temp file + rename) so a half-written spec can
// never be mistaken for a job.
func (st *Store) CreateJob(sp Spec) (id string, created bool, err error) {
	id = sp.ID()
	data, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return "", false, fmt.Errorf("sweepd: %w", err)
	}
	created, err = st.fs.CreateJob(id, append(data, '\n'))
	if err != nil {
		return "", false, fmt.Errorf("sweepd: %w", err)
	}
	return id, created, nil
}

// LoadSpec reads a job's spec back.
func (st *Store) LoadSpec(id string) (Spec, error) {
	data, err := st.fs.ReadSpec(id)
	if err != nil {
		return Spec{}, fmt.Errorf("sweepd: %w", err)
	}
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return Spec{}, fmt.Errorf("sweepd: job %s: invalid spec %s: %w", id, st.fs.SpecPath(id), err)
	}
	sp.Normalize()
	return sp, nil
}

// WriteMeta persists the job's lifecycle record atomically (temp file +
// rename), same contract as the spec itself.
func (st *Store) WriteMeta(id string, meta JobMeta) error { return st.fs.WriteMeta(id, meta) }

// LoadMeta reads a job's lifecycle record. A missing or corrupt
// meta.json is an error; callers fall back to filesystem timestamps.
func (st *Store) LoadMeta(id string) (JobMeta, error) { return st.fs.LoadMeta(id) }

// DeleteJob removes a job's directory entirely — spec, meta, and
// checkpoint. Callers (Manager.Evict) are responsible for making sure
// no runner still holds the checkpoint open.
func (st *Store) DeleteJob(id string) error { return st.fs.DeleteJob(id) }

// SweepOrphans removes half-created job artifacts older than cutoff;
// see the store package for the crash-window contract.
func (st *Store) SweepOrphans(cutoff time.Time) (removed int, err error) {
	return st.fs.SweepOrphans(cutoff)
}

// Jobs lists the IDs of all persisted jobs, sorted.
func (st *Store) Jobs() ([]string, error) { return st.fs.Jobs() }

// LoadResults reads a job's checkpoint, repairing a torn tail if the
// previous process died mid-append.
func (st *Store) LoadResults(id string) ([]dynamics.CellResult, error) {
	return st.fs.LoadResults(id)
}

// Appender opens the job's checkpoint for streaming appends.
func (st *Store) Appender(id string) (*ncgio.CheckpointWriter, error) {
	return st.fs.Appender(id)
}

// compile-time check: the filesystem-backed Store is a JobStore.
var _ JobStore = (*Store)(nil)
