package sweepd

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/dynamics"
)

// LeaseRequest is the wire form of POST /peer/leases: a leader daemon
// asks a peer to compute the contiguous cell range [Start, End) of the
// spec's canonical grid. Both sides expand Spec.Cells() identically
// (canonical α-major order), so a pair of ints addresses the work without
// shipping the cells themselves. The peer streams back one canonical
// ncgio CellResult line per cell, in canonical order, with blank
// heartbeat lines interleaved while long cells compute; the leader
// counts lines, so a stream that ends short of End-Start records is a
// failed lease and the remainder is reclaimed. When the spec collects
// trajectories, each line is instead an ncgio lease record wrapping the
// canonical result line together with the cell's per-round stats (the
// bare codec intentionally drops them).
type LeaseRequest struct {
	Spec  Spec `json:"spec"`
	Start int  `json:"start"`
	End   int  `json:"end"`
}

// PeerStats snapshots the leader (client) side of the sharding layer for
// /metrics and /healthz. The follower (server) side — leases and cells
// served to remote leaders — is counted by the HTTP handler itself.
type PeerStats struct {
	// Peers is the number of peers the pool would lease to right now:
	// the alive members of the cluster registry when one is installed,
	// or the full configured list for a static pool.
	Peers int `json:"peers"`
	// LeasesIssued counts lease attempts sent to peers; LeaseFailures
	// counts the subset that failed (rejection, disconnect, heartbeat
	// expiry) and had their remainder reclaimed locally.
	LeasesIssued  uint64 `json:"leases_issued"`
	LeaseFailures uint64 `json:"lease_failures"`
	// RemoteCells counts cells whose results were computed by peers.
	RemoteCells uint64 `json:"remote_cells"`
}

// NormalizePeerURL canonicalizes a peer base URL for use as a membership
// key: surrounding whitespace and trailing slashes are stripped, so
// "http://a:1" and " http://a:1/ " address the same peer (and never
// produce "//peer/leases" request paths).
func NormalizePeerURL(s string) string {
	s = strings.TrimSpace(s)
	for strings.HasSuffix(s, "/") {
		s = strings.TrimSuffix(s, "/")
	}
	return s
}

// NormalizePeerURLs normalizes each URL, drops empties, and dedupes
// while preserving first-seen order — the shared parsing step behind
// -peers, shard.New, and the cluster registry, so no layer can spawn two
// lease streams against one peer spelled two ways.
func NormalizePeerURLs(urls []string) []string {
	out := make([]string, 0, len(urls))
	seen := make(map[string]bool, len(urls))
	for _, u := range urls {
		u = NormalizePeerURL(u)
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		out = append(out, u)
	}
	return out
}

// ValidPeerURL reports whether s is an absolute http(s) base URL — the
// one admission rule every membership path (POST /peer/hello, -peers
// seeds, gossip-learned URLs) applies, so a malformed URL can neither
// enter a member table nor spread through the cluster by gossip.
func ValidPeerURL(s string) bool {
	u, err := url.Parse(s)
	return err == nil && (u.Scheme == "http" || u.Scheme == "https") && u.Host != ""
}

// RetryAfter reads a 429's Retry-After hint — RFC 7231 allows both
// delta-seconds ("120") and an HTTP-date ("Wed, 21 Oct 2015 07:28:00
// GMT") — clamped to [100ms, max]: a zero, past, absent, or malformed
// hint must not produce a busy-loop, and no hint may outwait max. Both
// peer client paths (shard leases and scheduler forwarding) share it,
// so every retry against the /peer/* rate class backs off identically.
func RetryAfter(resp *http.Response, now time.Time, max time.Duration) time.Duration {
	wait := time.Second
	if s := strings.TrimSpace(resp.Header.Get("Retry-After")); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			wait = time.Duration(secs) * time.Second
		} else if at, err := http.ParseTime(s); err == nil {
			wait = at.Sub(now)
		}
	}
	if wait < 100*time.Millisecond {
		wait = 100 * time.Millisecond
	}
	if wait > max {
		wait = max
	}
	return wait
}

// LoadInfo is one daemon's capacity snapshot, advertised in /healthz and
// gossiped with the member table so every member can rank placement
// targets without extra RPCs. All three fields come from ManagerStats.
type LoadInfo struct {
	// QueueDepth is the number of running jobs contending for the worker
	// gate — the primary placement signal (a daemon with fewer whole jobs
	// finishes a new one sooner regardless of instantaneous CPU use).
	QueueDepth int `json:"queue_depth"`
	// BusyWorkers is how many worker-pool tokens are checked out right
	// now (local cells and lease serving both draw tokens).
	BusyWorkers int `json:"busy_workers"`
	// RunningJobs mirrors the jobs_by_status "running" gauge.
	RunningJobs int `json:"running_jobs"`
}

// Less orders loads lexicographically (queue depth, then busy workers,
// then running jobs): strictly less means "schedule there instead".
func (l LoadInfo) Less(o LoadInfo) bool {
	if l.QueueDepth != o.QueueDepth {
		return l.QueueDepth < o.QueueDepth
	}
	if l.BusyWorkers != o.BusyWorkers {
		return l.BusyWorkers < o.BusyWorkers
	}
	return l.RunningJobs < o.RunningJobs
}

// MemberLoad pairs an alive member with its last-probed load snapshot.
type MemberLoad struct {
	URL  string   `json:"url"`
	Load LoadInfo `json:"load"`
}

// JobLease is a leader's claim on a running job, heartbeat into the
// member table and carried by gossip. The spec travels inside the lease
// so any member can restart the job from nothing but its gossip state —
// the dead leader's disk is not needed. Generation is the split-brain
// guard: adoption bumps it, and a lease update that loses the
// generation comparison is rejected, so a zombie ex-leader's heartbeats
// cannot reclaim a job a peer has legitimately adopted.
type JobLease struct {
	JobID string `json:"job_id"`
	Spec  Spec   `json:"spec"`
	// Owner is the leader's advertise URL.
	Owner string `json:"owner"`
	// Generation starts at 1 and is bumped by each adoption. Ties (two
	// members adopting the same generation concurrently) resolve to the
	// lexicographically smaller owner URL, identically on every member.
	Generation uint64 `json:"generation"`
	// Completed / Total snapshot checkpoint progress at heartbeat time —
	// observability only; the adopter re-derives real progress from the
	// checkpoint bytes it can actually fetch.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// Updated is stamped locally by each registry that stores the lease
	// (receipt time, not the owner's clock), so adoption staleness checks
	// never depend on cross-host clock agreement.
	Updated time.Time `json:"updated,omitzero"`
}

// Tombstone decommissions a dead member: gossiped alongside the member
// table so the whole cluster stops probing (and scheduling onto) a URL
// that has been down for the tombstone TTL. A hello from the URL lifts
// the tombstone — it just proved reachability.
type Tombstone struct {
	URL   string    `json:"url"`
	Until time.Time `json:"until"`
}

// LeaseTable is the optional Membership extension the scheduler and the
// claim endpoint drive. cluster.Registry implements it.
type LeaseTable interface {
	// UpdateLease records (or refreshes) a job lease, reporting whether
	// it won the generation comparison. A rejected update means someone
	// else now leads the job.
	UpdateLease(l JobLease) bool
	// DropLease removes the lease if its generation is ≤ gen (the owner
	// finished or released the job).
	DropLease(jobID string, gen uint64)
	// Leases snapshots the table, sorted by job ID.
	Leases() []JobLease
	// Tombstones snapshots active tombstones, sorted by URL.
	Tombstones() []Tombstone
}

// PlacedJob is the result of a scheduled submission: the job snapshot
// plus where it landed ("" = this daemon; otherwise the peer base URL
// the spec was forwarded to).
type PlacedJob struct {
	Job      Job
	Created  bool
	PlacedOn string
}

// Submitter is the scheduling seam for POST /sweeps: when a Config
// installs one, submissions are placed cluster-wide instead of admitted
// locally. Implemented by sched.Scheduler.
type Submitter interface {
	SubmitSweep(ctx context.Context, sp Spec) (PlacedJob, error)
}

// RedirectError tells the HTTP layer to answer 307 with a Location: the
// scheduler chose a peer but could neither forward the spec nor admit
// it locally (quota), so the client should retry against the target
// directly.
type RedirectError struct {
	// URL is the chosen peer's base URL.
	URL string
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("sweepd: submit here failed; retry against %s", e.URL)
}

// SchedStats snapshots the scheduler for /healthz and /metrics.
type SchedStats struct {
	// Forwards counts submissions placed on a peer; ForwardFailures
	// counts forward attempts that failed and fell back (next peer or
	// local).
	Forwards        uint64 `json:"forwards"`
	ForwardFailures uint64 `json:"forward_failures"`
	// Adoptions counts orphaned jobs this daemon claimed from dead
	// leaders; LeadershipLost counts local jobs whose lease lost the
	// generation comparison (this daemon kept computing as a non-leader).
	Adoptions      uint64 `json:"adoptions"`
	LeadershipLost uint64 `json:"leadership_lost"`
	// ReplicaSeeds counts adoptions whose checkpoint was seeded from a
	// local replica instead of an HTTP tail-fetch from peers.
	ReplicaSeeds uint64 `json:"replica_seeds"`
}

// HelloRequest is the wire form of POST /peer/hello: a booting daemon
// announces its own advertise URL to a seed peer, which registers it as
// an alive member (and relays it to the rest of the cluster through
// GET /peer/members, which every daemon polls on its probe cycle).
type HelloRequest struct {
	AdvertiseURL string `json:"advertise_url"`
}

// MemberInfo is one row of GET /peer/members: a member's advertise URL
// and its observed health state ("alive", "suspect", or "down"). Self is
// set on the serving daemon's own entry, which is listed first.
type MemberInfo struct {
	URL      string    `json:"url"`
	State    string    `json:"state"`
	Self     bool      `json:"self,omitempty"`
	LastSeen time.Time `json:"last_seen,omitzero"`
	// Load is the member's last-probed capacity snapshot (nil until a
	// probe has seen one; the scheduler never places on a member whose
	// capacity is unknown).
	Load *LoadInfo `json:"load,omitempty"`
}

// ReplicaAd advertises which finished jobs a member holds replicas of.
// Each daemon gossips only its OWN ad (receivers reject hearsay — only
// ad.URL == the gossiping peer is merged), so the replica table spreads
// one authoritative hop at a time on the existing probe cycle, exactly
// like capacity.
type ReplicaAd struct {
	URL    string   `json:"url"`
	JobIDs []string `json:"job_ids"`
}

// ReplicaStats snapshots the replicator for /healthz and /metrics.
type ReplicaStats struct {
	// Pushed / PushFailures count replica POSTs by outcome; BytesPushed
	// totals the body bytes of successful pushes.
	Pushed       uint64 `json:"pushed"`
	PushFailures uint64 `json:"push_failures"`
	BytesPushed  uint64 `json:"bytes_pushed"`
}

// ReplicaTable is the optional Membership extension the read fan-out
// path consults: which alive members hold a replica of a job.
// cluster.Registry implements it from gossiped ReplicaAds.
type ReplicaTable interface {
	// ReplicaHolders returns the advertise URLs of alive members known
	// to hold a replica of the job (possibly empty; never self).
	ReplicaHolders(jobID string) []string
}

// MembersResponse is the GET /peer/members (and POST /peer/hello
// response) payload. Leases, Tombstones, and Replicas ride along so one
// gossip pull per cycle carries membership, capacity, job leadership,
// decommissions, and replica placement at once.
type MembersResponse struct {
	Members    []MemberInfo `json:"members"`
	Leases     []JobLease   `json:"leases,omitempty"`
	Tombstones []Tombstone  `json:"tombstones,omitempty"`
	// Replicas carries replica advertisements; daemons include only
	// their own ad (receivers ignore entries for other URLs).
	Replicas []ReplicaAd `json:"replicas,omitempty"`
}

// ClusterStats snapshots the membership layer for /healthz and /metrics.
type ClusterStats struct {
	// InstanceID is this daemon's random per-process identity. Probes
	// read it from /healthz to detect two situations a URL alone cannot:
	// a member that is actually this daemon under an unadvertised URL
	// (never lease to yourself), and a peer that restarted without
	// missing a probe (its member table is gone; re-announce to it).
	InstanceID string `json:"instance_id,omitempty"`
	// MembersByState counts known peers (self excluded) per health state;
	// every state has an entry, possibly 0.
	MembersByState map[string]int `json:"members_by_state"`
	// Probes / ProbeFailures count health-probe attempts and the subset
	// that failed. Backoffs counts the times a down peer's probe backoff
	// was raised; Readmissions counts down peers revived by a successful
	// probe (or a fresh hello).
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	Backoffs      uint64 `json:"backoffs"`
	Readmissions  uint64 `json:"readmissions"`
	// Tombstones is the number of currently active tombstones;
	// Tombstoned counts members decommissioned since start.
	Tombstones int    `json:"tombstones"`
	Tombstoned uint64 `json:"tombstoned_total"`
	// Leases is the number of job leases in the member table.
	Leases int `json:"leases"`
}

// Membership is the cluster-membership surface the HTTP layer serves
// (POST /peer/hello, GET /peer/members, /healthz, /metrics). It is
// implemented by cluster.Registry; the interface lives here so sweepd
// does not import its own subpackage.
type Membership interface {
	// Hello registers (or revives) a peer that announced itself.
	Hello(advertiseURL string)
	// Members snapshots the known cluster, self first.
	Members() []MemberInfo
	// ClusterStats snapshots the probe/backoff counters.
	ClusterStats() ClusterStats
}

// ExecutorProvider supplies the compute backend for each job, letting the
// peer-sharding layer (internal/sweepd/shard) plug in without sweepd
// importing it. ExecutorFor may return nil to mean "run locally" (e.g. no
// live peers). onRemote, when invoked by the returned executor, reports
// cells whose results arrived from peers — the manager feeds it into the
// job snapshot (Job.RemoteCells) and daemon metrics.
type ExecutorProvider interface {
	ExecutorFor(sp Spec, onRemote func(cells int)) dynamics.Executor
}
