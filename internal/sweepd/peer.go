package sweepd

import "repro/internal/dynamics"

// LeaseRequest is the wire form of POST /peer/leases: a leader daemon
// asks a peer to compute the contiguous cell range [Start, End) of the
// spec's canonical grid. Both sides expand Spec.Cells() identically
// (canonical α-major order), so a pair of ints addresses the work without
// shipping the cells themselves. The peer streams back one canonical
// ncgio CellResult line per cell, in canonical order, with blank
// heartbeat lines interleaved while long cells compute; the leader
// counts lines, so a stream that ends short of End-Start records is a
// failed lease and the remainder is reclaimed.
type LeaseRequest struct {
	Spec  Spec `json:"spec"`
	Start int  `json:"start"`
	End   int  `json:"end"`
}

// PeerStats snapshots the leader (client) side of the sharding layer for
// /metrics and /healthz. The follower (server) side — leases and cells
// served to remote leaders — is counted by the HTTP handler itself.
type PeerStats struct {
	// Peers is the number of configured peer daemons.
	Peers int `json:"peers"`
	// LeasesIssued counts lease attempts sent to peers; LeaseFailures
	// counts the subset that failed (rejection, disconnect, heartbeat
	// expiry) and had their remainder reclaimed locally.
	LeasesIssued  uint64 `json:"leases_issued"`
	LeaseFailures uint64 `json:"lease_failures"`
	// RemoteCells counts cells whose results were computed by peers.
	RemoteCells uint64 `json:"remote_cells"`
}

// ExecutorProvider supplies the compute backend for each job, letting the
// peer-sharding layer (internal/sweepd/shard) plug in without sweepd
// importing it. ExecutorFor may return nil to mean "run locally" (e.g. no
// live peers, or a trajectory job whose wire codec cannot carry
// PerRound). onRemote, when invoked by the returned executor, reports
// cells whose results arrived from peers — the manager feeds it into the
// job snapshot (Job.RemoteCells) and daemon metrics.
type ExecutorProvider interface {
	ExecutorFor(sp Spec, onRemote func(cells int)) dynamics.Executor
}
