package sweepd

import (
	"net/url"
	"strings"
	"time"

	"repro/internal/dynamics"
)

// LeaseRequest is the wire form of POST /peer/leases: a leader daemon
// asks a peer to compute the contiguous cell range [Start, End) of the
// spec's canonical grid. Both sides expand Spec.Cells() identically
// (canonical α-major order), so a pair of ints addresses the work without
// shipping the cells themselves. The peer streams back one canonical
// ncgio CellResult line per cell, in canonical order, with blank
// heartbeat lines interleaved while long cells compute; the leader
// counts lines, so a stream that ends short of End-Start records is a
// failed lease and the remainder is reclaimed.
type LeaseRequest struct {
	Spec  Spec `json:"spec"`
	Start int  `json:"start"`
	End   int  `json:"end"`
}

// PeerStats snapshots the leader (client) side of the sharding layer for
// /metrics and /healthz. The follower (server) side — leases and cells
// served to remote leaders — is counted by the HTTP handler itself.
type PeerStats struct {
	// Peers is the number of peers the pool would lease to right now:
	// the alive members of the cluster registry when one is installed,
	// or the full configured list for a static pool.
	Peers int `json:"peers"`
	// LeasesIssued counts lease attempts sent to peers; LeaseFailures
	// counts the subset that failed (rejection, disconnect, heartbeat
	// expiry) and had their remainder reclaimed locally.
	LeasesIssued  uint64 `json:"leases_issued"`
	LeaseFailures uint64 `json:"lease_failures"`
	// RemoteCells counts cells whose results were computed by peers.
	RemoteCells uint64 `json:"remote_cells"`
}

// NormalizePeerURL canonicalizes a peer base URL for use as a membership
// key: surrounding whitespace and trailing slashes are stripped, so
// "http://a:1" and " http://a:1/ " address the same peer (and never
// produce "//peer/leases" request paths).
func NormalizePeerURL(s string) string {
	s = strings.TrimSpace(s)
	for strings.HasSuffix(s, "/") {
		s = strings.TrimSuffix(s, "/")
	}
	return s
}

// NormalizePeerURLs normalizes each URL, drops empties, and dedupes
// while preserving first-seen order — the shared parsing step behind
// -peers, shard.New, and the cluster registry, so no layer can spawn two
// lease streams against one peer spelled two ways.
func NormalizePeerURLs(urls []string) []string {
	out := make([]string, 0, len(urls))
	seen := make(map[string]bool, len(urls))
	for _, u := range urls {
		u = NormalizePeerURL(u)
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		out = append(out, u)
	}
	return out
}

// ValidPeerURL reports whether s is an absolute http(s) base URL — the
// one admission rule every membership path (POST /peer/hello, -peers
// seeds, gossip-learned URLs) applies, so a malformed URL can neither
// enter a member table nor spread through the cluster by gossip.
func ValidPeerURL(s string) bool {
	u, err := url.Parse(s)
	return err == nil && (u.Scheme == "http" || u.Scheme == "https") && u.Host != ""
}

// HelloRequest is the wire form of POST /peer/hello: a booting daemon
// announces its own advertise URL to a seed peer, which registers it as
// an alive member (and relays it to the rest of the cluster through
// GET /peer/members, which every daemon polls on its probe cycle).
type HelloRequest struct {
	AdvertiseURL string `json:"advertise_url"`
}

// MemberInfo is one row of GET /peer/members: a member's advertise URL
// and its observed health state ("alive", "suspect", or "down"). Self is
// set on the serving daemon's own entry, which is listed first.
type MemberInfo struct {
	URL      string    `json:"url"`
	State    string    `json:"state"`
	Self     bool      `json:"self,omitempty"`
	LastSeen time.Time `json:"last_seen,omitzero"`
}

// MembersResponse is the GET /peer/members (and POST /peer/hello
// response) payload.
type MembersResponse struct {
	Members []MemberInfo `json:"members"`
}

// ClusterStats snapshots the membership layer for /healthz and /metrics.
type ClusterStats struct {
	// InstanceID is this daemon's random per-process identity. Probes
	// read it from /healthz to detect two situations a URL alone cannot:
	// a member that is actually this daemon under an unadvertised URL
	// (never lease to yourself), and a peer that restarted without
	// missing a probe (its member table is gone; re-announce to it).
	InstanceID string `json:"instance_id,omitempty"`
	// MembersByState counts known peers (self excluded) per health state;
	// every state has an entry, possibly 0.
	MembersByState map[string]int `json:"members_by_state"`
	// Probes / ProbeFailures count health-probe attempts and the subset
	// that failed. Backoffs counts the times a down peer's probe backoff
	// was raised; Readmissions counts down peers revived by a successful
	// probe (or a fresh hello).
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	Backoffs      uint64 `json:"backoffs"`
	Readmissions  uint64 `json:"readmissions"`
}

// Membership is the cluster-membership surface the HTTP layer serves
// (POST /peer/hello, GET /peer/members, /healthz, /metrics). It is
// implemented by cluster.Registry; the interface lives here so sweepd
// does not import its own subpackage.
type Membership interface {
	// Hello registers (or revives) a peer that announced itself.
	Hello(advertiseURL string)
	// Members snapshots the known cluster, self first.
	Members() []MemberInfo
	// ClusterStats snapshots the probe/backoff counters.
	ClusterStats() ClusterStats
}

// ExecutorProvider supplies the compute backend for each job, letting the
// peer-sharding layer (internal/sweepd/shard) plug in without sweepd
// importing it. ExecutorFor may return nil to mean "run locally" (e.g. no
// live peers, or a trajectory job whose wire codec cannot carry
// PerRound). onRemote, when invoked by the returned executor, reports
// cells whose results arrived from peers — the manager feeds it into the
// job snapshot (Job.RemoteCells) and daemon metrics.
type ExecutorProvider interface {
	ExecutorFor(sp Spec, onRemote func(cells int)) dynamics.Executor
}
