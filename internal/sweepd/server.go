package sweepd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
	"repro/internal/stats"
	"repro/internal/sweepd/store"
)

// maxReplicaBody bounds one POST /peer/replicas/{id} body (manifest +
// full checkpoint + sidecar), mirroring the adoption tail-fetch cap.
const maxReplicaBody = 64 << 20

// Config tunes the HTTP layer. The zero value serves with production
// defaults: 150ms follow-mode polling, 15s heartbeats, no rate limits.
type Config struct {
	// PollInterval is how often follow mode re-checks a running job's
	// checkpoint for growth; HeartbeatInterval is how long a follow
	// stream may stay silent before a blank keep-alive line goes out.
	PollInterval      time.Duration
	HeartbeatInterval time.Duration
	// ReadRate and MutateRate are per-endpoint-class token-bucket limits
	// in requests/second (burst = one second's worth, minimum 1). Read
	// covers the GET /sweeps endpoints; Mutate covers POST /sweeps and
	// DELETE /sweeps/{id}; Peer covers the /peer/* sharding endpoints (a
	// class of its own, so a chatty leader can neither starve nor be
	// starved by interactive clients). Separate buckets mean heavy
	// readers cannot starve submissions. /healthz and /metrics are exempt
	// so liveness probes and scrapers never see 429. <= 0 disables that
	// class's limit.
	ReadRate   float64
	MutateRate float64
	PeerRate   float64
	// ReplicaRate is its own class for POST /peer/replicas/{id}: replica
	// pushes carry whole checkpoints, so they must not drain the peer
	// bucket that gossip pulls and lease streams depend on.
	ReplicaRate float64
	// ReplicaStats, when set, feeds the replicator's push counters
	// (pushed, failures, bytes) into /metrics and /healthz;
	// cmd/ncg-server wires it to the sweepd.Replicator.
	ReplicaStats func() ReplicaStats
	// PeerStats, when set, feeds the leader-side sharding counters
	// (leases issued, remote cells, failures) into /metrics and /healthz;
	// cmd/ncg-server wires it to the shard.Pool.
	PeerStats func() PeerStats
	// Cluster, when set, enables the membership endpoints (POST
	// /peer/hello, GET /peer/members) and the per-peer state gauges;
	// cmd/ncg-server wires it to the cluster.Registry. Nil means the
	// membership endpoints answer 503. When the value also implements
	// LeaseTable (cluster.Registry does), the gossip payload carries
	// job leases and tombstones and POST /peer/jobs/claim is live.
	Cluster Membership
	// Sched, when set, routes POST /sweeps through the cluster
	// scheduler (capacity-aware placement, forwarding); cmd/ncg-server
	// wires it to the sched.Scheduler. Nil means submissions always
	// run locally.
	Sched Submitter
	// SchedStats, when set, feeds the scheduler counters (forwards,
	// adoptions, leadership losses) into /metrics and /healthz.
	SchedStats func() SchedStats
	// now is the rate limiter's clock; tests inject a fake.
	now func() time.Time
}

// handler carries the serving knobs alongside the manager; tests shrink
// the intervals to drive follow mode fast.
type handler struct {
	m                 *Manager
	pollInterval      time.Duration
	heartbeatInterval time.Duration

	readBucket    *tokenBucket
	mutateBucket  *tokenBucket
	peerBucket    *tokenBucket
	replicaBucket *tokenBucket
	// throttled counts 429s issued by the rate limiter; quotaRejections
	// counts submissions refused by the -max-jobs cap.
	throttled       atomic.Uint64
	quotaRejections atomic.Uint64
	// leasesServed / leaseCellsServed count the follower side of the
	// sharding protocol: leases this daemon completed for remote leaders
	// and the cell lines streamed back. peerStats, when non-nil, snapshots
	// the leader side (wired from the shard.Pool).
	leasesServed     atomic.Uint64
	leaseCellsServed atomic.Uint64
	peerStats        func() PeerStats
	// cluster serves the membership endpoints (nil = not clustered).
	cluster Membership
	// sched places submissions cluster-wide (nil = always local);
	// schedStats snapshots its counters for /metrics and /healthz.
	sched      Submitter
	schedStats func() SchedStats
	// replicaStats snapshots the replicator's push counters; the receive
	// and read-fan-out side is counted here in the handler.
	replicaStats func() ReplicaStats
	// replicasReceived / replicaBytesReceived count verified replica
	// pushes landed on this daemon; replicaReads counts terminal reads
	// served from the local replica set; replicaRedirects counts reads of
	// unknown jobs answered with a one-hop redirect to a likely holder;
	// notModified counts conditional reads answered 304.
	replicasReceived     atomic.Uint64
	replicaBytesReceived atomic.Uint64
	replicaReads         atomic.Uint64
	replicaRedirects     atomic.Uint64
	notModified          atomic.Uint64

	mu        sync.Mutex
	summaries map[string]*summaryState
}

// tokenBucket is a minimal clock-injectable token bucket: rate tokens
// per second, burst capacity, one token per request. A nil bucket is
// unlimited.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	burst := math.Max(rate, 1)
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, now: now}
}

// allow takes one token if available; otherwise it reports how long
// until the next token accrues (the Retry-After hint).
func (tb *tokenBucket) allow() (bool, time.Duration) {
	if tb == nil {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	if !tb.last.IsZero() {
		tb.tokens = math.Min(tb.burst, tb.tokens+now.Sub(tb.last).Seconds()*tb.rate)
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	return false, time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
}

// rateLimit classifies each request into an endpoint-class bucket and
// sheds load with 429 + Retry-After when the bucket is dry. /healthz
// and /metrics bypass the limiter entirely.
func (h *handler) rateLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		bucket, class := h.readBucket, "read"
		switch {
		case strings.HasPrefix(r.URL.Path, "/peer/replicas"):
			bucket, class = h.replicaBucket, "replica"
		case strings.HasPrefix(r.URL.Path, "/peer/"):
			bucket, class = h.peerBucket, "peer"
		case r.Method != http.MethodGet && r.Method != http.MethodHead:
			bucket, class = h.mutateBucket, "mutate"
		}
		ok, wait := bucket.allow()
		if !ok {
			secs := int(math.Ceil(wait.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			h.throttled.Add(1)
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("rate limit exceeded for %s requests; retry in %ds", class, secs))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// NewHandler builds the sweepd HTTP JSON API over a manager:
//
//	POST   /sweeps              submit a Spec; idempotent (same spec ⇒ same job)
//	GET    /sweeps              list job snapshots
//	GET    /sweeps/{id}         one job snapshot
//	GET    /sweeps/{id}/results stream the checkpoint as NDJSON (results so far);
//	                            ?follow=1 tails a running job to its terminal
//	                            status (sent as the X-Sweep-Status trailer);
//	                            done jobs carry a strong ETag and honor
//	                            If-None-Match with 304
//	GET    /sweeps/{id}/summary per-(α,k) stats.Summarize roll-ups, server-side
//	GET    /sweeps/{id}/trajectories
//	                            stream the per-round trajectory sidecar as
//	                            NDJSON (404 unless the spec set trajectories)
//	DELETE /sweeps/{id}         cancel a running job (409 if already terminal);
//	                            ?purge=1 evicts a terminal job entirely (store
//	                            dir, spill files, summary state)
//	POST   /peer/leases         compute a contiguous cell range for a peer
//	                            daemon, streaming canonical result lines back
//	                            (lease records carrying per-round stats for
//	                            trajectory specs — the follower half of the
//	                            sharding protocol)
//	POST   /peer/hello          a booting daemon announces its advertise URL
//	                            and is registered as an alive member
//	GET    /peer/members        this daemon's member table (self first), the
//	                            relay half of one-hop gossip; carries job
//	                            leases and tombstones when scheduling is on
//	POST   /peer/jobs           submit a Spec for local execution, bypassing
//	                            the scheduler (the receiving half of a
//	                            cluster forward)
//	POST   /peer/jobs/claim     an adopter announces its new job lease so
//	                            peers converge before the next gossip cycle
//	POST   /peer/replicas/{id}  receive one finished job's immutable
//	                            artifacts (manifest line + checkpoint +
//	                            sidecar), verified against the job's
//	                            content address and kernel hash and
//	                            generation-guarded against zombie leaders
//	GET    /healthz             liveness + job/cache counters
//	GET    /metrics             Prometheus text-format counters
//
// When replica storage is enabled, the GET /sweeps/{id}... reads also
// serve terminal jobs this daemon holds a replica of; a job held
// neither way answers one 307 hop toward a member the replica or lease
// table says has it.
func NewHandler(m *Manager) http.Handler {
	return NewHandlerConfig(m, Config{})
}

// NewHandlerConfig builds the API with explicit serving knobs (rate
// limits, follow-mode intervals); see Config.
func NewHandlerConfig(m *Manager, cfg Config) http.Handler {
	_, mux := buildHandler(m, cfg)
	return mux
}

func newHandler(m *Manager, poll, heartbeat time.Duration) http.Handler {
	return NewHandlerConfig(m, Config{PollInterval: poll, HeartbeatInterval: heartbeat})
}

// buildHandler wires the handler, its routes, and the rate-limiting
// middleware; tests use the *handler to reach internal state.
func buildHandler(m *Manager, cfg Config) (*handler, http.Handler) {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 150 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 15 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	h := &handler{
		m:                 m,
		pollInterval:      cfg.PollInterval,
		heartbeatInterval: cfg.HeartbeatInterval,
		readBucket:        newTokenBucket(cfg.ReadRate, cfg.now),
		mutateBucket:      newTokenBucket(cfg.MutateRate, cfg.now),
		peerBucket:        newTokenBucket(cfg.PeerRate, cfg.now),
		replicaBucket:     newTokenBucket(cfg.ReplicaRate, cfg.now),
		peerStats:         cfg.PeerStats,
		cluster:           cfg.Cluster,
		sched:             cfg.Sched,
		schedStats:        cfg.SchedStats,
		replicaStats:      cfg.ReplicaStats,
		summaries:         make(map[string]*summaryState),
	}
	// Job GC must release the per-job summary state too, or the daemon
	// leaks one summaryState per job forever.
	m.OnEvict(func(id string) {
		h.mu.Lock()
		delete(h.summaries, id)
		h.mu.Unlock()
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("POST /sweeps", h.submit)
	mux.HandleFunc("GET /sweeps", h.list)
	mux.HandleFunc("GET /sweeps/{id}", h.get)
	mux.HandleFunc("GET /sweeps/{id}/results", h.results)
	mux.HandleFunc("GET /sweeps/{id}/summary", h.summary)
	mux.HandleFunc("GET /sweeps/{id}/trajectories", h.trajectories)
	mux.HandleFunc("DELETE /sweeps/{id}", h.cancel)
	mux.HandleFunc("POST /peer/leases", h.peerLease)
	mux.HandleFunc("POST /peer/hello", h.peerHello)
	mux.HandleFunc("GET /peer/members", h.peerMembers)
	mux.HandleFunc("POST /peer/jobs", h.peerSubmit)
	mux.HandleFunc("POST /peer/jobs/claim", h.peerClaim)
	mux.HandleFunc("POST /peer/replicas/{id}", h.receiveReplica)
	return h, h.rateLimit(mux)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	// Stats walks the job table without copying or sorting it — a
	// liveness probe must not pay O(n log n) per poll over thousands of
	// retained jobs the way List() does.
	ms := h.m.Stats()
	total := 0
	for _, n := range ms.Jobs {
		total += n
	}
	payload := map[string]any{
		"status":         "ok",
		"jobs":           total,
		"jobs_by_status": ms.Jobs,
		"cache":          h.m.CacheStats(),
		// The capacity advertisement: peers cache this per-member from
		// their probe replies and place submissions on the least loaded.
		"load": h.m.Load(),
	}
	if h.peerStats != nil {
		payload["peers"] = h.peerStats()
	}
	if h.cluster != nil {
		payload["cluster"] = h.cluster.ClusterStats()
	}
	if h.schedStats != nil {
		payload["sched"] = h.schedStats()
	}
	if rs := h.m.Replicas(); rs != nil {
		rep := map[string]any{
			"received":       h.replicasReceived.Load(),
			"bytes_received": h.replicaBytesReceived.Load(),
			"reads_served":   h.replicaReads.Load(),
			"redirects":      h.replicaRedirects.Load(),
		}
		if ids, err := rs.List(); err == nil {
			rep["held"] = len(ids)
		}
		if h.replicaStats != nil {
			rep["push"] = h.replicaStats()
		}
		payload["replicas"] = rep
	}
	writeJSON(w, http.StatusOK, payload)
}

// peerHello serves POST /peer/hello: a booting daemon announces its
// advertise URL and is registered as an alive member at once (it just
// proved it can reach us; the probe loop keeps it honest from here).
// The response carries the member table, so a hello doubles as the
// joiner's first gossip pull.
func (h *handler) peerHello(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil {
		writeError(w, http.StatusServiceUnavailable, "cluster membership not enabled on this daemon")
		return
	}
	var req HelloRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 64*1024))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad hello JSON: "+err.Error())
		return
	}
	adv := NormalizePeerURL(req.AdvertiseURL)
	if !ValidPeerURL(adv) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("advertise_url %q is not an absolute http(s) base URL", req.AdvertiseURL))
		return
	}
	h.cluster.Hello(adv)
	writeJSON(w, http.StatusOK, h.gossipPayload())
}

// gossipPayload builds the hello/members reply: the member table, plus
// job leases and tombstones when the registry keeps them (it does when
// scheduling is enabled) — the vehicle that spreads leadership state
// and decommissions cluster-wide.
func (h *handler) gossipPayload() MembersResponse {
	mr := MembersResponse{Members: h.cluster.Members()}
	if lt, ok := h.cluster.(LeaseTable); ok {
		mr.Leases = lt.Leases()
		mr.Tombstones = lt.Tombstones()
	}
	// Only this daemon's OWN replica ad rides along (receivers reject
	// hearsay), spreading replica placement one authoritative hop per
	// probe cycle, same as capacity.
	if rs := h.m.Replicas(); rs != nil {
		if s, ok := h.cluster.(interface{ Self() string }); ok {
			if self := s.Self(); self != "" {
				if ids, err := rs.List(); err == nil && len(ids) > 0 {
					mr.Replicas = []ReplicaAd{{URL: self, JobIDs: ids}}
				}
			}
		}
	}
	return mr
}

// peerMembers serves GET /peer/members: the member table, self first —
// the relay half of one-hop gossip (peers poll it each probe cycle).
func (h *handler) peerMembers(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil {
		writeError(w, http.StatusServiceUnavailable, "cluster membership not enabled on this daemon")
		return
	}
	writeJSON(w, http.StatusOK, h.gossipPayload())
}

// decodeSpec reads exactly one Spec JSON value from the request body,
// answering 400 itself on malformed input.
func decodeSpec(w http.ResponseWriter, r *http.Request) (Spec, bool) {
	var sp Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec JSON: "+err.Error())
		return Spec{}, false
	}
	// Exactly one JSON value: a body like {"n":10}{"garbage":true} must
	// not be silently accepted on the strength of its first value.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "trailing data after spec JSON")
		return Spec{}, false
	}
	return sp, true
}

// writeSubmitResult maps a submission outcome onto the wire: 429 for
// the -max-jobs quota, 500 for store failures (the server's disk, not
// the client's request), 400 for bad specs, 202 created / 200 existing.
func (h *handler) writeSubmitResult(w http.ResponseWriter, job Job, created bool, err error) {
	switch {
	case errors.Is(err, ErrJobQuota):
		h.quotaRejections.Add(1)
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrStore):
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, job)
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	sp, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	if h.sched == nil {
		job, created, err := h.m.Submit(sp)
		h.writeSubmitResult(w, job, created, err)
		return
	}
	placed, err := h.sched.SubmitSweep(r.Context(), sp)
	var redir *RedirectError
	if errors.As(err, &redir) {
		// Placement chose a peer but neither the forward nor local
		// admission could land the job; hand the client the peer's
		// submit endpoint to retry directly.
		w.Header().Set("Location", redir.URL+"/sweeps")
		writeError(w, http.StatusTemporaryRedirect,
			"sweep could not be placed here; resubmit to "+redir.URL)
		return
	}
	if err == nil && placed.PlacedOn != "" {
		// The job runs on a peer: point clients at the authoritative
		// copy and expose the placement decision for tooling.
		w.Header().Set("X-Sweep-Placement", placed.PlacedOn)
		w.Header().Set("Location", placed.PlacedOn+"/sweeps/"+placed.Job.ID)
	}
	h.writeSubmitResult(w, placed.Job, placed.Created, err)
}

// peerSubmit serves POST /peer/jobs: the receiving half of a scheduler
// forward. It always admits locally — never re-forwards — so a spec
// cannot ping-pong between two members whose load views disagree.
func (h *handler) peerSubmit(w http.ResponseWriter, r *http.Request) {
	sp, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	job, created, err := h.m.Submit(sp)
	h.writeSubmitResult(w, job, created, err)
}

// peerClaim serves POST /peer/jobs/claim: an adopter pushes its new
// lease so this member learns the leadership change (and a zombie
// ex-leader cedes) before the next gossip cycle. The generation guard
// in the lease table decides acceptance.
func (h *handler) peerClaim(w http.ResponseWriter, r *http.Request) {
	lt, ok := h.cluster.(LeaseTable)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "cluster scheduling not enabled on this daemon")
		return
	}
	var lease JobLease
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lease); err != nil {
		writeError(w, http.StatusBadRequest, "bad lease JSON: "+err.Error())
		return
	}
	if lease.JobID == "" || lease.Owner == "" || lease.Generation == 0 {
		writeError(w, http.StatusBadRequest, "lease needs job_id, owner, and a nonzero generation")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": lt.UpdateLease(lease)})
}

// receiveReplica serves POST /peer/replicas/{id}: a leader pushing one
// finished job's immutable artifacts. The body is one ReplicaManifest
// line, then the full canonical checkpoint, then (for trajectory specs)
// the full sidecar. Nothing lands unverified: the spec must hash to the
// job ID and the manifest kernel, and every line must be the canonical
// record of its grid position — so a stored replica is exactly as
// trustworthy as a locally computed checkpoint. The manifest generation
// is the zombie guard: a push from a deposed leader (lower generation
// than the stored copy's) answers 409 and changes nothing.
func (h *handler) receiveReplica(w http.ResponseWriter, r *http.Request) {
	rs := h.m.Replicas()
	if rs == nil {
		writeError(w, http.StatusServiceUnavailable, "replica storage not enabled on this daemon")
		return
	}
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading replica body: "+err.Error())
		return
	}
	if len(body) > maxReplicaBody {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("replica body exceeds %d bytes", maxReplicaBody))
		return
	}
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		writeError(w, http.StatusBadRequest, "replica body has no manifest line")
		return
	}
	var m store.ReplicaManifest
	if err := json.Unmarshal(body[:nl], &m); err != nil {
		writeError(w, http.StatusBadRequest, "bad replica manifest: "+err.Error())
		return
	}
	checkpoint, trajectory, ok := splitReplicaBody(body[nl+1:], m.CheckpointLines)
	if !ok {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("replica body has fewer than the %d checkpoint lines the manifest frames", m.CheckpointLines))
		return
	}
	if _, err := VerifyReplica(id, m, checkpoint, trajectory); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if cur, err := rs.Manifest(id); err == nil {
		if cur.Generation > m.Generation {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": fmt.Sprintf("replica of job %s already stored at generation %d; push was generation %d",
					id, cur.Generation, m.Generation),
			})
			return
		}
		if cur.Generation == m.Generation {
			// Same generation ⇒ same leader ⇒ same immutable bytes
			// (determinism); re-pushes are idempotent.
			writeJSON(w, http.StatusOK, map[string]any{"stored": false, "held": true})
			return
		}
	}
	m.StoredAt = time.Now()
	if err := rs.Put(m, checkpoint, trajectory); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	h.replicasReceived.Add(1)
	h.replicaBytesReceived.Add(uint64(len(body)))
	writeJSON(w, http.StatusOK, map[string]any{"stored": true, "held": true})
}

// splitReplicaBody cuts a replica body (after the manifest line) at the
// end of its ckLines-th non-blank line: checkpoint bytes, then sidecar
// bytes. ok=false when fewer complete lines exist.
func splitReplicaBody(data []byte, ckLines int) (checkpoint, trajectory []byte, ok bool) {
	if ckLines < 0 {
		return nil, nil, false
	}
	off, seen := 0, 0
	for seen < ckLines {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return nil, nil, false
		}
		if len(bytes.TrimSpace(data[off:off+nl])) > 0 {
			seen++
		}
		off += nl + 1
	}
	return data[:off], data[off:], true
}

// replicaJob reconstructs a Job snapshot from a locally held replica of
// a finished job this manager never ran: the read-fan-out view. The
// snapshot is marked Replica so clients can tell it from the leader's.
func (h *handler) replicaJob(id string) (Job, bool) {
	rs := h.m.Replicas()
	if rs == nil {
		return Job{}, false
	}
	m, err := rs.Manifest(id)
	if err != nil || m.JobID != id {
		return Job{}, false
	}
	var sp Spec
	if err := json.Unmarshal(m.Spec, &sp); err != nil {
		return Job{}, false
	}
	sp.Normalize()
	total := sp.NumCells()
	return Job{
		ID:        id,
		Spec:      sp,
		Status:    StatusDone,
		Total:     total,
		Completed: total,
		Created:   m.Created,
		Finished:  m.Finished,
		Replica:   true,
	}, true
}

// redirectRead answers a read for a job this daemon holds neither a
// primary nor a replica of: one 307 hop to an alive member the replica
// table (or, failing that, the lease table) says has it. The forwarded
// URL carries hop=1 so a stale table cannot bounce a client around the
// mesh — the second daemon either serves or 404s. Returns false when
// there is nowhere to point (caller 404s).
func (h *handler) redirectRead(w http.ResponseWriter, r *http.Request, id string) bool {
	if h.cluster == nil || r.URL.Query().Get("hop") != "" {
		return false
	}
	self := ""
	if s, ok := h.cluster.(interface{ Self() string }); ok {
		self = s.Self()
	}
	target := ""
	if rt, ok := h.cluster.(ReplicaTable); ok {
		if holders := rt.ReplicaHolders(id); len(holders) > 0 {
			target = holders[0]
		}
	}
	if target == "" {
		if lt, ok := h.cluster.(LeaseTable); ok {
			for _, l := range lt.Leases() {
				if l.JobID == id && l.Owner != self {
					target = l.Owner
					break
				}
			}
		}
	}
	if target == "" || target == self {
		return false
	}
	h.replicaRedirects.Add(1)
	q := r.URL.Query()
	q.Set("hop", "1")
	w.Header().Set("Location", target+r.URL.Path+"?"+q.Encode())
	writeError(w, http.StatusTemporaryRedirect,
		"sweep not held here; retry against "+target)
	return true
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": h.m.List()})
}

func (h *handler) get(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := h.m.Get(id)
	if !ok {
		if job, ok = h.replicaJob(id); !ok {
			if h.redirectRead(w, r, id) {
				return
			}
			writeError(w, http.StatusNotFound, "no such sweep")
			return
		}
	}
	writeJSON(w, http.StatusOK, job)
}

func (h *handler) results(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := h.m.Get(id)
	if !ok {
		// Read fan-out: a replica of the finished job serves the exact
		// bytes the leader would (verified on receipt, immutable since).
		// No local copy at all → one redirect hop toward a holder.
		if rjob, rok := h.replicaJob(id); rok {
			h.replicaReads.Add(1)
			h.serveLinePrefix(w, r, id, h.m.Replicas().ResultsPath(id), rjob)
			return
		}
		if h.redirectRead(w, r, id) {
			return
		}
		writeError(w, http.StatusNotFound, "no such sweep")
		return
	}
	if v := r.URL.Query().Get("follow"); v != "" {
		if follow, err := strconv.ParseBool(v); err == nil && follow {
			h.followResults(w, r, id)
			return
		}
	}
	h.serveLinePrefix(w, r, id, h.m.ResultsPath(id), job)
}

// serveLinePrefix streams a checkpoint-format file's whole-line prefix
// as NDJSON with the job status header — the shared tail of /results and
// /trajectories. The status is re-snapshotted only after the file is
// open: the job can reach a terminal status between the caller's
// existence check and the open, and a terminal label must only ever be
// attached to bytes read after it became terminal (runners sync the file
// before flipping the status, so status-then-read means "done" ⇒ the
// complete data). If the job was evicted in between, the caller's first
// snapshot is kept instead of serving an empty status. Only the
// whole-line prefix is served: a crashed writer can leave a torn final
// line that no runner has repaired yet, and half a JSON record must not
// reach clients.
func (h *handler) serveLinePrefix(w http.ResponseWriter, r *http.Request, id, path string, job Job) {
	f, err := os.Open(path)
	if err == nil {
		defer f.Close()
	}
	if j, ok := h.m.Get(id); ok {
		job = j
	}
	// A done job's results are immutable (and, by per-cell determinism,
	// byte-identical wherever they were computed), so id + kernel hash +
	// status is a strong validator: conditional polls answer 304 with no
	// body, from leader and replica alike.
	if job.Status == StatusDone {
		etag := resultsETag(job)
		w.Header().Set("ETag", etag)
		if etagMatch(r.Header.Get("If-None-Match"), etag) {
			h.notModified.Add(1)
			w.Header().Set("X-Sweep-Status", string(job.Status))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	if os.IsNotExist(err) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Sweep-Status", string(job.Status))
		w.WriteHeader(http.StatusOK)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	fi, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	clamp, err := ncgio.LastCompleteOffset(f, fi.Size())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Status", string(job.Status))
	w.WriteHeader(http.StatusOK)
	io.Copy(w, io.NewSectionReader(f, 0, clamp)) //nolint:errcheck // client disconnects are routine
}

// resultsETag is the strong validator of a done job's immutable result
// bytes: content address + kernel hash + terminal status.
func resultsETag(job Job) string {
	kh := job.Spec.KernelHash()
	if len(kh) > 16 {
		kh = kh[:16]
	}
	return `"` + job.ID + "-" + kh + "-" + string(job.Status) + `"`
}

// etagMatch implements If-None-Match against one strong ETag.
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == etag || c == "*" {
			return true
		}
	}
	return false
}

// followResults tails a job's checkpoint until the job reaches a terminal
// status, streaming each newly appended whole line as it lands. The
// terminal status cannot be known when headers go out, so it travels as
// the X-Sweep-Status HTTP trailer instead.
func (h *handler) followResults(w http.ResponseWriter, r *http.Request, id string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Trailer", "X-Sweep-Status")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	var f *os.File
	var tail *ncgio.Tailer
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	lastByte := time.Now()
	for {
		// Status before drain: when this snapshot is terminal, every byte
		// the finished runner synced is already on disk, so the drain
		// below yields the complete grid — the stream can never end on a
		// terminal status with bytes missing.
		job, ok := h.m.Get(id)
		if !ok {
			return
		}
		terminal := job.Status != StatusRunning

		if f == nil {
			// The checkpoint appears shortly after admission (and never,
			// for spec-load-failed jobs); keep trying while it is merely
			// absent. Any other open error makes the stream unprovable, so
			// end it without the trailer — same contract as a tail error.
			ff, err := os.Open(h.m.ResultsPath(id))
			switch {
			case err == nil:
				f = ff
				tail = ncgio.NewTailer(f)
			case !os.IsNotExist(err):
				return
			}
		}
		wrote := false
		if tail != nil {
			for {
				sec, n, err := tail.Next()
				if err != nil {
					// The stream can no longer be proven complete; end it
					// WITHOUT the terminal trailer so clients treat it as
					// truncated rather than trusting a final status.
					return
				}
				if n == 0 {
					break
				}
				if _, err := io.Copy(w, sec); err != nil {
					return // client gone
				}
				wrote = true
			}
		}
		if wrote {
			flush()
			lastByte = time.Now()
		}
		if terminal {
			w.Header().Set("X-Sweep-Status", string(job.Status))
			return
		}
		if time.Since(lastByte) >= h.heartbeatInterval {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			flush()
			lastByte = time.Now()
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(h.pollInterval):
		}
	}
}

// trajectories streams a sweep's per-round trajectory sidecar as NDJSON
// (one ncgio.TrajectoryRecord line per cell). Jobs whose spec did not
// opt in are a 404 — the sidecar can never exist for them. Framing and
// status semantics are serveLinePrefix's, shared with /results.
func (h *handler) trajectories(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := h.m.Get(id)
	path := h.m.TrajectoryPath(id)
	if !ok {
		if rjob, rok := h.replicaJob(id); rok {
			job, path = rjob, h.m.Replicas().TrajectoryPath(id)
			h.replicaReads.Add(1)
		} else {
			if h.redirectRead(w, r, id) {
				return
			}
			writeError(w, http.StatusNotFound, "no such sweep")
			return
		}
	}
	if !job.Spec.Trajectories {
		writeError(w, http.StatusNotFound,
			`sweep did not opt into trajectories (set "trajectories": true in the spec)`)
		return
	}
	h.serveLinePrefix(w, r, id, path, job)
}

// peerLease serves POST /peer/leases, the follower half of the sharding
// protocol: validate the leader's spec and range, then stream each cell's
// canonical result line as the local pool produces it (in canonical
// order), with blank heartbeat lines while long cells compute so the
// leader's lease watchdog can tell "slow" from "dead". Trajectory specs
// stream ncgio lease records instead of bare result lines, carrying each
// cell's per-round stats alongside its canonical checkpoint bytes. A
// failure after streaming began simply ends the stream short — the leader
// counts lines and reclaims the remainder.
func (h *handler) peerLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad lease JSON: "+err.Error())
		return
	}
	sp := req.Spec
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if n := sp.NumCells(); req.Start < 0 || req.End > n || req.Start >= req.End {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("lease range [%d, %d) outside grid of %d cells", req.Start, req.End, n))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// The emitter and the heartbeat ticker share the connection; wmu also
	// guards lastByte so heartbeats only fill genuine silence. The
	// handler must not return while the ticker goroutine can still touch
	// the ResponseWriter, so it is joined (not just signaled) on the way
	// out.
	var wmu sync.Mutex
	lastByte := time.Now()
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	defer func() {
		close(stop)
		<-hbDone
	}()
	go func() {
		defer close(hbDone)
		ticker := time.NewTicker(h.heartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-r.Context().Done():
				return
			case <-ticker.C:
				wmu.Lock()
				if time.Since(lastByte) >= h.heartbeatInterval {
					if _, err := io.WriteString(w, "\n"); err == nil {
						if flusher != nil {
							flusher.Flush()
						}
						lastByte = time.Now()
					}
				}
				wmu.Unlock()
			}
		}
	}()
	emit := func(line []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		lastByte = time.Now()
		h.leaseCellsServed.Add(1)
		return nil
	}
	if err := h.m.ServeLease(r.Context(), sp, req.Start, req.End, emit); err == nil {
		h.leasesServed.Add(1)
	}
}

// GroupSummary is one (α, k) row of a sweep summary: the §5.1 aggregates
// over that group's seeds, each a mean with its 95% CI half-width.
type GroupSummary struct {
	Alpha float64 `json:"alpha"`
	K     int     `json:"k"`
	// Diameter and SocialCostRatio summarize the final networks (the
	// ratio is social cost over the social optimum — "quality" in the
	// paper's figures); Rounds summarizes dynamics length.
	Diameter        stats.Summary `json:"diameter"`
	SocialCostRatio stats.Summary `json:"social_cost_ratio"`
	Rounds          stats.Summary `json:"rounds"`
	// ConvergedRate's mean is the fraction of the group's seeds whose
	// dynamics converged (the CI is over the 0/1 indicator sample).
	ConvergedRate stats.Summary `json:"converged_rate"`
}

// SweepSummary is the /sweeps/{id}/summary payload. While the job runs,
// Cells < TotalCells and the roll-ups cover the results so far.
type SweepSummary struct {
	ID         string         `json:"id"`
	Status     JobStatus      `json:"status"`
	Cells      int            `json:"cells"`
	TotalCells int            `json:"total_cells"`
	Groups     []GroupSummary `json:"groups"`
}

func (h *handler) summary(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Status before data, same invariant as /results: a terminal label is
	// only attached to checkpoint bytes read after the status flipped, so
	// "done" summaries always cover the full grid.
	job, ok := h.m.Get(id)
	path := h.m.ResultsPath(id)
	if !ok {
		// Replica-held finished jobs summarize like any done job: the
		// roll-up runs over the replica checkpoint once, freezes, and
		// serves the frozen payload from then on.
		if rjob, rok := h.replicaJob(id); rok {
			job, path = rjob, h.m.Replicas().ResultsPath(id)
			h.replicaReads.Add(1)
		} else {
			if h.redirectRead(w, r, id) {
				return
			}
			writeError(w, http.StatusNotFound, "no such sweep")
			return
		}
	}
	h.mu.Lock()
	st := h.summaries[id]
	if st == nil {
		st = newSummaryState()
		h.summaries[id] = st
	}
	h.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.final != nil {
		writeJSON(w, http.StatusOK, *st.final)
		return
	}
	if err := st.advance(path); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sum := st.build(job)
	if job.Status == StatusDone {
		// A done job's checkpoint never grows again, so freeze the built
		// summary and release the raw samples — long-lived daemons keep
		// one small payload per finished job instead of every per-cell
		// observation. (Canceled/failed jobs can be resumed, so their
		// samples stay live.)
		st.final = &sum
		st.roll = nil
	}
	writeJSON(w, http.StatusOK, sum)
}

// summaryGroupKey groups cells by parameter pair.
type summaryGroupKey struct {
	alpha float64
	k     int
}

// summaryState incrementally accumulates one job's per-(α,k) roll-up:
// each /summary request decodes only the checkpoint bytes appended since
// the previous one, so dashboard polling costs O(new cells) — never a
// full-grid re-read with every cell's final state decoded per poll.
// Checkpoints are appended in canonical α-major order, so first-seen
// group order is canonical too.
type summaryState struct {
	mu    sync.Mutex
	off   int64 // checkpoint bytes consumed so far
	cells int
	roll  *stats.Rollup[summaryGroupKey]
	// final is the frozen summary of a done job; once set, roll is
	// released and requests serve this payload directly.
	final *SweepSummary
}

func newSummaryState() *summaryState {
	return &summaryState{
		roll: stats.NewRollup[summaryGroupKey]("diameter", "social_cost_ratio", "rounds", "converged"),
	}
}

func (st *summaryState) reset() {
	fresh := newSummaryState()
	st.off, st.cells, st.roll = fresh.off, fresh.cells, fresh.roll
}

// advance folds the checkpoint's newly appended clean records into the
// roll-up. A file that vanished or shrank below the consumed offset means
// the checkpoint was replaced (per-cell determinism guarantees any
// rewrite is prefix-identical, so only an actual shrink forces a rebuild).
func (st *summaryState) advance(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		if st.off > 0 {
			st.reset()
		}
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size < st.off {
		st.reset()
	}
	if size == st.off {
		return nil
	}
	buf := make([]byte, size-st.off)
	if _, err := io.ReadFull(io.NewSectionReader(f, st.off, size-st.off), buf); err != nil {
		return err
	}
	recs, clean := ncgio.DecodePrefix(buf)
	for _, r := range recs {
		conv := 0.0
		if r.Result.Status == dynamics.Converged {
			conv = 1
		}
		st.roll.Add(summaryGroupKey{r.Cell.Alpha, r.Cell.K},
			float64(r.Result.FinalStats.Diameter),
			r.Result.FinalStats.Quality,
			float64(r.Result.Rounds),
			conv)
	}
	st.off += int64(clean)
	st.cells += len(recs)
	return nil
}

func (st *summaryState) build(job Job) SweepSummary {
	out := SweepSummary{
		ID:         job.ID,
		Status:     job.Status,
		Cells:      st.cells,
		TotalCells: job.Total,
		Groups:     []GroupSummary{},
	}
	for _, key := range st.roll.Keys() {
		s := st.roll.Summaries(key)
		out.Groups = append(out.Groups, GroupSummary{
			Alpha:           key.alpha,
			K:               key.k,
			Diameter:        s["diameter"],
			SocialCostRatio: s["social_cost_ratio"],
			Rounds:          s["rounds"],
			ConvergedRate:   s["converged"],
		})
	}
	return out
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	ms := h.m.Stats()
	cs := h.m.CacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	cellsPerSec := 0.0
	if secs := ms.Uptime.Seconds(); secs > 0 {
		cellsPerSec = float64(ms.CellsAppended) / secs
	}
	fmt.Fprintf(w, "# HELP sweepd_cells_appended_total Checkpoint lines written since daemon start (computed or cache-served).\n")
	fmt.Fprintf(w, "# TYPE sweepd_cells_appended_total counter\n")
	fmt.Fprintf(w, "sweepd_cells_appended_total %d\n", ms.CellsAppended)
	fmt.Fprintf(w, "# HELP sweepd_cells_per_second Mean checkpoint throughput over the daemon's uptime.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cells_per_second gauge\n")
	fmt.Fprintf(w, "sweepd_cells_per_second %g\n", cellsPerSec)
	fmt.Fprintf(w, "# HELP sweepd_uptime_seconds Seconds since the daemon's manager started.\n")
	fmt.Fprintf(w, "# TYPE sweepd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "sweepd_uptime_seconds %g\n", ms.Uptime.Seconds())
	fmt.Fprintf(w, "# HELP sweepd_cache_hits_total Result-cache hits (memory and disk tiers).\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_hits_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP sweepd_cache_disk_hits_total Subset of hits promoted from the disk spill tier.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_disk_hits_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_disk_hits_total %d\n", cs.DiskHits)
	fmt.Fprintf(w, "# HELP sweepd_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_misses_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP sweepd_cache_evictions_total Memory-tier LRU evictions.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# HELP sweepd_cache_entries Entries resident in the memory tier.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_entries gauge\n")
	fmt.Fprintf(w, "sweepd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP sweepd_jobs Jobs per lifecycle status.\n")
	fmt.Fprintf(w, "# TYPE sweepd_jobs gauge\n")
	for _, st := range []JobStatus{StatusRunning, StatusDone, StatusCanceled, StatusFailed} {
		fmt.Fprintf(w, "sweepd_jobs{status=%q} %d\n", st, ms.Jobs[st])
	}
	fmt.Fprintf(w, "# HELP sweepd_jobs_evicted_total Jobs removed by TTL GC or explicit purge.\n")
	fmt.Fprintf(w, "# TYPE sweepd_jobs_evicted_total counter\n")
	fmt.Fprintf(w, "sweepd_jobs_evicted_total %d\n", ms.JobsEvicted)
	fmt.Fprintf(w, "# HELP sweepd_spill_bytes_reclaimed_total Cache spill-file bytes deleted by job eviction.\n")
	fmt.Fprintf(w, "# TYPE sweepd_spill_bytes_reclaimed_total counter\n")
	fmt.Fprintf(w, "sweepd_spill_bytes_reclaimed_total %d\n", ms.SpillBytesReclaimed)
	fmt.Fprintf(w, "# HELP sweepd_queue_depth Running jobs contending for the shared worker gate.\n")
	fmt.Fprintf(w, "# TYPE sweepd_queue_depth gauge\n")
	fmt.Fprintf(w, "sweepd_queue_depth %d\n", ms.QueueDepth)
	fmt.Fprintf(w, "# HELP sweepd_busy_workers Worker-pool tokens currently checked out.\n")
	fmt.Fprintf(w, "# TYPE sweepd_busy_workers gauge\n")
	fmt.Fprintf(w, "sweepd_busy_workers %d\n", ms.BusyWorkers)
	fmt.Fprintf(w, "# HELP sweepd_throttled_requests_total Requests shed with 429 by the rate limiter.\n")
	fmt.Fprintf(w, "# TYPE sweepd_throttled_requests_total counter\n")
	fmt.Fprintf(w, "sweepd_throttled_requests_total %d\n", h.throttled.Load())
	fmt.Fprintf(w, "# HELP sweepd_quota_rejections_total Submissions refused by the -max-jobs cap.\n")
	fmt.Fprintf(w, "# TYPE sweepd_quota_rejections_total counter\n")
	fmt.Fprintf(w, "sweepd_quota_rejections_total %d\n", h.quotaRejections.Load())
	fmt.Fprintf(w, "# HELP sweepd_cache_coalesced_total Computations avoided by in-flight (kernel, cell) dedup.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_coalesced_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_coalesced_total %d\n", cs.Coalesced)
	fmt.Fprintf(w, "# HELP sweepd_peer_leases_served_total Leases this daemon completed for remote leaders.\n")
	fmt.Fprintf(w, "# TYPE sweepd_peer_leases_served_total counter\n")
	fmt.Fprintf(w, "sweepd_peer_leases_served_total %d\n", h.leasesServed.Load())
	fmt.Fprintf(w, "# HELP sweepd_peer_cells_served_total Cell result lines streamed to remote leaders.\n")
	fmt.Fprintf(w, "# TYPE sweepd_peer_cells_served_total counter\n")
	fmt.Fprintf(w, "sweepd_peer_cells_served_total %d\n", h.leaseCellsServed.Load())
	fmt.Fprintf(w, "# HELP sweepd_remote_cells_total Cells of this daemon's jobs computed by peers.\n")
	fmt.Fprintf(w, "# TYPE sweepd_remote_cells_total counter\n")
	fmt.Fprintf(w, "sweepd_remote_cells_total %d\n", ms.RemoteCells)
	if h.peerStats != nil {
		ps := h.peerStats()
		fmt.Fprintf(w, "# HELP sweepd_peers Peer daemons configured for sharding.\n")
		fmt.Fprintf(w, "# TYPE sweepd_peers gauge\n")
		fmt.Fprintf(w, "sweepd_peers %d\n", ps.Peers)
		fmt.Fprintf(w, "# HELP sweepd_peer_leases_issued_total Lease attempts sent to peers.\n")
		fmt.Fprintf(w, "# TYPE sweepd_peer_leases_issued_total counter\n")
		fmt.Fprintf(w, "sweepd_peer_leases_issued_total %d\n", ps.LeasesIssued)
		fmt.Fprintf(w, "# HELP sweepd_peer_lease_failures_total Leases that failed and were reclaimed locally.\n")
		fmt.Fprintf(w, "# TYPE sweepd_peer_lease_failures_total counter\n")
		fmt.Fprintf(w, "sweepd_peer_lease_failures_total %d\n", ps.LeaseFailures)
	}
	if h.cluster != nil {
		cl := h.cluster.ClusterStats()
		fmt.Fprintf(w, "# HELP sweepd_cluster_members Known cluster members per health state (self excluded).\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_members gauge\n")
		for _, state := range []string{"alive", "suspect", "down"} {
			fmt.Fprintf(w, "sweepd_cluster_members{state=%q} %d\n", state, cl.MembersByState[state])
		}
		fmt.Fprintf(w, "# HELP sweepd_cluster_peer_state Per-peer membership state (1 = current state).\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_peer_state gauge\n")
		for _, m := range h.cluster.Members() {
			if m.Self {
				continue
			}
			for _, state := range []string{"alive", "suspect", "down"} {
				v := 0
				if m.State == state {
					v = 1
				}
				fmt.Fprintf(w, "sweepd_cluster_peer_state{peer=%q,state=%q} %d\n", m.URL, state, v)
			}
		}
		fmt.Fprintf(w, "# HELP sweepd_cluster_probes_total Health probes sent to peers.\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_probes_total counter\n")
		fmt.Fprintf(w, "sweepd_cluster_probes_total %d\n", cl.Probes)
		fmt.Fprintf(w, "# HELP sweepd_cluster_probe_failures_total Health probes that failed.\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_probe_failures_total counter\n")
		fmt.Fprintf(w, "sweepd_cluster_probe_failures_total %d\n", cl.ProbeFailures)
		fmt.Fprintf(w, "# HELP sweepd_cluster_backoffs_total Times a down peer's probe backoff was raised.\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_backoffs_total counter\n")
		fmt.Fprintf(w, "sweepd_cluster_backoffs_total %d\n", cl.Backoffs)
		fmt.Fprintf(w, "# HELP sweepd_cluster_readmissions_total Down peers revived by a successful probe or hello.\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_readmissions_total counter\n")
		fmt.Fprintf(w, "sweepd_cluster_readmissions_total %d\n", cl.Readmissions)
		fmt.Fprintf(w, "# HELP sweepd_cluster_tombstones Decommissioned member URLs currently barred from gossip resurrection.\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_tombstones gauge\n")
		fmt.Fprintf(w, "sweepd_cluster_tombstones %d\n", cl.Tombstones)
		fmt.Fprintf(w, "# HELP sweepd_cluster_tombstoned_total Members decommissioned after staying down past the tombstone deadline.\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_tombstoned_total counter\n")
		fmt.Fprintf(w, "sweepd_cluster_tombstoned_total %d\n", cl.Tombstoned)
		fmt.Fprintf(w, "# HELP sweepd_cluster_job_leases Job leadership leases in this member's table.\n")
		fmt.Fprintf(w, "# TYPE sweepd_cluster_job_leases gauge\n")
		fmt.Fprintf(w, "sweepd_cluster_job_leases %d\n", cl.Leases)
	}
	if h.schedStats != nil {
		ss := h.schedStats()
		fmt.Fprintf(w, "# HELP sweepd_sched_forwards_total Submissions forwarded to a less-loaded member.\n")
		fmt.Fprintf(w, "# TYPE sweepd_sched_forwards_total counter\n")
		fmt.Fprintf(w, "sweepd_sched_forwards_total %d\n", ss.Forwards)
		fmt.Fprintf(w, "# HELP sweepd_sched_forward_failures_total Forwards that failed and fell back to local admission.\n")
		fmt.Fprintf(w, "# TYPE sweepd_sched_forward_failures_total counter\n")
		fmt.Fprintf(w, "sweepd_sched_forward_failures_total %d\n", ss.ForwardFailures)
		fmt.Fprintf(w, "# HELP sweepd_sched_adoptions_total Orphaned jobs this member adopted from dead leaders.\n")
		fmt.Fprintf(w, "# TYPE sweepd_sched_adoptions_total counter\n")
		fmt.Fprintf(w, "sweepd_sched_adoptions_total %d\n", ss.Adoptions)
		fmt.Fprintf(w, "# HELP sweepd_sched_leadership_lost_total Local jobs ceded to a peer holding a newer lease generation.\n")
		fmt.Fprintf(w, "# TYPE sweepd_sched_leadership_lost_total counter\n")
		fmt.Fprintf(w, "sweepd_sched_leadership_lost_total %d\n", ss.LeadershipLost)
		fmt.Fprintf(w, "# HELP sweepd_sched_replica_seeds_total Adoptions seeded from a local replica instead of an HTTP tail-fetch.\n")
		fmt.Fprintf(w, "# TYPE sweepd_sched_replica_seeds_total counter\n")
		fmt.Fprintf(w, "sweepd_sched_replica_seeds_total %d\n", ss.ReplicaSeeds)
	}
	if h.replicaStats != nil {
		rs := h.replicaStats()
		fmt.Fprintf(w, "# HELP sweepd_replicas_pushed_total Finished-job replicas successfully pushed to peers.\n")
		fmt.Fprintf(w, "# TYPE sweepd_replicas_pushed_total counter\n")
		fmt.Fprintf(w, "sweepd_replicas_pushed_total %d\n", rs.Pushed)
		fmt.Fprintf(w, "# HELP sweepd_replica_push_failures_total Replica pushes that failed.\n")
		fmt.Fprintf(w, "# TYPE sweepd_replica_push_failures_total counter\n")
		fmt.Fprintf(w, "sweepd_replica_push_failures_total %d\n", rs.PushFailures)
		fmt.Fprintf(w, "# HELP sweepd_replica_bytes_pushed_total Body bytes of successful replica pushes.\n")
		fmt.Fprintf(w, "# TYPE sweepd_replica_bytes_pushed_total counter\n")
		fmt.Fprintf(w, "sweepd_replica_bytes_pushed_total %d\n", rs.BytesPushed)
	}
	if rset := h.m.Replicas(); rset != nil {
		held := 0
		if ids, err := rset.List(); err == nil {
			held = len(ids)
		}
		fmt.Fprintf(w, "# HELP sweepd_replicas_held Finished-job replicas currently stored for other members.\n")
		fmt.Fprintf(w, "# TYPE sweepd_replicas_held gauge\n")
		fmt.Fprintf(w, "sweepd_replicas_held %d\n", held)
		fmt.Fprintf(w, "# HELP sweepd_replicas_received_total Verified replica pushes stored on this daemon.\n")
		fmt.Fprintf(w, "# TYPE sweepd_replicas_received_total counter\n")
		fmt.Fprintf(w, "sweepd_replicas_received_total %d\n", h.replicasReceived.Load())
		fmt.Fprintf(w, "# HELP sweepd_replica_bytes_received_total Body bytes of stored replica pushes.\n")
		fmt.Fprintf(w, "# TYPE sweepd_replica_bytes_received_total counter\n")
		fmt.Fprintf(w, "sweepd_replica_bytes_received_total %d\n", h.replicaBytesReceived.Load())
		fmt.Fprintf(w, "# HELP sweepd_replica_reads_total Terminal reads served from this daemon's replica set.\n")
		fmt.Fprintf(w, "# TYPE sweepd_replica_reads_total counter\n")
		fmt.Fprintf(w, "sweepd_replica_reads_total %d\n", h.replicaReads.Load())
		fmt.Fprintf(w, "# HELP sweepd_replica_redirects_total Reads of unknown jobs answered with a one-hop redirect to a likely holder.\n")
		fmt.Fprintf(w, "# TYPE sweepd_replica_redirects_total counter\n")
		fmt.Fprintf(w, "sweepd_replica_redirects_total %d\n", h.replicaRedirects.Load())
	}
	fmt.Fprintf(w, "# HELP sweepd_not_modified_total Conditional reads answered 304 via ETag.\n")
	fmt.Fprintf(w, "# TYPE sweepd_not_modified_total counter\n")
	fmt.Fprintf(w, "sweepd_not_modified_total %d\n", h.notModified.Load())
	// Per-job cell wall-time histograms (locally computed cells only).
	// Jobs with no observations are skipped, and evicted jobs drop their
	// series, so cardinality tracks the -max-jobs retention cap.
	if lats := h.m.JobLatencies(); len(lats) > 0 {
		fmt.Fprintf(w, "# HELP sweepd_job_cell_seconds Wall time of locally computed cells, per job.\n")
		fmt.Fprintf(w, "# TYPE sweepd_job_cell_seconds histogram\n")
		for _, jl := range lats {
			cum := uint64(0)
			for i, bound := range jl.Buckets {
				cum += jl.Counts[i]
				fmt.Fprintf(w, "sweepd_job_cell_seconds_bucket{job=%q,le=%q} %d\n", jl.ID, formatBound(bound), cum)
			}
			cum += jl.Counts[len(jl.Buckets)]
			fmt.Fprintf(w, "sweepd_job_cell_seconds_bucket{job=%q,le=\"+Inf\"} %d\n", jl.ID, cum)
			fmt.Fprintf(w, "sweepd_job_cell_seconds_sum{job=%q} %g\n", jl.ID, jl.Sum)
			fmt.Fprintf(w, "sweepd_job_cell_seconds_count{job=%q} %d\n", jl.ID, jl.Count)
		}
	}
}

// formatBound renders a histogram bucket bound the way Prometheus
// expects (shortest float representation, no exponent for these scales).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if v := r.URL.Query().Get("purge"); v != "" {
		purge, err := strconv.ParseBool(v)
		if err != nil {
			// Falling through to cancel here would halt a running sweep
			// the client only meant to purge.
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad purge value %q", v))
			return
		}
		if purge {
			h.purge(w, id)
			return
		}
	}
	job, ok := h.m.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep")
		return
	}
	if job.Status != StatusRunning {
		// Nothing was canceled; saying 200 here would let clients believe
		// they stopped a job that had already finished (or failed).
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("sweep already %s", job.Status),
			"sweep": job,
		})
		return
	}
	fresh, _ := h.m.Get(id)
	writeJSON(w, http.StatusOK, fresh)
}

// purge handles DELETE /sweeps/{id}?purge=1: evict a terminal job
// entirely — store directory, spill files, summary state — instead of
// the default cancel-keeping-the-checkpoint semantics.
func (h *handler) purge(w http.ResponseWriter, id string) {
	job, ok, err := h.m.Evict(id)
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, "no such sweep")
	case errors.Is(err, ErrJobRunning):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "sweep is running (cancel it before purging) or mid-purge (retry)",
			"sweep": job,
		})
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, map[string]any{"purged": true, "sweep": job})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
