package sweepd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
	"repro/internal/stats"
)

// handler carries the serving knobs alongside the manager; tests shrink
// the intervals to drive follow mode fast.
type handler struct {
	m *Manager
	// pollInterval is how often follow mode re-checks a running job's
	// checkpoint for growth; heartbeatInterval is how long a follow
	// stream may stay silent before a blank keep-alive line goes out
	// (NDJSON consumers skip blank lines; proxies see traffic and keep
	// the connection open).
	pollInterval      time.Duration
	heartbeatInterval time.Duration

	mu        sync.Mutex
	summaries map[string]*summaryState
}

// NewHandler builds the sweepd HTTP JSON API over a manager:
//
//	POST   /sweeps              submit a Spec; idempotent (same spec ⇒ same job)
//	GET    /sweeps              list job snapshots
//	GET    /sweeps/{id}         one job snapshot
//	GET    /sweeps/{id}/results stream the checkpoint as NDJSON (results so far);
//	                            ?follow=1 tails a running job to its terminal
//	                            status (sent as the X-Sweep-Status trailer)
//	GET    /sweeps/{id}/summary per-(α,k) stats.Summarize roll-ups, server-side
//	DELETE /sweeps/{id}         cancel a running job (409 if already terminal)
//	GET    /healthz             liveness + job/cache counters
//	GET    /metrics             Prometheus text-format counters
func NewHandler(m *Manager) http.Handler {
	return newHandler(m, 150*time.Millisecond, 15*time.Second)
}

func newHandler(m *Manager, poll, heartbeat time.Duration) http.Handler {
	h := &handler{
		m:                 m,
		pollInterval:      poll,
		heartbeatInterval: heartbeat,
		summaries:         make(map[string]*summaryState),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("POST /sweeps", h.submit)
	mux.HandleFunc("GET /sweeps", h.list)
	mux.HandleFunc("GET /sweeps/{id}", h.get)
	mux.HandleFunc("GET /sweeps/{id}/results", h.results)
	mux.HandleFunc("GET /sweeps/{id}/summary", h.summary)
	mux.HandleFunc("DELETE /sweeps/{id}", h.cancel)
	return mux
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"jobs":   len(h.m.List()),
		"cache":  h.m.CacheStats(),
	})
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec JSON: "+err.Error())
		return
	}
	job, created, err := h.m.Submit(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, job)
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": h.m.List()})
}

func (h *handler) get(w http.ResponseWriter, r *http.Request) {
	job, ok := h.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep")
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (h *handler) results(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := h.m.Get(id); !ok {
		writeError(w, http.StatusNotFound, "no such sweep")
		return
	}
	if v := r.URL.Query().Get("follow"); v != "" {
		if follow, err := strconv.ParseBool(v); err == nil && follow {
			h.followResults(w, r, id)
			return
		}
	}
	f, err := os.Open(h.m.ResultsPath(id))
	// Snapshot the status only after the checkpoint is open: the job can
	// reach a terminal status between the existence check above and the
	// open, and a terminal label must only ever be attached to bytes read
	// after it became terminal (runners sync the file before flipping the
	// status, so status-then-read means "done" ⇒ the complete grid).
	job, _ := h.m.Get(id)
	if os.IsNotExist(err) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Sweep-Status", string(job.Status))
		w.WriteHeader(http.StatusOK)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Serve only the whole-line prefix: a crashed writer can leave a torn
	// final line that no runner has repaired yet (spec-load-failed jobs
	// never get one), and half a JSON record must not reach clients.
	clamp, err := ncgio.LastCompleteOffset(f, fi.Size())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Status", string(job.Status))
	w.WriteHeader(http.StatusOK)
	io.Copy(w, io.NewSectionReader(f, 0, clamp)) //nolint:errcheck // client disconnects are routine
}

// followResults tails a job's checkpoint until the job reaches a terminal
// status, streaming each newly appended whole line as it lands. The
// terminal status cannot be known when headers go out, so it travels as
// the X-Sweep-Status HTTP trailer instead.
func (h *handler) followResults(w http.ResponseWriter, r *http.Request, id string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Trailer", "X-Sweep-Status")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	var f *os.File
	var tail *ncgio.Tailer
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	lastByte := time.Now()
	for {
		// Status before drain: when this snapshot is terminal, every byte
		// the finished runner synced is already on disk, so the drain
		// below yields the complete grid — the stream can never end on a
		// terminal status with bytes missing.
		job, ok := h.m.Get(id)
		if !ok {
			return
		}
		terminal := job.Status != StatusRunning

		if f == nil {
			// The checkpoint appears shortly after admission (and never,
			// for spec-load-failed jobs); keep trying while it is merely
			// absent. Any other open error makes the stream unprovable, so
			// end it without the trailer — same contract as a tail error.
			ff, err := os.Open(h.m.ResultsPath(id))
			switch {
			case err == nil:
				f = ff
				tail = ncgio.NewTailer(f)
			case !os.IsNotExist(err):
				return
			}
		}
		wrote := false
		if tail != nil {
			for {
				sec, n, err := tail.Next()
				if err != nil {
					// The stream can no longer be proven complete; end it
					// WITHOUT the terminal trailer so clients treat it as
					// truncated rather than trusting a final status.
					return
				}
				if n == 0 {
					break
				}
				if _, err := io.Copy(w, sec); err != nil {
					return // client gone
				}
				wrote = true
			}
		}
		if wrote {
			flush()
			lastByte = time.Now()
		}
		if terminal {
			w.Header().Set("X-Sweep-Status", string(job.Status))
			return
		}
		if time.Since(lastByte) >= h.heartbeatInterval {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			flush()
			lastByte = time.Now()
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(h.pollInterval):
		}
	}
}

// GroupSummary is one (α, k) row of a sweep summary: the §5.1 aggregates
// over that group's seeds, each a mean with its 95% CI half-width.
type GroupSummary struct {
	Alpha float64 `json:"alpha"`
	K     int     `json:"k"`
	// Diameter and SocialCostRatio summarize the final networks (the
	// ratio is social cost over the social optimum — "quality" in the
	// paper's figures); Rounds summarizes dynamics length.
	Diameter        stats.Summary `json:"diameter"`
	SocialCostRatio stats.Summary `json:"social_cost_ratio"`
	Rounds          stats.Summary `json:"rounds"`
	// ConvergedRate's mean is the fraction of the group's seeds whose
	// dynamics converged (the CI is over the 0/1 indicator sample).
	ConvergedRate stats.Summary `json:"converged_rate"`
}

// SweepSummary is the /sweeps/{id}/summary payload. While the job runs,
// Cells < TotalCells and the roll-ups cover the results so far.
type SweepSummary struct {
	ID         string         `json:"id"`
	Status     JobStatus      `json:"status"`
	Cells      int            `json:"cells"`
	TotalCells int            `json:"total_cells"`
	Groups     []GroupSummary `json:"groups"`
}

func (h *handler) summary(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Status before data, same invariant as /results: a terminal label is
	// only attached to checkpoint bytes read after the status flipped, so
	// "done" summaries always cover the full grid.
	job, ok := h.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep")
		return
	}
	h.mu.Lock()
	st := h.summaries[id]
	if st == nil {
		st = newSummaryState()
		h.summaries[id] = st
	}
	h.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.final != nil {
		writeJSON(w, http.StatusOK, *st.final)
		return
	}
	if err := st.advance(h.m.ResultsPath(id)); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sum := st.build(job)
	if job.Status == StatusDone {
		// A done job's checkpoint never grows again, so freeze the built
		// summary and release the raw samples — long-lived daemons keep
		// one small payload per finished job instead of every per-cell
		// observation. (Canceled/failed jobs can be resumed, so their
		// samples stay live.)
		st.final = &sum
		st.roll = nil
	}
	writeJSON(w, http.StatusOK, sum)
}

// summaryGroupKey groups cells by parameter pair.
type summaryGroupKey struct {
	alpha float64
	k     int
}

// summaryState incrementally accumulates one job's per-(α,k) roll-up:
// each /summary request decodes only the checkpoint bytes appended since
// the previous one, so dashboard polling costs O(new cells) — never a
// full-grid re-read with every cell's final state decoded per poll.
// Checkpoints are appended in canonical α-major order, so first-seen
// group order is canonical too.
type summaryState struct {
	mu    sync.Mutex
	off   int64 // checkpoint bytes consumed so far
	cells int
	roll  *stats.Rollup[summaryGroupKey]
	// final is the frozen summary of a done job; once set, roll is
	// released and requests serve this payload directly.
	final *SweepSummary
}

func newSummaryState() *summaryState {
	return &summaryState{
		roll: stats.NewRollup[summaryGroupKey]("diameter", "social_cost_ratio", "rounds", "converged"),
	}
}

func (st *summaryState) reset() {
	fresh := newSummaryState()
	st.off, st.cells, st.roll = fresh.off, fresh.cells, fresh.roll
}

// advance folds the checkpoint's newly appended clean records into the
// roll-up. A file that vanished or shrank below the consumed offset means
// the checkpoint was replaced (per-cell determinism guarantees any
// rewrite is prefix-identical, so only an actual shrink forces a rebuild).
func (st *summaryState) advance(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		if st.off > 0 {
			st.reset()
		}
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size < st.off {
		st.reset()
	}
	if size == st.off {
		return nil
	}
	buf := make([]byte, size-st.off)
	if _, err := io.ReadFull(io.NewSectionReader(f, st.off, size-st.off), buf); err != nil {
		return err
	}
	recs, clean := ncgio.DecodePrefix(buf)
	for _, r := range recs {
		conv := 0.0
		if r.Result.Status == dynamics.Converged {
			conv = 1
		}
		st.roll.Add(summaryGroupKey{r.Cell.Alpha, r.Cell.K},
			float64(r.Result.FinalStats.Diameter),
			r.Result.FinalStats.Quality,
			float64(r.Result.Rounds),
			conv)
	}
	st.off += int64(clean)
	st.cells += len(recs)
	return nil
}

func (st *summaryState) build(job Job) SweepSummary {
	out := SweepSummary{
		ID:         job.ID,
		Status:     job.Status,
		Cells:      st.cells,
		TotalCells: job.Total,
		Groups:     []GroupSummary{},
	}
	for _, key := range st.roll.Keys() {
		s := st.roll.Summaries(key)
		out.Groups = append(out.Groups, GroupSummary{
			Alpha:           key.alpha,
			K:               key.k,
			Diameter:        s["diameter"],
			SocialCostRatio: s["social_cost_ratio"],
			Rounds:          s["rounds"],
			ConvergedRate:   s["converged"],
		})
	}
	return out
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	ms := h.m.Stats()
	cs := h.m.CacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	cellsPerSec := 0.0
	if secs := ms.Uptime.Seconds(); secs > 0 {
		cellsPerSec = float64(ms.CellsAppended) / secs
	}
	fmt.Fprintf(w, "# HELP sweepd_cells_appended_total Checkpoint lines written since daemon start (computed or cache-served).\n")
	fmt.Fprintf(w, "# TYPE sweepd_cells_appended_total counter\n")
	fmt.Fprintf(w, "sweepd_cells_appended_total %d\n", ms.CellsAppended)
	fmt.Fprintf(w, "# HELP sweepd_cells_per_second Mean checkpoint throughput over the daemon's uptime.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cells_per_second gauge\n")
	fmt.Fprintf(w, "sweepd_cells_per_second %g\n", cellsPerSec)
	fmt.Fprintf(w, "# HELP sweepd_uptime_seconds Seconds since the daemon's manager started.\n")
	fmt.Fprintf(w, "# TYPE sweepd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "sweepd_uptime_seconds %g\n", ms.Uptime.Seconds())
	fmt.Fprintf(w, "# HELP sweepd_cache_hits_total Result-cache hits (memory and disk tiers).\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_hits_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP sweepd_cache_disk_hits_total Subset of hits promoted from the disk spill tier.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_disk_hits_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_disk_hits_total %d\n", cs.DiskHits)
	fmt.Fprintf(w, "# HELP sweepd_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_misses_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP sweepd_cache_evictions_total Memory-tier LRU evictions.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "sweepd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# HELP sweepd_cache_entries Entries resident in the memory tier.\n")
	fmt.Fprintf(w, "# TYPE sweepd_cache_entries gauge\n")
	fmt.Fprintf(w, "sweepd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP sweepd_jobs Jobs per lifecycle status.\n")
	fmt.Fprintf(w, "# TYPE sweepd_jobs gauge\n")
	for _, st := range []JobStatus{StatusRunning, StatusDone, StatusCanceled, StatusFailed} {
		fmt.Fprintf(w, "sweepd_jobs{status=%q} %d\n", st, ms.Jobs[st])
	}
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := h.m.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep")
		return
	}
	if job.Status != StatusRunning {
		// Nothing was canceled; saying 200 here would let clients believe
		// they stopped a job that had already finished (or failed).
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("sweep already %s", job.Status),
			"sweep": job,
		})
		return
	}
	fresh, _ := h.m.Get(id)
	writeJSON(w, http.StatusOK, fresh)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
