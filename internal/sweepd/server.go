package sweepd

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
)

// NewHandler builds the sweepd HTTP JSON API over a manager:
//
//	POST   /sweeps              submit a Spec; idempotent (same spec ⇒ same job)
//	GET    /sweeps              list job snapshots
//	GET    /sweeps/{id}         one job snapshot
//	GET    /sweeps/{id}/results stream the checkpoint as NDJSON (results so far)
//	DELETE /sweeps/{id}         cancel a running job (checkpoint kept)
//	GET    /healthz             liveness + job/cache counters
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"jobs":   len(m.List()),
			"cache":  m.CacheStats(),
		})
	})

	mux.HandleFunc("POST /sweeps", func(w http.ResponseWriter, r *http.Request) {
		var sp Spec
		dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			writeError(w, http.StatusBadRequest, "bad spec JSON: "+err.Error())
			return
		}
		job, created, err := m.Submit(sp)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusAccepted
		}
		writeJSON(w, code, job)
	})

	mux.HandleFunc("GET /sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sweeps": m.List()})
	})

	mux.HandleFunc("GET /sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such sweep")
			return
		}
		writeJSON(w, http.StatusOK, job)
	})

	mux.HandleFunc("GET /sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		job, ok := m.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no such sweep")
			return
		}
		f, err := os.Open(m.ResultsPath(id))
		if os.IsNotExist(err) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Sweep-Status", string(job.Status))
			w.WriteHeader(http.StatusOK)
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Sweep-Status", string(job.Status))
		w.WriteHeader(http.StatusOK)
		// The checkpoint grows by whole-line writes in canonical cell
		// order, so streaming a running job yields a clean prefix of the
		// final results; clients should discard an unterminated last line.
		io.Copy(w, f) //nolint:errcheck // client disconnects are routine
	})

	mux.HandleFunc("DELETE /sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !m.Cancel(id) {
			writeError(w, http.StatusNotFound, "no such sweep")
			return
		}
		job, _ := m.Get(id)
		writeJSON(w, http.StatusOK, job)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
