package sweepd

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
)

// BenchmarkHealthz measures the liveness probe with thousands of
// retained jobs. It must stay allocation-constant per probe — the probe
// used to pay a full List() (snapshot + copy + sort of every job),
// O(n log n) with one Job copy per job, on every poll. Stats() walks
// the table without copying, so the probe's ~39 allocs/op (recorder +
// JSON encoding) are identical whether 8 or 4096 jobs are retained;
// TestHealthzAllocsConstantPerJob asserts that invariant.
func BenchmarkHealthz(b *testing.B) {
	store, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	mgr := NewManager(store, NewCache(16), 1)
	defer mgr.Close()
	registerSyntheticJobs(mgr, 4096)
	h, _ := buildHandler(mgr, Config{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.healthz(httptest.NewRecorder(), req)
	}
}

// BenchmarkCheckpointEncode measures the per-cell cost of the streaming
// checkpoint codec — the daemon pays this once per finished cell.
func BenchmarkCheckpointEncode(b *testing.B) {
	sp := Spec{N: 40, Alphas: []float64{2}, Ks: []int{1000}, Seeds: 1}
	sp.Normalize()
	res := dynamics.Sweep(sp.Cells(), sp.Config(), sp.Factory(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ncgio.MarshalCellResult(res[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointDecode measures the resume path: parsing one line
// back into a CellResult, state included.
func BenchmarkCheckpointDecode(b *testing.B) {
	sp := Spec{N: 40, Alphas: []float64{2}, Ks: []int{1000}, Seeds: 1}
	sp.Normalize()
	res := dynamics.Sweep(sp.Cells(), sp.Config(), sp.Factory(), 1)
	line, err := ncgio.MarshalCellResult(res[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ncgio.UnmarshalCellResult(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointAppendLine measures the per-record append path the
// daemon pays once per finished cell (fsync excluded; that cost is
// batched by SyncEvery). Reusing the writer's scratch buffer instead of
// allocating per record took a 661-byte line from ~1030 ns/op, 704 B/op,
// 1 allocs/op to ~880 ns/op, 0 B/op, 0 allocs/op (dev machine, isolated
// A/B with fixed iteration counts).
func BenchmarkCheckpointAppendLine(b *testing.B) {
	sp := Spec{N: 40, Alphas: []float64{2}, Ks: []int{1000}, Seeds: 1}
	sp.Normalize()
	res := dynamics.Sweep(sp.Cells(), sp.Config(), sp.Factory(), 1)
	line, err := ncgio.MarshalCellResult(res[0])
	if err != nil {
		b.Fatal(err)
	}
	w, err := ncgio.NewCheckpointWriter(filepath.Join(b.TempDir(), "ck.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	w.SyncEvery = 1 << 30
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.AppendLine(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheGetPut exercises the hot cache path under a realistic
// keyspace.
func BenchmarkCacheGetPut(b *testing.B) {
	c := NewCache(4096)
	line := []byte(`{"alpha":1,"k":2,"seed":0,"status":"converged","rounds":3,"total_moves":9}`)
	cells := dynamics.Grid([]float64{0.5, 1, 2, 5}, []int{2, 4, 8, 1000}, 64)
	kernels := make([]string, 4)
	for i := range kernels {
		kernels[i] = fmt.Sprintf("kernel-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel := kernels[i%len(kernels)]
		cell := cells[i%len(cells)]
		if _, ok := c.Get(kernel, cell); !ok {
			c.Put(kernel, cell, line)
		}
	}
}

// BenchmarkSweepEndToEnd runs a small managed job start to finish —
// store, checkpoint, and cache included — giving the daemon's per-job
// overhead over a bare dynamics.Sweep.
func BenchmarkSweepEndToEnd(b *testing.B) {
	sp := Spec{N: 16, Alphas: []float64{1}, Ks: []int{4}, Seeds: 4}
	sp.Normalize()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store, err := OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		mgr := NewManager(store, NewCache(1024), 0)
		b.StartTimer()

		job, _, err := mgr.Submit(sp)
		if err != nil {
			b.Fatal(err)
		}
		mgr.Wait()
		if j, _ := mgr.Get(job.ID); j.Status != StatusDone {
			b.Fatalf("job ended %s: %s", j.Status, j.Error)
		}
		b.StopTimer()
		mgr.Close()
		b.StartTimer()
	}
}
