package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
	"repro/internal/stats"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	return newTestServerTuned(t, 150*time.Millisecond, 15*time.Second)
}

// newTestServerTuned shrinks the follow-mode poll and heartbeat intervals
// so streaming tests run fast.
func newTestServerTuned(t *testing.T, poll, heartbeat time.Duration) (*httptest.Server, *Manager) {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(1024), 4)
	srv := httptest.NewServer(newHandler(mgr, poll, heartbeat))
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, mgr
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServerEndToEnd drives the full client flow over HTTP: submit a
// sweep, poll its status, stream the results, and check every line
// decodes and covers the full grid in canonical order.
func TestServerEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)

	spec := `{"n": 12, "alphas": [0.5, 2], "ks": [2, 1000], "seeds": 2}`
	resp, err := http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps = %d, want 202", resp.StatusCode)
	}
	if job.ID == "" || job.Total != 8 {
		t.Fatalf("job = %+v", job)
	}

	// Resubmitting the same spec is idempotent: 200, same job.
	resp, err = http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var again Job
	json.NewDecoder(resp.Body).Decode(&again) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.ID != job.ID {
		t.Fatalf("resubmit = %d, job %s (want 200, %s)", resp.StatusCode, again.ID, job.ID)
	}

	// Poll until done.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur Job
		if code := getJSON(t, srv.URL+"/sweeps/"+job.ID, &cur); code != http.StatusOK {
			t.Fatalf("GET /sweeps/{id} = %d", code)
		}
		if cur.Status == StatusDone {
			break
		}
		if cur.Status == StatusFailed {
			t.Fatalf("job failed: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Stream the results and decode every NDJSON line.
	res, err := http.Get(srv.URL + "/sweeps/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET results = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	if st := res.Header.Get("X-Sweep-Status"); st != string(StatusDone) {
		t.Fatalf("X-Sweep-Status = %q", st)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	var lines int
	for sc.Scan() {
		if _, err := ncgio.UnmarshalCellResult(sc.Bytes()); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != job.Total {
		t.Fatalf("streamed %d results, want %d", lines, job.Total)
	}

	// List includes the job.
	var list struct {
		Sweeps []Job `json:"sweeps"`
	}
	if code := getJSON(t, srv.URL+"/sweeps", &list); code != http.StatusOK {
		t.Fatalf("GET /sweeps = %d", code)
	}
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != job.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestServerRejectsBadSpecs(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, body := range []string{
		`not json`,
		`{"n": 1, "alphas": [1], "ks": [2], "seeds": 1}`,          // n too small
		`{"n": 10, "alphas": [], "ks": [2], "seeds": 1}`,          // empty grid
		`{"n": 10, "alphas": [1], "ks": [2], "seeds": 1, "x": 1}`, // unknown field
		`{"n": 10, "alphas": [1], "ks": [2], "seeds": 1, "variant": "min"}`,
	} {
		resp, err := http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestServerUnknownJob(t *testing.T) {
	srv, _ := newTestServer(t)
	if code := getJSON(t, srv.URL+"/sweeps/deadbeefdeadbeef", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/sweeps/deadbeefdeadbeef/results", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown results = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/sweeps/deadbeefdeadbeef/summary", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown summary = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/deadbeefdeadbeef", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown = %d, want 404", resp.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	var health struct {
		Status string     `json:"status"`
		Jobs   int        `json:"jobs"`
		Cache  CacheStats `json:"cache"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", code)
	}
	if health.Status != "ok" {
		t.Fatalf("health = %+v", health)
	}
}

func TestServerStreamsPartialResults(t *testing.T) {
	srv, mgr := newTestServer(t)
	job, _, err := mgr.Submit(bigSpec())
	if err != nil {
		t.Fatal(err)
	}
	// While running, the endpoint serves the results so far: every
	// newline-terminated line must decode cleanly.
	res, err := http.Get(srv.URL + "/sweeps/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if i := bytes.LastIndexByte(body, '\n'); i >= 0 {
		sc := bufio.NewScanner(bytes.NewReader(body[:i+1]))
		for sc.Scan() {
			if _, err := ncgio.UnmarshalCellResult(sc.Bytes()); err != nil {
				t.Fatalf("partial stream line does not decode: %v", err)
			}
		}
	}
	// The clamp satellite: even mid-run, the served body must end on a
	// newline — never half a record.
	if len(body) > 0 && body[len(body)-1] != '\n' {
		t.Fatalf("served stream not clamped to whole lines: ends %q", body[len(body)-20:])
	}
	waitStatus(t, mgr, job.ID, StatusDone)
}

// decodeStream splits an NDJSON body into cell results, skipping blank
// (heartbeat) lines.
func decodeStream(t *testing.T, body []byte) []dynamics.CellResult {
	t.Helper()
	var out []dynamics.CellResult
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		r, err := ncgio.UnmarshalCellResult(line)
		if err != nil {
			t.Fatalf("line %d does not decode: %v", len(out), err)
		}
		out = append(out, r)
	}
	return out
}

// TestServerFollowStreamsLiveJob attaches a ?follow=1 client to a running
// job and checks it receives every cell of the canonical grid, heartbeat
// blanks while idle, a clean EOF when the job finishes, and the terminal
// status in the X-Sweep-Status trailer.
func TestServerFollowStreamsLiveJob(t *testing.T) {
	srv, mgr := newTestServerTuned(t, 5*time.Millisecond, time.Millisecond)
	sp := bigSpec()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}

	res, err := http.Get(srv.URL + "/sweeps/" + job.ID + "/results?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET ?follow=1 = %d", res.StatusCode)
	}
	body, err := io.ReadAll(res.Body) // blocks until the job is terminal
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Trailer.Get("X-Sweep-Status"); st != string(StatusDone) {
		t.Fatalf("trailer X-Sweep-Status = %q, want done", st)
	}
	results := decodeStream(t, body)
	want := sp.Cells()
	if len(results) != len(want) {
		t.Fatalf("followed %d cells, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Cell != want[i] {
			t.Fatalf("cell %d = %+v, want canonical %+v", i, r.Cell, want[i])
		}
	}
	// Following an already-done job returns the full grid and closes.
	res, err = http.Get(srv.URL + "/sweeps/" + job.ID + "/results?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeStream(t, body); len(got) != len(want) {
		t.Fatalf("follow-after-done streamed %d cells, want %d", len(got), len(want))
	}
	if st := res.Trailer.Get("X-Sweep-Status"); st != string(StatusDone) {
		t.Fatalf("follow-after-done trailer = %q", st)
	}

	// ?follow=false is a plain snapshot: status in the header, no trailer.
	res, err = http.Get(srv.URL + "/sweeps/" + job.ID + "/results?follow=false")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Header.Get("X-Sweep-Status"); st != string(StatusDone) {
		t.Fatalf("follow=false header = %q, want done", st)
	}
	if got := decodeStream(t, body); len(got) != len(want) {
		t.Fatalf("follow=false streamed %d cells, want %d", len(got), len(want))
	}
}

// TestServerFollowHeartbeatsAndTornTail drives follow mode against a
// hand-fed job, deterministically: the client must receive blank
// heartbeat lines while the checkpoint idles, never see a torn fragment,
// pick up the line once its newline lands, and get the terminal trailer
// when the status flips.
func TestServerFollowHeartbeatsAndTornTail(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	t.Cleanup(mgr.Close)

	// Register a synthetic running job whose checkpoint this test writes.
	closed := make(chan struct{})
	close(closed)
	js := &jobState{job: Job{ID: "feedjob", Status: StatusRunning, Total: 2}, cancel: func() {}, done: closed}
	mgr.mu.Lock()
	mgr.jobs["feedjob"] = js
	mgr.mu.Unlock()

	path := mgr.ResultsPath("feedjob")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cell1 := dynamics.Cell{Alpha: 1, K: 2, Seed: 0}
	cell2 := dynamics.Cell{Alpha: 1, K: 2, Seed: 1}
	f.Write(append(cacheLine(cell1), '\n')) //nolint:errcheck

	srv := httptest.NewServer(newHandler(mgr, time.Millisecond, 2*time.Millisecond))
	t.Cleanup(srv.Close)
	res, err := http.Get(srv.URL + "/sweeps/feedjob/results?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()

	bodyCh := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(res.Body)
		bodyCh <- b
	}()

	time.Sleep(30 * time.Millisecond) // idle: heartbeats must flow
	f.Write(cacheLine(cell2)[:10])    //nolint:errcheck // torn fragment
	time.Sleep(20 * time.Millisecond)
	f.Write(append(cacheLine(cell2)[10:], '\n')) //nolint:errcheck
	time.Sleep(20 * time.Millisecond)
	mgr.mu.Lock()
	js.job.Status = StatusDone
	mgr.mu.Unlock()

	body := <-bodyCh
	if st := res.Trailer.Get("X-Sweep-Status"); st != string(StatusDone) {
		t.Fatalf("trailer = %q, want done", st)
	}
	if !bytes.Contains(body, []byte("\n\n")) {
		t.Fatal("no heartbeat blank lines while the checkpoint idled")
	}
	results := decodeStream(t, body)
	if len(results) != 2 || results[0].Cell != cell1 || results[1].Cell != cell2 {
		t.Fatalf("followed cells = %+v", results)
	}
}

// TestServerSummaryMatchesClientSide is the aggregates contract: the
// server-side /summary roll-up must equal stats.Summarize computed
// client-side from the /results stream — including after mid-run polls,
// which exercise the incremental (decode-only-new-bytes) accumulation.
func TestServerSummaryMatchesClientSide(t *testing.T) {
	srv, mgr := newTestServer(t)
	sp := bigSpec()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}

	// Poll /summary while the job runs: cell counts must be monotone and
	// bounded, and a terminal status must only ever label a full grid.
	prevCells := 0
	for {
		var mid SweepSummary
		if code := getJSON(t, srv.URL+"/sweeps/"+job.ID+"/summary", &mid); code != http.StatusOK {
			t.Fatalf("GET summary mid-run = %d", code)
		}
		if mid.Cells < prevCells || mid.Cells > job.Total {
			t.Fatalf("summary cells went %d -> %d (total %d)", prevCells, mid.Cells, job.Total)
		}
		prevCells = mid.Cells
		if mid.Status != StatusRunning && mid.Cells != job.Total {
			t.Fatalf("terminal summary (%s) covers %d of %d cells", mid.Status, mid.Cells, job.Total)
		}
		if mid.Status == StatusDone {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitStatus(t, mgr, job.ID, StatusDone)

	res, err := http.Get(srv.URL + "/sweeps/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	results := decodeStream(t, body)
	if len(results) != job.Total {
		t.Fatalf("results = %d cells, want %d", len(results), job.Total)
	}

	// Client-side roll-up, straight from stats.Summarize.
	type key struct {
		alpha float64
		k     int
	}
	samples := map[key]map[string][]float64{}
	var order []key
	for _, r := range results {
		k := key{r.Cell.Alpha, r.Cell.K}
		if samples[k] == nil {
			samples[k] = map[string][]float64{}
			order = append(order, k)
		}
		conv := 0.0
		if r.Result.Status == dynamics.Converged {
			conv = 1
		}
		samples[k]["diameter"] = append(samples[k]["diameter"], float64(r.Result.FinalStats.Diameter))
		samples[k]["ratio"] = append(samples[k]["ratio"], r.Result.FinalStats.Quality)
		samples[k]["rounds"] = append(samples[k]["rounds"], float64(r.Result.Rounds))
		samples[k]["conv"] = append(samples[k]["conv"], conv)
	}

	var got SweepSummary
	if code := getJSON(t, srv.URL+"/sweeps/"+job.ID+"/summary", &got); code != http.StatusOK {
		t.Fatalf("GET summary = %d", code)
	}
	if got.ID != job.ID || got.Status != StatusDone || got.Cells != job.Total || got.TotalCells != job.Total {
		t.Fatalf("summary envelope = %+v", got)
	}
	if len(got.Groups) != len(order) {
		t.Fatalf("summary has %d groups, want %d", len(got.Groups), len(order))
	}
	for i, g := range got.Groups {
		k := order[i]
		if g.Alpha != k.alpha || g.K != k.k {
			t.Fatalf("group %d = (%g,%d), want (%g,%d)", i, g.Alpha, g.K, k.alpha, k.k)
		}
		if want := stats.Summarize(samples[k]["diameter"]); g.Diameter != want {
			t.Fatalf("group %+v diameter = %+v, want %+v", k, g.Diameter, want)
		}
		if want := stats.Summarize(samples[k]["ratio"]); g.SocialCostRatio != want {
			t.Fatalf("group %+v ratio = %+v, want %+v", k, g.SocialCostRatio, want)
		}
		if want := stats.Summarize(samples[k]["rounds"]); g.Rounds != want {
			t.Fatalf("group %+v rounds = %+v, want %+v", k, g.Rounds, want)
		}
		if want := stats.Summarize(samples[k]["conv"]); g.ConvergedRate != want {
			t.Fatalf("group %+v converged = %+v, want %+v", k, g.ConvergedRate, want)
		}
	}
}

// TestServerDeleteTerminalConflict: canceling a job that already reached
// a terminal status is a 409, not a pretend-success 200.
func TestServerDeleteTerminalConflict(t *testing.T) {
	srv, mgr := newTestServer(t)
	sp := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, job.ID, StatusDone)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var conflict struct {
		Error string `json:"error"`
		Sweep Job    `json:"sweep"`
	}
	json.NewDecoder(resp.Body).Decode(&conflict) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE done job = %d, want 409", resp.StatusCode)
	}
	if conflict.Sweep.Status != StatusDone || !strings.Contains(conflict.Error, "done") {
		t.Fatalf("conflict body = %+v", conflict)
	}

	// A genuinely running job still cancels with 200 … The job must not
	// be able to finish before the DELETE lands, so give it cells heavy
	// enough (full-knowledge best response at n = 100, hundreds of ms
	// each) that the first wave alone outlasts the request round-trip.
	heavy := Spec{N: 100, Alphas: []float64{0.3, 0.5, 1, 2, 5}, Ks: []int{1000}, Seeds: 8}
	heavy.Normalize()
	running, _, err := mgr.Submit(heavy)
	if err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job = %d, want 200", resp.StatusCode)
	}
	// … and once it lands in canceled, a second DELETE conflicts too.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := mgr.Get(running.ID)
		if j.Status == StatusCanceled || j.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", j.Status)
		}
		time.Sleep(time.Millisecond)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE = %d, want 409", resp.StatusCode)
	}
}

// TestServerResultsClampsTornTail simulates a crashed writer: a torn
// final line in the checkpoint (never repaired, because the job is
// terminal) must not reach /results clients.
func TestServerResultsClampsTornTail(t *testing.T) {
	srv, mgr := newTestServer(t)
	sp := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, job.ID, StatusDone)

	path := mgr.ResultsPath(job.ID)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"alpha":1,"k":2,"se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := http.Get(srv.URL + "/sweeps/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, orig) {
		t.Fatalf("torn tail leaked: served %d bytes, want the %d-byte clean prefix",
			len(body), len(orig))
	}
}

func TestServerMetrics(t *testing.T) {
	srv, mgr := newTestServer(t)
	sp := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, job.ID, StatusDone)

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"sweepd_cells_appended_total 2\n",
		"sweepd_cells_per_second ",
		"sweepd_cache_hits_total ",
		"sweepd_cache_disk_hits_total ",
		"sweepd_cache_misses_total ",
		"sweepd_cache_evictions_total ",
		"sweepd_cache_entries ",
		`sweepd_jobs{status="done"} 1`,
		`sweepd_jobs{status="running"} 0`,
		"sweepd_jobs_evicted_total 0\n",
		"sweepd_spill_bytes_reclaimed_total ",
		"sweepd_queue_depth 0\n",
		"sweepd_busy_workers 0\n",
		"sweepd_throttled_requests_total 0\n",
		"sweepd_quota_rejections_total 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}
