package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ncgio"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(1024), 4)
	srv := httptest.NewServer(NewHandler(mgr))
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, mgr
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServerEndToEnd drives the full client flow over HTTP: submit a
// sweep, poll its status, stream the results, and check every line
// decodes and covers the full grid in canonical order.
func TestServerEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)

	spec := `{"n": 12, "alphas": [0.5, 2], "ks": [2, 1000], "seeds": 2}`
	resp, err := http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps = %d, want 202", resp.StatusCode)
	}
	if job.ID == "" || job.Total != 8 {
		t.Fatalf("job = %+v", job)
	}

	// Resubmitting the same spec is idempotent: 200, same job.
	resp, err = http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var again Job
	json.NewDecoder(resp.Body).Decode(&again) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.ID != job.ID {
		t.Fatalf("resubmit = %d, job %s (want 200, %s)", resp.StatusCode, again.ID, job.ID)
	}

	// Poll until done.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur Job
		if code := getJSON(t, srv.URL+"/sweeps/"+job.ID, &cur); code != http.StatusOK {
			t.Fatalf("GET /sweeps/{id} = %d", code)
		}
		if cur.Status == StatusDone {
			break
		}
		if cur.Status == StatusFailed {
			t.Fatalf("job failed: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Stream the results and decode every NDJSON line.
	res, err := http.Get(srv.URL + "/sweeps/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET results = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	if st := res.Header.Get("X-Sweep-Status"); st != string(StatusDone) {
		t.Fatalf("X-Sweep-Status = %q", st)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	var lines int
	for sc.Scan() {
		if _, err := ncgio.UnmarshalCellResult(sc.Bytes()); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != job.Total {
		t.Fatalf("streamed %d results, want %d", lines, job.Total)
	}

	// List includes the job.
	var list struct {
		Sweeps []Job `json:"sweeps"`
	}
	if code := getJSON(t, srv.URL+"/sweeps", &list); code != http.StatusOK {
		t.Fatalf("GET /sweeps = %d", code)
	}
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != job.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestServerRejectsBadSpecs(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, body := range []string{
		`not json`,
		`{"n": 1, "alphas": [1], "ks": [2], "seeds": 1}`,           // n too small
		`{"n": 10, "alphas": [], "ks": [2], "seeds": 1}`,           // empty grid
		`{"n": 10, "alphas": [1], "ks": [2], "seeds": 1, "x": 1}`,  // unknown field
		`{"n": 10, "alphas": [1], "ks": [2], "seeds": 1, "variant": "min"}`,
	} {
		resp, err := http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestServerUnknownJob(t *testing.T) {
	srv, _ := newTestServer(t)
	if code := getJSON(t, srv.URL+"/sweeps/deadbeefdeadbeef", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/sweeps/deadbeefdeadbeef/results", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown results = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/deadbeefdeadbeef", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown = %d, want 404", resp.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	var health struct {
		Status string     `json:"status"`
		Jobs   int        `json:"jobs"`
		Cache  CacheStats `json:"cache"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", code)
	}
	if health.Status != "ok" {
		t.Fatalf("health = %+v", health)
	}
}

func TestServerStreamsPartialResults(t *testing.T) {
	srv, mgr := newTestServer(t)
	job, _, err := mgr.Submit(bigSpec())
	if err != nil {
		t.Fatal(err)
	}
	// While running, the endpoint serves the results so far: every
	// newline-terminated line must decode cleanly.
	res, err := http.Get(srv.URL + "/sweeps/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if i := bytes.LastIndexByte(body, '\n'); i >= 0 {
		sc := bufio.NewScanner(bytes.NewReader(body[:i+1]))
		for sc.Scan() {
			if _, err := ncgio.UnmarshalCellResult(sc.Bytes()); err != nil {
				t.Fatalf("partial stream line does not decode: %v", err)
			}
		}
	}
	waitStatus(t, mgr, job.ID, StatusDone)
}
