package sweepd

import "sort"

// latencyBuckets are the fixed per-cell wall-time histogram bounds in
// seconds, log-spaced from sub-millisecond cells (tiny n, cache-adjacent)
// to the minute-scale cells of paper-size grids. Fixed buckets keep the
// accounting allocation-free on the hot path and make every job's series
// directly comparable in Prometheus.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// latencyHist is a fixed-bucket histogram of per-cell wall times for one
// job. Callers synchronize externally (Manager.mu); cells take
// milliseconds at minimum, so the shared lock is never the bottleneck.
type latencyHist struct {
	// counts[i] is the number of observations ≤ latencyBuckets[i];
	// counts[len(latencyBuckets)] is the +Inf overflow bucket. Raw (not
	// cumulative) — the metrics renderer accumulates. Allocated on the
	// first observation.
	counts []uint64
	sum    float64
	n      uint64
}

func (h *latencyHist) observe(seconds float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBuckets)+1)
	}
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// JobLatency is one job's cell wall-time histogram snapshot, shaped for
// Prometheus text rendering: Buckets are the upper bounds (excluding
// +Inf), Counts the matching raw per-bucket counts plus the overflow
// bucket appended last.
type JobLatency struct {
	ID      string
	Buckets []float64
	Counts  []uint64
	Sum     float64
	Count   uint64
}
