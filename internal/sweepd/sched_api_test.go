package sweepd

// Tests for the scheduler-facing HTTP surface: RetryAfter parsing
// (shared by the shard backend and the scheduler's forwarding path),
// the /peer/jobs and /peer/jobs/claim endpoints, the lease/tombstone
// gossip payload, and POST /sweeps routed through a Submitter.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{Header: h}
}

// TestRetryAfterForms covers both wire forms of Retry-After plus the
// clamps: delta-seconds, HTTP-date, and absent/garbage/past values.
func TestRetryAfterForms(t *testing.T) {
	now := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	max := 30 * time.Second
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"absent defaults to 1s", "", time.Second},
		{"delta seconds", "7", 7 * time.Second},
		{"delta zero clamps up", "0", 100 * time.Millisecond},
		{"delta beyond max clamps down", "3600", max},
		{"http date", now.Add(5 * time.Second).UTC().Format(http.TimeFormat), 5 * time.Second},
		{"http date beyond max clamps down", now.Add(10 * time.Minute).UTC().Format(http.TimeFormat), max},
		{"http date in the past clamps up", now.Add(-time.Minute).UTC().Format(http.TimeFormat), 100 * time.Millisecond},
		{"surrounding space tolerated", "  9  ", 9 * time.Second},
		{"garbage defaults to 1s", "soon", time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := RetryAfter(respWithRetryAfter(tc.header), now, max); got != tc.want {
				t.Fatalf("RetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
			}
		})
	}
}

// fakeLeaseMembership is fakeMembership plus a generation-guarded
// lease table — the HTTP layer's view of a scheduling-enabled
// cluster.Registry.
type fakeLeaseMembership struct {
	fakeMembership
	lmu    sync.Mutex
	leases map[string]JobLease
	tombs  []Tombstone
}

func (f *fakeLeaseMembership) UpdateLease(l JobLease) bool {
	f.lmu.Lock()
	defer f.lmu.Unlock()
	if f.leases == nil {
		f.leases = make(map[string]JobLease)
	}
	if cur, ok := f.leases[l.JobID]; ok && l.Generation < cur.Generation {
		return false
	}
	f.leases[l.JobID] = l
	return true
}

func (f *fakeLeaseMembership) DropLease(jobID string, gen uint64) {
	f.lmu.Lock()
	defer f.lmu.Unlock()
	if cur, ok := f.leases[jobID]; ok && cur.Generation <= gen {
		delete(f.leases, jobID)
	}
}

func (f *fakeLeaseMembership) Leases() []JobLease {
	f.lmu.Lock()
	defer f.lmu.Unlock()
	out := make([]JobLease, 0, len(f.leases))
	for _, l := range f.leases {
		out = append(out, l)
	}
	return out
}

func (f *fakeLeaseMembership) Tombstones() []Tombstone {
	f.lmu.Lock()
	defer f.lmu.Unlock()
	return append([]Tombstone(nil), f.tombs...)
}

// TestPeerSubmitRunsLocally: /peer/jobs is a plain local submission —
// idempotent like POST /sweeps (202 new, 200 duplicate), 400 on bad
// specs — and must never re-forward (it exists to terminate forwards).
func TestPeerSubmitRunsLocally(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 2)
	defer mgr.Close()
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	body := `{"n":8,"alphas":[1],"ks":[2],"seeds":1}`
	r1, err := http.Post(srv.URL+"/peer/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(r1.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("first peer submit: status %d, job %+v", r1.StatusCode, job)
	}
	if _, ok := mgr.Get(job.ID); !ok {
		t.Fatal("forwarded job is not running on the receiving manager")
	}

	r2, err := http.Post(srv.URL+"/peer/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate peer submit status = %d, want 200", r2.StatusCode)
	}

	r3, err := http.Post(srv.URL+"/peer/jobs", "application/json", strings.NewReader(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid peer submit status = %d, want 400", r3.StatusCode)
	}
}

// TestPeerClaim: a claim lands in the lease table via the generation
// guard (stale generations refused), malformed claims are 400s, and a
// daemon without a lease table answers 503.
func TestPeerClaim(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()
	fm := &fakeLeaseMembership{}
	srv := httptest.NewServer(NewHandlerConfig(mgr, Config{Cluster: fm}))
	defer srv.Close()

	claim := func(body string) (int, bool) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/peer/jobs/claim", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Accepted bool `json:"accepted"`
		}
		json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck
		return resp.StatusCode, out.Accepted
	}

	sp := Spec{N: 8, Alphas: []float64{1}, Ks: []int{2}, Seeds: 1}
	sp.Normalize()
	lease := JobLease{JobID: sp.ID(), Spec: sp, Owner: "http://b:1", Generation: 2}
	lb, _ := json.Marshal(lease)
	if code, accepted := claim(string(lb)); code != http.StatusOK || !accepted {
		t.Fatalf("fresh claim: code %d accepted %v", code, accepted)
	}
	// A stale generation loses against the table.
	lease.Generation = 1
	lb, _ = json.Marshal(lease)
	if code, accepted := claim(string(lb)); code != http.StatusOK || accepted {
		t.Fatalf("stale claim: code %d accepted %v, want refused", code, accepted)
	}
	if code, _ := claim(`{"job_id":"","owner":"","generation":0}`); code != http.StatusBadRequest {
		t.Fatalf("empty claim code = %d, want 400", code)
	}
	if code, _ := claim(`{not json`); code != http.StatusBadRequest {
		t.Fatalf("garbage claim code = %d, want 400", code)
	}

	// Without a LeaseTable (plain Membership, or no cluster at all) the
	// endpoint refuses rather than silently dropping claims.
	bare := httptest.NewServer(NewHandlerConfig(mgr, Config{Cluster: &fakeMembership{}}))
	defer bare.Close()
	resp, err := http.Post(bare.URL+"/peer/jobs/claim", "application/json", strings.NewReader(string(lb)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("claim without lease table = %d, want 503", resp.StatusCode)
	}
}

// TestGossipCarriesLeasesAndTombstones: /peer/members (and hello) ship
// the lease table and tombstones when the registry keeps them — the
// vehicle that spreads leadership and decommissions cluster-wide.
func TestGossipCarriesLeasesAndTombstones(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()
	sp := Spec{N: 8, Alphas: []float64{1}, Ks: []int{2}, Seeds: 1}
	sp.Normalize()
	fm := &fakeLeaseMembership{
		tombs: []Tombstone{{URL: "http://dead:1", Until: time.Now().Add(time.Hour)}},
	}
	fm.UpdateLease(JobLease{JobID: sp.ID(), Spec: sp, Owner: "http://a:1", Generation: 1})
	srv := httptest.NewServer(NewHandlerConfig(mgr, Config{Cluster: fm}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/peer/members")
	if err != nil {
		t.Fatal(err)
	}
	var mr MembersResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr.Leases) != 1 || mr.Leases[0].JobID != sp.ID() || mr.Leases[0].Generation != 1 {
		t.Fatalf("gossip leases = %+v", mr.Leases)
	}
	if mr.Leases[0].Spec.ID() != sp.ID() {
		t.Fatal("gossiped lease spec does not round-trip")
	}
	if len(mr.Tombstones) != 1 || mr.Tombstones[0].URL != "http://dead:1" {
		t.Fatalf("gossip tombstones = %+v", mr.Tombstones)
	}
}

// fakeSubmitter scripts SubmitSweep outcomes to exercise the POST
// /sweeps HTTP mapping without a live scheduler.
type fakeSubmitter struct {
	placed PlacedJob
	err    error
	specs  []Spec
}

func (f *fakeSubmitter) SubmitSweep(_ context.Context, sp Spec) (PlacedJob, error) {
	sp.Normalize() // the real scheduler normalizes before placing
	f.specs = append(f.specs, sp)
	return f.placed, f.err
}

// TestSubmitThroughScheduler: with a Submitter configured, POST /sweeps
// reports remote placement via X-Sweep-Placement + Location, keeps
// local placement header-free, and turns RedirectError into a 307.
func TestSubmitThroughScheduler(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()
	sp := Spec{N: 8, Alphas: []float64{1}, Ks: []int{2}, Seeds: 1}
	sp.Normalize()
	body := `{"n":8,"alphas":[1],"ks":[2],"seeds":1}`

	post := func(fs *fakeSubmitter) *http.Response {
		t.Helper()
		srv := httptest.NewServer(NewHandlerConfig(mgr, Config{Sched: fs}))
		defer srv.Close()
		client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse // surface the 307 itself
		}}
		resp, err := client.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}

	remote := &fakeSubmitter{placed: PlacedJob{
		Job: Job{ID: sp.ID(), Spec: sp, Status: StatusRunning}, Created: true, PlacedOn: "http://peer:1",
	}}
	resp := post(remote)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("remote placement status = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Sweep-Placement"); got != "http://peer:1" {
		t.Fatalf("X-Sweep-Placement = %q", got)
	}
	if got := resp.Header.Get("Location"); got != "http://peer:1/sweeps/"+sp.ID() {
		t.Fatalf("Location = %q", got)
	}
	if len(remote.specs) != 1 || remote.specs[0].ID() != sp.ID() {
		t.Fatalf("scheduler saw specs %+v", remote.specs)
	}

	local := &fakeSubmitter{placed: PlacedJob{
		Job: Job{ID: sp.ID(), Spec: sp, Status: StatusRunning}, Created: false,
	}}
	resp = post(local)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local placement status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Sweep-Placement") != "" {
		t.Fatal("local placement leaked a placement header")
	}

	full := &fakeSubmitter{err: &RedirectError{URL: "http://peer:2"}}
	resp = post(full)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect status = %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != "http://peer:2/sweeps" {
		t.Fatalf("redirect Location = %q", got)
	}

	quota := &fakeSubmitter{err: ErrJobQuota}
	resp = post(quota)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota status = %d, want 429", resp.StatusCode)
	}
}

// TestHealthzAdvertisesLoad: /healthz carries the load snapshot peers
// cache for placement, and the sched section when stats are wired.
func TestHealthzAdvertisesLoad(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 3)
	defer mgr.Close()
	srv := httptest.NewServer(NewHandlerConfig(mgr, Config{
		SchedStats: func() SchedStats { return SchedStats{Adoptions: 4} },
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Load  *LoadInfo  `json:"load"`
		Sched SchedStats `json:"sched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if payload.Load == nil {
		t.Fatal("healthz has no load section")
	}
	if payload.Load.QueueDepth != 0 || payload.Load.RunningJobs != 0 {
		t.Fatalf("idle daemon advertises load %+v", payload.Load)
	}
	if payload.Sched.Adoptions != 4 {
		t.Fatalf("healthz sched = %+v", payload.Sched)
	}

	mb, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mb.Body)
	mb.Body.Close()
	if !strings.Contains(string(raw), "sweepd_sched_adoptions_total 4") {
		t.Fatalf("metrics missing sched counters:\n%s", raw)
	}
}
