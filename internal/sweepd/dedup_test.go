package sweepd

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamics"
)

// recordingExec is a fake inner executor: it "computes" each todo cell
// instantly (Rounds = index+1) and records which indices it was asked
// for.
type recordingExec struct {
	mu       sync.Mutex
	computed []int
}

func (f *recordingExec) Execute(ctx context.Context, req dynamics.ExecRequest) <-chan dynamics.IndexedResult {
	out := make(chan dynamics.IndexedResult)
	go func() {
		defer close(out)
		for _, i := range req.Todo {
			f.mu.Lock()
			f.computed = append(f.computed, i)
			f.mu.Unlock()
			select {
			case out <- dynamics.IndexedResult{Index: i, Result: dynamics.Result{Status: dynamics.Converged, Rounds: i + 1}}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func (f *recordingExec) did(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, j := range f.computed {
		if j == i {
			return true
		}
	}
	return false
}

func dedupGrid(n int) []dynamics.Cell {
	return dynamics.Grid([]float64{1}, []int{2}, n)
}

func collect(t *testing.T, ch <-chan dynamics.IndexedResult) map[int]dynamics.Result {
	t.Helper()
	got := map[int]dynamics.Result{}
	for ir := range ch {
		if _, dup := got[ir.Index]; dup {
			t.Fatalf("index %d delivered twice", ir.Index)
		}
		got[ir.Index] = ir.Result
	}
	return got
}

// TestDedupJoinsInFlight: a cell another sweep is already computing must
// be joined, not recomputed — the joiner receives the leader's result
// the moment the flight lands.
func TestDedupJoinsInFlight(t *testing.T) {
	cells := dedupGrid(4)
	cache := NewCache(64)
	key := cacheKey{Kernel: "k", Cell: cells[2]}
	fl, leader := cache.lead(key)
	if !leader {
		t.Fatal("test setup: could not lead the flight")
	}

	inner := &recordingExec{}
	d := &dedupExecutor{cache: cache, kernel: "k", inner: inner}
	ch := d.Execute(context.Background(), dynamics.ExecRequest{Cells: cells, Todo: []int{0, 1, 2, 3}})

	// Land the "other sweep's" computation with a recognizable result.
	go func() {
		time.Sleep(10 * time.Millisecond)
		cache.land(key, fl, dynamics.Result{Status: dynamics.Cycled, Rounds: 777}, true)
	}()

	got := collect(t, ch)
	if len(got) != 4 {
		t.Fatalf("delivered %d results, want 4", len(got))
	}
	if got[2].Rounds != 777 || got[2].Status != dynamics.Cycled {
		t.Fatalf("joined cell result = %+v, want the landed flight's", got[2])
	}
	if inner.did(2) {
		t.Fatal("joined cell was recomputed by the inner executor")
	}
	if cs := cache.Stats(); cs.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", cs.Coalesced)
	}
}

// TestDedupAbandonedFlightRecomputed: a leader canceled before finishing
// abandons its flight; the joiner must fall back to computing the cell
// itself rather than hanging or dropping it.
func TestDedupAbandonedFlightRecomputed(t *testing.T) {
	cells := dedupGrid(3)
	cache := NewCache(64)
	key := cacheKey{Kernel: "k", Cell: cells[1]}
	fl, _ := cache.lead(key)

	inner := &recordingExec{}
	d := &dedupExecutor{cache: cache, kernel: "k", inner: inner}
	ch := d.Execute(context.Background(), dynamics.ExecRequest{Cells: cells, Todo: []int{0, 1, 2}})
	go func() {
		time.Sleep(10 * time.Millisecond)
		cache.land(key, fl, dynamics.Result{}, false) // leader canceled
	}()
	got := collect(t, ch)
	if len(got) != 3 {
		t.Fatalf("delivered %d results, want 3", len(got))
	}
	if !inner.did(1) {
		t.Fatal("abandoned cell was never recomputed")
	}
}

// TestDedupLeaderLandsForWaiters: the dedup executor leads unclaimed
// cells and publishes each result to the flight registry as it is
// computed, so an outside waiter gets the in-memory result without any
// cache or checkpoint involvement.
func TestDedupLeaderLandsForWaiters(t *testing.T) {
	cells := dedupGrid(2)
	cache := NewCache(64)
	inner := &recordingExec{}
	d := &dedupExecutor{cache: cache, kernel: "k", inner: inner}

	// Win the race deliberately: register as joiner before the executor
	// starts by leading... we can't — the executor must lead. Instead,
	// start the executor, then join whichever flight still exists; if the
	// executor already landed it (registry slot freed), leading afresh is
	// the correct protocol outcome, so the test accepts either path.
	ch := d.Execute(context.Background(), dynamics.ExecRequest{Cells: cells, Todo: []int{0, 1}})
	got := collect(t, ch)
	if len(got) != 2 || got[0].Rounds != 1 || got[1].Rounds != 2 {
		t.Fatalf("leader path delivered %+v", got)
	}
	// All flights must be cleaned out of the registry after Execute.
	cache.mu.Lock()
	inFlight := len(cache.flights)
	cache.mu.Unlock()
	if inFlight != 0 {
		t.Fatalf("%d flights leaked in the registry", inFlight)
	}
}

// TestDedupCancelAbandonsFlights: cancelling the leader's context must
// abandon its unfinished flights (close their done channels with
// ok=false) so cross-sweep waiters never hang.
func TestDedupCancelAbandonsFlights(t *testing.T) {
	cells := dedupGrid(2)
	cache := NewCache(64)
	// An inner executor that never delivers: simulates cancellation
	// arriving before any cell finishes.
	blocked := executorFunc(func(ctx context.Context, req dynamics.ExecRequest) <-chan dynamics.IndexedResult {
		out := make(chan dynamics.IndexedResult)
		go func() {
			defer close(out)
			<-ctx.Done()
		}()
		return out
	})
	d := &dedupExecutor{cache: cache, kernel: "k", inner: blocked}
	ctx, cancel := context.WithCancel(context.Background())
	ch := d.Execute(ctx, dynamics.ExecRequest{Cells: cells, Todo: []int{0, 1}})

	// Another sweep joins cell 0 while the doomed leader holds it.
	var fl *flight
	deadline := time.Now().Add(5 * time.Second)
	for {
		var leader bool
		fl, leader = cache.lead(cacheKey{Kernel: "k", Cell: cells[0]})
		if !leader {
			break // joined the executor's flight
		}
		// The executor has not led yet; undo and retry.
		cache.land(cacheKey{Kernel: "k", Cell: cells[0]}, fl, dynamics.Result{}, false)
		if time.Now().After(deadline) {
			t.Fatal("executor never led its cells")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case <-fl.done:
		if fl.ok {
			t.Fatal("canceled leader landed a result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight never abandoned after cancel")
	}
	for range ch { // drain
	}
}

// executorFunc adapts a function to dynamics.Executor.
type executorFunc func(ctx context.Context, req dynamics.ExecRequest) <-chan dynamics.IndexedResult

func (f executorFunc) Execute(ctx context.Context, req dynamics.ExecRequest) <-chan dynamics.IndexedResult {
	return f(ctx, req)
}

// TestManagerCoalescesConcurrentJobs is the integration smoke: two jobs
// sharing a kernel submitted back-to-back finish with identical bytes
// for their shared cells; with in-flight dedup plus the cache, the
// shared cells are computed at most once each (hits + coalesced covers
// the overlap).
func TestManagerCoalescesConcurrentJobs(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(4096)
	mgr := NewManager(store, cache, 4)
	defer mgr.Close()

	a := Spec{N: 18, Alphas: []float64{0.5, 1, 2}, Ks: []int{2, 1000}, Seeds: 3}
	a.Normalize()
	b := Spec{N: 18, Alphas: []float64{1, 2, 5}, Ks: []int{2, 1000}, Seeds: 3}
	b.Normalize()
	jobA, _, err := mgr.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	jobB, _, err := mgr.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, jobA.ID, StatusDone)
	doneB := waitStatus(t, mgr, jobB.ID, StatusDone)

	overlap := 2 * 2 * 3 // α ∈ {1,2} × ks × seeds
	cs := cache.Stats()
	if int(cs.Coalesced)+doneB.CacheHits < overlap {
		// Every overlapping cell must have been deduplicated one way or
		// the other: joined in flight or served from the cache.
		t.Fatalf("coalesced (%d) + cache hits (%d) < overlap (%d): shared cells were recomputed",
			cs.Coalesced, doneB.CacheHits, overlap)
	}
	// Shared cells must be byte-identical across both checkpoints.
	resA, err := store.LoadResults(jobA.ID)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := store.LoadResults(jobB.ID)
	if err != nil {
		t.Fatal(err)
	}
	fpA := map[dynamics.Cell]uint64{}
	for _, r := range resA {
		fpA[r.Cell] = r.Result.Final.Fingerprint()
	}
	shared := 0
	for _, r := range resB {
		if want, ok := fpA[r.Cell]; ok {
			if r.Result.Final.Fingerprint() != want {
				t.Fatalf("cell %+v differs across coalesced jobs", r.Cell)
			}
			shared++
		}
	}
	if shared != overlap {
		t.Fatalf("found %d shared cells, want %d", shared, overlap)
	}
}
