package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func postLease(t *testing.T, url string, req LeaseRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/peer/leases", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readLeaseLines collects the non-blank result lines of a lease stream.
func readLeaseLines(t *testing.T, r io.Reader) [][]byte {
	t.Helper()
	var out [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue // heartbeat
		}
		out = append(out, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPeerLeaseStreamsCanonicalLines: the lease endpoint must stream
// exactly the requested range, in canonical order, byte-identical to the
// lines a local job checkpoints for the same cells.
func TestPeerLeaseStreamsCanonicalLines(t *testing.T) {
	sp := Spec{N: 12, Alphas: []float64{0.5, 1}, Ks: []int{2, 1000}, Seeds: 2}
	sp.Normalize()

	// Reference: run the job on a plain local daemon and keep its lines.
	refStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refMgr := NewManager(refStore, nil, 4)
	refJob, _, err := refMgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, refMgr, refJob.ID, StatusDone)
	refMgr.Close()
	refBytes, err := os.ReadFile(refStore.ResultsPath(refJob.ID))
	if err != nil {
		t.Fatal(err)
	}
	refLines := bytes.Split(bytes.TrimSuffix(refBytes, []byte("\n")), []byte("\n"))

	// Follower daemon: serve a mid-grid range over HTTP.
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(1024), 2)
	defer mgr.Close()
	srv := httptest.NewServer(newHandler(mgr, 5*time.Millisecond, 10*time.Millisecond))
	defer srv.Close()

	start, end := 3, 7
	resp := postLease(t, srv.URL, LeaseRequest{Spec: sp, Start: start, End: end})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease status = %d", resp.StatusCode)
	}
	lines := readLeaseLines(t, resp.Body)
	if len(lines) != end-start {
		t.Fatalf("lease streamed %d lines, want %d", len(lines), end-start)
	}
	for i, line := range lines {
		if !bytes.Equal(line, refLines[start+i]) {
			t.Fatalf("lease line %d differs from local checkpoint line %d:\n%s\n%s", i, start+i, line, refLines[start+i])
		}
	}

	// The served cells must have warmed the follower's cache: re-leasing
	// the same range is served without recomputation.
	before := mgr.CacheStats()
	resp2 := postLease(t, srv.URL, LeaseRequest{Spec: sp, Start: start, End: end})
	defer resp2.Body.Close()
	lines2 := readLeaseLines(t, resp2.Body)
	if len(lines2) != end-start {
		t.Fatalf("second lease streamed %d lines", len(lines2))
	}
	after := mgr.CacheStats()
	if after.Hits-before.Hits != uint64(end-start) {
		t.Fatalf("second lease hit the cache %d times, want %d", after.Hits-before.Hits, end-start)
	}
	for i := range lines2 {
		if !bytes.Equal(lines2[i], lines[i]) {
			t.Fatalf("cache-served lease line %d differs", i)
		}
	}
}

// TestCellsRangeMatchesCells pins the lease path's index arithmetic to
// the canonical expansion: both sides of the protocol must agree on
// which cell lives at which grid index.
func TestCellsRangeMatchesCells(t *testing.T) {
	sp := Spec{N: 10, Alphas: []float64{0.5, 1, 2, 5}, Ks: []int{1, 2, 1000}, Seeds: 3}
	sp.Normalize()
	full := sp.Cells()
	if sp.NumCells() != len(full) {
		t.Fatalf("NumCells = %d, len(Cells) = %d", sp.NumCells(), len(full))
	}
	if got := sp.CellsRange(0, len(full)); len(got) != len(full) {
		t.Fatalf("CellsRange(0, n) has %d cells", len(got))
	} else {
		for i := range full {
			if got[i] != full[i] {
				t.Fatalf("cell %d: CellsRange %+v != Cells %+v", i, got[i], full[i])
			}
		}
	}
	sub := sp.CellsRange(7, 23)
	for i, c := range sub {
		if c != full[7+i] {
			t.Fatalf("range cell %d: %+v != %+v", i, c, full[7+i])
		}
	}
}

// TestPeerLeaseRejections: malformed bodies, invalid specs, and bad
// ranges are all 400s — never a stream.
func TestPeerLeaseRejections(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	valid := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	valid.Normalize()

	cases := []struct {
		name string
		req  LeaseRequest
	}{
		{"invalid spec", LeaseRequest{Spec: Spec{N: 1}, Start: 0, End: 1}},
		{"negative start", LeaseRequest{Spec: valid, Start: -1, End: 1}},
		{"end past grid", LeaseRequest{Spec: valid, Start: 0, End: 3}},
		{"empty range", LeaseRequest{Spec: valid, Start: 1, End: 1}},
	}
	for _, tc := range cases {
		resp := postLease(t, srv.URL, tc.req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp, err := http.Post(srv.URL+"/peer/leases", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status = %d, want 400", resp.StatusCode)
	}
}

// TestPeerLeaseHeartbeats: while a lease computes, the stream carries
// blank keep-alive lines so the leader's watchdog can tell slow from
// dead — verifiable with a heartbeat interval far below the compute
// time of the whole range.
func TestPeerLeaseHeartbeats(t *testing.T) {
	sp := Spec{N: 40, Alphas: []float64{0.5, 1, 2, 5}, Ks: []int{2, 3, 1000}, Seeds: 3}
	sp.Normalize()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()
	srv := httptest.NewServer(newHandler(mgr, time.Millisecond, time.Millisecond))
	defer srv.Close()

	resp := postLease(t, srv.URL, LeaseRequest{Spec: sp, Start: 0, End: len(sp.Cells())})
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	blanks := 0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			blanks++
		}
	}
	if blanks < 2 { // the final newline accounts for one empty split
		t.Fatalf("stream carried %d blank segments; expected heartbeats", blanks)
	}
}

// fakeMembership records hellos and serves a canned member table —
// the HTTP layer's view of cluster.Registry without the import cycle.
type fakeMembership struct {
	mu      sync.Mutex
	hellos  []string
	members []MemberInfo
}

func (f *fakeMembership) Hello(url string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hellos = append(f.hellos, url)
}

func (f *fakeMembership) Members() []MemberInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]MemberInfo(nil), f.members...)
}

func (f *fakeMembership) ClusterStats() ClusterStats {
	return ClusterStats{
		MembersByState: map[string]int{"alive": len(f.members), "suspect": 0, "down": 0},
		Probes:         7,
	}
}

// TestPeerHelloAndMembers covers the membership endpoints: a valid hello
// registers the announcer and returns the member table (the joiner's
// first gossip pull), bad URLs are 400s that never reach the registry,
// and /peer/members serves the table directly.
func TestPeerHelloAndMembers(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()
	fm := &fakeMembership{members: []MemberInfo{
		{URL: "http://self:1", State: "alive", Self: true},
		{URL: "http://a:1", State: "suspect"},
	}}
	srv := httptest.NewServer(NewHandlerConfig(mgr, Config{Cluster: fm}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/peer/hello", "application/json",
		strings.NewReader(`{"advertise_url":"http://joiner:9/"}`))
	if err != nil {
		t.Fatal(err)
	}
	var mr MembersResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hello status = %d", resp.StatusCode)
	}
	if len(fm.hellos) != 1 || fm.hellos[0] != "http://joiner:9" {
		t.Fatalf("registry saw hellos %v, want the normalized advertise URL", fm.hellos)
	}
	if len(mr.Members) != 2 || !mr.Members[0].Self {
		t.Fatalf("hello response members = %+v", mr.Members)
	}

	for _, bad := range []string{
		`{"advertise_url":""}`,
		`{"advertise_url":"not a url"}`,
		`{"advertise_url":"ftp://a:1"}`,
		`{"advertise_url":"/just/a/path"}`,
		`{not json`,
		`{"advertise_url":"http://a:1","extra":true}`,
	} {
		resp, err := http.Post(srv.URL+"/peer/hello", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("hello %s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
	if len(fm.hellos) != 1 {
		t.Fatalf("a rejected hello reached the registry: %v", fm.hellos)
	}

	resp, err = http.Get(srv.URL + "/peer/members")
	if err != nil {
		t.Fatal(err)
	}
	var mr2 MembersResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr2.Members) != 2 || mr2.Members[1].URL != "http://a:1" {
		t.Fatalf("members = %+v", mr2.Members)
	}

	// The cluster section must surface in /healthz and /metrics.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(hb), `"cluster"`) {
		t.Fatalf("healthz has no cluster section: %s", hb)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`sweepd_cluster_members{state="alive"} 2`,
		`sweepd_cluster_peer_state{peer="http://a:1",state="suspect"} 1`,
		`sweepd_cluster_peer_state{peer="http://a:1",state="alive"} 0`,
		"sweepd_cluster_probes_total 7",
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mb)
		}
	}
	if strings.Contains(string(mb), `peer="http://self:1"`) {
		t.Fatal("metrics emitted a per-peer series for self")
	}
}

// TestPeerMembershipDisabled: without a registry the membership
// endpoints refuse with 503 — never a silent empty table.
func TestPeerMembershipDisabled(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/peer/hello", "application/json",
		strings.NewReader(`{"advertise_url":"http://a:1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hello status = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/peer/members")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("members status = %d, want 503", resp.StatusCode)
	}
}

// TestNormalizePeerURLs pins the shared URL hygiene all three layers
// (-peers, shard.New, the registry) rely on.
func TestNormalizePeerURLs(t *testing.T) {
	got := NormalizePeerURLs([]string{" http://a:1/ ", "http://a:1", "", "http://b:2//", "http://a:1/"})
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) {
		t.Fatalf("NormalizePeerURLs = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("NormalizePeerURLs = %v, want %v", got, want)
		}
	}
}

// TestPeerRateLimitClass: the /peer/* endpoints draw from their own
// bucket — a peer-rate limit must not throttle interactive reads, and
// vice versa.
func TestPeerRateLimitClass(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()
	now := time.Now()
	h, handler := buildHandler(mgr, Config{PeerRate: 1, now: func() time.Time { return now }})
	srv := httptest.NewServer(handler)
	defer srv.Close()
	_ = h

	// First peer request takes the only token (and fails validation —
	// irrelevant, the limiter runs first); the second must be 429.
	body := []byte(`{"spec":{"n":1},"start":0,"end":1}`)
	r1, err := http.Post(srv.URL+"/peer/leases", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusBadRequest {
		t.Fatalf("first peer request status = %d, want 400", r1.StatusCode)
	}
	r2, err := http.Post(srv.URL+"/peer/leases", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second peer request status = %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Interactive reads are untouched by the drained peer bucket.
	r3, err := http.Get(srv.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("read status = %d, want 200", r3.StatusCode)
	}
}
