package sweepd

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
)

func TestLatencyHistBucketing(t *testing.T) {
	var h latencyHist
	h.observe(0.0004) // ≤ 0.001
	h.observe(0.003)  // ≤ 0.005
	h.observe(0.003)  // ≤ 0.005
	h.observe(45)     // ≤ 60
	h.observe(1e9)    // +Inf overflow
	if h.n != 5 {
		t.Fatalf("n = %d, want 5", h.n)
	}
	if h.counts[0] != 1 {
		t.Fatalf("first bucket = %d, want 1", h.counts[0])
	}
	if h.counts[2] != 2 {
		t.Fatalf("0.005 bucket = %d, want 2", h.counts[2])
	}
	if h.counts[len(latencyBuckets)-1] != 1 {
		t.Fatalf("60s bucket = %d, want 1", h.counts[len(latencyBuckets)-1])
	}
	if h.counts[len(latencyBuckets)] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", h.counts[len(latencyBuckets)])
	}
	var total uint64
	for _, c := range h.counts {
		total += c
	}
	if total != h.n {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.n)
	}
}

// TestJobLatencyHistogramServed: a finished job exposes a per-cell
// wall-time histogram whose count equals its locally computed cells,
// rendered as valid Prometheus histogram text in /metrics.
func TestJobLatencyHistogramServed(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 4)
	defer mgr.Close()
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	sp := Spec{N: 12, Alphas: []float64{0.5, 1}, Ks: []int{2, 1000}, Seeds: 2}
	sp.Normalize()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, mgr, job.ID, StatusDone)

	lats := mgr.JobLatencies()
	if len(lats) != 1 || lats[0].ID != job.ID {
		t.Fatalf("JobLatencies = %+v, want one entry for %s", lats, job.ID)
	}
	jl := lats[0]
	if jl.Count != uint64(done.Total) {
		t.Fatalf("histogram count = %d, want %d (every cell computed locally)", jl.Count, done.Total)
	}
	if jl.Sum <= 0 {
		t.Fatalf("histogram sum = %g, want > 0", jl.Sum)
	}
	if len(jl.Counts) != len(jl.Buckets)+1 {
		t.Fatalf("%d counts for %d buckets", len(jl.Counts), len(jl.Buckets))
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	countRe := regexp.MustCompile(`(?m)^sweepd_job_cell_seconds_count\{job="` + job.ID + `"\} (\d+)$`)
	m := countRe.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metrics missing histogram count series:\n%s", text)
	}
	if n, _ := strconv.Atoi(m[1]); n != done.Total {
		t.Fatalf("metrics count = %s, want %d", m[1], done.Total)
	}
	// Buckets must be cumulative and end at +Inf == count.
	bucketRe := regexp.MustCompile(`(?m)^sweepd_job_cell_seconds_bucket\{job="` + job.ID + `",le="([^"]+)"\} (\d+)$`)
	prev := int64(-1)
	var last string
	var lastVal int64
	for _, bm := range bucketRe.FindAllStringSubmatch(text, -1) {
		v, _ := strconv.ParseInt(bm[2], 10, 64)
		if v < prev {
			t.Fatalf("bucket le=%q count %d not cumulative (prev %d)", bm[1], v, prev)
		}
		prev, last, lastVal = v, bm[1], v
	}
	if last != "+Inf" || lastVal != int64(done.Total) {
		t.Fatalf("final bucket le=%q=%d, want +Inf=%d", last, lastVal, done.Total)
	}
}

// TestJobLatencyCacheHitsNotObserved: cells served from the cache are
// not wall-time observations — a fully cache-served rerun adds nothing.
func TestJobLatencyCacheHitsNotObserved(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(1024), 2)
	defer mgr.Close()

	a := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 3}
	a.Normalize()
	jobA, _, err := mgr.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, jobA.ID, StatusDone)

	// Superset grid: the overlap is cache-served, only the new cells are
	// computed (and observed).
	b := Spec{N: 10, Alphas: []float64{1, 2}, Ks: []int{2}, Seeds: 3}
	b.Normalize()
	jobB, _, err := mgr.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	doneB := waitStatus(t, mgr, jobB.ID, StatusDone)
	if doneB.CacheHits == 0 {
		t.Fatal("no cache hits; test premise broken")
	}
	for _, jl := range mgr.JobLatencies() {
		if jl.ID != jobB.ID {
			continue
		}
		want := uint64(doneB.Total - doneB.CacheHits)
		if jl.Count != want {
			t.Fatalf("job B observed %d cells, want %d (total %d - %d cache hits)",
				jl.Count, want, doneB.Total, doneB.CacheHits)
		}
		return
	}
	t.Fatal("job B has no histogram")
}

// TestLatencyBucketsAscending guards the metrics contract: bucket
// bounds must be strictly ascending.
func TestLatencyBucketsAscending(t *testing.T) {
	for i := 1; i < len(latencyBuckets); i++ {
		if latencyBuckets[i] <= latencyBuckets[i-1] {
			t.Fatalf("latencyBuckets[%d]=%g ≤ latencyBuckets[%d]=%g",
				i, latencyBuckets[i], i-1, latencyBuckets[i-1])
		}
	}
}
