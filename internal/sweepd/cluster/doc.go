// Package cluster gives sweepd live membership: daemons join and leave a
// running cluster without restarts, and flapping peers are backed off
// instead of stalling every job's lease attempts.
//
// # Discovery
//
// A Registry starts from the operator's seed list (-peers) and then
// learns the rest of the cluster on its own:
//
//   - A booting daemon started with -advertise announces itself with
//     POST /peer/hello {advertise_url} to every peer it successfully
//     probes (once per aliveness epoch). The receiver registers it as an
//     alive member immediately — the announcer just proved it is
//     reachable — so the very next job can lease to it.
//   - Every daemon serves its member table at GET /peer/members, and
//     every probe cycle pulls the table of each peer it confirmed alive.
//     Newly learned URLs are one-hop gossip: they enter as suspect and a
//     probe (due immediately) verifies them before any lease rides on
//     them.
//
// Together these give eventual full-mesh knowledge with one round of
// indirection: a joiner hellos one seed, the seed's table shows the
// joiner to everyone who polls it, and the joiner's own pulls teach it
// the members the seed already knew.
//
// Every registry also mints a random per-process instance ID, served in
// /healthz's cluster section, which probes use for two checks a URL
// alone cannot make: a member whose probe answers with our own ID is
// this daemon itself under an unadvertised URL (gossip echoes a
// non-advertising seed's URL back to it) — it is dropped and
// blacklisted so a daemon never leases sweep work to itself — and a
// member whose ID changed between successful probes restarted without
// missing one, so Self is re-announced to the fresh process.
//
// # Health and backoff
//
// The probe loop dials each due member's GET /healthz every
// ProbeInterval:
//
//	alive --(probe fails)--> suspect --(DownAfter consecutive
//	fails)--> down --(probe succeeds)--> alive (readmission)
//
// Alive and suspect members are probed every cycle. Down members wait
// out an exponential backoff first — starting at ProbeInterval, doubling
// per failed probe, capped at BackoffMax, with jitter in [b/2, b] so a
// flapping machine (or a whole cluster restarting in unison) does not
// re-probe in lockstep. A lease failure against an alive peer demotes it
// to suspect at once (shard.Pool reports it via ReportLeaseFailure), so
// a peer that dies mid-sweep is skipped by subsequent jobs without each
// one paying the lease TTL to rediscover the corpse.
//
// The lease pool consumes AlivePeers() — a per-job snapshot of the
// alive members only — so membership changes never touch a job in
// flight, and checkpoint byte-identity across join/leave holds exactly
// as it does for the static peer list.
package cluster
