package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweepd"
)

// jitterRand is the default jitter source (tests inject a fixed one).
func jitterRand() float64 { return mrand.Float64() }

// newInstanceID mints the registry's random per-process identity.
func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", mrand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// State is a member's observed health.
type State string

const (
	// StateAlive: the last probe (or hello) succeeded; the peer receives
	// leases.
	StateAlive State = "alive"
	// StateSuspect: at least one probe (or a lease) failed but the peer
	// has not yet crossed the down threshold; it is probed every cycle
	// and excluded from new leases until a probe revives it.
	StateSuspect State = "suspect"
	// StateDown: DownAfter consecutive probes failed; the peer is probed
	// on an exponential backoff with jitter so a flapping or dead machine
	// stops eating probe (and lease) attempts.
	StateDown State = "down"
)

// Options tunes a Registry. The zero value is production-ready for a
// passive daemon (no self URL, no seeds).
type Options struct {
	// Self is this daemon's own advertise URL. When set, the registry
	// announces it to every peer it successfully probes (once per
	// aliveness epoch), so booting daemons join the cluster without any
	// restart of the existing members. Empty means passive: the daemon
	// probes and leases but never announces itself.
	Self string
	// Seeds are the initially known peers (the -peers flag). They start
	// alive optimistically — exactly the old static-list behavior — and
	// the probe loop demotes any that turn out dead.
	Seeds []string
	// ProbeInterval is the health-probe cadence (default 5s). Alive and
	// suspect members are probed every interval; down members wait out
	// their backoff first.
	ProbeInterval time.Duration
	// DownAfter is how many consecutive probe failures turn a suspect
	// member down (default 3).
	DownAfter int
	// BackoffMax caps the down-member probe backoff (default 2m). The
	// backoff starts at ProbeInterval and doubles per failed probe, with
	// jitter in [backoff/2, backoff] so a cluster restarted in unison
	// does not re-probe in lockstep.
	BackoffMax time.Duration
	// Client issues the probe, hello, and member-pull requests (default:
	// a client with a bounded dial/TLS-handshake timeout and an overall
	// request timeout of ProbeInterval — floored at 3s so an aggressive
	// cadence never makes healthy loopback round-trips look dead — so
	// one black-holed peer cannot stall probe cycles indefinitely).
	Client *http.Client
	// Logf, when set, receives membership diagnostics (state
	// transitions, rejected URLs, hello failures) — wire it to
	// log.Printf so a daemon that silently fails to join leaves a
	// trail. Nil means silent.
	Logf func(format string, args ...any)
}

// member is the registry's record of one peer.
type member struct {
	url   string
	state State
	// fails counts consecutive probe failures; reset by any success.
	fails int
	// backoff is the current down-state probe delay (0 until down).
	backoff time.Duration
	// next is the earliest time the probe loop will dial this member
	// again. It gates DOWN members only (their backoff deadline); alive
	// and suspect members are probed every cycle, so a cycle that runs
	// long can never silently halve the probing cadence.
	next time.Time
	// lastSeen is the last successful contact (probe or hello).
	lastSeen time.Time
	// helloed records that we announced Self to this peer during its
	// current aliveness epoch; cleared on any probe failure and whenever
	// the peer's instance ID changes, so a restarted peer (which lost
	// its member table) is re-announced even if it never missed a probe.
	helloed bool
	// lastHelloErr dedupes hello-failure diagnostics: a persistent
	// rejection (bad advertise URL) is logged once, not every cycle.
	lastHelloErr string
	// instanceID is the peer's per-process identity as last observed by
	// a successful probe ("" until then, or for non-sweepd endpoints).
	instanceID string
	// gen counts externally driven state changes (hello, lease-failure
	// report). A probe cycle snapshots it before dialing and discards
	// its result if it moved: a probe success collected moments before a
	// peer died must not overwrite the lease failure that just demoted
	// it.
	gen uint64
}

// transport abstracts the three peer RPCs so the state-machine tests can
// drive transitions without real HTTP.
type transport interface {
	// probe checks liveness (GET /healthz); err == nil means alive. The
	// returned instance ID ("" if the endpoint serves none) identifies
	// the process behind the URL.
	probe(url string) (instanceID string, err error)
	// hello announces self to url (POST /peer/hello); the response
	// carries the receiver's member table, so a hello doubles as a
	// gossip pull.
	hello(url, self string) ([]string, error)
	// members pulls url's member list (GET /peer/members).
	members(url string) ([]string, error)
}

// Registry tracks live cluster membership: it probes every known peer's
// /healthz on a background loop, applies exponential backoff to down
// peers, learns new members from hellos and one-hop gossip (pulling
// /peer/members from each alive peer), and announces Self to peers it
// probes. It implements sweepd.Membership for the HTTP layer and
// shard.PeerSource (AlivePeers / ReportLeaseFailure) for the lease pool.
// A Registry is safe for concurrent use.
type Registry struct {
	opts  Options
	probe transport

	// now and randf are the clock and jitter source; tests inject fakes
	// to drive transitions deterministically (the gcOnce pattern).
	now   func() time.Time
	randf func() float64

	stop chan struct{}
	done chan struct{}
	// started/closed guard double Start/Close.
	started bool
	closed  bool

	// instanceID is this process's random identity, served in
	// ClusterStats so peers can tell "that URL is me" and "that peer
	// restarted" apart from plain liveness.
	instanceID string

	mu      sync.Mutex
	self    string
	members map[string]*member
	// selfURLs are URLs known to address this very daemon: the
	// configured Self plus any URL whose probe answered with our own
	// instance ID (a non-advertising daemon can learn its own URL from
	// gossip). They are never registered as members — a daemon must not
	// lease sweep work to itself over loopback HTTP.
	selfURLs map[string]bool

	probes        atomic.Uint64
	probeFailures atomic.Uint64
	backoffs      atomic.Uint64
	readmissions  atomic.Uint64
}

// New builds a registry over the options; call Start to launch the probe
// loop (tests drive probeOnce directly instead).
func New(opts Options) *Registry {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 5 * time.Second
	}
	if opts.DownAfter <= 0 {
		opts.DownAfter = 3
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Minute
	}
	if opts.BackoffMax < opts.ProbeInterval {
		opts.BackoffMax = opts.ProbeInterval
	}
	if opts.Client == nil {
		timeout := opts.ProbeInterval
		if timeout < 3*time.Second {
			timeout = 3 * time.Second
		}
		opts.Client = &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				Proxy: http.ProxyFromEnvironment,
				DialContext: (&net.Dialer{
					Timeout:   3 * time.Second,
					KeepAlive: 30 * time.Second,
				}).DialContext,
				TLSHandshakeTimeout: 3 * time.Second,
				MaxIdleConns:        16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	r := &Registry{
		opts:       opts,
		now:        time.Now,
		randf:      jitterRand,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		instanceID: newInstanceID(),
		self:       sweepd.NormalizePeerURL(opts.Self),
		members:    make(map[string]*member),
		selfURLs:   make(map[string]bool),
	}
	if r.self != "" {
		r.selfURLs[r.self] = true
	}
	r.probe = &httpTransport{client: opts.Client}
	for _, s := range sweepd.NormalizePeerURLs(opts.Seeds) {
		if r.selfURLs[s] {
			continue
		}
		if !sweepd.ValidPeerURL(s) {
			// The same admission rule POST /peer/hello enforces: a typo'd
			// seed must not enter the member table and spread cluster-wide
			// by gossip with no pruning path.
			r.logf("cluster: dropping invalid seed peer URL %q", s)
			continue
		}
		// Seeds start alive and due immediately: the first probe cycle
		// confirms them, and a job submitted before it behaves exactly
		// like the old static -peers list.
		r.members[s] = &member{url: s, state: StateAlive}
	}
	return r
}

// logf forwards diagnostics to the configured sink, if any.
func (r *Registry) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// SetSelf installs (or replaces) the advertise URL after construction —
// test servers learn their URL only once listening. Call before Start.
func (r *Registry) SetSelf(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.self = sweepd.NormalizePeerURL(url)
	if r.self != "" {
		r.selfURLs[r.self] = true
	}
	delete(r.members, r.self)
}

// Start launches the background probe loop: an immediate cycle (so seeds
// are confirmed, Self announced, and member lists pulled right away),
// then one cycle per ProbeInterval until Close.
func (r *Registry) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.opts.ProbeInterval)
		defer ticker.Stop()
		r.probeOnce()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				r.probeOnce()
			}
		}
	}()
}

// Close stops the probe loop and waits for the in-flight cycle to
// drain. Safe to call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	started := r.started
	r.mu.Unlock()
	close(r.stop)
	if started {
		<-r.done
	}
}

// Hello implements sweepd.Membership: a peer announced itself, so it is
// demonstrably reachable — register it alive (reviving a down member)
// and let the probe loop take it from there.
func (r *Registry) Hello(advertiseURL string) {
	url := sweepd.NormalizePeerURL(advertiseURL)
	r.mu.Lock()
	defer r.mu.Unlock()
	if url == "" || r.selfURLs[url] {
		return
	}
	now := r.now()
	m := r.members[url]
	if m == nil {
		m = &member{url: url}
		r.members[url] = m
		r.logf("cluster: peer %s joined via hello", url)
	}
	if m.state == StateDown {
		r.readmissions.Add(1)
		r.logf("cluster: peer %s down -> alive (re-hello)", url)
	}
	m.state = StateAlive
	m.fails = 0
	m.backoff = 0
	m.lastSeen = now
	m.next = now.Add(r.opts.ProbeInterval)
	m.gen++
}

// Members implements sweepd.Membership: the known cluster, self first,
// then peers sorted by URL.
func (r *Registry) Members() []sweepd.MemberInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sweepd.MemberInfo, 0, len(r.members)+1)
	if r.self != "" {
		out = append(out, sweepd.MemberInfo{URL: r.self, State: string(StateAlive), Self: true})
	}
	urls := make([]string, 0, len(r.members))
	for u := range r.members {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		m := r.members[u]
		out = append(out, sweepd.MemberInfo{URL: m.url, State: string(m.state), LastSeen: m.lastSeen})
	}
	return out
}

// ClusterStats implements sweepd.Membership.
func (r *Registry) ClusterStats() sweepd.ClusterStats {
	r.mu.Lock()
	byState := map[string]int{string(StateAlive): 0, string(StateSuspect): 0, string(StateDown): 0}
	for _, m := range r.members {
		byState[string(m.state)]++
	}
	r.mu.Unlock()
	return sweepd.ClusterStats{
		InstanceID:     r.instanceID,
		MembersByState: byState,
		Probes:         r.probes.Load(),
		ProbeFailures:  r.probeFailures.Load(),
		Backoffs:       r.backoffs.Load(),
		Readmissions:   r.readmissions.Load(),
	}
}

// AlivePeers implements shard.PeerSource: the members currently safe to
// lease to, sorted for deterministic fan-out.
func (r *Registry) AlivePeers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.members))
	for u, m := range r.members {
		if m.state == StateAlive {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// ReportLeaseFailure implements the shard pool's failure feedback: a
// lease against an alive peer failed, so demote it to suspect and probe
// it promptly — subsequent jobs skip it until a probe revives it,
// instead of each job rediscovering the corpse at lease-TTL cost.
func (r *Registry) ReportLeaseFailure(url string) {
	url = sweepd.NormalizePeerURL(url)
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[url]
	if m == nil || m.state != StateAlive {
		return
	}
	m.state = StateSuspect
	m.next = r.now() // due on the next cycle
	m.helloed = false
	m.gen++
	r.logf("cluster: peer %s alive -> suspect (lease failed)", url)
}

// probeOnce runs one probe cycle: dial every due member's /healthz
// concurrently, apply the state transitions, announce Self to newly
// confirmed peers, and merge their member lists (one-hop gossip).
func (r *Registry) probeOnce() {
	now := r.now()
	r.mu.Lock()
	self := r.self
	due := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		// Alive and suspect members are probed every cycle; only down
		// members wait out their backoff deadline. Gating the healthy
		// ones on a timestamp set mid-cycle would silently skip every
		// other tick.
		if m.state != StateDown || !m.next.After(now) {
			due = append(due, m)
		}
	}
	urls := make([]string, len(due))
	needHello := make([]bool, len(due))
	gens := make([]uint64, len(due))
	for i, m := range due {
		urls[i] = m.url
		needHello[i] = self != "" && !m.helloed
		gens[i] = m.gen
	}
	r.mu.Unlock()

	type outcome struct {
		ok       bool
		id       string
		helloed  bool
		helloErr string
		learned  []string
	}
	results := make([]outcome, len(due))
	var wg sync.WaitGroup
	for i := range due {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := urls[i]
			r.probes.Add(1)
			id, err := r.probe.probe(url)
			if err != nil {
				r.probeFailures.Add(1)
				return
			}
			res := outcome{ok: true, id: id}
			gossiped := false
			if needHello[i] {
				if list, herr := r.probe.hello(url, self); herr == nil {
					// The hello response carries the member table, so a
					// successful announcement doubles as this cycle's
					// gossip pull.
					res.helloed = true
					res.learned = list
					gossiped = true
				} else {
					res.helloErr = herr.Error()
				}
			}
			if !gossiped {
				if list, merr := r.probe.members(url); merr == nil {
					res.learned = list
				}
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	now = r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, m := range due {
		if m.gen != gens[i] {
			// The member's state moved while this probe was in flight (a
			// hello revived it, or a lease failure demoted it); the probe
			// observed the old world, so its verdict is stale — drop it
			// and let the next cycle re-decide.
			continue
		}
		res := results[i]
		if res.ok {
			if res.id != "" && res.id == r.instanceID {
				// The member answered with our own instance ID: it is this
				// very daemon behind a URL we did not know was ours (a
				// non-advertising daemon's URL travels back via gossip from
				// the peers it seeds). Never lease to yourself — blacklist
				// the URL and drop the member.
				r.logf("cluster: %s is this daemon itself (instance %s); dropping", m.url, r.instanceID)
				r.selfURLs[m.url] = true
				delete(r.members, m.url)
				continue
			}
			if m.instanceID != "" && res.id != m.instanceID {
				// Same URL, new process: the peer restarted without
				// missing a probe, so its member table (and our hello) is
				// gone — re-announce next cycle.
				m.helloed = false
			}
			m.instanceID = res.id
			if m.state == StateDown {
				r.readmissions.Add(1)
			}
			if m.state != StateAlive {
				r.logf("cluster: peer %s %s -> alive", m.url, m.state)
			}
			m.state = StateAlive
			m.fails = 0
			m.backoff = 0
			m.lastSeen = now
			m.next = now.Add(r.opts.ProbeInterval)
			if res.helloed {
				m.helloed = true
				m.lastHelloErr = ""
			} else if res.helloErr != "" && res.helloErr != m.lastHelloErr {
				// A refused announcement means this daemon may never join
				// that peer's cluster (typically a bad -advertise URL);
				// say so once per distinct error, not once per cycle.
				r.logf("cluster: hello to %s rejected: %s", m.url, res.helloErr)
				m.lastHelloErr = res.helloErr
			}
			for _, u := range sweepd.NormalizePeerURLs(res.learned) {
				if r.selfURLs[u] || r.members[u] != nil {
					continue
				}
				if !sweepd.ValidPeerURL(u) {
					r.logf("cluster: ignoring invalid gossiped peer URL %q from %s", u, m.url)
					continue
				}
				// Gossip-learned members start suspect: secondhand news is
				// verified by a probe (due immediately) before any lease
				// rides on it.
				r.members[u] = &member{url: u, state: StateSuspect}
			}
			continue
		}
		m.fails++
		// Any failure invalidates our standing announcement: if the peer
		// is restarting right now, the new process will not know us.
		m.helloed = false
		if m.fails < r.opts.DownAfter {
			if m.state != StateSuspect {
				r.logf("cluster: peer %s %s -> suspect (probe failed)", m.url, m.state)
			}
			m.state = StateSuspect
			m.next = now.Add(r.opts.ProbeInterval)
			continue
		}
		if m.state != StateDown {
			r.logf("cluster: peer %s %s -> down after %d consecutive probe failures", m.url, m.state, m.fails)
		}
		m.state = StateDown
		prev := m.backoff
		if m.backoff == 0 {
			m.backoff = r.opts.ProbeInterval
		} else {
			m.backoff *= 2
		}
		if m.backoff > r.opts.BackoffMax {
			m.backoff = r.opts.BackoffMax
		}
		if m.backoff > prev {
			// Count actual raises only: a permanently dead peer parked at
			// the cap must not read as "flapping" on the backoff counter.
			r.backoffs.Add(1)
		}
		// Jitter in [backoff/2, backoff]: flapping peers spread out
		// instead of re-probing in lockstep.
		jittered := m.backoff/2 + time.Duration(r.randf()*float64(m.backoff/2))
		m.next = now.Add(jittered)
	}
}

// httpTransport is the production transport over the sweepd HTTP API.
type httpTransport struct {
	client *http.Client
}

func (t *httpTransport) probe(url string) (string, error) {
	resp, err := t.client.Get(url + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64*1024)) //nolint:errcheck // drain for reuse
		return "", fmt.Errorf("cluster: %s/healthz: %s", url, resp.Status)
	}
	// The instance ID rides in the healthz payload's cluster section; a
	// daemon without one (or a non-sweepd endpoint) just probes as alive
	// with no identity.
	var payload struct {
		Cluster struct {
			InstanceID string `json:"instance_id"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&payload); err != nil {
		return "", nil //nolint:nilerr // a 200 with an odd body is still alive
	}
	return payload.Cluster.InstanceID, nil
}

func (t *httpTransport) hello(url, self string) ([]string, error) {
	body, err := json.Marshal(sweepd.HelloRequest{AdvertiseURL: self})
	if err != nil {
		return nil, err
	}
	resp, err := t.client.Post(url+"/peer/hello", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: %s/peer/hello: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	// The response is the receiver's member table — the announcer's
	// first gossip pull.
	var mr sweepd.MembersResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&mr); err != nil {
		return nil, nil //nolint:nilerr // announced fine; just no table to merge
	}
	out := make([]string, 0, len(mr.Members))
	for _, m := range mr.Members {
		out = append(out, m.URL)
	}
	return out, nil
}

func (t *httpTransport) members(url string) ([]string, error) {
	resp, err := t.client.Get(url + "/peer/members")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return nil, fmt.Errorf("cluster: %s/peer/members: %s", url, resp.Status)
	}
	var mr sweepd.MembersResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&mr); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(mr.Members))
	for _, m := range mr.Members {
		out = append(out, m.URL)
	}
	return out, nil
}
