package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweepd"
)

// jitterRand is the default jitter source (tests inject a fixed one).
func jitterRand() float64 { return mrand.Float64() }

// newInstanceID mints the registry's random per-process identity.
func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", mrand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// State is a member's observed health.
type State string

const (
	// StateAlive: the last probe (or hello) succeeded; the peer receives
	// leases.
	StateAlive State = "alive"
	// StateSuspect: at least one probe (or a lease) failed but the peer
	// has not yet crossed the down threshold; it is probed every cycle
	// and excluded from new leases until a probe revives it.
	StateSuspect State = "suspect"
	// StateDown: DownAfter consecutive probes failed; the peer is probed
	// on an exponential backoff with jitter so a flapping or dead machine
	// stops eating probe (and lease) attempts.
	StateDown State = "down"
)

// Options tunes a Registry. The zero value is production-ready for a
// passive daemon (no self URL, no seeds).
type Options struct {
	// Self is this daemon's own advertise URL. When set, the registry
	// announces it to every peer it successfully probes (once per
	// aliveness epoch), so booting daemons join the cluster without any
	// restart of the existing members. Empty means passive: the daemon
	// probes and leases but never announces itself.
	Self string
	// Seeds are the initially known peers (the -peers flag). They start
	// alive optimistically — exactly the old static-list behavior — and
	// the probe loop demotes any that turn out dead.
	Seeds []string
	// ProbeInterval is the health-probe cadence (default 5s). Alive and
	// suspect members are probed every interval; down members wait out
	// their backoff first.
	ProbeInterval time.Duration
	// DownAfter is how many consecutive probe failures turn a suspect
	// member down (default 3).
	DownAfter int
	// BackoffMax caps the down-member probe backoff (default 2m). The
	// backoff starts at ProbeInterval and doubles per failed probe, with
	// jitter in [backoff/2, backoff] so a cluster restarted in unison
	// does not re-probe in lockstep.
	BackoffMax time.Duration
	// Client issues the probe, hello, and member-pull requests (default:
	// a client with a bounded dial/TLS-handshake timeout and an overall
	// request timeout of ProbeInterval — floored at 3s so an aggressive
	// cadence never makes healthy loopback round-trips look dead — so
	// one black-holed peer cannot stall probe cycles indefinitely).
	Client *http.Client
	// Logf, when set, receives membership diagnostics (state
	// transitions, rejected URLs, hello failures) — wire it to
	// log.Printf so a daemon that silently fails to join leaves a
	// trail. Nil means silent.
	Logf func(format string, args ...any)
	// SelfLoad, when set, supplies this daemon's own capacity snapshot
	// for Members() (gossip readers see the serving daemon's load without
	// probing it); cmd/ncg-server wires it to Manager.Load.
	SelfLoad func() sweepd.LoadInfo
	// TombstoneAfter decommissions members that stay down continuously
	// for this long: the member is dropped and a tombstone with the same
	// TTL is gossiped, so the whole cluster stops probing the dead URL
	// (and the scheduler can never place a job on it). 0 disables
	// tombstoning — down members are probed at the backoff cap forever.
	TombstoneAfter time.Duration
	// LeaseExpiry drops job leases that an alive owner stopped
	// refreshing (job finished elsewhere and the DropLease never
	// reached us, or the owner's scheduler died). Leases whose owner is
	// down or gone are deliberately kept — they are what adoption feeds
	// on. Default 6× ProbeInterval.
	LeaseExpiry time.Duration
}

// member is the registry's record of one peer.
type member struct {
	url   string
	state State
	// fails counts consecutive probe failures; reset by any success.
	fails int
	// backoff is the current down-state probe delay (0 until down).
	backoff time.Duration
	// next is the earliest time the probe loop will dial this member
	// again. It gates DOWN members only (their backoff deadline); alive
	// and suspect members are probed every cycle, so a cycle that runs
	// long can never silently halve the probing cadence.
	next time.Time
	// lastSeen is the last successful contact (probe or hello).
	lastSeen time.Time
	// helloed records that we announced Self to this peer during its
	// current aliveness epoch; cleared on any probe failure and whenever
	// the peer's instance ID changes, so a restarted peer (which lost
	// its member table) is re-announced even if it never missed a probe.
	helloed bool
	// lastHelloErr dedupes hello-failure diagnostics: a persistent
	// rejection (bad advertise URL) is logged once, not every cycle.
	lastHelloErr string
	// instanceID is the peer's per-process identity as last observed by
	// a successful probe ("" until then, or for non-sweepd endpoints).
	instanceID string
	// gen counts externally driven state changes (hello, lease-failure
	// report). A probe cycle snapshots it before dialing and discards
	// its result if it moved: a probe success collected moments before a
	// peer died must not overwrite the lease failure that just demoted
	// it.
	gen uint64
	// load is the member's last-probed capacity snapshot; hasLoad marks
	// whether any probe has seen one (the scheduler skips members of
	// unknown capacity rather than treating them as idle).
	load    sweepd.LoadInfo
	hasLoad bool
	// downSince is when the member entered down (zero otherwise); it
	// feeds the tombstone clock.
	downSince time.Time
}

// probeReply is what a successful health probe learns about a peer: its
// per-process identity and (when the endpoint serves one) its capacity
// snapshot.
type probeReply struct {
	instanceID string
	load       *sweepd.LoadInfo
}

// transport abstracts the three peer RPCs so the state-machine tests can
// drive transitions without real HTTP.
type transport interface {
	// probe checks liveness (GET /healthz); err == nil means alive. The
	// reply's instance ID ("" if the endpoint serves none) identifies
	// the process behind the URL; its load is the peer's capacity
	// snapshot (nil if the endpoint serves none).
	probe(url string) (probeReply, error)
	// hello announces self to url (POST /peer/hello); the response
	// carries the receiver's full gossip payload (members, leases,
	// tombstones), so a hello doubles as a gossip pull.
	hello(url, self string) (*sweepd.MembersResponse, error)
	// members pulls url's gossip payload (GET /peer/members).
	members(url string) (*sweepd.MembersResponse, error)
}

// Registry tracks live cluster membership: it probes every known peer's
// /healthz on a background loop, applies exponential backoff to down
// peers, learns new members from hellos and one-hop gossip (pulling
// /peer/members from each alive peer), and announces Self to peers it
// probes. It implements sweepd.Membership for the HTTP layer and
// shard.PeerSource (AlivePeers / ReportLeaseFailure) for the lease pool.
// A Registry is safe for concurrent use.
type Registry struct {
	opts  Options
	probe transport

	// now and randf are the clock and jitter source; tests inject fakes
	// to drive transitions deterministically (the gcOnce pattern).
	now   func() time.Time
	randf func() float64

	stop chan struct{}
	done chan struct{}
	// started/closed guard double Start/Close.
	started bool
	closed  bool

	// instanceID is this process's random identity, served in
	// ClusterStats so peers can tell "that URL is me" and "that peer
	// restarted" apart from plain liveness.
	instanceID string

	mu      sync.Mutex
	self    string
	members map[string]*member
	// selfURLs are URLs known to address this very daemon: the
	// configured Self plus any URL whose probe answered with our own
	// instance ID (a non-advertising daemon can learn its own URL from
	// gossip). They are never registered as members — a daemon must not
	// lease sweep work to itself over loopback HTTP.
	selfURLs map[string]bool
	// leases is the job-leadership table, keyed by job ID, merged from
	// local heartbeats, claim posts, and gossip under the generation
	// guard. seen (not the lease's own Updated stamp) feeds staleness.
	leases map[string]*leaseRec
	// tombs maps decommissioned URLs to their tombstone expiry.
	tombs map[string]time.Time
	// replicas maps member URL → the finished-job IDs it advertises
	// replicas of. Each entry comes only from that member's own gossiped
	// ReplicaAd (hearsay rejected), so a stale third party can never
	// point reads at a replica the holder dropped.
	replicas map[string][]string

	probes        atomic.Uint64
	probeFailures atomic.Uint64
	backoffs      atomic.Uint64
	readmissions  atomic.Uint64
	tombstoned    atomic.Uint64
}

// leaseRec wraps a stored lease with its local receipt time.
type leaseRec struct {
	lease sweepd.JobLease
	seen  time.Time
}

// New builds a registry over the options; call Start to launch the probe
// loop (tests drive probeOnce directly instead).
func New(opts Options) *Registry {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 5 * time.Second
	}
	if opts.DownAfter <= 0 {
		opts.DownAfter = 3
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Minute
	}
	if opts.BackoffMax < opts.ProbeInterval {
		opts.BackoffMax = opts.ProbeInterval
	}
	if opts.Client == nil {
		timeout := opts.ProbeInterval
		if timeout < 3*time.Second {
			timeout = 3 * time.Second
		}
		opts.Client = &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				Proxy: http.ProxyFromEnvironment,
				DialContext: (&net.Dialer{
					Timeout:   3 * time.Second,
					KeepAlive: 30 * time.Second,
				}).DialContext,
				TLSHandshakeTimeout: 3 * time.Second,
				MaxIdleConns:        16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if opts.LeaseExpiry <= 0 {
		opts.LeaseExpiry = 6 * opts.ProbeInterval
	}
	r := &Registry{
		opts:       opts,
		now:        time.Now,
		randf:      jitterRand,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		instanceID: newInstanceID(),
		self:       sweepd.NormalizePeerURL(opts.Self),
		members:    make(map[string]*member),
		selfURLs:   make(map[string]bool),
		leases:     make(map[string]*leaseRec),
		tombs:      make(map[string]time.Time),
		replicas:   make(map[string][]string),
	}
	if r.self != "" {
		r.selfURLs[r.self] = true
	}
	r.probe = &httpTransport{client: opts.Client}
	for _, s := range sweepd.NormalizePeerURLs(opts.Seeds) {
		if r.selfURLs[s] {
			continue
		}
		if !sweepd.ValidPeerURL(s) {
			// The same admission rule POST /peer/hello enforces: a typo'd
			// seed must not enter the member table and spread cluster-wide
			// by gossip with no pruning path.
			r.logf("cluster: dropping invalid seed peer URL %q", s)
			continue
		}
		// Seeds start alive and due immediately: the first probe cycle
		// confirms them, and a job submitted before it behaves exactly
		// like the old static -peers list.
		r.members[s] = &member{url: s, state: StateAlive}
	}
	return r
}

// logf forwards diagnostics to the configured sink, if any.
func (r *Registry) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// SetSelf installs (or replaces) the advertise URL after construction —
// test servers learn their URL only once listening. Call before Start.
func (r *Registry) SetSelf(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.self = sweepd.NormalizePeerURL(url)
	if r.self != "" {
		r.selfURLs[r.self] = true
	}
	delete(r.members, r.self)
}

// Start launches the background probe loop: an immediate cycle (so seeds
// are confirmed, Self announced, and member lists pulled right away),
// then one cycle per ProbeInterval until Close.
func (r *Registry) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.opts.ProbeInterval)
		defer ticker.Stop()
		r.probeOnce()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				r.probeOnce()
			}
		}
	}()
}

// Close stops the probe loop and waits for the in-flight cycle to
// drain. Safe to call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	started := r.started
	r.mu.Unlock()
	close(r.stop)
	if started {
		<-r.done
	}
}

// Hello implements sweepd.Membership: a peer announced itself, so it is
// demonstrably reachable — register it alive (reviving a down member)
// and let the probe loop take it from there.
func (r *Registry) Hello(advertiseURL string) {
	url := sweepd.NormalizePeerURL(advertiseURL)
	r.mu.Lock()
	defer r.mu.Unlock()
	if url == "" || r.selfURLs[url] {
		return
	}
	now := r.now()
	if _, dead := r.tombs[url]; dead {
		// The URL just proved reachability; its decommission is void.
		delete(r.tombs, url)
		r.logf("cluster: tombstone on %s lifted by hello", url)
	}
	m := r.members[url]
	if m == nil {
		m = &member{url: url}
		r.members[url] = m
		r.logf("cluster: peer %s joined via hello", url)
	}
	if m.state == StateDown {
		r.readmissions.Add(1)
		r.logf("cluster: peer %s down -> alive (re-hello)", url)
	}
	m.state = StateAlive
	m.fails = 0
	m.backoff = 0
	m.lastSeen = now
	m.next = now.Add(r.opts.ProbeInterval)
	m.gen++
}

// Members implements sweepd.Membership: the known cluster, self first,
// then peers sorted by URL. Each row carries the member's last-probed
// load (self's comes live from SelfLoad), so the member table doubles
// as the cluster's capacity map.
func (r *Registry) Members() []sweepd.MemberInfo {
	var selfLoad *sweepd.LoadInfo
	if r.opts.SelfLoad != nil {
		l := r.opts.SelfLoad()
		selfLoad = &l
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sweepd.MemberInfo, 0, len(r.members)+1)
	if r.self != "" {
		out = append(out, sweepd.MemberInfo{URL: r.self, State: string(StateAlive), Self: true, Load: selfLoad})
	}
	urls := make([]string, 0, len(r.members))
	for u := range r.members {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		m := r.members[u]
		mi := sweepd.MemberInfo{URL: m.url, State: string(m.state), LastSeen: m.lastSeen}
		if m.hasLoad {
			l := m.load
			mi.Load = &l
		}
		out = append(out, mi)
	}
	return out
}

// Self reports this daemon's advertise URL ("" when not advertising).
func (r *Registry) Self() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.self
}

// AliveLoads snapshots the alive members whose capacity is known,
// sorted by URL — the scheduler's placement candidates. Members no
// probe has load-sampled yet are excluded rather than treated as idle.
func (r *Registry) AliveLoads() []sweepd.MemberLoad {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sweepd.MemberLoad, 0, len(r.members))
	for u, m := range r.members {
		if m.state == StateAlive && m.hasLoad {
			out = append(out, sweepd.MemberLoad{URL: u, Load: m.load})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// UpdateLease implements sweepd.LeaseTable: record or refresh a job
// lease under the generation guard. The update wins when the job is
// unknown, the generation is strictly higher, or — at equal generation
// — the owner is unchanged (a heartbeat refresh) or lexicographically
// smaller (the deterministic tie-break two concurrent adopters
// converge on). Everything else is a stale claim and is rejected.
func (r *Registry) UpdateLease(l sweepd.JobLease) bool {
	if l.JobID == "" || l.Owner == "" || l.Generation == 0 {
		return false
	}
	l.Owner = sweepd.NormalizePeerURL(l.Owner)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.updateLeaseLocked(l)
}

func (r *Registry) updateLeaseLocked(l sweepd.JobLease) bool {
	cur := r.leases[l.JobID]
	switch {
	case cur == nil:
	case l.Generation > cur.lease.Generation:
	case l.Generation == cur.lease.Generation && l.Owner == cur.lease.Owner:
	case l.Generation == cur.lease.Generation && l.Owner < cur.lease.Owner:
		r.logf("cluster: job %s generation %d tie broken %s -> %s", l.JobID, l.Generation, cur.lease.Owner, l.Owner)
	default:
		return false
	}
	now := r.now()
	l.Updated = now
	r.leases[l.JobID] = &leaseRec{lease: l, seen: now}
	return true
}

// DropLease implements sweepd.LeaseTable: the job finished (or its
// leader released it), so remove the lease unless a higher generation
// has already claimed it.
func (r *Registry) DropLease(jobID string, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.leases[jobID]; cur != nil && cur.lease.Generation <= gen {
		delete(r.leases, jobID)
	}
}

// Leases implements sweepd.LeaseTable: the lease table sorted by job
// ID, each lease's Updated stamp being this registry's local receipt
// time (never a remote clock).
func (r *Registry) Leases() []sweepd.JobLease {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sweepd.JobLease, 0, len(r.leases))
	for _, rec := range r.leases {
		l := rec.lease
		l.Updated = rec.seen
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Tombstones implements sweepd.LeaseTable: active tombstones sorted by
// URL.
func (r *Registry) Tombstones() []sweepd.Tombstone {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sweepd.Tombstone, 0, len(r.tombs))
	for u, until := range r.tombs {
		out = append(out, sweepd.Tombstone{URL: u, Until: until})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// ClusterStats implements sweepd.Membership.
func (r *Registry) ClusterStats() sweepd.ClusterStats {
	r.mu.Lock()
	byState := map[string]int{string(StateAlive): 0, string(StateSuspect): 0, string(StateDown): 0}
	for _, m := range r.members {
		byState[string(m.state)]++
	}
	tombs := len(r.tombs)
	leases := len(r.leases)
	r.mu.Unlock()
	return sweepd.ClusterStats{
		InstanceID:     r.instanceID,
		MembersByState: byState,
		Probes:         r.probes.Load(),
		ProbeFailures:  r.probeFailures.Load(),
		Backoffs:       r.backoffs.Load(),
		Readmissions:   r.readmissions.Load(),
		Tombstones:     tombs,
		Tombstoned:     r.tombstoned.Load(),
		Leases:         leases,
	}
}

// AlivePeers implements shard.PeerSource: the members currently safe to
// lease to, sorted for deterministic fan-out.
func (r *Registry) AlivePeers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.members))
	for u, m := range r.members {
		if m.state == StateAlive {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// ReplicaHolders implements sweepd.ReplicaTable: the advertise URLs of
// ALIVE members whose own gossiped ad lists a replica of the job,
// sorted. The read fan-out path redirects misses here; a down holder is
// excluded so one-hop redirects never point at a corpse.
func (r *Registry) ReplicaHolders(jobID string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for u, ids := range r.replicas {
		m := r.members[u]
		if m == nil || m.state != StateAlive {
			continue
		}
		for _, id := range ids {
			if id == jobID {
				out = append(out, u)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// ReportLeaseFailure implements the shard pool's failure feedback: a
// lease against an alive peer failed, so demote it to suspect and probe
// it promptly — subsequent jobs skip it until a probe revives it,
// instead of each job rediscovering the corpse at lease-TTL cost.
func (r *Registry) ReportLeaseFailure(url string) {
	url = sweepd.NormalizePeerURL(url)
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[url]
	if m == nil || m.state != StateAlive {
		return
	}
	m.state = StateSuspect
	m.next = r.now() // due on the next cycle
	m.helloed = false
	m.gen++
	r.logf("cluster: peer %s alive -> suspect (lease failed)", url)
}

// probeOnce runs one probe cycle: dial every due member's /healthz
// concurrently, apply the state transitions, announce Self to newly
// confirmed peers, and merge their member lists (one-hop gossip).
func (r *Registry) probeOnce() {
	now := r.now()
	r.mu.Lock()
	self := r.self
	due := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		// Alive and suspect members are probed every cycle; only down
		// members wait out their backoff deadline. Gating the healthy
		// ones on a timestamp set mid-cycle would silently skip every
		// other tick.
		if m.state != StateDown || !m.next.After(now) {
			due = append(due, m)
		}
	}
	urls := make([]string, len(due))
	needHello := make([]bool, len(due))
	gens := make([]uint64, len(due))
	for i, m := range due {
		urls[i] = m.url
		needHello[i] = self != "" && !m.helloed
		gens[i] = m.gen
	}
	r.mu.Unlock()

	type outcome struct {
		ok       bool
		id       string
		load     *sweepd.LoadInfo
		helloed  bool
		helloErr string
		learned  *sweepd.MembersResponse
	}
	results := make([]outcome, len(due))
	var wg sync.WaitGroup
	for i := range due {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := urls[i]
			r.probes.Add(1)
			reply, err := r.probe.probe(url)
			if err != nil {
				r.probeFailures.Add(1)
				return
			}
			res := outcome{ok: true, id: reply.instanceID, load: reply.load}
			gossiped := false
			if needHello[i] {
				if mr, herr := r.probe.hello(url, self); herr == nil {
					// The hello response carries the gossip payload, so a
					// successful announcement doubles as this cycle's
					// gossip pull.
					res.helloed = true
					res.learned = mr
					gossiped = true
				} else {
					res.helloErr = herr.Error()
				}
			}
			if !gossiped {
				if mr, merr := r.probe.members(url); merr == nil {
					res.learned = mr
				}
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	now = r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, m := range due {
		if m.gen != gens[i] {
			// The member's state moved while this probe was in flight (a
			// hello revived it, or a lease failure demoted it); the probe
			// observed the old world, so its verdict is stale — drop it
			// and let the next cycle re-decide.
			continue
		}
		res := results[i]
		if res.ok {
			if res.id != "" && res.id == r.instanceID {
				// The member answered with our own instance ID: it is this
				// very daemon behind a URL we did not know was ours (a
				// non-advertising daemon's URL travels back via gossip from
				// the peers it seeds). Never lease to yourself — blacklist
				// the URL and drop the member.
				r.logf("cluster: %s is this daemon itself (instance %s); dropping", m.url, r.instanceID)
				r.selfURLs[m.url] = true
				delete(r.members, m.url)
				continue
			}
			if m.instanceID != "" && res.id != m.instanceID {
				// Same URL, new process: the peer restarted without
				// missing a probe, so its member table (and our hello) is
				// gone — re-announce next cycle.
				m.helloed = false
			}
			m.instanceID = res.id
			if res.load != nil {
				m.load = *res.load
				m.hasLoad = true
			}
			if m.state == StateDown {
				r.readmissions.Add(1)
			}
			if m.state != StateAlive {
				r.logf("cluster: peer %s %s -> alive", m.url, m.state)
			}
			m.state = StateAlive
			m.fails = 0
			m.backoff = 0
			m.downSince = time.Time{}
			m.lastSeen = now
			m.next = now.Add(r.opts.ProbeInterval)
			if res.helloed {
				m.helloed = true
				m.lastHelloErr = ""
			} else if res.helloErr != "" && res.helloErr != m.lastHelloErr {
				// A refused announcement means this daemon may never join
				// that peer's cluster (typically a bad -advertise URL);
				// say so once per distinct error, not once per cycle.
				r.logf("cluster: hello to %s rejected: %s", m.url, res.helloErr)
				m.lastHelloErr = res.helloErr
			}
			if res.learned != nil {
				r.mergeGossipLocked(m.url, res.learned, now)
			}
			continue
		}
		m.fails++
		// Any failure invalidates our standing announcement: if the peer
		// is restarting right now, the new process will not know us.
		m.helloed = false
		if m.fails < r.opts.DownAfter {
			if m.state != StateSuspect {
				r.logf("cluster: peer %s %s -> suspect (probe failed)", m.url, m.state)
			}
			m.state = StateSuspect
			m.next = now.Add(r.opts.ProbeInterval)
			continue
		}
		if m.state != StateDown {
			r.logf("cluster: peer %s %s -> down after %d consecutive probe failures", m.url, m.state, m.fails)
			m.downSince = now
		}
		m.state = StateDown
		prev := m.backoff
		if m.backoff == 0 {
			m.backoff = r.opts.ProbeInterval
		} else {
			m.backoff *= 2
		}
		if m.backoff > r.opts.BackoffMax {
			m.backoff = r.opts.BackoffMax
		}
		if m.backoff > prev {
			// Count actual raises only: a permanently dead peer parked at
			// the cap must not read as "flapping" on the backoff counter.
			r.backoffs.Add(1)
		}
		// Jitter in [backoff/2, backoff]: flapping peers spread out
		// instead of re-probing in lockstep.
		jittered := m.backoff/2 + time.Duration(r.randf()*float64(m.backoff/2))
		m.next = now.Add(jittered)
	}
	r.maintainLocked(now)
}

// mergeGossipLocked folds one peer's gossip payload into local state:
// unknown member URLs join as suspect, job leases merge under the
// generation guard (with the pulled peer authoritative for its own
// leases), and tombstones decommission members we cannot vouch for
// firsthand. Caller holds r.mu; from is the peer the payload came from.
func (r *Registry) mergeGossipLocked(from string, mr *sweepd.MembersResponse, now time.Time) {
	for _, mi := range mr.Members {
		u := sweepd.NormalizePeerURL(mi.URL)
		if u == "" || r.selfURLs[u] || r.members[u] != nil {
			continue
		}
		if _, dead := r.tombs[u]; dead {
			// Decommissioned: gossip alone must not resurrect the URL (a
			// hello or our own probe of a live process will).
			continue
		}
		if !sweepd.ValidPeerURL(u) {
			r.logf("cluster: ignoring invalid gossiped peer URL %q from %s", u, from)
			continue
		}
		// Gossip-learned members start suspect: secondhand news is
		// verified by a probe (due immediately) before any lease rides
		// on it. Their gossiped load rides along so the first placement
		// after promotion does not wait another probe cycle.
		m := &member{url: u, state: StateSuspect}
		if mi.Load != nil {
			m.load = *mi.Load
			m.hasLoad = true
		}
		r.members[u] = m
	}

	// The pulled peer is authoritative for its own leases: merge what it
	// lists, then drop any lease it owns that it stopped listing (its
	// job finished and our copy is the leftover).
	fromOwns := make(map[string]bool)
	for _, l := range mr.Leases {
		l.Owner = sweepd.NormalizePeerURL(l.Owner)
		if l.JobID == "" || l.Owner == "" || l.Generation == 0 {
			continue
		}
		if l.Owner == r.self {
			// Our own leases are heartbeat firsthand by the scheduler; a
			// gossip echo must not refresh a lease whose local owner died.
			continue
		}
		if l.Owner == from {
			fromOwns[l.JobID] = true
		} else if cur := r.leases[l.JobID]; cur != nil &&
			cur.lease.Generation == l.Generation && cur.lease.Owner == l.Owner {
			// Hearsay must not refresh a lease we already hold: only the
			// owner itself vouches for its leader being alive (a pull from
			// the owner, or its claim broadcast). Otherwise two survivors
			// echoing a dead leader's lease at each other would keep it
			// forever fresh and no one would ever adopt the job.
			continue
		}
		r.updateLeaseLocked(l)
	}
	for id, rec := range r.leases {
		if rec.lease.Owner == from && !fromOwns[id] {
			delete(r.leases, id)
		}
	}

	// Replica ads are firsthand-only: the pulled peer is authoritative
	// for which replicas IT holds, and for nothing else. Its latest ad
	// replaces our previous copy wholesale (an empty or absent ad means
	// it holds none — GC may have expired them).
	var fromAd *sweepd.ReplicaAd
	for i := range mr.Replicas {
		if sweepd.NormalizePeerURL(mr.Replicas[i].URL) == from {
			fromAd = &mr.Replicas[i]
			break
		}
	}
	if fromAd != nil && len(fromAd.JobIDs) > 0 {
		r.replicas[from] = append([]string(nil), fromAd.JobIDs...)
	} else {
		delete(r.replicas, from)
	}

	for _, ts := range mr.Tombstones {
		u := sweepd.NormalizePeerURL(ts.URL)
		if u == "" || r.selfURLs[u] || !ts.Until.After(now) {
			continue
		}
		if m := r.members[u]; m != nil && m.state == StateAlive {
			// Firsthand liveness beats a secondhand death certificate; our
			// next probe cycle's hello will lift the tombstone at source.
			continue
		}
		if cur, ok := r.tombs[u]; !ok || ts.Until.After(cur) {
			if !ok {
				r.logf("cluster: peer %s decommissioned by gossiped tombstone", u)
			}
			r.tombs[u] = ts.Until
		}
		delete(r.members, u)
	}
}

// maintainLocked runs the per-cycle housekeeping: decommission members
// that have been down past TombstoneAfter, expire tombstones, and drop
// leases an alive owner stopped refreshing. Caller holds r.mu.
func (r *Registry) maintainLocked(now time.Time) {
	if ta := r.opts.TombstoneAfter; ta > 0 {
		for u, m := range r.members {
			if m.state != StateDown {
				continue
			}
			if m.downSince.IsZero() {
				m.downSince = now
				continue
			}
			if now.Sub(m.downSince) >= ta {
				delete(r.members, u)
				r.tombs[u] = now.Add(ta)
				r.tombstoned.Add(1)
				r.logf("cluster: peer %s down for %v; decommissioned (tombstone until %v)", u, now.Sub(m.downSince), now.Add(ta))
			}
		}
	}
	for u, until := range r.tombs {
		if !until.After(now) {
			delete(r.tombs, u)
		}
	}
	for u := range r.replicas {
		if r.members[u] == nil {
			delete(r.replicas, u)
		}
	}
	for id, rec := range r.leases {
		owner := rec.lease.Owner
		ownerPresent := owner == r.self
		if m := r.members[owner]; m != nil && m.state != StateDown {
			ownerPresent = true
		}
		// A lease whose owner is down or gone is exactly what adoption
		// feeds on — only leases an apparently healthy owner stopped
		// refreshing are garbage.
		if ownerPresent && now.Sub(rec.seen) >= r.opts.LeaseExpiry {
			delete(r.leases, id)
			r.logf("cluster: lease on job %s by %s expired unrefreshed", id, owner)
		}
	}
}

// httpTransport is the production transport over the sweepd HTTP API.
type httpTransport struct {
	client *http.Client
}

func (t *httpTransport) probe(url string) (probeReply, error) {
	resp, err := t.client.Get(url + "/healthz")
	if err != nil {
		return probeReply{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64*1024)) //nolint:errcheck // drain for reuse
		return probeReply{}, fmt.Errorf("cluster: %s/healthz: %s", url, resp.Status)
	}
	// The instance ID and load snapshot ride in the healthz payload; a
	// daemon without them (or a non-sweepd endpoint) just probes as
	// alive with no identity and unknown capacity.
	var payload struct {
		Cluster struct {
			InstanceID string `json:"instance_id"`
		} `json:"cluster"`
		Load *sweepd.LoadInfo `json:"load"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&payload); err != nil {
		return probeReply{}, nil //nolint:nilerr // a 200 with an odd body is still alive
	}
	return probeReply{instanceID: payload.Cluster.InstanceID, load: payload.Load}, nil
}

func (t *httpTransport) hello(url, self string) (*sweepd.MembersResponse, error) {
	body, err := json.Marshal(sweepd.HelloRequest{AdvertiseURL: self})
	if err != nil {
		return nil, err
	}
	resp, err := t.client.Post(url+"/peer/hello", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: %s/peer/hello: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	// The response is the receiver's gossip payload — the announcer's
	// first gossip pull.
	var mr sweepd.MembersResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&mr); err != nil {
		return nil, nil //nolint:nilerr // announced fine; just no table to merge
	}
	return &mr, nil
}

func (t *httpTransport) members(url string) (*sweepd.MembersResponse, error) {
	resp, err := t.client.Get(url + "/peer/members")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return nil, fmt.Errorf("cluster: %s/peer/members: %s", url, resp.Status)
	}
	var mr sweepd.MembersResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&mr); err != nil {
		return nil, err
	}
	return &mr, nil
}
