package cluster

// State-machine tests for the membership registry, driven through an
// injectable clock, jitter source, and transport (the gcOnce pattern
// from the manager's TTL tests): every transition — alive → suspect →
// down → backed off → readmitted — is pinned without a sleep or a
// socket.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sweepd"
)

// fakeTransport scripts peer reachability, identities, loads, and
// gossip payloads (member lists plus optional leases/tombstones).
type fakeTransport struct {
	mu      sync.Mutex
	up      map[string]bool
	ids     map[string]string
	loads   map[string]*sweepd.LoadInfo
	lists   map[string][]string
	leases  map[string][]sweepd.JobLease
	tombs   map[string][]sweepd.Tombstone
	hellos  []string
	probed  map[string]int
	helloOK bool
}

func newFakeTransport(up ...string) *fakeTransport {
	t := &fakeTransport{
		up:      make(map[string]bool),
		ids:     make(map[string]string),
		loads:   make(map[string]*sweepd.LoadInfo),
		lists:   make(map[string][]string),
		leases:  make(map[string][]sweepd.JobLease),
		tombs:   make(map[string][]sweepd.Tombstone),
		probed:  make(map[string]int),
		helloOK: true,
	}
	for _, u := range up {
		t.up[u] = true
	}
	return t
}

func (t *fakeTransport) setUp(url string, up bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.up[url] = up
}

func (t *fakeTransport) setID(url, id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ids[url] = id
}

func (t *fakeTransport) setLoad(url string, l sweepd.LoadInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loads[url] = &l
}

func (t *fakeTransport) probe(url string) (probeReply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.probed[url]++
	if t.up[url] {
		return probeReply{instanceID: t.ids[url], load: t.loads[url]}, nil
	}
	return probeReply{}, errors.New("unreachable")
}

// payload assembles url's gossip payload the way the real endpoint
// would. Caller holds t.mu.
func (t *fakeTransport) payload(url string) *sweepd.MembersResponse {
	mr := &sweepd.MembersResponse{
		Leases:     t.leases[url],
		Tombstones: t.tombs[url],
	}
	for _, u := range t.lists[url] {
		mr.Members = append(mr.Members, sweepd.MemberInfo{URL: u, State: "alive"})
	}
	return mr
}

func (t *fakeTransport) hello(url, self string) (*sweepd.MembersResponse, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hellos = append(t.hellos, fmt.Sprintf("%s<-%s", url, self))
	if !t.helloOK {
		return nil, errors.New("hello refused")
	}
	// Like the real endpoint, a hello answers with the gossip payload.
	return t.payload(url), nil
}

func (t *fakeTransport) members(url string) (*sweepd.MembersResponse, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.payload(url), nil
}

func (t *fakeTransport) probeCount(url string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.probed[url]
}

// testRegistry builds a registry with a controllable clock (start time
// t0), full jitter (randf = 1 so backoff delays are exact), and the
// given fake transport.
func testRegistry(opts Options, tr *fakeTransport) (*Registry, *time.Time) {
	r := New(opts)
	t0 := time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC)
	now := &t0
	r.now = func() time.Time { return *now }
	r.randf = func() float64 { return 1 }
	r.probe = tr
	return r, now
}

func stateOf(t *testing.T, r *Registry, url string) State {
	t.Helper()
	for _, m := range r.Members() {
		if m.URL == url && !m.Self {
			return State(m.State)
		}
	}
	t.Fatalf("member %s not found", url)
	return ""
}

const peerA = "http://a:1"

// TestSeedLifecycle walks one seed through the full state machine:
// optimistically alive, suspect on first failure, down after DownAfter
// consecutive failures, probe attempts spaced by a doubling capped
// backoff, and readmission the moment a probe succeeds.
func TestSeedLifecycle(t *testing.T) {
	tr := newFakeTransport(peerA)
	r, now := testRegistry(Options{
		Seeds:         []string{peerA},
		ProbeInterval: 10 * time.Second,
		DownAfter:     3,
		BackoffMax:    40 * time.Second,
	}, tr)

	// Seeds are alive before any probe — a job submitted at boot leases
	// to them exactly as the static list did.
	if got := r.AlivePeers(); len(got) != 1 || got[0] != peerA {
		t.Fatalf("AlivePeers before first probe = %v", got)
	}

	r.probeOnce()
	if st := stateOf(t, r, peerA); st != StateAlive {
		t.Fatalf("after successful probe: state = %s", st)
	}

	// Fail 1: alive → suspect. Fail 2: still suspect. Fail 3: down.
	tr.setUp(peerA, false)
	for i, want := range []State{StateSuspect, StateSuspect, StateDown} {
		*now = now.Add(10 * time.Second)
		r.probeOnce()
		if st := stateOf(t, r, peerA); st != want {
			t.Fatalf("after failure %d: state = %s, want %s", i+1, st, want)
		}
		if got := r.AlivePeers(); len(got) != 0 {
			t.Fatalf("after failure %d: AlivePeers = %v, want none", i+1, got)
		}
	}
	st := r.ClusterStats()
	if st.Probes != 4 || st.ProbeFailures != 3 {
		t.Fatalf("stats after 3 failures: %+v", st)
	}
	if st.Backoffs != 1 {
		t.Fatalf("entering down should raise the backoff once: %+v", st)
	}

	// Backoff doubles 10s → 20s → 40s and caps there (randf=1 makes the
	// jittered delay exactly the backoff). A cycle before the deadline
	// must not dial the peer at all.
	probes := tr.probeCount(peerA)
	*now = now.Add(5 * time.Second)
	r.probeOnce()
	if tr.probeCount(peerA) != probes {
		t.Fatal("down peer probed before its backoff expired")
	}
	for _, wantBackoff := range []time.Duration{20 * time.Second, 40 * time.Second, 40 * time.Second} {
		*now = now.Add(41 * time.Second) // past any current backoff
		r.probeOnce()
		r.mu.Lock()
		got := r.members[peerA].backoff
		r.mu.Unlock()
		if got != wantBackoff {
			t.Fatalf("backoff = %v, want %v", got, wantBackoff)
		}
	}
	// Three actual raises (10s on entering down, →20s, →40s); the probe
	// at the 40s cap must NOT count — a parked corpse is not flapping.
	if got := r.ClusterStats().Backoffs; got != 3 {
		t.Fatalf("backoffs = %d, want 3 (raises only, not probes at the cap)", got)
	}

	// Readmission: the peer comes back, the next due probe revives it.
	tr.setUp(peerA, true)
	*now = now.Add(41 * time.Second)
	r.probeOnce()
	if st := stateOf(t, r, peerA); st != StateAlive {
		t.Fatalf("after recovery probe: state = %s", st)
	}
	if got := r.AlivePeers(); len(got) != 1 {
		t.Fatalf("readmitted peer missing from AlivePeers: %v", got)
	}
	cs := r.ClusterStats()
	if cs.Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", cs.Readmissions)
	}
	r.mu.Lock()
	m := r.members[peerA]
	if m.backoff != 0 || m.fails != 0 {
		r.mu.Unlock()
		t.Fatalf("readmission must reset backoff/fails: %+v", m)
	}
	r.mu.Unlock()
}

// TestFlappingPeerBackoffAndReadmission is the acceptance-criterion
// scenario: a peer killed then restarted is backed off while dead and
// readmitted by the probe loop once it returns.
func TestFlappingPeerBackoffAndReadmission(t *testing.T) {
	tr := newFakeTransport(peerA)
	r, now := testRegistry(Options{
		Seeds:         []string{peerA},
		ProbeInterval: time.Second,
		DownAfter:     2,
		BackoffMax:    8 * time.Second,
	}, tr)

	flaps := 0
	for cycle := 0; cycle < 3; cycle++ {
		// Kill: two failed probes take it down.
		tr.setUp(peerA, false)
		for stateOf(t, r, peerA) != StateDown {
			*now = now.Add(9 * time.Second)
			r.probeOnce()
		}
		if len(r.AlivePeers()) != 0 {
			t.Fatalf("cycle %d: dead peer still leased to", cycle)
		}
		// Restart: the next due probe readmits it.
		tr.setUp(peerA, true)
		*now = now.Add(9 * time.Second)
		r.probeOnce()
		if st := stateOf(t, r, peerA); st != StateAlive {
			t.Fatalf("cycle %d: state after restart = %s", cycle, st)
		}
		flaps++
		if got := r.ClusterStats().Readmissions; got != uint64(flaps) {
			t.Fatalf("cycle %d: readmissions = %d, want %d", cycle, got, flaps)
		}
	}
}

// TestJitterBounds pins the backoff jitter window: with randf spanning
// its range, the scheduled delay stays within [backoff/2, backoff].
func TestJitterBounds(t *testing.T) {
	for _, frac := range []float64{0, 0.5, 1} {
		tr := newFakeTransport()
		r, now := testRegistry(Options{
			Seeds:         []string{peerA},
			ProbeInterval: 10 * time.Second,
			DownAfter:     1,
			BackoffMax:    time.Hour,
		}, tr)
		r.randf = func() float64 { return frac }
		r.probeOnce() // peer down, backoff = interval
		r.mu.Lock()
		delay := r.members[peerA].next.Sub(*now)
		r.mu.Unlock()
		lo, hi := 5*time.Second, 10*time.Second
		if delay < lo || delay > hi {
			t.Fatalf("randf=%v: delay %v outside [%v, %v]", frac, delay, lo, hi)
		}
	}
}

// TestHelloRegistersAlive: an announced peer is alive immediately (it
// just proved reachability), a re-hello of a down peer counts as a
// readmission, and self/garbage are ignored.
func TestHelloRegistersAlive(t *testing.T) {
	tr := newFakeTransport()
	r, now := testRegistry(Options{
		Self:          "http://self:1",
		ProbeInterval: 10 * time.Second,
		DownAfter:     1,
	}, tr)

	r.Hello("http://b:2/")
	if got := r.AlivePeers(); len(got) != 1 || got[0] != "http://b:2" {
		t.Fatalf("AlivePeers after hello = %v", got)
	}

	// Unreachable until it re-announces: down, then hello revives it.
	*now = now.Add(10 * time.Second)
	r.probeOnce()
	if st := stateOf(t, r, "http://b:2"); st != StateDown {
		t.Fatalf("state after failed probe = %s", st)
	}
	r.Hello("http://b:2")
	if st := stateOf(t, r, "http://b:2"); st != StateAlive {
		t.Fatalf("state after re-hello = %s", st)
	}
	if got := r.ClusterStats().Readmissions; got != 1 {
		t.Fatalf("readmissions = %d, want 1", got)
	}

	r.Hello("http://self:1") // self-hello must not self-register
	r.Hello("")
	if n := len(r.Members()); n != 2 { // self + b
		t.Fatalf("members = %d, want 2 (self + b)", n)
	}
}

// TestGossipLearnsNewMembers: a probe of an alive seed pulls its member
// list; unknown URLs join as suspect and are promoted by their own
// probe — never leased to on hearsay alone.
func TestGossipLearnsNewMembers(t *testing.T) {
	seed := "http://seed:1"
	newbie := "http://new:2"
	tr := newFakeTransport(seed, newbie)
	tr.lists[seed] = []string{seed, newbie + "/", "http://self:9"}
	r, now := testRegistry(Options{
		Self:          "http://self:9",
		Seeds:         []string{seed},
		ProbeInterval: 10 * time.Second,
	}, tr)

	r.probeOnce()
	if st := stateOf(t, r, newbie); st != StateSuspect {
		t.Fatalf("gossip-learned member state = %s, want suspect", st)
	}
	if got := r.AlivePeers(); len(got) != 1 || got[0] != seed {
		t.Fatalf("AlivePeers right after gossip = %v (hearsay must not be leased to)", got)
	}
	// The newbie is due immediately; the next cycle confirms it.
	r.probeOnce()
	if st := stateOf(t, r, newbie); st != StateAlive {
		t.Fatalf("state after verification probe = %s", st)
	}
	if got := r.AlivePeers(); len(got) != 2 {
		t.Fatalf("AlivePeers after verification = %v", got)
	}
	_ = now
}

// TestHelloAnnouncedOncePerEpoch: Self is announced to a peer on its
// first successful probe, not re-announced while it stays alive, and
// re-announced after it went down and came back (it lost its table).
func TestHelloAnnouncedOncePerEpoch(t *testing.T) {
	tr := newFakeTransport(peerA)
	r, now := testRegistry(Options{
		Self:          "http://self:1",
		Seeds:         []string{peerA},
		ProbeInterval: 10 * time.Second,
		DownAfter:     1,
	}, tr)

	r.probeOnce()
	*now = now.Add(10 * time.Second)
	r.probeOnce()
	if n := len(tr.hellos); n != 1 {
		t.Fatalf("hellos after two alive probes = %d, want 1", n)
	}
	tr.setUp(peerA, false)
	*now = now.Add(10 * time.Second)
	r.probeOnce() // down; helloed flag cleared
	tr.setUp(peerA, true)
	*now = now.Add(11 * time.Second)
	r.probeOnce() // readmitted; re-announced
	if n := len(tr.hellos); n != 2 {
		t.Fatalf("hellos after readmission = %d, want 2", n)
	}
}

// TestReportLeaseFailureDemotes: the shard pool's failure feedback
// demotes an alive peer to suspect, removing it from AlivePeers until a
// probe revives it.
func TestReportLeaseFailureDemotes(t *testing.T) {
	tr := newFakeTransport(peerA)
	r, _ := testRegistry(Options{
		Seeds:         []string{peerA},
		ProbeInterval: 10 * time.Second,
	}, tr)

	r.ReportLeaseFailure(peerA + "/")
	if st := stateOf(t, r, peerA); st != StateSuspect {
		t.Fatalf("state after lease failure = %s", st)
	}
	if got := r.AlivePeers(); len(got) != 0 {
		t.Fatalf("demoted peer still in AlivePeers: %v", got)
	}
	// The peer is due immediately; a successful probe readmits it.
	r.probeOnce()
	if st := stateOf(t, r, peerA); st != StateAlive {
		t.Fatalf("state after revival probe = %s", st)
	}
	// Feedback about unknown peers is ignored, not registered.
	r.ReportLeaseFailure("http://stranger:1")
	if n := len(r.Members()); n != 1 {
		t.Fatalf("members after stranger feedback = %d, want 1", n)
	}
}

// TestAliveProbedEveryCycle pins the probing cadence: alive and suspect
// members are dialed on every cycle regardless of when the previous
// cycle stamped them, so wall-clock jitter between ticks can never
// silently halve the effective probe rate (and with it, failure
// detection and gossip speed).
func TestAliveProbedEveryCycle(t *testing.T) {
	tr := newFakeTransport(peerA)
	r, _ := testRegistry(Options{
		Seeds:         []string{peerA},
		ProbeInterval: 10 * time.Second,
	}, tr)
	r.probeOnce()
	r.probeOnce() // same fake instant: an alive member is still due
	if got := tr.probeCount(peerA); got != 2 {
		t.Fatalf("alive member probed %d times over 2 cycles, want 2", got)
	}
	tr.setUp(peerA, false)
	r.probeOnce() // suspect now
	r.probeOnce() // suspect members are due every cycle too
	if got := tr.probeCount(peerA); got != 4 {
		t.Fatalf("suspect member probed %d times over 4 cycles, want 4", got)
	}
}

// TestHelloResponseMergedAsGossip: a successful hello's response body is
// the receiver's member table and must be merged, so a joiner learns the
// cluster in its very first announcement round-trip.
func TestHelloResponseMergedAsGossip(t *testing.T) {
	seed := "http://seed:1"
	other := "http://other:2"
	tr := newFakeTransport(seed)
	tr.lists[seed] = []string{seed, other}
	r, _ := testRegistry(Options{
		Self:          "http://self:9",
		Seeds:         []string{seed},
		ProbeInterval: 10 * time.Second,
	}, tr)
	r.probeOnce() // probe + hello; the hello response carries the table
	if st := stateOf(t, r, other); st != StateSuspect {
		t.Fatalf("member from hello response: state = %s, want suspect", st)
	}
}

// TestInvalidURLsRejected: the admission rule peerHello enforces applies
// to seeds and gossip too — a malformed URL neither enters the table nor
// spreads cluster-wide.
func TestInvalidURLsRejected(t *testing.T) {
	seed := "http://seed:1"
	tr := newFakeTransport(seed)
	tr.lists[seed] = []string{seed, "htp://typo:2", "not a url", "http://good:3"}
	r, _ := testRegistry(Options{
		Seeds:         []string{seed, "htp://badseed:9"},
		ProbeInterval: 10 * time.Second,
	}, tr)
	for _, m := range r.Members() {
		if m.URL == "htp://badseed:9" {
			t.Fatal("invalid seed URL entered the member table")
		}
	}
	r.probeOnce()
	var urls []string
	for _, m := range r.Members() {
		urls = append(urls, m.URL)
	}
	for _, bad := range []string{"htp://typo:2", "not a url"} {
		for _, u := range urls {
			if u == bad {
				t.Fatalf("invalid gossiped URL %q entered the member table", bad)
			}
		}
	}
	if st := stateOf(t, r, "http://good:3"); st != StateSuspect {
		t.Fatalf("valid gossiped URL missing (members: %v)", urls)
	}
}

// TestStaleProbeResultDropped: a probe success collected while the
// member's state moved underneath it (here: a lease failure demoting
// the peer mid-cycle) must be discarded, not resurrect the peer.
func TestStaleProbeResultDropped(t *testing.T) {
	demote := make(chan struct{})
	proceed := make(chan struct{})
	tr := newFakeTransport(peerA)
	r, _ := testRegistry(Options{
		Seeds:         []string{peerA},
		ProbeInterval: 10 * time.Second,
	}, tr)
	// Wrap the transport: the probe dials (and succeeds) first, then the
	// demotion lands before the cycle applies its result.
	r.probe = probeHook{transport: tr, after: func() {
		close(demote)
		<-proceed
	}}
	go func() {
		<-demote
		r.ReportLeaseFailure(peerA)
		close(proceed)
	}()
	r.probeOnce()
	if st := stateOf(t, r, peerA); st != StateSuspect {
		t.Fatalf("stale probe success overwrote the demotion: state = %s", st)
	}
}

// probeHook runs a callback after each probe dial, before the cycle can
// apply the result.
type probeHook struct {
	transport
	after func()
}

func (p probeHook) probe(url string) (probeReply, error) {
	reply, err := p.transport.probe(url)
	p.after()
	return reply, err
}

// TestSelfLearnedByGossipIsDropped: a non-advertising daemon's own URL
// can travel back to it via gossip (its joiners list their seed). The
// probe answers with the registry's own instance ID, so the member must
// be dropped and the URL blacklisted — a daemon never leases sweep work
// to itself over loopback HTTP.
func TestSelfLearnedByGossipIsDropped(t *testing.T) {
	seed := "http://seed:1"
	myURL := "http://me:9" // this daemon's unadvertised URL
	tr := newFakeTransport(seed, myURL)
	tr.lists[seed] = []string{seed, myURL}
	r, _ := testRegistry(Options{
		Seeds:         []string{seed},
		ProbeInterval: 10 * time.Second,
	}, tr)
	tr.setID(myURL, r.instanceID) // probing myURL reaches ourselves

	r.probeOnce() // pulls gossip: myURL joins as suspect
	if st := stateOf(t, r, myURL); st != StateSuspect {
		t.Fatalf("gossiped self state = %s, want suspect pending verification", st)
	}
	r.probeOnce() // verification probe sees our own instance ID
	for _, m := range r.Members() {
		if m.URL == myURL {
			t.Fatalf("own URL still a member after identity check: %+v", m)
		}
	}
	if got := r.AlivePeers(); len(got) != 1 || got[0] != seed {
		t.Fatalf("AlivePeers = %v, want just the seed", got)
	}
	// Blacklisted for good: gossip and hellos cannot re-register it.
	r.probeOnce()
	r.Hello(myURL)
	for _, m := range r.Members() {
		if m.URL == myURL {
			t.Fatal("own URL re-registered after blacklisting")
		}
	}
}

// TestRestartedPeerIsReannounced: a peer that restarts fast enough to
// never miss a probe still changes its instance ID; the registry must
// notice and re-announce Self, or the restarted peer (member table
// wiped) would never learn us again.
func TestRestartedPeerIsReannounced(t *testing.T) {
	tr := newFakeTransport(peerA)
	tr.setID(peerA, "epoch-1")
	r, now := testRegistry(Options{
		Self:          "http://self:1",
		Seeds:         []string{peerA},
		ProbeInterval: 10 * time.Second,
	}, tr)

	r.probeOnce() // confirm + announce
	if n := len(tr.hellos); n != 1 {
		t.Fatalf("hellos after first probe = %d, want 1", n)
	}
	tr.setID(peerA, "epoch-2") // restart between probes, no probe missed
	*now = now.Add(10 * time.Second)
	r.probeOnce() // detects the new epoch, clears helloed
	*now = now.Add(10 * time.Second)
	r.probeOnce() // re-announces
	if n := len(tr.hellos); n != 2 {
		t.Fatalf("hellos after peer restart = %d, want 2", n)
	}
}

// TestSuspectClearsHello: even one failed probe invalidates the
// standing announcement (the peer may be mid-restart), so recovery
// through suspect — short of down — still re-announces.
func TestSuspectClearsHello(t *testing.T) {
	tr := newFakeTransport(peerA)
	r, now := testRegistry(Options{
		Self:          "http://self:1",
		Seeds:         []string{peerA},
		ProbeInterval: 10 * time.Second,
		DownAfter:     3,
	}, tr)

	r.probeOnce() // announce #1
	tr.setUp(peerA, false)
	*now = now.Add(10 * time.Second)
	r.probeOnce() // one failure: suspect, hello invalidated
	tr.setUp(peerA, true)
	*now = now.Add(10 * time.Second)
	r.probeOnce() // recovered without ever reaching down
	*now = now.Add(10 * time.Second)
	r.probeOnce() // re-announce lands here at the latest
	if n := len(tr.hellos); n != 2 {
		t.Fatalf("hellos after suspect dip = %d, want 2", n)
	}
}

// TestSeedNormalizationAndDedup: seeds are normalized, deduped, and
// self-filtered at construction.
func TestSeedNormalizationAndDedup(t *testing.T) {
	tr := newFakeTransport()
	r, _ := testRegistry(Options{
		Self:  "http://self:1",
		Seeds: []string{"http://a:1/", " http://a:1 ", "", "http://self:1/", "http://b:2"},
	}, tr)
	members := r.Members()
	var urls []string
	for _, m := range members {
		if !m.Self {
			urls = append(urls, m.URL)
		}
	}
	if len(urls) != 2 || urls[0] != "http://a:1" || urls[1] != "http://b:2" {
		t.Fatalf("seed members = %v", urls)
	}
}

// TestMembersSelfFirst pins the wire shape the joiner relies on: self
// leads the list and carries the Self marker.
func TestMembersSelfFirst(t *testing.T) {
	tr := newFakeTransport()
	r, _ := testRegistry(Options{Self: "http://self:1", Seeds: []string{peerA}}, tr)
	ms := r.Members()
	if len(ms) != 2 || !ms[0].Self || ms[0].URL != "http://self:1" {
		t.Fatalf("members = %+v", ms)
	}
	if ms[1].Self || ms[1].URL != peerA {
		t.Fatalf("peer row = %+v", ms[1])
	}
	var _ sweepd.Membership = r // compile-time interface checks
}

// TestStartStopLifecycle exercises the real probe loop briefly: Start
// probes immediately, Close joins the loop.
func TestStartStopLifecycle(t *testing.T) {
	tr := newFakeTransport(peerA)
	r := New(Options{Seeds: []string{peerA}, ProbeInterval: 10 * time.Millisecond})
	r.probe = tr
	r.Start()
	r.Start() // double Start must be a no-op, not a second loop
	deadline := time.Now().Add(5 * time.Second)
	for tr.probeCount(peerA) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tr.probeCount(peerA) == 0 {
		t.Fatal("probe loop never dialed the seed")
	}
	r.Close()
	r.Close() // double Close must be a no-op, not a panic
	n := tr.probeCount(peerA)
	time.Sleep(30 * time.Millisecond)
	if tr.probeCount(peerA) != n {
		t.Fatal("probe loop survived Close")
	}
}

// TestProbeCachesLoadForPlacement: a probe's load snapshot is cached
// per member and surfaces through AliveLoads (placement candidates)
// and the Members gossip rows; members never load-sampled are excluded
// from AliveLoads rather than treated as idle, and the self row
// carries the live SelfLoad callback.
func TestProbeCachesLoadForPlacement(t *testing.T) {
	b := "http://b:2"
	tr := newFakeTransport(peerA, b)
	tr.setLoad(peerA, sweepd.LoadInfo{QueueDepth: 2, BusyWorkers: 1})
	r, _ := testRegistry(Options{
		Self:          "http://self:1",
		Seeds:         []string{peerA, b},
		ProbeInterval: 10 * time.Second,
		SelfLoad:      func() sweepd.LoadInfo { return sweepd.LoadInfo{QueueDepth: 7} },
	}, tr)
	r.probeOnce()
	loads := r.AliveLoads()
	if len(loads) != 1 || loads[0].URL != peerA || loads[0].Load.QueueDepth != 2 {
		t.Fatalf("AliveLoads = %+v, want only the load-sampled peer", loads)
	}
	for _, m := range r.Members() {
		switch {
		case m.Self:
			if m.Load == nil || m.Load.QueueDepth != 7 {
				t.Fatalf("self row load = %+v, want the live SelfLoad", m.Load)
			}
		case m.URL == peerA:
			if m.Load == nil || m.Load.QueueDepth != 2 {
				t.Fatalf("probed peer row load = %+v", m.Load)
			}
		case m.URL == b:
			if m.Load != nil {
				t.Fatalf("never-sampled peer advertises load %+v", m.Load)
			}
		}
	}
}

// TestUpdateLeaseGenerationGuard pins the split-brain rule: higher
// generation always wins, equal generation only refreshes the same
// owner or tie-breaks to the smaller URL, everything else is stale.
func TestUpdateLeaseGenerationGuard(t *testing.T) {
	tr := newFakeTransport()
	r, now := testRegistry(Options{ProbeInterval: 10 * time.Second}, tr)
	put := func(id, owner string, gen uint64) bool {
		return r.UpdateLease(sweepd.JobLease{JobID: id, Owner: owner, Generation: gen})
	}
	if !put("j1", "http://b:2", 1) {
		t.Fatal("fresh lease rejected")
	}
	if !put("j1", "http://b:2", 1) {
		t.Fatal("same-owner refresh rejected")
	}
	if put("j1", "http://c:3", 1) {
		t.Fatal("equal generation, larger owner accepted")
	}
	if !put("j1", "http://a:1", 1) {
		t.Fatal("equal-generation tie-break to the smaller owner rejected")
	}
	if put("j1", "http://z:9", 1) {
		t.Fatal("tie-break loser accepted")
	}
	if !put("j1", "http://z:9", 2) {
		t.Fatal("higher generation rejected")
	}
	if put("j1", "http://a:1", 1) {
		t.Fatal("stale generation accepted")
	}
	if put("", "http://a:1", 1) || put("j2", "", 1) || put("j2", "http://a:1", 0) {
		t.Fatal("invalid lease accepted")
	}
	ls := r.Leases()
	if len(ls) != 1 || ls[0].Generation != 2 || !ls[0].Updated.Equal(*now) {
		t.Fatalf("lease table = %+v, want one generation-2 lease stamped with local time", ls)
	}
	r.DropLease("j1", 1)
	if len(r.Leases()) != 1 {
		t.Fatal("stale-generation drop removed a newer lease")
	}
	r.DropLease("j1", 2)
	if len(r.Leases()) != 0 {
		t.Fatal("owner's drop did not remove the lease")
	}
}

// TestGossipSpreadsAndWithdrawsLeases: a gossip pull merges the peer's
// leases; the peer is authoritative for its own — a lease it stops
// listing is withdrawn here too — but never for third parties'.
func TestGossipSpreadsAndWithdrawsLeases(t *testing.T) {
	seed := "http://seed:1"
	third := "http://c:3"
	tr := newFakeTransport(seed)
	tr.lists[seed] = []string{seed}
	tr.leases[seed] = []sweepd.JobLease{
		{JobID: "j-own", Owner: seed, Generation: 1},
		{JobID: "j-third", Owner: third, Generation: 1},
	}
	r, now := testRegistry(Options{
		Self:          "http://self:9",
		Seeds:         []string{seed},
		ProbeInterval: 10 * time.Second,
	}, tr)
	r.probeOnce()
	if got := len(r.Leases()); got != 2 {
		t.Fatalf("leases after gossip pull = %d, want 2", got)
	}
	tr.mu.Lock()
	tr.leases[seed] = nil // the seed's job finished
	tr.mu.Unlock()
	*now = now.Add(10 * time.Second)
	r.probeOnce()
	ls := r.Leases()
	if len(ls) != 1 || ls[0].JobID != "j-third" {
		t.Fatalf("leases after withdrawal = %+v, want only the third party's", ls)
	}
}

// TestGossipEchoCannotRefreshSelfOwnedLease: our own leases are
// heartbeat firsthand by the scheduler; when the scheduler stops (the
// job died with it), an echo of the old lease arriving via gossip must
// not keep it alive past LeaseExpiry.
func TestGossipEchoCannotRefreshSelfOwnedLease(t *testing.T) {
	seed := "http://seed:1"
	self := "http://self:9"
	tr := newFakeTransport(seed)
	tr.lists[seed] = []string{seed}
	tr.leases[seed] = []sweepd.JobLease{{JobID: "j", Owner: self, Generation: 1}}
	r, now := testRegistry(Options{
		Self:          self,
		Seeds:         []string{seed},
		ProbeInterval: 10 * time.Second,
		LeaseExpiry:   30 * time.Second,
	}, tr)
	r.UpdateLease(sweepd.JobLease{JobID: "j", Owner: self, Generation: 1})
	*now = now.Add(31 * time.Second)
	r.probeOnce() // pulls the echo, then expires the lease
	if ls := r.Leases(); len(ls) != 0 {
		t.Fatalf("echoed self-owned lease survived expiry: %+v", ls)
	}
}

// TestLeaseExpiryOnlyForHealthyOwners: a lease whose owner looks
// healthy but stopped refreshing is garbage-collected; a lease whose
// owner is down is adoption fuel and must be kept indefinitely.
func TestLeaseExpiryOnlyForHealthyOwners(t *testing.T) {
	tr := newFakeTransport() // peerA never reachable
	r, now := testRegistry(Options{
		Seeds:         []string{peerA},
		ProbeInterval: 10 * time.Second,
		DownAfter:     3,
		LeaseExpiry:   30 * time.Second,
	}, tr)
	r.UpdateLease(sweepd.JobLease{JobID: "j1", Owner: peerA, Generation: 1})
	r.probeOnce() // failure 1: suspect — still "apparently healthy"
	*now = now.Add(31 * time.Second)
	r.probeOnce() // failure 2: still suspect; lease is 31s unrefreshed
	if st := stateOf(t, r, peerA); st != StateSuspect {
		t.Fatalf("state = %s, want suspect", st)
	}
	if ls := r.Leases(); len(ls) != 0 {
		t.Fatalf("suspect-owner lease survived expiry: %+v", ls)
	}

	*now = now.Add(10 * time.Second)
	r.probeOnce() // failure 3: down
	if st := stateOf(t, r, peerA); st != StateDown {
		t.Fatalf("state = %s, want down", st)
	}
	r.UpdateLease(sweepd.JobLease{JobID: "j2", Owner: peerA, Generation: 1})
	*now = now.Add(10 * time.Minute)
	r.probeOnce()
	if ls := r.Leases(); len(ls) != 1 || ls[0].JobID != "j2" {
		t.Fatalf("down-owner lease was expired (adoption starved): %+v", ls)
	}
}

// TestTombstoneLifecycle walks a member through decommission: down
// past TombstoneAfter deletes it and raises a gossiped tombstone that
// blocks resurrection by hearsay; a hello (proved reachability) lifts
// it; an expired tombstone is purged and gossip may re-add the URL.
func TestTombstoneLifecycle(t *testing.T) {
	seed := "http://seed:1"
	tr := newFakeTransport(seed, peerA)
	tr.lists[seed] = []string{seed, peerA}
	r, now := testRegistry(Options{
		Self:           "http://self:9",
		Seeds:          []string{seed, peerA},
		ProbeInterval:  10 * time.Second,
		DownAfter:      1,
		BackoffMax:     10 * time.Second,
		TombstoneAfter: 30 * time.Second,
	}, tr)
	r.probeOnce() // both alive
	tr.setUp(peerA, false)
	*now = now.Add(10 * time.Second)
	r.probeOnce() // down immediately (DownAfter 1)
	if st := stateOf(t, r, peerA); st != StateDown {
		t.Fatalf("state = %s, want down", st)
	}
	*now = now.Add(30 * time.Second)
	r.probeOnce() // down past TombstoneAfter: decommissioned
	for _, m := range r.Members() {
		if m.URL == peerA {
			t.Fatal("tombstoned member still in the table")
		}
	}
	ts := r.Tombstones()
	if len(ts) != 1 || ts[0].URL != peerA {
		t.Fatalf("tombstones = %+v", ts)
	}
	if got := r.ClusterStats().Tombstoned; got != 1 {
		t.Fatalf("tombstoned counter = %d, want 1", got)
	}

	// The seed still lists peerA; gossip alone must not resurrect it.
	*now = now.Add(10 * time.Second)
	r.probeOnce()
	for _, m := range r.Members() {
		if m.URL == peerA {
			t.Fatal("gossip resurrected a tombstoned member")
		}
	}

	// A hello is proved reachability: tombstone lifted, member alive.
	r.Hello(peerA)
	if st := stateOf(t, r, peerA); st != StateAlive {
		t.Fatalf("state after hello = %s, want alive", st)
	}
	if len(r.Tombstones()) != 0 {
		t.Fatal("hello did not lift the tombstone")
	}

	// Decommission again; this time let the tombstone expire unlifted.
	*now = now.Add(10 * time.Second)
	r.probeOnce() // still unreachable: down again
	*now = now.Add(30 * time.Second)
	r.probeOnce() // tombstoned again
	if len(r.Tombstones()) != 1 {
		t.Fatalf("tombstones after second decommission = %+v", r.Tombstones())
	}
	*now = now.Add(31 * time.Second)
	r.probeOnce() // past Until: purged
	if len(r.Tombstones()) != 0 {
		t.Fatal("expired tombstone not purged")
	}
	*now = now.Add(10 * time.Second)
	r.probeOnce() // gossip may now re-admit the URL (as suspect)
	found := false
	for _, m := range r.Members() {
		if m.URL == peerA {
			found = true
		}
	}
	if !found {
		t.Fatal("gossip could not re-add the member after tombstone expiry")
	}
}

// TestGossipedTombstoneDecommissions: a tombstone learned via gossip
// removes a member we cannot vouch for firsthand — but firsthand
// liveness (the member answered its own probe) beats the hearsay.
func TestGossipedTombstoneDecommissions(t *testing.T) {
	seed := "http://seed:1"
	b := "http://b:2"
	t0 := time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC)
	tr := newFakeTransport(seed, b)
	tr.lists[seed] = []string{seed}
	tr.tombs[seed] = []sweepd.Tombstone{{URL: b, Until: t0.Add(time.Hour)}}
	r, now := testRegistry(Options{
		Seeds:         []string{seed, b},
		ProbeInterval: 10 * time.Second,
		DownAfter:     1,
	}, tr)
	r.probeOnce()
	if st := stateOf(t, r, b); st != StateAlive {
		t.Fatalf("firsthand-alive member state = %s; a gossiped tombstone must not kill it", st)
	}
	if len(r.Tombstones()) != 0 {
		t.Fatalf("tombstone adopted against a firsthand-alive member: %+v", r.Tombstones())
	}

	tr.setUp(b, false)
	*now = now.Add(10 * time.Second)
	r.probeOnce() // b down
	*now = now.Add(10 * time.Second)
	r.probeOnce() // next gossip pull: tombstone adopted, member deleted
	for _, m := range r.Members() {
		if m.URL == b {
			t.Fatalf("down member survived a gossiped tombstone: %+v", m)
		}
	}
	ts := r.Tombstones()
	if len(ts) != 1 || ts[0].URL != b {
		t.Fatalf("tombstones = %+v", ts)
	}
}

// TestGossipHearsayCannotRefreshThirdPartyLease: survivors echoing a
// dead leader's lease at each other must not keep re-stamping it fresh
// — that would starve adoption forever. Hearsay may introduce a lease
// (discovery) but only the owner's own listing refreshes its staleness.
func TestGossipHearsayCannotRefreshThirdPartyLease(t *testing.T) {
	owner := "http://owner:1"
	echo := "http://echo:2"
	tr := newFakeTransport(echo)
	tr.lists[echo] = []string{echo}
	tr.leases[echo] = []sweepd.JobLease{{JobID: "j", Owner: owner, Generation: 1}}
	r, now := testRegistry(Options{
		Self:          "http://self:9",
		Seeds:         []string{echo, owner},
		ProbeInterval: 10 * time.Second,
	}, tr)
	r.probeOnce() // hearsay discovery: learn the lease from the echoer
	t0 := *now
	if ls := r.Leases(); len(ls) != 1 || !ls[0].Updated.Equal(t0) {
		t.Fatalf("leases after discovery = %+v", ls)
	}
	*now = now.Add(10 * time.Second)
	r.probeOnce() // the echoer still lists it; staleness must keep running
	if ls := r.Leases(); len(ls) != 1 || !ls[0].Updated.Equal(t0) {
		t.Fatalf("hearsay refreshed the lease: Updated = %v, want %v", ls[0].Updated, t0)
	}
	// The owner itself listing the lease is firsthand and does refresh.
	tr.setUp(owner, true)
	tr.mu.Lock()
	tr.lists[owner] = []string{owner}
	tr.leases[owner] = []sweepd.JobLease{{JobID: "j", Owner: owner, Generation: 1}}
	tr.mu.Unlock()
	*now = now.Add(10 * time.Second)
	r.probeOnce()
	if ls := r.Leases(); len(ls) != 1 || !ls[0].Updated.Equal(*now) {
		t.Fatalf("owner's own listing did not refresh the lease: %+v", ls)
	}
}
