package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ReplicaManifest identifies one replicated finished job: both the wire
// header of POST /peer/replicas/{id} (first line of the body) and the
// manifest.json persisted next to the replica's artifact files. The
// spec travels as raw JSON so the store stays independent of the sweepd
// spec type; sweepd decodes and verifies it (content address, kernel
// hash, canonical cell order) before a replica is ever stored.
type ReplicaManifest struct {
	// JobID is the job's content address; Kernel its kernel hash. The
	// receiver recomputes both from Spec and rejects mismatches, so a
	// corrupt or mislabeled push can never be served under this ID.
	JobID  string `json:"job_id"`
	Kernel string `json:"kernel"`
	// Generation is the pusher's lease generation for the job — the
	// zombie guard: a replica already stored at a higher generation
	// rejects pushes from older (deposed) leaders.
	Generation uint64 `json:"generation"`
	// Status is the job's terminal status; only "done" jobs replicate
	// (their artifacts are immutable — every cell is checkpointed).
	Status string `json:"status"`
	// CheckpointLines / TrajectoryLines frame the body that follows the
	// manifest line: exactly that many checkpoint lines, then that many
	// trajectory lines. CheckpointLines must equal the spec's grid size.
	CheckpointLines int `json:"checkpoint_lines"`
	TrajectoryLines int `json:"trajectory_lines,omitempty"`
	// Spec is the job's normalized spec, verbatim.
	Spec json.RawMessage `json:"spec"`
	// Created / Finished mirror the leader's lifecycle record so a
	// replica-served job snapshot keeps its timestamps.
	Created  time.Time `json:"created,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// StoredAt is stamped by the RECEIVER when the replica lands — the
	// replica GC clock, deliberately local so expiry never depends on
	// cross-host clock agreement.
	StoredAt time.Time `json:"stored_at,omitzero"`
}

// ReplicaSet stores verified replicas of other members' finished jobs,
// one directory per job ID under its root: manifest.json, results.jsonl
// and (for trajectory specs) trajectory.jsonl. Each replica commits
// atomically — staged in a temp dir, renamed into place — so a crash
// mid-receive leaves no half-replica to serve. A ReplicaSet is safe for
// concurrent use.
type ReplicaSet struct {
	root string
	// mu serializes Put/Delete against each other; reads go straight to
	// the filesystem (directory renames are atomic).
	mu sync.Mutex
}

// OpenReplicaSet opens (creating if needed) a replica store rooted at
// dir, clearing any staging dirs a crash mid-Put left behind.
func OpenReplicaSet(dir string) (*ReplicaSet, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	rs := &ReplicaSet{root: dir}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				os.RemoveAll(filepath.Join(dir, e.Name())) //nolint:errcheck // best-effort cleanup
			}
		}
	}
	return rs, nil
}

// Root returns the replica store directory.
func (rs *ReplicaSet) Root() string { return rs.root }

func (rs *ReplicaSet) dir(id string) string { return filepath.Join(rs.root, id) }

// ManifestPath returns the replica's manifest path.
func (rs *ReplicaSet) ManifestPath(id string) string {
	return filepath.Join(rs.dir(id), "manifest.json")
}

// ResultsPath returns the replica's checkpoint file path.
func (rs *ReplicaSet) ResultsPath(id string) string {
	return filepath.Join(rs.dir(id), "results.jsonl")
}

// TrajectoryPath returns the replica's trajectory sidecar path (absent
// unless the spec collected trajectories).
func (rs *ReplicaSet) TrajectoryPath(id string) string {
	return filepath.Join(rs.dir(id), "trajectory.jsonl")
}

// Put stores one verified replica atomically, replacing any existing
// copy (callers enforce the generation guard first). trajectory may be
// nil for specs without a sidecar.
func (rs *ReplicaSet) Put(m ReplicaManifest, checkpoint, trajectory []byte) error {
	if m.JobID == "" || !jobIDPattern.MatchString(m.JobID) {
		return fmt.Errorf("store: replica manifest has invalid job id %q", m.JobID)
	}
	mdata, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	tmp := rs.dir(m.JobID) + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	cleanup := func(err error) error {
		os.RemoveAll(tmp) //nolint:errcheck // best-effort
		return fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "results.jsonl"), checkpoint, 0o644); err != nil {
		return cleanup(err)
	}
	if len(trajectory) > 0 {
		if err := os.WriteFile(filepath.Join(tmp, "trajectory.jsonl"), trajectory, 0o644); err != nil {
			return cleanup(err)
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, "manifest.json"), append(mdata, '\n'), 0o644); err != nil {
		return cleanup(err)
	}
	if err := os.RemoveAll(rs.dir(m.JobID)); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp, rs.dir(m.JobID)); err != nil {
		return cleanup(err)
	}
	return nil
}

// Manifest reads a replica's manifest back; os.IsNotExist(err) means no
// replica of that job is stored here.
func (rs *ReplicaSet) Manifest(id string) (ReplicaManifest, error) {
	data, err := os.ReadFile(rs.ManifestPath(id))
	if err != nil {
		return ReplicaManifest{}, err
	}
	var m ReplicaManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return ReplicaManifest{}, fmt.Errorf("store: replica %s: %w", id, err)
	}
	return m, nil
}

// List returns the IDs of all stored replicas, sorted.
func (rs *ReplicaSet) List() ([]string, error) {
	entries, err := os.ReadDir(rs.root)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() || !jobIDPattern.MatchString(e.Name()) {
			continue
		}
		if _, err := os.Stat(rs.ManifestPath(e.Name())); err != nil {
			continue
		}
		ids = append(ids, e.Name())
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes one replica.
func (rs *ReplicaSet) Delete(id string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := os.RemoveAll(rs.dir(id)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// SweepExpired removes replicas stored before cutoff — the replica half
// of TTL GC, so replicated checkpoints cannot accumulate forever on
// members that never ran the job. A replica whose manifest is
// unreadable falls back to the directory's modtime.
func (rs *ReplicaSet) SweepExpired(cutoff time.Time) (removed int, err error) {
	ids, lerr := rs.List()
	if lerr != nil {
		return 0, lerr
	}
	for _, id := range ids {
		var stored time.Time
		if m, merr := rs.Manifest(id); merr == nil {
			stored = m.StoredAt
		}
		if stored.IsZero() {
			if fi, serr := os.Stat(rs.dir(id)); serr == nil {
				stored = fi.ModTime()
			}
		}
		if stored.IsZero() || !stored.Before(cutoff) {
			continue
		}
		if derr := rs.Delete(id); derr != nil {
			if err == nil {
				err = derr
			}
			continue
		}
		removed++
	}
	return removed, err
}
