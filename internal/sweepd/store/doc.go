// Package store is the durable plane of sweepd, split out behind the
// sweepd.JobStore seam so backends can vary independently of job
// semantics.
//
// Two kinds of artifact live here:
//
//   - FS holds the primary copies: one directory per job under the store
//     root, with the normalized spec (spec.json), the lifecycle record
//     (meta.json), the streaming results checkpoint (results.jsonl, one
//     canonical ncgio cell line per result in canonical cell order) and,
//     for trajectory specs, the per-round sidecar (trajectory.jsonl).
//     Specs and metas commit atomically (temp file + rename); checkpoint
//     torn tails are repaired on read. Everything a restarted daemon
//     needs to resume is in the job directory.
//
//   - ReplicaSet holds replicated copies of other members' finished
//     jobs: immutable (spec, checkpoint, sidecar) snapshots received
//     over POST /peer/replicas/{id}, one directory per job under
//     <root>, committed atomically as a whole (temp dir + rename) so a
//     half-received replica is never served. The manifest carries the
//     job identity (content address + kernel hash), the pusher's lease
//     generation (the zombie-leader guard), and the receiver's storage
//     timestamp (the GC clock). Replicas make a finished job's results
//     survive its leader's disk and let any member serve terminal
//     reads.
//
// The package is deliberately bytes-level: specs pass through as raw
// JSON (json.RawMessage in manifests), so store does not depend on the
// sweepd spec type and sweepd can layer its typed Store adapter on top
// without an import cycle.
package store
