package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
)

// jobIDPattern matches content-address job IDs (Spec.ID()): 16 hex chars.
var jobIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// Meta is the small lifecycle record persisted as meta.json next to
// spec.json: when the job was first admitted and when it last reached a
// terminal status (zero while running). The GC loop decides reaping
// from these timestamps, so they survive daemon restarts.
type Meta struct {
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished,omitzero"`
}

// FS is the filesystem backend: one directory per job holding the
// normalized spec (spec.json) and the streaming results checkpoint
// (results.jsonl, one canonical ncgio cell line per result, in canonical
// cell order). It stores specs as opaque bytes; the typed surface lives
// in sweepd.Store.
type FS struct {
	root string
}

// Open opens (creating if needed) a filesystem store rooted at dir.
// Orphan job dirs left behind by a crash mid-CreateJob are swept on
// open.
func Open(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs := &FS{root: dir}
	fs.SweepOrphans(time.Now()) //nolint:errcheck // best-effort cleanup
	return fs, nil
}

// Root returns the store directory.
func (fs *FS) Root() string { return fs.root }

func (fs *FS) jobDir(id string) string   { return filepath.Join(fs.root, id) }
func (fs *FS) metaPath(id string) string { return filepath.Join(fs.jobDir(id), "meta.json") }

// SpecPath returns the job's on-disk spec path (error messages point
// clients and operators at the exact bytes that failed to parse).
func (fs *FS) SpecPath(id string) string { return filepath.Join(fs.jobDir(id), "spec.json") }

// ResultsPath returns the job's checkpoint file path.
func (fs *FS) ResultsPath(id string) string {
	return filepath.Join(fs.jobDir(id), "results.jsonl")
}

// TrajectoryPath returns the job's per-round trajectory sidecar path
// (only written for specs with Trajectories set).
func (fs *FS) TrajectoryPath(id string) string {
	return filepath.Join(fs.jobDir(id), "trajectory.jsonl")
}

// TrajectoryAppender opens the job's trajectory sidecar for streaming
// appends, repairing any torn tail first so a fresh line never merges
// into a torn one. Callers resuming a job run ReconcileTrajectories
// before this (which already truncates past the common prefix, torn
// tails included) — the repair here is the writer's cheap backstop, an
// O(tail-chunk) backwards scan.
func (fs *FS) TrajectoryAppender(id string) (*ncgio.CheckpointWriter, error) {
	path := fs.TrajectoryPath(id)
	if err := ncgio.RepairTail(path); err != nil {
		return nil, err
	}
	return ncgio.NewCheckpointWriter(path)
}

// ReconcileTrajectories truncates a trajectory job's checkpoint AND
// sidecar back to their longest common cell-prefix before a resume. The
// runner appends both files in the same canonical cell order (sidecar
// line first), so after a clean run they list identical cell sequences;
// any divergence is crash damage — a process killed between the two
// appends leaves one surplus sidecar record, and a power loss can
// persist either file's tail without the other's (the two files fsync
// independently). Truncating both to the agreed prefix is always safe:
// per-cell determinism recomputes the dropped tail byte-identically,
// whereas a checkpointed cell whose sidecar record was lost could never
// regenerate it (resume skips checkpointed cells). Missing files are
// empty prefixes. Only the job's own runner may call this (truncation
// races a live writer).
func (fs *FS) ReconcileTrajectories(id string) error {
	ckWalk, err := openRecordWalker(fs.ResultsPath(id))
	if err != nil {
		return err
	}
	defer ckWalk.close()
	trWalk, err := openRecordWalker(fs.TrajectoryPath(id))
	if err != nil {
		return err
	}
	defer trWalk.close()

	// Walk both record streams in lockstep to the longest common cell
	// prefix; both files stream through fixed-size buffers (resume-sized
	// checkpoints carry full network states and must not be slurped
	// twice — LoadResults follows right after).
	for {
		ckLine, ckOK := ckWalk.next()
		trLine, trOK := trWalk.next()
		if !ckOK || !trOK {
			break
		}
		rec, err := ncgio.UnmarshalCellResult(ckLine)
		if err != nil {
			break // torn/corrupt checkpoint tail; drop it and the rest
		}
		trec, err := ncgio.UnmarshalTrajectory(trLine)
		if err != nil || trec.Cell() != rec.Cell {
			break
		}
		ckWalk.commit()
		trWalk.commit()
	}
	if err := ckWalk.truncate(); err != nil {
		return err
	}
	return trWalk.truncate()
}

// recordWalker streams one checkpoint-format file's non-blank lines,
// tracking the byte offset of the last committed (agreed-prefix) record
// so the file can be truncated back to it without ever holding more
// than a buffer in memory. A missing file walks as empty.
type recordWalker struct {
	path      string
	f         *os.File
	br        *bufio.Reader
	size      int64
	off       int64 // bytes consumed from the reader
	committed int64 // end of the agreed prefix
}

func openRecordWalker(path string) (*recordWalker, error) {
	w := &recordWalker{path: path}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return w, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	w.f, w.size = f, fi.Size()
	w.br = bufio.NewReaderSize(f, 64*1024)
	return w, nil
}

// next returns the next non-blank line (without its newline); ok=false
// at EOF or a torn (newline-less) tail.
func (w *recordWalker) next() ([]byte, bool) {
	if w.br == nil {
		return nil, false
	}
	for {
		line, err := w.br.ReadBytes('\n')
		if err != nil {
			return nil, false // EOF or torn tail: nothing provably whole
		}
		w.off += int64(len(line))
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		return trimmed, true
	}
}

// commit marks everything consumed so far as part of the agreed prefix.
func (w *recordWalker) commit() { w.committed = w.off }

// truncate cuts the file back to the agreed prefix (no-op when nothing
// follows it, or the file never existed).
func (w *recordWalker) truncate() error {
	if w.f == nil || w.committed >= w.size {
		return nil
	}
	if err := os.Truncate(w.path, w.committed); err != nil {
		return fmt.Errorf("store: reconciling trajectories: %w", err)
	}
	return nil
}

func (w *recordWalker) close() {
	if w.f != nil {
		w.f.Close()
	}
}

// CreateJob persists pre-marshaled spec bytes under the given content
// address. It reports created=false when the job already exists (same
// spec ⇒ same ID ⇒ same job), making submission idempotent. The spec is
// written atomically (temp file + rename) so a half-written spec can
// never be mistaken for a job.
func (fs *FS) CreateJob(id string, spec []byte) (created bool, err error) {
	if _, err := os.Stat(fs.SpecPath(id)); err == nil {
		return false, nil
	}
	if err := os.MkdirAll(fs.jobDir(id), 0o755); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	tmp := fs.SpecPath(id) + ".tmp"
	if err := os.WriteFile(tmp, spec, 0o644); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, fs.SpecPath(id)); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	return true, nil
}

// ReadSpec reads a job's raw spec bytes back.
func (fs *FS) ReadSpec(id string) ([]byte, error) {
	data, err := os.ReadFile(fs.SpecPath(id))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// WriteMeta persists the job's lifecycle record atomically (temp file +
// rename), same contract as the spec itself.
func (fs *FS) WriteMeta(id string, meta Meta) error {
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := fs.metaPath(id) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, fs.metaPath(id)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadMeta reads a job's lifecycle record. A missing or corrupt
// meta.json is an error; callers fall back to filesystem timestamps.
func (fs *FS) LoadMeta(id string) (Meta, error) {
	data, err := os.ReadFile(fs.metaPath(id))
	if err != nil {
		return Meta{}, fmt.Errorf("store: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(data, &meta); err != nil {
		return Meta{}, fmt.Errorf("store: job %s: %w", id, err)
	}
	return meta, nil
}

// DeleteJob removes a job's directory entirely — spec, meta, and
// checkpoint. Callers (Manager.Evict) are responsible for making sure
// no runner still holds the checkpoint open.
func (fs *FS) DeleteJob(id string) error {
	if err := os.RemoveAll(fs.jobDir(id)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// SweepOrphans removes half-created job artifacts: directories that
// look like job dirs but hold no committed spec.json (a crash between
// CreateJob's MkdirAll and the spec rename leaves the dir, and possibly
// a spec.json.tmp, behind — Jobs() skips them but nothing else ever
// deleted them). Only dirs whose modtime is before cutoff are touched,
// so a CreateJob racing the sweep keeps its in-flight directory.
func (fs *FS) SweepOrphans(cutoff time.Time) (removed int, err error) {
	entries, rerr := os.ReadDir(fs.root)
	if rerr != nil {
		return 0, fmt.Errorf("store: %w", rerr)
	}
	for _, e := range entries {
		if !e.IsDir() || !jobIDPattern.MatchString(e.Name()) {
			continue
		}
		if _, serr := os.Stat(fs.SpecPath(e.Name())); serr == nil {
			continue // committed job
		}
		info, ierr := e.Info()
		if ierr != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		if derr := os.RemoveAll(fs.jobDir(e.Name())); derr != nil {
			if err == nil {
				err = fmt.Errorf("store: %w", derr)
			}
			continue
		}
		removed++
	}
	return removed, err
}

// Jobs lists the IDs of all persisted jobs, sorted.
func (fs *FS) Jobs() ([]string, error) {
	entries, err := os.ReadDir(fs.root)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() || !jobIDPattern.MatchString(e.Name()) {
			continue
		}
		if _, err := os.Stat(fs.SpecPath(e.Name())); err != nil {
			continue // half-created job: no committed spec
		}
		ids = append(ids, e.Name())
	}
	sort.Strings(ids)
	return ids, nil
}

// LoadResults reads a job's checkpoint, repairing a torn tail if the
// previous process died mid-append.
func (fs *FS) LoadResults(id string) ([]dynamics.CellResult, error) {
	return ncgio.ReadCheckpoint(fs.ResultsPath(id))
}

// Appender opens the job's checkpoint for streaming appends.
func (fs *FS) Appender(id string) (*ncgio.CheckpointWriter, error) {
	return ncgio.NewCheckpointWriter(fs.ResultsPath(id))
}
