package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testManifest(id string) ReplicaManifest {
	return ReplicaManifest{
		JobID:           id,
		Kernel:          "deadbeef",
		Generation:      3,
		Status:          "done",
		CheckpointLines: 2,
		Spec:            []byte(`{"n":10}`),
		StoredAt:        time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
	}
}

func TestReplicaSetPutRoundTrip(t *testing.T) {
	rs, err := OpenReplicaSet(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := "00000000000000ab"
	ck := []byte("{\"alpha\":1}\n{\"alpha\":2}\n")
	tr := []byte("{\"alpha\":1,\"per_round\":[]}\n")
	if err := rs.Put(testManifest(id), ck, tr); err != nil {
		t.Fatal(err)
	}
	m, err := rs.Manifest(id)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobID != id || m.Generation != 3 || m.CheckpointLines != 2 {
		t.Fatalf("manifest round-trip = %+v", m)
	}
	got, err := os.ReadFile(rs.ResultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ck) {
		t.Fatalf("checkpoint bytes = %q, want %q", got, ck)
	}
	got, err = os.ReadFile(rs.TrajectoryPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(tr) {
		t.Fatalf("trajectory bytes = %q, want %q", got, tr)
	}
	ids, err := rs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("List = %v", ids)
	}
}

func TestReplicaSetPutReplaces(t *testing.T) {
	rs, err := OpenReplicaSet(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := "00000000000000ab"
	if err := rs.Put(testManifest(id), []byte("old\n"), []byte("sidecar\n")); err != nil {
		t.Fatal(err)
	}
	// The replacement has no sidecar: the old one must not survive the
	// swap (a stale sidecar next to a fresh checkpoint would be served).
	m := testManifest(id)
	m.Generation = 9
	if err := rs.Put(m, []byte("new\n"), nil); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Manifest(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 9 {
		t.Fatalf("Generation after replace = %d, want 9", got.Generation)
	}
	data, err := os.ReadFile(rs.ResultsPath(id))
	if err != nil || string(data) != "new\n" {
		t.Fatalf("checkpoint after replace = %q, %v", data, err)
	}
	if _, err := os.Stat(rs.TrajectoryPath(id)); !os.IsNotExist(err) {
		t.Fatalf("stale trajectory sidecar survived the replace: %v", err)
	}
}

func TestReplicaSetRejectsBadID(t *testing.T) {
	rs, err := OpenReplicaSet(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "nope", "../../etc/passwd", "00000000000000AB"} {
		m := testManifest("00000000000000ab")
		m.JobID = id
		if err := rs.Put(m, []byte("x\n"), nil); err == nil {
			t.Fatalf("Put accepted invalid job id %q", id)
		}
	}
}

func TestReplicaSetMissingManifest(t *testing.T) {
	rs, err := OpenReplicaSet(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Manifest("00000000000000ab"); !os.IsNotExist(err) {
		t.Fatalf("Manifest of absent replica = %v, want os.IsNotExist", err)
	}
}

func TestReplicaSetDelete(t *testing.T) {
	rs, err := OpenReplicaSet(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := "00000000000000ab"
	if err := rs.Put(testManifest(id), []byte("x\n"), nil); err != nil {
		t.Fatal(err)
	}
	if err := rs.Delete(id); err != nil {
		t.Fatal(err)
	}
	ids, err := rs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("List after Delete = %v", ids)
	}
	if err := rs.Delete(id); err != nil {
		t.Fatalf("second Delete errored: %v", err)
	}
}

func TestReplicaSetSweepExpired(t *testing.T) {
	rs, err := OpenReplicaSet(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	old := testManifest("00000000000000aa")
	old.StoredAt = time.Now().Add(-2 * time.Hour)
	fresh := testManifest("00000000000000bb")
	fresh.StoredAt = time.Now()
	for _, m := range []ReplicaManifest{old, fresh} {
		if err := rs.Put(m, []byte("x\n"), nil); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := rs.SweepExpired(time.Now().Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("SweepExpired removed %d, want 1", removed)
	}
	ids, err := rs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != fresh.JobID {
		t.Fatalf("List after sweep = %v, want only %s", ids, fresh.JobID)
	}
}

func TestOpenReplicaSetClearsStaging(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "00000000000000ab.tmp")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "results.jsonl"), []byte("half\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReplicaSet(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("crash staging dir survived OpenReplicaSet: %v", err)
	}
}
