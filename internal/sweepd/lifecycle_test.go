package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable time source for TTL-GC and rate-limit
// tests: Advance moves it forward, nothing else does.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Now()} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newLifecycleRig builds a manager over a disk-backed cache with a fake
// clock, plus the HTTP layer (handler internals exposed for summary-
// state assertions).
func newLifecycleRig(t *testing.T, cfg Config) (*Manager, *fakeClock, *handler, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewDiskCache(1024, filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, cache, 4)
	clk := newFakeClock()
	mgr.now = clk.Now
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	h, root := buildHandler(mgr, cfg)
	srv := httptest.NewServer(root)
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return mgr, clk, h, srv, dir
}

// TestGCReapsTerminalJobEndToEnd is the tentpole contract: once a done
// job's TTL lapses, one GC pass reclaims its store directory, its
// kernel's cache spill files, and the server's summary state — and the
// job is gone from the API.
func TestGCReapsTerminalJobEndToEnd(t *testing.T) {
	mgr, clk, h, srv, dir := newLifecycleRig(t, Config{})

	sp := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	sp.Normalize()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, mgr, job.ID, StatusDone)
	if done.Created.IsZero() || done.Finished.IsZero() {
		t.Fatalf("terminal job missing timestamps: %+v", done)
	}
	// Populate the per-job summary state the GC must release.
	if code := getJSON(t, srv.URL+"/sweeps/"+job.ID+"/summary", nil); code != http.StatusOK {
		t.Fatalf("GET summary = %d", code)
	}
	h.mu.Lock()
	if h.summaries[job.ID] == nil {
		h.mu.Unlock()
		t.Fatal("summary state not populated")
	}
	h.mu.Unlock()
	jobDir := filepath.Join(dir, job.ID)
	spillDir := filepath.Join(dir, "cache", sp.KernelHash())
	for _, p := range []string{jobDir, filepath.Join(jobDir, "meta.json"), spillDir} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing before GC: %s: %v", p, err)
		}
	}

	// Within TTL: nothing reaped.
	mgr.gcOnce(time.Hour)
	if _, ok := mgr.Get(job.ID); !ok {
		t.Fatal("GC reaped a job inside its TTL")
	}

	// Past TTL: everything reaped.
	clk.Advance(2 * time.Hour)
	mgr.gcOnce(time.Hour)
	if _, ok := mgr.Get(job.ID); ok {
		t.Fatal("job still registered after GC")
	}
	for _, p := range []string{jobDir, spillDir} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("still on disk after GC: %s", p)
		}
	}
	h.mu.Lock()
	leaked := h.summaries[job.ID] != nil
	h.mu.Unlock()
	if leaked {
		t.Fatal("summary state leaked past eviction")
	}
	if code := getJSON(t, srv.URL+"/sweeps/"+job.ID, nil); code != http.StatusNotFound {
		t.Fatalf("GET evicted job = %d, want 404", code)
	}
	st := mgr.Stats()
	if st.JobsEvicted != 1 || st.SpillBytesReclaimed == 0 {
		t.Fatalf("GC counters = evicted %d, spill bytes %d", st.JobsEvicted, st.SpillBytesReclaimed)
	}
}

// TestGCSparesRunningAndCanceled: resumable jobs must survive GC — a
// running job no matter how old, and a canceled job with its checkpoint
// intact (it can be resumed); only after it re-finishes does TTL apply.
func TestGCSparesRunningAndCanceled(t *testing.T) {
	mgr, clk, _, _, dir := newLifecycleRig(t, Config{})

	sp := bigSpec()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(48 * time.Hour)
	mgr.gcOnce(time.Hour)
	if j, ok := mgr.Get(job.ID); !ok || j.Status == "" {
		t.Fatal("GC touched a running job")
	}

	if _, ok := mgr.Cancel(job.ID); !ok {
		t.Fatal("cancel failed")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := mgr.Get(job.ID)
		if j.Status == StatusCanceled || j.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", j.Status)
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(48 * time.Hour)
	mgr.gcOnce(time.Hour)
	if _, ok := mgr.Get(job.ID); !ok {
		t.Fatal("GC reaped a canceled (resumable) job")
	}
	if _, err := os.Stat(filepath.Join(dir, job.ID, "results.jsonl")); err != nil {
		t.Fatalf("canceled job's checkpoint gone: %v", err)
	}

	// Resume it to completion; only then does the TTL clock run out.
	if _, _, err := mgr.Submit(sp); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, job.ID, StatusDone)
	mgr.gcOnce(time.Hour) // just finished: inside TTL
	if _, ok := mgr.Get(job.ID); !ok {
		t.Fatal("GC reaped a freshly finished job")
	}
	clk.Advance(2 * time.Hour)
	mgr.gcOnce(time.Hour)
	if _, ok := mgr.Get(job.ID); ok {
		t.Fatal("finished job survived GC past its TTL")
	}
}

// TestJobQuota: beyond -max-jobs, new specs are rejected with
// ErrJobQuota (HTTP 429) and leave no half-admitted state behind, while
// resubmits of retained jobs still land; eviction frees the slot.
func TestJobQuota(t *testing.T) {
	mgr, _, _, srv, dir := newLifecycleRig(t, Config{})
	mgr.SetMaxJobs(1)

	a := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	a.Normalize()
	jobA, _, err := mgr.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, jobA.ID, StatusDone)

	b := Spec{N: 11, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	b.Normalize()
	if _, _, err := mgr.Submit(b); !errors.Is(err, ErrJobQuota) {
		t.Fatalf("over-quota submit err = %v, want ErrJobQuota", err)
	}
	// The rejected spec must not linger on disk to resurrect at restart.
	if _, err := os.Stat(filepath.Join(dir, b.ID())); !os.IsNotExist(err) {
		t.Fatal("over-quota spec left on disk")
	}
	// Resubmitting the retained job is exempt.
	if _, _, err := mgr.Submit(a); err != nil {
		t.Fatalf("resubmit of retained job rejected: %v", err)
	}

	// Over HTTP the rejection is a structured 429.
	resp, err := http.Post(srv.URL+"/sweeps", "application/json",
		strings.NewReader(`{"n": 11, "alphas": [1], "ks": [2], "seeds": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body.Error, "quota") {
		t.Fatalf("over-quota POST = %d %q, want 429 quota error", resp.StatusCode, body.Error)
	}

	// Purging the retained job frees the slot.
	if _, ok, err := mgr.Evict(jobA.ID); !ok || err != nil {
		t.Fatalf("evict: ok=%v err=%v", ok, err)
	}
	if _, _, err := mgr.Submit(b); err != nil {
		t.Fatalf("submit after evict: %v", err)
	}
	waitStatus(t, mgr, b.ID(), StatusDone)
}

// TestRateLimit429RetryAfter: beyond the per-class budget requests get
// 429 with a Retry-After hint, /healthz and /metrics stay exempt, the
// throttle count lands in /metrics, and tokens refill with the clock.
func TestRateLimit429RetryAfter(t *testing.T) {
	clk := newFakeClock()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	mgr.now = clk.Now
	t.Cleanup(mgr.Close)
	_, root := buildHandler(mgr, Config{ReadRate: 1, MutateRate: 1, now: clk.Now})
	srv := httptest.NewServer(root)
	t.Cleanup(srv.Close)

	if code := getJSON(t, srv.URL+"/sweeps", nil); code != http.StatusOK {
		t.Fatalf("first read = %d", code)
	}
	resp, err := http.Get(srv.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second read = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive whole-second hint", ra)
	}
	if !strings.Contains(body.Error, "rate limit") {
		t.Fatalf("429 body = %q", body.Error)
	}

	// The mutate class has its own bucket: a POST still gets through even
	// though the read bucket is dry.
	resp, err = http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(`not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("first mutate = %d, want 400 (limited separately from reads)", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second mutate = %d, want 429", resp.StatusCode)
	}

	// Probes and scrapers are exempt.
	for i := 0; i < 5; i++ {
		if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
			t.Fatalf("healthz throttled: %d", code)
		}
	}
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metrics throttled: %d", res.StatusCode)
	}
	if !strings.Contains(metrics, "sweepd_throttled_requests_total 2") {
		t.Fatalf("metrics missing throttle count:\n%s", metrics)
	}

	// Tokens refill with the (fake) clock.
	clk.Advance(1100 * time.Millisecond)
	if code := getJSON(t, srv.URL+"/sweeps", nil); code != http.StatusOK {
		t.Fatalf("read after refill = %d", code)
	}
}

// TestSubmitStoreErrorIs500: when the store cannot persist a valid
// spec, the failure is the server's (ErrStore, HTTP 500) — not a 400
// blaming the client for the daemon's disk.
func TestSubmitStoreErrorIs500(t *testing.T) {
	mgr, _, _, srv, dir := newLifecycleRig(t, Config{})

	sp := Spec{N: 10, Alphas: []float64{3}, Ks: []int{2}, Seeds: 1}
	sp.Normalize()
	// Block the job dir with a regular file: CreateJob's MkdirAll fails
	// with ENOTDIR regardless of privilege (chmod tricks don't bind when
	// tests run as root).
	if err := os.WriteFile(filepath.Join(dir, sp.ID()), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := mgr.Submit(sp)
	if err == nil || !errors.Is(err, ErrStore) {
		t.Fatalf("submit err = %v, want ErrStore", err)
	}

	resp, err := http.Post(srv.URL+"/sweeps", "application/json",
		strings.NewReader(`{"n": 10, "alphas": [3], "ks": [2], "seeds": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("store-failure POST = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(body.Error, "store failure") {
		t.Fatalf("500 body = %q", body.Error)
	}
	// A genuinely bad spec still gets 400.
	resp, err = http.Post(srv.URL+"/sweeps", "application/json",
		strings.NewReader(`{"n": 1, "alphas": [1], "ks": [2], "seeds": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-spec POST = %d, want 400", resp.StatusCode)
	}
}

// TestSubmitRejectsTrailingData: the submit body must be exactly one
// JSON value — {"n":10}{"garbage":true} used to be silently accepted on
// the strength of its first value.
func TestSubmitRejectsTrailingData(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/sweeps", "application/json",
		strings.NewReader(`{"n": 10, "alphas": [1], "ks": [2], "seeds": 1}{"garbage": true}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body.Error, "trailing") {
		t.Fatalf("trailing-data POST = %d %q, want 400 trailing-data error", resp.StatusCode, body.Error)
	}
	// Trailing whitespace is fine.
	resp, err = http.Post(srv.URL+"/sweeps", "application/json",
		strings.NewReader("{\"n\": 10, \"alphas\": [1], \"ks\": [2], \"seeds\": 1}  \n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("whitespace-trailing POST = %d, want 202", resp.StatusCode)
	}
}

// TestOrphanSweep: a crash between CreateJob's MkdirAll and the spec
// rename leaves a job dir with at most a spec.json.tmp inside; both
// OpenStore and the GC pass must delete it, while committed jobs and
// fresh in-flight dirs survive.
func TestOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec()
	sp.Normalize()
	id, _, err := store.CreateJob(sp)
	if err != nil {
		t.Fatal(err)
	}

	plant := func(name string, age time.Duration) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(p, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(p, "spec.json.tmp"), []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-age)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
		return p
	}
	orphan := plant("0123456789abcdef", time.Hour)

	// Reopening the store sweeps orphans (at boot nothing races CreateJob,
	// so no grace period applies).
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("stale orphan survived OpenStore")
	}
	if _, err := os.Stat(filepath.Join(dir, id, "spec.json")); err != nil {
		t.Fatalf("committed job swept: %v", err)
	}

	// The GC pass sweeps them too — but with the TTL as grace period, so
	// a dir a concurrent CreateJob is mid-populating survives.
	orphan = plant("0123456789abcdef", 2*time.Hour)
	fresh := plant("fedcba9876543210", 0) // modtime ≈ now: racing CreateJob
	mgr := NewManager(store, nil, 1)
	t.Cleanup(mgr.Close)
	mgr.gcOnce(time.Hour)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("stale orphan survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("in-flight dir inside the grace period swept: %v", err)
	}
}

// TestResumePlaceholderSurfacesSpecError: a job whose on-disk spec is
// unreadable must resume as a failed placeholder whose Error names the
// spec path and the parse problem (not a silent zero spec), and GC must
// reap the husk.
func TestResumePlaceholderSurfacesSpecError(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const id = "aaaaaaaaaaaaaaaa"
	if err := os.MkdirAll(filepath.Join(dir, id), 0o755); err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, id, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"n": `), 0o644); err != nil {
		t.Fatal(err)
	}

	mgr := NewManager(store, nil, 1)
	clk := newFakeClock()
	mgr.now = clk.Now
	t.Cleanup(mgr.Close)
	if err := mgr.Resume(); err != nil {
		t.Fatal(err)
	}
	job, ok := mgr.Get(id)
	if !ok || job.Status != StatusFailed {
		t.Fatalf("placeholder = %+v, ok=%v", job, ok)
	}
	if !strings.Contains(job.Error, specPath) {
		t.Fatalf("Error does not name the spec path: %q", job.Error)
	}
	if !strings.Contains(job.Error, "unexpected end of JSON") {
		t.Fatalf("Error does not surface the parse problem: %q", job.Error)
	}
	if job.Created.IsZero() || job.Finished.IsZero() {
		t.Fatalf("placeholder missing GC timestamps: %+v", job)
	}

	// An invalid (but parseable) spec gets the same treatment.
	const id2 = "bbbbbbbbbbbbbbbb"
	if err := os.MkdirAll(filepath.Join(dir, id2), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id2, "spec.json"),
		[]byte(`{"n": 1, "alphas": [1], "ks": [2], "seeds": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store, nil, 1)
	mgr2.now = clk.Now
	t.Cleanup(mgr2.Close)
	if err := mgr2.Resume(); err != nil {
		t.Fatal(err)
	}
	if job2, _ := mgr2.Get(id2); !strings.Contains(job2.Error, "spec.json") || !strings.Contains(job2.Error, "n ≥ 2") {
		t.Fatalf("invalid-spec placeholder error = %q", job2.Error)
	}

	// GC reaps placeholders like any failed job.
	clk.Advance(2 * time.Hour)
	mgr.gcOnce(time.Hour)
	if _, ok := mgr.Get(id); ok {
		t.Fatal("placeholder survived GC")
	}
	if _, err := os.Stat(filepath.Join(dir, id)); !os.IsNotExist(err) {
		t.Fatal("placeholder dir survived GC")
	}
}

// TestServerPurgeEndpoint: DELETE /sweeps/{id}?purge=1 evicts a
// terminal job (store dir gone, then 404), refuses a running one with
// 409, and keeps plain DELETE semantics (cancel) intact.
func TestServerPurgeEndpoint(t *testing.T) {
	mgr, _, _, srv, dir := newLifecycleRig(t, Config{})

	sp := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	sp.Normalize()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, job.ID, StatusDone)

	doDelete := func(url string) (*http.Response, map[string]json.RawMessage) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]json.RawMessage
		json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
		resp.Body.Close()
		return resp, body
	}

	resp, body := doDelete(srv.URL + "/sweeps/" + job.ID + "?purge=1")
	if resp.StatusCode != http.StatusOK || string(body["purged"]) != "true" {
		t.Fatalf("purge = %d %v", resp.StatusCode, body)
	}
	if _, err := os.Stat(filepath.Join(dir, job.ID)); !os.IsNotExist(err) {
		t.Fatal("purged job dir still on disk")
	}
	if code := getJSON(t, srv.URL+"/sweeps/"+job.ID, nil); code != http.StatusNotFound {
		t.Fatalf("GET purged job = %d, want 404", code)
	}
	if resp, _ := doDelete(srv.URL + "/sweeps/" + job.ID + "?purge=1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double purge = %d, want 404", resp.StatusCode)
	}

	// Purging a running job is refused with 409 (cancel first). A
	// synthetic running job keeps the check deterministic — a real sweep
	// could finish before the request lands.
	const runningID = "feedabc123456789"
	closed := make(chan struct{})
	close(closed)
	mgr.mu.Lock()
	mgr.jobs[runningID] = &jobState{
		job:    Job{ID: runningID, Status: StatusRunning},
		cancel: func() {},
		done:   closed,
	}
	mgr.mu.Unlock()
	if resp, _ := doDelete(srv.URL + "/sweeps/" + runningID + "?purge=1"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("purge running = %d, want 409", resp.StatusCode)
	}
	if j, ok := mgr.Get(runningID); !ok || j.Status != StatusRunning {
		t.Fatalf("refused purge disturbed the job: %+v ok=%v", j, ok)
	}

	// A malformed purge value must be a 400 — not a silent cancel of a
	// running job the client only meant to purge.
	if resp, _ := doDelete(srv.URL + "/sweeps/" + runningID + "?purge=yes"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("purge=yes = %d, want 400", resp.StatusCode)
	}
	if j, ok := mgr.Get(runningID); !ok || j.Status != StatusRunning {
		t.Fatalf("bad purge value canceled the job: %+v ok=%v", j, ok)
	}
}

// registerSyntheticJobs stuffs the manager's job table with terminal
// entries, bypassing the runners — probe-cost tests need thousands of
// jobs without computing anything.
func registerSyntheticJobs(m *Manager, n int) {
	closed := make(chan struct{})
	close(closed)
	m.mu.Lock()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%016x", i)
		m.jobs[id] = &jobState{
			job:    Job{ID: id, Status: StatusDone},
			cancel: func() {},
			done:   closed,
		}
	}
	m.mu.Unlock()
}

// TestHealthzAllocsConstantPerJob pins the satellite perf fix: the
// liveness probe's cost must not allocate per retained job (it used to
// snapshot, copy, and sort every job via List()).
func TestHealthzAllocsConstantPerJob(t *testing.T) {
	alloc := func(jobs int) float64 {
		store, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		m := NewManager(store, nil, 1)
		defer m.Close()
		registerSyntheticJobs(m, jobs)
		return testing.AllocsPerRun(100, func() { m.Stats() })
	}
	small, large := alloc(8), alloc(2048)
	if large > small {
		t.Fatalf("Stats allocates per job: %.0f allocs at 8 jobs vs %.0f at 2048", small, large)
	}
}

func readAll(t *testing.T, res *http.Response) string {
	t.Helper()
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
