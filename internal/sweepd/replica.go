package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ncgio"
	"repro/internal/sweepd/store"
)

// VerifyReplica checks one incoming replica push against the job
// identity it claims: the manifest's spec must hash to the URL's job ID
// and the manifest's kernel, the job must be done, and the body must be
// the COMPLETE canonical checkpoint (one valid cell line per grid cell,
// in canonical cell order) plus, for trajectory specs, the complete
// sidecar. Verification means a replica can be served (and adoption
// seeded from it) with exactly the trust of a locally computed
// checkpoint — a corrupt, truncated, or mislabeled push never lands.
// It returns the decoded spec for the caller's manifest bookkeeping.
func VerifyReplica(id string, m store.ReplicaManifest, checkpoint, trajectory []byte) (Spec, error) {
	if m.JobID != id {
		return Spec{}, fmt.Errorf("sweepd: replica manifest job id %q does not match %q", m.JobID, id)
	}
	if m.Status != string(StatusDone) {
		return Spec{}, fmt.Errorf("sweepd: replica of job %s has non-terminal status %q; only done jobs replicate", id, m.Status)
	}
	var sp Spec
	if err := json.Unmarshal(m.Spec, &sp); err != nil {
		return Spec{}, fmt.Errorf("sweepd: replica of job %s: invalid spec: %w", id, err)
	}
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		return Spec{}, fmt.Errorf("sweepd: replica of job %s: invalid spec: %w", id, err)
	}
	if sp.ID() != id {
		return Spec{}, fmt.Errorf("sweepd: replica spec hashes to job %s, not %s", sp.ID(), id)
	}
	if kh := sp.KernelHash(); m.Kernel != kh {
		return Spec{}, fmt.Errorf("sweepd: replica of job %s: manifest kernel %q does not match spec kernel %q", id, m.Kernel, kh)
	}
	total := sp.NumCells()
	if m.CheckpointLines != total {
		return Spec{}, fmt.Errorf("sweepd: replica of job %s: manifest frames %d checkpoint lines, grid has %d cells", id, m.CheckpointLines, total)
	}
	ckLines := splitRecordLines(checkpoint)
	if len(ckLines) != total {
		return Spec{}, fmt.Errorf("sweepd: replica of job %s: checkpoint has %d complete lines, grid has %d cells", id, len(ckLines), total)
	}
	for i, line := range ckLines {
		rec, err := ncgio.UnmarshalCellResult(line)
		if err != nil {
			return Spec{}, fmt.Errorf("sweepd: replica of job %s: checkpoint line %d: %w", id, i, err)
		}
		if want := sp.CellsRange(i, i+1)[0]; rec.Cell != want {
			return Spec{}, fmt.Errorf("sweepd: replica of job %s: checkpoint line %d is cell %+v, canonical order wants %+v", id, i, rec.Cell, want)
		}
	}
	wantTraj := 0
	if sp.Trajectories {
		wantTraj = total
	}
	if m.TrajectoryLines != wantTraj {
		return Spec{}, fmt.Errorf("sweepd: replica of job %s: manifest frames %d trajectory lines, want %d", id, m.TrajectoryLines, wantTraj)
	}
	trLines := splitRecordLines(trajectory)
	if len(trLines) != wantTraj {
		return Spec{}, fmt.Errorf("sweepd: replica of job %s: sidecar has %d complete lines, want %d", id, len(trLines), wantTraj)
	}
	for i, line := range trLines {
		trec, err := ncgio.UnmarshalTrajectory(line)
		if err != nil {
			return Spec{}, fmt.Errorf("sweepd: replica of job %s: trajectory line %d: %w", id, i, err)
		}
		if want := sp.CellsRange(i, i+1)[0]; trec.Cell() != want {
			return Spec{}, fmt.Errorf("sweepd: replica of job %s: trajectory line %d is cell %+v, canonical order wants %+v", id, i, trec.Cell(), want)
		}
	}
	return sp, nil
}

// splitRecordLines splits checkpoint-format bytes into complete
// (newline-terminated) non-blank lines; a torn tail is dropped, same
// contract as ncgio's readers.
func splitRecordLines(data []byte) [][]byte {
	var out [][]byte
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return out // torn or empty tail: nothing provably whole
		}
		line := bytes.TrimSpace(data[:nl])
		data = data[nl+1:]
		if len(line) > 0 {
			out = append(out, line)
		}
	}
}

// ReplicatorOptions wires a Replicator into the daemon.
type ReplicatorOptions struct {
	// Store is where the finished jobs' primary artifacts live.
	Store JobStore
	// Fanout is how many members (besides the leader) should hold a copy
	// of each finished job; ≤ 0 defaults to 2.
	Fanout int
	// Self returns this daemon's advertise URL (never pushed to).
	Self func() string
	// Targets returns the alive members and their load snapshots;
	// replicas go to the least-loaded ones first.
	Targets func() []MemberLoad
	// Holders returns the alive members already advertising a replica of
	// the job (the deficit — Fanout minus these — is what gets pushed).
	// Nil means "assume none".
	Holders func(jobID string) []string
	// Generation returns the job's current lease generation for the
	// manifest's zombie guard; nil or 0 defaults to 1 (never-adopted).
	Generation func(jobID string) uint64
	// Client is the HTTP client for pushes; nil gets a 30s-timeout one.
	Client *http.Client
	// Logf receives replication diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Replicator pushes each finished job's immutable artifacts (spec,
// lifecycle record, checkpoint, trajectory sidecar) to the least-loaded
// alive members, so results survive the leader's disk and reads fan out
// across the mesh. Register JobFinished as a Manager.OnFinish hook;
// pushes run asynchronously and Close waits for in-flight ones. The
// deficit-based target choice makes re-fires idempotent: a job already
// held by Fanout alive members pushes nothing, so Resume re-announcing
// finished jobs after a restart heals under-replication without
// duplicating bytes.
type Replicator struct {
	opts ReplicatorOptions

	pushed       atomic.Uint64
	pushFailures atomic.Uint64
	bytesPushed  atomic.Uint64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewReplicator builds a replicator over the options.
func NewReplicator(opts ReplicatorOptions) *Replicator {
	if opts.Fanout <= 0 {
		opts.Fanout = 2
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Replicator{opts: opts}
}

func (rp *Replicator) logf(format string, args ...any) {
	if rp.opts.Logf != nil {
		rp.opts.Logf(format, args...)
	}
}

// JobFinished is the Manager.OnFinish hook: push the job's artifacts in
// the background (terminal-but-not-done jobs are skipped — canceled and
// failed checkpoints are partial, hence still mutable under resume).
func (rp *Replicator) JobFinished(job Job) {
	if job.Status != StatusDone {
		return
	}
	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		return
	}
	rp.wg.Add(1)
	rp.mu.Unlock()
	go func() {
		defer rp.wg.Done()
		if err := rp.Replicate(job); err != nil {
			rp.logf("sweepd: replicating job %s: %v", job.ID, err)
		}
	}()
}

// Replicate synchronously pushes the job's artifacts to enough
// least-loaded alive members to reach the configured fanout, skipping
// members that already hold a replica. Failed targets are skipped in
// favor of the next candidate; the residual deficit (if any) heals on
// the next finish re-fire (daemon restart) rather than blocking here.
func (rp *Replicator) Replicate(job Job) error {
	if job.Status != StatusDone {
		return nil
	}
	id := job.ID
	body, n, err := rp.buildBody(job)
	if err != nil {
		return err
	}

	holders := map[string]bool{}
	if rp.opts.Holders != nil {
		for _, u := range rp.opts.Holders(id) {
			holders[u] = true
		}
	}
	need := rp.opts.Fanout - len(holders)
	if need <= 0 {
		return nil
	}
	self := ""
	if rp.opts.Self != nil {
		self = rp.opts.Self()
	}
	var cands []MemberLoad
	for _, ml := range rp.opts.Targets() {
		if ml.URL == self || holders[ml.URL] {
			continue
		}
		cands = append(cands, ml)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Load != cands[j].Load {
			return cands[i].Load.Less(cands[j].Load)
		}
		return cands[i].URL < cands[j].URL
	})

	var firstErr error
	for _, ml := range cands {
		if need <= 0 {
			break
		}
		if err := rp.push(ml.URL, id, body); err != nil {
			rp.pushFailures.Add(1)
			rp.logf("sweepd: replica push of job %s to %s failed: %v", id, ml.URL, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		rp.pushed.Add(1)
		rp.bytesPushed.Add(uint64(len(body)))
		need--
	}
	if need > 0 && firstErr != nil {
		return firstErr
	}
	if need > 0 {
		rp.logf("sweepd: job %s under-replicated: %d of %d copies placed (%d cells)", id, rp.opts.Fanout-need, rp.opts.Fanout, n)
	}
	return nil
}

// buildBody assembles the wire body of POST /peer/replicas/{id}: one
// manifest line, then the full checkpoint, then the full sidecar.
func (rp *Replicator) buildBody(job Job) ([]byte, int, error) {
	id, sp := job.ID, job.Spec
	checkpoint, err := os.ReadFile(rp.opts.Store.ResultsPath(id))
	if err != nil {
		return nil, 0, fmt.Errorf("sweepd: replicating job %s: %w", id, err)
	}
	total := sp.NumCells()
	if got := len(splitRecordLines(checkpoint)); got != total {
		// A done job's checkpoint is the full canonical grid by
		// definition; anything else means the job was evicted (or its
		// file damaged) between finish and this push — don't ship it.
		return nil, 0, fmt.Errorf("sweepd: replicating job %s: checkpoint has %d complete lines, grid has %d cells", id, got, total)
	}
	var trajectory []byte
	trajLines := 0
	if sp.Trajectories {
		trajectory, err = os.ReadFile(rp.opts.Store.TrajectoryPath(id))
		if err != nil {
			return nil, 0, fmt.Errorf("sweepd: replicating job %s: %w", id, err)
		}
		trajLines = len(splitRecordLines(trajectory))
		if trajLines != total {
			return nil, 0, fmt.Errorf("sweepd: replicating job %s: sidecar has %d complete lines, grid has %d cells", id, trajLines, total)
		}
	}
	specJSON, err := json.Marshal(sp)
	if err != nil {
		return nil, 0, fmt.Errorf("sweepd: %w", err)
	}
	gen := uint64(1)
	if rp.opts.Generation != nil {
		if g := rp.opts.Generation(id); g > 0 {
			gen = g
		}
	}
	manifest := store.ReplicaManifest{
		JobID:           id,
		Kernel:          sp.KernelHash(),
		Generation:      gen,
		Status:          string(StatusDone),
		CheckpointLines: total,
		TrajectoryLines: trajLines,
		Spec:            specJSON,
		Created:         job.Created,
		Finished:        job.Finished,
	}
	head, err := json.Marshal(manifest)
	if err != nil {
		return nil, 0, fmt.Errorf("sweepd: %w", err)
	}
	body := make([]byte, 0, len(head)+1+len(checkpoint)+len(trajectory))
	body = append(body, head...)
	body = append(body, '\n')
	body = append(body, checkpoint...)
	if len(checkpoint) > 0 && checkpoint[len(checkpoint)-1] != '\n' {
		body = append(body, '\n')
	}
	body = append(body, trajectory...)
	return body, total, nil
}

// push POSTs one replica body to a member; any non-2xx answer is a
// failure except 200 from an up-to-date holder (the handler answers 200
// for an idempotent same-generation repush too).
func (rp *Replicator) push(base, id string, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, base+"/peer/replicas/"+id, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := rp.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("peer answered %s", resp.Status)
	}
	return nil
}

// Stats snapshots the push counters for /healthz and /metrics.
func (rp *Replicator) Stats() ReplicaStats {
	return ReplicaStats{
		Pushed:       rp.pushed.Load(),
		PushFailures: rp.pushFailures.Load(),
		BytesPushed:  rp.bytesPushed.Load(),
	}
}

// Close stops accepting new pushes and waits for in-flight ones.
func (rp *Replicator) Close() {
	rp.mu.Lock()
	rp.closed = true
	rp.mu.Unlock()
	rp.wg.Wait()
}
