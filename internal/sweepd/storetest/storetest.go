// Package storetest is the sweepd.JobStore conformance suite: every
// backend — the filesystem default today, anything else tomorrow — must
// pass Run, which pins the semantics the manager depends on (idempotent
// creation, spec round-trips, lifecycle metadata, torn-tail repair,
// deletion, orphan sweeping, trajectory reconciliation).
package storetest

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
	"repro/internal/sweepd"
)

// Run drives the conformance suite against a backend. open must return
// a fresh, empty store per call (each subtest gets its own).
func Run(t *testing.T, open func(t *testing.T) sweepd.JobStore) {
	t.Helper()

	spec := func() sweepd.Spec {
		sp := sweepd.Spec{N: 10, Alphas: []float64{1, 2}, Ks: []int{2}, Seeds: 2}
		sp.Normalize()
		return sp
	}

	t.Run("CreateIdempotent", func(t *testing.T) {
		st := open(t)
		sp := spec()
		id, created, err := st.CreateJob(sp)
		if err != nil || !created {
			t.Fatalf("CreateJob = %q, %v, %v; want created", id, created, err)
		}
		if id != sp.ID() {
			t.Fatalf("CreateJob id = %q, want the content address %q", id, sp.ID())
		}
		// Same spec ⇒ same ID ⇒ same job: the second create must report
		// the existing job, not fail and not duplicate.
		id2, created2, err := st.CreateJob(sp)
		if err != nil || created2 || id2 != id {
			t.Fatalf("second CreateJob = %q, %v, %v; want %q, false, nil", id2, created2, err, id)
		}
	})

	t.Run("SpecRoundTrip", func(t *testing.T) {
		st := open(t)
		sp := spec()
		sp.Trajectories = true
		sp.Normalize()
		id, _, err := st.CreateJob(sp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.LoadSpec(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != sp.ID() || !got.Trajectories {
			t.Fatalf("LoadSpec round-trip changed the spec: got %+v, want %+v", got, sp)
		}
		if _, err := st.LoadSpec("ffffffffffffffff"); err == nil {
			t.Fatal("LoadSpec of an absent job must error")
		}
	})

	t.Run("MetaRoundTrip", func(t *testing.T) {
		st := open(t)
		id, _, err := st.CreateJob(spec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.LoadMeta(id); err == nil {
			t.Fatal("LoadMeta before WriteMeta must error (callers fall back to timestamps)")
		}
		meta := sweepd.JobMeta{
			Created:  time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC),
			Finished: time.Date(2026, 8, 1, 11, 0, 0, 0, time.UTC),
		}
		if err := st.WriteMeta(id, meta); err != nil {
			t.Fatal(err)
		}
		got, err := st.LoadMeta(id)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Created.Equal(meta.Created) || !got.Finished.Equal(meta.Finished) {
			t.Fatalf("LoadMeta = %+v, want %+v", got, meta)
		}
	})

	t.Run("AppendAndLoadResults", func(t *testing.T) {
		st := open(t)
		sp := spec()
		id, _, err := st.CreateJob(sp)
		if err != nil {
			t.Fatal(err)
		}
		w, err := st.Appender(id)
		if err != nil {
			t.Fatal(err)
		}
		want := writeCells(t, w, sp, 3)
		got, err := st.LoadResults(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("LoadResults returned %d cells, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Cell != want[i] {
				t.Fatalf("LoadResults[%d].Cell = %+v, want %+v (canonical order)", i, got[i].Cell, want[i])
			}
		}
	})

	t.Run("TornTailRepair", func(t *testing.T) {
		st := open(t)
		sp := spec()
		id, _, err := st.CreateJob(sp)
		if err != nil {
			t.Fatal(err)
		}
		w, err := st.Appender(id)
		if err != nil {
			t.Fatal(err)
		}
		writeCells(t, w, sp, 2)
		// Simulate a crash mid-append: a newline-less half record on the
		// tail. LoadResults must return only the clean prefix, and a
		// fresh Appender must not merge new lines into the torn one.
		f, err := os.OpenFile(st.ResultsPath(id), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"alpha":1,"k":2,"torn`); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, err := st.LoadResults(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("LoadResults after torn tail returned %d cells, want the 2 clean ones", len(got))
		}
		w2, err := st.Appender(id)
		if err != nil {
			t.Fatal(err)
		}
		line, err := ncgio.MarshalCellResult(cellResult(sp, 2))
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.AppendLine(line); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		got, err = st.LoadResults(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("LoadResults after repair+append returned %d cells, want 3", len(got))
		}
	})

	t.Run("Delete", func(t *testing.T) {
		st := open(t)
		id, _, err := st.CreateJob(spec())
		if err != nil {
			t.Fatal(err)
		}
		if err := st.DeleteJob(id); err != nil {
			t.Fatal(err)
		}
		if _, err := st.LoadSpec(id); err == nil {
			t.Fatal("LoadSpec after DeleteJob must error")
		}
		ids, err := st.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 0 {
			t.Fatalf("Jobs after DeleteJob = %v, want none", ids)
		}
		// Deleting an absent job is a no-op, not an error (RemoveAll
		// semantics — eviction retries must stay idempotent).
		if err := st.DeleteJob(id); err != nil {
			t.Fatalf("second DeleteJob errored: %v", err)
		}
	})

	t.Run("JobsSortedCommittedOnly", func(t *testing.T) {
		st := open(t)
		var want []string
		for n := 10; n < 13; n++ {
			sp := sweepd.Spec{N: n, Alphas: []float64{1}, Ks: []int{2}, Seeds: 1}
			sp.Normalize()
			id, _, err := st.CreateJob(sp)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, id)
		}
		ids, err := st.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(want) {
			t.Fatalf("Jobs = %v, want %d jobs", ids, len(want))
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("Jobs not sorted: %v", ids)
			}
		}
	})

	t.Run("SweepOrphans", func(t *testing.T) {
		st := open(t)
		committed, _, err := st.CreateJob(spec())
		if err != nil {
			t.Fatal(err)
		}
		// A half-created job: dir without a committed spec (the crash
		// window between MkdirAll and the spec rename).
		orphan := "00000000000000aa"
		if err := os.MkdirAll(filepath.Dir(st.SpecPath(orphan)), 0o755); err != nil {
			t.Fatal(err)
		}
		// A cutoff in the past must remove nothing (the orphan is fresh —
		// it may be a CreateJob in flight).
		removed, err := st.SweepOrphans(time.Now().Add(-time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		if removed != 0 {
			t.Fatalf("SweepOrphans(past cutoff) removed %d, want 0", removed)
		}
		// A future cutoff reaps the orphan but never a committed job.
		removed, err = st.SweepOrphans(time.Now().Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		if removed != 1 {
			t.Fatalf("SweepOrphans(future cutoff) removed %d, want 1", removed)
		}
		if _, err := st.LoadSpec(committed); err != nil {
			t.Fatalf("committed job was swept: %v", err)
		}
	})

	t.Run("ReconcileTrajectories", func(t *testing.T) {
		st := open(t)
		sp := spec()
		sp.Trajectories = true
		sp.Normalize()
		id, _, err := st.CreateJob(sp)
		if err != nil {
			t.Fatal(err)
		}
		ck, err := st.Appender(id)
		if err != nil {
			t.Fatal(err)
		}
		writeCells(t, ck, sp, 2)
		tw, err := st.TrajectoryAppender(id)
		if err != nil {
			t.Fatal(err)
		}
		// Sidecar runs one record ahead: the mid-append crash shape
		// (sidecar line written, checkpoint line lost).
		for i := 0; i < 3; i++ {
			c := sp.CellsRange(i, i+1)[0]
			line, err := ncgio.MarshalTrajectory(c, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := tw.AppendLine(line); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := st.ReconcileTrajectories(id); err != nil {
			t.Fatal(err)
		}
		res, err := st.LoadResults(id)
		if err != nil {
			t.Fatal(err)
		}
		recs := readTrajectories(t, st.TrajectoryPath(id))
		if len(res) != 2 || len(recs) != 2 {
			t.Fatalf("after reconcile: %d checkpoint cells, %d sidecar records; want 2 and 2 (longest common prefix)", len(res), len(recs))
		}
	})
}

// cellResult fabricates a valid result for the spec's i-th canonical
// cell (zero Result marshals as a converged run — fine for storage
// semantics, which never inspect outcomes).
func cellResult(sp sweepd.Spec, i int) dynamics.CellResult {
	return dynamics.CellResult{Cell: sp.CellsRange(i, i+1)[0]}
}

// writeCells appends the spec's first n canonical cells to w (closing
// it) and returns their cells in order.
func writeCells(t *testing.T, w *ncgio.CheckpointWriter, sp sweepd.Spec, n int) []dynamics.Cell {
	t.Helper()
	var cells []dynamics.Cell
	for i := 0; i < n; i++ {
		line, err := ncgio.MarshalCellResult(cellResult(sp, i))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendLine(line); err != nil {
			t.Fatal(err)
		}
		cells = append(cells, sp.CellsRange(i, i+1)[0])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return cells
}

// readTrajectories parses every line of a trajectory sidecar.
func readTrajectories(t *testing.T, path string) []ncgio.TrajectoryRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []ncgio.TrajectoryRecord
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		tr, err := ncgio.UnmarshalTrajectory(line)
		if err != nil {
			t.Fatalf("bad sidecar line %q: %v", line, err)
		}
		recs = append(recs, tr)
	}
	return recs
}
