package sweepd

import (
	"strings"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
	"repro/internal/swap"
)

// dialectSpec is a valid baseline the validation table mutates.
func dialectSpec() Spec {
	return Spec{N: 14, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2,
		MaxRounds: 40, CycleCheckAfter: 40}
}

func TestDialectAndGraphValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string // substring of the expected error, "" = valid
	}{
		{"default-dialect", func(sp *Spec) {}, ""},
		{"explicit-best-response", func(sp *Spec) { sp.Dialect = "best-response" }, ""},
		{"swap", func(sp *Spec) { sp.Dialect = "swap" }, ""},
		{"large-neighborhood", func(sp *Spec) { sp.Dialect = "large-neighborhood" }, ""},
		{"unknown-dialect", func(sp *Spec) { sp.Dialect = "bogus" }, "unknown dialect"},
		{"unknown-graph", func(sp *Spec) { sp.Graph = "hypercube" }, "unknown graph"},
		{"gnp-needs-p", func(sp *Spec) { sp.Graph = "gnp" }, "0 < p < 1"},
		{"gnp-below-threshold", func(sp *Spec) { sp.Graph = "gnp"; sp.P = 0.01 }, "connectivity threshold"},
		{"grid-delete-zero-p", func(sp *Spec) { sp.Graph = "grid-delete" }, ""},
		{"grid-delete-ok", func(sp *Spec) { sp.Graph = "grid-delete"; sp.P = 0.3 }, ""},
		{"grid-delete-negative-p", func(sp *Spec) { sp.Graph = "grid-delete"; sp.P = -0.1 }, "0 ≤ p < 1"},
		{"grid-delete-too-high", func(sp *Spec) { sp.Graph = "grid-delete"; sp.P = 0.6 }, "p < 0.5"},
		{"pa-tree", func(sp *Spec) { sp.Graph = "pa-tree" }, ""},
		{"random-regular-ok", func(sp *Spec) { sp.Graph = "random-regular"; sp.Q = 3 }, ""},
		{"random-regular-missing-q", func(sp *Spec) { sp.Graph = "random-regular" }, "3 ≤ q < n"},
		{"random-regular-low-q", func(sp *Spec) { sp.Graph = "random-regular"; sp.Q = 2 }, "3 ≤ q < n"},
		{"random-regular-huge-q", func(sp *Spec) { sp.Graph = "random-regular"; sp.Q = 14 }, "3 ≤ q < n"},
		{"random-regular-odd-product", func(sp *Spec) { sp.N = 13; sp.Q = 3; sp.Graph = "random-regular" }, "n·q even"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := dialectSpec()
			c.mutate(&sp)
			sp.Normalize()
			err := sp.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				// Every valid spec must build its engine pieces.
				if sp.Config().MaxRounds != sp.MaxRounds {
					t.Fatal("Config did not carry the round budget")
				}
				if sp.Factory() == nil {
					t.Fatal("nil factory")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

// TestNormalizeZeroesForeignParams pins the hash discipline: a graph
// family zeroes the parameters that do not apply to it, so specs that
// mean the same job hash the same, and the canonical JSON of legacy
// specs never grows fields.
func TestNormalizeZeroesForeignParams(t *testing.T) {
	sp := dialectSpec()
	sp.Dialect = "best-response"
	sp.P = 0.4
	sp.Q = 5
	sp.Normalize()
	if sp.Dialect != "" {
		t.Fatalf("best-response should normalize to the empty dialect, got %q", sp.Dialect)
	}
	if sp.P != 0 || sp.Q != 0 {
		t.Fatalf("tree family should zero p and q, got p=%g q=%d", sp.P, sp.Q)
	}
	clean := dialectSpec()
	clean.Normalize()
	if sp.ID() != clean.ID() || sp.KernelHash() != clean.KernelHash() {
		t.Fatal("specs meaning the same job hash differently")
	}

	rr := dialectSpec()
	rr.Graph = "random-regular"
	rr.Q = 4
	rr.P = 0.3
	rr.Normalize()
	if rr.P != 0 || rr.Q != 4 {
		t.Fatalf("random-regular should zero p and keep q, got p=%g q=%d", rr.P, rr.Q)
	}
	gd := dialectSpec()
	gd.Graph = "grid-delete"
	gd.P = 0.2
	gd.Q = 9
	gd.Normalize()
	if gd.P != 0.2 || gd.Q != 0 {
		t.Fatalf("grid-delete should keep p and zero q, got p=%g q=%d", gd.P, gd.Q)
	}
}

// TestDialectsAreDistinctJobs submits the same grid under all three
// dialects to one manager: each is its own content-addressed job with
// its own kernel (no cache cross-talk), and all finish through the
// unmodified serving path.
func TestDialectsAreDistinctJobs(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(256), 2)
	defer mgr.Close()

	ids := map[string]bool{}
	kernels := map[string]bool{}
	for _, d := range []string{"best-response", "swap", "large-neighborhood"} {
		sp := dialectSpec()
		sp.Dialect = d
		sp.Normalize()
		if err := sp.Validate(); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		job, _, err := mgr.Submit(sp)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		waitStatus(t, mgr, job.ID, StatusDone)
		ids[job.ID] = true
		kernels[sp.KernelHash()] = true
	}
	if len(ids) != 3 || len(kernels) != 3 {
		t.Fatalf("dialects must be distinct jobs with distinct kernels, got %d ids, %d kernels", len(ids), len(kernels))
	}
}

func swapObjective(variant string) swap.Objective {
	if variant == "sum" {
		return swap.SumDist
	}
	return swap.MaxEcc
}

// TestSwapDialectMatchesSwapRun is the swap dialect's differential
// guarantee: a daemon-submitted swap sweep is cell-for-cell equal to
// running swap.Run directly over the same seeds — same convergence
// verdict, same round and move counts, same final network. The spec sets
// cycle_check_after = max_rounds so the engine's cycle detector (which
// swap.Run does not have) can never fire, making statuses comparable.
func TestSwapDialectMatchesSwapRun(t *testing.T) {
	for _, variant := range []string{"max", "sum"} {
		t.Run(variant, func(t *testing.T) {
			sp := Spec{
				Dialect: "swap", Variant: variant,
				Graph: "grid-delete", N: 16, P: 0.2,
				Alphas: []float64{1}, Ks: []int{2, 3}, Seeds: 3,
				MaxRounds: 60, CycleCheckAfter: 60,
			}
			sp.Normalize()
			if err := sp.Validate(); err != nil {
				t.Fatal(err)
			}
			store, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			mgr := NewManager(store, NewCache(256), 3)
			defer mgr.Close()
			job, _, err := mgr.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			waitStatus(t, mgr, job.ID, StatusDone)

			results, err := ncgio.ReadCheckpoint(store.ResultsPath(job.ID))
			if err != nil {
				t.Fatal(err)
			}
			cells := sp.Cells()
			if len(results) != len(cells) {
				t.Fatalf("%d result lines for %d cells", len(results), len(cells))
			}
			factory := sp.Factory()
			obj := swapObjective(variant)
			for i, r := range results {
				cell := cells[i]
				if r.Cell != cell {
					t.Fatalf("line %d: cell %+v, want %+v", i, r.Cell, cell)
				}
				s := dynamics.CellState(factory, cell, sp.BaseSeed)
				direct := swap.Run(s, cell.K, obj, sp.MaxRounds)
				if direct.Converged != (r.Result.Status == dynamics.Converged) {
					t.Fatalf("cell %+v: daemon status %v, direct converged=%v", cell, r.Result.Status, direct.Converged)
				}
				if direct.Rounds != r.Result.Rounds {
					t.Fatalf("cell %+v: daemon rounds %d, direct %d", cell, r.Result.Rounds, direct.Rounds)
				}
				if direct.Swaps != r.Result.TotalMoves {
					t.Fatalf("cell %+v: daemon moves %d, direct swaps %d", cell, r.Result.TotalMoves, direct.Swaps)
				}
				if r.Result.Final == nil || s.Fingerprint() != r.Result.Final.Fingerprint() {
					t.Fatalf("cell %+v: final networks differ", cell)
				}
			}
		})
	}
}

// TestLargeNeighborhoodDialectDeterministic replays each daemon cell of
// a large-neighborhood sweep through the engine directly — the dialect
// must be a pure function of (spec, cell) like every other.
func TestLargeNeighborhoodDialectDeterministic(t *testing.T) {
	sp := Spec{
		Dialect: "large-neighborhood", Variant: "sum",
		Graph: "pa-tree", N: 12,
		Alphas: []float64{1, 2}, Ks: []int{2}, Seeds: 2,
		MaxRounds: 40, CycleCheckAfter: 10,
	}
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(256), 2)
	defer mgr.Close()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, job.ID, StatusDone)

	results, err := ncgio.ReadCheckpoint(store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	factory := sp.Factory()
	for i, r := range results {
		cell := sp.Cells()[i]
		s := dynamics.CellState(factory, cell, sp.BaseSeed)
		cfg := sp.Config()
		cfg.Alpha, cfg.K = cell.Alpha, cell.K
		direct := dynamics.Run(s, cfg)
		if direct.Status != r.Result.Status || direct.Rounds != r.Result.Rounds ||
			direct.TotalMoves != r.Result.TotalMoves {
			t.Fatalf("cell %+v: direct (%v, %d rounds, %d moves) != daemon (%v, %d, %d)",
				cell, direct.Status, direct.Rounds, direct.TotalMoves,
				r.Result.Status, r.Result.Rounds, r.Result.TotalMoves)
		}
		if r.Result.Final == nil || direct.Final.Fingerprint() != r.Result.Final.Fingerprint() {
			t.Fatalf("cell %+v: final networks differ", cell)
		}
	}
}
