// Package shard scales sweepd horizontally: a Pool of peer daemons acts
// as a pluggable dynamics.Executor that leases contiguous cell ranges of
// a job's canonical grid to followers over HTTP and merges their streamed
// results with local computation.
//
// # Architecture
//
// Every ncg-server daemon is symmetric: it serves POST /peer/leases as a
// follower (computing leased ranges on its own worker pool, drawing from
// the same gate as its local jobs) and, when started with -peers, acts as
// a leader whose jobs fan out through this package. There is no separate
// coordinator process and no shared storage — the only coupling is the
// lease protocol.
//
// The flow for one job:
//
//	Manager.runJob
//	  └─ dynamics.SweepContext          (sequencing: Have, hold-back, OnResult)
//	       └─ sweepd.dedupExecutor      (in-flight (kernel, cell) coalescing)
//	            └─ shard executor       (this package)
//	                 ├─ local consumer  → dynamics.LocalExecutor
//	                 └─ one goroutine per peer → POST /peer/leases
//
// The executor splits the job's todo indices into maximal consecutive
// runs capped at the configured lease size, then lets the local pool and
// the peer goroutines pull ranges from one shared queue — natural load
// balancing with zero planning: fast peers simply pull more leases.
//
// # Peer sources
//
// Which peers a job leases to comes from a PeerSource, snapshotted once
// per job so membership changes never touch a job in flight. New wraps
// a static -peers list (normalized and deduplicated); NewFromSource
// accepts a live source — in production the cluster.Registry, whose
// AlivePeers() excludes suspect and down members. When the source also
// implements FailureReporter, every failed lease is reported back, so
// the registry demotes the peer immediately and subsequent jobs skip it
// until a health probe readmits it; a static source simply retries the
// peer on the next job, the original behavior. See package cluster for
// discovery (hello/gossip), health probing, and backoff.
//
// # Determinism
//
// Per-cell seeding derives each cell's RNG from the job's base seed and
// the cell coordinates alone, so a cell computes to identical bytes on
// any daemon. Followers stream canonical ncgio CellResult lines in
// canonical order; the leader unmarshals each line, verifies its cell
// coordinates against the leased range, and feeds the Result into the
// same sequencing layer local results use. Checkpoints are therefore
// byte-identical with 0, 1, or N peers, and across peer loss mid-sweep —
// the property the two-daemon end-to-end tests pin down.
//
// # Failure model
//
// A lease is presumed dead when its stream yields no bytes (results or
// blank heartbeat lines, which followers interleave while long cells
// compute) for Options.LeaseTTL. The leader then cancels the request,
// counts a lease failure, recomputes the undelivered remainder of that
// range locally, and stops leasing to that peer for the rest of the
// Execute call (the next job probes it afresh). Cells already streamed
// back are kept — a half-served lease wastes only its tail. The same
// reclaim path covers rejected leases (non-200), disconnects, short
// streams, and malformed or misaligned lines. Followers never push work
// and leaders never retry a range on another peer before falling back
// locally, so no cell can be double-appended and a sweep always
// completes as long as the leader itself survives.
package shard
