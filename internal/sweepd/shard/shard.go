package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
	"repro/internal/sweepd"
)

// Options tunes a Pool. The zero value is production-ready.
type Options struct {
	// LeaseCells caps how many cells one lease covers (default 64).
	// Smaller leases balance better and lose less to a dead peer;
	// larger leases amortize HTTP overhead.
	LeaseCells int
	// LeaseTTL is the heartbeat watchdog: a lease whose stream delivers
	// no bytes for this long is canceled and its remainder reclaimed
	// locally (default 45s; followers heartbeat every ~15s).
	LeaseTTL time.Duration
	// DialTimeout bounds connection establishment (TCP dial and TLS
	// handshake) of the default client (default 5s). Without it a
	// black-holed peer — dropped SYNs, no RST — would stall every lease
	// attempt for the full lease TTL before reclaim. Ignored when Client
	// is set.
	DialTimeout time.Duration
	// Client issues the lease requests (default: a client with the
	// bounded DialTimeout but no overall timeout — leases are long-lived
	// streams whose liveness the TTL watchdog owns).
	Client *http.Client
}

// PeerSource supplies the peers a job may lease to. The pool snapshots
// it once per job, so membership changes never touch a job in flight.
// cluster.Registry implements it (alive members only); a static -peers
// list is wrapped by New.
type PeerSource interface {
	AlivePeers() []string
}

// FailureReporter is an optional PeerSource extension: when the source
// implements it, the pool reports each peer whose lease failed, letting
// a registry demote the peer immediately instead of every subsequent
// job rediscovering the failure at lease-TTL cost.
type FailureReporter interface {
	ReportLeaseFailure(url string)
}

// staticPeers is the PeerSource for a fixed -peers list: always "alive",
// exactly the pre-registry behavior.
type staticPeers []string

func (s staticPeers) AlivePeers() []string { return s }

// Pool fans sweep work out to peer daemons. It implements
// sweepd.ExecutorProvider; install it with Manager.SetExecutorProvider.
// A Pool is safe for concurrent use by many jobs.
type Pool struct {
	source PeerSource
	opts   Options

	leasesIssued  atomic.Uint64
	leaseFailures atomic.Uint64
	remoteCells   atomic.Uint64
}

// New builds a pool over a static list of peer base URLs (e.g.
// "http://10.0.0.2:8080"). URLs are normalized (trailing slashes
// stripped) and deduplicated, so programmatic callers get the same
// hygiene as the -peers flag — "http://a:1" and "http://a:1/" never
// spawn two lease goroutines against one peer. An empty peer list is
// valid: every job then runs locally.
func New(peers []string, opts Options) *Pool {
	return NewFromSource(staticPeers(sweepd.NormalizePeerURLs(peers)), opts)
}

// NewFromSource builds a pool whose peers come from a live source —
// usually a cluster.Registry — consulted afresh for each job.
func NewFromSource(source PeerSource, opts Options) *Pool {
	if opts.LeaseCells <= 0 {
		opts.LeaseCells = 64
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 45 * time.Second
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   opts.DialTimeout,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout: opts.DialTimeout,
			MaxIdleConns:        64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return &Pool{source: source, opts: opts}
}

// Stats snapshots the leader-side sharding counters. Peers is the
// number of peers the pool would lease to right now.
func (p *Pool) Stats() sweepd.PeerStats {
	return sweepd.PeerStats{
		Peers:         len(p.source.AlivePeers()),
		LeasesIssued:  p.leasesIssued.Load(),
		LeaseFailures: p.leaseFailures.Load(),
		RemoteCells:   p.remoteCells.Load(),
	}
}

// ExecutorFor implements sweepd.ExecutorProvider. It snapshots the
// source's alive peers for this job and returns nil (run locally) when
// none are alive. Trajectory specs shard like any other: their leases
// stream ncgio lease records carrying each cell's per-round stats next
// to its canonical result line.
func (p *Pool) ExecutorFor(sp sweepd.Spec, onRemote func(cells int)) dynamics.Executor {
	peers := p.source.AlivePeers()
	if len(peers) == 0 {
		return nil
	}
	return &executor{pool: p, peers: peers, spec: sp, onRemote: onRemote}
}

// reportFailure feeds a failed lease back to the peer source (when it
// accepts feedback), so registries demote the peer for subsequent jobs.
func (p *Pool) reportFailure(peer string) {
	if fr, ok := p.source.(FailureReporter); ok {
		fr.ReportLeaseFailure(peer)
	}
}

// executor shards one job's cells between the local pool and the job's
// snapshot of alive peers.
type executor struct {
	pool     *Pool
	peers    []string
	spec     sweepd.Spec
	onRemote func(cells int)
}

// cellRange is a contiguous [start, end) slice of the canonical grid.
type cellRange struct{ start, end int }

func (cr cellRange) len() int { return cr.end - cr.start }

func (cr cellRange) todo() []int {
	out := make([]int, 0, cr.len())
	for i := cr.start; i < cr.end; i++ {
		out = append(out, i)
	}
	return out
}

// contiguousRanges splits ascending todo indices into maximal consecutive
// runs, each capped at max cells. Resume holes (cells satisfied from the
// checkpoint or cache) end a run, so every range maps to one lease over
// [start, end) of the full grid.
func contiguousRanges(todo []int, max int) []cellRange {
	var out []cellRange
	for i := 0; i < len(todo); {
		start := todo[i]
		j := i + 1
		for j < len(todo) && todo[j] == todo[j-1]+1 && j-i < max {
			j++
		}
		out = append(out, cellRange{start: start, end: todo[j-1] + 1})
		i = j
	}
	return out
}

// Execute implements dynamics.Executor: local pool and peers pull lease-
// sized ranges from one shared queue; failed leases are reclaimed by
// recomputing their undelivered remainder locally.
func (e *executor) Execute(ctx context.Context, req dynamics.ExecRequest) <-chan dynamics.IndexedResult {
	out := make(chan dynamics.IndexedResult)
	go func() {
		defer close(out)
		queue := make(chan cellRange)
		go func() {
			defer close(queue)
			for _, cr := range contiguousRanges(req.Todo, e.pool.opts.LeaseCells) {
				select {
				case queue <- cr:
				case <-ctx.Done():
					return
				}
			}
		}()
		send := func(ir dynamics.IndexedResult) bool {
			select {
			case out <- ir:
				return true
			case <-ctx.Done():
				return false
			}
		}
		local := func(todo []int) {
			if len(todo) == 0 {
				return
			}
			sub := req
			sub.Todo = todo
			for ir := range (dynamics.LocalExecutor{}).Execute(ctx, sub) {
				if !send(ir) {
					break
				}
			}
		}

		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // local consumer
			defer wg.Done()
			for cr := range queue {
				local(cr.todo())
			}
		}()
		for _, peer := range e.peers {
			wg.Add(1)
			go func(peer string) {
				defer wg.Done()
				for cr := range queue {
					e.pool.leasesIssued.Add(1)
					got, err := e.lease(ctx, peer, cr, req.Cells, send)
					if err != nil {
						if got > 0 {
							e.recordRemote(got)
						}
						// Reclaim the undelivered remainder locally, then
						// retire this peer for the rest of the sweep and
						// report it to the peer source, so a registry
						// demotes it for subsequent jobs too (a static
						// source just probes it afresh next job). A sweep
						// canceled outright is not a peer failure.
						if ctx.Err() == nil {
							e.pool.leaseFailures.Add(1)
							e.pool.reportFailure(peer)
							local(cr.todo()[got:])
						}
						return
					}
					e.recordRemote(cr.len())
				}
			}(peer)
		}
		wg.Wait()
	}()
	return out
}

func (e *executor) recordRemote(cells int) {
	e.pool.remoteCells.Add(uint64(cells))
	if e.onRemote != nil {
		e.onRemote(cells)
	}
}

// lease asks one peer for [cr.start, cr.end) and streams the results
// into send as they arrive, returning how many cells were delivered. The
// TTL watchdog cancels a stream that goes silent (no result lines and no
// heartbeats); any error leaves the remainder to the caller's reclaim.
func (e *executor) lease(ctx context.Context, peer string, cr cellRange, cells []dynamics.Cell, send func(dynamics.IndexedResult) bool) (got int, err error) {
	body, err := json.Marshal(sweepd.LeaseRequest{Spec: e.spec, Start: cr.start, End: cr.end})
	if err != nil {
		return 0, err
	}
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ttl := e.pool.opts.LeaseTTL
	watchdog := time.AfterFunc(ttl, cancel)
	defer watchdog.Stop()

	// A 429 is load shedding (-peer-rate on the follower), not death:
	// honor Retry-After and retry instead of retiring a healthy peer,
	// bounding total backoff by the lease TTL so a peer that only ever
	// throttles still falls back to local compute eventually.
	var resp *http.Response
	for backoff := time.Duration(0); ; {
		hreq, err := http.NewRequestWithContext(lctx, http.MethodPost, peer+"/peer/leases", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err = e.pool.opts.Client.Do(hreq)
		if err != nil {
			return 0, fmt.Errorf("shard: peer %s: %w", peer, err)
		}
		if resp.StatusCode != http.StatusTooManyRequests || backoff >= ttl {
			break
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		resp.Body.Close()
		wait := sweepd.RetryAfter(resp, time.Now(), ttl)
		watchdog.Reset(wait + ttl)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		backoff += wait
		watchdog.Reset(ttl)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return 0, fmt.Errorf("shard: peer %s rejected lease: %s", peer, resp.Status)
	}

	br := bufio.NewReaderSize(resp.Body, 64*1024)
	want := cr.len()
	for got < want {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil {
			return got, fmt.Errorf("shard: peer %s: lease stream ended after %d of %d cells: %w", peer, got, want, rerr)
		}
		watchdog.Reset(ttl)
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue // heartbeat
		}
		var rec dynamics.CellResult
		var uerr error
		if e.spec.Trajectories {
			// Trajectory leases wrap each result line with its per-round
			// stats; unwrapping reattaches them, so the sidecar the leader
			// writes is identical to a locally computed cell's.
			rec, uerr = ncgio.UnmarshalLeaseRecord(line)
		} else {
			rec, uerr = ncgio.UnmarshalCellResult(line)
		}
		if uerr != nil {
			return got, fmt.Errorf("shard: peer %s: %w", peer, uerr)
		}
		idx := cr.start + got
		if rec.Cell != cells[idx] {
			return got, fmt.Errorf("shard: peer %s returned cell %+v at grid index %d, want %+v", peer, rec.Cell, idx, cells[idx])
		}
		if !send(dynamics.IndexedResult{Index: idx, Result: rec.Result}) {
			return got, ctx.Err()
		}
		got++
	}
	return got, nil
}
