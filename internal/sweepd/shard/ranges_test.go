package shard

import (
	"reflect"
	"testing"
)

func TestContiguousRanges(t *testing.T) {
	cases := []struct {
		name string
		todo []int
		max  int
		want []cellRange
	}{
		{"empty", nil, 4, nil},
		{"one run under cap", []int{2, 3, 4}, 8, []cellRange{{2, 5}}},
		{"cap splits a run", []int{0, 1, 2, 3, 4}, 2, []cellRange{{0, 2}, {2, 4}, {4, 5}}},
		{"resume hole splits", []int{0, 1, 5, 6, 7}, 8, []cellRange{{0, 2}, {5, 8}}},
		{"singletons", []int{1, 3, 5}, 4, []cellRange{{1, 2}, {3, 4}, {5, 6}}},
	}
	for _, tc := range cases {
		got := contiguousRanges(tc.todo, tc.max)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: contiguousRanges(%v, %d) = %v, want %v", tc.name, tc.todo, tc.max, got, tc.want)
		}
	}
	// Every range must reconstruct exactly its todo slice.
	todo := []int{0, 1, 2, 7, 8, 20}
	var flat []int
	for _, cr := range contiguousRanges(todo, 2) {
		flat = append(flat, cr.todo()...)
	}
	if !reflect.DeepEqual(flat, todo) {
		t.Fatalf("ranges lose cells: %v vs %v", flat, todo)
	}
}
