package shard_test

// End-to-end tests for the peer-sharding subsystem: real daemons wired
// over httptest, proving the acceptance criterion — checkpoints are
// byte-identical with 0, 1, or 2 peers, across a peer killed mid-sweep,
// and across a peer that hangs until the lease TTL reclaims its range.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweepd"
	"repro/internal/sweepd/cluster"
	"repro/internal/sweepd/shard"
)

func e2eSpec() sweepd.Spec {
	sp := sweepd.Spec{
		N:      16,
		Alphas: []float64{0.5, 1, 2},
		Ks:     []int{2, 1000},
		Seeds:  4, // 24 cells
	}
	sp.Normalize()
	return sp
}

// daemon is one in-process sweepd instance with its HTTP surface.
type daemon struct {
	store *sweepd.Store
	mgr   *sweepd.Manager
	srv   *httptest.Server
	// leases counts POST /peer/leases requests that reached this daemon.
	leases atomic.Uint64
}

func newDaemon(t *testing.T, workers int) *daemon {
	t.Helper()
	store, err := sweepd.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := sweepd.NewManager(store, sweepd.NewCache(4096), workers)
	h := sweepd.NewHandlerConfig(mgr, sweepd.Config{
		PollInterval:      5 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	d := &daemon{store: store, mgr: mgr}
	d.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/peer/leases" {
			d.leases.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		d.srv.Close()
		d.mgr.Close()
	})
	return d
}

// newClusterDaemon is newDaemon plus a live membership registry wired
// into the HTTP surface: the daemon accepts POST /peer/hello, serves
// GET /peer/members, probes its peers, and (when seeded) announces
// itself — a full in-process ncg-server as far as clustering goes.
func newClusterDaemon(t *testing.T, workers int, probeInterval time.Duration, seeds ...string) (*daemon, *cluster.Registry) {
	t.Helper()
	store, err := sweepd.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := sweepd.NewManager(store, sweepd.NewCache(4096), workers)
	reg := cluster.New(cluster.Options{
		Seeds:         seeds,
		ProbeInterval: probeInterval,
		DownAfter:     2,
	})
	h := sweepd.NewHandlerConfig(mgr, sweepd.Config{
		PollInterval:      5 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		Cluster:           reg,
	})
	d := &daemon{store: store, mgr: mgr}
	d.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/peer/leases" {
			d.leases.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	reg.SetSelf(d.srv.URL)
	reg.Start()
	t.Cleanup(func() {
		reg.Close()
		d.srv.Close()
		d.mgr.Close()
	})
	return d, reg
}

func waitDone(t *testing.T, m *sweepd.Manager, id string) sweepd.Job {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch job.Status {
		case sweepd.StatusDone:
			return job
		case sweepd.StatusFailed:
			t.Fatalf("job failed: %s", job.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timed out waiting for job")
	return sweepd.Job{}
}

// runSharded runs the spec on a fresh leader sharded across the given
// peers and returns the finished checkpoint bytes plus the leader's job
// snapshot and pool.
func runSharded(t *testing.T, sp sweepd.Spec, opts shard.Options, peers ...*daemon) ([]byte, sweepd.Job, *shard.Pool) {
	t.Helper()
	leader := newDaemon(t, 4)
	urls := make([]string, 0, len(peers))
	for _, p := range peers {
		urls = append(urls, p.srv.URL)
	}
	pool := shard.New(urls, opts)
	leader.mgr.SetExecutorProvider(pool)
	job, _, err := leader.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, leader.mgr, job.ID)
	data, err := os.ReadFile(leader.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	return data, done, pool
}

// TestShardedSweepByteIdentical is the acceptance criterion: the same
// spec finishes with byte-identical checkpoints on a lone daemon, a
// leader with one peer, and a leader with two peers — and the peers
// demonstrably served leases.
func TestShardedSweepByteIdentical(t *testing.T) {
	sp := e2eSpec()
	opts := shard.Options{LeaseCells: 3, LeaseTTL: 30 * time.Second}

	ref, refJob, _ := runSharded(t, sp, opts) // zero peers
	if refJob.RemoteCells != 0 {
		t.Fatalf("peerless run reports %d remote cells", refJob.RemoteCells)
	}
	if len(ref) == 0 {
		t.Fatal("reference checkpoint is empty")
	}

	p1 := newDaemon(t, 2)
	one, oneJob, pool1 := runSharded(t, sp, opts, p1)
	if !bytes.Equal(one, ref) {
		t.Fatalf("1-peer checkpoint differs from lone-daemon run (%d vs %d bytes)", len(one), len(ref))
	}
	if p1.leases.Load() == 0 {
		t.Fatal("peer served no leases; the sharded path was not exercised")
	}
	if st := pool1.Stats(); st.RemoteCells == 0 || st.LeasesIssued == 0 {
		t.Fatalf("pool stats show no remote work: %+v", st)
	}
	if oneJob.RemoteCells == 0 {
		t.Fatal("job snapshot counted no remote cells")
	}

	p2a, p2b := newDaemon(t, 2), newDaemon(t, 2)
	two, _, _ := runSharded(t, sp, opts, p2a, p2b)
	if !bytes.Equal(two, ref) {
		t.Fatalf("2-peer checkpoint differs from lone-daemon run (%d vs %d bytes)", len(two), len(ref))
	}
	if p2a.leases.Load()+p2b.leases.Load() == 0 {
		t.Fatal("neither peer served a lease")
	}
}

// TestShardedTrajectorySweep: a trajectory spec shards like any other —
// its leases stream lease records carrying per-round stats — and both the
// checkpoint and the trajectory sidecar finish byte-identical to a
// lone-daemon run's.
func TestShardedTrajectorySweep(t *testing.T) {
	sp := sweepd.Spec{
		N:            14,
		Alphas:       []float64{0.5, 2},
		Ks:           []int{2, 1000},
		Seeds:        3, // 12 cells
		Trajectories: true,
	}
	sp.Normalize()
	opts := shard.Options{LeaseCells: 2, LeaseTTL: 30 * time.Second}

	run := func(peers ...*daemon) ([]byte, []byte, sweepd.Job) {
		t.Helper()
		leader := newDaemon(t, 4)
		urls := make([]string, 0, len(peers))
		for _, p := range peers {
			urls = append(urls, p.srv.URL)
		}
		leader.mgr.SetExecutorProvider(shard.New(urls, opts))
		job, _, err := leader.mgr.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		done := waitDone(t, leader.mgr, job.ID)
		ckpt, err := os.ReadFile(leader.store.ResultsPath(job.ID))
		if err != nil {
			t.Fatal(err)
		}
		traj, err := os.ReadFile(leader.store.TrajectoryPath(job.ID))
		if err != nil {
			t.Fatal(err)
		}
		return ckpt, traj, done
	}

	refCkpt, refTraj, refJob := run() // zero peers
	if len(refCkpt) == 0 || len(refTraj) == 0 {
		t.Fatal("reference run left an empty checkpoint or sidecar")
	}
	if refJob.RemoteCells != 0 {
		t.Fatalf("peerless run reports %d remote cells", refJob.RemoteCells)
	}

	peer := newDaemon(t, 2)
	ckpt, traj, job := run(peer)
	if !bytes.Equal(ckpt, refCkpt) {
		t.Fatalf("sharded trajectory checkpoint differs (%d vs %d bytes)", len(ckpt), len(refCkpt))
	}
	if !bytes.Equal(traj, refTraj) {
		t.Fatalf("sharded trajectory sidecar differs (%d vs %d bytes)", len(traj), len(refTraj))
	}
	if peer.leases.Load() == 0 {
		t.Fatal("peer served no leases; the sharded trajectory path was not exercised")
	}
	if job.RemoteCells == 0 {
		t.Fatal("job snapshot counted no remote cells")
	}
}

// TestPeerKilledMidSweepReclaims kills the peer's HTTP server while the
// leader's sweep is in flight: the leader must reclaim any broken lease,
// finish the job locally, and still produce byte-identical results.
func TestPeerKilledMidSweepReclaims(t *testing.T) {
	sp := sweepd.Spec{
		N:      20,
		Alphas: []float64{0.3, 0.5, 1, 2, 5},
		Ks:     []int{2, 3, 1000},
		Seeds:  4, // 60 cells: long enough to kill mid-flight
	}
	sp.Normalize()
	opts := shard.Options{LeaseCells: 2, LeaseTTL: 30 * time.Second}

	ref, _, _ := runSharded(t, sp, opts)

	peer := newDaemon(t, 1) // slow follower: leases outlive the kill window
	leader := newDaemon(t, 4)
	pool := shard.New([]string{peer.srv.URL}, opts)
	leader.mgr.SetExecutorProvider(pool)
	job, _, err := leader.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the peer as soon as it has a lease in hand.
	deadline := time.Now().Add(60 * time.Second)
	for peer.leases.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer never received a lease")
		}
		if j, _ := leader.mgr.Get(job.ID); j.Status == sweepd.StatusDone {
			break // sweep outran the kill; byte-equality below still holds
		}
		time.Sleep(time.Millisecond)
	}
	peer.srv.CloseClientConnections()
	peer.srv.Close()

	waitDone(t, leader.mgr, job.ID)
	data, err := os.ReadFile(leader.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, ref) {
		t.Fatalf("post-kill checkpoint differs from reference (%d vs %d bytes)", len(data), len(ref))
	}
}

// TestHangingPeerLeaseExpires covers the heartbeat watchdog: a peer that
// accepts a lease and then never sends a byte must have its range
// reclaimed after LeaseTTL, the job must still finish, and the results
// must stay byte-identical.
func TestHangingPeerLeaseExpires(t *testing.T) {
	sp := e2eSpec()
	opts := shard.Options{LeaseCells: 4, LeaseTTL: 30 * time.Second}
	ref, _, _ := runSharded(t, sp, opts)

	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done() // never a byte, never a heartbeat
	}))
	defer hang.Close()

	leader := newDaemon(t, 4)
	pool := shard.New([]string{hang.URL}, shard.Options{LeaseCells: 4, LeaseTTL: 150 * time.Millisecond})
	leader.mgr.SetExecutorProvider(pool)
	job, _, err := leader.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader.mgr, job.ID)
	data, err := os.ReadFile(leader.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, ref) {
		t.Fatalf("post-expiry checkpoint differs from reference (%d vs %d bytes)", len(data), len(ref))
	}
	if st := pool.Stats(); st.LeaseFailures == 0 {
		t.Fatalf("no lease failure recorded after hang: %+v", st)
	}
}

// TestThrottledPeerIsRetriedNotRetired: a follower shedding load with
// 429 + Retry-After is healthy, not dead — the leader must back off and
// retry the lease rather than counting a failure and abandoning the
// peer, and results stay byte-identical.
func TestThrottledPeerIsRetriedNotRetired(t *testing.T) {
	sp := e2eSpec()
	opts := shard.Options{LeaseCells: 3, LeaseTTL: 30 * time.Second}
	ref, _, _ := runSharded(t, sp, opts)

	peer := newDaemon(t, 2)
	var throttled atomic.Uint64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Shed the first two lease attempts, then serve normally.
		if throttled.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // clamped to 100ms by the client
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		r2, err := http.NewRequestWithContext(r.Context(), r.Method, peer.srv.URL+r.URL.Path, r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		resp, err := http.DefaultClient.Do(r2)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 4096)
		flusher, _ := w.(http.Flusher)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer proxy.Close()

	leader := newDaemon(t, 4)
	pool := shard.New([]string{proxy.URL}, shard.Options{LeaseCells: 3, LeaseTTL: 30 * time.Second})
	leader.mgr.SetExecutorProvider(pool)
	job, _, err := leader.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader.mgr, job.ID)
	data, err := os.ReadFile(leader.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, ref) {
		t.Fatalf("throttled-peer checkpoint differs (%d vs %d bytes)", len(data), len(ref))
	}
	st := pool.Stats()
	if st.LeaseFailures != 0 {
		t.Fatalf("throttling was counted as %d lease failures", st.LeaseFailures)
	}
	if st.RemoteCells == 0 {
		t.Fatal("throttled peer never served cells; it was retired instead of retried")
	}
	if throttled.Load() < 3 {
		t.Fatalf("proxy saw %d lease attempts; retry path not exercised", throttled.Load())
	}
}

// TestDaemonJoinsLiveCluster is the membership acceptance criterion: a
// daemon booted after the cluster is already running sweeps announces
// itself to one seed, appears in the leader's member table, receives
// leases for the next job without any restart of the existing daemons,
// learns the rest of the cluster by one-hop gossip — and every
// checkpoint stays byte-identical to the lone-daemon runs.
func TestDaemonJoinsLiveCluster(t *testing.T) {
	sp1 := e2eSpec()
	sp2 := e2eSpec()
	sp2.N = 18 // a second, distinct job for the post-join phase
	sp2.Normalize()
	opts := shard.Options{LeaseCells: 1, LeaseTTL: 30 * time.Second}
	ref1, _, _ := runSharded(t, sp1, opts)
	ref2, _, _ := runSharded(t, sp2, opts)

	probe := 20 * time.Millisecond
	f1, _ := newClusterDaemon(t, 2, probe)
	leader, leaderReg := newClusterDaemon(t, 4, probe, f1.srv.URL)
	pool := shard.NewFromSource(leaderReg, opts)
	leader.mgr.SetExecutorProvider(pool)

	// Phase 1: the two-daemon cluster runs a sweep as usual.
	job1, _, err := leader.mgr.Submit(sp1)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader.mgr, job1.ID)
	got1, err := os.ReadFile(leader.store.ResultsPath(job1.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, ref1) {
		t.Fatalf("pre-join checkpoint differs from lone-daemon run (%d vs %d bytes)", len(got1), len(ref1))
	}
	if f1.leases.Load() == 0 {
		t.Fatal("seeded follower served no leases")
	}

	// Phase 2: a third daemon boots with only the leader as its seed and
	// announces itself — no existing daemon restarts.
	joiner, joinerReg := newClusterDaemon(t, 2, probe, leader.srv.URL)
	deadline := time.Now().Add(30 * time.Second)
	for !slices.Contains(leaderReg.AlivePeers(), joiner.srv.URL) {
		if time.Now().After(deadline) {
			t.Fatalf("leader never registered the joiner; members = %+v", leaderReg.Members())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// One-hop gossip: the joiner pulls the leader's table and learns the
	// original follower without ever being told about it.
	for !slices.Contains(joinerReg.AlivePeers(), f1.srv.URL) {
		if time.Now().After(deadline) {
			t.Fatalf("joiner never learned the follower by gossip; members = %+v", joinerReg.Members())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 3: the next job leases to the joiner.
	job2, _, err := leader.mgr.Submit(sp2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader.mgr, job2.ID)
	got2, err := os.ReadFile(leader.store.ResultsPath(job2.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, ref2) {
		t.Fatalf("post-join checkpoint differs from lone-daemon run (%d vs %d bytes)", len(got2), len(ref2))
	}
	if joiner.leases.Load() == 0 {
		t.Fatal("joiner served no leases after joining the live cluster")
	}
}

// TestDeadPeerSkippedBySubsequentJobs: a peer that dies mid-sweep is
// retired for that job (reclaim, as before) AND — via the pool's
// failure report to the registry — excluded from the next job's peer
// snapshot entirely, so later jobs never stall on the corpse. Results
// stay byte-identical throughout.
func TestDeadPeerSkippedBySubsequentJobs(t *testing.T) {
	sp1 := sweepd.Spec{
		N:      20,
		Alphas: []float64{0.3, 0.5, 1, 2, 5},
		Ks:     []int{2, 3, 1000},
		Seeds:  4, // 60 cells: long enough to kill mid-flight
	}
	sp1.Normalize()
	sp2 := e2eSpec()
	opts := shard.Options{LeaseCells: 2, LeaseTTL: 30 * time.Second}
	ref1, _, _ := runSharded(t, sp1, opts)
	ref2, _, _ := runSharded(t, sp2, opts)

	peer := newDaemon(t, 1) // slow follower: leases outlive the kill window
	leader := newDaemon(t, 4)
	// The registry stays passive (Start is never called): seeds begin
	// alive, so the only path that can demote the peer in this test is
	// the pool's lease-failure report — exactly the mechanism under test.
	reg := cluster.New(cluster.Options{
		Seeds:         []string{peer.srv.URL},
		ProbeInterval: time.Hour,
		DownAfter:     2,
	})
	pool := shard.NewFromSource(reg, opts)
	leader.mgr.SetExecutorProvider(pool)

	job1, _, err := leader.mgr.Submit(sp1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for peer.leases.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer never received a lease")
		}
		if j, _ := leader.mgr.Get(job1.ID); j.Status == sweepd.StatusDone {
			t.Skip("sweep outran the kill window; nothing to verify")
		}
		time.Sleep(time.Millisecond)
	}
	peer.srv.CloseClientConnections()
	peer.srv.Close()

	waitDone(t, leader.mgr, job1.ID)
	got1, err := os.ReadFile(leader.store.ResultsPath(job1.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, ref1) {
		t.Fatalf("post-kill checkpoint differs from reference (%d vs %d bytes)", len(got1), len(ref1))
	}
	if slices.Contains(reg.AlivePeers(), peer.srv.URL) {
		t.Fatalf("dead peer still alive in registry: %+v", reg.Members())
	}

	// The next job must not issue a single lease: its snapshot is empty,
	// so it runs purely locally instead of stalling on the corpse.
	issuedBefore := pool.Stats().LeasesIssued
	job2, _, err := leader.mgr.Submit(sp2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader.mgr, job2.ID)
	if issued := pool.Stats().LeasesIssued; issued != issuedBefore {
		t.Fatalf("job after peer death issued %d new leases", issued-issuedBefore)
	}
	got2, err := os.ReadFile(leader.store.ResultsPath(job2.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, ref2) {
		t.Fatalf("post-death checkpoint differs from reference (%d vs %d bytes)", len(got2), len(ref2))
	}
}

// TestShardedResumeAfterLeaderRestart composes sharding with the resume
// guarantee: a leader canceled mid-sweep and reopened over the same
// store (still sharded) finishes byte-identical to the lone-daemon run.
func TestShardedResumeAfterLeaderRestart(t *testing.T) {
	sp := e2eSpec()
	opts := shard.Options{LeaseCells: 3, LeaseTTL: 30 * time.Second}
	ref, _, _ := runSharded(t, sp, opts)

	peer := newDaemon(t, 2)
	dir := t.TempDir()
	store1, err := sweepd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := sweepd.NewManager(store1, sweepd.NewCache(4096), 2)
	mgr1.SetExecutorProvider(shard.New([]string{peer.srv.URL}, opts))
	job, _, err := mgr1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if j, _ := mgr1.Get(job.ID); j.Completed >= 3 || j.Status == sweepd.StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	mgr1.Close()

	store2, err := sweepd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := sweepd.NewManager(store2, sweepd.NewCache(4096), 4)
	mgr2.SetExecutorProvider(shard.New([]string{peer.srv.URL}, opts))
	defer mgr2.Close()
	if err := mgr2.Resume(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, mgr2, job.ID)
	data, err := os.ReadFile(store2.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, ref) {
		t.Fatalf("resumed sharded checkpoint differs from reference (%d vs %d bytes)", len(data), len(ref))
	}
}

// TestDialectSweepsShardByteIdentical extends the acceptance criterion
// to the dialect seam: a swap-dialect sweep, a grid-family sweep, and a
// large-neighborhood sweep over random-regular starts each finish with
// checkpoints byte-identical to a lone daemon's when sharded across two
// peers — the lease/shard path contains no dialect-specific code, so a
// registry entry is all a new workload needs to go distributed.
func TestDialectSweepsShardByteIdentical(t *testing.T) {
	specs := []struct {
		name string
		sp   sweepd.Spec
	}{
		{"swap-dialect", sweepd.Spec{
			Dialect: "swap", N: 16,
			Alphas: []float64{0.5, 1}, Ks: []int{2, 3}, Seeds: 3,
			MaxRounds: 60, CycleCheckAfter: 60,
		}},
		{"grid-family", sweepd.Spec{
			Graph: "grid-delete", N: 18, P: 0.25,
			Alphas: []float64{0.5, 1, 2}, Ks: []int{2, 1000}, Seeds: 2,
		}},
		{"large-neighborhood-random-regular", sweepd.Spec{
			Dialect: "large-neighborhood", Variant: "sum",
			Graph: "random-regular", N: 12, Q: 3,
			Alphas: []float64{1, 2}, Ks: []int{2}, Seeds: 3,
		}},
	}
	opts := shard.Options{LeaseCells: 3, LeaseTTL: 30 * time.Second}
	for _, c := range specs {
		t.Run(c.name, func(t *testing.T) {
			sp := c.sp
			sp.Normalize()
			if err := sp.Validate(); err != nil {
				t.Fatal(err)
			}
			ref, refJob, _ := runSharded(t, sp, opts) // zero peers
			if refJob.RemoteCells != 0 || len(ref) == 0 {
				t.Fatalf("bad reference run: %d remote cells, %d bytes", refJob.RemoteCells, len(ref))
			}
			pa, pb := newDaemon(t, 2), newDaemon(t, 2)
			got, job, _ := runSharded(t, sp, opts, pa, pb)
			if !bytes.Equal(got, ref) {
				t.Fatalf("2-peer checkpoint differs from lone-daemon run (%d vs %d bytes)", len(got), len(ref))
			}
			if pa.leases.Load()+pb.leases.Load() == 0 {
				t.Fatal("neither peer served a lease; the sharded path was not exercised")
			}
			if job.RemoteCells == 0 {
				t.Fatal("job snapshot counted no remote cells")
			}
		})
	}
}
