package shard

// In-package unit tests for the lease plumbing: peer-URL normalization
// and dedup in New, and the default client's bounded connection
// establishment. (Retry-After parsing moved to sweepd.RetryAfter and
// is tested there.)

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/sweepd"
)

// TestNewNormalizesAndDedupes: programmatic construction gets the same
// URL hygiene as the -peers flag — "http://a:1/" must not produce
// "//peer/leases" paths, and one peer spelled two ways must not get two
// lease goroutines.
func TestNewNormalizesAndDedupes(t *testing.T) {
	cases := []struct {
		name string
		in   []string
		want []string
	}{
		{"nil", nil, []string{}},
		{"empties dropped", []string{"", "  "}, []string{}},
		{"trailing slash trimmed", []string{"http://a:1/"}, []string{"http://a:1"}},
		{"multiple slashes trimmed", []string{"http://a:1//"}, []string{"http://a:1"}},
		{"whitespace trimmed", []string{" http://a:1 "}, []string{"http://a:1"}},
		{"dup spellings collapse", []string{"http://a:1", "http://a:1/"}, []string{"http://a:1"}},
		{"order preserved", []string{"http://b:2", "http://a:1", "http://b:2/"}, []string{"http://b:2", "http://a:1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(tc.in, Options{})
			got := p.source.AlivePeers()
			if len(got) != len(tc.want) {
				t.Fatalf("peers = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("peers = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestDefaultClientBoundsDialing: a black-holed peer (non-routable
// address, dropped SYNs) must fail a lease within the dial timeout
// instead of stalling it until the lease TTL watchdog fires.
func TestDefaultClientBoundsDialing(t *testing.T) {
	sp := sweepd.Spec{N: 8, Alphas: []float64{1}, Ks: []int{2}, Seeds: 1}
	sp.Normalize()
	// 10.255.255.1 is a non-routable RFC 1918 address: SYNs go nowhere.
	// Some sandboxes reject it instantly instead — also a fast failure,
	// which is all this test asserts.
	pool := New([]string{"http://10.255.255.1:9"}, Options{
		DialTimeout: 100 * time.Millisecond,
		LeaseTTL:    time.Hour, // the watchdog must NOT be what saves us
	})
	e := &executor{pool: pool, peers: pool.source.AlivePeers(), spec: sp}
	send := func(dynamics.IndexedResult) bool { return true }

	start := time.Now()
	_, err := e.lease(context.Background(), "http://10.255.255.1:9", cellRange{0, 1}, sp.Cells(), send)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("lease against a black hole succeeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("lease took %v to fail; dial is not bounded", elapsed)
	}
}

// TestDefaultClientHasTransportTimeouts pins the construction itself:
// the default client must carry a bounded dialer, not http.Client{}'s
// unbounded zero transport.
func TestDefaultClientHasTransportTimeouts(t *testing.T) {
	p := New(nil, Options{})
	tr, ok := p.opts.Client.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T, want *http.Transport", p.opts.Client.Transport)
	}
	if tr.TLSHandshakeTimeout <= 0 {
		t.Fatal("TLS handshake timeout unset")
	}
	if tr.DialContext == nil {
		t.Fatal("DialContext unset; dials are unbounded")
	}
	if p.opts.Client.Timeout != 0 {
		t.Fatal("overall client timeout must stay unset — streams are bounded by the lease watchdog")
	}
}

// TestLeasePathWellFormed: the executor builds "/peer/leases" requests
// from normalized URLs (no "//peer/leases"), which a strict router would
// 404.
func TestLeasePathWellFormed(t *testing.T) {
	p := New([]string{"http://a:1/"}, Options{})
	peers := p.source.AlivePeers()
	if len(peers) != 1 || strings.HasSuffix(peers[0], "/") {
		t.Fatalf("normalized peers = %v", peers)
	}
	if got := peers[0] + "/peer/leases"; got != "http://a:1/peer/leases" {
		t.Fatalf("lease URL = %q", got)
	}
}
