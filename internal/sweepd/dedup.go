package sweepd

import (
	"context"
	"sort"
	"sync"

	"repro/internal/dynamics"
)

// dedupExecutor coalesces concurrent computations of the same (kernel,
// cell) across sweeps sharing one Cache. Two jobs with overlapping grids
// used to compute a shared cell twice when neither had reached the cache
// yet; with dedup, the first sweep to arrive leads the cell's flight and
// later arrivals join it, receiving the leader's in-memory Result the
// moment it lands — before the leader's hold-back sequencer has even
// emitted it. Joined results are byte-identical to recomputation because
// the Result object itself is shared (marshaling is deterministic and
// read-only).
//
// A leader canceled mid-flight abandons its undelivered flights; joiners
// then compute those cells themselves (without re-leading — a second
// coalescing round after an abandonment is not worth the livelock risk).
// Joining costs no worker-gate tokens, so waiting never starves the
// leaders making progress.
type dedupExecutor struct {
	cache  *Cache
	kernel string
	inner  dynamics.Executor
}

// Execute implements dynamics.Executor.
func (d *dedupExecutor) Execute(ctx context.Context, req dynamics.ExecRequest) <-chan dynamics.IndexedResult {
	out := make(chan dynamics.IndexedResult)
	go func() {
		defer close(out)
		type joined struct {
			idx int
			fl  *flight
		}
		var lead []int
		var joins []joined
		led := make(map[int]*flight)
		for _, i := range req.Todo {
			fl, leader := d.cache.lead(cacheKey{Kernel: d.kernel, Cell: req.Cells[i]})
			if leader {
				lead = append(lead, i)
				led[i] = fl
			} else {
				joins = append(joins, joined{i, fl})
			}
		}
		send := func(ir dynamics.IndexedResult) bool {
			select {
			case out <- ir:
				return true
			case <-ctx.Done():
				return false
			}
		}
		runInner := func(todo []int, onResult func(dynamics.IndexedResult)) {
			sub := req
			sub.Todo = todo
			for ir := range d.inner.Execute(ctx, sub) {
				if onResult != nil {
					onResult(ir)
				}
				if !send(ir) {
					// The inner executor unblocks via ctx; just stop
					// forwarding.
					break
				}
			}
		}

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			runInner(lead, func(ir dynamics.IndexedResult) {
				// Land the flight before forwarding: a joiner must never
				// wait on the leader's downstream sequencing.
				if fl := led[ir.Index]; fl != nil {
					d.cache.land(cacheKey{Kernel: d.kernel, Cell: req.Cells[ir.Index]}, fl, ir.Result, true)
					delete(led, ir.Index)
				}
			})
			// Whatever the inner executor failed to deliver (cancellation)
			// is abandoned so joiners elsewhere stop waiting.
			for i, fl := range led {
				d.cache.land(cacheKey{Kernel: d.kernel, Cell: req.Cells[i]}, fl, dynamics.Result{}, false)
			}
		}()

		// One goroutine waits on every joined flight sequentially:
		// flights land independently of this loop's order, so total wait
		// is "until the last leader lands" either way, and a job joining
		// a huge in-flight grid costs O(1) goroutines instead of one per
		// cell. retry is written only here and read after wg.Wait.
		var retry []int
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, j := range joins {
				select {
				case <-j.fl.done:
					if j.fl.ok {
						if !send(dynamics.IndexedResult{Index: j.idx, Result: j.fl.res}) {
							return
						}
					} else {
						retry = append(retry, j.idx)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
		wg.Wait()
		if len(retry) > 0 && ctx.Err() == nil {
			sort.Ints(retry)
			runInner(retry, nil)
		}
	}()
	return out
}
