package sweepd_test

import (
	"testing"

	"repro/internal/sweepd"
	"repro/internal/sweepd/storetest"
)

// TestStoreConformance runs the shared JobStore conformance suite
// against the default filesystem backend. Any future backend gets its
// own one-line runner like this.
func TestStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) sweepd.JobStore {
		st, err := sweepd.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
}
