package sweepd

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/ncgio"
)

func trajSpec() Spec {
	sp := Spec{N: 12, Alphas: []float64{0.5, 2}, Ks: []int{2, 1000}, Seeds: 2, Trajectories: true}
	sp.Normalize()
	return sp
}

// readTrajectories parses an NDJSON trajectory stream, skipping blanks.
func readTrajectories(t *testing.T, r io.Reader) []ncgio.TrajectoryRecord {
	t.Helper()
	var out []ncgio.TrajectoryRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		tr, err := ncgio.UnmarshalTrajectory(line)
		if err != nil {
			t.Fatalf("bad trajectory line %q: %v", line, err)
		}
		out = append(out, tr)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTrajectorySidecar: a trajectory job writes one sidecar record per
// computed cell, in canonical order, whose per-round sequence matches
// the checkpointed Rounds — and the endpoint serves it.
func TestTrajectorySidecar(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(1024), 4)
	defer mgr.Close()
	srv := httptest.NewServer(newHandler(mgr, 5*time.Millisecond, time.Second))
	defer srv.Close()

	sp := trajSpec()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, job.ID, StatusDone)

	resp, err := http.Get(srv.URL + "/sweeps/" + job.ID + "/trajectories")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st := resp.Header.Get("X-Sweep-Status"); st != string(StatusDone) {
		t.Fatalf("X-Sweep-Status = %q", st)
	}
	trs := readTrajectories(t, resp.Body)
	cells := sp.Cells()
	if len(trs) != len(cells) {
		t.Fatalf("sidecar has %d records, want %d", len(trs), len(cells))
	}
	results, err := store.LoadResults(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trs {
		if tr.Cell() != cells[i] {
			t.Fatalf("record %d cell %+v out of canonical order (want %+v)", i, tr.Cell(), cells[i])
		}
		if len(tr.PerRound) == 0 {
			t.Fatalf("record %d has no per-round stats", i)
		}
		if got, want := len(tr.PerRound), results[i].Result.Rounds; got != want {
			t.Fatalf("record %d has %d rounds, checkpoint says %d", i, got, want)
		}
		if tr.PerRound[len(tr.PerRound)-1].Diameter != results[i].Result.FinalStats.Diameter {
			t.Fatalf("record %d final diameter disagrees with checkpoint", i)
		}
	}

	// A job that did not opt in has no sidecar and must say so.
	plain := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 1}
	plain.Normalize()
	pj, _, err := mgr.Submit(plain)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, pj.ID, StatusDone)
	resp2, err := http.Get(srv.URL + "/sweeps/" + pj.ID + "/trajectories")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("non-trajectory job served %d, want 404", resp2.StatusCode)
	}
}

// TestTrajectorySidecarResumeByteIdentical: cancel a trajectory job
// mid-run and resume it on a fresh manager — the finished sidecar must
// be byte-identical to an uninterrupted run's (same canonical order,
// same lines), mirroring the checkpoint guarantee.
func TestTrajectorySidecarResumeByteIdentical(t *testing.T) {
	sp := Spec{N: 20, Alphas: []float64{0.3, 0.5, 1, 2}, Ks: []int{2, 3, 1000}, Seeds: 3, Trajectories: true}
	sp.Normalize()

	refStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refMgr := NewManager(refStore, nil, 4)
	refJob, _, err := refMgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, refMgr, refJob.ID, StatusDone)
	refMgr.Close()
	refSidecar, err := os.ReadFile(refStore.TrajectoryPath(refJob.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(refSidecar) == 0 {
		t.Fatal("reference sidecar is empty")
	}

	dir := t.TempDir()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := NewManager(store1, nil, 2)
	job1, _, err := mgr1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if j, _ := mgr1.Get(job1.ID); j.Completed >= 3 || j.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	mgr1.Close()

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store2, nil, 4)
	if err := mgr2.Resume(); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr2, job1.ID, StatusDone)
	mgr2.Close()

	resumed, err := os.ReadFile(store2.TrajectoryPath(job1.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, refSidecar) {
		t.Fatalf("resumed sidecar differs from uninterrupted run (%d vs %d bytes)", len(resumed), len(refSidecar))
	}
}

// TestTrajectoryJobsBypassCache: two trajectory jobs with overlapping
// grids must BOTH have complete sidecars — the overlap is recomputed,
// never served from the cache (whose codec drops PerRound and would
// leave silent holes).
func TestTrajectoryJobsBypassCache(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(4096), 4)
	defer mgr.Close()

	a := Spec{N: 12, Alphas: []float64{1}, Ks: []int{2}, Seeds: 3, Trajectories: true}
	a.Normalize()
	jobA, _, err := mgr.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, jobA.ID, StatusDone)

	b := Spec{N: 12, Alphas: []float64{1, 2}, Ks: []int{2}, Seeds: 3, Trajectories: true}
	b.Normalize()
	jobB, _, err := mgr.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	doneB := waitStatus(t, mgr, jobB.ID, StatusDone)
	if doneB.CacheHits != 0 {
		t.Fatalf("trajectory job took %d cache hits; the sidecar would have holes", doneB.CacheHits)
	}
	f, err := os.Open(store.TrajectoryPath(jobB.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	trs := readTrajectories(t, f)
	if len(trs) != len(b.Cells()) {
		t.Fatalf("job B sidecar has %d records, want %d (complete grid)", len(trs), len(b.Cells()))
	}
}

// TestTrajectoryReconcileSurplusRecord simulates the crash window the
// sidecar-first write order leaves behind: the trajectory line landed
// but the checkpoint line did not. Resume must drop the surplus record,
// recompute the cell, and finish with checkpoint AND sidecar
// byte-identical to the uninterrupted run.
func TestTrajectoryReconcileSurplusRecord(t *testing.T) {
	sp := trajSpec()
	dir := t.TempDir()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := NewManager(store1, nil, 2)
	job, _, err := mgr1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr1, job.ID, StatusDone)
	mgr1.Close()

	refResults, err := os.ReadFile(store1.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	refSidecar, err := os.ReadFile(store1.TrajectoryPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}

	// Chop the final checkpoint line, keeping the full sidecar: exactly
	// the on-disk state of a crash between the two appends.
	lines := bytes.SplitAfter(refResults, []byte("\n"))
	if len(lines) < 2 {
		t.Fatal("checkpoint too small to truncate")
	}
	var truncated []byte
	for _, l := range lines[:len(lines)-2] {
		truncated = append(truncated, l...)
	}
	if err := os.WriteFile(store1.ResultsPath(job.ID), truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store2, nil, 2)
	defer mgr2.Close()
	if err := mgr2.Resume(); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr2, job.ID, StatusDone)

	gotResults, err := os.ReadFile(store2.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	gotSidecar, err := os.ReadFile(store2.TrajectoryPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotResults, refResults) {
		t.Fatalf("resumed checkpoint differs (%d vs %d bytes)", len(gotResults), len(refResults))
	}
	if !bytes.Equal(gotSidecar, refSidecar) {
		t.Fatalf("reconciled sidecar differs (%d vs %d bytes)", len(gotSidecar), len(refSidecar))
	}
}

// TestTrajectoryReconcileLostSidecarTail covers the power-loss ordering
// gap: the checkpoint's tail became durable but the sidecar's did not.
// Resume must truncate the checkpoint back to the common prefix and
// recompute, finishing with both files byte-identical to an
// uninterrupted run — never a checkpointed cell with a permanently
// missing trajectory.
func TestTrajectoryReconcileLostSidecarTail(t *testing.T) {
	sp := trajSpec()
	dir := t.TempDir()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := NewManager(store1, nil, 2)
	job, _, err := mgr1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr1, job.ID, StatusDone)
	mgr1.Close()

	refResults, err := os.ReadFile(store1.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	refSidecar, err := os.ReadFile(store1.TrajectoryPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}

	// Chop the final sidecar record, keeping the full checkpoint: the
	// state a power loss can leave despite the sidecar-first write order.
	lines := bytes.SplitAfter(refSidecar, []byte("\n"))
	var truncated []byte
	for _, l := range lines[:len(lines)-2] {
		truncated = append(truncated, l...)
	}
	if err := os.WriteFile(store1.TrajectoryPath(job.ID), truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store2, nil, 2)
	defer mgr2.Close()
	if err := mgr2.Resume(); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr2, job.ID, StatusDone)

	gotResults, err := os.ReadFile(store2.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	gotSidecar, err := os.ReadFile(store2.TrajectoryPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotResults, refResults) {
		t.Fatalf("checkpoint differs after sidecar-tail loss (%d vs %d bytes)", len(gotResults), len(refResults))
	}
	if !bytes.Equal(gotSidecar, refSidecar) {
		t.Fatalf("sidecar differs after tail loss (%d vs %d bytes)", len(gotSidecar), len(refSidecar))
	}
}

// TestTrajectoryLeaseStreamsRecords: POST /peer/leases for a trajectory
// spec streams one lease record per cell — the canonical result line
// wrapped with its per-round stats — in canonical order, so trajectory
// sweeps can shard without the sidecar losing data.
func TestTrajectoryLeaseStreamsRecords(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(1024), 2)
	defer mgr.Close()
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	sp := trajSpec()
	start, end := 1, 5
	resp := postLease(t, srv.URL, LeaseRequest{Spec: sp, Start: start, End: end})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}

	cells := sp.Cells()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	i := start
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue // heartbeat
		}
		rec, err := ncgio.UnmarshalLeaseRecord(line)
		if err != nil {
			t.Fatalf("bad lease record %q: %v", line, err)
		}
		if rec.Cell != cells[i] {
			t.Fatalf("record %d is cell %+v, want %+v", i-start, rec.Cell, cells[i])
		}
		if len(rec.Result.PerRound) == 0 {
			t.Fatalf("cell %+v arrived without per-round stats", rec.Cell)
		}
		if n := len(rec.Result.PerRound); n != rec.Result.Rounds {
			t.Fatalf("cell %+v has %d per-round entries, summary says %d rounds", rec.Cell, n, rec.Result.Rounds)
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != end {
		t.Fatalf("stream delivered %d records, want %d", i-start, end-start)
	}
}

// TestTrajectoryKernelSeparation: the trajectories flag is part of the
// cache kernel, so a trajectory job never reuses a plain job's cached
// (trajectory-less) cells.
func TestTrajectoryKernelSeparation(t *testing.T) {
	plain := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	plain.Normalize()
	traj := plain
	traj.Trajectories = true
	if plain.KernelHash() == traj.KernelHash() {
		t.Fatal("trajectory flag does not separate kernels")
	}
	if plain.ID() == traj.ID() {
		t.Fatal("trajectory flag does not separate job IDs")
	}
}
