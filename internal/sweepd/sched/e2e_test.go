package sched_test

// End-to-end tests for the cluster scheduler: real daemons wired over
// httptest — manager, membership registry, scheduler, and HTTP surface
// assembled exactly as cmd/ncg-server does — proving the acceptance
// criteria: a sweep POSTed to a busy member is placed on the
// least-loaded peer, a killed leader's job is adopted and finishes with
// a byte-identical checkpoint, and a revived ex-leader cedes to the
// adopter's higher lease generation instead of split-braining.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/sweepd"
	"repro/internal/sweepd/cluster"
	"repro/internal/sweepd/sched"
	storepkg "repro/internal/sweepd/store"
)

const (
	probeIvl   = 20 * time.Millisecond
	schedBeat  = 25 * time.Millisecond
	adoptAfter = 300 * time.Millisecond
)

// daemon is one in-process ncg-server: store, manager, registry,
// scheduler, and HTTP surface, all wired the way main() wires them.
type daemon struct {
	dir   string
	store *sweepd.Store
	mgr   *sweepd.Manager
	reg   *cluster.Registry
	sch   *sched.Scheduler
	rs    *storepkg.ReplicaSet
	rep   *sweepd.Replicator
	srv   *httptest.Server
	dead  sync.Once
}

func newSchedDaemon(t *testing.T, workers int, seeds ...string) *daemon {
	t.Helper()
	d, err := buildDaemon(t.TempDir(), workers, time.Hour, seeds...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.kill)
	return d
}

// buildDaemon assembles a daemon over dir. leaseExpiry bounds how long
// the registry keeps an unrefreshed lease whose owner looks healthy
// (kept long here: tests drive staleness through AdoptAfter instead).
func buildDaemon(dir string, workers int, leaseExpiry time.Duration, seeds ...string) (*daemon, error) {
	store, err := sweepd.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	mgr := sweepd.NewManager(store, sweepd.NewCache(4096), workers)
	reg := cluster.New(cluster.Options{
		Seeds:         seeds,
		ProbeInterval: probeIvl,
		DownAfter:     2,
		LeaseExpiry:   leaseExpiry,
		SelfLoad:      mgr.Load,
	})
	sch, err := sched.New(sched.Options{
		Cluster:    reg,
		Manager:    mgr,
		AdoptAfter: adoptAfter,
		Heartbeat:  schedBeat,
	})
	if err != nil {
		mgr.Close()
		return nil, err
	}
	rs, err := storepkg.OpenReplicaSet(filepath.Join(dir, "replicas"))
	if err != nil {
		mgr.Close()
		return nil, err
	}
	mgr.SetReplicas(rs)
	rep := sweepd.NewReplicator(sweepd.ReplicatorOptions{
		Store:   store,
		Fanout:  2,
		Self:    reg.Self,
		Targets: reg.AliveLoads,
		Holders: reg.ReplicaHolders,
		Generation: func(id string) uint64 {
			for _, l := range reg.Leases() {
				if l.JobID == id {
					return l.Generation
				}
			}
			return 1
		},
	})
	mgr.OnFinish(rep.JobFinished)
	h := sweepd.NewHandlerConfig(mgr, sweepd.Config{
		PollInterval:      5 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		Cluster:           reg,
		Sched:             sch,
		SchedStats:        sch.Stats,
		ReplicaStats:      rep.Stats,
	})
	d := &daemon{dir: dir, store: store, mgr: mgr, reg: reg, sch: sch, rs: rs, rep: rep}
	d.srv = httptest.NewServer(h)
	reg.SetSelf(d.srv.URL)
	reg.Start()
	sch.Start()
	return d, nil
}

// kill tears the daemon down abruptly and idempotently: in-flight
// client connections die mid-stream, probes start failing, heartbeats
// stop, and the manager cancels its runners — the closest an in-process
// test gets to kill -9. The checkpoint stays on disk, resumable.
func (d *daemon) kill() {
	d.dead.Do(func() {
		d.srv.CloseClientConnections()
		d.srv.Close()
		d.sch.Close()
		d.reg.Close()
		d.mgr.Close()
		d.rep.Close()
	})
}

func waitDone(t *testing.T, m *sweepd.Manager, id string) sweepd.Job {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch job.Status {
		case sweepd.StatusDone:
			return job
		case sweepd.StatusFailed:
			t.Fatalf("job failed: %s", job.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timed out waiting for job")
	return sweepd.Job{}
}

// waitMesh blocks until every daemon has sampled a load for every other
// — the point after which placement and adoption elections see the full
// cluster.
func waitMesh(t *testing.T, ds ...*daemon) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for _, d := range ds {
		for len(d.reg.AliveLoads()) < len(ds)-1 {
			if time.Now().After(deadline) {
				t.Fatalf("mesh never formed: %s sees loads %+v", d.srv.URL, d.reg.AliveLoads())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// runReference computes the spec on a lone daemon and returns the
// finished checkpoint bytes — the byte-identity baseline.
func runReference(t *testing.T, sp sweepd.Spec) []byte {
	t.Helper()
	ref := newSchedDaemon(t, 4)
	job, _, err := ref.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ref.mgr, job.ID)
	data, err := os.ReadFile(ref.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("reference checkpoint is empty")
	}
	return data
}

// TestSubmitViaBusyMemberForwardsToIdlePeer: POST /sweeps to the one
// busy daemon of a three-member cluster must land the job on an idle
// peer — 202 with X-Sweep-Placement naming it, the job running there
// and never admitted on the receiving member — with the checkpoint
// byte-identical to a lone-daemon run.
func TestSubmitViaBusyMemberForwardsToIdlePeer(t *testing.T) {
	sp := sweepd.Spec{
		N:      16,
		Alphas: []float64{0.5, 1, 2},
		Ks:     []int{2, 1000},
		Seeds:  4, // 24 cells
	}
	sp.Normalize()
	ref := runReference(t, sp)

	busy := sweepd.Spec{
		N:      60, // ~25ms/cell
		Alphas: []float64{0.3, 0.5, 1, 2, 5},
		Ks:     []int{2, 3, 1000},
		Seeds:  4, // 60 cells on one worker: stays running throughout
	}
	busy.Normalize()

	a := newSchedDaemon(t, 1)
	b := newSchedDaemon(t, 2, a.srv.URL)
	c := newSchedDaemon(t, 2, a.srv.URL)
	waitMesh(t, a, b, c)

	if _, _, err := a.mgr.Submit(busy); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for a.mgr.Load().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("busy job never started")
		}
		time.Sleep(time.Millisecond)
	}

	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(a.srv.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit via busy member = %s, want 202", resp.Status)
	}
	placedOn := resp.Header.Get("X-Sweep-Placement")
	var target *daemon
	switch placedOn {
	case b.srv.URL:
		target = b
	case c.srv.URL:
		target = c
	default:
		t.Fatalf("X-Sweep-Placement = %q, want one of the idle peers (%s, %s)", placedOn, b.srv.URL, c.srv.URL)
	}
	var job sweepd.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.ID != sp.ID() {
		t.Fatalf("placed job ID = %q, want %q", job.ID, sp.ID())
	}
	if st := a.sch.Stats(); st.Forwards == 0 {
		t.Fatalf("busy member recorded no forward: %+v", st)
	}
	if _, ok := a.mgr.Get(job.ID); ok {
		t.Fatal("forwarded job was also admitted on the busy member")
	}

	waitDone(t, target.mgr, job.ID)
	data, err := os.ReadFile(target.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, ref) {
		t.Fatalf("placed checkpoint differs from lone-daemon run (%d vs %d bytes)", len(data), len(ref))
	}
}

// TestLeaderDeathAdoptionAndZombieCede is the failover acceptance
// criterion end to end: kill the leader mid-sweep, a surviving peer
// adopts the job within the adoption window and finishes it with a
// byte-identical checkpoint, and the leader revived over its old store
// cedes to the adopter's higher lease generation (LeadershipLost ticks,
// the adopter keeps the job) instead of split-braining.
func TestLeaderDeathAdoptionAndZombieCede(t *testing.T) {
	sp := sweepd.Spec{
		N:      60, // ~25ms/cell: the sweep outlives kill, adoption, and zombie windows
		Alphas: []float64{0.3, 0.5, 1, 2, 5},
		Ks:     []int{2, 3, 1000},
		Seeds:  6, // 90 cells
	}
	sp.Normalize()
	ref := runReference(t, sp)

	a := newSchedDaemon(t, 1) // slow leader: one worker stretches the sweep
	b := newSchedDaemon(t, 2, a.srv.URL)
	c := newSchedDaemon(t, 2, a.srv.URL)
	waitMesh(t, a, b, c)

	job, _, err := a.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Kill only once both survivors hold the leader's lease — the spec
	// travels inside it, so adoption needs nothing from A's disk.
	deadline := time.Now().Add(30 * time.Second)
	for _, survivor := range []*daemon{b, c} {
		for {
			leased := false
			for _, l := range survivor.reg.Leases() {
				if l.JobID == job.ID && l.Owner == a.srv.URL {
					leased = true
				}
			}
			if leased {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("lease never reached %s", survivor.srv.URL)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if j, _ := a.mgr.Get(job.ID); j.Status != sweepd.StatusRunning {
		t.Fatalf("leader job is %s before the kill; spec too small to test failover", j.Status)
	}
	a.kill()

	// One survivor must adopt within the adoption window (plus probe and
	// heartbeat slack) and re-lease the job at a higher generation.
	adoptDeadline := time.Now().Add(30 * time.Second)
	for b.sch.Stats().Adoptions+c.sch.Stats().Adoptions == 0 {
		if time.Now().After(adoptDeadline) {
			t.Fatalf("no adoption: b=%+v c=%+v leases=%+v", b.sch.Stats(), c.sch.Stats(), b.reg.Leases())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Revive the dead leader over its old store while the adopted run is
	// still going: it resumes the job, heartbeats its stale generation,
	// loses the comparison, and cedes.
	zombie, err := buildDaemon(a.dir, 1, time.Hour, b.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(zombie.kill)
	if err := zombie.mgr.Resume(); err != nil {
		t.Fatal(err)
	}
	zombieDeadline := time.Now().Add(30 * time.Second)
	for zombie.sch.Stats().LeadershipLost == 0 {
		if time.Now().After(zombieDeadline) {
			t.Fatalf("zombie never ceded: %+v leases=%+v", zombie.sch.Stats(), zombie.reg.Leases())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The adopter finishes the job byte-identically to the reference.
	var adopter *daemon
	for _, d := range []*daemon{b, c} {
		if d.sch.Stats().Adoptions > 0 {
			adopter = d
			break
		}
	}
	waitDone(t, adopter.mgr, job.ID)
	data, err := os.ReadFile(adopter.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, ref) {
		t.Fatalf("adopted checkpoint differs from reference (%d vs %d bytes)", len(data), len(ref))
	}

	// No split-brain: any lease still standing for the job names the
	// adopter's generation, never the zombie's stale one.
	for _, l := range adopter.reg.Leases() {
		if l.JobID == job.ID && l.Owner == zombie.srv.URL {
			t.Fatalf("zombie reclaimed the lease: %+v", l)
		}
	}
}
