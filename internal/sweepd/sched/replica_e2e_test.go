package sched_test

// End-to-end tests for replicated durable storage: a finished job's
// artifacts survive the leader's death — replica-served reads stay
// byte-identical, and a later adoption seeds from the local replica
// instead of tail-fetching over HTTP.

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/sweepd"
)

// waitReplica blocks until each daemon's replica set holds job id.
func waitReplica(t *testing.T, id string, ds ...*daemon) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for _, d := range ds {
		for {
			ids, err := d.rs.List()
			if err != nil {
				t.Fatal(err)
			}
			if slices.Contains(ids, id) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica of %s never reached %s (holds %v)", id, d.srv.URL, ids)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// getResults fetches /sweeps/{id}/results without following redirects,
// returning the response (closed) and body.
func getResults(t *testing.T, base, id string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/sweeps/"+id+"/results", nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// metricValue scrapes one counter from /metrics (0 when absent).
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if f, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestReplicaServesResultsAfterLeaderDeath is the kill-the-leader
// acceptance criterion: a job finishes on its leader, its artifacts
// replicate to both survivors, the leader dies — and a survivor serves
// the results byte-identically from its replica, with the same strong
// ETag the leader minted.
func TestReplicaServesResultsAfterLeaderDeath(t *testing.T) {
	sp := sweepd.Spec{
		N:      16,
		Alphas: []float64{0.5, 1, 2},
		Ks:     []int{2, 1000},
		Seeds:  4, // 24 cells
	}
	sp.Normalize()

	a := newSchedDaemon(t, 4)
	b := newSchedDaemon(t, 2, a.srv.URL)
	c := newSchedDaemon(t, 2, a.srv.URL)
	waitMesh(t, a, b, c)

	job, _, err := a.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a.mgr, job.ID)
	waitReplica(t, job.ID, b, c)

	resp, leaderBody := getResults(t, a.srv.URL, job.ID, nil)
	if resp.StatusCode != http.StatusOK || len(leaderBody) == 0 {
		t.Fatalf("leader results = %d with %d bytes", resp.StatusCode, len(leaderBody))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("leader served done results without an ETag")
	}
	raw, err := os.ReadFile(a.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}

	a.kill()

	for _, survivor := range []*daemon{b, c} {
		resp, body := getResults(t, survivor.srv.URL, job.ID, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("survivor %s results = %d", survivor.srv.URL, resp.StatusCode)
		}
		if !bytes.Equal(body, leaderBody) || !bytes.Equal(body, raw) {
			t.Fatalf("survivor %s serves %d bytes, leader served %d (checkpoint %d)",
				survivor.srv.URL, len(body), len(leaderBody), len(raw))
		}
		if got := resp.Header.Get("X-Sweep-Status"); got != string(sweepd.StatusDone) {
			t.Fatalf("survivor X-Sweep-Status = %q", got)
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("survivor ETag = %q, leader minted %q", got, etag)
		}
		// The validator a client cached from the leader revalidates
		// against the replica.
		resp, body = getResults(t, survivor.srv.URL, job.ID, map[string]string{"If-None-Match": etag})
		if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("survivor If-None-Match = %d with %d bytes, want 304 empty", resp.StatusCode, len(body))
		}
		if v := metricValue(t, survivor.srv.URL, "sweepd_replica_reads_total"); v < 1 {
			t.Fatalf("survivor %s sweepd_replica_reads_total = %v, want ≥ 1", survivor.srv.URL, v)
		}
	}
}

// TestAdoptionSeedsFromLocalReplicaEndToEnd: a stale lease points at a
// dead leader for a job the survivors hold replicas of. The adopter
// must seed its copy from the local replica — no HTTP tail-fetch (the
// only candidate peer would 404 anyway) — and finish byte-identically.
func TestAdoptionSeedsFromLocalReplicaEndToEnd(t *testing.T) {
	sp := sweepd.Spec{
		N:      16,
		Alphas: []float64{0.5, 1, 2},
		Ks:     []int{2, 1000},
		Seeds:  4, // 24 cells
	}
	sp.Normalize()

	a := newSchedDaemon(t, 4)
	b := newSchedDaemon(t, 2, a.srv.URL)
	c := newSchedDaemon(t, 2, a.srv.URL)
	waitMesh(t, a, b, c)

	job, _, err := a.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a.mgr, job.ID)
	waitReplica(t, job.ID, b, c)
	a.kill()

	// Resurrect the lease as if the leader died mid-run: owner dead,
	// generation 1. Both survivors hold a verified replica, so whichever
	// wins the adoption election can seed without touching the network.
	lease := sweepd.JobLease{JobID: job.ID, Spec: sp, Owner: a.srv.URL, Generation: 1}
	for _, survivor := range []*daemon{b, c} {
		if !survivor.reg.UpdateLease(lease) {
			t.Fatalf("lease injection rejected by %s", survivor.srv.URL)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	var adopter *daemon
	for adopter == nil {
		for _, d := range []*daemon{b, c} {
			if d.sch.Stats().Adoptions > 0 {
				adopter = d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no adoption: b=%+v c=%+v", b.sch.Stats(), c.sch.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := adopter.sch.Stats(); st.ReplicaSeeds != 1 {
		t.Fatalf("adopter stats = %+v, want ReplicaSeeds=1 (adoption must not tail-fetch)", st)
	}

	// Seeded from a complete replica, the adopted job finishes without
	// recomputing — and its primary checkpoint matches the replica bytes.
	waitDone(t, adopter.mgr, job.ID)
	adopted, err := os.ReadFile(adopter.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	replica, err := os.ReadFile(adopter.rs.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(adopted, replica) {
		t.Fatalf("adopted checkpoint differs from the replica it was seeded from (%d vs %d bytes)",
			len(adopted), len(replica))
	}
}
