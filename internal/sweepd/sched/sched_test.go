package sched

// Unit tests for the scheduler's three behaviors — placement,
// leadership heartbeating, adoption — against scripted fakes of the
// registry and the manager, with httptest daemons standing in for
// peers where real HTTP matters (forwards, claims, checkpoint
// recovery). Cluster e2e lives in internal/sweepd's test suite.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/sweepd"
)

func testSpec() sweepd.Spec {
	sp := sweepd.Spec{N: 8, Alphas: []float64{1}, Ks: []int{2}, Seeds: 1}
	sp.Normalize()
	return sp
}

// fakeCluster scripts the registry surface: member table, cached
// loads, and a lease table with the real generation guard.
type fakeCluster struct {
	mu       sync.Mutex
	self     string
	members  []sweepd.MemberInfo
	loads    []sweepd.MemberLoad
	leases   map[string]sweepd.JobLease
	failures []string
}

func newFakeCluster(self string) *fakeCluster {
	return &fakeCluster{self: self, leases: make(map[string]sweepd.JobLease)}
}

func (c *fakeCluster) Self() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.self
}

func (c *fakeCluster) Members() []sweepd.MemberInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]sweepd.MemberInfo(nil), c.members...)
}

func (c *fakeCluster) AliveLoads() []sweepd.MemberLoad {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]sweepd.MemberLoad(nil), c.loads...)
}

func (c *fakeCluster) UpdateLease(l sweepd.JobLease) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.leases[l.JobID]
	accept := !ok ||
		l.Generation > cur.Generation ||
		(l.Generation == cur.Generation && (l.Owner == cur.Owner || l.Owner < cur.Owner))
	if accept {
		l.Updated = time.Now() // the real registry re-stamps on receipt
		c.leases[l.JobID] = l
	}
	return accept
}

func (c *fakeCluster) DropLease(jobID string, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.leases[jobID]; ok && cur.Generation <= gen {
		delete(c.leases, jobID)
	}
}

func (c *fakeCluster) Leases() []sweepd.JobLease {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]sweepd.JobLease, 0, len(c.leases))
	for _, l := range c.leases {
		out = append(out, l)
	}
	return out
}

func (c *fakeCluster) Tombstones() []sweepd.Tombstone { return nil }

func (c *fakeCluster) ReportLeaseFailure(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures = append(c.failures, url)
}

func (c *fakeCluster) lease(jobID string) (sweepd.JobLease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[jobID]
	return l, ok
}

// adoptCall records one Manager.Adopt invocation.
type adoptCall struct {
	spec       sweepd.Spec
	checkpoint []byte
}

// fakeManager scripts the manager surface: a fixed load, a job list,
// and recorded Submit/Adopt calls.
type fakeManager struct {
	mu        sync.Mutex
	load      sweepd.LoadInfo
	jobs      []sweepd.Job
	submitted []sweepd.Spec
	adopted   []adoptCall
	submitErr error
	// replicaCheckpoints scripts ReplicaCheckpoint by job ID (nil map =
	// no replicas held).
	replicaCheckpoints map[string][]byte
}

func (m *fakeManager) Submit(sp sweepd.Spec) (sweepd.Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted = append(m.submitted, sp)
	if m.submitErr != nil {
		return sweepd.Job{}, false, m.submitErr
	}
	return sweepd.Job{ID: sp.ID(), Spec: sp, Status: sweepd.StatusRunning}, true, nil
}

func (m *fakeManager) Adopt(sp sweepd.Spec, checkpoint []byte) (sweepd.Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.adopted = append(m.adopted, adoptCall{sp, checkpoint})
	job := sweepd.Job{ID: sp.ID(), Spec: sp, Status: sweepd.StatusRunning, Total: sp.NumCells()}
	m.jobs = append(m.jobs, job)
	return job, true, nil
}

func (m *fakeManager) List() []sweepd.Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]sweepd.Job(nil), m.jobs...)
}

func (m *fakeManager) Load() sweepd.LoadInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.load
}

func (m *fakeManager) ReplicaCheckpoint(id string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicaCheckpoints[id]
}

func (m *fakeManager) setJobs(jobs ...sweepd.Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs = jobs
}

func newTestScheduler(t *testing.T, c *fakeCluster, m *fakeManager) *Scheduler {
	t.Helper()
	s, err := New(Options{
		Cluster:    c,
		Manager:    m,
		AdoptAfter: 10 * time.Second,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// peerDaemon is a minimal fake peer: it accepts /peer/jobs (202 + job
// JSON), records /peer/jobs/claim, and serves a canned checkpoint for
// /sweeps/{id}/results (404 when empty).
type peerDaemon struct {
	mu         sync.Mutex
	submits    int
	claims     []sweepd.JobLease
	checkpoint []byte
	rejections int // initial 429s to serve on /peer/jobs, with Retry-After: 0
	srv        *httptest.Server
}

func newPeerDaemon(t *testing.T) *peerDaemon {
	t.Helper()
	p := &peerDaemon{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /peer/jobs", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.rejections > 0 {
			p.rejections--
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		var sp sweepd.Spec
		if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sp.Normalize()
		p.submits++
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(sweepd.Job{ID: sp.ID(), Spec: sp, Status: sweepd.StatusRunning}) //nolint:errcheck
	})
	mux.HandleFunc("POST /peer/jobs/claim", func(w http.ResponseWriter, r *http.Request) {
		var l sweepd.JobLease
		if err := json.NewDecoder(r.Body).Decode(&l); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.claims = append(p.claims, l)
		p.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]bool{"accepted": true}) //nolint:errcheck
	})
	mux.HandleFunc("GET /sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		ck := p.checkpoint
		p.mu.Unlock()
		if len(ck) == 0 {
			http.NotFound(w, r)
			return
		}
		w.Write(ck) //nolint:errcheck
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

// TestPickTargetStrictlyLess: ties and heavier peers keep the job
// local; only a strictly less-loaded peer attracts it, and among
// peers the least-loaded wins.
func TestPickTargetStrictlyLess(t *testing.T) {
	c := newFakeCluster("http://self:1")
	m := &fakeManager{load: sweepd.LoadInfo{QueueDepth: 2}}
	s := newTestScheduler(t, c, m)

	if got := s.pickTarget(); got != "" {
		t.Fatalf("no peers: target = %q, want local", got)
	}
	c.loads = []sweepd.MemberLoad{
		{URL: "http://a:1", Load: sweepd.LoadInfo{QueueDepth: 2}}, // tie: stays local
		{URL: "http://self:1", Load: sweepd.LoadInfo{QueueDepth: 0}},
	}
	if got := s.pickTarget(); got != "" {
		t.Fatalf("tied peer: target = %q, want local", got)
	}
	c.loads = []sweepd.MemberLoad{
		{URL: "http://a:1", Load: sweepd.LoadInfo{QueueDepth: 1}},
		{URL: "http://b:1", Load: sweepd.LoadInfo{QueueDepth: 0, BusyWorkers: 3}},
	}
	if got := s.pickTarget(); got != "http://b:1" {
		t.Fatalf("target = %q, want the least-loaded peer", got)
	}
}

// TestSubmitForwardsAndHonorsRetryAfter: a submission lands on the
// less-loaded peer even when the peer sheds the first attempts with
// 429 + Retry-After, and the forward counts in Stats.
func TestSubmitForwardsAndHonorsRetryAfter(t *testing.T) {
	peer := newPeerDaemon(t)
	peer.rejections = 2
	c := newFakeCluster("http://self:1")
	m := &fakeManager{load: sweepd.LoadInfo{QueueDepth: 3}}
	c.loads = []sweepd.MemberLoad{{URL: peer.srv.URL, Load: sweepd.LoadInfo{}}}
	s := newTestScheduler(t, c, m)

	sp := testSpec()
	placed, err := s.SubmitSweep(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if placed.PlacedOn != peer.srv.URL || !placed.Created || placed.Job.ID != sp.ID() {
		t.Fatalf("placed = %+v", placed)
	}
	if peer.submits != 1 {
		t.Fatalf("peer admitted %d submissions, want 1", peer.submits)
	}
	if len(m.submitted) != 0 {
		t.Fatal("forwarded submission also ran locally")
	}
	if st := s.Stats(); st.Forwards != 1 || st.ForwardFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSubmitFallsBackLocalOnForwardFailure: an unreachable target
// costs a failure counter and a registry report, not the submission.
func TestSubmitFallsBackLocalOnForwardFailure(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	c := newFakeCluster("http://self:1")
	m := &fakeManager{load: sweepd.LoadInfo{QueueDepth: 3}}
	c.loads = []sweepd.MemberLoad{{URL: dead.URL, Load: sweepd.LoadInfo{}}}
	s := newTestScheduler(t, c, m)

	sp := testSpec()
	placed, err := s.SubmitSweep(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if placed.PlacedOn != "" || placed.Job.ID != sp.ID() {
		t.Fatalf("placed = %+v, want local fallback", placed)
	}
	if len(m.submitted) != 1 {
		t.Fatalf("local manager saw %d submissions, want 1", len(m.submitted))
	}
	if len(c.failures) != 1 || c.failures[0] != dead.URL {
		t.Fatalf("registry failure reports = %v", c.failures)
	}
	if st := s.Stats(); st.ForwardFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSubmitRedirectsWhenFullEverywhere: forward failed and the local
// quota is exhausted — the caller gets a RedirectError naming the
// chosen peer so the HTTP layer can answer 307.
func TestSubmitRedirectsWhenFullEverywhere(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	c := newFakeCluster("http://self:1")
	m := &fakeManager{load: sweepd.LoadInfo{QueueDepth: 3}, submitErr: sweepd.ErrJobQuota}
	c.loads = []sweepd.MemberLoad{{URL: dead.URL, Load: sweepd.LoadInfo{}}}
	s := newTestScheduler(t, c, m)

	_, err := s.SubmitSweep(context.Background(), testSpec())
	var redir *sweepd.RedirectError
	if !asRedirect(err, &redir) || redir.URL != dead.URL {
		t.Fatalf("err = %v, want RedirectError to %s", err, dead.URL)
	}
}

func asRedirect(err error, target **sweepd.RedirectError) bool {
	re, ok := err.(*sweepd.RedirectError)
	if ok {
		*target = re
	}
	return ok
}

// TestHeartbeatLeasesRunningJobsAndDropsFinished: one tick publishes a
// generation-1 lease per running job; the tick after the job finishes
// withdraws it.
func TestHeartbeatLeasesRunningJobsAndDropsFinished(t *testing.T) {
	sp := testSpec()
	c := newFakeCluster("http://self:1")
	m := &fakeManager{}
	m.setJobs(sweepd.Job{ID: sp.ID(), Spec: sp, Status: sweepd.StatusRunning, Completed: 3, Total: 8})
	s := newTestScheduler(t, c, m)

	s.tick()
	l, ok := c.lease(sp.ID())
	if !ok || l.Owner != "http://self:1" || l.Generation != 1 || l.Completed != 3 {
		t.Fatalf("lease after tick = %+v (ok=%v)", l, ok)
	}

	m.setJobs(sweepd.Job{ID: sp.ID(), Spec: sp, Status: sweepd.StatusDone})
	s.tick()
	if _, ok := c.lease(sp.ID()); ok {
		t.Fatal("finished job's lease was not withdrawn")
	}
	if st := s.Stats(); st.LeadershipLost != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHeartbeatCedesToNewerGeneration: a zombie ex-leader whose job
// was adopted elsewhere must stop heartbeating (but keep its maps
// clean) the moment its update is rejected — and never knock out the
// adopter's lease when its local run finishes.
func TestHeartbeatCedesToNewerGeneration(t *testing.T) {
	sp := testSpec()
	c := newFakeCluster("http://self:1")
	m := &fakeManager{}
	m.setJobs(sweepd.Job{ID: sp.ID(), Spec: sp, Status: sweepd.StatusRunning})
	s := newTestScheduler(t, c, m)

	s.tick() // leads at generation 1
	adopter := sweepd.JobLease{JobID: sp.ID(), Spec: sp, Owner: "http://peer:1", Generation: 2}
	if !c.UpdateLease(adopter) {
		t.Fatal("adopter's claim rejected by fake table")
	}

	s.tick() // rejected heartbeat → cede
	if st := s.Stats(); st.LeadershipLost != 1 {
		t.Fatalf("stats = %+v, want one leadership loss", st)
	}
	if l, _ := c.lease(sp.ID()); l.Owner != "http://peer:1" || l.Generation != 2 {
		t.Fatalf("lease = %+v, want the adopter's", l)
	}

	// The ceded job finishing locally must not drop the adopter's lease.
	m.setJobs(sweepd.Job{ID: sp.ID(), Spec: sp, Status: sweepd.StatusDone})
	s.tick()
	if l, ok := c.lease(sp.ID()); !ok || l.Owner != "http://peer:1" {
		t.Fatalf("adopter's lease gone after zombie finished: %+v (ok=%v)", l, ok)
	}
}

// TestHeartbeatCedesToPreexistingLease: a job discovered already under
// another member's lease (restart races) is never heartbeated at all.
func TestHeartbeatCedesToPreexistingLease(t *testing.T) {
	sp := testSpec()
	c := newFakeCluster("http://self:1")
	c.UpdateLease(sweepd.JobLease{JobID: sp.ID(), Spec: sp, Owner: "http://peer:1", Generation: 3})
	m := &fakeManager{}
	m.setJobs(sweepd.Job{ID: sp.ID(), Spec: sp, Status: sweepd.StatusRunning})
	s := newTestScheduler(t, c, m)

	s.tick()
	if l, _ := c.lease(sp.ID()); l.Owner != "http://peer:1" || l.Generation != 3 {
		t.Fatalf("lease = %+v, want untouched", l)
	}
	if st := s.Stats(); st.LeadershipLost != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAdoptionElectionAndClaim: an orphaned stale lease is adopted by
// the least-loaded member only; the adopter recovers the checkpoint
// tail from an alive peer, bumps the generation, and broadcasts the
// claim. A member that loses the election leaves the lease alone.
func TestAdoptionElectionAndClaim(t *testing.T) {
	sp := testSpec()
	peer := newPeerDaemon(t)
	peer.checkpoint = []byte("checkpoint-tail\n")

	c := newFakeCluster("http://self:1")
	m := &fakeManager{load: sweepd.LoadInfo{QueueDepth: 1}}
	s := newTestScheduler(t, c, m)
	past := time.Now().Add(-time.Minute)
	orphan := sweepd.JobLease{JobID: sp.ID(), Spec: sp, Owner: "http://dead:1", Generation: 1, Updated: past}
	c.UpdateLease(orphan)
	c.leases[sp.ID()] = orphan // pin the stale Updated stamp
	c.members = []sweepd.MemberInfo{
		{URL: "http://dead:1", State: "down"},
		{URL: peer.srv.URL, State: "alive"},
	}

	// The peer looks idler: election goes to it, we do nothing.
	c.loads = []sweepd.MemberLoad{{URL: peer.srv.URL, Load: sweepd.LoadInfo{}}}
	s.tick()
	if len(m.adopted) != 0 {
		t.Fatal("lost election but adopted anyway")
	}

	// Now we are the least loaded: adopt, seed, claim.
	m.load = sweepd.LoadInfo{}
	c.loads = []sweepd.MemberLoad{{URL: peer.srv.URL, Load: sweepd.LoadInfo{QueueDepth: 5}}}
	s.tick()
	if len(m.adopted) != 1 || string(m.adopted[0].checkpoint) != "checkpoint-tail\n" {
		t.Fatalf("adopt calls = %+v", m.adopted)
	}
	l, _ := c.lease(sp.ID())
	if l.Owner != "http://self:1" || l.Generation != 2 {
		t.Fatalf("post-adoption lease = %+v", l)
	}
	if st := s.Stats(); st.Adoptions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	peer.mu.Lock()
	claims := len(peer.claims)
	peer.mu.Unlock()
	if claims != 1 {
		t.Fatalf("peer saw %d claims, want 1", claims)
	}

	// The adopted job now heartbeats at generation 2.
	s.tick()
	if l, _ := c.lease(sp.ID()); l.Generation != 2 || l.Owner != "http://self:1" {
		t.Fatalf("heartbeat after adoption = %+v", l)
	}
}

// TestAdoptionWaitsForStaleness: a fresh lease from a down owner is
// not adopted before AdoptAfter — restarts get their grace period.
func TestAdoptionWaitsForStaleness(t *testing.T) {
	sp := testSpec()
	c := newFakeCluster("http://self:1")
	m := &fakeManager{}
	s := newTestScheduler(t, c, m)
	c.UpdateLease(sweepd.JobLease{JobID: sp.ID(), Spec: sp, Owner: "http://dead:1", Generation: 1, Updated: time.Now()})
	c.members = []sweepd.MemberInfo{{URL: "http://dead:1", State: "down"}}

	s.tick()
	if len(m.adopted) != 0 {
		t.Fatal("adopted a lease younger than AdoptAfter")
	}
	// An alive owner is never adopted from, however stale the lease.
	c.leases[sp.ID()] = sweepd.JobLease{JobID: sp.ID(), Spec: sp, Owner: "http://dead:1", Generation: 1, Updated: time.Now().Add(-time.Hour)}
	c.members = []sweepd.MemberInfo{{URL: "http://dead:1", State: "alive"}}
	s.tick()
	if len(m.adopted) != 0 {
		t.Fatal("adopted from an alive owner")
	}
}

// TestAdoptionSeedsFromLocalReplica: when the adopter already holds a
// verified replica of the job, adoption seeds from those local bytes and
// never tail-fetches over HTTP — the peer's (different) checkpoint must
// not be touched.
func TestAdoptionSeedsFromLocalReplica(t *testing.T) {
	sp := testSpec()
	peer := newPeerDaemon(t)
	peer.checkpoint = []byte("http-tail-must-not-be-used\n")

	c := newFakeCluster("http://self:1")
	m := &fakeManager{
		replicaCheckpoints: map[string][]byte{sp.ID(): []byte("replica-bytes\n")},
	}
	s := newTestScheduler(t, c, m)
	past := time.Now().Add(-time.Minute)
	orphan := sweepd.JobLease{JobID: sp.ID(), Spec: sp, Owner: "http://dead:1", Generation: 1, Updated: past}
	c.UpdateLease(orphan)
	c.leases[sp.ID()] = orphan // pin the stale Updated stamp
	c.members = []sweepd.MemberInfo{
		{URL: "http://dead:1", State: "down"},
		{URL: peer.srv.URL, State: "alive"},
	}
	c.loads = []sweepd.MemberLoad{{URL: peer.srv.URL, Load: sweepd.LoadInfo{QueueDepth: 5}}}

	s.tick()
	if len(m.adopted) != 1 || string(m.adopted[0].checkpoint) != "replica-bytes\n" {
		t.Fatalf("adopt calls = %+v, want one seeded from the local replica", m.adopted)
	}
	if st := s.Stats(); st.Adoptions != 1 || st.ReplicaSeeds != 1 {
		t.Fatalf("stats = %+v, want Adoptions=1 ReplicaSeeds=1", st)
	}
}
