package sched_test

// Scheduler performance artifact: with BENCH_OUT set, this test runs
// the two scheduler hot paths against a real three-daemon cluster and
// writes their measured latencies as JSON (committed as
// BENCH_sched.json at the repo root), so the placement and failover
// trajectory is tracked across PRs alongside the paper-table benches.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/internal/sweepd"
)

type schedBench struct {
	// PlacementMS is the client-observed POST /sweeps round trip when
	// the receiving member is busy and forwards to an idle peer.
	PlacementMS float64 `json:"placement_ms"`
	// AdoptionMS is kill-to-adoption: leader killed mid-sweep until a
	// survivor's adoptions counter ticks. Includes down detection
	// (DownAfterMS-ish), the staleness window (AdoptAfterMS), and the
	// adopter's next heartbeat tick.
	AdoptionMS float64 `json:"adoption_ms"`
	// The knobs the latencies are conditioned on.
	AdoptAfterMS    float64 `json:"adopt_after_ms"`
	HeartbeatMS     float64 `json:"heartbeat_ms"`
	ProbeIntervalMS float64 `json:"probe_interval_ms"`
	Cells           int     `json:"cells"`
	GeneratedAt     string  `json:"generated_at"`
}

// TestBenchSched writes BENCH_sched.json when BENCH_OUT names the
// output path; without it the test is a no-op skip so the regular
// suite never pays for the measurement.
func TestBenchSched(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=<path> to measure and write BENCH_sched.json")
	}

	long := sweepd.Spec{
		N:      60, // ~25ms/cell keeps the leader busy through both measurements
		Alphas: []float64{0.3, 0.5, 1, 2, 5},
		Ks:     []int{2, 3, 1000},
		Seeds:  4, // 60 cells
	}
	long.Normalize()
	small := sweepd.Spec{N: 16, Alphas: []float64{0.5, 1, 2}, Ks: []int{2, 1000}, Seeds: 4}
	small.Normalize()

	a := newSchedDaemon(t, 1)
	b := newSchedDaemon(t, 2, a.srv.URL)
	c := newSchedDaemon(t, 2, a.srv.URL)
	waitMesh(t, a, b, c)

	// Placement: make a busy, then time a forwarded submission.
	if _, _, err := a.mgr.Submit(long); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for a.mgr.Load().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("busy job never started")
		}
		time.Sleep(time.Millisecond)
	}
	body, err := json.Marshal(small)
	if err != nil {
		t.Fatal(err)
	}
	placeStart := time.Now()
	resp, err := http.Post(a.srv.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	placement := time.Since(placeStart)
	resp.Body.Close()
	if resp.Header.Get("X-Sweep-Placement") == "" {
		t.Fatalf("submission was not forwarded (status %s); placement latency unmeasured", resp.Status)
	}

	// Adoption: wait for the busy job's lease on both survivors, kill
	// the leader, time until a survivor adopts.
	jobID := long.ID()
	for _, survivor := range []*daemon{b, c} {
		for {
			leased := false
			for _, l := range survivor.reg.Leases() {
				if l.JobID == jobID {
					leased = true
				}
			}
			if leased {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("lease never propagated; adoption unmeasurable")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	killStart := time.Now()
	a.kill()
	for b.sch.Stats().Adoptions+c.sch.Stats().Adoptions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no adoption within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	adoption := time.Since(killStart)

	res := schedBench{
		PlacementMS:     float64(placement.Microseconds()) / 1000,
		AdoptionMS:      float64(adoption.Microseconds()) / 1000,
		AdoptAfterMS:    float64(adoptAfter.Milliseconds()),
		HeartbeatMS:     float64(schedBeat.Milliseconds()),
		ProbeIntervalMS: float64(probeIvl.Milliseconds()),
		Cells:           long.NumCells(),
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: placement %.1fms, adoption %.1fms", out, res.PlacementMS, res.AdoptionMS)
}
