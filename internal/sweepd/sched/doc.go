// Package sched makes a sweepd cluster a single logical service: any
// member accepts a sweep, the least-loaded member runs it, and a dead
// leader's jobs are adopted by the survivors.
//
// # Architecture
//
// The scheduler is a thin layer over two seams it does not own: the
// cluster registry (membership, capacity, and the job-lease table —
// internal/sweepd/cluster) and the job manager (admission and execution
// — sweepd.Manager). It adds three behaviors:
//
// Placement. POST /sweeps routes through Scheduler.SubmitSweep. The
// submission runs locally unless some alive peer's last-probed load
// (queue depth, then busy workers, then running jobs — sweepd.LoadInfo)
// is strictly below the local manager's live load; then the spec is
// forwarded to the least-loaded peer over POST /peer/jobs, honoring
// Retry-After on 429s up to a bounded budget. A failed forward falls
// back to local admission, and only if the local quota also refuses
// does the client get a 307 with the chosen peer in Location. Ties
// prefer local execution, so an idle cluster behaves exactly like a
// set of independent daemons.
//
// Leadership. Every heartbeat tick the scheduler writes one JobLease
// per locally running job into the registry: job ID, the full spec
// (so any member can restart the job from gossip state alone), owner
// URL, generation, and checkpoint progress. Leases ride the existing
// gossip cycle (GET /peer/members), so within about one probe interval
// every member knows every running job and who leads it.
//
// Adoption. When a lease's owner is down (or tombstoned away) and the
// lease has not been refreshed for AdoptAfter, every member runs the
// same deterministic election: the least-loaded alive member (URL as
// tie-break) adopts. The adopter fetches the checkpoint tail from any
// alive member that still has bytes (usually none — the dead leader
// had the file), seeds its local checkpoint with the maximal canonical
// prefix via Manager.Adopt, resumes the job as generation+1 leader,
// and broadcasts the claim over POST /peer/jobs/claim so peers (and
// any racing adopter) learn before the next gossip cycle. Per-cell
// determinism makes the recovered checkpoint byte-identical to an
// uninterrupted run no matter how much of the tail was recovered.
//
// # Split-brain guard
//
// The generation number is the only authority over a job. A lease
// update wins the table only if its generation is strictly higher, or
// equal with the same owner (a refresh) or a lexicographically smaller
// owner (the tie-break two concurrent adopters converge on). A zombie
// ex-leader that comes back and resumes its job keeps computing — the
// work is deterministic, so its results are correct — but its gen-N
// heartbeats lose against the adopter's gen-N+1 lease everywhere; it
// "cedes": it stops heartbeating the job and never again claims to
// lead it. No cancellation is needed for correctness, and none is
// attempted: two daemons computing one grid waste cycles but cannot
// diverge.
package sched
