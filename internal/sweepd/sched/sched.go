package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweepd"
)

// maxCheckpointFetch bounds how much of a peer's checkpoint tail the
// adopter will buffer. A truncated tail is safe: Manager.Adopt keeps
// only the maximal canonical prefix, and the run recomputes the rest.
const maxCheckpointFetch = 64 << 20

// Cluster is the registry surface the scheduler drives. Implemented by
// *cluster.Registry; tests substitute fakes.
type Cluster interface {
	// Self returns this daemon's advertised URL ("" until known).
	Self() string
	// Members returns the full member table, self included.
	Members() []sweepd.MemberInfo
	// AliveLoads returns the last-probed load of every alive member
	// whose load is known, sorted by URL.
	AliveLoads() []sweepd.MemberLoad
	sweepd.LeaseTable
}

// Manager is the job-manager surface the scheduler drives.
// Implemented by *sweepd.Manager.
type Manager interface {
	Submit(sp sweepd.Spec) (sweepd.Job, bool, error)
	Adopt(sp sweepd.Spec, checkpoint []byte) (sweepd.Job, bool, error)
	List() []sweepd.Job
	Load() sweepd.LoadInfo
	// ReplicaCheckpoint returns the raw checkpoint bytes of a locally
	// held replica of the job, or nil when none exists — adoption
	// prefers this over an HTTP tail-fetch from peers.
	ReplicaCheckpoint(id string) []byte
}

// failureReporter lets the scheduler tell the registry a peer failed
// a forward, so the next probe cycle rechecks it sooner. Satisfied by
// *cluster.Registry (ReportLeaseFailure, shared with the shard
// backend). Optional.
type failureReporter interface {
	ReportLeaseFailure(url string)
}

// Options configures a Scheduler. Cluster and Manager are required.
type Options struct {
	Cluster Cluster
	Manager Manager

	// AdoptAfter is how long a lease may go unrefreshed after its
	// owner stops answering before a peer adopts the job. Longer
	// values ride out restarts; shorter values resume work faster.
	// Default 30s.
	AdoptAfter time.Duration

	// Heartbeat is the scheduler tick: lease refresh and adoption
	// scan. Must be well under AdoptAfter. Default 2s.
	Heartbeat time.Duration

	// ForwardBudget caps the cumulative Retry-After wait spent
	// re-trying a 429 from the forward target before giving up on
	// it. Default 5s.
	ForwardBudget time.Duration

	// Client is used for forwards, claims, and checkpoint fetches.
	// Defaults to a bounded-dial client with a 30s overall timeout.
	Client *http.Client

	// Logf receives scheduler events. Defaults to log.Printf-shaped
	// no-op when nil.
	Logf func(format string, args ...any)
}

// Scheduler implements sweepd.Submitter over a cluster: capacity-aware
// placement on submit, per-job leadership leases while running, and
// adoption of orphaned jobs. See the package comment for the protocol.
type Scheduler struct {
	opts   Options
	client *http.Client
	logf   func(string, ...any)
	now    func() time.Time // injected in tests

	mu    sync.Mutex
	gens  map[string]uint64 // job id -> generation we lead at
	ceded map[string]bool   // jobs we run but no longer lead

	started bool
	closed  bool
	stop    chan struct{}
	done    chan struct{}

	forwards        atomic.Uint64
	forwardFailures atomic.Uint64
	adoptions       atomic.Uint64
	leadershipLost  atomic.Uint64
	replicaSeeds    atomic.Uint64
}

// New builds a Scheduler; call Start to begin ticking.
func New(opts Options) (*Scheduler, error) {
	if opts.Cluster == nil || opts.Manager == nil {
		return nil, errors.New("sched: Cluster and Manager are required")
	}
	if opts.AdoptAfter <= 0 {
		opts.AdoptAfter = 30 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 2 * time.Second
	}
	if opts.ForwardBudget <= 0 {
		opts.ForwardBudget = 5 * time.Second
	}
	s := &Scheduler{
		opts:   opts,
		client: opts.Client,
		logf:   opts.Logf,
		now:    time.Now,
		gens:   make(map[string]uint64),
		ceded:  make(map[string]bool),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if s.client == nil {
		s.client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
				ResponseHeaderTimeout: 10 * time.Second,
				MaxIdleConnsPerHost:   4,
			},
		}
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	return s, nil
}

// Start launches the heartbeat/adoption loop.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.loop()
}

// Close stops the loop and waits for the in-flight tick to finish.
// Leases we own stay in the registry and expire (or get adopted) like
// any dead leader's; a clean shutdown does not orphan bookkeeping
// because finished jobs already dropped theirs.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	close(s.stop)
	if started {
		<-s.done
	}
}

func (s *Scheduler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.tick()
		}
	}
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() sweepd.SchedStats {
	return sweepd.SchedStats{
		Forwards:        s.forwards.Load(),
		ForwardFailures: s.forwardFailures.Load(),
		Adoptions:       s.adoptions.Load(),
		LeadershipLost:  s.leadershipLost.Load(),
		ReplicaSeeds:    s.replicaSeeds.Load(),
	}
}

// SubmitSweep implements sweepd.Submitter: admit locally when we are
// the least-loaded member, otherwise forward to the member that is.
func (s *Scheduler) SubmitSweep(ctx context.Context, sp sweepd.Spec) (sweepd.PlacedJob, error) {
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		return sweepd.PlacedJob{}, err
	}
	target := s.pickTarget()
	if target == "" {
		job, created, err := s.opts.Manager.Submit(sp)
		return sweepd.PlacedJob{Job: job, Created: created}, err
	}
	job, created, err := s.forward(ctx, target, sp)
	if err == nil {
		s.forwards.Add(1)
		return sweepd.PlacedJob{Job: job, Created: created, PlacedOn: target}, nil
	}
	s.forwardFailures.Add(1)
	s.logf("sched: forward to %s failed: %v; admitting locally", target, err)
	if fr, ok := s.opts.Cluster.(failureReporter); ok {
		fr.ReportLeaseFailure(target)
	}
	job, created, lerr := s.opts.Manager.Submit(sp)
	if errors.Is(lerr, sweepd.ErrJobQuota) {
		// Full here too: hand the client the member we picked so it
		// can retry there directly (307 + Location at the HTTP layer).
		return sweepd.PlacedJob{}, &sweepd.RedirectError{URL: target}
	}
	return sweepd.PlacedJob{Job: job, Created: created}, lerr
}

// pickTarget returns the URL of an alive peer whose load is strictly
// below ours, or "" to run locally. Ties keep the job local: moving a
// job is only worth it when the peer is actually less loaded, and the
// strict comparison keeps an idle cluster from ping-ponging specs.
func (s *Scheduler) pickTarget() string {
	peers := s.opts.Cluster.AliveLoads()
	if len(peers) == 0 {
		return ""
	}
	self := s.opts.Cluster.Self()
	target, best := "", s.opts.Manager.Load()
	for _, ml := range peers {
		if ml.URL == self {
			continue
		}
		if ml.Load.Less(best) {
			target, best = ml.URL, ml.Load
		}
	}
	return target
}

// forward POSTs the spec to target's /peer/jobs, waiting out 429s per
// their Retry-After up to ForwardBudget.
func (s *Scheduler) forward(ctx context.Context, target string, sp sweepd.Spec) (sweepd.Job, bool, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return sweepd.Job{}, false, err
	}
	var waited time.Duration
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/peer/jobs", bytes.NewReader(body))
		if err != nil {
			return sweepd.Job{}, false, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.client.Do(req)
		if err != nil {
			return sweepd.Job{}, false, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && waited < s.opts.ForwardBudget {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			wait := sweepd.RetryAfter(resp, s.now(), s.opts.ForwardBudget-waited)
			resp.Body.Close()
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return sweepd.Job{}, false, ctx.Err()
			}
			waited += wait
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return sweepd.Job{}, false, fmt.Errorf("%s/peer/jobs: %s: %s", target, resp.Status, strings.TrimSpace(string(msg)))
		}
		var job sweepd.Job
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&job); err != nil {
			return sweepd.Job{}, false, fmt.Errorf("%s/peer/jobs: bad response: %w", target, err)
		}
		return job, resp.StatusCode == http.StatusAccepted, nil
	}
}

// tick is one scheduler round: refresh leases for jobs we lead, then
// scan for orphans to adopt. Exercised directly by tests.
func (s *Scheduler) tick() {
	self := s.opts.Cluster.Self()
	if self == "" {
		return // not announced yet
	}
	s.heartbeat(self)
	s.adoptPass(self)
}

// heartbeat writes a lease for every locally running job we lead and
// drops leases for jobs that finished. A rejected update means a peer
// holds a newer generation: we cede leadership but let the local run
// finish — determinism makes the duplicate compute harmless.
func (s *Scheduler) heartbeat(self string) {
	jobs := s.opts.Manager.List()
	s.mu.Lock()
	defer s.mu.Unlock()

	var table map[string]sweepd.JobLease // lazy; only newly seen jobs need it
	leaseFor := func(id string) (sweepd.JobLease, bool) {
		if table == nil {
			table = make(map[string]sweepd.JobLease)
			for _, l := range s.opts.Cluster.Leases() {
				table[l.JobID] = l
			}
		}
		l, ok := table[id]
		return l, ok
	}

	live := make(map[string]bool, len(jobs))
	for _, job := range jobs {
		if job.Status != sweepd.StatusRunning {
			continue
		}
		live[job.ID] = true
		if s.ceded[job.ID] {
			continue
		}
		gen, tracked := s.gens[job.ID]
		if !tracked {
			gen = 1
			// A job can predate us (daemon restart resumed it, or the
			// registry gossiped a lease before our first tick). Inherit
			// our own lease's generation; cede to anyone else's.
			if l, ok := leaseFor(job.ID); ok {
				if l.Owner == self {
					gen = l.Generation
				} else {
					s.ceded[job.ID] = true
					s.leadershipLost.Add(1)
					s.logf("sched: job %s led by %s at generation %d; running as non-leader", job.ID, l.Owner, l.Generation)
					continue
				}
			}
			s.gens[job.ID] = gen
		}
		ok := s.opts.Cluster.UpdateLease(sweepd.JobLease{
			JobID:      job.ID,
			Spec:       job.Spec,
			Owner:      self,
			Generation: gen,
			Completed:  job.Completed,
			Total:      job.Total,
		})
		if !ok {
			s.ceded[job.ID] = true
			s.leadershipLost.Add(1)
			s.logf("sched: job %s leadership lost to a newer generation; running as non-leader", job.ID)
		}
	}

	for id, gen := range s.gens {
		if live[id] {
			continue
		}
		if !s.ceded[id] {
			s.opts.Cluster.DropLease(id, gen)
		}
		delete(s.gens, id)
	}
	for id := range s.ceded {
		if !live[id] {
			delete(s.ceded, id)
		}
	}
}

// adoptPass scans the lease table for jobs whose owner is gone and
// whose lease has gone stale, and adopts them if this member wins the
// deterministic election.
func (s *Scheduler) adoptPass(self string) {
	leases := s.opts.Cluster.Leases()
	if len(leases) == 0 {
		return
	}
	state := make(map[string]string)
	for _, m := range s.opts.Cluster.Members() {
		if !m.Self {
			state[m.URL] = m.State
		}
	}
	now := s.now()
	elected := false
	var winner string
	for _, l := range leases {
		if l.Owner == self {
			continue
		}
		// Only orphans: the owner must look dead from here (down, or
		// tombstoned out of the table entirely).
		if st, known := state[l.Owner]; known && st != "down" {
			continue
		}
		if now.Sub(l.Updated) < s.opts.AdoptAfter {
			continue
		}
		if !elected {
			winner = s.electAdopter(self)
			elected = true
		}
		if winner != self {
			continue // the less-loaded member will take it
		}
		s.adoptJob(self, l)
	}
}

// electAdopter picks the least-loaded alive member, self included,
// breaking load ties on the smaller URL. Every member evaluates the
// same gossip-sourced loads, so elections agree almost always; when
// they briefly don't, the lease generation guard settles it.
func (s *Scheduler) electAdopter(self string) string {
	best, bestLoad := self, s.opts.Manager.Load()
	for _, ml := range s.opts.Cluster.AliveLoads() {
		if ml.URL == self {
			continue
		}
		if ml.Load.Less(bestLoad) || (!bestLoad.Less(ml.Load) && ml.URL < best) {
			best, bestLoad = ml.URL, ml.Load
		}
	}
	return best
}

// adoptJob takes over an orphaned job: recover the checkpoint — from
// this daemon's own replica of the job when one exists (verified on
// receipt, no network needed, and present even when the dead leader
// held the only live copy), else whatever tail an alive peer still
// holds — seed it locally, resume the sweep, and publish the
// generation+1 lease.
func (s *Scheduler) adoptJob(self string, l sweepd.JobLease) {
	checkpoint := s.opts.Manager.ReplicaCheckpoint(l.JobID)
	if checkpoint != nil {
		s.replicaSeeds.Add(1)
		s.logf("sched: seeding adoption of job %s from local replica (%d bytes)", l.JobID, len(checkpoint))
	} else {
		checkpoint = s.fetchCheckpoint(l.JobID)
	}
	job, _, err := s.opts.Manager.Adopt(l.Spec, checkpoint)
	if err != nil {
		s.logf("sched: adopting job %s from %s failed: %v", l.JobID, l.Owner, err)
		return
	}
	newGen := l.Generation + 1
	s.mu.Lock()
	s.gens[l.JobID] = newGen
	delete(s.ceded, l.JobID)
	s.mu.Unlock()
	lease := sweepd.JobLease{
		JobID:      l.JobID,
		Spec:       l.Spec,
		Owner:      self,
		Generation: newGen,
		Completed:  job.Completed,
		Total:      job.Total,
	}
	if !s.opts.Cluster.UpdateLease(lease) {
		// A racing adopter claimed a newer (or tie-winning) lease
		// between our scan and now. Keep computing, stop leading.
		s.mu.Lock()
		s.ceded[l.JobID] = true
		s.mu.Unlock()
		s.leadershipLost.Add(1)
		s.logf("sched: adoption race on job %s lost; running as non-leader", l.JobID)
		return
	}
	s.adoptions.Add(1)
	s.logf("sched: adopted job %s from %s at generation %d (%d/%d cells checkpointed)",
		l.JobID, l.Owner, newGen, job.Completed, job.Total)
	s.broadcastClaim(lease)
}

// fetchCheckpoint asks each alive peer for the orphan's results file
// and returns the first non-empty body. Usually every peer 404s — the
// dead leader held the only copy — and the adopter recomputes from its
// cell cache instead.
func (s *Scheduler) fetchCheckpoint(jobID string) []byte {
	for _, m := range s.opts.Cluster.Members() {
		if m.Self || m.State != "alive" {
			continue
		}
		resp, err := s.client.Get(m.URL + "/sweeps/" + jobID + "/results")
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			continue
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxCheckpointFetch))
		resp.Body.Close()
		if err == nil && len(b) > 0 {
			s.logf("sched: recovered %d checkpoint bytes for job %s from %s", len(b), jobID, m.URL)
			return b
		}
	}
	return nil
}

// broadcastClaim pushes an adopted lease to every alive peer so the
// cluster converges before the next gossip cycle (and so a racing
// adopter cedes immediately). Best effort: gossip is the backstop.
func (s *Scheduler) broadcastClaim(l sweepd.JobLease) {
	body, err := json.Marshal(l)
	if err != nil {
		return
	}
	for _, m := range s.opts.Cluster.Members() {
		if m.Self || m.State != "alive" {
			continue
		}
		resp, err := s.client.Post(m.URL+"/peer/jobs/claim", "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
}
