package sched_test

// Storage/replication performance artifact: with BENCH_OUT set, this
// test measures the replication push path and the read fan-out against
// a real two-daemon pair and writes the latencies as JSON (committed as
// BENCH_store.json at the repo root), so the durable-plane trajectory
// is tracked across PRs alongside the scheduler bench.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/internal/sweepd"
)

type storeBench struct {
	// PushMS is one synchronous Replicate call: build the wire body from
	// the leader's checkpoint, POST it, and have the receiver verify
	// every line and commit the replica atomically.
	PushMS float64 `json:"push_ms"`
	// LeaderReadMS / ReplicaReadMS are client-observed GET /results
	// round trips against the primary copy and the replica copy of the
	// same job — the read fan-out's price relative to the leader.
	LeaderReadMS  float64 `json:"leader_read_ms"`
	ReplicaReadMS float64 `json:"replica_read_ms"`
	// NotModifiedMS is a conditional GET answered 304 from the replica:
	// the steady-state poll cost once a client holds the ETag.
	NotModifiedMS float64 `json:"not_modified_ms"`
	// Size of the artifact being pushed and served.
	Cells           int     `json:"cells"`
	CheckpointBytes int     `json:"checkpoint_bytes"`
	GeneratedAt     string  `json:"generated_at"`
}

// TestBenchStore writes BENCH_store.json when BENCH_OUT names the
// output path; without it the test is a no-op skip so the regular suite
// never pays for the measurement.
func TestBenchStore(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=<path> to measure and write BENCH_store.json")
	}

	sp := sweepd.Spec{
		N:      16,
		Alphas: []float64{0.3, 0.5, 1, 2, 5},
		Ks:     []int{2, 3, 1000},
		Seeds:  4, // 60 cells
	}
	sp.Normalize()

	leader := newSchedDaemon(t, 4)
	follower := newSchedDaemon(t, 2, leader.srv.URL)
	waitMesh(t, leader, follower)

	job, _, err := leader.mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	job = waitDone(t, leader.mgr, job.ID)
	// The finish hook races this measurement with its own async push;
	// wait it out, drop the copy, and measure a clean synchronous push.
	waitReplica(t, job.ID, follower)
	if err := follower.rs.Delete(job.ID); err != nil {
		t.Fatal(err)
	}

	// A dedicated replicator with a static target: the wired one would
	// consult the gossip replica table, which can still advertise the
	// just-deleted copy and skip the push as deficit-free.
	rp := sweepd.NewReplicator(sweepd.ReplicatorOptions{
		Store:  leader.store,
		Fanout: 1,
		Targets: func() []sweepd.MemberLoad {
			return []sweepd.MemberLoad{{URL: follower.srv.URL}}
		},
	})
	pushStart := time.Now()
	if err := rp.Replicate(job); err != nil {
		t.Fatal(err)
	}
	push := time.Since(pushStart)
	if st := rp.Stats(); st.Pushed != 1 {
		t.Fatalf("measured push stats = %+v, want exactly one push", st)
	}
	waitReplica(t, job.ID, follower)

	timeGet := func(base string, header map[string]string, wantStatus int) time.Duration {
		req, err := http.NewRequest(http.MethodGet, base+"/sweeps/"+job.ID+"/results", nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range header {
			req.Header.Set(k, v)
		}
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		elapsed := time.Since(start)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s/sweeps/%s/results = %d, want %d", base, job.ID, resp.StatusCode, wantStatus)
		}
		return elapsed
	}
	leaderRead := timeGet(leader.srv.URL, nil, http.StatusOK)
	replicaRead := timeGet(follower.srv.URL, nil, http.StatusOK)

	resp, err := http.Get(follower.srv.URL + "/sweeps/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("replica read carried no ETag")
	}
	notModified := timeGet(follower.srv.URL, map[string]string{"If-None-Match": etag}, http.StatusNotModified)

	ck, err := os.ReadFile(leader.store.ResultsPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	res := storeBench{
		PushMS:          float64(push.Microseconds()) / 1000,
		LeaderReadMS:    float64(leaderRead.Microseconds()) / 1000,
		ReplicaReadMS:   float64(replicaRead.Microseconds()) / 1000,
		NotModifiedMS:   float64(notModified.Microseconds()) / 1000,
		Cells:           sp.NumCells(),
		CheckpointBytes: len(ck),
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: push %.1fms, leader read %.1fms, replica read %.1fms, 304 %.1fms",
		out, res.PushMS, res.LeaderReadMS, res.ReplicaReadMS, res.NotModifiedMS)
}
