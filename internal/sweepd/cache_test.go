package sweepd

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dynamics"
)

// cacheLine builds a valid canonical cell-result line for cell (spill
// loads validate their content, so synthetic test lines must parse).
func cacheLine(cell dynamics.Cell) []byte {
	return []byte(fmt.Sprintf(
		`{"alpha":%g,"k":%d,"seed":%d,"status":"converged","rounds":1,"total_moves":1}`,
		cell.Alpha, cell.K, cell.Seed))
}

// TestCacheConcurrent hammers Put/Get/Stats from many goroutines over a
// cache small enough to evict constantly; run under -race (CI does) it
// guards the locking across both tiers.
func TestCacheConcurrent(t *testing.T) {
	for _, disk := range []bool{false, true} {
		name := "memory"
		if disk {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			var c *Cache
			if disk {
				var err error
				if c, err = NewDiskCache(8, t.TempDir()); err != nil {
					t.Fatal(err)
				}
			} else {
				c = NewCache(8)
			}
			cells := dynamics.Grid([]float64{0.5, 1, 2}, []int{2, 4}, 4)
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						cell := cells[(g+i)%len(cells)]
						if line, ok := c.Get("kern", cell); ok {
							if string(line) != string(cacheLine(cell)) {
								panic("cache returned a foreign line")
							}
						} else {
							c.Put("kern", cell, cacheLine(cell))
						}
						if i%17 == 0 {
							c.Stats()
						}
					}
				}(g)
			}
			wg.Wait()
			st := c.Stats()
			if st.Entries > 8 {
				t.Fatalf("memory tier over its bound: %+v", st)
			}
			if st.Hits == 0 || st.Misses == 0 {
				t.Fatalf("degenerate workload: %+v", st)
			}
		})
	}
}

// TestDiskCacheSurvivesRestart is the persistence contract: a fresh cache
// opened over the same spill directory serves the previous process's
// entries as hits.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDiskCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	cells := dynamics.Grid([]float64{1, 2, 3}, []int{2, 4}, 1) // 6 cells > memory bound 4
	for _, cell := range cells {
		c1.Put("kern", cell, cacheLine(cell))
	}
	if st := c1.Stats(); st.Evictions == 0 {
		t.Fatalf("expected memory evictions, got %+v", st)
	}
	// Evicted entries are still served — from disk, promoted back.
	for _, cell := range cells {
		line, ok := c1.Get("kern", cell)
		if !ok || string(line) != string(cacheLine(cell)) {
			t.Fatalf("cell %+v lost after eviction", cell)
		}
	}
	if st := c1.Stats(); st.DiskHits == 0 {
		t.Fatalf("evicted entries not served from disk: %+v", st)
	}

	// "Restart": a brand-new cache over the same directory is warm.
	c2, err := NewDiskCache(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		line, ok := c2.Get("kern", cell)
		if !ok || string(line) != string(cacheLine(cell)) {
			t.Fatalf("cell %+v cold after restart", cell)
		}
	}
	st := c2.Stats()
	if st.Hits != uint64(len(cells)) || st.DiskHits != uint64(len(cells)) || st.Misses != 0 {
		t.Fatalf("restart stats = %+v, want %d disk hits and no misses", st, len(cells))
	}
	// Promoted entries now hit the memory tier.
	if _, ok := c2.Get("kern", cells[0]); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.DiskHits != uint64(len(cells)) {
		t.Fatalf("memory-tier hit counted as disk: %+v", st)
	}

	// A different kernel stays partitioned.
	if _, ok := c2.Get("other", cells[0]); ok {
		t.Fatal("kernel hash must partition the disk tier")
	}
}

// TestCacheRemoveKernel: job GC removes a kernel's entries from both
// tiers and reports the spill bytes reclaimed, leaving other kernels
// untouched.
func TestCacheRemoveKernel(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	cells := dynamics.Grid([]float64{1, 2}, []int{2}, 1)
	for _, cell := range cells {
		c.Put("k1", cell, cacheLine(cell))
		c.Put("k2", cell, cacheLine(cell))
	}
	reclaimed := c.RemoveKernel("k1")
	if reclaimed <= 0 {
		t.Fatalf("reclaimed = %d, want > 0", reclaimed)
	}
	if _, ok := c.Get("k1", cells[0]); ok {
		t.Fatal("removed kernel still served")
	}
	if _, err := os.Stat(filepath.Join(dir, "k1")); !os.IsNotExist(err) {
		t.Fatal("spill dir survived RemoveKernel")
	}
	if _, ok := c.Get("k2", cells[0]); !ok {
		t.Fatal("unrelated kernel lost")
	}
	if n := c.RemoveKernel("k1"); n != 0 {
		t.Fatalf("double remove reclaimed %d bytes", n)
	}

	// Memory-only cache: entries purge, no disk bytes to reclaim; a nil
	// cache is a no-op.
	mc := NewCache(4)
	mc.Put("k", cells[0], cacheLine(cells[0]))
	if n := mc.RemoveKernel("k"); n != 0 {
		t.Fatalf("memory-only remove reclaimed %d bytes", n)
	}
	if _, ok := mc.Get("k", cells[0]); ok {
		t.Fatal("memory tier survived RemoveKernel")
	}
	var nilCache *Cache
	if n := nilCache.RemoveKernel("k"); n != 0 {
		t.Fatal("nil cache reclaimed bytes")
	}
}

func TestDiskCacheRejectsCorruptSpill(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	cell := dynamics.Cell{Alpha: 1, K: 2, Seed: 3}
	c.Put("kern", cell, cacheLine(cell))
	path := c.spillPath("kern", cell)
	if err := os.WriteFile(path, []byte(`{"alpha":`), 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewDiskCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get("kern", cell); ok {
		t.Fatal("corrupt spill file served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt spill file not deleted")
	}

	// A spill whose decoded cell disagrees with its address is rejected too.
	other := dynamics.Cell{Alpha: 7, K: 9, Seed: 0}
	if err := os.MkdirAll(filepath.Dir(fresh.spillPath("kern", other)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fresh.spillPath("kern", other), append(cacheLine(cell), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get("kern", other); ok {
		t.Fatal("mis-addressed spill file served as a hit")
	}
}
