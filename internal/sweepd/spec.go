// Package sweepd turns parameter sweeps into managed jobs: a durable job
// store with streaming JSONL checkpoints (one CellResult per line), a
// content-addressed result cache that dedupes repeated cells across jobs,
// a context-aware worker pool on top of dynamics.SweepContext, and an
// HTTP JSON API (cmd/ncg-server). Because every cell's RNG is derived
// from the job's base seed and the cell coordinates alone, a job killed
// mid-run and resumed from its checkpoint produces byte-identical results
// to an uninterrupted run.
//
// The workload itself is pluggable: a spec names a game dialect (the
// move rule — best-response, swap, large-neighborhood) and a graph
// family (the starting-network generator — tree, gnp, grid-delete,
// pa-tree, random-regular), each resolved through the registries in
// dialect.go. The serving layers are dialect-agnostic by construction:
// they consume the spec only through ID/KernelHash/Cells/Config/Factory,
// so caching, sharding, replication, summaries, and trajectories work
// identically for every dialect.
package sweepd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"
	"sort"

	"repro/internal/dynamics"
)

// Spec declares one sweep job: the game dialect and starting-network
// family, the (α, k, seed) grid, and the dynamics budget. The zero
// values of optional fields are normalized away, so specs that mean the
// same job hash the same.
type Spec struct {
	// Dialect is the move rule: "best-response" (default; normalized to
	// the empty string so legacy specs keep their hashes), "swap"
	// (re-point one owned edge), or "large-neighborhood" (shift/exchange
	// descent). See dialect.go.
	Dialect string `json:"dialect,omitempty"`
	// Variant is "max" or "sum" (default "max").
	Variant string `json:"variant,omitempty"`
	// Graph is the starting-network family: "tree" (random tree; the
	// default), "gnp" (connected Erdős–Rényi, edge probability P),
	// "grid-delete" (near-square grid, each edge deleted with
	// probability P, resampled until connected), "pa-tree"
	// (preferential-attachment tree), or "random-regular" (connected
	// q-regular, degree Q).
	Graph string `json:"graph,omitempty"`
	// N is the number of players (required, ≥ 2).
	N int `json:"n"`
	// P is the edge probability (Graph "gnp") or the edge deletion
	// probability (Graph "grid-delete"); unused otherwise.
	P float64 `json:"p,omitempty"`
	// Q is the vertex degree, required iff Graph == "random-regular".
	Q int `json:"q,omitempty"`
	// Alphas and Ks span the grid; Seeds random starts per (α, k) pair.
	Alphas []float64 `json:"alphas"`
	Ks     []int     `json:"ks"`
	Seeds  int       `json:"seeds"`
	// BaseSeed feeds the per-cell RNG derivation (default 1).
	BaseSeed int64 `json:"base_seed,omitempty"`
	// MaxRounds and CycleCheckAfter bound the dynamics (defaults 100, 25 —
	// the experiment-driver values).
	MaxRounds       int `json:"max_rounds,omitempty"`
	CycleCheckAfter int `json:"cycle_check_after,omitempty"`
	// Trajectories opts into per-round statistics: every cell's
	// RoundStats sequence is appended to a trajectory.jsonl sidecar next
	// to the checkpoint (served at GET /sweeps/{id}/trajectories). The
	// main CellResult codec stays small either way. Collection costs an
	// all-pairs BFS per round. Because the cache codec drops PerRound,
	// trajectory jobs bypass the result cache — every cell is computed
	// (locally or on a peer: leases for trajectory specs stream ncgio
	// lease records that carry per-round stats next to each canonical
	// result line) or resumed from this job's own checkpoint, whose
	// sidecar record was already written, so the sidecar is always the
	// complete grid.
	Trajectories bool `json:"trajectories,omitempty"`
}

// maxJobCells caps a single job's grid so one bad request can't pin the
// server; paper scale (15×12×20 = 3600) fits comfortably.
const maxJobCells = 200_000

// Normalize fills defaults in place and lets the spec's graph family
// zero the parameters that do not apply to it (the hash discipline: a
// spec's canonical JSON must not carry meaningless fields).
func (sp *Spec) Normalize() {
	if sp.Dialect == DialectBestResponse {
		sp.Dialect = "" // canonical spelling of the default, hash-compatible with legacy specs
	}
	if sp.Variant == "" {
		sp.Variant = "max"
	}
	if sp.Graph == "" {
		sp.Graph = "tree"
	}
	if f, ok := graphFamilies[sp.Graph]; ok && f.normalize != nil {
		f.normalize(sp)
	}
	if sp.BaseSeed == 0 {
		sp.BaseSeed = 1
	}
	if sp.MaxRounds == 0 {
		sp.MaxRounds = 100
	}
	if sp.CycleCheckAfter == 0 {
		sp.CycleCheckAfter = 25
	}
	// Canonicalize the grids (sorted, deduped) so specs that span the same
	// grid get the same ID regardless of listing order.
	sp.Alphas = dedupFloats(sp.Alphas)
	sp.Ks = dedupInts(sp.Ks)
}

// Validate reports the first problem with a normalized spec. Grid and
// budget constraints are common to every workload; dialect- and
// graph-specific parameter checks are delegated to the registries.
func (sp Spec) Validate() error {
	d, ok := dialects[sp.Dialect]
	if !ok {
		return fmt.Errorf("sweepd: unknown dialect %q (valid: %s)", sp.Dialect, dialectNames())
	}
	switch sp.Variant {
	case "max", "sum":
	default:
		return fmt.Errorf("sweepd: unknown variant %q (valid: max sum)", sp.Variant)
	}
	if sp.N < 2 {
		return fmt.Errorf("sweepd: need n ≥ 2, got %d", sp.N)
	}
	f, ok := graphFamilies[sp.Graph]
	if !ok {
		return fmt.Errorf("sweepd: unknown graph %q (valid: %s)", sp.Graph, graphNames())
	}
	if f.validate != nil {
		if err := f.validate(sp); err != nil {
			return err
		}
	}
	if d.validate != nil {
		if err := d.validate(sp); err != nil {
			return err
		}
	}
	if len(sp.Alphas) == 0 {
		return fmt.Errorf("sweepd: empty alpha grid")
	}
	for _, a := range sp.Alphas {
		if a <= 0 {
			return fmt.Errorf("sweepd: need α > 0, got %g", a)
		}
	}
	if len(sp.Ks) == 0 {
		return fmt.Errorf("sweepd: empty k grid")
	}
	for _, k := range sp.Ks {
		if k < 1 {
			return fmt.Errorf("sweepd: need k ≥ 1, got %d", k)
		}
	}
	if sp.Seeds < 1 {
		return fmt.Errorf("sweepd: need seeds ≥ 1, got %d", sp.Seeds)
	}
	if sp.MaxRounds < 1 || sp.CycleCheckAfter < 1 {
		return fmt.Errorf("sweepd: need max_rounds ≥ 1 and cycle_check_after ≥ 1")
	}
	// Cap each factor before multiplying so a huge seeds value cannot
	// overflow the product past the cap (and then panic grid expansion).
	if len(sp.Alphas) > maxJobCells || len(sp.Ks) > maxJobCells || sp.Seeds > maxJobCells {
		return fmt.Errorf("sweepd: grid dimension exceeds the %d-cell cap", maxJobCells)
	}
	if cells := int64(len(sp.Alphas)) * int64(len(sp.Ks)) * int64(sp.Seeds); cells > maxJobCells {
		return fmt.Errorf("sweepd: grid has %d cells, cap is %d", cells, maxJobCells)
	}
	return nil
}

// ID is the job's content address: jobs with the same normalized spec are
// the same job, which makes submission idempotent and restart-resumable.
func (sp Spec) ID() string {
	return hash(sp)[:16]
}

// KernelHash identifies everything that determines a single cell's result
// EXCEPT the grid: variant, graph family, size, dynamics budget, and base
// seed. Two jobs whose grids overlap share this hash, so the result cache
// keyed by (KernelHash, cell) dedupes common cells across jobs.
func (sp Spec) KernelHash() string {
	kernel := sp
	kernel.Alphas = nil
	kernel.Ks = nil
	kernel.Seeds = 0
	return hash(kernel)
}

func hash(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("sweepd: unmarshalable spec: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Cells expands the grid of a normalized spec in canonical (α-major,
// then k, then seed) order, matching dynamics.Grid.
func (sp Spec) Cells() []dynamics.Cell {
	return dynamics.Grid(sp.Alphas, sp.Ks, sp.Seeds)
}

// NumCells is len(Cells()) without the O(grid) expansion — for callers
// that only need to validate offsets (the lease handler runs once per
// lease, and paper-scale grids are six figures of cells).
func (sp Spec) NumCells() int {
	return len(sp.Alphas) * len(sp.Ks) * sp.Seeds
}

// CellsRange expands only the [start, end) slice of the canonical grid
// by index arithmetic — the lease path serves ranges far smaller than
// the grid, and must not pay O(grid) per lease. Offsets must be
// validated against NumCells by the caller.
func (sp Spec) CellsRange(start, end int) []dynamics.Cell {
	ks, seeds := len(sp.Ks), sp.Seeds
	out := make([]dynamics.Cell, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, dynamics.Cell{
			Alpha: sp.Alphas[i/(ks*seeds)],
			K:     sp.Ks[(i/seeds)%ks],
			Seed:  int64(i % seeds),
		})
	}
	return out
}

// Config builds the dynamics configuration for this job — the spec's
// dialect owns the responder choice; α and k are filled per cell by the
// sweep runner. The spec must have passed Validate.
func (sp Spec) Config() dynamics.Config {
	d, ok := dialects[sp.Dialect]
	if !ok {
		panic("sweepd: Config on unvalidated spec with unknown dialect " + sp.Dialect)
	}
	return d.config(sp)
}

// Factory builds the starting-state factory for this job — the spec's
// graph family owns the generator (the shared constructors in
// internal/dynamics, so daemon results match the figure drivers' cell
// for cell). The spec must have passed Validate.
func (sp Spec) Factory() dynamics.Factory {
	f, ok := graphFamilies[sp.Graph]
	if !ok {
		panic("sweepd: Factory on unvalidated spec with unknown graph " + sp.Graph)
	}
	return f.factory(sp)
}

func dedupFloats(in []float64) []float64 {
	out := slices.Clone(in)
	sort.Float64s(out)
	return slices.Compact(out)
}

func dedupInts(in []int) []int {
	out := slices.Clone(in)
	sort.Ints(out)
	return slices.Compact(out)
}
