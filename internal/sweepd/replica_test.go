package sweepd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweepd/store"
)

// newReplicaRig builds a lifecycle rig with replica storage enabled —
// the receiving side of a replication push.
func newReplicaRig(t *testing.T, cfg Config) (*Manager, *handler, *httptest.Server, string) {
	t.Helper()
	mgr, _, h, srv, dir := newLifecycleRig(t, cfg)
	rs, err := store.OpenReplicaSet(filepath.Join(dir, "replicas"))
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetReplicas(rs)
	return mgr, h, srv, dir
}

// runDoneJob submits a spec on the rig's manager and waits for the
// terminal snapshot.
func runDoneJob(t *testing.T, mgr *Manager, sp Spec) Job {
	t.Helper()
	sp.Normalize()
	job, _, err := mgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	return waitStatus(t, mgr, job.ID, StatusDone)
}

func getRaw(t *testing.T, url string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestReplicationPushAndReplicaServedReads is the tentpole contract at
// the package level: a leader pushes a finished trajectory job to a
// follower; the follower then serves the job snapshot, results, and
// sidecar from its replica — byte-identical to the leader — with a
// working ETag.
func TestReplicationPushAndReplicaServedReads(t *testing.T) {
	leaderMgr, _, _, leaderSrv, _ := newLifecycleRig(t, Config{})
	_, fh, followerSrv, _ := newReplicaRig(t, Config{})

	sp := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2, Trajectories: true}
	job := runDoneJob(t, leaderMgr, sp)

	rp := NewReplicator(ReplicatorOptions{
		Store:  leaderMgr.store,
		Fanout: 1,
		Self:   func() string { return leaderSrv.URL },
		Targets: func() []MemberLoad {
			return []MemberLoad{{URL: followerSrv.URL}}
		},
		Logf: t.Logf,
	})
	if err := rp.Replicate(job); err != nil {
		t.Fatal(err)
	}
	if st := rp.Stats(); st.Pushed != 1 || st.PushFailures != 0 || st.BytesPushed == 0 {
		t.Fatalf("push stats = %+v", st)
	}
	if got := fh.replicasReceived.Load(); got != 1 {
		t.Fatalf("follower received %d replicas, want 1", got)
	}

	// The follower never ran the job but must now answer for it.
	resp, body := getRaw(t, followerSrv.URL+"/sweeps/"+job.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower GET /sweeps/%s = %d: %s", job.ID, resp.StatusCode, body)
	}
	var snap Job
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Replica || snap.Status != StatusDone || snap.Completed != snap.Total {
		t.Fatalf("replica-served snapshot = %+v; want done, complete, Replica=true", snap)
	}

	// Byte-identical results and sidecar, leader vs replica.
	_, leaderResults := getRaw(t, leaderSrv.URL+"/sweeps/"+job.ID+"/results", nil)
	resp, replicaResults := getRaw(t, followerSrv.URL+"/sweeps/"+job.ID+"/results", nil)
	if resp.StatusCode != http.StatusOK || string(replicaResults) != string(leaderResults) {
		t.Fatalf("replica results differ from leader's (status %d, %d vs %d bytes)",
			resp.StatusCode, len(replicaResults), len(leaderResults))
	}
	if got := resp.Header.Get("X-Sweep-Status"); got != string(StatusDone) {
		t.Fatalf("replica results X-Sweep-Status = %q", got)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("replica-served done results carry no ETag")
	}
	_, leaderTraj := getRaw(t, leaderSrv.URL+"/sweeps/"+job.ID+"/trajectories", nil)
	resp, replicaTraj := getRaw(t, followerSrv.URL+"/sweeps/"+job.ID+"/trajectories", nil)
	if resp.StatusCode != http.StatusOK || string(replicaTraj) != string(leaderTraj) {
		t.Fatalf("replica trajectories differ from leader's (status %d)", resp.StatusCode)
	}
	if fh.replicaReads.Load() == 0 {
		t.Fatal("replica read counter never moved")
	}

	// Conditional poll: the immutable validator answers 304, no body —
	// and the leader mints the same ETag (determinism), so a client can
	// revalidate against any holder.
	resp, body = getRaw(t, followerSrv.URL+"/sweeps/"+job.ID+"/results", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("If-None-Match = %d with %d body bytes, want 304 empty", resp.StatusCode, len(body))
	}
	resp, _ = getRaw(t, leaderSrv.URL+"/sweeps/"+job.ID+"/results", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("leader If-None-Match with replica ETag = %d, want 304", resp.StatusCode)
	}
	if fh.notModified.Load() == 0 {
		t.Fatal("not-modified counter never moved")
	}

	// Re-replication at the same generation is idempotent: the push
	// succeeds (200) but the follower stores nothing new.
	if err := rp.Replicate(job); err != nil {
		t.Fatal(err)
	}
	if got := fh.replicasReceived.Load(); got != 1 {
		t.Fatalf("same-generation re-push stored again (received=%d)", got)
	}

	// A holder already counted against the fanout means no push at all.
	rp2 := NewReplicator(ReplicatorOptions{
		Store:   leaderMgr.store,
		Fanout:  1,
		Targets: func() []MemberLoad { return []MemberLoad{{URL: followerSrv.URL}} },
		Holders: func(string) []string { return []string{followerSrv.URL} },
	})
	if err := rp2.Replicate(job); err != nil {
		t.Fatal(err)
	}
	if st := rp2.Stats(); st.Pushed != 0 {
		t.Fatalf("deficit-free replicate still pushed %d", st.Pushed)
	}
}

// TestReceiveReplicaVerification exercises the receive guards: nothing
// unverified lands, and generations are monotonic.
func TestReceiveReplicaVerification(t *testing.T) {
	leaderMgr, _, _, _, _ := newLifecycleRig(t, Config{})
	_, fh, followerSrv, _ := newReplicaRig(t, Config{})

	sp := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	job := runDoneJob(t, leaderMgr, sp)

	rp := NewReplicator(ReplicatorOptions{Store: leaderMgr.store, Generation: func(string) uint64 { return 5 }})
	body, _, err := rp.buildBody(job)
	if err != nil {
		t.Fatal(err)
	}
	post := func(id string, b []byte) int {
		resp, err := http.Post(followerSrv.URL+"/peer/replicas/"+id, "application/x-ndjson", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	mutate := func(f func(m *store.ReplicaManifest)) []byte {
		nl := strings.IndexByte(string(body), '\n')
		var m store.ReplicaManifest
		if err := json.Unmarshal(body[:nl], &m); err != nil {
			t.Fatal(err)
		}
		f(&m)
		head, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return append(append(head, '\n'), body[nl+1:]...)
	}

	// A push under a different job ID must not land under either ID.
	if code := post("00000000000000aa", body); code != http.StatusBadRequest {
		t.Fatalf("mismatched URL id accepted: %d", code)
	}
	// A kernel-hash mismatch is a corrupt or mislabeled push.
	if code := post(job.ID, mutate(func(m *store.ReplicaManifest) { m.Kernel = "0badc0de" })); code != http.StatusBadRequest {
		t.Fatalf("bad kernel accepted: %d", code)
	}
	// Only done jobs replicate.
	if code := post(job.ID, mutate(func(m *store.ReplicaManifest) { m.Status = "canceled" })); code != http.StatusBadRequest {
		t.Fatalf("non-done status accepted: %d", code)
	}
	// A truncated checkpoint (one line short) must be rejected.
	nl := strings.IndexByte(string(body), '\n')
	tail := body[nl+1:]
	lastLine := strings.LastIndexByte(strings.TrimRight(string(tail), "\n"), '\n')
	short := append(append([]byte{}, body[:nl+1]...), tail[:lastLine+1]...)
	if code := post(job.ID, short); code != http.StatusBadRequest {
		t.Fatalf("short checkpoint accepted: %d", code)
	}
	if got := fh.replicasReceived.Load(); got != 0 {
		t.Fatalf("%d rejected pushes were counted as received", got)
	}

	// Generation guard: gen 5 lands; a deposed leader's gen 4 answers
	// 409 and changes nothing; gen 5 again is idempotent.
	if code := post(job.ID, body); code != http.StatusOK {
		t.Fatalf("valid push = %d", code)
	}
	if code := post(job.ID, mutate(func(m *store.ReplicaManifest) { m.Generation = 4 })); code != http.StatusConflict {
		t.Fatalf("lower-generation push = %d, want 409", code)
	}
	if code := post(job.ID, body); code != http.StatusOK {
		t.Fatalf("same-generation re-push = %d, want 200", code)
	}
	if got := fh.replicasReceived.Load(); got != 1 {
		t.Fatalf("received counter = %d, want exactly 1 store", got)
	}
}

// fakeReplicaMesh is a Membership + ReplicaTable + Self stub for the
// redirect path.
type fakeReplicaMesh struct {
	self    string
	holders map[string][]string
}

func (f *fakeReplicaMesh) Hello(string)                    {}
func (f *fakeReplicaMesh) Members() []MemberInfo           { return nil }
func (f *fakeReplicaMesh) ClusterStats() ClusterStats      { return ClusterStats{} }
func (f *fakeReplicaMesh) Self() string                    { return f.self }
func (f *fakeReplicaMesh) ReplicaHolders(id string) []string { return f.holders[id] }

// TestReadRedirectOneHop: a daemon holding neither primary nor replica
// answers 307 toward a holder, and the forwarded hop marker prevents a
// second bounce.
func TestReadRedirectOneHop(t *testing.T) {
	id := "00000000000000ab"
	mesh := &fakeReplicaMesh{
		self:    "http://self.invalid",
		holders: map[string][]string{id: {"http://holder.invalid"}},
	}
	_, _, _, srv, _ := newLifecycleRig(t, Config{Cluster: mesh})

	resp, _ := getRaw(t, srv.URL+"/sweeps/"+id+"/results", nil)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("unknown-job read = %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, "http://holder.invalid/sweeps/"+id+"/results") || !strings.Contains(loc, "hop=1") {
		t.Fatalf("redirect Location = %q", loc)
	}

	// The hop marker must stop the chain dead: 404, not another 307.
	resp, _ = getRaw(t, srv.URL+"/sweeps/"+id+"/results?hop=1", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("hop=1 read = %d, want 404", resp.StatusCode)
	}

	// No holder and no lease: nothing to point at, plain 404.
	resp, _ = getRaw(t, srv.URL+"/sweeps/00000000000000cd/results", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("holderless read = %d, want 404", resp.StatusCode)
	}
}
