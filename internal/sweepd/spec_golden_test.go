package sweepd

import "testing"

// TestSpecGoldenHashes pins ID()/KernelHash() values computed before the
// dialect refactor for a table of representative legacy specs. A job's ID
// names its directory in the store and its KernelHash keys the result
// cache, so any drift here silently orphans existing job stores and cache
// spills. New spec fields must follow the omitempty discipline (zero value
// for every legacy spec) so these hashes never move.
func TestSpecGoldenHashes(t *testing.T) {
	cases := []struct {
		name   string
		spec   Spec
		id     string
		kernel string
	}{
		{
			name:   "defaults-tree-max",
			spec:   Spec{N: 12, Alphas: []float64{0.5, 2}, Ks: []int{2, 1000}, Seeds: 2},
			id:     "b91c61a64e3690ac",
			kernel: "542927bb6a79806e0f47d2c5350e2fee8cd85f73c35700166b271a69a6d76328",
		},
		{
			name:   "sum-gnp",
			spec:   Spec{Variant: "sum", Graph: "gnp", N: 30, P: 0.2, Alphas: []float64{1, 2}, Ks: []int{3}, Seeds: 3},
			id:     "fc6541758247d955",
			kernel: "ed2fa39e3a385adff7b08faf99455d706f736717e4ebccaa18314b9d8863d486",
		},
		{
			name: "trajectories-custom-budget",
			spec: Spec{N: 8, Alphas: []float64{0.5, 1, 2}, Ks: []int{1, 2}, Seeds: 4,
				BaseSeed: 7, MaxRounds: 50, CycleCheckAfter: 10, Trajectories: true},
			id:     "acda33a7539334fe",
			kernel: "16da4bb73d6f5c647172c2fa0e96e97539acccaf8054964746f8644a9f0cde82",
		},
		{
			name:   "max-gnp-wide-grid",
			spec:   Spec{Graph: "gnp", N: 64, P: 0.1, Alphas: []float64{0.25, 0.5, 1, 2, 4}, Ks: []int{1, 2, 3}, Seeds: 5},
			id:     "c4e6f93a29a40ecc",
			kernel: "7fcc1a0c85b68c4c4900a64e7b0bf4525d66444e30c769440ceae3d20f3671be",
		},
		{
			name: "sum-tree-long-budget",
			spec: Spec{Variant: "sum", N: 40, Alphas: []float64{3}, Ks: []int{2}, Seeds: 10,
				MaxRounds: 400, CycleCheckAfter: 100},
			id:     "3d9d1a6d3b7269cc",
			kernel: "42e59947a4966a5527484032553d53eaae2755321a6617a65479cf13428b2c34",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := c.spec
			sp.Normalize()
			if err := sp.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := sp.ID(); got != c.id {
				t.Errorf("ID() = %q, pinned pre-refactor value %q", got, c.id)
			}
			if got := sp.KernelHash(); got != c.kernel {
				t.Errorf("KernelHash() = %q, pinned pre-refactor value %q", got, c.kernel)
			}
		})
	}

	// The explicit default dialect must hash identically to the legacy
	// spelling: "best-response" normalizes to the empty string so legacy
	// job stores and cache spills stay addressable.
	explicit := cases[0].spec
	explicit.Dialect = "best-response"
	explicit.Normalize()
	if got := explicit.ID(); got != cases[0].id {
		t.Errorf("explicit best-response dialect: ID() = %q, want legacy %q", got, cases[0].id)
	}
	if got := explicit.KernelHash(); got != cases[0].kernel {
		t.Errorf("explicit best-response dialect: KernelHash() = %q, want legacy %q", got, cases[0].kernel)
	}
}
