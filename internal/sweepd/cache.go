package sweepd

import (
	"bytes"
	"container/list"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/dynamics"
	"repro/internal/ncgio"
)

// cacheKey addresses one cell result by content: the spec kernel hash
// (everything that determines the result except the grid) plus the cell
// coordinates. Jobs with overlapping grids and identical kernels hit the
// same entries.
type cacheKey struct {
	Kernel string
	Cell   dynamics.Cell
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// DiskHits counts the subset of Hits served by promoting a spill
	// file into the memory tier (always 0 for a memory-only cache).
	DiskHits uint64 `json:"disk_hits"`
	// Coalesced counts computations avoided by in-flight dedup: a sweep
	// that found another sweep already computing the same (kernel, cell)
	// joined that flight instead of recomputing.
	Coalesced uint64 `json:"coalesced"`
}

// Cache is a bounded, concurrency-safe, content-addressed result cache.
// Values are the canonical JSONL encodings of cell results (as produced
// by ncgio.MarshalCellResult), so a hit can be appended to a checkpoint
// verbatim and still be byte-identical to a recomputation. Eviction is
// LRU.
//
// A cache built with NewDiskCache additionally spills every entry to a
// content-addressed file (<dir>/<kernel>/<cell>.jsonl): the memory LRU
// bounds the hot tier, while the spill tier persists across restarts, so
// a daemon reopened over the same directory keeps its hit rate instead of
// lazily re-warming from whichever checkpoints it happens to re-read.
// Entries evicted from memory remain on disk and are promoted back on
// their next Get.
type Cache struct {
	mu        sync.Mutex
	max       int
	dir       string // spill directory; "" = memory-only
	entries   map[cacheKey]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	diskHits  uint64
	coalesced uint64
	// flights tracks in-progress computations for singleflight-style
	// coalescing across concurrent sweeps (see dedupExecutor): the first
	// sweep to reach a (kernel, cell) leads its flight, later arrivals
	// wait on it instead of recomputing.
	flights map[cacheKey]*flight
}

// flight is one in-progress (kernel, cell) computation. The leader fills
// res/ok and closes done exactly once (land); waiters read res only after
// done is closed. ok=false means the leader was canceled before finishing
// — joiners must compute the cell themselves.
type flight struct {
	done chan struct{}
	res  dynamics.Result
	ok   bool
}

type cacheEntry struct {
	key  cacheKey
	line []byte
}

// NewCache builds a memory-only cache holding at most max entries
// (max ≤ 0 disables caching: Get always misses, Put is a no-op).
func NewCache(max int) *Cache {
	return &Cache{max: max, entries: make(map[cacheKey]*list.Element), order: list.New()}
}

// NewDiskCache builds a cache whose entries spill to files under dir.
// The max bound applies to the in-memory tier only; spill files persist
// until the store is garbage-collected (see ROADMAP: job GC). max ≤ 0
// still disables the cache entirely, disk tier included.
func NewDiskCache(max int, dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: cache dir: %w", err)
	}
	c := NewCache(max)
	c.dir = dir
	return c, nil
}

// Get returns the cached line for (kernel, cell), if present in either
// tier. A disk-tier hit promotes the entry into the memory LRU.
func (c *Cache) Get(kernel string, cell dynamics.Cell) ([]byte, bool) {
	if c == nil || c.max <= 0 {
		return nil, false
	}
	key := cacheKey{Kernel: kernel, Cell: cell}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		line := el.Value.(*cacheEntry).line
		c.mu.Unlock()
		return line, true
	}
	c.mu.Unlock()
	if line, ok := c.loadSpill(kernel, cell); ok {
		c.put(key, line, false) // promote; already on disk
		c.mu.Lock()
		c.hits++
		c.diskHits++
		c.mu.Unlock()
		return line, true
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the canonical line for (kernel, cell), evicting the least
// recently used memory entry when full and spilling to disk when the
// cache is disk-backed. The line is not copied; callers must not mutate
// it afterwards.
func (c *Cache) Put(kernel string, cell dynamics.Cell, line []byte) {
	if c == nil || c.max <= 0 {
		return
	}
	c.put(cacheKey{Kernel: kernel, Cell: cell}, line, true)
}

// PutMemory stores the line in the memory tier only, leaving the disk
// spill tier untouched. Lease service uses this: a leased kernel may
// belong to no local job, so spill files written for it would never be
// reclaimed by job GC (RemoveKernel only runs on eviction) — the memory
// LRU bounds follower warmth instead.
func (c *Cache) PutMemory(kernel string, cell dynamics.Cell, line []byte) {
	if c == nil || c.max <= 0 {
		return
	}
	c.put(cacheKey{Kernel: kernel, Cell: cell}, line, false)
}

func (c *Cache) put(key cacheKey, line []byte, spill bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Deterministic per-cell seeding means an update carries the same
		// bytes as the original; no need to re-spill.
		el.Value.(*cacheEntry).line = line
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, line: line})
	for len(c.entries) > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()
	if spill && c.dir != "" {
		c.spillLine(key.Kernel, key.Cell, line)
	}
}

// enabled reports whether the cache participates at all (a nil cache or
// max ≤ 0 disables both tiers and in-flight dedup).
func (c *Cache) enabled() bool { return c != nil && c.max > 0 }

// lead registers the caller as the computer of key if nobody else is
// in flight. leader=true: the caller owns the flight and must land it
// (with a result, or abandoned) exactly once. leader=false: the caller
// may wait on the returned flight's done channel instead of computing.
func (c *Cache) lead(key cacheKey) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.flights[key]; ok {
		c.coalesced++
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	if c.flights == nil {
		c.flights = make(map[cacheKey]*flight)
	}
	c.flights[key] = fl
	return fl, true
}

// land completes a flight the caller leads: ok=true publishes res to all
// waiters, ok=false abandons it (waiters recompute). The registry slot is
// freed either way, so a later sweep starts a fresh flight.
func (c *Cache) land(key cacheKey, fl *flight, res dynamics.Result, ok bool) {
	c.mu.Lock()
	if c.flights[key] == fl {
		delete(c.flights, key)
	}
	c.mu.Unlock()
	fl.res, fl.ok = res, ok
	close(fl.done)
}

// RemoveKernel drops every entry for kernel from both tiers and deletes
// the kernel's spill directory, returning the number of spill-file
// bytes reclaimed from disk. Job GC calls this when the last retained
// job using a kernel is evicted; determinism makes the removal safe —
// a future job with the same kernel simply recomputes.
func (c *Cache) RemoveKernel(kernel string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		ce := el.Value.(*cacheEntry)
		if ce.key.Kernel == kernel {
			c.order.Remove(el)
			delete(c.entries, ce.key)
		}
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return 0
	}
	kdir := filepath.Join(dir, kernel)
	entries, err := os.ReadDir(kdir)
	if err != nil {
		return 0
	}
	var reclaimed int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			reclaimed += info.Size()
		}
	}
	if err := os.RemoveAll(kdir); err != nil {
		return 0
	}
	return reclaimed
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		DiskHits:  c.diskHits,
		Coalesced: c.coalesced,
	}
}

// spillPath addresses one entry's spill file. The α coordinate is encoded
// via its exact float64 bits so distinct alphas can never collide in a
// filename (and the kernel hash is already hex, safe as a directory).
func (c *Cache) spillPath(kernel string, cell dynamics.Cell) string {
	name := fmt.Sprintf("a%016x-k%d-s%d.jsonl", math.Float64bits(cell.Alpha), cell.K, cell.Seed)
	return filepath.Join(c.dir, kernel, name)
}

// spillLine persists one entry via temp file + rename, so readers (and a
// daemon killed mid-write) only ever see a complete file. Concurrent
// spills of the same cell are benign: determinism means both writers
// carry identical bytes, and rename is atomic. Spilling is best-effort —
// on any error the memory tier still holds the line.
func (c *Cache) spillLine(kernel string, cell dynamics.Cell, line []byte) {
	path := c.spillPath(kernel, cell)
	if _, err := os.Stat(path); err == nil {
		return // already spilled (e.g. a checkpoint re-read on resume)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(append(make([]byte, 0, len(line)+1), line...), '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
	}
}

// loadSpill reads and validates one spill file. The stored form is the
// canonical line plus a trailing newline (each spill file is itself a
// valid one-record checkpoint); spill writes are atomic, so a file that
// fails validation is external corruption and is deleted rather than
// served.
func (c *Cache) loadSpill(kernel string, cell dynamics.Cell) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.spillPath(kernel, cell)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	line := bytes.TrimSuffix(data, []byte("\n"))
	if rec, err := ncgio.UnmarshalCellResult(line); err != nil || rec.Cell != cell {
		os.Remove(path) //nolint:errcheck
		return nil, false
	}
	return line, true
}
