package sweepd

import (
	"container/list"
	"sync"

	"repro/internal/dynamics"
)

// cacheKey addresses one cell result by content: the spec kernel hash
// (everything that determines the result except the grid) plus the cell
// coordinates. Jobs with overlapping grids and identical kernels hit the
// same entries.
type cacheKey struct {
	Kernel string
	Cell   dynamics.Cell
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Cache is a bounded, concurrency-safe, content-addressed result cache.
// Values are the canonical JSONL encodings of cell results (as produced
// by ncgio.MarshalCellResult), so a hit can be appended to a checkpoint
// verbatim and still be byte-identical to a recomputation. Eviction is
// LRU.
type Cache struct {
	mu        sync.Mutex
	max       int
	entries   map[cacheKey]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  cacheKey
	line []byte
}

// NewCache builds a cache holding at most max entries (max ≤ 0 disables
// caching: Get always misses, Put is a no-op).
func NewCache(max int) *Cache {
	return &Cache{max: max, entries: make(map[cacheKey]*list.Element), order: list.New()}
}

// Get returns the cached line for (kernel, cell), if present.
func (c *Cache) Get(kernel string, cell dynamics.Cell) ([]byte, bool) {
	if c == nil || c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{Kernel: kernel, Cell: cell}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).line, true
}

// Put stores the canonical line for (kernel, cell), evicting the least
// recently used entry when full. The line is not copied; callers must not
// mutate it afterwards.
func (c *Cache) Put(kernel string, cell dynamics.Cell, line []byte) {
	if c == nil || c.max <= 0 {
		return
	}
	key := cacheKey{Kernel: kernel, Cell: cell}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).line = line
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, line: line})
	for len(c.entries) > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
