package sweepd

import (
	"testing"

	"repro/internal/dynamics"
)

func testSpec() Spec {
	return Spec{
		N:      12,
		Alphas: []float64{0.5, 2},
		Ks:     []int{2, 1000},
		Seeds:  2,
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	sp := testSpec()
	sp.Normalize()
	if sp.Variant != "max" || sp.Graph != "tree" || sp.BaseSeed != 1 ||
		sp.MaxRounds != 100 || sp.CycleCheckAfter != 25 {
		t.Fatalf("defaults not applied: %+v", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecIDOrderInsensitive(t *testing.T) {
	a := testSpec()
	b := testSpec()
	b.Alphas = []float64{2, 0.5, 2}
	b.Ks = []int{1000, 2}
	a.Normalize()
	b.Normalize()
	if a.ID() != b.ID() {
		t.Fatalf("same grid, different IDs: %s vs %s", a.ID(), b.ID())
	}
}

func TestSpecKernelHashIgnoresGrid(t *testing.T) {
	a := testSpec()
	b := testSpec()
	b.Alphas = []float64{7}
	b.Ks = []int{3}
	b.Seeds = 9
	a.Normalize()
	b.Normalize()
	if a.ID() == b.ID() {
		t.Fatal("different grids must be different jobs")
	}
	if a.KernelHash() != b.KernelHash() {
		t.Fatal("kernel hash must not depend on the grid")
	}
	c := testSpec()
	c.N = 13
	c.Normalize()
	if a.KernelHash() == c.KernelHash() {
		t.Fatal("kernel hash must depend on n")
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Variant = "min" },
		func(s *Spec) { s.Graph = "torus" },
		func(s *Spec) { s.Graph = "gnp"; s.P = 0 },
		func(s *Spec) { s.Graph = "gnp"; s.P = 0.01 }, // below ln(n)/n connectivity threshold
		func(s *Spec) { s.N = 1 },
		func(s *Spec) { s.Alphas = nil },
		func(s *Spec) { s.Alphas = []float64{-1} },
		func(s *Spec) { s.Ks = nil },
		func(s *Spec) { s.Ks = []int{0} },
		func(s *Spec) { s.Seeds = 0 },
		func(s *Spec) { s.Alphas = make([]float64, 500); s.Ks = make([]int, 500); s.Seeds = 10 },
		// Overflow probe: seeds huge enough to wrap the naive int product
		// past the cap must still be rejected (regression: a spec like
		// this used to pass Validate and panic grid expansion).
		func(s *Spec) { s.Seeds = 1 << 62 },
	}
	for i, mutate := range bad {
		sp := testSpec()
		sp.Normalize()
		mutate(&sp)
		fixGrid(&sp)
		if err := sp.Validate(); err == nil {
			t.Fatalf("case %d: invalid spec accepted: %+v", i, sp)
		}
	}
}

// fixGrid backfills positive values for the oversized-grid case so only
// the intended defect trips validation.
func fixGrid(sp *Spec) {
	for i := range sp.Alphas {
		if sp.Alphas[i] == 0 {
			sp.Alphas[i] = float64(i + 1)
		}
	}
	for i := range sp.Ks {
		if sp.Ks[i] == 0 && len(sp.Ks) > 1 {
			sp.Ks[i] = i + 1
		}
	}
}

func TestSpecCellsCanonical(t *testing.T) {
	sp := testSpec()
	sp.Normalize()
	cells := sp.Cells()
	want := dynamics.Grid([]float64{0.5, 2}, []int{2, 1000}, 2)
	if len(cells) != len(want) {
		t.Fatalf("cells = %d, want %d", len(cells), len(want))
	}
	for i := range cells {
		if cells[i] != want[i] {
			t.Fatalf("cell %d = %+v, want %+v", i, cells[i], want[i])
		}
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	k1 := dynamics.Cell{Alpha: 1, K: 1, Seed: 0}
	k2 := dynamics.Cell{Alpha: 2, K: 1, Seed: 0}
	k3 := dynamics.Cell{Alpha: 3, K: 1, Seed: 0}
	c.Put("h", k1, []byte("one"))
	c.Put("h", k2, []byte("two"))
	if _, ok := c.Get("h", k1); !ok {
		t.Fatal("k1 missing")
	}
	c.Put("h", k3, []byte("three")) // evicts k2 (least recently used)
	if _, ok := c.Get("h", k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if line, ok := c.Get("h", k1); !ok || string(line) != "one" {
		t.Fatalf("k1 = %q, %v", line, ok)
	}
	if _, ok := c.Get("other", k1); ok {
		t.Fatal("kernel hash must partition the cache")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	cell := dynamics.Cell{Alpha: 1, K: 1}
	c.Put("h", cell, []byte("x"))
	if _, ok := c.Get("h", cell); ok {
		t.Fatal("disabled cache returned a hit")
	}
	var nilCache *Cache
	nilCache.Put("h", cell, []byte("x"))
	if _, ok := nilCache.Get("h", cell); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestStoreCreateJobIdempotent(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec()
	sp.Normalize()
	id1, created1, err := st.CreateJob(sp)
	if err != nil || !created1 {
		t.Fatalf("first create: %v, created=%v", err, created1)
	}
	id2, created2, err := st.CreateJob(sp)
	if err != nil || created2 || id1 != id2 {
		t.Fatalf("second create: %v, created=%v, ids %s/%s", err, created2, id1, id2)
	}
	back, err := st.LoadSpec(id1)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != sp.ID() {
		t.Fatal("spec did not round-trip through the store")
	}
	ids, err := st.Jobs()
	if err != nil || len(ids) != 1 || ids[0] != id1 {
		t.Fatalf("jobs = %v, %v", ids, err)
	}
}
