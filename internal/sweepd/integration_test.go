package sweepd

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dynamics"
)

// bigSpec is sized so a sweep takes long enough to interrupt reliably but
// still finishes fast when run to completion.
func bigSpec() Spec {
	sp := Spec{
		N:      24,
		Alphas: []float64{0.3, 0.5, 1, 2, 5},
		Ks:     []int{2, 3, 1000},
		Seeds:  4,
	}
	sp.Normalize()
	return sp
}

func waitStatus(t *testing.T, m *Manager, id string, want JobStatus) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if job.Status == want {
			return job
		}
		if job.Status == StatusFailed {
			t.Fatalf("job failed: %s", job.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	job, _ := m.Get(id)
	t.Fatalf("timed out waiting for %s; job = %+v", want, job)
	return Job{}
}

// TestKilledJobResumesByteIdentical is the subsystem's core guarantee: a
// job killed mid-run and restarted by a fresh daemon over the same store
// finishes with a results file byte-identical to an uninterrupted run's.
func TestKilledJobResumesByteIdentical(t *testing.T) {
	sp := bigSpec()

	// Reference: uninterrupted run in its own store.
	refStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refMgr := NewManager(refStore, NewCache(1024), 4)
	refJob, _, err := refMgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, refMgr, refJob.ID, StatusDone)
	refMgr.Close()
	refBytes, err := os.ReadFile(refStore.ResultsPath(refJob.ID))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: kill the daemon once a few cells are checkpointed.
	dir := t.TempDir()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := NewManager(store1, NewCache(1024), 2)
	job1, _, err := mgr1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if job, _ := mgr1.Get(job1.ID); job.Completed >= 3 || job.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	mgr1.Close() // cancels the job and flushes the checkpoint

	partial, err := os.ReadFile(store1.ResultsPath(job1.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 {
		t.Fatal("no checkpoint written before the kill")
	}
	if len(partial) >= len(refBytes) {
		t.Log("job finished before the kill; resume path not exercised this run")
	}
	if !bytes.HasPrefix(refBytes, partial) {
		t.Fatal("checkpoint is not a clean prefix of the canonical results")
	}

	// Restart: a fresh manager over the same store resumes automatically.
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store2, NewCache(1024), 4)
	if err := mgr2.Resume(); err != nil {
		t.Fatal(err)
	}
	job2, ok := mgr2.Get(job1.ID)
	if !ok {
		t.Fatal("restarted manager does not know the job")
	}
	done := waitStatus(t, mgr2, job2.ID, StatusDone)
	mgr2.Close()
	if done.Completed != done.Total {
		t.Fatalf("completed %d of %d cells", done.Completed, done.Total)
	}

	resumed, err := os.ReadFile(store2.ResultsPath(job1.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, refBytes) {
		t.Fatalf("resumed results differ from uninterrupted run: %d vs %d bytes",
			len(resumed), len(refBytes))
	}
}

// TestWarmRestartServesFromDiskCache upgrades restart determinism to
// restart warmth: a daemon killed mid-sweep leaves spill files behind,
// and a restarted daemon serves those cells from the disk cache — zero
// recomputation — even in the worst case where the checkpoint itself is
// gone, while the final results stay byte-identical to an uninterrupted
// run.
func TestWarmRestartServesFromDiskCache(t *testing.T) {
	sp := bigSpec()

	// Reference: uninterrupted run in its own store, no cache involved.
	refStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refMgr := NewManager(refStore, nil, 4)
	refJob, _, err := refMgr.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, refMgr, refJob.ID, StatusDone)
	refMgr.Close()
	refBytes, err := os.ReadFile(refStore.ResultsPath(refJob.ID))
	if err != nil {
		t.Fatal(err)
	}

	// First daemon: disk-backed cache, killed once a few cells landed.
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewDiskCache(4096, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := NewManager(store1, c1, 2)
	job1, _, err := mgr1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if job, _ := mgr1.Get(job1.ID); job.Completed >= 5 || job.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	mgr1.Close()

	spills, err := os.ReadDir(filepath.Join(cacheDir, sp.KernelHash()))
	if err != nil {
		t.Fatal(err)
	}
	spilled := len(spills)
	if spilled == 0 {
		t.Fatal("no cells spilled before the kill")
	}

	// Worst-case restart: the checkpoint is lost entirely (equivalently, a
	// brand-new job with the same cells arrives) — only the spill tier
	// remains to keep the hit rate.
	if err := os.Remove(store1.ResultsPath(job1.ID)); err != nil {
		t.Fatal(err)
	}
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewDiskCache(4096, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store2, c2, 4)
	if err := mgr2.Resume(); err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, mgr2, job1.ID, StatusDone)
	mgr2.Close()

	// Every spilled cell must be cache-served — i.e. recomputed cells are
	// exactly Total - spilled, none of the spilled set.
	if done.CacheHits != spilled {
		t.Fatalf("cache hits = %d, want %d (every spilled cell, no recomputation)",
			done.CacheHits, spilled)
	}
	cs := c2.Stats()
	if cs.Hits == 0 || cs.DiskHits != uint64(spilled) {
		t.Fatalf("warm cache stats = %+v, want %d disk hits", cs, spilled)
	}

	resumed, err := os.ReadFile(store2.ResultsPath(job1.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, refBytes) {
		t.Fatalf("warm-restart results differ from uninterrupted run: %d vs %d bytes",
			len(resumed), len(refBytes))
	}
}

// TestCacheDedupesAcrossJobs submits two jobs with overlapping grids and
// checks the second reuses the shared cells from the cache — and that the
// reused cells land in its checkpoint byte-identically.
func TestCacheDedupesAcrossJobs(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, NewCache(4096), 4)
	defer mgr.Close()

	a := Spec{N: 14, Alphas: []float64{0.5, 1}, Ks: []int{2, 1000}, Seeds: 3}
	a.Normalize()
	jobA, _, err := mgr.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, mgr, jobA.ID, StatusDone)

	b := Spec{N: 14, Alphas: []float64{1, 2}, Ks: []int{2, 1000}, Seeds: 3}
	b.Normalize()
	jobB, _, err := mgr.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	doneB := waitStatus(t, mgr, jobB.ID, StatusDone)

	overlap := 1 * 2 * 3 // α=1 × two ks × three seeds
	if doneB.CacheHits != overlap {
		t.Fatalf("cache hits = %d, want %d", doneB.CacheHits, overlap)
	}

	// The shared α=1 lines must be byte-identical across both files.
	resA, err := store.LoadResults(jobA.ID)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := store.LoadResults(jobB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(resB) != len(b.Cells()) {
		t.Fatalf("job B has %d results, want %d", len(resB), len(b.Cells()))
	}
	fpA := map[dynamics.Cell]uint64{}
	for _, r := range resA {
		if r.Cell.Alpha == 1 {
			fpA[r.Cell] = r.Result.Final.Fingerprint()
		}
	}
	shared := 0
	for _, r := range resB {
		if r.Cell.Alpha != 1 {
			continue
		}
		want, ok := fpA[r.Cell]
		if !ok {
			t.Fatalf("cell %+v missing from job A", r.Cell)
		}
		if r.Result.Final.Fingerprint() != want {
			t.Fatalf("cell %+v differs across jobs", r.Cell)
		}
		shared++
	}
	if shared != overlap {
		t.Fatalf("found %d shared cells, want %d", shared, overlap)
	}
}

func TestSubmitIdempotent(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 2)
	defer mgr.Close()

	sp := Spec{N: 10, Alphas: []float64{1}, Ks: []int{2}, Seeds: 2}
	job1, created1, err := mgr.Submit(sp)
	if err != nil || !created1 {
		t.Fatalf("first submit: %v, created=%v", err, created1)
	}
	waitStatus(t, mgr, job1.ID, StatusDone)
	job2, created2, err := mgr.Submit(sp)
	if err != nil || created2 {
		t.Fatalf("resubmit: %v, created=%v", err, created2)
	}
	if job2.ID != job1.ID || job2.Status != StatusDone {
		t.Fatalf("resubmit returned %+v", job2)
	}
}

func TestCancelJob(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, nil, 1)
	defer mgr.Close()

	job, _, err := mgr.Submit(bigSpec())
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := mgr.Cancel(job.ID)
	if !ok {
		t.Fatal("cancel reported unknown job")
	}
	if snap.Status != StatusRunning {
		t.Fatalf("cancel snapshot status = %s, want running", snap.Status)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := mgr.Get(job.ID)
		if j.Status == StatusCanceled || j.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", j.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := mgr.Cancel("没有这个"); ok {
		t.Fatal("cancel invented a job")
	}

	// Resubmitting a canceled job restarts it from its checkpoint.
	restarted, created, err := mgr.Submit(bigSpec())
	if err != nil {
		t.Fatal(err)
	}
	if created || restarted.ID != job.ID {
		t.Fatalf("restart: created=%v id=%s (want existing %s)", created, restarted.ID, job.ID)
	}
	done := waitStatus(t, mgr, job.ID, StatusDone)
	if done.Completed != done.Total {
		t.Fatalf("restarted job completed %d of %d", done.Completed, done.Total)
	}
}
