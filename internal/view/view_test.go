package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestExtractPathCenter(t *testing.T) {
	g := gen.Path(10)
	v := Extract(g, 5, 2)
	if v.Size() != 5 {
		t.Fatalf("view size=%d, want 5", v.Size())
	}
	if v.Orig[v.Center] != 5 {
		t.Fatalf("center maps to %d, want 5", v.Orig[v.Center])
	}
	if v.Dist[v.Center] != 0 {
		t.Fatal("center distance not 0")
	}
	front := v.Frontier()
	if len(front) != 2 {
		t.Fatalf("frontier size=%d, want 2", len(front))
	}
	seen := map[int]bool{}
	for _, f := range front {
		seen[v.Orig[f]] = true
	}
	if !seen[3] || !seen[7] {
		t.Fatalf("frontier globals wrong: %v", seen)
	}
}

func TestExtractRadiusZero(t *testing.T) {
	g := gen.Complete(5)
	v := Extract(g, 2, 0)
	if v.Size() != 1 || v.Orig[0] != 2 {
		t.Fatalf("radius-0 view: size=%d orig=%v", v.Size(), v.Orig)
	}
	if len(v.Frontier()) != 1 {
		t.Fatal("radius-0 frontier should be the center itself")
	}
}

func TestExtractWholeGraph(t *testing.T) {
	g := gen.Cycle(8)
	v := Extract(g, 0, 100)
	if !v.SeesAll(8) {
		t.Fatal("large-k view does not cover the graph")
	}
	if len(v.Frontier()) != 0 {
		t.Fatalf("frontier should be empty when k exceeds the eccentricity, got %v", v.Frontier())
	}
	if v.H.M() != g.M() {
		t.Fatalf("full view m=%d, want %d", v.H.M(), g.M())
	}
}

func TestExtractNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Extract with negative k did not panic")
		}
	}()
	Extract(gen.Path(3), 0, -1)
}

func TestViewInducedEdges(t *testing.T) {
	// Cycle of 6, view radius 2 around 0: vertices {0,1,2,4,5} wait —
	// ball(0,2) = {0,1,5,2,4}; induced edges: (0,1),(1,2),(0,5),(5,4).
	// Edge (2,4)? d(2,4)=2 in cycle6 — not an edge. Edges (2,3),(3,4) are
	// outside since 3 is not in the ball.
	g := gen.Cycle(6)
	v := Extract(g, 0, 2)
	if v.Size() != 5 {
		t.Fatalf("size=%d, want 5", v.Size())
	}
	if v.H.M() != 4 {
		t.Fatalf("induced edges=%d, want 4", v.H.M())
	}
}

func TestStrategyTranslation(t *testing.T) {
	g := gen.Path(10)
	v := Extract(g, 5, 2)
	local := v.GlobalStrategyToLocal([]int{4, 7, 9}) // 9 outside the view
	if len(local) != 2 {
		t.Fatalf("local strategy=%v, want 2 entries", local)
	}
	back := v.LocalStrategyToGlobal(local)
	seen := map[int]bool{}
	for _, x := range back {
		seen[x] = true
	}
	if !seen[4] || !seen[7] || len(back) != 2 {
		t.Fatalf("round trip=%v", back)
	}
}

func TestQuickViewDistancesAgree(t *testing.T) {
	f := func(seed int64, sz, kRaw, uRaw uint8) bool {
		n := 4 + int(sz%25)
		k := 1 + int(kRaw%4)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(n, rng)
		// densify a little
		for i := 0; i < n/3; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		u := int(uRaw) % n
		v := Extract(g, u, k)
		globalDist := g.Distances(u)
		for i, orig := range v.Orig {
			if v.Dist[i] != globalDist[orig] {
				return false
			}
			// Distances inside the induced subgraph must also agree.
			if v.H.Dist(v.Center, i) != globalDist[orig] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFrontierExactlyK(t *testing.T) {
	f := func(seed int64, sz, kRaw, uRaw uint8) bool {
		n := 4 + int(sz%25)
		k := 1 + int(kRaw%4)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(n, rng)
		u := int(uRaw) % n
		v := Extract(g, u, k)
		front := map[int]bool{}
		for _, f := range v.Frontier() {
			front[f] = true
		}
		for i := range v.Orig {
			if (v.Dist[i] == k) != front[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickViewIsSubgraph(t *testing.T) {
	f := func(seed int64, sz, kRaw, uRaw uint8) bool {
		n := 4 + int(sz%20)
		k := int(kRaw % 5)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(n, rng)
		for i := 0; i < n/2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		u := int(uRaw) % n
		v := Extract(g, u, k)
		for _, e := range v.H.Edges() {
			if !g.HasEdge(v.Orig[e.U], v.Orig[e.V]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
