package view

import (
	"sync"

	"repro/internal/graph"
)

// unreach32 is the in-workspace sentinel for "not reached"; it is
// converted to graph.Unreachable at the accessor boundary so callers see
// the same arithmetic as the full-slice BFS kernels.
const unreach32 = int32(1) << 30

// Workspace is the mutable, reusable form of a player's view, built for
// evaluating many candidate deviations of one player against one
// extraction. Extract fills it with the radius-K ball around the center
// (local ids in BFS order — identical to View's) plus a flat local CSR of
// the ball with every center-incident arc removed; the center's edge set
// is then toggled apply/undo-style:
//
//	ws.ResetBase(edges)   // full O(ball) recompute: center adjacent to edges
//	mark := ws.Mark()
//	ws.AddEdgeRelax(w)    // decrease-only re-relax from the new endpoint
//	... read SumAll/EccAll/InnerSum ...
//	ws.Undo(mark)         // O(touched) rollback
//
// Because every candidate edge is incident to the center, a deviation can
// only shorten distances through its own first hop; AddEdgeRelax re-relaxes
// exactly the improved region and journals every change, so evaluating a
// candidate costs O(vertices whose distance actually changed) instead of a
// fresh BFS plus clone of the whole view.
//
// Alongside the distances the workspace maintains, incrementally and
// undoably, the aggregate statistics every responder needs: the sum of
// distances and unreached count over the whole ball (swap objectives), the
// sum over the strict interior (SUMNCG's Δ), and the count of frontier or
// interior vertices pushed beyond the radius (SUMNCG's guard).
//
// A Workspace is not safe for concurrent use. Get one from the pool with
// GetWorkspace and return it with PutWorkspace.
type Workspace struct {
	// K is the view radius of the last Extract.
	K int
	// Orig maps local ids (ball BFS order, center first) to global ids.
	Orig []int32
	// Dist holds the view distance from the center to each local vertex
	// (the distance in the induced ball, which equals the distance in G).
	Dist []int32
	// CenterAdj lists the locals adjacent to the center in the view, in
	// the center's global adjacency order.
	CenterAdj []int32

	// Ball CSR with every center-incident arc removed: the targets of
	// local v (v != 0) are tgt[off[v]:off[v+1]]. Removing the center is
	// sound for every distance-from-center query — a shortest path from
	// the center never revisits it — and doubles as the "view minus
	// center" graph MAXNCG's dominating-set reduction needs.
	off []int32
	tgt []int32

	// lid maps global ids to local+1 (0 = outside the ball). Cleared by
	// walking the previous Orig, so reuse costs O(previous ball), not O(n).
	lid []int32

	// innerBase is Σ Dist over the strict interior (Dist < K): the
	// baseline SUMNCG's Δ subtracts.
	innerBase int64
	// viewEcc is the eccentricity of the center within the view.
	viewEcc int32

	// cur is the maintained distance-from-center under the active center
	// edge set, plus the derived aggregates.
	cur          []int32
	histo        []int32
	histoHi      int32
	sumReach     int64
	unreach      int32
	innerSum     int64
	innerUnreach int32
	frontBad     int32

	// journal of (local, previous distance) pairs for Undo.
	jv []int32
	jd []int32

	queue []int32
}

var workspacePool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace borrows a Workspace from the shared pool.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// PutWorkspace returns a Workspace to the shared pool.
func PutWorkspace(ws *Workspace) { workspacePool.Put(ws) }

// Size returns the number of vertices in the ball, including the center.
func (ws *Workspace) Size() int { return len(ws.Orig) }

// LocalOf returns the local id of global vertex g, or -1 when g is
// outside the ball.
func (ws *Workspace) LocalOf(g int) int {
	if g < 0 || g >= len(ws.lid) {
		return -1
	}
	return int(ws.lid[g]) - 1
}

// ViewEcc returns the eccentricity of the center within the view.
func (ws *Workspace) ViewEcc() int { return int(ws.viewEcc) }

// InnerBase returns Σ Dist over the strict interior (Dist < K).
func (ws *Workspace) InnerBase() int64 { return ws.innerBase }

// Extract fills the workspace with the radius-k ball of u in g, replacing
// any previous contents. Local ids are assigned in ball BFS order — the
// same order view.Extract produces — so every downstream tie-break is
// preserved. The incremental state is left unset; call ResetBase before
// reading any aggregate.
func (ws *Workspace) Extract(g *graph.Graph, u, k int) {
	if k < 0 {
		panic("view: negative radius")
	}
	// Clear the previous extraction's global->local entries.
	for _, gv := range ws.Orig {
		ws.lid[gv] = 0
	}
	if g.N() > len(ws.lid) {
		ws.lid = make([]int32, g.N())
	}
	ws.K = k
	ws.Orig = ws.Orig[:0]
	ws.Dist = ws.Dist[:0]

	// Ball BFS over the global graph; lid doubles as the visited mark.
	ws.lid[u] = 1
	ws.Orig = append(ws.Orig, int32(u))
	ws.Dist = append(ws.Dist, 0)
	for head := 0; head < len(ws.Orig); head++ {
		d := ws.Dist[head]
		if int(d) == k {
			continue
		}
		for _, w := range g.Neighbors(int(ws.Orig[head])) {
			if ws.lid[w] == 0 {
				ws.Orig = append(ws.Orig, w)
				ws.Dist = append(ws.Dist, d+1)
				ws.lid[w] = int32(len(ws.Orig))
			}
		}
	}
	b := len(ws.Orig)

	// Local CSR of the ball, center arcs excluded.
	if cap(ws.off) < b+1 {
		ws.off = make([]int32, b+1)
	}
	ws.off = ws.off[:b+1]
	ws.off[0] = 0
	ws.off[1] = 0 // the center's row is empty
	deg := 0
	for l := 1; l < b; l++ {
		for _, w := range g.Neighbors(int(ws.Orig[l])) {
			if int(w) != u && ws.lid[w] != 0 {
				deg++
			}
		}
		ws.off[l+1] = int32(deg)
	}
	if cap(ws.tgt) < deg {
		ws.tgt = make([]int32, deg)
	}
	ws.tgt = ws.tgt[:deg]
	pos := 0
	for l := 1; l < b; l++ {
		for _, w := range g.Neighbors(int(ws.Orig[l])) {
			if int(w) != u && ws.lid[w] != 0 {
				ws.tgt[pos] = ws.lid[w] - 1
				pos++
			}
		}
	}

	// Center adjacency, in the center's global adjacency order. Every
	// neighbor is at distance 1 <= k except when k == 0.
	ws.CenterAdj = ws.CenterAdj[:0]
	if k > 0 {
		for _, w := range g.Neighbors(u) {
			ws.CenterAdj = append(ws.CenterAdj, ws.lid[w]-1)
		}
	}

	// Baselines of the unmodified view.
	ws.innerBase = 0
	ws.viewEcc = 0
	for l := 0; l < b; l++ {
		d := ws.Dist[l]
		if int(d) < k {
			ws.innerBase += int64(d)
		}
		if d > ws.viewEcc {
			ws.viewEcc = d
		}
	}

	// Size the incremental buffers; histo must stay all-zero between
	// ResetBase calls, which fresh allocations and the reset loop both
	// guarantee.
	if cap(ws.cur) < b {
		ws.cur = make([]int32, b)
	}
	ws.cur = ws.cur[:b]
	if cap(ws.histo) < b+1 {
		ws.histo = make([]int32, b+1)
	} else {
		// Clear the previous use's entries at the old length before
		// reslicing: the new ball may be smaller than the old histoHi.
		for d := int32(0); d <= ws.histoHi; d++ {
			ws.histo[d] = 0
		}
		ws.histo = ws.histo[:b+1]
	}
	ws.histoHi = 0
	ws.jv = ws.jv[:0]
	ws.jd = ws.jd[:0]
}

// account folds vertex l's distance d into the aggregates with the given
// sign (+1 when d becomes live, -1 when it stops being live).
func (ws *Workspace) account(l, d int32, sign int32) {
	vd := ws.Dist[l]
	if d == unreach32 {
		ws.unreach += sign
		if int(vd) < ws.K {
			ws.innerUnreach += sign
		} else {
			ws.frontBad += sign
		}
		return
	}
	ws.sumReach += int64(sign) * int64(d)
	ws.histo[d] += sign
	if sign > 0 && d > ws.histoHi {
		ws.histoHi = d
	}
	if int(vd) < ws.K {
		ws.innerSum += int64(sign) * int64(d)
	} else if int(d) > ws.K {
		ws.frontBad += sign
	}
}

// ResetBase recomputes the maintained distances from scratch with the
// center adjacent to exactly the given locals (O(ball)). It discards any
// journaled candidate state.
func (ws *Workspace) ResetBase(edges []int32) {
	b := len(ws.Orig)
	for d := int32(0); d <= ws.histoHi; d++ {
		ws.histo[d] = 0
	}
	ws.histoHi = 0
	ws.sumReach, ws.innerSum = 0, 0
	ws.unreach, ws.innerUnreach, ws.frontBad = 0, 0, 0
	ws.jv = ws.jv[:0]
	ws.jd = ws.jd[:0]

	for l := range ws.cur {
		ws.cur[l] = unreach32
	}
	ws.cur[0] = 0
	q := ws.queue[:0]
	for _, e := range edges {
		if ws.cur[e] > 1 {
			ws.cur[e] = 1
			q = append(q, e)
		}
	}
	for head := 0; head < len(q); head++ {
		v := q[head]
		d := ws.cur[v]
		for _, w := range ws.tgt[ws.off[v]:ws.off[v+1]] {
			if ws.cur[w] == unreach32 {
				ws.cur[w] = d + 1
				q = append(q, w)
			}
		}
	}
	ws.queue = q
	for l := 0; l < b; l++ {
		ws.account(int32(l), ws.cur[l], 1)
	}
}

// Mark returns an undo token for the current journal position.
func (ws *Workspace) Mark() int { return len(ws.jv) }

// setDist journals and applies a distance decrease for local l.
func (ws *Workspace) setDist(l, nd int32) {
	od := ws.cur[l]
	ws.jv = append(ws.jv, l)
	ws.jd = append(ws.jd, od)
	ws.account(l, od, -1)
	ws.cur[l] = nd
	ws.account(l, nd, 1)
}

// AddEdgeRelax adds the center edge to local w on top of the current
// state and re-relaxes distances (decrease-only) from the improved
// region. Pair with Undo(Mark()) to roll back. Only vertices whose
// distance strictly improves are expanded: distances are 1-Lipschitz
// along ball edges, so no improvement can propagate through an
// unimproved vertex.
func (ws *Workspace) AddEdgeRelax(w int32) {
	q := ws.queue[:0]
	if ws.cur[w] > 1 {
		ws.setDist(w, 1)
		q = append(q, w)
	}
	ws.relax(q)
}

// AddEdgesRelax is AddEdgeRelax for a batch of center edges, relaxed as
// one multi-source wave.
func (ws *Workspace) AddEdgesRelax(targets []int32) {
	q := ws.queue[:0]
	for _, w := range targets {
		if ws.cur[w] > 1 {
			ws.setDist(w, 1)
			q = append(q, w)
		}
	}
	ws.relax(q)
}

func (ws *Workspace) relax(q []int32) {
	for head := 0; head < len(q); head++ {
		v := q[head]
		d := ws.cur[v]
		for _, w := range ws.tgt[ws.off[v]:ws.off[v+1]] {
			if ws.cur[w] > d+1 {
				ws.setDist(w, d+1)
				q = append(q, w)
			}
		}
	}
	ws.queue = q
}

// Undo rolls the journal back to a Mark, restoring distances and
// aggregates in O(entries undone).
func (ws *Workspace) Undo(mark int) {
	for i := len(ws.jv) - 1; i >= mark; i-- {
		l, od := ws.jv[i], ws.jd[i]
		ws.account(l, ws.cur[l], -1)
		ws.cur[l] = od
		ws.account(l, od, 1)
	}
	ws.jv = ws.jv[:mark]
	ws.jd = ws.jd[:mark]
}

// CurDist returns the maintained distance from the center to local l
// (graph.Unreachable when unreached).
func (ws *Workspace) CurDist(l int) int {
	if ws.cur[l] == unreach32 {
		return graph.Unreachable
	}
	return int(ws.cur[l])
}

// SumAll returns the sum of maintained distances over the whole ball,
// counting graph.Unreachable per unreached vertex — the same arithmetic
// as summing a full-slice BFS.
func (ws *Workspace) SumAll() int {
	return int(ws.sumReach) + int(ws.unreach)*graph.Unreachable
}

// EccAll returns the maximum maintained distance over the ball
// (graph.Unreachable when any vertex is unreached).
func (ws *Workspace) EccAll() int {
	if ws.unreach > 0 {
		return graph.Unreachable
	}
	for d := ws.histoHi; d >= 0; d-- {
		if ws.histo[d] > 0 {
			return int(d)
		}
	}
	return 0
}

// InnerSum returns Σ cur over the strict interior (Dist < K) and whether
// the candidate is admissible: false when an interior vertex became
// unreachable or a frontier/interior vertex was pushed beyond the radius
// (Prop. 2.2's guard).
func (ws *Workspace) InnerSum() (sum int64, ok bool) {
	if ws.innerUnreach > 0 || ws.frontBad > 0 {
		return 0, false
	}
	return ws.innerSum, true
}

// BallDistFrom runs a BFS from local src over the ball CSR (center
// excluded) into out, which must have length Size(). Unreached vertices —
// always including the center — get graph.Unreachable truncated to int32
// (unreach32); callers should compare with Reached. The maintained
// incremental state is untouched.
func (ws *Workspace) BallDistFrom(src int32, out []int32) {
	for i := range out {
		out[i] = unreach32
	}
	out[src] = 0
	q := ws.queue[:0]
	q = append(q, src)
	for head := 0; head < len(q); head++ {
		v := q[head]
		d := out[v]
		for _, w := range ws.tgt[ws.off[v]:ws.off[v+1]] {
			if out[w] == unreach32 {
				out[w] = d + 1
				q = append(q, w)
			}
		}
	}
	ws.queue = q
}

// Reached reports whether a BallDistFrom output entry is a real distance.
func Reached(d int32) bool { return d != unreach32 }
