// Package view implements the paper's locality model: each player knows
// the network only up to radius k — the subgraph induced by her
// k-neighborhood (§1). Views carry the id mapping back to the global
// network, the center's local id, and the frontier (vertices at distance
// exactly k), which SUMNCG's conservative behavior needs (Prop. 2.2).
package view

import (
	"repro/internal/graph"
)

// View is the k-neighborhood of a player: the subgraph of G induced by
// β(center, k), with local vertex ids 0..N-1.
type View struct {
	// H is the induced subgraph. Local vertex 0.. map to global ids via Orig.
	H *graph.Graph
	// Orig maps local ids to global ids.
	Orig []int
	// Local maps global ids to local ids (absent keys = outside the view).
	Local map[int]int
	// Center is the local id of the viewing player.
	Center int
	// K is the view radius.
	K int
	// Dist holds the distance (in G, equal to the distance in H for every
	// vertex of the view) from the center to each local vertex.
	Dist []int
}

// Extract returns the view of player u in g at radius k.
//
// For every vertex v in the ball, the distance from u to v inside the
// induced subgraph equals the distance in g (a shortest u-v path of length
// <= k only visits vertices of the ball), so Dist is valid in both graphs.
func Extract(g *graph.Graph, u, k int) *View {
	if k < 0 {
		panic("view: negative radius")
	}
	dist := make([]int, g.N())
	visited := g.BFSWithin(u, k, dist, nil)
	vertices := make([]int, len(visited))
	for i, v := range visited {
		vertices[i] = int(v)
	}
	h, orig := g.Induced(vertices)
	local := make(map[int]int, len(orig))
	for i, v := range orig {
		local[v] = i
	}
	localDist := make([]int, len(orig))
	for i, v := range orig {
		localDist[i] = dist[v]
	}
	return &View{
		H:      h,
		Orig:   orig,
		Local:  local,
		Center: local[u],
		K:      k,
		Dist:   localDist,
	}
}

// Size returns the number of vertices the player sees (Figure 5's
// "view size"), including herself.
func (v *View) Size() int { return v.H.N() }

// BallSize returns |β(u,k)| — what Extract(g,u,k).Size() would report —
// with one pooled bounded BFS and no view materialization. Per-round
// statistics collection calls this once per player per round.
func BallSize(g *graph.Graph, u, k int) int {
	s := graph.GetScratch(g.N())
	n := len(g.BFSWithinScratch(u, k, s))
	graph.PutScratch(s)
	return n
}

// Frontier returns the local ids of the vertices at distance exactly K
// from the center — the set F of Prop. 2.2.
func (v *View) Frontier() []int {
	var out []int
	for i, d := range v.Dist {
		if d == v.K {
			out = append(out, i)
		}
	}
	return out
}

// SeesAll reports whether the view covers the entire network of n
// vertices; in that case the player effectively plays the full-knowledge
// game (gray regions of Figures 3–4).
func (v *View) SeesAll(n int) bool { return v.H.N() == n }

// GlobalStrategyToLocal translates a set of global vertex ids into local
// ids, dropping targets outside the view (they are not in the player's
// strategy space under locality).
func (v *View) GlobalStrategyToLocal(strategy []int) []int {
	var out []int
	for _, g := range strategy {
		if l, ok := v.Local[g]; ok {
			out = append(out, l)
		}
	}
	return out
}

// LocalStrategyToGlobal translates local ids back to global ids.
func (v *View) LocalStrategyToGlobal(strategy []int) []int {
	out := make([]int, len(strategy))
	for i, l := range strategy {
		out[i] = v.Orig[l]
	}
	return out
}
