package ncgio

import (
	"fmt"
	"io"
	"os"
)

// reverseScanChunk is the block size LastCompleteOffset reads while
// scanning backwards for the final newline (a variable so tests can
// shrink it to cover the multi-chunk path).
var reverseScanChunk = 64 * 1024

// LastCompleteOffset returns the offset one past the last '\n' within the
// first size bytes of r — the length of a checkpoint's whole-line prefix.
// Bytes past it belong to a torn or in-flight record and must not reach
// readers that rely on line framing. Returns 0 when no newline exists.
// The scan reads backwards in chunks, so clamping a large checkpoint with
// a short tail touches only its final blocks.
func LastCompleteOffset(r io.ReaderAt, size int64) (int64, error) {
	buf := make([]byte, reverseScanChunk)
	for end := size; end > 0; {
		start := end - int64(len(buf))
		if start < 0 {
			start = 0
		}
		n, err := r.ReadAt(buf[:end-start], start)
		if err != nil && err != io.EOF {
			return 0, fmt.Errorf("ncgio: %w", err)
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				return start + int64(i) + 1, nil
			}
		}
		end = start
	}
	return 0, nil
}

// RepairTail truncates path to its whole-line prefix, discarding a final
// partial line left by a crashed whole-line writer. Unlike
// ReadCheckpoint it never parses record contents — it is the framing
// repair for sidecar files (trajectory.jsonl) whose owner is about to
// resume appending; without it a torn tail would merge with the next
// appended line into one unparseable record. A missing file is a no-op.
// Only the file's owner may call this (truncation races a live writer).
func RepairTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ncgio: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("ncgio: %w", err)
	}
	clean, err := LastCompleteOffset(f, fi.Size())
	if err != nil {
		return err
	}
	if clean < fi.Size() {
		if err := f.Truncate(clean); err != nil {
			return fmt.Errorf("ncgio: repairing torn tail: %w", err)
		}
	}
	return nil
}

// Tailer incrementally reads whole-line frames from a growing checkpoint
// file: each Next call exposes the complete ('\n'-terminated) lines
// appended since the previous call, holding a torn tail back until its
// newline lands. A live CheckpointWriter appends whole lines, so readers
// polling through a Tailer only ever observe clean records; a tail torn
// by a crashed writer is simply never served. If the checkpoint's owner
// repairs such a tail (ReadCheckpoint truncates exactly to the whole-line
// prefix before resuming appends), the Tailer's offset — which never
// advances past that prefix — remains valid and tailing continues
// seamlessly across the repair.
type Tailer struct {
	f   *os.File
	off int64
}

// NewTailer tails f from its beginning.
func NewTailer(f *os.File) *Tailer { return &Tailer{f: f} }

// Next returns a reader over the newly appended complete-line bytes and
// their count (0 when nothing new is ready). The reader streams straight
// from the file — no buffering of the region in memory — and is valid
// until the next call.
func (t *Tailer) Next() (io.Reader, int64, error) {
	fi, err := t.f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("ncgio: %w", err)
	}
	size := fi.Size()
	if size <= t.off {
		return nil, 0, nil
	}
	rel, err := LastCompleteOffset(io.NewSectionReader(t.f, t.off, size-t.off), size-t.off)
	if err != nil || rel == 0 {
		return nil, 0, err
	}
	sec := io.NewSectionReader(t.f, t.off, rel)
	t.off += rel
	return sec, rel, nil
}
