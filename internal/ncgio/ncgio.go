// Package ncgio serializes game states and sweep results so equilibria
// found by long experiment runs can be saved, inspected, and re-audited
// later. The on-disk format is stable JSON: a state is its player count
// plus the sorted arc list (buyer → target), which is exactly the
// information content of a strategy profile σ.
package ncgio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/game"
)

// stateJSON is the wire form of a strategy profile.
type stateJSON struct {
	// N is the number of players.
	N int `json:"n"`
	// Arcs lists bought edges as [buyer, target] pairs in canonical
	// (buyer-major, target-minor) order.
	Arcs [][2]int `json:"arcs"`
}

// EncodeState writes s to w as JSON.
func EncodeState(w io.Writer, s *game.State) error {
	out := stateJSON{N: s.N()}
	for u := 0; u < s.N(); u++ {
		for _, v := range s.Strategy(u) {
			out.Arcs = append(out.Arcs, [2]int{u, v})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// DecodeState reads a state previously written by EncodeState. The
// decoded state passes game.Validate by construction; malformed arcs
// (out-of-range ids, self-buys, duplicates) are rejected.
func DecodeState(r io.Reader) (*game.State, error) {
	var in stateJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("ncgio: %w", err)
	}
	if in.N < 0 {
		return nil, fmt.Errorf("ncgio: negative player count %d", in.N)
	}
	s := game.NewState(in.N)
	for _, arc := range in.Arcs {
		u, v := arc[0], arc[1]
		if u < 0 || u >= in.N || v < 0 || v >= in.N {
			return nil, fmt.Errorf("ncgio: arc (%d,%d) out of range [0,%d)", u, v, in.N)
		}
		if u == v {
			return nil, fmt.Errorf("ncgio: self-buy arc (%d,%d)", u, v)
		}
		if s.Buys(u, v) {
			return nil, fmt.Errorf("ncgio: duplicate arc (%d,%d)", u, v)
		}
		s.Buy(u, v)
	}
	return s, nil
}

// RunRecord is the serializable summary of one dynamics run, rich enough
// to re-audit the final state (the profile itself is embedded).
type RunRecord struct {
	Variant    string          `json:"variant"`
	Alpha      float64         `json:"alpha"`
	K          int             `json:"k"`
	Seed       int64           `json:"seed"`
	Status     string          `json:"status"`
	Rounds     int             `json:"rounds"`
	TotalMoves int             `json:"total_moves"`
	Diameter   int             `json:"diameter"`
	SocialCost float64         `json:"social_cost"`
	Quality    float64         `json:"quality"`
	State      json.RawMessage `json:"state"`
}

// EncodeRunRecord serializes one record as a JSON line (JSONL-friendly).
func EncodeRunRecord(w io.Writer, rec RunRecord) error {
	return json.NewEncoder(w).Encode(rec)
}

// DecodeRunRecords reads all JSONL records from r.
func DecodeRunRecords(r io.Reader) ([]RunRecord, error) {
	var out []RunRecord
	dec := json.NewDecoder(r)
	for {
		var rec RunRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("ncgio: %w", err)
		}
		out = append(out, rec)
	}
}

// MarshalState returns the JSON bytes of a state (for embedding in
// RunRecord.State).
func MarshalState(s *game.State) (json.RawMessage, error) {
	out := stateJSON{N: s.N()}
	for u := 0; u < s.N(); u++ {
		for _, v := range s.Strategy(u) {
			out.Arcs = append(out.Arcs, [2]int{u, v})
		}
	}
	return json.Marshal(out)
}
