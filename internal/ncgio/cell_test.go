package ncgio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/gen"
)

func sampleResults(t *testing.T, n int) []dynamics.CellResult {
	t.Helper()
	cells := dynamics.Grid([]float64{0.5, 2}, []int{2, 1000}, (n+3)/4)
	cfg := dynamics.DefaultConfig(game.Max, 0, 0)
	factory := func(cell dynamics.Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(12, rng), rng)
	}
	out := dynamics.Sweep(cells, cfg, factory, 42)
	if len(out) < n {
		t.Fatalf("sample too small: %d < %d", len(out), n)
	}
	return out[:n]
}

func TestCellResultRoundTrip(t *testing.T) {
	for _, r := range sampleResults(t, 8) {
		line, err := MarshalCellResult(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalCellResult(line)
		if err != nil {
			t.Fatal(err)
		}
		if back.Cell != r.Cell {
			t.Fatalf("cell: got %+v want %+v", back.Cell, r.Cell)
		}
		if back.Result.Status != r.Result.Status ||
			back.Result.Rounds != r.Result.Rounds ||
			back.Result.TotalMoves != r.Result.TotalMoves ||
			back.Result.FinalStats != r.Result.FinalStats {
			t.Fatalf("summary mismatch:\n got %+v\nwant %+v", back.Result, r.Result)
		}
		if back.Result.Final.Fingerprint() != r.Result.Final.Fingerprint() {
			t.Fatal("final state fingerprint changed across round-trip")
		}
	}
}

// TestCheckpointBytesActivationInvariant pins the sweep-facing guarantee
// of the event-driven engine: a sweep under the default dirty-set
// activation marshals to exactly the same checkpoint bytes as one forced
// through the eager evaluate-everyone loop. This is what lets resume,
// caching, and replication mix checkpoints produced by either engine
// generation.
func TestCheckpointBytesActivationInvariant(t *testing.T) {
	cells := dynamics.Grid([]float64{0.5, 2, 8}, []int{2, 1000}, 2)
	factory := func(cell dynamics.Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(14, rng), rng)
	}
	for _, variant := range []game.Variant{game.Max, game.Sum} {
		dirty := dynamics.DefaultConfig(variant, 0, 0)
		eager := dirty
		eager.Activation = dynamics.ActivationEager
		a := dynamics.Sweep(cells, dirty, factory, 42)
		b := dynamics.Sweep(cells, eager, factory, 42)
		for i := range a {
			la, err := MarshalCellResult(a[i])
			if err != nil {
				t.Fatal(err)
			}
			lb, err := MarshalCellResult(b[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(la, lb) {
				t.Fatalf("%v cell %+v: checkpoint bytes differ between activations:\n%s\n%s",
					variant, a[i].Cell, la, lb)
			}
		}
	}
}

func TestMarshalCellResultDeterministic(t *testing.T) {
	r := sampleResults(t, 1)[0]
	a, err := MarshalCellResult(r)
	if err != nil {
		t.Fatal(err)
	}
	// Re-marshaling a decoded result must reproduce the same bytes — the
	// property that lets cache hits be appended to checkpoints verbatim.
	back, err := UnmarshalCellResult(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalCellResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("marshal not stable across round-trip:\n%s\n%s", a, b)
	}
}

func TestDecodeCellResultsStream(t *testing.T) {
	results := sampleResults(t, 5)
	var buf bytes.Buffer
	for _, r := range results {
		if err := EncodeCellResult(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeCellResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("decoded %d records, want %d", len(got), len(results))
	}
	for i := range got {
		if got[i].Cell != results[i].Cell {
			t.Fatalf("record %d cell mismatch", i)
		}
	}
}

func TestReadCheckpointRepairsTornTail(t *testing.T) {
	results := sampleResults(t, 4)
	path := filepath.Join(t.TempDir(), "results.jsonl")
	w, err := NewCheckpointWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: clip the last line in half.
	torn := clean[:len(clean)-17]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results)-1 {
		t.Fatalf("recovered %d records, want %d", len(got), len(results)-1)
	}
	// The file must have been truncated back to the clean prefix so a
	// resume appends from a well-formed boundary.
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := bytes.Join(bytes.SplitAfter(clean, []byte("\n"))[:len(results)-1], nil)
	if !bytes.Equal(repaired, wantPrefix) {
		t.Fatalf("repair wrong:\ngot  %q\nwant %q", repaired, wantPrefix)
	}
}

func TestReadCheckpointMissingFile(t *testing.T) {
	got, err := ReadCheckpoint(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || got != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", got, err)
	}
}

func TestUnmarshalCellResultRejectsBadStatus(t *testing.T) {
	if _, err := UnmarshalCellResult([]byte(`{"alpha":1,"k":2,"seed":0,"status":"exploded"}`)); err == nil {
		t.Fatal("bad status accepted")
	}
}
