package ncgio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/gen"
)

func TestStateRoundTrip(t *testing.T) {
	s := game.NewState(5)
	s.Buy(0, 1)
	s.Buy(1, 0) // double ownership survives the round trip
	s.Buy(3, 4)
	var buf bytes.Buffer
	if err := EncodeState(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != s.Fingerprint() {
		t.Fatal("round trip changed the profile")
	}
	if !back.Buys(1, 0) || !back.Buys(0, 1) {
		t.Fatal("double ownership lost")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStateRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz%25)
		rng := rand.New(rand.NewSource(seed))
		s := game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
		var buf bytes.Buffer
		if err := EncodeState(&buf, s); err != nil {
			return false
		}
		back, err := DecodeState(&buf)
		if err != nil {
			return false
		}
		return back.Fingerprint() == s.Fingerprint() && back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"negative n":   `{"n":-1,"arcs":[]}`,
		"out of range": `{"n":3,"arcs":[[0,5]]}`,
		"self buy":     `{"n":3,"arcs":[[1,1]]}`,
		"duplicate":    `{"n":3,"arcs":[[0,1],[0,1]]}`,
	}
	for name, payload := range cases {
		if _, err := DecodeState(strings.NewReader(payload)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDecodeEmptyState(t *testing.T) {
	s, err := DecodeState(strings.NewReader(`{"n":0,"arcs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 0 {
		t.Fatal("nonempty")
	}
}

func TestRunRecordsJSONL(t *testing.T) {
	s := game.NewState(3)
	s.Buy(0, 1)
	raw, err := MarshalState(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		rec := RunRecord{
			Variant: "MAXNCG", Alpha: 2, K: 3, Seed: int64(i),
			Status: "converged", Rounds: 4, TotalMoves: 7,
			Diameter: 5, SocialCost: 100, Quality: 1.5, State: raw,
		}
		if err := EncodeRunRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := DecodeRunRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records", len(recs))
	}
	if recs[1].Seed != 1 || recs[2].Quality != 1.5 {
		t.Fatalf("record content: %+v", recs)
	}
	// The embedded state decodes back.
	back, err := DecodeState(bytes.NewReader(recs[0].State))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Buys(0, 1) {
		t.Fatal("embedded state lost arcs")
	}
}

func TestDecodeRunRecordsMalformed(t *testing.T) {
	if _, err := DecodeRunRecords(strings.NewReader(`{"variant":"x"}garbage`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
