package ncgio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynamics"
)

func TestTrajectoryRoundTrip(t *testing.T) {
	cell := dynamics.Cell{Alpha: 2.5, K: 1000, Seed: 7}
	pr := []dynamics.RoundStats{
		{Round: 1, Moves: 4, Diameter: 3, SocialCost: 12.5, Quality: 1.25},
		{Round: 2, Moves: 0, Diameter: 2, SocialCost: 11, Quality: 1.1},
	}
	line, err := MarshalTrajectory(cell, pr)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(line, '\n') {
		t.Fatal("trajectory line contains a newline")
	}
	tr, err := UnmarshalTrajectory(line)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cell() != cell {
		t.Fatalf("cell round-trip: got %+v, want %+v", tr.Cell(), cell)
	}
	if len(tr.PerRound) != len(pr) || tr.PerRound[0] != pr[0] || tr.PerRound[1] != pr[1] {
		t.Fatalf("per-round round-trip mismatch: %+v", tr.PerRound)
	}
	// Determinism: same input, same bytes.
	line2, err := MarshalTrajectory(cell, pr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, line2) {
		t.Fatal("trajectory encoding is nondeterministic")
	}
}

// TestLeaseRecordRoundTrip: the trajectory lease envelope carries the
// canonical result bytes untouched and reattaches PerRound on decode.
func TestLeaseRecordRoundTrip(t *testing.T) {
	r := dynamics.CellResult{
		Cell: dynamics.Cell{Alpha: 1.5, K: 3, Seed: 2},
		Result: dynamics.Result{
			Status:     dynamics.Converged,
			Rounds:     4,
			TotalMoves: 9,
			FinalStats: dynamics.RoundStats{Round: 4, Diameter: 3, SocialCost: 20},
		},
	}
	resultLine, err := MarshalCellResult(r)
	if err != nil {
		t.Fatal(err)
	}
	pr := []dynamics.RoundStats{
		{Round: 1, Moves: 5, Diameter: 4, SocialCost: 25},
		{Round: 2, Moves: 0, Diameter: 3, SocialCost: 20},
	}
	rec, err := MarshalLeaseRecord(resultLine, pr)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(rec, '\n') {
		t.Fatal("lease record contains a newline")
	}
	got, err := UnmarshalLeaseRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cell != r.Cell || got.Result.Status != r.Result.Status ||
		got.Result.Rounds != r.Result.Rounds || got.Result.TotalMoves != r.Result.TotalMoves ||
		got.Result.FinalStats != r.Result.FinalStats {
		t.Fatalf("result round-trip mismatch: %+v", got)
	}
	if len(got.Result.PerRound) != len(pr) || got.Result.PerRound[0] != pr[0] || got.Result.PerRound[1] != pr[1] {
		t.Fatalf("per-round round-trip mismatch: %+v", got.Result.PerRound)
	}
	// The embedded result must re-marshal to the exact checkpoint bytes
	// the follower computed — the leader appends them verbatim.
	back, err := MarshalCellResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, resultLine) {
		t.Fatal("embedded result bytes not canonical after round-trip")
	}
}

func TestUnmarshalLeaseRecordRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalLeaseRecord([]byte(`{"per_round": []}`)); err == nil {
		t.Fatal("record without result accepted")
	}
	if _, err := UnmarshalLeaseRecord([]byte(`{"result": {"status": "nope"}}`)); err == nil {
		t.Fatal("record with bad embedded result accepted")
	}
}

func TestUnmarshalTrajectoryRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalTrajectory([]byte(`{"alpha": "nope"}`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRepairTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trajectory.jsonl")

	// Missing file: no-op.
	if err := RepairTail(path); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(path, []byte("{\"a\":1}\n{\"b\":2}\n{\"torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RepairTail(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"a\":1}\n{\"b\":2}\n" {
		t.Fatalf("repaired file = %q", data)
	}

	// Already-clean file stays untouched.
	if err := RepairTail(path); err != nil {
		t.Fatal(err)
	}
	again, _ := os.ReadFile(path)
	if !bytes.Equal(again, data) {
		t.Fatal("clean file modified by repair")
	}

	// A file with no newline at all is emptied (nothing provably whole).
	if err := os.WriteFile(path, []byte("{\"only-torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RepairTail(path); err != nil {
		t.Fatal(err)
	}
	empty, _ := os.ReadFile(path)
	if len(empty) != 0 {
		t.Fatalf("torn-only file = %q, want empty", empty)
	}
}
