package ncgio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLastCompleteOffset(t *testing.T) {
	cases := []struct {
		data string
		want int64
	}{
		{"", 0},
		{"abc", 0},
		{"abc\n", 4},
		{"abc\ndef", 4},
		{"a\nb\nc", 4},
		{"\n", 1},
		{"abc\n\n\ntail", 6},
	}
	for _, c := range cases {
		got, err := LastCompleteOffset(strings.NewReader(c.data), int64(len(c.data)))
		if err != nil {
			t.Fatalf("%q: %v", c.data, err)
		}
		if got != c.want {
			t.Fatalf("LastCompleteOffset(%q) = %d, want %d", c.data, got, c.want)
		}
	}
}

// TestLastCompleteOffsetMultiChunk shrinks the reverse-scan block so the
// newline sits several chunks before the end.
func TestLastCompleteOffsetMultiChunk(t *testing.T) {
	saved := reverseScanChunk
	reverseScanChunk = 4
	defer func() { reverseScanChunk = saved }()

	data := "line one\n" + strings.Repeat("x", 23)
	got, err := LastCompleteOffset(strings.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("offset = %d, want 9", got)
	}
	noNL := strings.Repeat("y", 17)
	got, err = LastCompleteOffset(strings.NewReader(noNL), int64(len(noNL)))
	if err != nil || got != 0 {
		t.Fatalf("no-newline scan = %d, %v (want 0, nil)", got, err)
	}
}

func TestTailerFramesWholeLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tail := NewTailer(rf)

	read := func() string {
		t.Helper()
		var buf bytes.Buffer
		for {
			sec, n, err := tail.Next()
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				return buf.String()
			}
			if _, err := io.Copy(&buf, sec); err != nil {
				t.Fatal(err)
			}
		}
	}

	if got := read(); got != "" {
		t.Fatalf("empty file yielded %q", got)
	}
	f.WriteString("first li") //nolint:errcheck
	if got := read(); got != "" {
		t.Fatalf("torn tail served: %q", got)
	}
	f.WriteString("ne\nsecond line\n") //nolint:errcheck
	if got := read(); got != "first line\nsecond line\n" {
		t.Fatalf("got %q", got)
	}
	f.WriteString("third\npartial") //nolint:errcheck
	if got := read(); got != "third\n" {
		t.Fatalf("got %q", got)
	}
	f.WriteString("\n") //nolint:errcheck
	if got := read(); got != "partial\n" {
		t.Fatalf("got %q", got)
	}
}

// TestLoadCheckpointLeavesTornTail checks the read-only loader returns
// the clean prefix without repairing the file — the property the HTTP
// serving layer relies on when reading checkpoints it does not own —
// while ReadCheckpoint still truncates.
func TestLoadCheckpointLeavesTornTail(t *testing.T) {
	line := `{"alpha":1,"k":2,"seed":3,"status":"converged","rounds":1,"total_moves":1}`
	data := line + "\n" + `{"alpha":2,"k":`
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Cell.Alpha != 1 || recs[0].Cell.K != 2 {
		t.Fatalf("recs = %+v", recs)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != data {
		t.Fatalf("LoadCheckpoint mutated the file: %q", after)
	}

	recs, err = ReadCheckpoint(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadCheckpoint = %d recs, %v", len(recs), err)
	}
	after, _ = os.ReadFile(path)
	if string(after) != line+"\n" {
		t.Fatalf("ReadCheckpoint did not repair the tail: %q", after)
	}

	if recs, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.jsonl")); err != nil || recs != nil {
		t.Fatalf("missing file = %v, %v (want nil, nil)", recs, err)
	}
}
