package ncgio

import (
	"encoding/json"
	"fmt"

	"repro/internal/dynamics"
)

// TrajectoryRecord is the wire form of one cell's per-round trajectory:
// the cell coordinates plus the full RoundStats sequence the dynamics
// collected. It lives in an opt-in sidecar file (trajectory.jsonl) next
// to a sweep's checkpoint, so the main CellResult codec stays small —
// convergence studies that need full trajectories read the sidecar, and
// everyone else never pays for it.
type TrajectoryRecord struct {
	Alpha    float64               `json:"alpha"`
	K        int                   `json:"k"`
	Seed     int64                 `json:"seed"`
	PerRound []dynamics.RoundStats `json:"per_round"`
}

// Cell reassembles the record's cell coordinates.
func (tr TrajectoryRecord) Cell() dynamics.Cell {
	return dynamics.Cell{Alpha: tr.Alpha, K: tr.K, Seed: tr.Seed}
}

// MarshalTrajectory returns the canonical one-line JSON encoding of one
// cell's trajectory (without a trailing newline). Encoding is
// deterministic, same contract as MarshalCellResult.
func MarshalTrajectory(c dynamics.Cell, perRound []dynamics.RoundStats) ([]byte, error) {
	line, err := json.Marshal(TrajectoryRecord{Alpha: c.Alpha, K: c.K, Seed: c.Seed, PerRound: perRound})
	if err != nil {
		return nil, fmt.Errorf("ncgio: %w", err)
	}
	return line, nil
}

// UnmarshalTrajectory inverts MarshalTrajectory.
func UnmarshalTrajectory(line []byte) (TrajectoryRecord, error) {
	var tr TrajectoryRecord
	if err := json.Unmarshal(line, &tr); err != nil {
		return TrajectoryRecord{}, fmt.Errorf("ncgio: %w", err)
	}
	return tr, nil
}
