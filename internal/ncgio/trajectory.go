package ncgio

import (
	"encoding/json"
	"fmt"

	"repro/internal/dynamics"
)

// TrajectoryRecord is the wire form of one cell's per-round trajectory:
// the cell coordinates plus the full RoundStats sequence the dynamics
// collected. It lives in an opt-in sidecar file (trajectory.jsonl) next
// to a sweep's checkpoint, so the main CellResult codec stays small —
// convergence studies that need full trajectories read the sidecar, and
// everyone else never pays for it.
type TrajectoryRecord struct {
	Alpha    float64               `json:"alpha"`
	K        int                   `json:"k"`
	Seed     int64                 `json:"seed"`
	PerRound []dynamics.RoundStats `json:"per_round"`
}

// Cell reassembles the record's cell coordinates.
func (tr TrajectoryRecord) Cell() dynamics.Cell {
	return dynamics.Cell{Alpha: tr.Alpha, K: tr.K, Seed: tr.Seed}
}

// MarshalTrajectory returns the canonical one-line JSON encoding of one
// cell's trajectory (without a trailing newline). Encoding is
// deterministic, same contract as MarshalCellResult.
func MarshalTrajectory(c dynamics.Cell, perRound []dynamics.RoundStats) ([]byte, error) {
	line, err := json.Marshal(TrajectoryRecord{Alpha: c.Alpha, K: c.K, Seed: c.Seed, PerRound: perRound})
	if err != nil {
		return nil, fmt.Errorf("ncgio: %w", err)
	}
	return line, nil
}

// UnmarshalTrajectory inverts MarshalTrajectory.
func UnmarshalTrajectory(line []byte) (TrajectoryRecord, error) {
	var tr TrajectoryRecord
	if err := json.Unmarshal(line, &tr); err != nil {
		return TrajectoryRecord{}, fmt.Errorf("ncgio: %w", err)
	}
	return tr, nil
}

// leaseRecordJSON is the wire form of one cell on a peer-lease stream when
// the spec collects trajectories: the canonical CellResult line — exactly
// the bytes the leader will checkpoint — plus the per-round stats the
// checkpoint codec intentionally drops. Plain leases stream bare CellResult
// lines; this envelope exists so trajectory sweeps can shard without
// per_round ever entering checkpoint bytes.
type leaseRecordJSON struct {
	Result   json.RawMessage       `json:"result"`
	PerRound []dynamics.RoundStats `json:"per_round,omitempty"`
}

// MarshalLeaseRecord wraps a canonical CellResult line (as produced by
// MarshalCellResult) together with its per-round trajectory into one lease
// stream record (without a trailing newline). Encoding is deterministic,
// same contract as MarshalCellResult.
func MarshalLeaseRecord(resultLine []byte, perRound []dynamics.RoundStats) ([]byte, error) {
	line, err := json.Marshal(leaseRecordJSON{Result: json.RawMessage(resultLine), PerRound: perRound})
	if err != nil {
		return nil, fmt.Errorf("ncgio: %w", err)
	}
	return line, nil
}

// UnmarshalLeaseRecord inverts MarshalLeaseRecord: the embedded result is
// fully decoded and the trajectory is reattached to Result.PerRound, so
// the leader sees exactly what an in-process worker would have delivered.
func UnmarshalLeaseRecord(line []byte) (dynamics.CellResult, error) {
	var lr leaseRecordJSON
	if err := json.Unmarshal(line, &lr); err != nil {
		return dynamics.CellResult{}, fmt.Errorf("ncgio: %w", err)
	}
	if len(lr.Result) == 0 {
		return dynamics.CellResult{}, fmt.Errorf("ncgio: lease record has no result")
	}
	r, err := UnmarshalCellResult(lr.Result)
	if err != nil {
		return dynamics.CellResult{}, err
	}
	r.Result.PerRound = lr.PerRound
	return r, nil
}
