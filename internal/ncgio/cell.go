package ncgio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/dynamics"
)

// cellResultJSON is the wire form of one sweep cell outcome: the cell
// coordinates, the run summary, the full final-round statistics, and the
// final strategy profile. Per-round trajectories are intentionally not
// serialized — sweeps do not collect them, and checkpoint lines must stay
// small. Field order is fixed, so encoding the same result always yields
// the same bytes (the property the resumable checkpoint format relies on).
type cellResultJSON struct {
	Alpha      float64             `json:"alpha"`
	K          int                 `json:"k"`
	Seed       int64               `json:"seed"`
	Status     string              `json:"status"`
	Rounds     int                 `json:"rounds"`
	TotalMoves int                 `json:"total_moves"`
	FinalStats dynamics.RoundStats `json:"final_stats"`
	State      json.RawMessage     `json:"state,omitempty"`
}

// MarshalCellResult returns the canonical one-line JSON encoding of r
// (without a trailing newline). Encoding is deterministic: the same
// result always marshals to the same bytes.
func MarshalCellResult(r dynamics.CellResult) ([]byte, error) {
	out := cellResultJSON{
		Alpha:      r.Cell.Alpha,
		K:          r.Cell.K,
		Seed:       r.Cell.Seed,
		Status:     r.Result.Status.String(),
		Rounds:     r.Result.Rounds,
		TotalMoves: r.Result.TotalMoves,
		FinalStats: r.Result.FinalStats,
	}
	if r.Result.Final != nil {
		state, err := MarshalState(r.Result.Final)
		if err != nil {
			return nil, fmt.Errorf("ncgio: %w", err)
		}
		out.State = state
	}
	return json.Marshal(out)
}

// UnmarshalCellResult inverts MarshalCellResult. The embedded state (when
// present) is fully decoded and validated; PerRound is always nil.
func UnmarshalCellResult(line []byte) (dynamics.CellResult, error) {
	var in cellResultJSON
	if err := json.Unmarshal(line, &in); err != nil {
		return dynamics.CellResult{}, fmt.Errorf("ncgio: %w", err)
	}
	status, ok := dynamics.ParseStatus(in.Status)
	if !ok {
		return dynamics.CellResult{}, fmt.Errorf("ncgio: unknown status %q", in.Status)
	}
	r := dynamics.CellResult{
		Cell: dynamics.Cell{Alpha: in.Alpha, K: in.K, Seed: in.Seed},
		Result: dynamics.Result{
			Status:     status,
			Rounds:     in.Rounds,
			TotalMoves: in.TotalMoves,
			FinalStats: in.FinalStats,
		},
	}
	if len(in.State) > 0 {
		s, err := DecodeState(bytes.NewReader(in.State))
		if err != nil {
			return dynamics.CellResult{}, err
		}
		r.Result.Final = s
	}
	return r, nil
}

// EncodeCellResult writes r to w as one JSONL line.
func EncodeCellResult(w io.Writer, r dynamics.CellResult) error {
	line, err := MarshalCellResult(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = w.Write(line)
	return err
}

// DecodeCellResults reads all JSONL cell results from r. It is strict:
// any malformed line is an error (use ReadCheckpoint for crash-tolerant
// file reads).
func DecodeCellResults(r io.Reader) ([]dynamics.CellResult, error) {
	var out []dynamics.CellResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := UnmarshalCellResult(line)
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("ncgio: %w", err)
	}
	return out, nil
}

// ReadCheckpoint loads a CellResult JSONL checkpoint file, tolerating a
// torn tail: if the process died mid-append, the final partial line is
// discarded and the file is truncated back to the last clean record, so a
// subsequent resume appends from a well-formed prefix. A missing file is
// an empty checkpoint, not an error. Only a job's own runner should use
// this (truncation races a live writer); readers serving a checkpoint
// they do not own want LoadCheckpoint.
func ReadCheckpoint(path string) ([]dynamics.CellResult, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ncgio: %w", err)
	}
	out, clean := DecodePrefix(data)
	if clean < len(data) {
		if err := os.Truncate(path, int64(clean)); err != nil {
			return out, fmt.Errorf("ncgio: repairing torn checkpoint: %w", err)
		}
	}
	return out, nil
}

// LoadCheckpoint reads a checkpoint without repairing it: the clean prefix
// of records is returned and any torn or in-flight tail is ignored,
// leaving the file untouched. Safe on a checkpoint another process — or a
// live runner in this one — is still appending to.
func LoadCheckpoint(path string) ([]dynamics.CellResult, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ncgio: %w", err)
	}
	out, _ := DecodePrefix(data)
	return out, nil
}

// DecodePrefix decodes the clean whole-line prefix of checkpoint bytes,
// returning the records and the byte offset just past the last clean one
// (a torn or corrupt tail is left unconsumed rather than erroring, so
// incremental readers can retry it once more bytes land).
func DecodePrefix(data []byte) (out []dynamics.CellResult, clean int) {
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := bytes.TrimSpace(data[off : off+nl])
		off += nl + 1
		if len(line) == 0 {
			clean = off
			continue
		}
		rec, err := UnmarshalCellResult(line)
		if err != nil {
			break // torn or corrupt record: keep the prefix before it
		}
		out = append(out, rec)
		clean = off
	}
	return out, clean
}

// CheckpointWriter appends CellResult lines to a checkpoint file. Each
// record is handed to the OS as one whole-line write (so concurrent
// readers only ever observe complete lines, barring a crash), and the
// file is fsynced every SyncEvery records and on Close, bounding how much
// a crash can lose — ReadCheckpoint repairs any torn tail.
type CheckpointWriter struct {
	f         *os.File
	since     int
	SyncEvery int
	// scratch assembles line+'\n' so each append is one whole-line write
	// without a fresh per-record allocation (the daemon pays AppendLine
	// once per finished cell).
	scratch []byte
}

// NewCheckpointWriter opens path for appending, creating it as needed.
func NewCheckpointWriter(path string) (*CheckpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ncgio: %w", err)
	}
	return &CheckpointWriter{f: f, SyncEvery: 32}, nil
}

// Append writes one result as a JSONL line.
func (w *CheckpointWriter) Append(r dynamics.CellResult) error {
	line, err := MarshalCellResult(r)
	if err != nil {
		return err
	}
	return w.AppendLine(line)
}

// AppendLine writes one pre-marshaled line (as produced by
// MarshalCellResult, without the newline).
func (w *CheckpointWriter) AppendLine(line []byte) error {
	w.scratch = append(w.scratch[:0], line...)
	w.scratch = append(w.scratch, '\n')
	if _, err := w.f.Write(w.scratch); err != nil {
		return err
	}
	w.since++
	if w.since >= w.SyncEvery {
		return w.Sync()
	}
	return nil
}

// Sync fsyncs the file.
func (w *CheckpointWriter) Sync() error {
	w.since = 0
	return w.f.Sync()
}

// Close syncs and closes the underlying file.
func (w *CheckpointWriter) Close() error {
	serr := w.Sync()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
