// Package render draws 2-dimensional torus constructions as ASCII art —
// the textual analogue of the paper's Figures 1 and 2 — and renders
// player views on top of them, so the "defective view" intuition behind
// the lower bounds can be inspected in a terminal.
package render

import (
	"fmt"
	"strings"

	"repro/internal/construction"
	"repro/internal/graph"
)

// TorusASCII renders a d=2 torus as a character grid: intersection
// vertices as '#', path vertices as '+', empty positions as spaces.
// Rows are the first coordinate (mod 2δ₁ℓ), columns the second.
func TorusASCII(t *construction.Torus) (string, error) {
	if t.Params.D != 2 {
		return "", fmt.Errorf("render: ASCII rendering needs d=2, got d=%d", t.Params.D)
	}
	return asciiGrid(t, nil)
}

// TorusASCIIWithView renders the torus with the radius-k view of the
// given vertex highlighted: the center as 'O', visible intersection
// vertices as 'X', visible path vertices as 'x'; invisible vertices keep
// their plain glyphs. This reproduces the red/gray view overlays of
// Figures 1–2.
func TorusASCIIWithView(t *construction.Torus, center, k int) (string, error) {
	if t.Params.D != 2 {
		return "", fmt.Errorf("render: ASCII rendering needs d=2, got d=%d", t.Params.D)
	}
	g := t.State.Graph()
	dist := make([]int, g.N())
	g.BFSWithin(center, k, dist, nil)
	visible := make(map[int]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if dist[v] <= k {
			visible[v] = true
		}
	}
	overlay := &viewOverlay{center: center, visible: visible}
	return asciiGrid(t, overlay)
}

type viewOverlay struct {
	center  int
	visible map[int]bool
}

func asciiGrid(t *construction.Torus, ov *viewOverlay) (string, error) {
	rows := 2 * t.Params.Delta[0] * t.Params.L
	cols := 2 * t.Params.Delta[1] * t.Params.L
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for v, coords := range t.Coords {
		r, c := coords[0], coords[1]
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return "", fmt.Errorf("render: coordinate %v out of grid %dx%d", coords, rows, cols)
		}
		glyph := byte('+')
		if t.Intersection[v] {
			glyph = '#'
		}
		if ov != nil {
			switch {
			case v == ov.center:
				glyph = 'O'
			case ov.visible[v] && t.Intersection[v]:
				glyph = 'X'
			case ov.visible[v]:
				glyph = 'x'
			}
		}
		grid[r][c] = glyph
	}
	var b strings.Builder
	fmt.Fprintf(&b, "torus d=2 ℓ=%d δ=%v (%d vertices; '#' intersection, '+' path", t.Params.L, t.Params.Delta, len(t.Coords))
	if ov != nil {
		b.WriteString("; 'O' center, 'X'/'x' visible")
	}
	b.WriteString(")\n")
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// DegreeProfile renders the degree multiset of a graph as a compact
// "degree^count" line, e.g. "2^60 4^24" — the shape summary used when a
// full drawing is too large.
func DegreeProfile(g *graph.Graph) string {
	counts := map[int]int{}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		counts[d]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	var parts []string
	for d := 0; d <= maxDeg; d++ {
		if counts[d] > 0 {
			parts = append(parts, fmt.Sprintf("%d^%d", d, counts[d]))
		}
	}
	return strings.Join(parts, " ")
}
