package render

import (
	"strings"
	"testing"

	"repro/internal/construction"
	"repro/internal/gen"
)

func fig2Torus(t *testing.T) *construction.Torus {
	t.Helper()
	tor, err := construction.BuildTorus(construction.TorusParams{D: 2, L: 2, Delta: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return tor
}

func TestTorusASCII(t *testing.T) {
	tor := fig2Torus(t)
	out, err := TorusASCII(tor)
	if err != nil {
		t.Fatal(err)
	}
	// Count glyphs in the grid body only (the header legend also contains
	// the glyph characters).
	_, body, _ := strings.Cut(out, "\n")
	if strings.Count(body, "#") != 24 {
		t.Fatalf("intersection glyphs=%d, want 24:\n%s", strings.Count(body, "#"), out)
	}
	if strings.Count(body, "+") != 72-24 {
		t.Fatalf("path glyphs=%d, want 48:\n%s", strings.Count(body, "+"), out)
	}
	// Grid dimensions: 2·3·2 = 12 rows of 2·4·2 = 16 columns.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // header + 12 rows
		t.Fatalf("lines=%d, want 13", len(lines))
	}
	if len(lines[1]) != 16 {
		t.Fatalf("row width=%d, want 16", len(lines[1]))
	}
}

func TestTorusASCIIWithView(t *testing.T) {
	tor := fig2Torus(t)
	kStar := 2 * (3 - 1) // ℓ(δ₁−1) = 4
	center := tor.VertexAt([]int{kStar, kStar})
	if center < 0 {
		t.Fatal("marked vertex missing")
	}
	out, err := TorusASCIIWithView(tor, center, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, body, _ := strings.Cut(out, "\n")
	if strings.Count(body, "O") != 1 {
		t.Fatalf("center glyph count != 1:\n%s", out)
	}
	if !strings.Contains(body, "X") || !strings.Contains(body, "x") {
		t.Fatalf("view overlay missing:\n%s", out)
	}
	// The view at k=4 is a strict subset: plain glyphs must remain.
	if !strings.Contains(body, "#") && !strings.Contains(body, "+") {
		t.Fatalf("no invisible vertices at k=4 on a 72-vertex torus:\n%s", out)
	}
}

func TestTorusASCIIRejects3D(t *testing.T) {
	tor, err := construction.BuildTorus(construction.TorusParams{D: 3, L: 2, Delta: []int{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TorusASCII(tor); err == nil {
		t.Fatal("3-d torus accepted")
	}
	if _, err := TorusASCIIWithView(tor, 0, 2); err == nil {
		t.Fatal("3-d view accepted")
	}
}

func TestDegreeProfile(t *testing.T) {
	if got := DegreeProfile(gen.Star(5)); got != "1^4 4^1" {
		t.Fatalf("star profile: %q", got)
	}
	if got := DegreeProfile(gen.Cycle(6)); got != "2^6" {
		t.Fatalf("cycle profile: %q", got)
	}
}
