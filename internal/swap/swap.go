// Package swap implements the basic network creation game of Alon,
// Demaine, Hajiaghayi & Leighton (2013) under the locality model: a
// player's only move is to SWAP one endpoint of an edge she owns (no
// purchases, no deletions, no edge price α). The §3.1 torus is a direct
// generalization of Alon et al.'s swap-stable torus, so this package is
// the natural baseline for the paper's lower-bound construction — a
// graph that is swap-stable is the degenerate "α → ∞ with fixed edge
// count" limit of the creation game.
//
// Locality applies exactly as in the main game: a player evaluates a
// swap on her k-neighborhood view, and for the MAX objective the
// worst-case realizable network coincides with the view (the Prop. 2.1
// argument only uses that the view is a subgraph certificate, which
// holds verbatim when the move set shrinks).
package swap

import (
	"repro/internal/game"
	"repro/internal/view"
)

// SwapMove is a candidate move: replace owned edge (u, Old) by (u, New).
type SwapMove struct {
	Player int
	Old    int
	New    int
}

// Objective selects the usage cost a swap tries to reduce.
type Objective int

const (
	// MaxEcc minimizes the player's eccentricity in her view (the MAX
	// objective of the basic game).
	MaxEcc Objective = iota
	// SumDist minimizes the sum of view distances (the SUM objective).
	SumDist
)

// BestSwap returns the best improving swap for player u on her radius-k
// view, or ok=false when no swap strictly reduces the objective. Swaps
// that disconnect the view (pushing some visible vertex to infinity) are
// never improving and are skipped implicitly by the usage comparison.
//
// The scan runs on a pooled view.Workspace: the view is extracted once,
// each removal is an O(ball) distance recompute, and each candidate
// re-attachment is an incremental relax/undo. Results are identical to
// the retained reference implementation (refBestSwap): same move, same
// strict-integer tie-breaks.
func BestSwap(s *game.State, u, k int, obj Objective) (SwapMove, bool) {
	ws := view.GetWorkspace()
	m, ok := bestSwap(ws, s, u, k, obj)
	view.PutWorkspace(ws)
	return m, ok
}

func bestSwap(ws *view.Workspace, s *game.State, u, k int, obj Objective) (SwapMove, bool) {
	cost := func() int {
		switch obj {
		case MaxEcc:
			return ws.EccAll()
		case SumDist:
			return ws.SumAll()
		default:
			panic("swap: unknown objective")
		}
	}
	ws.Extract(s.Graph(), u, k)
	ws.ResetBase(ws.CenterAdj)
	bestUsage := cost()
	best := SwapMove{}
	found := false
	b := ws.Size()
	edges := make([]int32, 0, len(ws.CenterAdj))
	for _, old := range s.Strategy(u) {
		lOld := ws.LocalOf(old)
		if lOld < 0 {
			continue // bought edge whose endpoint left the view: untouchable
		}
		doubleOwned := s.Buys(old, u)
		edges = edges[:0]
		for _, l := range ws.CenterAdj {
			if int(l) == lOld && !doubleOwned {
				continue
			}
			edges = append(edges, l)
		}
		ws.ResetBase(edges)
		for l := 1; l < b; l++ {
			if l == lOld {
				continue
			}
			// Distance 1 from the center means the edge already exists in
			// the swapped graph (only center edges reach distance 1), so
			// adding it would be a no-op — the reference's !added case.
			if ws.CurDist(l) == 1 {
				continue
			}
			mark := ws.Mark()
			ws.AddEdgeRelax(int32(l))
			c := cost()
			ws.Undo(mark)
			if c < bestUsage {
				bestUsage = c
				best = SwapMove{Player: u, Old: old, New: int(ws.Orig[l])}
				found = true
			}
		}
	}
	return best, found
}

// Apply executes a swap on the state.
func Apply(s *game.State, m SwapMove) {
	s.Unbuy(m.Player, m.Old)
	s.Buy(m.Player, m.New)
}

// IsSwapStable reports whether no player has an improving swap — the
// local-knowledge analogue of Alon et al.'s swap equilibrium.
func IsSwapStable(s *game.State, k int, obj Objective) bool {
	for u := 0; u < s.N(); u++ {
		if _, ok := BestSwap(s, u, k, obj); ok {
			return false
		}
	}
	return true
}

// Result summarizes a swap dynamics run.
type Result struct {
	Converged bool
	Rounds    int
	Swaps     int
}

// Run iterates round-robin best-swap dynamics until no player can
// improve, or maxRounds elapses.
func Run(s *game.State, k int, obj Objective, maxRounds int) Result {
	if maxRounds <= 0 {
		maxRounds = 200
	}
	var res Result
	for round := 1; round <= maxRounds; round++ {
		res.Rounds = round
		moved := 0
		for u := 0; u < s.N(); u++ {
			if m, ok := BestSwap(s, u, k, obj); ok {
				Apply(s, m)
				moved++
			}
		}
		res.Swaps += moved
		if moved == 0 {
			res.Converged = true
			return res
		}
	}
	return res
}
