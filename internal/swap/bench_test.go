package swap

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
)

func benchStateSwap(n int) *game.State {
	rng := rand.New(rand.NewSource(1))
	g := gen.RandomTree(n, rng)
	return game.FromGraphRandomOwners(g, rng)
}

func BenchmarkBestSwapSum(b *testing.B) {
	s := benchStateSwap(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestSwap(s, i%s.N(), 3, SumDist)
	}
}

func BenchmarkBestSwapMax(b *testing.B) {
	s := benchStateSwap(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestSwap(s, i%s.N(), 3, MaxEcc)
	}
}
