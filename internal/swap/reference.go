package swap

import (
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/view"
)

// This file retains the original clone-and-BFS swap scan, verbatim except
// for the ref prefix, as the executable specification for BestSwap. The
// differential tests pin the two against each other on randomized states.

// usage evaluates the objective for the center of a modified view graph.
func usage(h *graph.Graph, center int, obj Objective) int {
	dist := make([]int, h.N())
	h.BFS(center, dist, nil)
	switch obj {
	case MaxEcc:
		ecc := 0
		for _, d := range dist {
			if d > ecc {
				ecc = d
			}
		}
		return ecc
	case SumDist:
		sum := 0
		for _, d := range dist {
			sum += d
		}
		return sum
	default:
		panic("swap: unknown objective")
	}
}

// refBestSwap is the reference implementation of BestSwap.
func refBestSwap(s *game.State, u, k int, obj Objective) (SwapMove, bool) {
	v := view.Extract(s.Graph(), u, k)
	base := usage(v.H, v.Center, obj)
	best := SwapMove{}
	bestUsage := base
	found := false
	for _, old := range s.Strategy(u) {
		lOld, okOld := v.Local[old]
		if !okOld {
			continue // bought edge whose endpoint left the view: untouchable
		}
		doubleOwned := s.Buys(old, u)
		for _, cand := range v.Orig {
			if cand == u || cand == old {
				continue
			}
			lCand := v.Local[cand]
			h := v.H.Clone()
			if !doubleOwned {
				h.RemoveEdge(v.Center, lOld)
			}
			added := h.AddEdge(v.Center, lCand)
			cost := usage(h, v.Center, obj)
			if cost < bestUsage && added {
				bestUsage = cost
				best = SwapMove{Player: u, Old: old, New: cand}
				found = true
			}
		}
	}
	return best, found
}
