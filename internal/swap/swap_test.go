package swap

import (
	"math/rand"
	"testing"

	"repro/internal/construction"
	"repro/internal/game"
	"repro/internal/gen"
)

func TestBestSwapOnPathEndOwner(t *testing.T) {
	// Path 0-1-2-3-4; player 0 owns (0,1). Swapping (0,1)→(0,2) with full
	// view reduces her eccentricity from 4 to 3.
	s := game.FromGraphLowOwners(gen.Path(5))
	m, ok := BestSwap(s, 0, 10, MaxEcc)
	if !ok {
		t.Fatal("no improving swap found")
	}
	if m.Old != 1 || m.New != 2 {
		t.Fatalf("swap %+v, want (0,1)->(0,2)", m)
	}
	Apply(s, m)
	if !s.Graph().HasEdge(0, 2) || s.Graph().HasEdge(0, 1) {
		t.Fatal("apply failed")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStarIsSwapStable(t *testing.T) {
	s := game.NewState(7)
	for v := 1; v < 7; v++ {
		s.Buy(v, 0)
	}
	for _, obj := range []Objective{MaxEcc, SumDist} {
		if !IsSwapStable(s, 3, obj) {
			t.Fatalf("star not swap-stable under %v", obj)
		}
	}
}

func TestSwapStabilityUnderLocality(t *testing.T) {
	// A long cycle with k small: no player sees far enough to know a
	// better endpoint, and any swap within the view breaks the cycle
	// locally (raising her view eccentricity). Must be swap-stable.
	n, k := 20, 2
	s := game.NewState(n)
	for i := 0; i < n; i++ {
		s.Buy(i, (i+1)%n)
	}
	if !IsSwapStable(s, k, MaxEcc) {
		t.Fatal("locality cycle not swap-stable at k=2")
	}
}

func TestTorusSwapStable(t *testing.T) {
	// The §3.1 torus generalizes Alon et al.'s swap-stable construction;
	// at the Theorem 3.12 view radius it must be swap-stable too (swap
	// moves are a subset of the creation game's strategy space, under
	// which the construction was already audited).
	tor, err := construction.BuildTorus(construction.TorusParams{D: 2, L: 2, Delta: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSwapStable(tor.State, 4, MaxEcc) {
		t.Fatal("Theorem 3.12 torus is not swap-stable at k=4")
	}
}

func TestRunConvergesOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		s := game.FromGraphRandomOwners(gen.RandomTree(20, rng), rng)
		res := Run(s, 3, MaxEcc, 100)
		if !res.Converged {
			t.Fatalf("trial %d: swap dynamics did not converge (%d swaps)", trial, res.Swaps)
		}
		if !IsSwapStable(s, 3, MaxEcc) {
			t.Fatalf("trial %d: converged state not swap-stable", trial)
		}
	}
}

func TestSwapPreservesEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := game.FromGraphRandomOwners(gen.RandomTree(15, rng), rng)
	before := s.TotalBought()
	Run(s, 3, SumDist, 50)
	if s.TotalBought() != before {
		t.Fatalf("swap dynamics changed bought count %d -> %d", before, s.TotalBought())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSumObjectiveSwap(t *testing.T) {
	s := game.FromGraphLowOwners(gen.Path(7))
	m, ok := BestSwap(s, 0, 10, SumDist)
	if !ok {
		t.Fatal("no SUM swap on a path end")
	}
	if m.New == 1 {
		t.Fatal("swap to the same endpoint")
	}
}

func TestUsagePanicsOnUnknownObjective(t *testing.T) {
	s := game.FromGraphLowOwners(gen.Path(4))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BestSwap(s, 0, 3, Objective(9))
}
