package swap

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Pins the workspace-backed BestSwap against the retained clone-and-BFS
// reference (reference.go) on randomized states: same move, same found
// flag, at every state best-swap dynamics actually visits.

func diffGraphs(rng *rand.Rand) []*graph.Graph {
	return []*graph.Graph{
		gen.Path(8),
		gen.Cycle(9),
		gen.Star(8),
		gen.Grid(3, 4),
		gen.Torus(3, 3),
		gen.RandomTree(12, rng),
		gen.RandomTree(18, rng),
		gen.GNP(12, 0.3, rng),
	}
}

func TestBestSwapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for gi, g := range diffGraphs(rng) {
		for _, obj := range []Objective{MaxEcc, SumDist} {
			s := game.FromGraphRandomOwners(g.Clone(), rng)
			for _, k := range []int{1, 2, 3, 1000} {
				// Walk the dynamics on the reference move so both
				// implementations see every intermediate state.
				for step := 0; step < 3; step++ {
					var applied bool
					for u := 0; u < s.N(); u++ {
						got, gotOK := BestSwap(s, u, k, obj)
						want, wantOK := refBestSwap(s, u, k, obj)
						if gotOK != wantOK || got != want {
							t.Fatalf("BestSwap[g=%d obj=%d u=%d k=%d step=%d]: (%+v,%v), reference (%+v,%v)",
								gi, obj, u, k, step, got, gotOK, want, wantOK)
						}
						if wantOK && !applied {
							Apply(s, want)
							applied = true
						}
					}
					if !applied {
						break
					}
				}
			}
		}
	}
}

func TestBestSwapPoolReuse(t *testing.T) {
	// Back-to-back calls with different ball sizes must not leak state
	// through the pooled workspace.
	rng := rand.New(rand.NewSource(7))
	big := game.FromGraphRandomOwners(gen.RandomTree(30, rng), rng)
	small := game.FromGraphRandomOwners(gen.Path(5), rng)
	for i := 0; i < 10; i++ {
		s, n := big, 30
		if i%2 == 1 {
			s, n = small, 5
		}
		u := i % n
		got, gotOK := BestSwap(s, u, 2, SumDist)
		want, wantOK := refBestSwap(s, u, 2, SumDist)
		if gotOK != wantOK || got != want {
			t.Fatalf("iteration %d: (%+v,%v), reference (%+v,%v)", i, got, gotOK, want, wantOK)
		}
	}
}
