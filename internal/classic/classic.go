// Package classic implements the full-knowledge baselines the paper
// compares against: the classical MAXNCG of Demaine et al. /
// Mihalák–Schlegel and the classical SUMNCG of Fabrikant et al. It
// provides exact best responses without the locality machinery, canonical
// equilibrium facts (star/clique stability thresholds), and the published
// PoA upper bounds as evaluatable shapes.
package classic

import (
	"math"

	"repro/internal/bestresponse"
	"repro/internal/game"
)

// BestResponse computes an exact full-knowledge best response: the
// locality responder with a view radius covering the whole network
// (Proposition 2.1 makes the two games coincide when the view is
// complete, which is the bridge the paper's experiments use as k=1000).
func BestResponse(s *game.State, u int, variant game.Variant, alpha float64) bestresponse.Response {
	k := s.N() // a radius-n ball covers any connected n-vertex graph
	switch variant {
	case game.Max:
		return bestresponse.MaxBestResponse(s, u, k, alpha)
	case game.Sum:
		r := bestresponse.SumBestResponseExhaustive(s, u, k, alpha, 20)
		if r.Feasible {
			return r.Response
		}
		return bestresponse.SumGreedyResponse(s, u, k, alpha)
	default:
		panic("classic: unknown variant")
	}
}

// IsNE audits full-knowledge Nash stability with the exact responder
// (exact for MAXNCG; exact for SUMNCG up to the view-size gate).
func IsNE(s *game.State, variant game.Variant, alpha float64) bool {
	for u := 0; u < s.N(); u++ {
		if BestResponse(s, u, variant, alpha).Improving {
			return false
		}
	}
	return true
}

// StarState builds the canonical star profile: each leaf buys its edge
// to center 0 (the social optimum for α >= 1 in both variants, §3–4).
func StarState(n int) *game.State {
	s := game.NewState(n)
	for v := 1; v < n; v++ {
		s.Buy(v, 0)
	}
	return s
}

// CliqueState builds the complete-graph profile with each edge bought by
// its lower endpoint (the social optimum as α → 0).
func CliqueState(n int) *game.State {
	s := game.NewState(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			s.Buy(u, v)
		}
	}
	return s
}

// StarIsNEMax reports whether the spanning star is a Nash equilibrium of
// full-knowledge MAXNCG at this α. A leaf's options: drop her edge
// (disconnects, infinite cost), or buy j >= 1 extra edges (cost grows;
// eccentricity can only drop from 2 to 1 by connecting to everyone).
// Buying all n-2 other edges turns her into a center: saves 1 usage for
// α(n-2) extra building, improving iff α(n-2) < 1. The center never
// benefits from buying. Hence the star is a NE iff α >= 1/(n-2)
// (and always for n <= 3 where eccentricity is already 1..2).
func StarIsNEMax(n int, alpha float64) bool {
	if n <= 3 {
		return true
	}
	return alpha >= 1/float64(n-2)
}

// StarIsNESum reports whether the spanning star is a Nash equilibrium of
// full-knowledge SUMNCG at this α. A leaf buying one extra edge towards
// another leaf saves exactly 1 on her status (distance 2 → 1) at price
// α, so the star is a NE iff α >= 1 (the classical fact from Fabrikant
// et al.: the star is stable for α >= 1).
func StarIsNESum(n int, alpha float64) bool {
	if n <= 2 {
		return true
	}
	return alpha >= 1
}

// CliqueIsNESum reports whether the clique profile is a Nash equilibrium
// of SUMNCG: dropping one bought edge saves α and costs exactly 1 of
// status, so the clique is stable iff α <= 1.
func CliqueIsNESum(alpha float64) bool { return alpha <= 1 }

// CliqueIsNEMax reports whether the lower-owner clique profile is a Nash
// equilibrium of MAXNCG. Unlike SUMNCG, a player can drop ALL BUT ONE of
// her bought edges in a single move and still sit at eccentricity 2, so
// the binding constraint is player 0's (who buys n-1 edges): she saves
// (n-2)·α for +1 eccentricity. Stability therefore requires
// α <= 1/(n-2) for n >= 3 (n <= 2 is trivially stable).
func CliqueIsNEMax(n int, alpha float64) bool {
	if n <= 2 {
		return true
	}
	return alpha <= 1/float64(n-2)
}

// MaxPoAUpper evaluates the published full-knowledge MAXNCG PoA shape
// (Mihalák–Schlegel 2013): constant for α >= 129, constant for
// α = O(1/√n), and 2^O(√log n) in between. Constants are set to 1.
func MaxPoAUpper(n int, alpha float64) float64 {
	nf := float64(n)
	if alpha >= 129 || alpha <= 1/math.Sqrt(nf) {
		return 1
	}
	return math.Pow(2, math.Sqrt(math.Max(math.Log2(nf), 0)))
}

// SumPoAUpper evaluates the published full-knowledge SUMNCG PoA shape:
// constant outside n^(1-ε) <= α < 65n (Mamageishvili et al.,
// Mihalák–Schlegel), 2^O(√log n) inside (Demaine et al.). ε is fixed to
// 1/log n as in the paper's introduction; constants are set to 1.
func SumPoAUpper(n int, alpha float64) float64 {
	nf := float64(n)
	logn := math.Max(math.Log2(nf), 1)
	lower := math.Pow(nf, 1-1/logn)
	if alpha >= lower && alpha < 65*nf {
		return math.Pow(2, math.Sqrt(logn))
	}
	return 1
}
