package classic

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
)

func TestStarIsNEMaxThreshold(t *testing.T) {
	// Exact audit vs closed form across a grid.
	for _, n := range []int{4, 6, 9} {
		for _, alpha := range []float64{0.05, 1.0 / float64(n-2) * 0.9, 1.0/float64(n-2) + 0.01, 0.8, 2} {
			want := StarIsNEMax(n, alpha)
			got := IsNE(StarState(n), game.Max, alpha)
			if got != want {
				t.Fatalf("n=%d α=%v: audit=%v formula=%v", n, alpha, got, want)
			}
		}
	}
}

func TestStarIsNESumThreshold(t *testing.T) {
	for _, n := range []int{4, 6} {
		for _, alpha := range []float64{0.5, 0.99, 1.01, 3} {
			want := StarIsNESum(n, alpha)
			got := IsNE(StarState(n), game.Sum, alpha)
			if got != want {
				t.Fatalf("n=%d α=%v: audit=%v formula=%v", n, alpha, got, want)
			}
		}
	}
}

func TestCliqueIsNEThresholds(t *testing.T) {
	for _, n := range []int{3, 5} {
		for _, alpha := range []float64{0.5, 0.99, 1.01, 2} {
			if got, want := IsNE(CliqueState(n), game.Sum, alpha), CliqueIsNESum(alpha); got != want {
				t.Fatalf("SUM clique n=%d α=%v: audit=%v formula=%v", n, alpha, got, want)
			}
			if got, want := IsNE(CliqueState(n), game.Max, alpha), CliqueIsNEMax(n, alpha); got != want {
				t.Fatalf("MAX clique n=%d α=%v: audit=%v formula=%v", n, alpha, got, want)
			}
		}
	}
}

func TestBestResponseMatchesLocalAtFullRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(8)
		s := game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
		u := rng.Intn(n)
		r := BestResponse(s, u, game.Max, 1.5)
		if r.Improving && r.Cost >= r.CurrentCost {
			t.Fatalf("trial %d: inconsistent response %+v", trial, r)
		}
	}
}

func TestIsNEAfterClassicDynamics(t *testing.T) {
	// Iterate classical best responses to a fixed point by hand and
	// verify stability.
	rng := rand.New(rand.NewSource(4))
	s := game.FromGraphRandomOwners(gen.RandomTree(12, rng), rng)
	for round := 0; round < 50; round++ {
		moved := false
		for u := 0; u < s.N(); u++ {
			r := BestResponse(s, u, game.Max, 2)
			if r.Improving {
				s.SetStrategy(u, r.Strategy)
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	if !IsNE(s, game.Max, 2) {
		t.Fatal("fixed point is not a NE")
	}
}

func TestPoAUpperShapes(t *testing.T) {
	// Constant regimes.
	if MaxPoAUpper(100000, 200) != 1 {
		t.Fatal("MAX α >= 129 should be constant")
	}
	if MaxPoAUpper(1000000, 0.0001) != 1 {
		t.Fatal("MAX tiny α should be constant")
	}
	if MaxPoAUpper(100000, 5) <= 1 {
		t.Fatal("MAX middle range should exceed constants")
	}
	// SUM: middle range n^(1-ε) <= α < 65n.
	if SumPoAUpper(1024, 600) <= 1 {
		t.Fatal("SUM middle range should exceed constants")
	}
	if SumPoAUpper(1024, 1e6) != 1 {
		t.Fatal("SUM α >= 65n should be constant")
	}
	if SumPoAUpper(1024, 2) != 1 {
		t.Fatal("SUM small α should be constant")
	}
}

func TestStarCliqueStateShapes(t *testing.T) {
	star := StarState(6)
	if star.Graph().MaxDegree() != 5 || star.TotalBought() != 5 {
		t.Fatal("star shape")
	}
	clique := CliqueState(5)
	if clique.Graph().M() != 10 || clique.TotalBought() != 10 {
		t.Fatal("clique shape")
	}
	if err := star.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := clique.Validate(); err != nil {
		t.Fatal(err)
	}
}
