package game

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestVariantString(t *testing.T) {
	if Max.String() != "MAXNCG" || Sum.String() != "SUMNCG" {
		t.Fatalf("variant strings: %s, %s", Max, Sum)
	}
	if Variant(9).String() != "Variant(9)" {
		t.Fatalf("unknown variant string: %s", Variant(9))
	}
}

func TestBuyUnbuy(t *testing.T) {
	s := NewState(4)
	if !s.Buy(0, 1) {
		t.Fatal("first Buy failed")
	}
	if s.Buy(0, 1) {
		t.Fatal("duplicate Buy succeeded")
	}
	if s.Buy(2, 2) {
		t.Fatal("self Buy succeeded")
	}
	if !s.Graph().HasEdge(0, 1) {
		t.Fatal("network missing bought edge")
	}
	if !s.Unbuy(0, 1) {
		t.Fatal("Unbuy failed")
	}
	if s.Unbuy(0, 1) {
		t.Fatal("double Unbuy succeeded")
	}
	if s.Graph().HasEdge(0, 1) {
		t.Fatal("network kept edge after sole buyer left")
	}
}

func TestDoubleOwnership(t *testing.T) {
	s := NewState(3)
	s.Buy(0, 1)
	s.Buy(1, 0)
	if s.Graph().M() != 1 {
		t.Fatalf("network m=%d, want 1 (edge bought twice)", s.Graph().M())
	}
	if s.TotalBought() != 2 {
		t.Fatalf("TotalBought=%d, want 2", s.TotalBought())
	}
	// Removing one buyer keeps the edge alive.
	s.Unbuy(0, 1)
	if !s.Graph().HasEdge(0, 1) {
		t.Fatal("edge vanished while still bought by the other endpoint")
	}
	s.Unbuy(1, 0)
	if s.Graph().HasEdge(0, 1) {
		t.Fatal("edge survived with no buyer")
	}
}

func TestSetStrategy(t *testing.T) {
	s := NewState(5)
	s.SetStrategy(0, []int{1, 2, 3})
	if s.BoughtCount(0) != 3 || s.Graph().Degree(0) != 3 {
		t.Fatalf("after set: bought=%d deg=%d", s.BoughtCount(0), s.Graph().Degree(0))
	}
	s.SetStrategy(0, []int{2, 4})
	got := s.Strategy(0)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Strategy(0)=%v, want [2 4]", got)
	}
	if s.Graph().HasEdge(0, 1) || s.Graph().HasEdge(0, 3) {
		t.Fatal("stale edges after strategy replacement")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetStrategyPreservesOthersEdges(t *testing.T) {
	s := NewState(3)
	s.Buy(1, 0) // player 1 owns (0,1)
	s.SetStrategy(0, []int{2})
	s.SetStrategy(0, nil) // drop everything u owns
	if !s.Graph().HasEdge(0, 1) {
		t.Fatal("clearing player 0's strategy removed an edge owned by player 1")
	}
	if s.Graph().HasEdge(0, 2) {
		t.Fatal("edge owned by player 0 survived strategy clear")
	}
}

func TestSetStrategyPanics(t *testing.T) {
	s := NewState(3)
	for _, bad := range [][]int{{0}, {3}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetStrategy(0, %v) did not panic", bad)
				}
			}()
			s.SetStrategy(0, bad)
		}()
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	s := NewState(3)
	s.Buy(0, 1)
	s.Graph().AddEdge(1, 2) // inject an unowned edge behind the API
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed an unowned edge")
	}
}

func TestPlayerCostStar(t *testing.T) {
	// Star on 5 vertices, center 0 owns nothing, leaves own their edge.
	s := NewState(5)
	for v := 1; v < 5; v++ {
		s.Buy(v, 0)
	}
	alpha := 2.0
	if got := PlayerCost(s, Max, alpha, 0); got != 1 {
		t.Fatalf("center max cost=%v, want 1 (0 bought + ecc 1)", got)
	}
	if got := PlayerCost(s, Max, alpha, 1); got != alpha+2 {
		t.Fatalf("leaf max cost=%v, want %v", got, alpha+2)
	}
	if got := PlayerCost(s, Sum, alpha, 0); got != 4 {
		t.Fatalf("center sum cost=%v, want 4", got)
	}
	// Leaf status: 1 to center + 2*3 to other leaves = 7.
	if got := PlayerCost(s, Sum, alpha, 1); got != alpha+7 {
		t.Fatalf("leaf sum cost=%v, want %v", got, alpha+7)
	}
}

func TestAllPlayerCostsMatchesPlayerCost(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.RandomTree(20, rng)
	s := FromGraphRandomOwners(g, rng)
	for _, variant := range []Variant{Max, Sum} {
		all := AllPlayerCosts(s, variant, 1.5)
		for u := 0; u < s.N(); u++ {
			if want := PlayerCost(s, variant, 1.5, u); all[u] != want {
				t.Fatalf("%v: cost[%d]=%v, want %v", variant, u, all[u], want)
			}
		}
	}
}

func TestSocialCostStarFormula(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 37} {
		star := gen.Star(n)
		s := FromGraphLowOwners(star)
		for _, variant := range []Variant{Max, Sum} {
			for _, alpha := range []float64{0.5, 1, 3} {
				got := SocialCost(s, variant, alpha)
				want := StarSocialCost(n, variant, alpha)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("n=%d %v α=%v: social=%v, formula=%v", n, variant, alpha, got, want)
				}
			}
		}
	}
}

func TestSocialCostCliqueFormula(t *testing.T) {
	for _, n := range []int{2, 3, 6, 9} {
		s := FromGraphLowOwners(gen.Complete(n))
		for _, variant := range []Variant{Max, Sum} {
			got := SocialCost(s, variant, 0.7)
			want := CliqueSocialCost(n, variant, 0.7)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d %v: social=%v, formula=%v", n, variant, got, want)
			}
		}
	}
}

func TestOptimumPicksClique(t *testing.T) {
	// For tiny α the clique beats the star.
	if OptimumSocialCost(10, Max, 0.01) != CliqueSocialCost(10, Max, 0.01) {
		t.Fatal("optimum at α=0.01 should be the clique")
	}
	if OptimumSocialCost(10, Max, 5) != StarSocialCost(10, Max, 5) {
		t.Fatal("optimum at α=5 should be the star")
	}
	if OptimumSocialCost(1, Max, 5) != 0 {
		t.Fatal("single-player optimum should be 0")
	}
}

func TestQualityOfStarIsOne(t *testing.T) {
	s := FromGraphLowOwners(gen.Star(20))
	q := Quality(s, Max, 5)
	if math.Abs(q-1) > 1e-9 {
		t.Fatalf("star quality=%v, want 1", q)
	}
}

func TestUnfairness(t *testing.T) {
	s := NewState(3)
	s.Buy(0, 1)
	s.Buy(1, 2)
	// Max costs at α=1: p0: 1+2=3, p1: 1+1=2, p2: 0+2=2 → 3/2.
	if got := Unfairness(s, Max, 1); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("unfairness=%v, want 1.5", got)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := NewState(4)
	a.Buy(0, 1)
	b := NewState(4)
	b.Buy(1, 0)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint ignores ownership direction")
	}
	c := a.Clone()
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	c.Buy(2, 3)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint ignores added edge")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewState(3)
	s.Buy(0, 1)
	c := s.Clone()
	c.Buy(1, 2)
	if s.Graph().HasEdge(1, 2) {
		t.Fatal("clone mutation leaked into original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraphRandomOwnersValid(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%20)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(n, rng)
		s := FromGraphRandomOwners(g, rng)
		if err := s.Validate(); err != nil {
			return false
		}
		if !s.Graph().Equal(g) {
			return false
		}
		// Every edge bought exactly once.
		return s.TotalBought() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSocialCostNonNegativeAndAboveOpt(t *testing.T) {
	f := func(seed int64, sz uint8, alphaRaw uint8) bool {
		n := 3 + int(sz%15)
		alpha := 0.1 + float64(alphaRaw%40)/4
		rng := rand.New(rand.NewSource(seed))
		tree := gen.RandomTree(n, rng)
		s := FromGraphRandomOwners(tree, rng)
		sc := SocialCost(s, Max, alpha)
		// A connected state's social cost is at least the optimum's usage
		// component; quality must be >= 1 up to float wiggle.
		return sc >= 0 && Quality(s, Max, alpha) >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInfiniteCostForDisconnected(t *testing.T) {
	s := NewState(4)
	s.Buy(0, 1) // vertices 2,3 isolated
	if PlayerCost(s, Max, 1, 0) < InfiniteCost {
		t.Fatal("disconnected player has finite max cost")
	}
	if PlayerCost(s, Sum, 1, 0) < InfiniteCost {
		t.Fatal("disconnected player has finite sum cost")
	}
}

func TestMinMaxBought(t *testing.T) {
	s := NewState(4)
	s.SetStrategy(0, []int{1, 2, 3})
	s.SetStrategy(1, []int{2})
	if s.MaxBought() != 3 || s.MinBought() != 0 {
		t.Fatalf("max=%d min=%d, want 3, 0", s.MaxBought(), s.MinBought())
	}
	var empty State
	_ = empty
	if NewState(0).MinBought() != 0 {
		t.Fatal("empty state MinBought != 0")
	}
}

func TestStrategyDiff(t *testing.T) {
	s := NewState(6)
	s.SetStrategy(0, []int{1, 2, 3})
	diffSet := func(strategy []int) map[int32]bool {
		out := map[int32]bool{}
		for _, v := range s.StrategyDiff(0, strategy, nil) {
			out[v] = true
		}
		return out
	}
	got := diffSet([]int{2, 4})
	want := map[int32]bool{1: true, 3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("diff = %v, want %v", got, want)
	}
	for v := range want {
		if !got[v] {
			t.Fatalf("diff = %v, want %v", got, want)
		}
	}
	if d := diffSet([]int{1, 2, 3}); len(d) != 0 {
		t.Fatalf("identical strategy diff = %v, want empty", d)
	}
	// The diff must not mutate the state, and must reuse the buffer.
	buf := make([]int32, 0, 8)
	out := s.StrategyDiff(0, []int{1, 2, 3, 5}, buf)
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("diff into buf = %v, want [5]", out)
	}
	if got := s.Strategy(0); len(got) != 3 {
		t.Fatalf("StrategyDiff mutated the state: %v", got)
	}
	// Redundant buys are arc changes even when the network edge persists:
	// 1 already reaches 0 through 0's bought edge, but buying (1,0) is a
	// strategy change the journal must report.
	s.SetStrategy(1, nil)
	if d := s.StrategyDiff(1, []int{0}, nil); len(d) != 1 || d[0] != 0 {
		t.Fatalf("redundant-buy diff = %v, want [0]", d)
	}
}

var _ = graph.New // keep import for doc reference
