// Package game implements the network-creation-game core: strategy
// profiles with per-player edge ownership, the MAX (Eq. 2) and SUM (Eq. 1)
// player cost functions, social cost, and the social-optimum baselines.
//
// A strategy profile σ assigns each player u a bought set σ_u ⊆ V∖{u}.
// The induced network G(σ) contains edge (u,v) iff v ∈ σ_u or u ∈ σ_v
// (unilateral link formation, Fabrikant et al. model). Both endpoints may
// redundantly buy the same link; each buyer pays α for her copy.
package game

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Variant selects the player cost function.
type Variant int

const (
	// Max is MAXNCG: cost = α·|σ_u| + eccentricity (Eq. 2).
	Max Variant = iota
	// Sum is SUMNCG: cost = α·|σ_u| + Σ_v d(u,v) (Eq. 1).
	Sum
)

// String returns "MAXNCG" or "SUMNCG".
func (v Variant) String() string {
	switch v {
	case Max:
		return "MAXNCG"
	case Sum:
		return "SUMNCG"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// State is a mutable strategy profile together with its induced network.
// The network is maintained incrementally as strategies change.
type State struct {
	g    *graph.Graph
	buys []map[int]bool
}

// NewState returns the empty profile on n players (no edges bought).
func NewState(n int) *State {
	buys := make([]map[int]bool, n)
	for i := range buys {
		buys[i] = make(map[int]bool)
	}
	return &State{g: graph.New(n), buys: buys}
}

// N returns the number of players.
func (s *State) N() int { return s.g.N() }

// Graph returns the induced network G(σ). Callers must not mutate it.
func (s *State) Graph() *graph.Graph { return s.g }

// Buys reports whether u currently buys the edge towards v.
func (s *State) Buys(u, v int) bool { return s.buys[u][v] }

// BoughtCount returns |σ_u|.
func (s *State) BoughtCount(u int) int { return len(s.buys[u]) }

// Strategy returns σ_u as a sorted slice.
func (s *State) Strategy(u int) []int {
	out := make([]int, 0, len(s.buys[u]))
	for v := range s.buys[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Buy adds v to σ_u. It returns false when v was already in σ_u or u == v.
func (s *State) Buy(u, v int) bool {
	if u == v || s.buys[u][v] {
		return false
	}
	s.buys[u][v] = true
	s.g.AddEdge(u, v) // no-op when v already bought (u,v)
	return true
}

// Unbuy removes v from σ_u. The edge (u,v) disappears from the network only
// when v does not buy it either. It returns false when v was not in σ_u.
func (s *State) Unbuy(u, v int) bool {
	if !s.buys[u][v] {
		return false
	}
	delete(s.buys[u], v)
	if !s.buys[v][u] {
		s.g.RemoveEdge(u, v)
	}
	return true
}

// SetStrategy replaces σ_u wholesale, updating the network incrementally.
func (s *State) SetStrategy(u int, strategy []int) {
	old := s.Strategy(u)
	want := make(map[int]bool, len(strategy))
	for _, v := range strategy {
		if v == u {
			panic("game: strategy contains the player herself")
		}
		if v < 0 || v >= s.N() {
			panic(fmt.Sprintf("game: strategy target %d out of range", v))
		}
		want[v] = true
	}
	for _, v := range old {
		if !want[v] {
			s.Unbuy(u, v)
		}
	}
	// Buy in the caller's order, not map order: the graph's adjacency
	// lists record insertion order, so iterating the want map here would
	// make BFS orders — and every downstream tie-break — depend on map
	// iteration, breaking run-to-run determinism.
	for _, v := range strategy {
		s.Buy(u, v)
	}
}

// StrategyDiff appends to buf the targets whose arc (u,·) would change if
// σ_u were replaced by strategy — the symmetric difference of the current
// and proposed bought sets — without mutating the state. strategy must be
// sorted ascending (responders return sorted strategies); an unsorted
// slice only over-reports the difference, never under-reports it.
//
// This is the change journal the event-driven dynamics engine diffs
// before calling SetStrategy: the returned targets, together with u, are
// exactly the endpoints of every arc the move adds or removes (including
// redundant buys that leave the network unchanged but alter ownership —
// ownership towards a player is part of her best-response input).
func (s *State) StrategyDiff(u int, strategy []int, buf []int32) []int32 {
	for v := range s.buys[u] {
		if !sortedContains(strategy, v) {
			buf = append(buf, int32(v))
		}
	}
	for _, v := range strategy {
		if !s.buys[u][v] {
			buf = append(buf, int32(v))
		}
	}
	return buf
}

// sortedContains reports whether sorted xs contains v.
func sortedContains(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

// TotalBought returns Σ_u |σ_u| (the total building multiplicity, which can
// exceed the edge count when both endpoints buy a link).
func (s *State) TotalBought() int {
	total := 0
	for _, b := range s.buys {
		total += len(b)
	}
	return total
}

// MaxBought returns the largest |σ_u| over all players.
func (s *State) MaxBought() int {
	max := 0
	for _, b := range s.buys {
		if len(b) > max {
			max = len(b)
		}
	}
	return max
}

// MinBought returns the smallest |σ_u| over all players.
func (s *State) MinBought() int {
	if len(s.buys) == 0 {
		return 0
	}
	min := len(s.buys[0])
	for _, b := range s.buys[1:] {
		if len(b) < min {
			min = len(b)
		}
	}
	return min
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{g: s.g.Clone(), buys: make([]map[int]bool, len(s.buys))}
	for u, b := range s.buys {
		c.buys[u] = make(map[int]bool, len(b))
		for v := range b {
			c.buys[u][v] = true
		}
	}
	return c
}

// Validate checks internal consistency: the network edge set must equal the
// union of bought arcs, with no self-buys. It returns the first violation.
func (s *State) Validate() error {
	n := s.N()
	for u := 0; u < n; u++ {
		for v := range s.buys[u] {
			if v == u {
				return fmt.Errorf("game: player %d buys a self-loop", u)
			}
			if !s.g.HasEdge(u, v) {
				return fmt.Errorf("game: bought edge (%d,%d) missing from network", u, v)
			}
		}
	}
	for _, e := range s.g.Edges() {
		if !s.buys[e.U][e.V] && !s.buys[e.V][e.U] {
			return fmt.Errorf("game: network edge (%d,%d) bought by neither endpoint", e.U, e.V)
		}
	}
	return nil
}

// Fingerprint returns a canonical hash of the full strategy profile, used
// by the dynamics engine to detect best-response cycles (§5.1).
func (s *State) Fingerprint() uint64 {
	// FNV-1a over the sorted arc list.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	for u := 0; u < s.N(); u++ {
		for _, v := range s.Strategy(u) {
			mix(uint64(u)<<32 | uint64(v))
		}
		mix(^uint64(0)) // player separator
	}
	return h
}
