package game

import (
	"math/rand"

	"repro/internal/graph"
)

// FromGraphRandomOwners builds a state whose network equals g, assigning
// the ownership of each edge to one of its endpoints "with a fair coin
// toss" (§5.2).
func FromGraphRandomOwners(g *graph.Graph, rng *rand.Rand) *State {
	s := NewState(g.N())
	for _, e := range g.Edges() {
		if rng.Intn(2) == 0 {
			s.Buy(e.U, e.V)
		} else {
			s.Buy(e.V, e.U)
		}
	}
	return s
}

// FromGraphLowOwners builds a state whose network equals g, with every edge
// bought by its lower-id endpoint. Useful for deterministic tests.
func FromGraphLowOwners(g *graph.Graph) *State {
	s := NewState(g.N())
	for _, e := range g.Edges() {
		s.Buy(e.U, e.V)
	}
	return s
}
