package game

import "repro/internal/graph"

// InfiniteCost is returned for players disconnected from part of the
// network; it dominates every finite cost.
const InfiniteCost = float64(graph.Unreachable)

// PlayerCost returns the cost of player u under the given variant and α:
// α·|σ_u| plus eccentricity (Max) or status (Sum). Disconnected players pay
// at least InfiniteCost.
func PlayerCost(s *State, variant Variant, alpha float64, u int) float64 {
	build := alpha * float64(s.BoughtCount(u))
	switch variant {
	case Max:
		return build + float64(s.g.Eccentricity(u))
	case Sum:
		return build + float64(s.g.SumDistances(u))
	default:
		panic("game: unknown variant")
	}
}

// AllPlayerCosts returns every player's cost, computing the distance terms
// with the parallel BFS fan-out.
func AllPlayerCosts(s *State, variant Variant, alpha float64) []float64 {
	var usage []int
	switch variant {
	case Max:
		usage = s.g.AllEccentricities()
	case Sum:
		usage = s.g.AllSumDistances()
	default:
		panic("game: unknown variant")
	}
	out := make([]float64, s.N())
	for u := range out {
		out[u] = alpha*float64(s.BoughtCount(u)) + float64(usage[u])
	}
	return out
}

// SocialCost returns the sum of all player costs.
func SocialCost(s *State, variant Variant, alpha float64) float64 {
	total := 0.0
	for _, c := range AllPlayerCosts(s, variant, alpha) {
		total += c
	}
	return total
}

// StarSocialCost returns the social cost of the spanning star on n players
// (each leaf buys its edge to the center — ownership does not matter for
// the social cost, which charges α once per bought edge).
func StarSocialCost(n int, variant Variant, alpha float64) float64 {
	if n <= 1 {
		return 0
	}
	build := alpha * float64(n-1)
	switch variant {
	case Max:
		if n == 2 {
			return build + 2 // both endpoints have eccentricity 1
		}
		// Center eccentricity 1, each of the n-1 leaves eccentricity 2.
		return build + 1 + 2*float64(n-1)
	case Sum:
		// Center status n-1; each leaf status 1 + 2(n-2).
		return build + float64(n-1) + float64(n-1)*float64(1+2*(n-2))
	default:
		panic("game: unknown variant")
	}
}

// CliqueSocialCost returns the social cost of the complete graph on n
// players (every distance is 1).
func CliqueSocialCost(n int, variant Variant, alpha float64) float64 {
	if n <= 1 {
		return 0
	}
	build := alpha * float64(n) * float64(n-1) / 2
	usage := float64(n) * float64(n-1)
	if variant == Max {
		usage = float64(n) // eccentricity 1 per player
	}
	return build + usage
}

// OptimumSocialCost returns the social-optimum baseline used to normalize
// equilibrium quality. For α ≥ 1 the spanning star is optimal in both
// variants (§3, §4: "the spanning star is the social optimum"); for α < 1
// denser graphs win, and the complete graph is optimal at α → 0. We take
// the exact minimum of the two closed forms, which is the standard
// denominator for PoA experiments.
func OptimumSocialCost(n int, variant Variant, alpha float64) float64 {
	star := StarSocialCost(n, variant, alpha)
	clique := CliqueSocialCost(n, variant, alpha)
	if clique < star {
		return clique
	}
	return star
}

// Quality returns SocialCost/Optimum — the "quality of equilibrium" plotted
// in Figures 6 and 7. It returns +Inf-like InfiniteCost for disconnected
// states.
func Quality(s *State, variant Variant, alpha float64) float64 {
	opt := OptimumSocialCost(s.N(), variant, alpha)
	if opt == 0 {
		return 1
	}
	return SocialCost(s, variant, alpha) / opt
}

// Unfairness returns the ratio between the highest and lowest player cost
// (Figure 9). It returns 1 for n = 0.
func Unfairness(s *State, variant Variant, alpha float64) float64 {
	costs := AllPlayerCosts(s, variant, alpha)
	if len(costs) == 0 {
		return 1
	}
	lo, hi := costs[0], costs[0]
	for _, c := range costs[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 {
		return InfiniteCost
	}
	return hi / lo
}
