// Package mds solves the (constrained) MINIMUM DOMINATING SET problem that
// the paper's best-response computation reduces to (§5.3). The paper used
// the Gurobi ILP solver; this package substitutes an exact branch-and-bound
// search over bitset-encoded closed neighborhoods (see DESIGN.md §3) with a
// greedy warm start, plus a greedy approximation for callers that prefer
// speed over optimality.
//
// A set S dominates graph G when every vertex is in S or adjacent to a
// vertex of S. The constrained variant starts from a set of forced
// vertices that are already in the solution for free; the solver minimizes
// only the number of additional vertices.
package mds

import (
	"math/bits"

	"repro/internal/graph"
)

// bitset is a fixed-capacity set of vertex ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) orInto(dst, other bitset) {
	for i := range b {
		dst[i] = b[i] | other[i]
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// uncoveredCount counts bits set in full but not in b.
func uncoveredCount(full, covered bitset) int {
	c := 0
	for i := range full {
		c += bits.OnesCount64(full[i] &^ covered[i])
	}
	return c
}

// firstUncovered returns the lowest vertex id present in full but not in
// covered, or -1 when everything is covered.
func firstUncovered(full, covered bitset) int {
	for i := range full {
		if w := full[i] &^ covered[i]; w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// newGain counts how many currently uncovered vertices nb would cover.
func newGain(nb, covered, full bitset) int {
	c := 0
	for i := range nb {
		c += bits.OnesCount64(nb[i] & full[i] &^ covered[i])
	}
	return c
}

// closedNeighborhoods returns N[v] = {v} ∪ N(v) as bitsets.
func closedNeighborhoods(g *graph.Graph) []bitset {
	n := g.N()
	nbs := make([]bitset, n)
	for v := 0; v < n; v++ {
		nb := newBitset(n)
		nb.set(v)
		for _, w := range g.Neighbors(v) {
			nb.set(int(w))
		}
		nbs[v] = nb
	}
	return nbs
}

// MinDominatingExtra returns a minimum-cardinality set S of vertices such
// that forced ∪ S dominates g. The result excludes forced vertices and is
// exact. forced may be nil or empty, in which case the result is a true
// minimum dominating set of g.
func MinDominatingExtra(g *graph.Graph, forced []int) []int {
	set, _ := MinDominatingExtraAtMost(g, forced, g.N()+1)
	return set
}

// MinDominatingExtraAtMost behaves like MinDominatingExtra but only
// searches for solutions of size strictly below cap, returning ok=false
// when none exists. Callers that merely need "is there a dominating set
// cheaper than my incumbent?" (the best-response loop) use the cap to
// skip proving optimality of solutions they would discard anyway.
func MinDominatingExtraAtMost(g *graph.Graph, forced []int, limit int) ([]int, bool) {
	if g.N() == 0 {
		return nil, limit > 0
	}
	if limit <= 0 {
		return nil, false
	}
	return minDominatingExtraAtMost(g.N(), closedNeighborhoods(g), forced, limit)
}

// MinDominatingExtraAtMostBitsets is MinDominatingExtraAtMost for callers
// that already hold the closed neighborhoods of the (implicit) graph as
// bitsets: nbs[v] must contain bit v plus every vertex v dominates, packed
// in (n+63)/64 uint64 words. The best-response hot path builds these
// directly from an all-pairs distance table — one slab per power instead
// of materializing power graphs. The slices are read, never written, and
// the search is the same branch-and-bound as the graph entry point, so
// identical neighborhoods yield identical solutions.
func MinDominatingExtraAtMostBitsets(n int, nbs [][]uint64, forced []int, limit int) ([]int, bool) {
	if n == 0 {
		return nil, limit > 0
	}
	if limit <= 0 {
		return nil, false
	}
	bs := make([]bitset, n)
	for i := range bs {
		bs[i] = bitset(nbs[i])
	}
	return minDominatingExtraAtMost(n, bs, forced, limit)
}

// minDominatingExtraAtMost is the shared core; n > 0 and limit > 0.
func minDominatingExtraAtMost(n int, nbs []bitset, forced []int, limit int) ([]int, bool) {
	full := newBitset(n)
	for v := 0; v < n; v++ {
		full.set(v)
	}
	covered := newBitset(n)
	forcedSet := newBitset(n)
	for _, f := range forced {
		forcedSet.set(f)
		nbs[f].orInto(covered, covered)
	}
	if firstUncovered(full, covered) == -1 {
		return []int{}, true
	}

	s := &solver{
		n:        n,
		nbs:      nbs,
		full:     full,
		forced:   forcedSet,
		bestSize: limit,
	}
	// Greedy warm start tightens the bound when it beats the cap.
	if greedy := greedyExtra(nbs, full, covered.clone(), forcedSet); len(greedy) < limit {
		s.best = greedy
		s.bestSize = len(greedy)
	}
	s.search(covered, nil)
	if s.best == nil {
		return nil, false
	}
	return s.best, true
}

// Greedy returns a greedily built dominating set of g extending forced
// (forced vertices are excluded from the result). The result dominates g
// but need not be minimum.
func Greedy(g *graph.Graph, forced []int) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	nbs := closedNeighborhoods(g)
	full := newBitset(n)
	for v := 0; v < n; v++ {
		full.set(v)
	}
	covered := newBitset(n)
	forcedSet := newBitset(n)
	for _, f := range forced {
		forcedSet.set(f)
		nbs[f].orInto(covered, covered)
	}
	return greedyExtra(nbs, full, covered, forcedSet)
}

// greedyExtra repeatedly picks the vertex covering the most uncovered
// vertices. covered is consumed.
func greedyExtra(nbs []bitset, full, covered, forced bitset) []int {
	var out []int
	n := len(nbs)
	for firstUncovered(full, covered) != -1 {
		bestV, bestGain := -1, 0
		for v := 0; v < n; v++ {
			if forced.has(v) {
				continue
			}
			if gain := newGain(nbs[v], covered, full); gain > bestGain {
				bestGain, bestV = gain, v
			}
		}
		if bestV == -1 {
			// Isolated uncovered vertices cover only themselves.
			u := firstUncovered(full, covered)
			out = append(out, u)
			nbs[u].orInto(covered, covered)
			continue
		}
		out = append(out, bestV)
		nbs[bestV].orInto(covered, covered)
	}
	return out
}

// nodeBudget bounds the branch-and-bound search tree. The budget is far
// above what any experiment-scale instance needs; when it is exhausted the
// solver returns its greedy-seeded incumbent, which is still a valid
// dominating set but no longer certified minimum (Truncated reports this).
const nodeBudget = 4 << 20

type solver struct {
	n        int
	nbs      []bitset
	full     bitset
	forced   bitset
	best     []int // nil until a solution below the cap is found
	bestSize int   // strict size bound for further solutions
	nodes    int   // search nodes expanded
}

// search explores selections in a branch-and-bound over "which vertex
// covers the branching vertex": only vertices in N[u] can cover u, so
// branching on them is complete. The branching vertex is the uncovered
// vertex with the fewest coverers, which minimizes the branching factor.
func (s *solver) search(covered bitset, chosen []int) {
	if len(chosen) >= s.bestSize || s.nodes >= nodeBudget {
		return // cannot improve (or out of budget)
	}
	s.nodes++
	u := s.pickBranchVertex(covered)
	if u == -1 {
		s.best = append(chosen[:0:0], chosen...)
		s.bestSize = len(chosen)
		return
	}
	// Lower bound 1: each new vertex covers at most maxGain uncovered
	// vertices, so at least ceil(uncovered/maxGain) more picks are needed.
	uncov := uncoveredCount(s.full, covered)
	maxGain := 1
	for v := 0; v < s.n; v++ {
		if g := newGain(s.nbs[v], covered, s.full); g > maxGain {
			maxGain = g
		}
	}
	need := (uncov + maxGain - 1) / maxGain
	if len(chosen)+need >= s.bestSize {
		return
	}
	// Lower bound 2 (packing): uncovered vertices whose closed
	// neighborhoods are pairwise disjoint each require a distinct pick.
	// Much tighter than LB1 on sparse graphs (paths, cycles, tori).
	if len(chosen)+s.packingBound(covered) >= s.bestSize {
		return
	}
	// Branch over the candidates that can cover u, best gain first.
	var candidates []int
	for v := 0; v < s.n; v++ {
		if s.nbs[u].has(v) {
			candidates = append(candidates, v)
		}
	}
	gains := make(map[int]int, len(candidates))
	for _, c := range candidates {
		gains[c] = newGain(s.nbs[c], covered, s.full)
	}
	for i := 1; i < len(candidates); i++ {
		for j := i; j > 0 && gains[candidates[j]] > gains[candidates[j-1]]; j-- {
			candidates[j], candidates[j-1] = candidates[j-1], candidates[j]
		}
	}
	next := newBitset(s.n)
	for _, c := range candidates {
		s.nbs[c].orInto(next, covered)
		s.search(next.clone(), append(chosen, c))
	}
}

// packingBound greedily collects uncovered vertices with pairwise
// disjoint closed neighborhoods; any dominating set needs one distinct
// vertex per member, so the count lower-bounds the remaining picks.
func (s *solver) packingBound(covered bitset) int {
	blocked := newBitset(s.n)
	count := 0
	for v := 0; v < s.n; v++ {
		if covered.has(v) || !s.full.has(v) {
			continue
		}
		nb := s.nbs[v]
		disjoint := true
		for i := range nb {
			if nb[i]&blocked[i] != 0 {
				disjoint = false
				break
			}
		}
		if !disjoint {
			continue
		}
		count++
		// Block every vertex that could cover v (N[N[v]] would be exact;
		// blocking N[v] plus all vertices whose neighborhood meets N[v] is
		// the correct notion — a vertex w covers v iff v ∈ N[w], i.e.
		// w ∈ N[v]. Two packed vertices must not share a coverer, so it
		// suffices that their closed neighborhoods are disjoint.)
		for i := range nb {
			blocked[i] |= nb[i]
		}
	}
	return count
}

// Truncated reports whether the last search exhausted its node budget
// (result still dominates, but minimality is not certified).
func (s *solver) Truncated() bool { return s.nodes >= nodeBudget }

// pickBranchVertex returns the uncovered vertex with the smallest closed
// neighborhood (fewest possible coverers), or -1 when all are covered.
func (s *solver) pickBranchVertex(covered bitset) int {
	best, bestDeg := -1, 1<<30
	for v := 0; v < s.n; v++ {
		if covered.has(v) || !s.full.has(v) {
			continue
		}
		if d := s.nbs[v].count(); d < bestDeg {
			best, bestDeg = v, d
			if d <= 1 {
				break
			}
		}
	}
	return best
}

// Dominates reports whether forced ∪ set dominates g.
func Dominates(g *graph.Graph, set, forced []int) bool {
	n := g.N()
	covered := make([]bool, n)
	mark := func(v int) {
		covered[v] = true
		for _, w := range g.Neighbors(v) {
			covered[w] = true
		}
	}
	for _, v := range set {
		mark(v)
	}
	for _, v := range forced {
		mark(v)
	}
	for v := 0; v < n; v++ {
		if !covered[v] {
			return false
		}
	}
	return true
}

// BruteForce returns an exact minimum extra dominating set by exhaustive
// subset enumeration. Exponential — reference implementation for tests
// (n <= ~20).
func BruteForce(g *graph.Graph, forced []int) []int {
	n := g.N()
	if n > 25 {
		panic("mds: BruteForce limited to n <= 25")
	}
	forcedIn := make(map[int]bool, len(forced))
	for _, f := range forced {
		forcedIn[f] = true
	}
	var candidates []int
	for v := 0; v < n; v++ {
		if !forcedIn[v] {
			candidates = append(candidates, v)
		}
	}
	var best []int
	found := false
	for mask := 0; mask < 1<<len(candidates); mask++ {
		if found && bits.OnesCount(uint(mask)) >= len(best) {
			continue
		}
		var set []int
		for i, v := range candidates {
			if mask&(1<<i) != 0 {
				set = append(set, v)
			}
		}
		if Dominates(g, set, forced) {
			best = set
			found = true
		}
	}
	if !found {
		return nil
	}
	if best == nil {
		best = []int{}
	}
	return best
}
