package mds

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func benchInstances() []*graph.Graph {
	rng := rand.New(rand.NewSource(1))
	var out []*graph.Graph
	for i := 0; i < 8; i++ {
		out = append(out, gen.RandomTree(60, rng))
	}
	er, err := gen.GNPConnected(80, 0.08, rng, 200)
	if err == nil {
		out = append(out, er)
	}
	return out
}

// BenchmarkExact vs BenchmarkGreedy is the exact-vs-heuristic ablation
// for the §5.3 best-response substrate.
func BenchmarkExact(b *testing.B) {
	instances := benchInstances()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := instances[i%len(instances)]
		if set := MinDominatingExtra(g, nil); len(set) == 0 {
			b.Fatal("empty MDS")
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	instances := benchInstances()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := instances[i%len(instances)]
		if set := Greedy(g, nil); len(set) == 0 {
			b.Fatal("empty greedy set")
		}
	}
}

// BenchmarkExactCapped measures the size-capped search the best-response
// loop uses (the cap makes "no cheap solution exists" answers fast).
func BenchmarkExactCapped(b *testing.B) {
	instances := benchInstances()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := instances[i%len(instances)]
		MinDominatingExtraAtMost(g, nil, 3) // usually infeasible → fast "no"
	}
}

func BenchmarkExactWithForced(b *testing.B) {
	instances := benchInstances()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := instances[i%len(instances)]
		MinDominatingExtra(g, []int{0, 1})
	}
}
