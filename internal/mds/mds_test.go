package mds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestMinDominatingStar(t *testing.T) {
	g := gen.Star(8)
	set := MinDominatingExtra(g, nil)
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("star MDS=%v, want [0]", set)
	}
}

func TestMinDominatingPath(t *testing.T) {
	// Path on 6 vertices: domination number 2 (e.g. {1,4}).
	g := gen.Path(6)
	set := MinDominatingExtra(g, nil)
	if len(set) != 2 {
		t.Fatalf("P6 MDS size=%d (%v), want 2", len(set), set)
	}
	if !Dominates(g, set, nil) {
		t.Fatalf("P6 MDS %v does not dominate", set)
	}
}

func TestMinDominatingCycle(t *testing.T) {
	// C_9 has domination number 3.
	g := gen.Cycle(9)
	set := MinDominatingExtra(g, nil)
	if len(set) != 3 || !Dominates(g, set, nil) {
		t.Fatalf("C9 MDS=%v, want size 3", set)
	}
}

func TestMinDominatingComplete(t *testing.T) {
	g := gen.Complete(7)
	set := MinDominatingExtra(g, nil)
	if len(set) != 1 {
		t.Fatalf("K7 MDS=%v, want single vertex", set)
	}
}

func TestMinDominatingEmptyGraph(t *testing.T) {
	if got := MinDominatingExtra(graph.New(0), nil); got != nil {
		t.Fatalf("empty graph MDS=%v, want nil", got)
	}
	// Edgeless graph: every vertex must dominate itself.
	g := graph.New(4)
	set := MinDominatingExtra(g, nil)
	if len(set) != 4 {
		t.Fatalf("edgeless MDS=%v, want all 4 vertices", set)
	}
}

func TestForcedAlreadyDominates(t *testing.T) {
	g := gen.Star(6)
	set := MinDominatingExtra(g, []int{0})
	if len(set) != 0 {
		t.Fatalf("forced star center should need no extras, got %v", set)
	}
}

func TestForcedPartialCoverage(t *testing.T) {
	// Path 0-1-2-3-4-5, forced {0}: N[0]={0,1}; remaining {2,3,4,5} need 1
	// more vertex (3 or 4 covers {2,3,4} / {3,4,5}) — actually vertex 3
	// covers {2,3,4}, leaving 5 uncovered → need vertex 4: N[4]={3,4,5},
	// leaves 2 uncovered. So optimum is 2 extras? No: {3} leaves 5, {4}
	// leaves 2 — single extra impossible; optimum 2 is wrong too — try
	// {2,5}? no wait {2,4}: N[2]={1,2,3}, N[4]={3,4,5} → covers all. So 2.
	g := gen.Path(6)
	set := MinDominatingExtra(g, []int{0})
	if len(set) != 2 || !Dominates(g, set, []int{0}) {
		t.Fatalf("forced-path extras=%v, want size 2", set)
	}
}

func TestGreedyDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20; i++ {
		g := gen.RandomTree(40, rng)
		set := Greedy(g, nil)
		if !Dominates(g, set, nil) {
			t.Fatalf("greedy set %v does not dominate", set)
		}
	}
}

func TestGreedyWithForced(t *testing.T) {
	g := gen.Path(8)
	set := Greedy(g, []int{3})
	if !Dominates(g, set, []int{3}) {
		t.Fatalf("greedy+forced does not dominate: %v", set)
	}
	for _, v := range set {
		if v == 3 {
			t.Fatal("greedy result contains a forced vertex")
		}
	}
}

func TestDominates(t *testing.T) {
	g := gen.Path(4)
	if Dominates(g, []int{0}, nil) {
		t.Fatal("vertex 0 should not dominate P4")
	}
	if !Dominates(g, []int{1, 3}, nil) {
		t.Fatal("{1,3} should dominate P4")
	}
	if !Dominates(g, []int{1}, []int{3}) {
		t.Fatal("{1} with forced {3} should dominate P4")
	}
}

func TestBruteForceMatchesKnown(t *testing.T) {
	g := gen.Cycle(7) // γ(C7) = 3
	set := BruteForce(g, nil)
	if len(set) != 3 {
		t.Fatalf("brute C7=%v, want size 3", set)
	}
}

func TestBruteForceRejectsLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BruteForce accepted a huge graph")
		}
	}()
	BruteForce(gen.Path(30), nil)
}

func TestQuickSolverMatchesBruteForce(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%12)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(n, rng)
		for i := 0; i < n/3; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		exact := MinDominatingExtra(g, nil)
		brute := BruteForce(g, nil)
		return len(exact) == len(brute) && Dominates(g, exact, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolverMatchesBruteForceForced(t *testing.T) {
	f := func(seed int64, sz, fRaw uint8) bool {
		n := 4 + int(sz%10)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(n, rng)
		forced := []int{int(fRaw) % n}
		exact := MinDominatingExtra(g, forced)
		brute := BruteForce(g, forced)
		return len(exact) == len(brute) && Dominates(g, exact, forced)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGreedyAtLeastExact(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%14)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomTree(n, rng)
		greedy := Greedy(g, nil)
		exact := MinDominatingExtra(g, nil)
		return len(greedy) >= len(exact) && Dominates(g, greedy, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSolverModerateSize(t *testing.T) {
	// Performance smoke test: a 100-vertex ER graph solves quickly.
	rng := rand.New(rand.NewSource(9))
	g, err := gen.GNPConnected(100, 0.08, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	set := MinDominatingExtra(g, nil)
	if !Dominates(g, set, nil) {
		t.Fatal("solver output does not dominate")
	}
	if len(set) == 0 || len(set) > 40 {
		t.Fatalf("implausible MDS size %d for ER(100,0.08)", len(set))
	}
}
