package dynamics

import (
	"context"
	"math/rand"

	"repro/internal/game"
)

// Cell is one point of an experiment grid: a parameter pair (α, k) plus a
// seed index selecting one of the random starting networks (the paper uses
// 20 per parameter pair, §5.1).
type Cell struct {
	Alpha float64
	K     int
	Seed  int64
}

// CellResult pairs a cell with its dynamics outcome.
type CellResult struct {
	Cell   Cell
	Result Result
}

// Factory builds the starting state for a cell from a deterministic,
// cell-private RNG. Factories must not share mutable state across calls.
type Factory func(cell Cell, rng *rand.Rand) *game.State

// Grid expands the cross product of α values, k values and seeds
// 0..seeds-1 into cells, ordered α-major (matching the paper's sweep).
func Grid(alphas []float64, ks []int, seeds int) []Cell {
	cells := make([]Cell, 0, len(alphas)*len(ks)*seeds)
	for _, a := range alphas {
		for _, k := range ks {
			for s := 0; s < seeds; s++ {
				cells = append(cells, Cell{Alpha: a, K: k, Seed: int64(s)})
			}
		}
	}
	return cells
}

// Sweep runs one dynamics per cell on a fixed pool of GOMAXPROCS workers
// and returns results indexed like cells. Each cell derives a private RNG
// from baseSeed and its own coordinates (splitmix-style), so results are
// reproducible regardless of worker scheduling — the hpc-parallel
// "determinism independent of schedule" rule. Sweep is SweepContext with
// no cancellation, no reuse, and default options.
func Sweep(cells []Cell, base Config, factory Factory, baseSeed int64) []CellResult {
	out, _ := SweepContext(context.Background(), cells, base, factory, baseSeed, SweepOptions{})
	return out
}

// cellSeed mixes the base seed with the cell coordinates into an
// independent stream seed (splitmix64 finalizer).
func cellSeed(base int64, c Cell) int64 {
	x := uint64(base)
	for _, v := range []uint64{
		uint64(int64(c.Alpha * 1e6)),
		uint64(int64(c.K)),
		uint64(c.Seed),
	} {
		x += 0x9e3779b97f4a7c15 + v
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return int64(x & 0x7fffffffffffffff)
}
