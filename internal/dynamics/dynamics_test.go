package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
)

func TestRunConvergesOnStar(t *testing.T) {
	// A star with α > 1 is already an equilibrium for MAXNCG.
	s := game.NewState(8)
	for v := 1; v < 8; v++ {
		s.Buy(v, 0)
	}
	cfg := DefaultConfig(game.Max, 3, 4)
	res := Run(s, cfg)
	if res.Status != Converged {
		t.Fatalf("status=%v, want converged", res.Status)
	}
	if res.Rounds != 1 || res.TotalMoves != 0 {
		t.Fatalf("rounds=%d moves=%d, want 1, 0", res.Rounds, res.TotalMoves)
	}
}

func TestRunImprovesFromPath(t *testing.T) {
	// A long path with cheap edges should restructure into something with
	// much smaller diameter and converge.
	s := game.FromGraphLowOwners(gen.Path(20))
	cfg := DefaultConfig(game.Max, 0.5, 1000)
	cfg.CollectPerRound = true
	before := game.SocialCost(s.Clone(), game.Max, 0.5)
	res := Run(s, cfg)
	if res.Status != Converged {
		t.Fatalf("status=%v, want converged", res.Status)
	}
	after := res.FinalStats.SocialCost
	if after >= before {
		t.Fatalf("social cost did not improve: before=%v after=%v", before, after)
	}
	if res.FinalStats.Diameter > 4 {
		t.Fatalf("full-knowledge equilibrium diameter=%d, implausibly large", res.FinalStats.Diameter)
	}
	if len(res.PerRound) != res.Rounds {
		t.Fatalf("per-round stats length=%d, rounds=%d", len(res.PerRound), res.Rounds)
	}
}

func TestRunFinalIsLKE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		s := game.FromGraphRandomOwners(gen.RandomTree(15, rng), rng)
		cfg := DefaultConfig(game.Max, 1, 3)
		res := Run(s, cfg)
		if res.Status == Converged && !IsLKE(res.Final, cfg) {
			t.Fatalf("trial %d: converged state fails the LKE audit", trial)
		}
	}
}

func TestRunSumVariantConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := game.FromGraphRandomOwners(gen.RandomTree(10, rng), rng)
	cfg := DefaultConfig(game.Sum, 1.5, 2)
	res := Run(s, cfg)
	if res.Status == RoundLimit {
		t.Fatalf("SUM dynamics hit the round limit: %+v", res.FinalStats)
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunNilResponderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with nil responder did not panic")
		}
	}()
	Run(game.NewState(3), Config{})
}

func TestStatusString(t *testing.T) {
	if Converged.String() != "converged" || Cycled.String() != "cycled" ||
		RoundLimit.String() != "round-limit" || Status(9).String() != "unknown" {
		t.Fatal("status strings wrong")
	}
}

func TestFirstDeviator(t *testing.T) {
	// Path with cheap α: some player deviates; after running to
	// convergence, nobody does.
	s := game.FromGraphLowOwners(gen.Path(10))
	cfg := DefaultConfig(game.Max, 0.5, 1000)
	if FirstDeviator(s, cfg) == -1 {
		t.Fatal("fresh path should have a deviator at α=0.5")
	}
	res := Run(s, cfg)
	if res.Status == Converged && FirstDeviator(res.Final, cfg) != -1 {
		t.Fatal("converged state still has a deviator")
	}
}

func TestGrid(t *testing.T) {
	cells := Grid([]float64{1, 2}, []int{3, 4, 5}, 7)
	if len(cells) != 2*3*7 {
		t.Fatalf("grid size=%d, want 42", len(cells))
	}
	if cells[0].Alpha != 1 || cells[0].K != 3 || cells[0].Seed != 0 {
		t.Fatalf("first cell=%+v", cells[0])
	}
	last := cells[len(cells)-1]
	if last.Alpha != 2 || last.K != 5 || last.Seed != 6 {
		t.Fatalf("last cell=%+v", last)
	}
}

func TestSweepDeterminism(t *testing.T) {
	cells := Grid([]float64{0.5, 2}, []int{2, 1000}, 3)
	factory := func(cell Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(12, rng), rng)
	}
	cfg := DefaultConfig(game.Max, 0, 0)
	run1 := Sweep(cells, cfg, factory, 99)
	run2 := Sweep(cells, cfg, factory, 99)
	if len(run1) != len(cells) {
		t.Fatalf("results length=%d", len(run1))
	}
	for i := range run1 {
		a, b := run1[i], run2[i]
		if a.Cell != b.Cell {
			t.Fatalf("cell %d mismatch: %+v vs %+v", i, a.Cell, b.Cell)
		}
		if a.Result.Status != b.Result.Status ||
			a.Result.Rounds != b.Result.Rounds ||
			a.Result.TotalMoves != b.Result.TotalMoves ||
			a.Result.Final.Fingerprint() != b.Result.Final.Fingerprint() {
			t.Fatalf("cell %d nondeterministic: %+v vs %+v", i, a.Result.FinalStats, b.Result.FinalStats)
		}
	}
}

func TestSweepDifferentSeedsDiffer(t *testing.T) {
	cells := Grid([]float64{1}, []int{3}, 4)
	factory := func(cell Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(15, rng), rng)
	}
	cfg := DefaultConfig(game.Max, 0, 0)
	res := Sweep(cells, cfg, factory, 1)
	fingerprints := map[uint64]bool{}
	for _, r := range res {
		fingerprints[r.Result.Final.Fingerprint()] = true
	}
	if len(fingerprints) < 2 {
		t.Fatal("all seeds produced identical equilibria — per-cell RNG is broken")
	}
}

func TestCellSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for a := 0; a < 5; a++ {
		for k := 0; k < 5; k++ {
			for s := 0; s < 5; s++ {
				seen[cellSeed(7, Cell{Alpha: float64(a), K: k, Seed: int64(s)})] = true
			}
		}
	}
	if len(seen) != 125 {
		t.Fatalf("cellSeed collisions: %d unique of 125", len(seen))
	}
}

func TestRoundLimit(t *testing.T) {
	s := game.FromGraphLowOwners(gen.Path(30))
	cfg := DefaultConfig(game.Max, 0.1, 2)
	cfg.MaxRounds = 1
	res := Run(s, cfg)
	if res.Status == Converged && res.TotalMoves > 0 {
		t.Fatal("cannot be converged after a single busy round")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds=%d, want 1", res.Rounds)
	}
}
