package dynamics

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bestresponse"
	"repro/internal/game"
)

// randomState builds a random profile: a spanning-tree-ish buy pattern
// plus extra arcs, including occasional redundant (bidirectional) buys.
func randomState(n int, rng *rand.Rand) *game.State {
	s := game.NewState(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		s.Buy(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			s.Buy(u, v)
		}
	}
	return s
}

// assertSameResult compares everything a checkpoint or trajectory could
// observe. Evaluations and RoundEvaluations are intentionally excluded:
// they measure skipped work, the one permitted difference.
func assertSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Status != want.Status || got.Rounds != want.Rounds || got.TotalMoves != want.TotalMoves {
		t.Fatalf("%s: (status,rounds,moves)=(%v,%d,%d), want (%v,%d,%d)",
			label, got.Status, got.Rounds, got.TotalMoves, want.Status, want.Rounds, want.TotalMoves)
	}
	if !reflect.DeepEqual(got.PerRound, want.PerRound) {
		t.Fatalf("%s: PerRound diverges:\n got %+v\nwant %+v", label, got.PerRound, want.PerRound)
	}
	if got.FinalStats != want.FinalStats {
		t.Fatalf("%s: FinalStats diverges:\n got %+v\nwant %+v", label, got.FinalStats, want.FinalStats)
	}
	if gf, wf := got.Final.Fingerprint(), want.Final.Fingerprint(); gf != wf {
		t.Fatalf("%s: final fingerprint %x, want %x", label, gf, wf)
	}
	for u := 0; u < got.Final.N(); u++ {
		if !equalInts(got.Final.Strategy(u), want.Final.Strategy(u)) {
			t.Fatalf("%s: player %d final strategy %v, want %v",
				label, u, got.Final.Strategy(u), want.Final.Strategy(u))
		}
	}
}

// TestEngineMatchesReference is the core differential test: the
// event-driven engine must reproduce the naive executable spec
// byte-for-byte across random games, both variants, all three schedules,
// and radii from tight to full knowledge — including the per-round
// statistics, which also pins the pooled collector against the one-shot
// reference collect.
func TestEngineMatchesReference(t *testing.T) {
	variants := []game.Variant{game.Max, game.Sum}
	schedules := []Schedule{RoundRobin, FixedPermutation, RandomEachRound}
	ks := []int{1, 2, 3, 1000} // 1000 = full knowledge on any test graph
	rng := rand.New(rand.NewSource(99))
	trial := 0
	for _, variant := range variants {
		for _, schedule := range schedules {
			for _, k := range ks {
				n := 6 + rng.Intn(20)
				seed := int64(cellSeed(int64(trial), Cell{Alpha: float64(k), K: k, Seed: int64(n)}))
				gen := rand.New(rand.NewSource(seed))
				base := randomState(n, gen)
				alpha := []float64{0.5, 2, 8}[trial%3]
				cfg := DefaultConfig(variant, alpha, k)
				cfg.MaxRounds = 40
				cfg.CycleCheckAfter = 5
				cfg.CollectPerRound = true

				want := runReference(base.Clone(), cfg, schedule, rand.New(rand.NewSource(seed)))
				got, err := RunScheduledContext(context.Background(), base.Clone(), cfg, schedule, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("trial %d: unexpected error %v", trial, err)
				}
				label := variant.String() + "/" + schedule.String()
				assertSameResult(t, label, got, want)
				if got.Evaluations > want.Evaluations {
					t.Fatalf("%s: event-driven made %d evaluations, naive made %d",
						label, got.Evaluations, want.Evaluations)
				}
				if len(got.RoundEvaluations) != len(got.PerRound) {
					t.Fatalf("%s: %d RoundEvaluations for %d rounds",
						label, len(got.RoundEvaluations), len(got.PerRound))
				}
				trial++
			}
		}
	}
}

// TestEngineSkipsWork asserts the tentpole actually pays off: on a
// converging round-robin run, the event-driven engine must evaluate
// strictly fewer players than rounds×n — in particular the final quiet
// round plus the settling tail must be cheaper than full scans.
func TestEngineSkipsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomState(40, rng)
	cfg := DefaultConfig(game.Max, 2, 3)
	res := Run(s, cfg)
	if res.Status != Converged {
		t.Fatalf("run did not converge: %v", res.Status)
	}
	naive := res.Rounds * s.N()
	if res.Evaluations >= naive {
		t.Fatalf("event-driven engine evaluated %d times, naive bound is %d", res.Evaluations, naive)
	}
	// Eager activation restores the naive count exactly.
	rng = rand.New(rand.NewSource(5))
	s2 := randomState(40, rng)
	cfg.Activation = ActivationEager
	res2 := Run(s2, cfg)
	if res2.Evaluations != res2.Rounds*s2.N() {
		t.Fatalf("eager activation evaluated %d times over %d rounds of %d players",
			res2.Evaluations, res2.Rounds, s2.N())
	}
	assertSameResult(t, "dirty-vs-eager", res, res2)
}

// TestScheduledContextCancellation pins the satellite fix: RunScheduled
// historically ignored cancellation entirely; the unified engine must
// honor it identically to RunContext for every schedule.
func TestScheduledContextCancellation(t *testing.T) {
	for _, schedule := range []Schedule{RoundRobin, FixedPermutation, RandomEachRound} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		rng := rand.New(rand.NewSource(3))
		s := randomState(12, rng)
		res, err := RunScheduledContext(ctx, s, DefaultConfig(game.Max, 2, 2), schedule, rand.New(rand.NewSource(1)))
		if err != context.Canceled {
			t.Fatalf("%v: err = %v, want context.Canceled", schedule, err)
		}
		if res.Rounds != 0 || res.TotalMoves != 0 {
			t.Fatalf("%v: pre-cancelled run reported %d rounds, %d moves", schedule, res.Rounds, res.TotalMoves)
		}
	}

	// Mid-run: cancel from inside the responder after a few calls; the
	// engine must stop at the next round boundary with a partial result.
	calls := 0
	ctx, cancel := context.WithCancel(context.Background())
	cfg := DefaultConfig(game.Max, 2, 2)
	inner := cfg.ResolveResponder()
	cfg.Responder = func(s *game.State, u, k int, alpha float64) bestresponse.Response {
		calls++
		if calls == 5 {
			cancel()
		}
		return inner(s, u, k, alpha)
	}
	rng := rand.New(rand.NewSource(8))
	s := randomState(20, rng)
	res, err := RunScheduledContext(ctx, s, cfg, FixedPermutation, rand.New(rand.NewSource(2)))
	if err != context.Canceled {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if res.Rounds == 0 {
		t.Fatal("mid-run cancel: expected at least one completed round before the boundary check")
	}
}

// TestScheduledFinalStatsBackfill pins the other satellite fix: the old
// RunScheduled never backfilled FinalStats.Moves from the last collected
// round. With the unified engine it must, for every schedule.
func TestScheduledFinalStatsBackfill(t *testing.T) {
	for _, schedule := range []Schedule{RoundRobin, FixedPermutation, RandomEachRound} {
		rng := rand.New(rand.NewSource(11))
		s := randomState(15, rng)
		cfg := DefaultConfig(game.Max, 1, 2)
		cfg.MaxRounds = 1 // stop while moves are still happening
		cfg.CollectPerRound = true
		res := RunScheduled(s, cfg, schedule, rand.New(rand.NewSource(4)))
		if res.Status != RoundLimit || len(res.PerRound) != 1 {
			t.Fatalf("%v: status %v with %d collected rounds", schedule, res.Status, len(res.PerRound))
		}
		if res.PerRound[0].Moves == 0 {
			t.Fatalf("%v: round 1 made no moves; test needs an active round", schedule)
		}
		if res.FinalStats.Moves != res.PerRound[0].Moves {
			t.Fatalf("%v: FinalStats.Moves = %d, last round made %d",
				schedule, res.FinalStats.Moves, res.PerRound[0].Moves)
		}
	}
}

// TestTracedMatchesEngine checks RunTraced still reports like Run and its
// log replays to the same final state.
func TestTracedMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := randomState(18, rng)
	cfg := DefaultConfig(game.Sum, 3, 2)
	cfg.CollectPerRound = true
	want := Run(base.Clone(), cfg)
	start := base.Clone()
	got, moves := RunTraced(base.Clone(), cfg)
	assertSameResult(t, "traced", got, want)
	if len(moves) != got.TotalMoves {
		t.Fatalf("trace recorded %d moves, result reports %d", len(moves), got.TotalMoves)
	}
	replayed, err := Replay(start, moves)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed.Fingerprint() != got.Final.Fingerprint() {
		t.Fatal("replayed state diverges from traced final state")
	}
}
