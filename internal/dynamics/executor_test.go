package dynamics_test

// Tests for the pluggable Executor seam: SweepContext must hand executors
// exactly the unresolved cells, sequence their (arbitrarily ordered)
// deliveries back into canonical order, and treat a short delivery as an
// error instead of a silently truncated grid.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/game"
)

// fakeExecutor records the request it received and replays canned results
// in a fixed (possibly out-of-order) sequence.
type fakeExecutor struct {
	mu      sync.Mutex
	reqs    []dynamics.ExecRequest
	deliver func(req dynamics.ExecRequest, out chan<- dynamics.IndexedResult)
}

func (f *fakeExecutor) Execute(ctx context.Context, req dynamics.ExecRequest) <-chan dynamics.IndexedResult {
	f.mu.Lock()
	f.reqs = append(f.reqs, req)
	f.mu.Unlock()
	out := make(chan dynamics.IndexedResult)
	go func() {
		defer close(out)
		if f.deliver != nil {
			f.deliver(req, out)
		}
	}()
	return out
}

func fakeResult(rounds int) dynamics.Result {
	return dynamics.Result{Status: dynamics.Converged, Rounds: rounds}
}

func TestSweepContextRoutesTodoThroughExecutor(t *testing.T) {
	cells := testGrid()
	exec := &fakeExecutor{
		deliver: func(req dynamics.ExecRequest, out chan<- dynamics.IndexedResult) {
			// Deliver in reverse order: the sequencer must still emit
			// canonically.
			for j := len(req.Todo) - 1; j >= 0; j-- {
				i := req.Todo[j]
				out <- dynamics.IndexedResult{Index: i, Result: fakeResult(i + 1)}
			}
		},
	}
	// Every third cell is resolved by Have and must not reach the executor.
	have := func(c dynamics.Cell) (dynamics.Result, bool) {
		for i, cc := range cells {
			if cc == c {
				if i%3 == 0 {
					return fakeResult(1000 + i), true
				}
				return dynamics.Result{}, false
			}
		}
		return dynamics.Result{}, false
	}
	var emitted []int
	var reusedIdx []int
	out, err := dynamics.SweepContext(context.Background(), cells, dynamics.Config{Responder: dynamics.MaxResponder}, testFactory(8), 1,
		dynamics.SweepOptions{
			Executor: exec,
			Have:     have,
			OnResult: func(i int, r dynamics.CellResult, reused bool) error {
				emitted = append(emitted, i)
				if reused {
					reusedIdx = append(reusedIdx, i)
				}
				return nil
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.reqs) != 1 {
		t.Fatalf("executor invoked %d times, want 1", len(exec.reqs))
	}
	req := exec.reqs[0]
	wantTodo := 0
	for i := range cells {
		if i%3 != 0 {
			wantTodo++
		}
	}
	if len(req.Todo) != wantTodo {
		t.Fatalf("executor saw %d todo cells, want %d", len(req.Todo), wantTodo)
	}
	for _, i := range req.Todo {
		if i%3 == 0 {
			t.Fatalf("cell %d was resolved by Have but still reached the executor", i)
		}
	}
	for i := range cells {
		if emitted[i] != i {
			t.Fatalf("emission order broken at %d: got %v", i, emitted[:i+1])
		}
		wantRounds := i + 1
		if i%3 == 0 {
			wantRounds = 1000 + i
		}
		if out[i].Result.Rounds != wantRounds {
			t.Fatalf("cell %d rounds = %d, want %d", i, out[i].Result.Rounds, wantRounds)
		}
	}
	if len(reusedIdx) != len(cells)-wantTodo {
		t.Fatalf("%d cells marked reused, want %d", len(reusedIdx), len(cells)-wantTodo)
	}
}

func TestSweepContextExecutorShortDeliveryIsAnError(t *testing.T) {
	cells := testGrid()
	exec := &fakeExecutor{
		deliver: func(req dynamics.ExecRequest, out chan<- dynamics.IndexedResult) {
			for _, i := range req.Todo[:len(req.Todo)/2] {
				out <- dynamics.IndexedResult{Index: i, Result: fakeResult(1)}
			}
			// Close without delivering the rest and without a ctx error.
		},
	}
	_, err := dynamics.SweepContext(context.Background(), cells, dynamics.Config{Responder: dynamics.MaxResponder}, testFactory(8), 1,
		dynamics.SweepOptions{Executor: exec})
	if err == nil || !strings.Contains(err.Error(), "delivered") {
		t.Fatalf("err = %v, want short-delivery error", err)
	}
}

func TestSweepContextIgnoresOutOfRangeIndices(t *testing.T) {
	cells := testGrid()
	exec := &fakeExecutor{
		deliver: func(req dynamics.ExecRequest, out chan<- dynamics.IndexedResult) {
			out <- dynamics.IndexedResult{Index: -1}
			out <- dynamics.IndexedResult{Index: len(req.Cells) + 7}
			for _, i := range req.Todo {
				out <- dynamics.IndexedResult{Index: i, Result: fakeResult(1)}
			}
		},
	}
	_, err := dynamics.SweepContext(context.Background(), cells, dynamics.Config{Responder: dynamics.MaxResponder}, testFactory(8), 1,
		dynamics.SweepOptions{Executor: exec})
	if err != nil {
		t.Fatalf("out-of-range indices must be dropped, got error %v", err)
	}
}

// TestLocalExecutorObserve checks the latency hook fires once per
// computed cell with a positive duration, and never for reused cells.
func TestLocalExecutorObserve(t *testing.T) {
	cells := testGrid()
	cfg := dynamics.DefaultConfig(game.Max, 0, 0)
	var mu sync.Mutex
	seen := map[int]time.Duration{}
	_, err := dynamics.SweepContext(context.Background(), cells, cfg, testFactory(10), 2,
		dynamics.SweepOptions{
			Workers: 4,
			Have: func(c dynamics.Cell) (dynamics.Result, bool) {
				if c == cells[0] {
					return fakeResult(1), true
				}
				return dynamics.Result{}, false
			},
			Observe: func(i int, d time.Duration) {
				mu.Lock()
				seen[i] = d
				mu.Unlock()
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cells)-1 {
		t.Fatalf("observed %d cells, want %d", len(seen), len(cells)-1)
	}
	if _, ok := seen[0]; ok {
		t.Fatal("reused cell 0 was observed")
	}
	for i, d := range seen {
		if d < 0 {
			t.Fatalf("cell %d observed negative duration %v", i, d)
		}
	}
}

// TestLocalExecutorMatchesSweep pins the refactor: the extracted
// LocalExecutor routed through SweepContext must reproduce plain Sweep
// exactly.
func TestLocalExecutorMatchesSweep(t *testing.T) {
	cells := testGrid()
	cfg := dynamics.DefaultConfig(game.Max, 0, 0)
	plain := dynamics.Sweep(cells, cfg, testFactory(12), 9)
	viaExec, err := dynamics.SweepContext(context.Background(), cells, cfg, testFactory(12), 9,
		dynamics.SweepOptions{Executor: dynamics.LocalExecutor{}, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Result.Final.Fingerprint() != viaExec[i].Result.Final.Fingerprint() {
			t.Fatalf("cell %d diverges between Sweep and explicit LocalExecutor", i)
		}
	}
}
