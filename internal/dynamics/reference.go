package dynamics

import (
	"math/rand"

	"repro/internal/game"
	"repro/internal/view"
)

// This file is the executable specification of the round loop: the naive
// dynamics — every player evaluated every round, statistics recomputed
// from the public one-shot APIs — written with no regard for performance.
// runEngine must produce byte-identical Results (Evaluations excepted);
// differential_test.go enforces that over randomized games, variants, and
// schedules. Change the spec and the engine together, or not at all.

// runReference executes cfg under the given schedule exactly as the
// pre-event-driven loops did. rng may be nil for RoundRobin.
func runReference(s *game.State, cfg Config, schedule Schedule, rng *rand.Rand) Result {
	cfg.Responder = cfg.ResolveResponder()
	if cfg.Responder == nil {
		panic("dynamics: nil responder")
	}
	if schedule != RoundRobin && rng == nil {
		panic("dynamics: permutation schedules need an RNG")
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 200
	}
	res := Result{Final: s}
	n := s.N()
	seen := map[uint64]int{}
	var order []int
	if schedule != RoundRobin {
		order = rng.Perm(n)
	}
	for round := 1; round <= cfg.MaxRounds; round++ {
		if schedule == RandomEachRound {
			order = rng.Perm(n)
		}
		moves, evals := 0, 0
		for idx := 0; idx < n; idx++ {
			u := idx
			if order != nil {
				u = order[idx]
			}
			evals++
			r := cfg.Responder(s, u, cfg.K, cfg.Alpha)
			if r.Improving {
				s.SetStrategy(u, r.Strategy)
				moves++
			}
		}
		res.Rounds = round
		res.TotalMoves += moves
		res.Evaluations += evals
		if cfg.CollectPerRound {
			res.PerRound = append(res.PerRound, referenceCollect(s, cfg, round, moves))
			res.RoundEvaluations = append(res.RoundEvaluations, evals)
		}
		if moves == 0 {
			res.Status = Converged
			break
		}
		if schedule != RandomEachRound {
			fp := s.Fingerprint()
			if round > cfg.CycleCheckAfter {
				if _, dup := seen[fp]; dup {
					res.Status = Cycled
					break
				}
			}
			seen[fp] = round
		}
		if round == cfg.MaxRounds {
			res.Status = RoundLimit
		}
	}
	res.FinalStats = referenceCollect(s, cfg, res.Rounds, 0)
	if len(res.PerRound) > 0 {
		res.FinalStats.Moves = res.PerRound[len(res.PerRound)-1].Moves
	}
	return res
}

// referenceCollect recomputes every round statistic from the public
// one-shot APIs — three independent all-pairs fan-outs for social cost,
// quality, and unfairness, plus one more for the diameter. The engine's
// pooled collector derives all of them from a single cost pass; the
// differential tests pin the floats as identical (same operations, same
// order), not merely close.
func referenceCollect(s *game.State, cfg Config, round, moves int) RoundStats {
	g := s.Graph()
	n := s.N()
	st := RoundStats{
		Round:      round,
		Moves:      moves,
		Diameter:   g.Diameter(),
		SocialCost: game.SocialCost(s, cfg.Variant, cfg.Alpha),
		MaxDegree:  g.MaxDegree(),
		AvgDegree:  g.AverageDegree(),
		MinBought:  s.MinBought(),
		MaxBought:  s.MaxBought(),
		Quality:    game.Quality(s, cfg.Variant, cfg.Alpha),
		Unfairness: game.Unfairness(s, cfg.Variant, cfg.Alpha),
	}
	if n > 0 {
		st.AvgBought = float64(s.TotalBought()) / float64(n)
		minV, maxV, sumV := n+1, 0, 0
		for u := 0; u < n; u++ {
			sz := view.BallSize(g, u, cfg.K)
			if sz < minV {
				minV = sz
			}
			if sz > maxV {
				maxV = sz
			}
			sumV += sz
		}
		st.MinViewSize = minV
		st.MaxViewSize = maxV
		st.AvgViewSize = float64(sumV) / float64(n)
	}
	return st
}
