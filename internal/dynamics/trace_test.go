package dynamics

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
)

func TestRunTracedMatchesRun(t *testing.T) {
	s1 := game.FromGraphLowOwners(gen.Path(15))
	s2 := game.FromGraphLowOwners(gen.Path(15))
	cfg := DefaultConfig(game.Max, 1, 4)
	plain := Run(s1, cfg)
	traced, moves := RunTraced(s2, cfg)
	if plain.Status != traced.Status || plain.Rounds != traced.Rounds ||
		plain.TotalMoves != traced.TotalMoves {
		t.Fatalf("traced run deviates: %+v vs %+v", plain.FinalStats, traced.FinalStats)
	}
	if len(moves) != traced.TotalMoves {
		t.Fatalf("move log has %d entries, TotalMoves=%d", len(moves), traced.TotalMoves)
	}
	if plain.Final.Fingerprint() != traced.Final.Fingerprint() {
		t.Fatal("final states differ")
	}
}

func TestReplayReconstructsFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	start := game.FromGraphRandomOwners(gen.RandomTree(18, rng), rng)
	snapshot := start.Clone()
	cfg := DefaultConfig(game.Max, 2, 3)
	res, moves := RunTraced(start, cfg)
	rebuilt, err := Replay(snapshot, moves)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Fingerprint() != res.Final.Fingerprint() {
		t.Fatal("replay does not reconstruct the final state")
	}
}

func TestReplayDetectsMismatch(t *testing.T) {
	start := game.FromGraphLowOwners(gen.Path(6))
	moves := []Move{{Round: 1, Player: 0, Old: []int{5}, New: []int{2}}}
	if _, err := Replay(start, moves); err == nil {
		t.Fatal("mismatched move accepted")
	}
}

func TestMoveCostsAreImprovements(t *testing.T) {
	s := game.FromGraphLowOwners(gen.Path(20))
	cfg := DefaultConfig(game.Max, 0.5, 1000)
	_, moves := RunTraced(s, cfg)
	if len(moves) == 0 {
		t.Fatal("expected moves on a cheap-α path")
	}
	for _, m := range moves {
		if m.CostAfter >= m.CostBefore {
			t.Fatalf("non-improving move logged: %v", m)
		}
	}
}

func TestMoveString(t *testing.T) {
	m := Move{Round: 2, Player: 7, Old: []int{1}, New: []int{3}, CostBefore: 5, CostAfter: 4}
	out := m.String()
	if !strings.Contains(out, "r2 p7") || !strings.Contains(out, "[1] -> [3]") {
		t.Fatalf("move string: %s", out)
	}
}

func TestRunTracedNilResponderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunTraced(game.NewState(2), Config{})
}
