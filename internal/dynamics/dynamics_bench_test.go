package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
)

// BenchmarkRunTreeLocal measures one complete dynamics on a random tree
// with a local view — the workhorse of every figure experiment.
func BenchmarkRunTreeLocal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		s := game.FromGraphRandomOwners(gen.RandomTree(60, rng), rng)
		Run(s, DefaultConfig(game.Max, 2, 3))
	}
}

// BenchmarkRunTreeFullKnowledge is the classical-game ablation (k = ∞).
func BenchmarkRunTreeFullKnowledge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		s := game.FromGraphRandomOwners(gen.RandomTree(60, rng), rng)
		Run(s, DefaultConfig(game.Max, 2, 1000))
	}
}

// BenchmarkRunBetterResponse swaps the exact responder for single-move
// better responses (schedule ablation from §2's dynamics discussion).
func BenchmarkRunBetterResponse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		s := game.FromGraphRandomOwners(gen.RandomTree(60, rng), rng)
		cfg := DefaultConfig(game.Max, 2, 3)
		cfg.Responder = MaxGreedyResponder
		Run(s, cfg)
	}
}

// BenchmarkSweep measures the parallel grid runner end to end.
func BenchmarkSweep(b *testing.B) {
	cells := Grid([]float64{1, 2}, []int{2, 4}, 2)
	factory := func(cell Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(40, rng), rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(cells, DefaultConfig(game.Max, 0, 0), factory, int64(i))
	}
}

// BenchmarkIsLKE measures the equilibrium audit on a converged state.
func BenchmarkIsLKE(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := game.FromGraphRandomOwners(gen.RandomTree(60, rng), rng)
	cfg := DefaultConfig(game.Max, 2, 3)
	Run(s, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsLKE(s, cfg)
	}
}
