package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/gen"
)

func TestScheduleStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" ||
		FixedPermutation.String() != "fixed-permutation" ||
		RandomEachRound.String() != "random-each-round" ||
		Schedule(9).String() != "unknown" {
		t.Fatal("schedule names")
	}
}

func TestRunScheduledRoundRobinDelegates(t *testing.T) {
	s1 := game.FromGraphLowOwners(gen.Path(12))
	s2 := game.FromGraphLowOwners(gen.Path(12))
	cfg := DefaultConfig(game.Max, 1, 3)
	a := Run(s1, cfg)
	b := RunScheduled(s2, cfg, RoundRobin, nil)
	if a.Status != b.Status || a.Rounds != b.Rounds ||
		a.Final.Fingerprint() != b.Final.Fingerprint() {
		t.Fatal("RoundRobin schedule deviates from Run")
	}
}

func TestRunScheduledPermutationsConverge(t *testing.T) {
	for _, sched := range []Schedule{FixedPermutation, RandomEachRound} {
		rng := rand.New(rand.NewSource(9))
		s := game.FromGraphRandomOwners(gen.RandomTree(15, rng), rng)
		cfg := DefaultConfig(game.Max, 1, 3)
		res := RunScheduled(s, cfg, sched, rng)
		if res.Status != Converged {
			t.Fatalf("%v: status=%v", sched, res.Status)
		}
		if !IsLKE(res.Final, cfg) {
			t.Fatalf("%v: final state not an LKE", sched)
		}
	}
}

func TestRunScheduledNeedsRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("permutation schedule without RNG did not panic")
		}
	}()
	RunScheduled(game.NewState(3), DefaultConfig(game.Max, 1, 2), FixedPermutation, nil)
}

func TestBetterResponseDynamicsConverges(t *testing.T) {
	// Single-move better responses also settle on trees; the equilibrium
	// is "single-move stable" which the greedy audit confirms.
	rng := rand.New(rand.NewSource(10))
	s := game.FromGraphRandomOwners(gen.RandomTree(20, rng), rng)
	cfg := DefaultConfig(game.Max, 1, 3)
	cfg.Responder = MaxGreedyResponder
	res := Run(s, cfg)
	if res.Status != Converged {
		t.Fatalf("better-response dynamics status=%v", res.Status)
	}
	if FirstDeviator(res.Final, cfg) != -1 {
		t.Fatal("single-move deviator remains after convergence")
	}
}

func TestBetterVsBestQuality(t *testing.T) {
	// Best-response equilibria are also single-move stable; the converse
	// can fail. Check the containment empirically: a best-response
	// equilibrium passes the greedy audit.
	rng := rand.New(rand.NewSource(11))
	s := game.FromGraphRandomOwners(gen.RandomTree(18, rng), rng)
	best := DefaultConfig(game.Max, 2, 3)
	res := Run(s, best)
	if res.Status != Converged {
		t.Skip("no convergence at this seed")
	}
	greedyCfg := best
	greedyCfg.Responder = MaxGreedyResponder
	if FirstDeviator(res.Final, greedyCfg) != -1 {
		t.Fatal("best-response equilibrium fails the single-move audit")
	}
}
