// Package dynamics implements the paper's simulation machinery (§5.1):
// best-response dynamics with cycle detection, per-round feature
// collection, and a parallel sweep runner for the (α, k, seed)
// experiment grids.
//
// # One engine, three schedules
//
// Run, RunContext, RunScheduled, RunScheduledContext, and RunTraced are
// all thin wrappers over one round-loop engine (runEngine): round-robin
// is the schedule the paper uses, the permutation schedules are
// ablations, and the trace variant only adds a move hook. The engine
// owns cancellation (checked between rounds), cycle detection (disabled
// under RandomEachRound, where a repeated profile is not conclusive),
// and the FinalStats.Moves backfill — every entry point reports
// identically.
//
// # Event-driven activation
//
// The engine is event-driven: it maintains a per-player clean/dirty bit
// and skips clean players without calling the responder. A player is
// clean when her last evaluated response was non-improving AND no arc
// incident to a vertex within distance ≤ k of her has changed since.
// Because a responder's output is a function of the player's k-ball view
// (the induced subgraph on β(u,k)) plus the arcs bought towards her,
// a clean player's response is unchanged by construction — skipping her
// is not an approximation, and results are bit-identical to evaluating
// everyone.
//
// On each applied move the engine diffs the old and new strategy
// (game.State.StrategyDiff), then marks dirty every player within a
// bounded-depth multi-source BFS of the changed arcs' endpoints
// (graph.MultiBFSWithinScratch on pooled scratch), in BOTH the pre- and
// post-move graph — a conservative over-approximation whose correctness
// never depends on the tightness of the radius. Full-knowledge
// responders (k beyond the diameter) degrade gracefully: the bounded BFS
// covers the whole component, reproducing dirty-everyone behavior.
//
// Custom responders that read state OUTSIDE the k-ball-plus-incident-arcs
// contract must set Config.Activation = ActivationEager, which restores
// the evaluate-everyone loop. Every responder in this repository is
// k-local.
//
// # Reference implementation and differential testing
//
// reference.go retains the naive loop — every player evaluated every
// round — as an unexported executable specification in the
// internal/bestresponse style. differential_test.go drives both over
// randomized graphs, variants, and all three schedules, asserting
// byte-identical Results (Rounds, TotalMoves, Status, PerRound, final
// fingerprint) — which is exactly what keeps sweep checkpoints
// byte-identical, so sharding, caching, and replication inherit the
// speedup for free. Result.Evaluations (responder calls actually made)
// is the one field allowed to differ: it is how the sub-linear behavior
// of converging cells is observed in benchmarks.
package dynamics
