package dynamics

import (
	"context"
	"fmt"

	"repro/internal/bestresponse"
	"repro/internal/game"
)

// Move records one applied strategy change.
type Move struct {
	Round  int
	Player int
	// Old and New are the strategies before and after (sorted).
	Old []int
	New []int
	// CostBefore/CostAfter are the player's view-evaluated costs.
	CostBefore float64
	CostAfter  float64
}

// String renders the move compactly.
func (m Move) String() string {
	return fmt.Sprintf("r%d p%d: %v -> %v (%.2f -> %.2f)",
		m.Round, m.Player, m.Old, m.New, m.CostBefore, m.CostAfter)
}

// RunTraced is Run with a full move log: every applied strategy change is
// recorded, which supports replay, debugging of non-convergence, and the
// §5.1 "total number of strategy changes" statistic at move granularity.
// It shares the event-driven engine, so the log is identical to what the
// naive loop would record.
func RunTraced(s *game.State, cfg Config) (Result, []Move) {
	var moves []Move
	hooks := engineHooks{onMove: func(round, u int, r bestresponse.Response) {
		moves = append(moves, Move{
			Round:      round,
			Player:     u,
			Old:        s.Strategy(u),
			New:        append([]int(nil), r.Strategy...),
			CostBefore: r.CurrentCost,
			CostAfter:  r.Cost,
		})
	}}
	res, _ := runEngine(context.Background(), s, cfg, RoundRobin, nil, hooks)
	return res, moves
}

// Replay applies a move log to a fresh copy of the starting state and
// returns the reconstructed final state. It errors when a move's Old
// strategy does not match the state (log/state mismatch).
func Replay(start *game.State, moves []Move) (*game.State, error) {
	s := start.Clone()
	for i, m := range moves {
		cur := s.Strategy(m.Player)
		if !equalInts(cur, m.Old) {
			return nil, fmt.Errorf("dynamics: move %d expects %v, state has %v", i, m.Old, cur)
		}
		s.SetStrategy(m.Player, m.New)
	}
	return s, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
