package dynamics

import (
	"math/rand"

	"repro/internal/game"
	"repro/internal/gen"
)

// TreeFactory builds random-tree starting states of the given size with
// fair-coin edge ownership — the paper's standard setup (§5.1). Shared by
// the figure drivers and the sweep daemon so both produce identical cells.
func TreeFactory(n int) Factory {
	return func(_ Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
	}
}

// ERFactory builds connected Erdős–Rényi starting states. When G(n,p)
// fails to connect within the retry budget — only plausible for p well
// below the ln(n)/n connectivity threshold, which sweepd.Spec.Validate
// rejects up front — it deterministically falls back to a random tree
// rather than aborting the sweep.
func ERFactory(n int, prob float64) Factory {
	return func(_ Cell, rng *rand.Rand) *game.State {
		g, err := gen.GNPConnected(n, prob, rng, 1000)
		if err != nil {
			return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
		}
		return game.FromGraphRandomOwners(g, rng)
	}
}

// GridDeleteFactory builds starting states on random connected grids
// with deletion probability del (gen.RandomConnectedGrid, the
// goblin-adventures family). On retry exhaustion — only plausible for
// del near the validation ceiling — it deterministically falls back to
// the undeleted grid rather than aborting the sweep (the ERFactory
// idiom).
func GridDeleteFactory(n int, del float64) Factory {
	return func(_ Cell, rng *rand.Rand) *game.State {
		g, err := gen.RandomConnectedGrid(n, del, rng, 1000)
		if err != nil {
			g = gen.PartialGrid(n)
		}
		return game.FromGraphRandomOwners(g, rng)
	}
}

// PATreeFactory builds starting states on preferential-attachment trees
// (Barabási–Albert, m = 1) — a heavier-tailed alternative to the paper's
// uniform random trees.
func PATreeFactory(n int) Factory {
	return func(_ Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.PreferentialAttachmentTree(n, rng), rng)
	}
}

// RandomRegularFactory builds starting states on random q-regular graphs
// (pairing model). Sampling retries until the graph is also connected
// (guaranteed-eventually for the q ≥ 3 the spec layer validates, and
// almost always first try); on retry exhaustion it deterministically
// falls back to a random tree like ERFactory.
func RandomRegularFactory(n, q int) Factory {
	return func(_ Cell, rng *rand.Rand) *game.State {
		for try := 0; try < 1000; try++ {
			g, ok := gen.RandomRegular(n, q, rng, 1)
			if ok && g.IsConnected() {
				return game.FromGraphRandomOwners(g, rng)
			}
		}
		return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
	}
}
