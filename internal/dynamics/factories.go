package dynamics

import (
	"math/rand"

	"repro/internal/game"
	"repro/internal/gen"
)

// TreeFactory builds random-tree starting states of the given size with
// fair-coin edge ownership — the paper's standard setup (§5.1). Shared by
// the figure drivers and the sweep daemon so both produce identical cells.
func TreeFactory(n int) Factory {
	return func(_ Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
	}
}

// ERFactory builds connected Erdős–Rényi starting states. When G(n,p)
// fails to connect within the retry budget — only plausible for p well
// below the ln(n)/n connectivity threshold, which sweepd.Spec.Validate
// rejects up front — it deterministically falls back to a random tree
// rather than aborting the sweep.
func ERFactory(n int, prob float64) Factory {
	return func(_ Cell, rng *rand.Rand) *game.State {
		g, err := gen.GNPConnected(n, prob, rng, 1000)
		if err != nil {
			return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
		}
		return game.FromGraphRandomOwners(g, rng)
	}
}
