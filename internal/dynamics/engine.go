// Package dynamics implements the paper's simulation machinery (§5.1):
// round-robin best-response dynamics with cycle detection, per-round
// feature collection, and a parallel sweep runner for the (α, k, seed)
// experiment grids.
package dynamics

import (
	"context"

	"repro/internal/bestresponse"
	"repro/internal/game"
	"repro/internal/view"
)

// Responder computes a (best or better) response for one player. It must
// be deterministic for cycle detection to be sound.
type Responder func(s *game.State, u, k int, alpha float64) bestresponse.Response

// MaxResponder is the exact MAXNCG best responder (§5.3 reduction).
func MaxResponder(s *game.State, u, k int, alpha float64) bestresponse.Response {
	return bestresponse.MaxBestResponse(s, u, k, alpha)
}

// SumResponder is a SUMNCG responder: exact subset search when the view is
// small, greedy local moves otherwise (see DESIGN.md §3, substitution 4).
func SumResponder(maxCandidates int) Responder {
	return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
		ex := bestresponse.SumBestResponseExhaustive(s, u, k, alpha, maxCandidates)
		if ex.Feasible {
			return ex.Response
		}
		return bestresponse.SumGreedyResponse(s, u, k, alpha)
	}
}

// NewMaxResponder returns a MaxResponder bound to its own
// bestresponse.Evaluator, so a worker running many cells reuses one set
// of scratch buffers instead of going through the shared pool per call.
// Responses are identical to MaxResponder's.
func NewMaxResponder() Responder {
	e := bestresponse.NewEvaluator()
	return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
		return e.MaxBestResponse(s, u, k, alpha)
	}
}

// NewSumResponder is SumResponder bound to its own Evaluator; see
// NewMaxResponder.
func NewSumResponder(maxCandidates int) Responder {
	e := bestresponse.NewEvaluator()
	return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
		ex := e.SumBestResponseExhaustive(s, u, k, alpha, maxCandidates)
		if ex.Feasible {
			return ex.Response
		}
		return e.SumGreedyResponse(s, u, k, alpha)
	}
}

// Status describes how a dynamics run ended.
type Status int

const (
	// Converged: a full round completed with no strategy change.
	Converged Status = iota
	// Cycled: the end-of-round profile repeated an earlier round's profile
	// with intervening moves — under round-robin deterministic responders
	// the dynamics will loop forever (§5.1).
	Cycled
	// RoundLimit: the round budget was exhausted without convergence or a
	// detected cycle.
	RoundLimit
)

// String names the status.
func (st Status) String() string {
	switch st {
	case Converged:
		return "converged"
	case Cycled:
		return "cycled"
	case RoundLimit:
		return "round-limit"
	default:
		return "unknown"
	}
}

// ParseStatus inverts Status.String (used by the ncgio codecs).
func ParseStatus(s string) (Status, bool) {
	switch s {
	case "converged":
		return Converged, true
	case "cycled":
		return Cycled, true
	case "round-limit":
		return RoundLimit, true
	default:
		return 0, false
	}
}

// RoundStats captures the network features the paper collects after each
// round (§5.1: diameter, social cost, degrees, bought edges, view sizes).
type RoundStats struct {
	Round       int
	Moves       int
	Diameter    int
	SocialCost  float64
	MaxDegree   int
	AvgDegree   float64
	MinBought   int
	MaxBought   int
	AvgBought   float64
	MinViewSize int
	MaxViewSize int
	AvgViewSize float64
	Quality     float64
	Unfairness  float64
}

// Result is the outcome of one dynamics run.
type Result struct {
	Status     Status
	Rounds     int
	TotalMoves int
	Final      *game.State
	PerRound   []RoundStats
	// FinalStats repeats the last collected round statistics for
	// convenience (zero value when no round ran).
	FinalStats RoundStats
}

// Config parameterizes a dynamics run.
type Config struct {
	Variant   game.Variant
	Alpha     float64
	K         int
	Responder Responder
	// NewResponder, when set, constructs a fresh responder owning its own
	// evaluation scratch. RunContext falls back to it when Responder is
	// nil, and LocalExecutor calls it once per worker so a sweep's
	// responder allocations stay O(workers) rather than O(moves). Both
	// fields must describe the same response rule.
	NewResponder func() Responder
	// MaxRounds bounds the run; cycle detection starts once the round
	// count exceeds CycleCheckAfter (the paper checks after a time
	// threshold; we use rounds as the deterministic analogue).
	MaxRounds       int
	CycleCheckAfter int
	// CollectPerRound enables per-round statistics (costly: all-pairs BFS
	// per round). The final round is always collected.
	CollectPerRound bool
}

// DefaultConfig mirrors the paper's setup for the given variant. It sets
// NewResponder only, leaving Responder nil: an explicit Responder always
// wins (see ResolveResponder), so callers that assign one after
// DefaultConfig keep their override everywhere, including in per-worker
// executors.
func DefaultConfig(variant game.Variant, alpha float64, k int) Config {
	nr := NewMaxResponder
	if variant == game.Sum {
		nr = func() Responder { return NewSumResponder(16) }
	}
	return Config{
		Variant:         variant,
		Alpha:           alpha,
		K:               k,
		NewResponder:    nr,
		MaxRounds:       200,
		CycleCheckAfter: 30,
	}
}

// ResolveResponder returns the responder a run will use: the explicit
// Responder field when set, otherwise a fresh instance from NewResponder,
// or nil when neither is configured.
func (cfg Config) ResolveResponder() Responder {
	if cfg.Responder != nil {
		return cfg.Responder
	}
	if cfg.NewResponder != nil {
		return cfg.NewResponder()
	}
	return nil
}

// Run executes round-robin best-response dynamics on state s (§5.1): in
// each round every player, in id order, computes a response according to
// her local view; strictly improving responses are applied immediately.
// The run stops at convergence (a full quiet round), on a detected
// best-response cycle, or at the round budget. s is mutated in place.
func Run(s *game.State, cfg Config) Result {
	res, _ := RunContext(context.Background(), s, cfg)
	return res
}

// RunContext is Run with cancellation, checked between rounds. On
// cancellation it returns the partial result accumulated so far (without
// final statistics) together with ctx.Err(); the rounds already played
// before the cancellation point are identical to an uninterrupted run's.
func RunContext(ctx context.Context, s *game.State, cfg Config) (Result, error) {
	cfg.Responder = cfg.ResolveResponder()
	if cfg.Responder == nil {
		panic("dynamics: nil responder")
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 200
	}
	res := Result{Final: s}
	seen := map[uint64]int{} // end-of-round fingerprint → round index
	n := s.N()
	for round := 1; round <= cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		moves := 0
		for u := 0; u < n; u++ {
			r := cfg.Responder(s, u, cfg.K, cfg.Alpha)
			if r.Improving {
				s.SetStrategy(u, r.Strategy)
				moves++
			}
		}
		res.Rounds = round
		res.TotalMoves += moves
		if cfg.CollectPerRound {
			res.PerRound = append(res.PerRound, collect(s, cfg, round, moves))
		}
		if moves == 0 {
			res.Status = Converged
			break
		}
		fp := s.Fingerprint()
		if round > cfg.CycleCheckAfter {
			if _, dup := seen[fp]; dup {
				res.Status = Cycled
				break
			}
		}
		seen[fp] = round
		if round == cfg.MaxRounds {
			res.Status = RoundLimit
		}
	}
	res.FinalStats = collect(s, cfg, res.Rounds, 0)
	if len(res.PerRound) > 0 {
		res.FinalStats.Moves = res.PerRound[len(res.PerRound)-1].Moves
	}
	return res, nil
}

// collect computes the round statistics on the current network.
func collect(s *game.State, cfg Config, round, moves int) RoundStats {
	g := s.Graph()
	n := s.N()
	st := RoundStats{
		Round:      round,
		Moves:      moves,
		Diameter:   g.Diameter(),
		SocialCost: game.SocialCost(s, cfg.Variant, cfg.Alpha),
		MaxDegree:  g.MaxDegree(),
		AvgDegree:  g.AverageDegree(),
		MinBought:  s.MinBought(),
		MaxBought:  s.MaxBought(),
		Quality:    game.Quality(s, cfg.Variant, cfg.Alpha),
		Unfairness: game.Unfairness(s, cfg.Variant, cfg.Alpha),
	}
	if n > 0 {
		st.AvgBought = float64(s.TotalBought()) / float64(n)
		minV, maxV, sumV := n+1, 0, 0
		for u := 0; u < n; u++ {
			sz := view.BallSize(g, u, cfg.K)
			if sz < minV {
				minV = sz
			}
			if sz > maxV {
				maxV = sz
			}
			sumV += sz
		}
		st.MinViewSize = minV
		st.MaxViewSize = maxV
		st.AvgViewSize = float64(sumV) / float64(n)
	}
	return st
}

// IsLKE audits whether s is a Local Knowledge Equilibrium for the given
// responder: no player has a strictly improving response. This is exact
// when the responder is exact (MAXNCG), and a "local-move equilibrium"
// audit otherwise.
func IsLKE(s *game.State, cfg Config) bool {
	return FirstDeviator(s, cfg) == -1
}

// FirstDeviator returns the lowest-id player with a strictly improving
// response, or -1 when s is stable.
func FirstDeviator(s *game.State, cfg Config) int {
	cfg.Responder = cfg.ResolveResponder()
	if cfg.Responder == nil {
		panic("dynamics: nil responder")
	}
	for u := 0; u < s.N(); u++ {
		if cfg.Responder(s, u, cfg.K, cfg.Alpha).Improving {
			return u
		}
	}
	return -1
}
