package dynamics

import (
	"context"

	"repro/internal/bestresponse"
	"repro/internal/game"
	"repro/internal/graph"
)

// Responder computes a (best or better) response for one player. It must
// be deterministic for cycle detection to be sound, and — unless
// Config.Activation is ActivationEager — a function of the player's
// k-ball view plus the arcs bought towards her (the locality contract
// every responder in this repository satisfies), so the engine may skip
// players whose neighborhood has not changed.
type Responder func(s *game.State, u, k int, alpha float64) bestresponse.Response

// MaxResponder is the exact MAXNCG best responder (§5.3 reduction).
func MaxResponder(s *game.State, u, k int, alpha float64) bestresponse.Response {
	return bestresponse.MaxBestResponse(s, u, k, alpha)
}

// SumResponder is a SUMNCG responder: exact subset search when the view is
// small, greedy local moves otherwise (see DESIGN.md §3, substitution 4).
func SumResponder(maxCandidates int) Responder {
	return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
		ex := bestresponse.SumBestResponseExhaustive(s, u, k, alpha, maxCandidates)
		if ex.Feasible {
			return ex.Response
		}
		return bestresponse.SumGreedyResponse(s, u, k, alpha)
	}
}

// NewMaxResponder returns a MaxResponder bound to its own
// bestresponse.Evaluator, so a worker running many cells reuses one set
// of scratch buffers instead of going through the shared pool per call.
// Responses are identical to MaxResponder's.
func NewMaxResponder() Responder {
	e := bestresponse.NewEvaluator()
	return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
		return e.MaxBestResponse(s, u, k, alpha)
	}
}

// NewSumResponder is SumResponder bound to its own Evaluator; see
// NewMaxResponder.
func NewSumResponder(maxCandidates int) Responder {
	e := bestresponse.NewEvaluator()
	return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
		ex := e.SumBestResponseExhaustive(s, u, k, alpha, maxCandidates)
		if ex.Feasible {
			return ex.Response
		}
		return e.SumGreedyResponse(s, u, k, alpha)
	}
}

// Status describes how a dynamics run ended.
type Status int

const (
	// Converged: a full round completed with no strategy change.
	Converged Status = iota
	// Cycled: the end-of-round profile repeated an earlier round's profile
	// with intervening moves — under a fixed deterministic activation
	// order the dynamics will loop forever (§5.1).
	Cycled
	// RoundLimit: the round budget was exhausted without convergence or a
	// detected cycle.
	RoundLimit
)

// String names the status.
func (st Status) String() string {
	switch st {
	case Converged:
		return "converged"
	case Cycled:
		return "cycled"
	case RoundLimit:
		return "round-limit"
	default:
		return "unknown"
	}
}

// ParseStatus inverts Status.String (used by the ncgio codecs).
func ParseStatus(s string) (Status, bool) {
	switch s {
	case "converged":
		return Converged, true
	case "cycled":
		return Cycled, true
	case "round-limit":
		return RoundLimit, true
	default:
		return 0, false
	}
}

// RoundStats captures the network features the paper collects after each
// round (§5.1: diameter, social cost, degrees, bought edges, view sizes).
type RoundStats struct {
	Round       int
	Moves       int
	Diameter    int
	SocialCost  float64
	MaxDegree   int
	AvgDegree   float64
	MinBought   int
	MaxBought   int
	AvgBought   float64
	MinViewSize int
	MaxViewSize int
	AvgViewSize float64
	Quality     float64
	Unfairness  float64
}

// Result is the outcome of one dynamics run.
type Result struct {
	Status     Status
	Rounds     int
	TotalMoves int
	Final      *game.State
	PerRound   []RoundStats
	// FinalStats repeats the last collected round statistics for
	// convenience (zero value when no round ran).
	FinalStats RoundStats
	// Evaluations counts the responder calls actually made. Under the
	// default event-driven activation it is sub-linear in n·Rounds on
	// converging runs (clean players are skipped); the naive loop would
	// report exactly n per round. It is intentionally NOT serialized in
	// checkpoints — results are byte-identical either way, and this field
	// only observes how much work the engine avoided.
	Evaluations int
	// RoundEvaluations records the responder calls of each round when
	// CollectPerRound is set (parallel to PerRound), so trajectories can
	// chart the skip rate as a run approaches convergence.
	RoundEvaluations []int
}

// Config parameterizes a dynamics run.
type Config struct {
	Variant   game.Variant
	Alpha     float64
	K         int
	Responder Responder
	// NewResponder, when set, constructs a fresh responder owning its own
	// evaluation scratch. RunContext falls back to it when Responder is
	// nil, and LocalExecutor calls it once per worker so a sweep's
	// responder allocations stay O(workers) rather than O(moves). Both
	// fields must describe the same response rule.
	NewResponder func() Responder
	// MaxRounds bounds the run; cycle detection starts once the round
	// count exceeds CycleCheckAfter (the paper checks after a time
	// threshold; we use rounds as the deterministic analogue).
	MaxRounds       int
	CycleCheckAfter int
	// CollectPerRound enables per-round statistics (costly: all-pairs BFS
	// per round). The final round is always collected.
	CollectPerRound bool
	// Activation selects the engine's player-activation strategy; the
	// zero value is the event-driven default. See the package
	// documentation for the locality contract it relies on.
	Activation Activation
}

// DefaultConfig mirrors the paper's setup for the given variant. It sets
// NewResponder only, leaving Responder nil: an explicit Responder always
// wins (see ResolveResponder), so callers that assign one after
// DefaultConfig keep their override everywhere, including in per-worker
// executors.
func DefaultConfig(variant game.Variant, alpha float64, k int) Config {
	nr := NewMaxResponder
	if variant == game.Sum {
		nr = func() Responder { return NewSumResponder(16) }
	}
	return Config{
		Variant:         variant,
		Alpha:           alpha,
		K:               k,
		NewResponder:    nr,
		MaxRounds:       200,
		CycleCheckAfter: 30,
	}
}

// ResolveResponder returns the responder a run will use: the explicit
// Responder field when set, otherwise a fresh instance from NewResponder,
// or nil when neither is configured.
func (cfg Config) ResolveResponder() Responder {
	if cfg.Responder != nil {
		return cfg.Responder
	}
	if cfg.NewResponder != nil {
		return cfg.NewResponder()
	}
	return nil
}

// Run executes round-robin best-response dynamics on state s (§5.1): in
// each round every player, in id order, computes a response according to
// her local view; strictly improving responses are applied immediately.
// The run stops at convergence (a full quiet round), on a detected
// best-response cycle, or at the round budget. s is mutated in place.
func Run(s *game.State, cfg Config) Result {
	res, _ := RunContext(context.Background(), s, cfg)
	return res
}

// RunContext is Run with cancellation, checked between rounds. On
// cancellation it returns the partial result accumulated so far (without
// final statistics) together with ctx.Err(); the rounds already played
// before the cancellation point are identical to an uninterrupted run's.
func RunContext(ctx context.Context, s *game.State, cfg Config) (Result, error) {
	return runEngine(ctx, s, cfg, RoundRobin, nil, engineHooks{})
}

// engineHooks are the optional engine callbacks. onMove fires for every
// improving response, BEFORE the move is applied (so the state still
// holds the old strategy) — RunTraced builds its move log from it.
type engineHooks struct {
	onMove func(round, u int, r bestresponse.Response)
}

// runEngine is the one round loop behind every entry point: it applies
// the schedule's activation order, skips provably-unimprovable players
// via the dirty set (see activation.go), detects cycles where the
// schedule makes repeats conclusive, and collects statistics. rng is
// required by the permutation schedules and ignored by RoundRobin.
func runEngine(ctx context.Context, s *game.State, cfg Config, schedule Schedule, rng rngSource, hooks engineHooks) (Result, error) {
	cfg.Responder = cfg.ResolveResponder()
	if cfg.Responder == nil {
		panic("dynamics: nil responder")
	}
	if schedule != RoundRobin && rng == nil {
		panic("dynamics: permutation schedules need an RNG")
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 200
	}
	res := Result{Final: s}
	n := s.N()
	seen := map[uint64]int{} // end-of-round fingerprint → round index
	var order []int
	if schedule != RoundRobin {
		order = rng.Perm(n)
	}
	dirty := newDirtySet(n, cfg)
	defer dirty.release()
	var co collector
	defer co.release()
	for round := 1; round <= cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if schedule == RandomEachRound {
			order = rng.Perm(n)
		}
		moves, evals := 0, 0
		for idx := 0; idx < n; idx++ {
			u := idx
			if order != nil {
				u = order[idx]
			}
			if dirty.clean(u) {
				continue // response unchanged since last non-improving evaluation
			}
			evals++
			r := cfg.Responder(s, u, cfg.K, cfg.Alpha)
			if r.Improving {
				if hooks.onMove != nil {
					hooks.onMove(round, u, r)
				}
				dirty.apply(s, u, r.Strategy)
				moves++
			} else {
				dirty.settle(u)
			}
		}
		res.Rounds = round
		res.TotalMoves += moves
		res.Evaluations += evals
		if cfg.CollectPerRound {
			res.PerRound = append(res.PerRound, co.collect(s, cfg, round, moves))
			res.RoundEvaluations = append(res.RoundEvaluations, evals)
		}
		if moves == 0 {
			res.Status = Converged
			break
		}
		if schedule != RandomEachRound {
			fp := s.Fingerprint()
			if round > cfg.CycleCheckAfter {
				if _, dup := seen[fp]; dup {
					res.Status = Cycled
					break
				}
			}
			seen[fp] = round
		}
		if round == cfg.MaxRounds {
			res.Status = RoundLimit
		}
	}
	res.FinalStats = co.collect(s, cfg, res.Rounds, 0)
	if len(res.PerRound) > 0 {
		res.FinalStats.Moves = res.PerRound[len(res.PerRound)-1].Moves
	}
	return res, nil
}

// rngSource is the slice of *rand.Rand the engine needs; an interface so
// the signature does not force callers to build one for RoundRobin.
type rngSource interface {
	Perm(n int) []int
}

// collector owns the pooled buffers of per-round statistics collection:
// one CSR snapshot, one distance fan-out per metric family, and one BFS
// scratch for the view-size scan. It computes all player costs ONCE per
// collect and derives social cost, quality, and unfairness from the same
// pass (the naive form recomputed the all-pairs fan-out three times),
// and reads the diameter off the eccentricity fan-out for free. Values
// are bit-identical to the game.SocialCost/Quality/Unfairness chain —
// same operations in the same order — which referenceCollect pins.
type collector struct {
	csr     *graph.CSR
	ecc     []int
	sums    []int
	scratch *graph.Scratch
}

// collect computes the round statistics on the current network.
func (co *collector) collect(s *game.State, cfg Config, round, moves int) RoundStats {
	g := s.Graph()
	n := s.N()
	st := RoundStats{
		Round:     round,
		Moves:     moves,
		MaxDegree: g.MaxDegree(),
		AvgDegree: g.AverageDegree(),
		MinBought: s.MinBought(),
		MaxBought: s.MaxBought(),
	}
	co.csr = g.CSRInto(co.csr)
	co.ecc = co.csr.AllEccentricitiesInto(co.ecc)
	if n > 1 {
		for _, e := range co.ecc {
			if e > st.Diameter {
				st.Diameter = e
			}
		}
	}
	usage := co.ecc
	if cfg.Variant == game.Sum {
		co.sums = co.csr.AllSumDistancesInto(co.sums)
		usage = co.sums
	}
	// One cost pass feeds social cost, quality, and unfairness. The
	// per-player expression and the summation order match
	// game.AllPlayerCosts/SocialCost exactly, so the floats are identical.
	social := 0.0
	lo, hi := 0.0, 0.0
	for u := 0; u < n; u++ {
		c := cfg.Alpha*float64(s.BoughtCount(u)) + float64(usage[u])
		social += c
		if u == 0 || c < lo {
			lo = c
		}
		if u == 0 || c > hi {
			hi = c
		}
	}
	st.SocialCost = social
	if opt := game.OptimumSocialCost(n, cfg.Variant, cfg.Alpha); opt == 0 {
		st.Quality = 1
	} else {
		st.Quality = social / opt
	}
	switch {
	case n == 0:
		st.Unfairness = 1
	case lo == 0:
		st.Unfairness = game.InfiniteCost
	default:
		st.Unfairness = hi / lo
	}
	if n > 0 {
		st.AvgBought = float64(s.TotalBought()) / float64(n)
		if co.scratch == nil {
			co.scratch = graph.GetScratch(n)
		}
		minV, maxV, sumV := n+1, 0, 0
		for u := 0; u < n; u++ {
			sz := len(co.csr.BFSWithin(u, cfg.K, co.scratch))
			if sz < minV {
				minV = sz
			}
			if sz > maxV {
				maxV = sz
			}
			sumV += sz
		}
		st.MinViewSize = minV
		st.MaxViewSize = maxV
		st.AvgViewSize = float64(sumV) / float64(n)
	}
	return st
}

// release returns the pooled scratch; the collector stays reusable.
func (co *collector) release() {
	if co.scratch != nil {
		graph.PutScratch(co.scratch)
		co.scratch = nil
	}
}

// IsLKE audits whether s is a Local Knowledge Equilibrium for the given
// responder: no player has a strictly improving response. This is exact
// when the responder is exact (MAXNCG), and a "local-move equilibrium"
// audit otherwise.
func IsLKE(s *game.State, cfg Config) bool {
	return FirstDeviator(s, cfg) == -1
}

// FirstDeviator returns the lowest-id player with a strictly improving
// response, or -1 when s is stable.
func FirstDeviator(s *game.State, cfg Config) int {
	cfg.Responder = cfg.ResolveResponder()
	if cfg.Responder == nil {
		panic("dynamics: nil responder")
	}
	for u := 0; u < s.N(); u++ {
		if cfg.Responder(s, u, cfg.K, cfg.Alpha).Improving {
			return u
		}
	}
	return -1
}
