package dynamics

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
)

// SweepOptions tunes SweepContext beyond the plain Sweep defaults. The
// zero value reproduces Sweep exactly.
type SweepOptions struct {
	// Workers fixes the pool size; 0 means GOMAXPROCS. Results are
	// identical for any worker count (per-cell seeding), so this only
	// trades throughput for contention.
	Workers int
	// Have, when non-nil, is consulted before computing a cell. Returning
	// (r, true) reuses r instead of re-running the dynamics — the hook for
	// checkpoint resume and cross-job result caches. Reused results are
	// still delivered to OnResult in their canonical position.
	Have func(Cell) (Result, bool)
	// OnResult, when non-nil, receives every cell's result in canonical
	// cell order (the order of the cells slice), regardless of which
	// worker finished first: result i+1 is never delivered before result
	// i. A hold-back buffer sequences out-of-order completions, so a
	// consumer that appends each call to a file gets a byte-stable prefix
	// of the full canonical output even if the sweep is killed mid-run.
	// Reused is true when the result came from Have. A non-nil error
	// cancels the sweep.
	OnResult func(i int, r CellResult, reused bool) error
	// DiscardResults releases each result (including its final state)
	// right after its OnResult delivery instead of accumulating the full
	// slice — the streaming mode for sweeps far larger than memory. The
	// returned slice then holds zero values. Completed-but-not-yet-emitted
	// results are still buffered (the hold-back window), which stays
	// small unless one early cell is pathologically slower than the rest.
	DiscardResults bool
	// Gate, when non-nil, is a shared token bucket: each worker takes a
	// token before running a cell and returns it after, letting one
	// process-wide bucket cap CPU-bound concurrency across many
	// concurrent sweeps (the sweepd daemon's global worker cap).
	Gate chan struct{}
}

// SweepContext is Sweep with cancellation, resume, and streaming. It runs
// one dynamics per cell on a fixed worker pool and returns results indexed
// like cells. Each cell derives a private RNG from baseSeed and its own
// coordinates, so results are bit-identical regardless of worker count,
// scheduling, or resume point — the hpc-parallel "determinism independent
// of schedule" rule, extended to "independent of interruption".
//
// On cancellation it returns the partial results computed so far together
// with ctx.Err(); entries never reached hold the CellResult zero value
// (nil Result.Final). An OnResult error likewise aborts the sweep and is
// returned.
func SweepContext(ctx context.Context, cells []Cell, base Config, factory Factory, baseSeed int64, opt SweepOptions) ([]CellResult, error) {
	out := make([]CellResult, len(cells))
	reused := make([]bool, len(cells))

	// Resolve reusable cells up front so workers only see real work.
	todo := make([]int, 0, len(cells))
	for i, c := range cells {
		if opt.Have != nil {
			if r, ok := opt.Have(c); ok {
				out[i] = CellResult{Cell: c, Result: r}
				reused[i] = true
				continue
			}
		}
		todo = append(todo, i)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers < 1 {
		workers = 1
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	next := make(chan int)    // index into cells
	finished := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if opt.Gate != nil {
					select {
					case <-opt.Gate:
					case <-ctx.Done():
						return
					}
				}
				cell := cells[i]
				rng := rand.New(rand.NewSource(cellSeed(baseSeed, cell)))
				s := factory(cell, rng)
				cfg := base
				cfg.Alpha = cell.Alpha
				cfg.K = cell.K
				res, err := RunContext(ctx, s, cfg)
				if opt.Gate != nil {
					opt.Gate <- struct{}{}
				}
				if err != nil {
					return // canceled mid-run: discard the partial result
				}
				out[i] = CellResult{Cell: cell, Result: res}
				select {
				case finished <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(next)
		for _, i := range todo {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(finished)
	}()

	// Sequencer: emit results in canonical order. Reused cells are ready
	// immediately; computed cells become ready as workers finish.
	ready := make(map[int]bool, workers)
	nextEmit := 0
	var emitErr error
	emit := func() {
		for nextEmit < len(cells) {
			if !reused[nextEmit] && !ready[nextEmit] {
				return
			}
			delete(ready, nextEmit)
			if opt.OnResult != nil && emitErr == nil {
				if err := opt.OnResult(nextEmit, out[nextEmit], reused[nextEmit]); err != nil {
					emitErr = err
					cancel()
				}
			}
			if opt.DiscardResults {
				out[nextEmit] = CellResult{}
			}
			nextEmit++
		}
	}
	emit()
	for i := range finished {
		ready[i] = true
		emit()
	}
	if emitErr != nil {
		return out, emitErr
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
