package dynamics

import (
	"context"
	"fmt"
	"time"
)

// SweepOptions tunes SweepContext beyond the plain Sweep defaults. The
// zero value reproduces Sweep exactly.
type SweepOptions struct {
	// Workers fixes the pool size; 0 means GOMAXPROCS. Results are
	// identical for any worker count (per-cell seeding), so this only
	// trades throughput for contention.
	Workers int
	// Have, when non-nil, is consulted before computing a cell. Returning
	// (r, true) reuses r instead of re-running the dynamics — the hook for
	// checkpoint resume and cross-job result caches. Reused results are
	// still delivered to OnResult in their canonical position.
	Have func(Cell) (Result, bool)
	// OnResult, when non-nil, receives every cell's result in canonical
	// cell order (the order of the cells slice), regardless of which
	// worker finished first: result i+1 is never delivered before result
	// i. A hold-back buffer sequences out-of-order completions, so a
	// consumer that appends each call to a file gets a byte-stable prefix
	// of the full canonical output even if the sweep is killed mid-run.
	// Reused is true when the result came from Have. A non-nil error
	// cancels the sweep.
	OnResult func(i int, r CellResult, reused bool) error
	// DiscardResults releases each result (including its final state)
	// right after its OnResult delivery instead of accumulating the full
	// slice — the streaming mode for sweeps far larger than memory. The
	// returned slice then holds zero values. Completed-but-not-yet-emitted
	// results are still buffered (the hold-back window), which stays
	// small unless one early cell is pathologically slower than the rest.
	DiscardResults bool
	// Gate, when non-nil, is a shared token bucket: each worker takes a
	// token before running a cell and returns it after, letting one
	// process-wide bucket cap CPU-bound concurrency across many
	// concurrent sweeps (the sweepd daemon's global worker cap).
	Gate chan struct{}
	// Executor is the compute backend; nil means LocalExecutor (the
	// in-process pool). Per-cell seeding makes results identical for any
	// backend, so swapping executors only changes where cells run — the
	// sweepd daemon plugs in a peer-sharding executor here.
	Executor Executor
	// Observe, when non-nil, receives the wall time of every locally
	// computed cell (reused and remote cells excluded). It may be called
	// concurrently from worker goroutines.
	Observe func(i int, d time.Duration)
}

// SweepContext is Sweep with cancellation, resume, and streaming. It
// resolves reusable cells via Have, hands the remainder to the configured
// Executor (an in-process pool by default), and sequences results back
// into canonical cell order. Each cell derives a private RNG from baseSeed
// and its own coordinates, so results are bit-identical regardless of
// worker count, scheduling, resume point, or which backend computed each
// cell — the hpc-parallel "determinism independent of schedule" rule,
// extended to "independent of interruption and placement".
//
// On cancellation it returns the partial results computed so far together
// with ctx.Err(); entries never reached hold the CellResult zero value
// (nil Result.Final). An OnResult error likewise aborts the sweep and is
// returned. An executor that closes its channel without delivering every
// todo cell (and without a context error) is reported as an error rather
// than silently shorting the grid.
func SweepContext(ctx context.Context, cells []Cell, base Config, factory Factory, baseSeed int64, opt SweepOptions) ([]CellResult, error) {
	out := make([]CellResult, len(cells))
	reused := make([]bool, len(cells))

	// Resolve reusable cells up front so the executor only sees real work.
	todo := make([]int, 0, len(cells))
	for i, c := range cells {
		if opt.Have != nil {
			if r, ok := opt.Have(c); ok {
				out[i] = CellResult{Cell: c, Result: r}
				reused[i] = true
				continue
			}
		}
		todo = append(todo, i)
	}

	exec := opt.Executor
	if exec == nil {
		exec = LocalExecutor{}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := exec.Execute(ctx, ExecRequest{
		Cells:    cells,
		Todo:     todo,
		Base:     base,
		Factory:  factory,
		BaseSeed: baseSeed,
		Workers:  opt.Workers,
		Gate:     opt.Gate,
		Observe:  opt.Observe,
	})

	// Sequencer: emit results in canonical order. Reused cells are ready
	// immediately; computed cells become ready as the executor delivers.
	ready := make(map[int]bool)
	nextEmit := 0
	var emitErr error
	emit := func() {
		for nextEmit < len(cells) {
			if !reused[nextEmit] && !ready[nextEmit] {
				return
			}
			delete(ready, nextEmit)
			if opt.OnResult != nil && emitErr == nil {
				if err := opt.OnResult(nextEmit, out[nextEmit], reused[nextEmit]); err != nil {
					emitErr = err
					cancel()
				}
			}
			if opt.DiscardResults {
				out[nextEmit] = CellResult{}
			}
			nextEmit++
		}
	}
	emit()
	delivered := 0
	for ir := range results {
		if ir.Index < 0 || ir.Index >= len(cells) {
			continue // defensive: a buggy executor must not panic the sweep
		}
		out[ir.Index] = CellResult{Cell: cells[ir.Index], Result: ir.Result}
		ready[ir.Index] = true
		delivered++
		emit()
	}
	if emitErr != nil {
		return out, emitErr
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if delivered < len(todo) {
		return out, fmt.Errorf("dynamics: executor delivered %d of %d cells", delivered, len(todo))
	}
	return out, nil
}
