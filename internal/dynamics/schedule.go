package dynamics

import (
	"context"
	"math/rand"

	"repro/internal/bestresponse"
	"repro/internal/game"
)

// Schedule determines the player order within each round. The paper uses
// round-robin (§5.1); the alternatives support ablations on how much the
// activation order matters for convergence speed and equilibrium quality.
type Schedule int

const (
	// RoundRobin activates players 0..n-1 in id order every round
	// (the paper's §5.1 policy).
	RoundRobin Schedule = iota
	// FixedPermutation draws one random permutation up front and reuses
	// it every round.
	FixedPermutation
	// RandomEachRound draws a fresh permutation every round. Cycle
	// detection is disabled (repeats are no longer conclusive).
	RandomEachRound
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case FixedPermutation:
		return "fixed-permutation"
	case RandomEachRound:
		return "random-each-round"
	default:
		return "unknown"
	}
}

// MaxGreedyResponder is the single-move "better response" for MAXNCG —
// the dynamics variant whose divergence the paper cites from
// Kawald–Lenzner (§2).
func MaxGreedyResponder(s *game.State, u, k int, alpha float64) bestresponse.Response {
	return bestresponse.MaxGreedyResponse(s, u, k, alpha)
}

// RunScheduled is Run with an explicit activation schedule. rng is used
// by the permutation schedules and may be nil for RoundRobin.
func RunScheduled(s *game.State, cfg Config, schedule Schedule, rng *rand.Rand) Result {
	res, _ := RunScheduledContext(context.Background(), s, cfg, schedule, rng)
	return res
}

// RunScheduledContext is RunScheduled with cancellation, checked between
// rounds; see RunContext for the partial-result contract. All schedules
// share the one engine, so they report identically: cycle detection runs
// whenever the activation order is deterministic across rounds
// (RoundRobin and FixedPermutation), and FinalStats.Moves reflects the
// last collected round.
func RunScheduledContext(ctx context.Context, s *game.State, cfg Config, schedule Schedule, rng *rand.Rand) (Result, error) {
	if schedule == RoundRobin {
		return runEngine(ctx, s, cfg, RoundRobin, nil, engineHooks{})
	}
	var src rngSource
	if rng != nil {
		src = rng
	}
	return runEngine(ctx, s, cfg, schedule, src, engineHooks{})
}
