package dynamics

import (
	"math/rand"

	"repro/internal/bestresponse"
	"repro/internal/game"
)

// Schedule determines the player order within each round. The paper uses
// round-robin (§5.1); the alternatives support ablations on how much the
// activation order matters for convergence speed and equilibrium quality.
type Schedule int

const (
	// RoundRobin activates players 0..n-1 in id order every round
	// (the paper's §5.1 policy).
	RoundRobin Schedule = iota
	// FixedPermutation draws one random permutation up front and reuses
	// it every round.
	FixedPermutation
	// RandomEachRound draws a fresh permutation every round. Cycle
	// detection is disabled (repeats are no longer conclusive).
	RandomEachRound
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case FixedPermutation:
		return "fixed-permutation"
	case RandomEachRound:
		return "random-each-round"
	default:
		return "unknown"
	}
}

// MaxGreedyResponder is the single-move "better response" for MAXNCG —
// the dynamics variant whose divergence the paper cites from
// Kawald–Lenzner (§2).
func MaxGreedyResponder(s *game.State, u, k int, alpha float64) bestresponse.Response {
	return bestresponse.MaxGreedyResponse(s, u, k, alpha)
}

// RunScheduled is Run with an explicit activation schedule. rng is used
// by the permutation schedules and may be nil for RoundRobin.
func RunScheduled(s *game.State, cfg Config, schedule Schedule, rng *rand.Rand) Result {
	if schedule == RoundRobin {
		return Run(s, cfg)
	}
	cfg.Responder = cfg.ResolveResponder()
	if cfg.Responder == nil {
		panic("dynamics: nil responder")
	}
	if rng == nil {
		panic("dynamics: permutation schedules need an RNG")
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 200
	}
	res := Result{Final: s}
	seen := map[uint64]int{}
	n := s.N()
	order := rng.Perm(n)
	for round := 1; round <= cfg.MaxRounds; round++ {
		if schedule == RandomEachRound {
			order = rng.Perm(n)
		}
		moves := 0
		for _, u := range order {
			r := cfg.Responder(s, u, cfg.K, cfg.Alpha)
			if r.Improving {
				s.SetStrategy(u, r.Strategy)
				moves++
			}
		}
		res.Rounds = round
		res.TotalMoves += moves
		if cfg.CollectPerRound {
			res.PerRound = append(res.PerRound, collect(s, cfg, round, moves))
		}
		if moves == 0 {
			res.Status = Converged
			break
		}
		if schedule == FixedPermutation && round > cfg.CycleCheckAfter {
			fp := s.Fingerprint()
			if _, dup := seen[fp]; dup {
				res.Status = Cycled
				break
			}
			seen[fp] = round
		}
		if round == cfg.MaxRounds {
			res.Status = RoundLimit
		}
	}
	res.FinalStats = collect(s, cfg, res.Rounds, 0)
	return res
}
