package dynamics

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// ExecRequest describes one batch of cell computations handed to an
// Executor: the full canonical grid plus the indices still to compute
// (cells satisfied by SweepOptions.Have never reach an executor). The
// executor contract is placement-agnostic — per-cell seeding derives each
// cell's RNG from BaseSeed and the cell coordinates alone, so any backend
// (a local pool, a remote peer, a mix) produces identical Results for the
// same request.
type ExecRequest struct {
	// Cells is the full canonical grid; Todo indexes into it.
	Cells []Cell
	// Todo lists the indices the executor must compute, in ascending
	// order. Results may be delivered in any order.
	Todo []int
	// Base, Factory, and BaseSeed parameterize each cell's run exactly as
	// in SweepContext: Alpha and K are overridden per cell.
	Base     Config
	Factory  Factory
	BaseSeed int64
	// Workers bounds local compute concurrency (0 = GOMAXPROCS); Gate,
	// when non-nil, is the shared token bucket capping CPU-bound work
	// across concurrent sweeps (see SweepOptions.Gate).
	Workers int
	Gate    chan struct{}
	// Observe, when non-nil, receives the wall-clock duration of every
	// cell computed locally (remote or reused cells are not observed).
	// It may be called concurrently from multiple workers.
	Observe func(i int, d time.Duration)
}

// IndexedResult pairs one computed cell's Result with its canonical index
// into ExecRequest.Cells.
type IndexedResult struct {
	Index  int
	Result Result
}

// Executor is a pluggable compute backend for sweeps. Execute returns a
// channel carrying one IndexedResult per req.Todo entry, in any order;
// the channel is closed when all work is delivered or ctx is canceled
// (in which case undelivered cells are simply absent — the sequencing
// layer in SweepContext detects the shortfall). Implementations must not
// deliver an index outside req.Todo.
type Executor interface {
	Execute(ctx context.Context, req ExecRequest) <-chan IndexedResult
}

// LocalExecutor runs cells on an in-process worker pool — the backend
// SweepContext used before executors were pluggable, with identical
// semantics: a fixed pool draws cell indices from a feeder channel, each
// worker takes a Gate token (when configured) around its dynamics run,
// and a cell interrupted by cancellation is discarded rather than
// delivered partially.
type LocalExecutor struct{}

// Execute implements Executor on an in-process pool.
func (LocalExecutor) Execute(ctx context.Context, req ExecRequest) <-chan IndexedResult {
	workers := req.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Todo) {
		workers = len(req.Todo)
	}
	if workers < 1 {
		workers = 1
	}
	out := make(chan IndexedResult, workers)
	next := make(chan int) // index into req.Cells
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One responder per worker: its evaluation scratch is reused
			// across every cell this goroutine runs, keeping sweep
			// allocations O(workers) instead of O(moves).
			workerResponder := req.Base.ResolveResponder()
			for i := range next {
				if req.Gate != nil {
					select {
					case <-req.Gate:
					case <-ctx.Done():
						return
					}
				}
				cell := req.Cells[i]
				rng := rand.New(rand.NewSource(cellSeed(req.BaseSeed, cell)))
				s := req.Factory(cell, rng)
				cfg := req.Base
				cfg.Alpha = cell.Alpha
				cfg.K = cell.K
				if workerResponder != nil {
					cfg.Responder = workerResponder
				}
				start := time.Now()
				res, err := RunContext(ctx, s, cfg)
				if req.Gate != nil {
					req.Gate <- struct{}{}
				}
				if err != nil {
					return // canceled mid-run: discard the partial result
				}
				if req.Observe != nil {
					req.Observe(i, time.Since(start))
				}
				select {
				case out <- IndexedResult{Index: i, Result: res}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(next)
		for _, i := range req.Todo {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
