package dynamics_test

// External test package: these tests exercise SweepContext together with
// the ncgio codec (which itself imports dynamics), checking the three
// determinism contracts the sweepd daemon builds on: worker-count
// invariance, in-order emission, and resume ≡ uninterrupted.

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/ncgio"
)

func testGrid() []dynamics.Cell {
	return dynamics.Grid([]float64{0.5, 1, 2}, []int{2, 4, 1000}, 3)
}

func testFactory(n int) dynamics.Factory {
	return func(cell dynamics.Cell, rng *rand.Rand) *game.State {
		return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
	}
}

func marshalAll(t *testing.T, rs []dynamics.CellResult) [][]byte {
	t.Helper()
	out := make([][]byte, len(rs))
	for i, r := range rs {
		line, err := ncgio.MarshalCellResult(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = line
	}
	return out
}

// TestSweepContextWorkerInvariance is the GOMAXPROCS=1 vs many-workers
// determinism check: per-cell seeding must make the encoded results
// byte-identical for a serial pool and a heavily parallel one.
func TestSweepContextWorkerInvariance(t *testing.T) {
	cells := testGrid()
	cfg := dynamics.DefaultConfig(game.Max, 0, 0)
	serial, err := dynamics.SweepContext(context.Background(), cells, cfg, testFactory(14), 5,
		dynamics.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := dynamics.SweepContext(context.Background(), cells, cfg, testFactory(14), 5,
		dynamics.SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := marshalAll(t, serial), marshalAll(t, parallel)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("cell %d differs between 1 and 8 workers:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestSweepContextEmitsInCanonicalOrder(t *testing.T) {
	cells := testGrid()
	cfg := dynamics.DefaultConfig(game.Max, 0, 0)
	next := 0
	_, err := dynamics.SweepContext(context.Background(), cells, cfg, testFactory(12), 3,
		dynamics.SweepOptions{
			Workers: 6,
			OnResult: func(i int, r dynamics.CellResult, reused bool) error {
				if i != next {
					t.Fatalf("emission out of order: got index %d, want %d", i, next)
				}
				if reused {
					t.Fatalf("cell %d marked reused without a Have hook", i)
				}
				if r.Cell != cells[i] {
					t.Fatalf("cell %d payload mismatch", i)
				}
				next++
				return nil
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if next != len(cells) {
		t.Fatalf("emitted %d results, want %d", next, len(cells))
	}
}

// TestSweepContextResumeMatchesUninterrupted aborts a sweep partway
// through (as a crash would), then resumes via Have from the delivered
// prefix, emulating the sweepd checkpoint protocol: the concatenation of
// the prefix lines and the resumed run's new lines must be byte-identical
// to an uninterrupted run's output.
func TestSweepContextResumeMatchesUninterrupted(t *testing.T) {
	cells := testGrid()
	cfg := dynamics.DefaultConfig(game.Max, 0, 0)
	full, err := dynamics.SweepContext(context.Background(), cells, cfg, testFactory(14), 11,
		dynamics.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fullLines := marshalAll(t, full)

	const cut = 7
	errKilled := errors.New("simulated crash")
	checkpoint := map[dynamics.Cell]dynamics.Result{}
	var prefix [][]byte
	_, err = dynamics.SweepContext(context.Background(), cells, cfg, testFactory(14), 11,
		dynamics.SweepOptions{
			Workers: 5,
			OnResult: func(i int, r dynamics.CellResult, reused bool) error {
				if len(prefix) == cut {
					return errKilled
				}
				line, merr := ncgio.MarshalCellResult(r)
				if merr != nil {
					return merr
				}
				prefix = append(prefix, line)
				checkpoint[r.Cell] = r.Result
				return nil
			},
		})
	if !errors.Is(err, errKilled) {
		t.Fatalf("interrupted sweep error = %v, want simulated crash", err)
	}
	if len(prefix) != cut {
		t.Fatalf("checkpoint has %d lines, want %d", len(prefix), cut)
	}

	resumed := append([][]byte(nil), prefix...)
	_, err = dynamics.SweepContext(context.Background(), cells, cfg, testFactory(14), 11,
		dynamics.SweepOptions{
			Workers: 3,
			Have: func(c dynamics.Cell) (dynamics.Result, bool) {
				r, ok := checkpoint[c]
				return r, ok
			},
			OnResult: func(i int, r dynamics.CellResult, reused bool) error {
				if reused {
					return nil // already checkpointed
				}
				line, merr := ncgio.MarshalCellResult(r)
				if merr != nil {
					return merr
				}
				resumed = append(resumed, line)
				return nil
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(fullLines) {
		t.Fatalf("resumed output has %d lines, want %d", len(resumed), len(fullLines))
	}
	for i := range fullLines {
		if !bytes.Equal(resumed[i], fullLines[i]) {
			t.Fatalf("line %d differs after resume:\n%s\n%s", i, resumed[i], fullLines[i])
		}
	}
}

func TestSweepContextGateAndDiscard(t *testing.T) {
	cells := testGrid()
	cfg := dynamics.DefaultConfig(game.Max, 0, 0)
	gate := make(chan struct{}, 2)
	gate <- struct{}{}
	gate <- struct{}{}
	var got []dynamics.CellResult
	out, err := dynamics.SweepContext(context.Background(), cells, cfg, testFactory(12), 3,
		dynamics.SweepOptions{
			Workers: 6, // six goroutines contending for two tokens
			Gate:    gate,
			OnResult: func(i int, r dynamics.CellResult, reused bool) error {
				got = append(got, r)
				return nil
			},
			DiscardResults: true,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("emitted %d results, want %d", len(got), len(cells))
	}
	if len(gate) != 2 {
		t.Fatalf("gate tokens leaked: %d of 2 returned", len(gate))
	}
	for i, r := range out {
		if r.Result.Final != nil {
			t.Fatalf("result %d not discarded after emission", i)
		}
	}
	// The streamed results must match a plain sweep.
	plain := dynamics.Sweep(cells, cfg, testFactory(12), 3)
	for i := range plain {
		if got[i].Result.Final.Fingerprint() != plain[i].Result.Final.Fingerprint() {
			t.Fatalf("gated sweep cell %d diverges from plain sweep", i)
		}
	}
}

func TestSweepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := dynamics.SweepContext(ctx, testGrid(), dynamics.DefaultConfig(game.Max, 0, 0),
		testFactory(12), 1, dynamics.SweepOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := game.FromGraphLowOwners(gen.Path(10))
	_, err := dynamics.RunContext(ctx, s, dynamics.DefaultConfig(game.Max, 0.5, 1000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
