package dynamics

import (
	"repro/internal/game"
	"repro/internal/graph"
)

// Activation selects how the engine decides which players to evaluate
// each round.
type Activation int

const (
	// ActivationDirty is the event-driven default: players provably
	// unaffected by recent moves are skipped. Results are bit-identical
	// to evaluating everyone as long as responders honor the locality
	// contract (see the package documentation); every responder in this
	// repository does.
	ActivationDirty Activation = iota
	// ActivationEager evaluates every player every round — required for
	// custom responders that read state outside the k-ball-plus-incident-
	// arcs contract, and useful as a differential baseline.
	ActivationEager
)

// dirtySet tracks the per-player clean/dirty bits of the event-driven
// engine. A player is clean when her last evaluated response was
// non-improving AND no arc incident to a vertex within distance ≤ k of
// her changed since: her responder input is unchanged, so re-evaluating
// would reproduce the same non-improving answer.
//
// apply marks the over-approximated affected set of a move: a bounded
// multi-source BFS from the mover and every changed arc target, in BOTH
// the pre- and post-move graph (an arc removal shrinks balls — players
// who saw the old arc are reachable in the pre-graph; an addition grows
// them — reachable in the post-graph). Everything starts dirty, so the
// first round evaluates everyone.
type dirtySet struct {
	enabled bool
	k       int
	dirty   []bool
	scratch *graph.Scratch
	srcs    []int32
	diff    []int32
}

// newDirtySet builds the activation tracker for a run; with
// ActivationEager it is a no-op shell and borrows no scratch.
func newDirtySet(n int, cfg Config) *dirtySet {
	d := &dirtySet{k: cfg.K}
	if cfg.Activation != ActivationDirty {
		return d
	}
	d.enabled = true
	d.dirty = make([]bool, n)
	for i := range d.dirty {
		d.dirty[i] = true
	}
	d.scratch = graph.GetScratch(n)
	return d
}

// clean reports whether u can be skipped this activation.
func (d *dirtySet) clean(u int) bool {
	return d.enabled && !d.dirty[u]
}

// settle records a non-improving evaluation: u stays clean until a move
// touches her neighborhood.
func (d *dirtySet) settle(u int) {
	if d.enabled {
		d.dirty[u] = false
	}
}

// apply performs u's move and dirties every possibly-affected player.
func (d *dirtySet) apply(s *game.State, u int, strategy []int) {
	if !d.enabled {
		s.SetStrategy(u, strategy)
		return
	}
	d.diff = s.StrategyDiff(u, strategy, d.diff[:0])
	d.srcs = append(d.srcs[:0], int32(u))
	d.srcs = append(d.srcs, d.diff...)
	d.mark(s.Graph())
	s.SetStrategy(u, strategy)
	d.mark(s.Graph())
}

// mark dirties everyone within distance k of the staged sources.
func (d *dirtySet) mark(g *graph.Graph) {
	for _, v := range g.MultiBFSWithinScratch(d.srcs, d.k, d.scratch) {
		d.dirty[v] = true
	}
}

// release returns the pooled scratch.
func (d *dirtySet) release() {
	if d.scratch != nil {
		graph.PutScratch(d.scratch)
		d.scratch = nil
	}
}
