package dynamics

import (
	"math/rand"
	"sort"

	"repro/internal/bestresponse"
	"repro/internal/game"
	"repro/internal/swap"
)

// This file adapts the non-best-response move rules behind the Responder
// seam, so the one engine (engine.go) runs every dialect: schedules,
// dirty-set activation, cycle detection, trajectories, and checkpoint
// byte-identity all come for free.

// SwapResponder adapts swap.BestSwap to the engine: the player's only
// move is to re-point one endpoint of an edge she owns (no purchases, no
// deletions — Alon et al.'s basic game under the locality model; see
// package swap). α is ignored by the move rule: the edge count never
// changes, so the building term cancels out of every comparison. The
// responder is stateless and deterministic, and it reads only the
// player's k-ball view plus the arcs bought towards her, so event-driven
// activation stays sound. Cost fields of the response are not populated
// (the swap scan compares integer usage costs internally).
//
// Applying the returned strategy through game.SetStrategy removes
// exactly the old endpoint and appends exactly the new one, the same
// adjacency-list evolution as swap.Apply — so engine-run swap dynamics
// are cell-for-cell identical to swap.Run, which the sweepd differential
// tests pin.
func SwapResponder(variant game.Variant) Responder {
	obj := swap.MaxEcc
	if variant == game.Sum {
		obj = swap.SumDist
	}
	return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
		m, ok := swap.BestSwap(s, u, k, obj)
		if !ok {
			return bestresponse.Response{Strategy: s.Strategy(u), Improving: false}
		}
		cur := s.Strategy(u)
		out := make([]int, 0, len(cur))
		for _, w := range cur {
			if w != m.Old {
				out = append(out, w)
			}
		}
		out = append(out, m.New)
		sort.Ints(out)
		return bestresponse.Response{Strategy: out, Improving: true}
	}
}

// NewLargeNeighborhoodResponder returns a constructor for responders
// running shift/exchange best-improvement descent (see
// bestresponse/large.go) bound to their own Evaluator — the
// large-neighborhood dialect's analogue of NewMaxResponder /
// NewSumResponder.
func NewLargeNeighborhoodResponder(variant game.Variant) func() Responder {
	return func() Responder {
		e := bestresponse.NewEvaluator()
		if variant == game.Sum {
			return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
				return e.SumLargeNeighborhoodResponse(s, u, k, alpha)
			}
		}
		return func(s *game.State, u, k int, alpha float64) bestresponse.Response {
			return e.MaxLargeNeighborhoodResponse(s, u, k, alpha)
		}
	}
}

// CellState reconstructs the starting state a sweep builds for one cell:
// the factory applied to the cell's private RNG stream derived from the
// base seed. Exported so differential tests (and debugging tools) can
// re-create the exact network a daemon-run cell started from and replay
// it through an independent implementation.
func CellState(factory Factory, cell Cell, baseSeed int64) *game.State {
	rng := rand.New(rand.NewSource(cellSeed(baseSeed, cell)))
	return factory(cell, rng)
}
