package construction

import (
	"fmt"
	"math/rand"

	"repro/internal/game"
	"repro/internal/gen"
)

// CycleState builds the Lemma 3.1 configuration: a cycle on n >= 2k+2
// vertices where player i buys the edge towards i+1, so "each player owns
// exactly one edge". It is an LKE for MAXNCG whenever α >= k−1, giving
// PoA = Ω(n/(1+α)).
func CycleState(n int) (*game.State, error) {
	if n < 3 {
		return nil, fmt.Errorf("construction: cycle needs n >= 3, got %d", n)
	}
	s := game.NewState(n)
	for i := 0; i < n; i++ {
		s.Buy(i, (i+1)%n)
	}
	return s, nil
}

// HighGirthState builds the Lemma 3.2 / Theorem 4.3 configuration: a
// q-regular graph with girth >= 2k+2 (so every player's view is a tree),
// with each edge owned by a uniformly random endpoint. It uses the exact
// projective-plane incidence graph when 2k+2 <= 6 and a prime q-1 exists,
// and the randomized high-girth generator otherwise (DESIGN.md §3,
// substitution 2).
func HighGirthState(n, q, k int, rng *rand.Rand) (*game.State, error) {
	g, err := gen.RegularHighGirth(n, q, 2*k+2, rng, 200)
	if err != nil {
		return nil, err
	}
	return game.FromGraphRandomOwners(g, rng), nil
}

// ProjectivePlaneState builds the exact girth-6 member of the Lemma 3.2
// family (k = 2): the incidence graph of PG(2,q) with random edge owners.
func ProjectivePlaneState(q int, rng *rand.Rand) (*game.State, error) {
	g, err := gen.ProjectivePlaneIncidence(q)
	if err != nil {
		return nil, err
	}
	return game.FromGraphRandomOwners(g, rng), nil
}
