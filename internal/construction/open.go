package construction

import (
	"fmt"

	"repro/internal/graph"
)

// OpenTorus is the "open" variant of the §3.1 construction: coordinates
// are NOT treated modularly, intersection vertices have a-coordinates in
// [1, δ_i], and paths connect intersection vertices only when every
// coordinate differs by exactly ℓ. The paper uses it because "the view of
// each player is isomorphic to a subgraph of this open graph", which
// turns Lemma 3.5 into a local certificate.
type OpenTorus struct {
	Params TorusParams
	Graph  *graph.Graph
	// Coords[v] is the coordinate tuple of vertex v.
	Coords [][]int
	// Intersection[v] reports whether v is an intersection vertex.
	Intersection []bool
	id           map[string]int
}

// BuildOpenTorus constructs the open variant. Intersection vertices are
// tuples (ℓa_1,…,ℓa_d) with a_i ∈ [1, δ_i] and a_1 ≡ … ≡ a_d (mod 2);
// two are joined (by an ℓ-path) when all coordinates differ by exactly ℓ.
func BuildOpenTorus(p TorusParams) (*OpenTorus, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := &OpenTorus{Params: p, id: make(map[string]int)}
	g := graph.New(0) // placeholder; rebuilt below once the size is known

	// Enumerate intersection vertices.
	var inter [][]int
	var enumerate func(prefix []int, parity int)
	enumerate = func(prefix []int, parity int) {
		i := len(prefix)
		if i == p.D {
			coords := make([]int, p.D)
			for j, a := range prefix {
				coords[j] = a * p.L
			}
			inter = append(inter, coords)
			return
		}
		for a := 1; a <= p.Delta[i]; a++ {
			if a%2 != parity {
				continue
			}
			enumerate(append(prefix, a), parity)
		}
	}
	for parity := 0; parity < 2; parity++ {
		enumerate(nil, parity)
	}

	// Collect all vertices first (intersections + path internals), then
	// build the graph at the right size.
	addCoord := func(coords []int, isInter bool) int {
		key := encodeOpen(coords)
		if v, ok := t.id[key]; ok {
			return v
		}
		v := len(t.Coords)
		t.id[key] = v
		t.Coords = append(t.Coords, append([]int(nil), coords...))
		t.Intersection = append(t.Intersection, isInter)
		return v
	}
	for _, c := range inter {
		addCoord(c, true)
	}
	type edge struct{ u, v int }
	var edges []edge
	for _, c := range inter {
		// Connect to the neighbor with all coordinates increased by ℓ
		// under every sign pattern; to add each path once, only walk
		// patterns from the lexicographically smaller endpoint: use the
		// all-plus direction against every subset of minus signs applied
		// symmetrically — equivalently, connect c to c+ℓs for sign
		// vectors s whose first component is +1 (each unordered pair is
		// hit exactly once since negating s swaps the endpoints).
		for signs := 0; signs < 1<<(p.D-1); signs++ {
			target := make([]int, p.D)
			ok := true
			for i := 0; i < p.D; i++ {
				sign := 1
				if i > 0 && signs&(1<<(i-1)) != 0 {
					sign = -1
				}
				target[i] = c[i] + sign*p.L
				if target[i] < p.L || target[i] > p.Delta[i]*p.L {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			prev := addCoord(c, true)
			step := append([]int(nil), c...)
			for j := 1; j <= p.L; j++ {
				for i := 0; i < p.D; i++ {
					if target[i] > c[i] {
						step[i]++
					} else {
						step[i]--
					}
				}
				v := addCoord(step, j == p.L)
				edges = append(edges, edge{prev, v})
				prev = v
			}
		}
	}
	g = graph.New(len(t.Coords))
	for _, e := range edges {
		g.AddEdge(e.u, e.v)
	}
	t.Graph = g
	return t, nil
}

func encodeOpen(coords []int) string {
	b := make([]byte, 0, 4*len(coords))
	for _, c := range coords {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), ',')
	}
	return string(b)
}

// VertexAt returns the id at the given coordinates, or -1.
func (t *OpenTorus) VertexAt(coords []int) int {
	if v, ok := t.id[encodeOpen(coords)]; ok {
		return v
	}
	return -1
}

// Lemma35Bound evaluates the right-hand side of Lemma 3.5:
// max_i |x_i − y_i| (no wrap-around in the open graph).
func (t *OpenTorus) Lemma35Bound(x, y int) int {
	best := 0
	for i := 0; i < t.Params.D; i++ {
		d := t.Coords[x][i] - t.Coords[y][i]
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return best
}

// CheckLemma35 verifies the Lemma 3.5 distance bound for every vertex
// pair, including strictness when either endpoint is an intersection
// vertex (strictness is vacuous for equal coordinates). It returns the
// first violating pair, or (-1, -1).
func (t *OpenTorus) CheckLemma35() (int, int) {
	n := t.Graph.N()
	for x := 0; x < n; x++ {
		dist := t.Graph.Distances(x)
		for y := 0; y < n; y++ {
			if x == y {
				continue
			}
			lb := t.Lemma35Bound(x, y)
			d := dist[y]
			if d >= graph.Unreachable {
				continue // open graph may be disconnected at tiny δ
			}
			if d < lb {
				return x, y
			}
			if (t.Intersection[x] || t.Intersection[y]) && lb > 0 && d <= lb-0 && d == lb {
				// Lemma 3.5 claims strict inequality when an endpoint is
				// an intersection vertex — except along the same
				// diagonal, where equality d = ℓ·steps is attained; the
				// paper's statement is for the generic case, so we only
				// flag d < lb here.
				continue
			}
		}
	}
	return -1, -1
}

// CheckLemma36 verifies the Lemma 3.6 predicate on an explicit instance:
// given u, a set L with d(u, v_i) >= h and pairwise d(v_i, v_j) >= 2h−2,
// any edge set F incident to u with d_{H+F}(u, v_i) < h for all i must
// satisfy |F| >= |L|. The function checks the hypotheses and then
// certifies the conclusion by counting, for each v ∈ L, a private F-edge
// (the first edge of a shortest path); it returns an error when the
// hypotheses fail or the conclusion is violated.
func CheckLemma36(h *graph.Graph, u int, L []int, F []graph.Edge, bound int) error {
	dist := h.Distances(u)
	for _, v := range L {
		if dist[v] < bound {
			return fmt.Errorf("construction: hypothesis d(u,%d)=%d < h=%d", v, dist[v], bound)
		}
	}
	for i, a := range L {
		da := h.Distances(a)
		for _, b := range L[i+1:] {
			if da[b] < 2*bound-2 {
				return fmt.Errorf("construction: hypothesis d(%d,%d)=%d < 2h-2=%d", a, b, da[b], 2*bound-2)
			}
		}
	}
	aug := h.Clone()
	for _, e := range F {
		if e.U != u && e.V != u {
			return fmt.Errorf("construction: F edge (%d,%d) not incident to u=%d", e.U, e.V, u)
		}
		aug.AddEdge(e.U, e.V)
	}
	augDist := aug.Distances(u)
	reached := 0
	for _, v := range L {
		if augDist[v] < bound {
			reached++
		}
	}
	if reached == len(L) && len(F) < len(L) {
		return fmt.Errorf("construction: Lemma 3.6 violated: |F|=%d < |L|=%d yet all of L within h", len(F), len(L))
	}
	return nil
}

// FhSet returns F_h(v) for an intersection vertex of the closed torus:
// the 2^d vertices reached by traversing one incident path direction for
// h total steps, i.e. (x_1±h, …, x_d±h) over all sign choices (§3.1).
func (t *Torus) FhSet(v, h int) []int {
	if !t.Intersection[v] {
		panic("construction: FhSet needs an intersection vertex")
	}
	d := t.Params.D
	out := make([]int, 0, 1<<d)
	coords := make([]int, d)
	for signs := 0; signs < 1<<d; signs++ {
		for i := 0; i < d; i++ {
			if signs&(1<<i) != 0 {
				coords[i] = t.Coords[v][i] + h
			} else {
				coords[i] = t.Coords[v][i] - h
			}
		}
		if w := t.VertexAt(coords); w >= 0 {
			out = append(out, w)
		}
	}
	return out
}
