// Package construction builds the paper's lower-bound graphs — the cycle
// of Lemma 3.1, the high-girth dense graphs of Lemma 3.2 / Theorem 4.3,
// and the d-dimensional stretched torus of §3.1 (Figures 1–2, Theorem
// 3.12, Lemma 4.1) — together with equilibrium audits and the distance
// invariants (Lemma 3.3, Corollary 3.4) as checkable predicates.
package construction

import (
	"fmt"
	"math"

	"repro/internal/game"
)

// TorusParams describes the §3.1 construction: a d-dimensional "rotated
// grid" torus whose i-th dimension has length δ_i, with every edge
// stretched into a path of length ℓ.
type TorusParams struct {
	// D is the number of dimensions (d >= 2).
	D int
	// L is the stretch ℓ >= 1 (each grid edge becomes a path of length ℓ).
	L int
	// Delta holds δ_1..δ_d (each >= 2).
	Delta []int
}

// Validate checks the parameter ranges required by the construction.
func (p TorusParams) Validate() error {
	if p.D < 2 {
		return fmt.Errorf("construction: need d >= 2, got %d", p.D)
	}
	if p.L < 1 {
		return fmt.Errorf("construction: need ℓ >= 1, got %d", p.L)
	}
	if len(p.Delta) != p.D {
		return fmt.Errorf("construction: got %d dimension lengths for d=%d", len(p.Delta), p.D)
	}
	for i, d := range p.Delta {
		if d < 2 {
			return fmt.Errorf("construction: δ_%d = %d < 2", i+1, d)
		}
	}
	return nil
}

// IntersectionCount returns N = 2·Πδ_i, the number of intersection
// vertices.
func (p TorusParams) IntersectionCount() int {
	n := 2
	for _, d := range p.Delta {
		n *= d
	}
	return n
}

// VertexCount returns n = N·(1 + 2^{d-1}(ℓ-1)), matching the count in the
// proof of Theorem 3.12.
func (p TorusParams) VertexCount() int {
	return p.IntersectionCount() * (1 + (1<<(p.D-1))*(p.L-1))
}

// Torus is the built construction: the game state (network + the paper's
// edge ownership) plus coordinate metadata.
type Torus struct {
	Params TorusParams
	State  *game.State
	// Coords[v] is the coordinate tuple of vertex v; coordinate i is taken
	// modulo 2·δ_i·ℓ.
	Coords [][]int
	// Intersection[v] reports whether v is an intersection vertex.
	Intersection []bool
	// id maps encoded coordinates to vertex ids.
	id map[string]int
}

// BuildTorus constructs the §3.1 graph. Intersection vertices are the
// tuples (ℓa_1,…,ℓa_d) with a_1 ≡ … ≡ a_d (mod 2); each is joined to the
// 2^d tuples (x_1±ℓ, …, x_d±ℓ) by a path of length ℓ whose internal
// vertices interpolate the coordinates one unit per step. Edge ownership
// follows the paper: on the path ⟨u = x_0, x_1, …, x_ℓ = u'⟩, internal
// vertex x_i buys the edge towards x_{i−1} and x_{ℓ−1} additionally buys
// the edge towards u', so intersection vertices buy nothing. For ℓ = 1
// (no internal vertices) the even-parity endpoint buys the edge — a
// documented deviation, since the paper leaves ℓ = 1 ownership implicit.
func BuildTorus(p TorusParams) (*Torus, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := &Torus{Params: p, id: make(map[string]int)}

	// Enumerate intersection vertices: a-tuples with uniform parity.
	var enumerate func(prefix []int, parity int, out *[][]int)
	enumerate = func(prefix []int, parity int, out *[][]int) {
		i := len(prefix)
		if i == p.D {
			coords := make([]int, p.D)
			for j, a := range prefix {
				coords[j] = a * p.L
			}
			*out = append(*out, coords)
			return
		}
		for a := 0; a < 2*p.Delta[i]; a++ {
			if a%2 != parity {
				continue
			}
			enumerate(append(prefix, a), parity, out)
		}
	}
	var inter [][]int
	for parity := 0; parity < 2; parity++ {
		var batch [][]int
		enumerate(nil, parity, &batch)
		inter = append(inter, batch...)
	}
	if len(inter) != p.IntersectionCount() {
		return nil, fmt.Errorf("construction: enumerated %d intersection vertices, want %d", len(inter), p.IntersectionCount())
	}

	total := p.VertexCount()
	t.State = game.NewState(total)
	t.Coords = make([][]int, 0, total)
	t.Intersection = make([]bool, total)

	addVertex := func(coords []int, isInter bool) (int, error) {
		key := t.encode(coords)
		if v, ok := t.id[key]; ok {
			if isInter != t.Intersection[v] {
				return 0, fmt.Errorf("construction: coordinate collision at %v", coords)
			}
			return v, nil
		}
		v := len(t.Coords)
		if v >= total {
			return 0, fmt.Errorf("construction: vertex overflow at %v (capacity %d)", coords, total)
		}
		t.id[key] = v
		t.Coords = append(t.Coords, append([]int(nil), coords...))
		t.Intersection[v] = isInter
		return v, nil
	}

	for _, c := range inter {
		if _, err := addVertex(c, true); err != nil {
			return nil, err
		}
	}

	// Add paths from every even-parity intersection vertex along each sign
	// vector; every path has exactly one even endpoint, so this covers
	// each path exactly once.
	mods := make([]int, p.D)
	for i := range mods {
		mods[i] = 2 * p.Delta[i] * p.L
	}
	for _, c := range inter {
		if (c[0]/p.L)%2 != 0 {
			continue // odd-parity endpoint; path added from the even side
		}
		for signs := 0; signs < 1<<p.D; signs++ {
			prev, err := addVertex(c, true)
			if err != nil {
				return nil, err
			}
			step := make([]int, p.D)
			copy(step, c)
			for j := 1; j <= p.L; j++ {
				for i := 0; i < p.D; i++ {
					if signs&(1<<i) != 0 {
						step[i] = (step[i] + 1) % mods[i]
					} else {
						step[i] = (step[i] - 1 + mods[i]) % mods[i]
					}
				}
				isInter := j == p.L
				v, err := addVertex(step, isInter)
				if err != nil {
					return nil, err
				}
				// Ownership per the paper (x_j buys towards x_{j-1}; the
				// last internal vertex also buys towards u'). For ℓ = 1
				// the even endpoint buys the single edge.
				switch {
				case p.L == 1:
					t.State.Buy(prev, v)
				case j < p.L:
					t.State.Buy(v, prev)
				default: // j == ℓ: x_{ℓ-1} buys towards u'
					t.State.Buy(prev, v)
				}
				prev = v
			}
		}
	}
	if len(t.Coords) != total {
		return nil, fmt.Errorf("construction: built %d vertices, want %d", len(t.Coords), total)
	}
	if err := t.State.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// encode canonicalizes coordinates to a map key.
func (t *Torus) encode(coords []int) string {
	b := make([]byte, 0, 4*len(coords))
	for i, c := range coords {
		m := 2 * t.Params.Delta[i] * t.Params.L
		c = ((c % m) + m) % m
		b = append(b, byte(c), byte(c>>8), byte(c>>16), ',')
	}
	return string(b)
}

// VertexAt returns the id of the vertex with the given coordinates, or -1.
func (t *Torus) VertexAt(coords []int) int {
	if v, ok := t.id[t.encode(coords)]; ok {
		return v
	}
	return -1
}

// CoordinateLowerBound evaluates the right-hand side of Lemma 3.3:
// max_i min{|x_i−y_i|, 2δ_iℓ−|x_i−y_i|}.
func (t *Torus) CoordinateLowerBound(x, y int) int {
	best := 0
	for i := 0; i < t.Params.D; i++ {
		diff := t.Coords[x][i] - t.Coords[y][i]
		if diff < 0 {
			diff = -diff
		}
		m := 2 * t.Params.Delta[i] * t.Params.L
		wrap := m - diff
		d := diff
		if wrap < d {
			d = wrap
		}
		if d > best {
			best = d
		}
	}
	return best
}

// DiameterLowerBound returns ℓ·δ_d (Corollary 3.4).
func (t *Torus) DiameterLowerBound() int {
	return t.Params.L * t.Params.Delta[t.Params.D-1]
}

// Theorem312Params derives the construction parameters used in the proof
// of Theorem 3.12 for a target vertex budget n and parameters k, α:
// ℓ = ⌈α⌉ (at least 2 so internal vertices exist), d = ⌈log2(k/ℓ + 2)⌉
// (at least 2), δ_1..d−1 = ⌈k/ℓ⌉ + 1, and δ_d grown until the vertex count
// approaches n. It returns an error when no δ_d >= δ_1 fits in n (the
// theorem's k <= 2^(√log n − 3) regime).
func Theorem312Params(n, k int, alpha float64) (TorusParams, error) {
	if alpha <= 1 || float64(k) < alpha {
		return TorusParams{}, fmt.Errorf("construction: Theorem 3.12 needs 1 < α <= k (α=%g k=%d)", alpha, k)
	}
	l := int(math.Ceil(alpha))
	if l < 2 {
		l = 2
	}
	d := int(math.Ceil(math.Log2(float64(k)/float64(l) + 2)))
	if d < 2 {
		d = 2
	}
	base := (k + l - 1) / l // ⌈k/ℓ⌉
	delta := make([]int, d)
	for i := 0; i < d-1; i++ {
		delta[i] = base + 1
	}
	delta[d-1] = base + 1
	p := TorusParams{D: d, L: l, Delta: delta}
	if p.VertexCount() > n {
		return TorusParams{}, fmt.Errorf("construction: minimal torus needs %d > %d vertices (k too large for n)", p.VertexCount(), n)
	}
	// Grow the last dimension to fill the budget.
	for {
		delta[d-1]++
		if p.VertexCount() > n {
			delta[d-1]--
			break
		}
	}
	return p, nil
}
